package psclock_test

import (
	"fmt"

	"psclock"
)

// ExampleBuildClocked runs the paper's transformed register algorithm S in
// the clock model and verifies Theorem 6.5's promise: plain
// linearizability, with no node ever seeing real time.
func ExampleBuildClocked() {
	eps := 500 * psclock.Microsecond
	bounds := psclock.NewInterval(1*psclock.Millisecond, 3*psclock.Millisecond)
	p := psclock.RegisterParams{
		C:       700 * psclock.Microsecond,
		Delta:   10 * psclock.Microsecond,
		D2:      bounds.Hi + 2*eps, // d'2 of Theorem 4.7
		Epsilon: eps,
	}
	net := psclock.BuildClocked(psclock.SystemConfig{
		N: 3, Bounds: bounds, Seed: 42,
		Clocks: psclock.DriftClocks(eps, 7),
	}, psclock.RegisterFactory(psclock.NewRegisterS, p))

	psclock.AttachClients(net, psclock.WorkloadConfig{
		Ops: 10, Think: psclock.NewInterval(0, 2*psclock.Millisecond), WriteRatio: 0.4, Seed: 1,
	})
	if _, err := net.Sys.RunQuiet(psclock.Time(10 * psclock.Second)); err != nil {
		fmt.Println("error:", err)
		return
	}
	ops, err := psclock.RegisterHistory(net.Sys.Trace().Visible())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r := psclock.CheckLinearizable(ops, psclock.InitialValue.String())
	fmt.Println("ops:", len(ops), "linearizable:", r.OK)
	// Output:
	// ops: 30 linearizable: true
}

// ExampleCheckLinearizable checks a hand-written history: a read of a
// value strictly after its write completed is fine; reading the initial
// value then would not be.
func ExampleCheckLinearizable() {
	ops := []psclock.Op{
		{Node: 0, Kind: psclock.Write, Value: "a", Inv: 0, Res: 10},
		{Node: 1, Kind: psclock.Read, Value: "a", Inv: 20, Res: 30},
	}
	fmt.Println(psclock.CheckLinearizable(ops, "v0").OK)

	stale := []psclock.Op{
		{Node: 0, Kind: psclock.Write, Value: "a", Inv: 0, Res: 10},
		{Node: 1, Kind: psclock.Read, Value: "v0", Inv: 20, Res: 30},
	}
	fmt.Println(psclock.CheckLinearizable(stale, "v0").OK)
	// Output:
	// true
	// false
}

// ExampleCheckObject verifies a distributed counter history against its
// sequential specification with the generic checker.
func ExampleCheckObject() {
	ops := []psclock.ObjectOp{
		{Node: 0, Op: "add:2", Inv: 0, Res: 10},
		{Node: 1, Op: "get", Result: "2", Inv: 20, Res: 30},
	}
	r := psclock.CheckObject(ops, psclock.Counter{}, psclock.CheckOptions{Initial: "0"})
	fmt.Println(r.OK)
	// Output:
	// true
}

// ExampleMinEps measures the smallest ε for which two traces are related
// by the paper's =_{ε,κ} (Definition 2.8).
func ExampleMinEps() {
	a := psclock.Trace{{Action: psclock.Action{Name: "X", Node: 0, Peer: -1, Kind: 2}, At: 10}}
	b := psclock.Trace{{Action: psclock.Action{Name: "X", Node: 0, Peer: -1, Kind: 2}, At: 14}}
	eps, _ := psclock.MinEps(a, b, psclock.ByNode)
	fmt.Println(eps)
	// Output:
	// 4ns
}

// ExampleClockModel samples an adversarial sawtooth clock: always within
// ±ε of real time, never running backwards, but jumping inside the band.
func ExampleClockModel() {
	eps := 100 * psclock.Microsecond
	m := psclock.SawtoothClock(eps, 8*eps)
	err := psclock.CheckClock(m, psclock.Time(10*psclock.Millisecond), 37*psclock.Microsecond)
	fmt.Println("C_eps and monotonicity hold:", err == nil)
	// Output:
	// C_eps and monotonicity hold: true
}
