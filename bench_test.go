// Benchmarks regenerating every experiment table/figure (E1–E16, one bench
// per table or figure series; see DESIGN.md §4 and EXPERIMENTS.md), plus
// micro-benchmarks of the substrates. Each experiment bench prints its
// table once and fails if any of the paper's claims did not hold.
//
// The experiment benches run on the parallel harness by default: each
// experiment fans its seeded rows over a worker pool of width GOMAXPROCS
// (experiments.SetParallelism adjusts it), so the reported wall times are
// the same ones `pscbench -json` records in BENCH_results.json.
package psclock_test

import (
	"fmt"
	"sync"
	"testing"

	"psclock"
	"psclock/internal/experiments"
)

var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		r := e.Run()
		if once, _ := printOnce.LoadOrStore(id, new(sync.Once)); true {
			once.(*sync.Once).Do(func() { fmt.Println(r) })
		}
		if !r.Pass() {
			b.Fatalf("%s failed:\n%s", id, r)
		}
	}
}

// Table 1 (Lemma 6.1): algorithm L costs in D_T.
func BenchmarkE1AlgorithmL(b *testing.B) { runExperiment(b, "E1") }

// Table 2 (Lemma 6.2): algorithm S superlinearizability in D_T.
func BenchmarkE2AlgorithmS(b *testing.B) { runExperiment(b, "E2") }

// Table 3 (Theorem 6.5): transformed S in D_C.
func BenchmarkE3ClockModel(b *testing.B) { runExperiment(b, "E3") }

// Table 4 + Figure 1 (§6.3): comparison against the [10] baseline.
func BenchmarkE4Comparison(b *testing.B) { runExperiment(b, "E4") }

// Table 5 (Theorem 4.7): simulation-1 real-time preservation.
func BenchmarkE5Sim1Shift(b *testing.B) { runExperiment(b, "E5") }

// Figure 2 (Lemma 4.5): message clock-time delay bounds.
func BenchmarkE6ClockDelay(b *testing.B) { runExperiment(b, "E6") }

// Figure 3 (§7.2): receive-buffer cost vs d1/2ε.
func BenchmarkE7Buffering(b *testing.B) { runExperiment(b, "E7") }

// Table 6 + Figure 4 (Theorems 5.1/5.2): simulation-2 output shift.
func BenchmarkE8MMTShift(b *testing.B) { runExperiment(b, "E8") }

// Table 7: verification matrix with mutations.
func BenchmarkE9Matrix(b *testing.B) { runExperiment(b, "E9") }

// Figure 5: executor throughput by model and size.
func BenchmarkE10Throughput(b *testing.B) { runExperiment(b, "E10") }

// Table 8: the §6 result generalized to other shared-memory objects.
func BenchmarkE11Objects(b *testing.B) { runExperiment(b, "E11") }

// Table 9: §7.3 failures explored (crash-stop tolerated, lossy links not).
func BenchmarkE12Failures(b *testing.B) { runExperiment(b, "E12") }

// --- Substrate micro-benchmarks ---

// BenchmarkExecutorRegisterClock measures end-to-end simulated operations
// per benchmark second for the clock-model register system.
func BenchmarkExecutorRegisterClock(b *testing.B) {
	const (
		ms = psclock.Millisecond
		us = psclock.Microsecond
	)
	eps := 300 * us
	bounds := psclock.NewInterval(1*ms, 3*ms)
	p := psclock.RegisterParams{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
	b.ReportAllocs()
	ops := 0
	for i := 0; i < b.N; i++ {
		net := psclock.BuildClocked(psclock.SystemConfig{
			N: 3, Bounds: bounds, Seed: int64(i), Clocks: psclock.DriftClocks(eps, int64(i)),
		}, psclock.RegisterFactory(psclock.NewRegisterS, p))
		net.Sys.KeepTrace = false
		for _, n := range net.Clocked {
			n.RecordStamps = false
		}
		clients := psclock.AttachClients(net, psclock.WorkloadConfig{
			Ops: 20, Think: psclock.NewInterval(0, 2*ms), WriteRatio: 0.4, Seed: int64(i),
		})
		if _, err := net.Sys.RunQuiet(psclock.Time(60 * psclock.Second)); err != nil {
			b.Fatal(err)
		}
		for _, c := range clients {
			ops += c.Done
		}
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
}

// BenchmarkClockAt measures clock reads on the drifting model.
func BenchmarkClockAt(b *testing.B) {
	m := psclock.DriftClock(psclock.Millisecond, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.At(psclock.Time(i%int(50*psclock.Millisecond)) + 1)
	}
}

// BenchmarkClockEarliestAt measures clock inversion.
func BenchmarkClockEarliestAt(b *testing.B) {
	m := psclock.DriftClock(psclock.Millisecond, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.EarliestAt(psclock.Time(i%int(50*psclock.Millisecond)) + 1)
	}
}

// BenchmarkLinearizeSequential measures checker throughput on a long
// near-sequential history.
func BenchmarkLinearizeSequential(b *testing.B) {
	var ops []psclock.Op
	val := "v0"
	ts := psclock.Time(0)
	for i := 0; i < 2000; i++ {
		kind := psclock.Read
		if i%3 == 0 {
			kind = psclock.Write
			val = fmt.Sprintf("w%d", i)
		}
		ops = append(ops, psclock.Op{Node: psclock.NodeID(i % 5), Kind: kind, Value: val, Inv: ts, Res: ts + 10})
		ts += 20
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := psclock.CheckLinearizable(ops, "v0"); !r.OK {
			b.Fatal(r.Reason)
		}
	}
}

// BenchmarkLinearizeConcurrent measures the checker under genuine
// concurrency (overlapping windows at 6 nodes).
func BenchmarkLinearizeConcurrent(b *testing.B) {
	var ops []psclock.Op
	for round := 0; round < 100; round++ {
		base := psclock.Time(round * 100)
		w := fmt.Sprintf("w%d", round)
		ops = append(ops, psclock.Op{Node: 0, Kind: psclock.Write, Value: w, Inv: base, Res: base + 90})
		for n := 1; n < 6; n++ {
			v := "v0"
			if round > 0 {
				v = fmt.Sprintf("w%d", round-1)
			}
			if n%2 == 0 {
				v = w
			}
			ops = append(ops, psclock.Op{Node: psclock.NodeID(n), Kind: psclock.Read, Value: v,
				Inv: base + psclock.Time(n), Res: base + 95})
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := psclock.CheckLinearizable(ops, "v0"); !r.OK {
			b.Fatal(r.Reason)
		}
	}
}

// BenchmarkTraceRelations measures the =_{ε,κ} decision procedure on a
// 10k-event pair of traces.
func BenchmarkTraceRelations(b *testing.B) {
	var a1, a2 psclock.Trace
	for i := 0; i < 10000; i++ {
		e := psclock.Event{
			Action: psclock.Action{Name: "X", Node: psclock.NodeID(i % 8), Peer: -1, Kind: 2, Payload: i},
			At:     psclock.Time(i * 100),
		}
		a1 = append(a1, e)
		e.At += psclock.Time(i % 7)
		a2 = append(a2, e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := psclock.MinEps(a1, a2, psclock.ByNode); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMTRegister measures the full MMT pipeline (both simulations)
// end to end.
func BenchmarkMMTRegister(b *testing.B) { benchMMTRegister(b, 3, 0) }

// BenchmarkMMTRegisterSeqN8 / BenchmarkMMTRegisterShardedN8 are the
// sequential-vs-sharded pair for shard-count tuning at the E10 problem
// size; profile them with -cpuprofile to see where a shard configuration
// spends its time.
func BenchmarkMMTRegisterSeqN8(b *testing.B)     { benchMMTRegister(b, 8, -1) }
func BenchmarkMMTRegisterShardedN8(b *testing.B) { benchMMTRegister(b, 8, 8) }

func benchMMTRegister(b *testing.B, n, shards int) {
	const (
		ms = psclock.Millisecond
		us = psclock.Microsecond
	)
	eps := 200 * us
	ell := 100 * us
	bounds := psclock.NewInterval(1*ms, 3*ms)
	p := psclock.RegisterParams{C: 300 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps + 24*ell, Epsilon: eps}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := psclock.BuildMMT(psclock.SystemConfig{
			N: n, Bounds: bounds, Seed: int64(i), Clocks: psclock.DriftClocks(eps, int64(i)), Ell: ell,
			Shards: shards,
		}, psclock.RegisterFactory(psclock.NewRegisterS, p))
		net.Sys.KeepTrace = false
		for _, n := range net.MMT {
			n.RecordStamps = false
		}
		clients := psclock.AttachClients(net, psclock.WorkloadConfig{
			Ops: 10, Think: psclock.NewInterval(0, 2*ms), WriteRatio: 0.4, Seed: int64(i),
		})
		for net.Sys.Now() < psclock.Time(10*psclock.Second) {
			done := true
			for _, c := range clients {
				if c.Done != 10 {
					done = false
				}
			}
			if done {
				break
			}
			if err := net.Sys.Run(net.Sys.Now().Add(20 * ms)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Figure 6: clock granularity — TICK period sweep in D_M.
func BenchmarkE13Granularity(b *testing.B) { runExperiment(b, "E13") }

// Table 10: the Attiya-Welch boundary — L in D_C is sequentially
// consistent but not linearizable.
func BenchmarkE14SeqConsistency(b *testing.B) { runExperiment(b, "E14") }

// Table 11: failure detection — timeout margin sweep in the clock model.
func BenchmarkE15Detector(b *testing.B) { runExperiment(b, "E15") }

// Table 12: real-time vs internal specifications under simulation 1.
func BenchmarkE16RealTimeSpecs(b *testing.B) { runExperiment(b, "E16") }
