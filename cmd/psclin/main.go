// Command psclin checks a recorded register history (JSON) for
// linearizability, ε-superlinearizability (§6.2), or membership in the
// relaxations P_ε / P^δ (Definitions 2.11–2.12).
//
// Input format (times in nanoseconds; omit "res" for a pending operation):
//
//	{
//	  "initial": "v0",
//	  "ops": [
//	    {"node": 0, "kind": "write", "value": "a", "inv": 0,  "res": 10},
//	    {"node": 1, "kind": "read",  "value": "a", "inv": 20, "res": 30}
//	  ]
//	}
//
// Usage:
//
//	psclin history.json             # plain linearizability
//	psclin -super 2000 history.json # superlinearizability, 2ε = 2·2000ns... (ε in ns)
//	psclin -widen 500 history.json  # P_ε with ε = 500ns
//	cat history.json | psclin -     # read from stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"psclock/internal/linearize"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

type jsonOp struct {
	Node  int    `json:"node"`
	Kind  string `json:"kind"`
	Value string `json:"value"`
	Inv   int64  `json:"inv"`
	Res   *int64 `json:"res"`
}

type jsonHistory struct {
	Initial string   `json:"initial"`
	Ops     []jsonOp `json:"ops"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psclin", flag.ContinueOnError)
	fs.SetOutput(stderr)
	super := fs.Int64("super", 0, "check ε-superlinearizability with this ε in ns")
	widen := fs.Int64("widen", 0, "check P_ε membership with this ε in ns")
	shift := fs.Int64("shift", 0, "check P^δ membership with this δ in ns")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: psclin [flags] <history.json | ->")
		return 2
	}

	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(stderr, "psclin:", err)
		return 2
	}

	var h jsonHistory
	if err := json.Unmarshal(data, &h); err != nil {
		fmt.Fprintln(stderr, "psclin: bad JSON:", err)
		return 2
	}

	ops := make([]linearize.Op, 0, len(h.Ops))
	for i, jo := range h.Ops {
		op := linearize.Op{
			Node:  ta.NodeID(jo.Node),
			Value: jo.Value,
			Inv:   simtime.Time(jo.Inv),
			Res:   simtime.Never,
		}
		switch jo.Kind {
		case "read":
			op.Kind = linearize.Read
		case "write":
			op.Kind = linearize.Write
		default:
			fmt.Fprintf(stderr, "psclin: op %d: kind must be \"read\" or \"write\", got %q\n", i, jo.Kind)
			return 2
		}
		if jo.Res != nil {
			op.Res = simtime.Time(*jo.Res)
		}
		ops = append(ops, op)
	}

	opt := linearize.Options{
		Initial:     h.Initial,
		MinAfterInv: 2 * simtime.Duration(*super),
		Widen:       simtime.Duration(*widen),
		ShiftFuture: simtime.Duration(*shift),
	}
	r := linearize.Check(ops, opt)
	if r.OK {
		fmt.Fprintf(stdout, "OK: history of %d ops is linearizable (%d states searched)\n", len(ops), r.States)
		return 0
	}
	fmt.Fprintf(stdout, "VIOLATION: %s\n", r.Reason)
	small := linearize.Shrink(ops, opt)
	if len(small) < len(ops) {
		fmt.Fprintf(stdout, "minimal violating sub-history (%d of %d ops):\n", len(small), len(ops))
		for _, o := range small {
			fmt.Fprintf(stdout, "  %v\n", o)
		}
	}
	return 1
}
