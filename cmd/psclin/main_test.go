package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runPsclin(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const goodHistory = `{
  "initial": "v0",
  "ops": [
    {"node": 0, "kind": "write", "value": "a", "inv": 0,  "res": 10},
    {"node": 1, "kind": "read",  "value": "a", "inv": 20, "res": 30}
  ]
}`

const badHistory = `{
  "initial": "v0",
  "ops": [
    {"node": 0, "kind": "write", "value": "a", "inv": 0,  "res": 10},
    {"node": 1, "kind": "read",  "value": "v0", "inv": 20, "res": 30}
  ]
}`

func TestLinearizableFromStdin(t *testing.T) {
	code, out, _ := runPsclin(t, goodHistory, "-")
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestViolationExitCode(t *testing.T) {
	code, out, _ := runPsclin(t, badHistory, "-")
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestWidenRescuesViolation(t *testing.T) {
	// P_ε with a large ε accepts the stale read.
	code, out, _ := runPsclin(t, badHistory, "-widen", "15", "-")
	if code != 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestSuperRejectsShortOps(t *testing.T) {
	h := `{"initial":"v0","ops":[{"node":0,"kind":"read","value":"v0","inv":100,"res":110}]}`
	code, _, _ := runPsclin(t, h, "-super", "20", "-")
	if code != 1 {
		t.Errorf("code=%d, want violation", code)
	}
}

func TestPendingOp(t *testing.T) {
	h := `{"initial":"v0","ops":[{"node":0,"kind":"write","value":"a","inv":0},{"node":1,"kind":"read","value":"a","inv":20,"res":30}]}`
	code, out, _ := runPsclin(t, h, "-")
	if code != 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.json")
	if err := os.WriteFile(path, []byte(goodHistory), 0o600); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runPsclin(t, "", path)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runPsclin(t, ""); code != 2 {
		t.Error("missing arg accepted")
	}
	if code, _, _ := runPsclin(t, "not json", "-"); code != 2 {
		t.Error("bad JSON accepted")
	}
	if code, _, _ := runPsclin(t, `{"ops":[{"kind":"sideways"}]}`, "-"); code != 2 {
		t.Error("bad kind accepted")
	}
	if code, _, _ := runPsclin(t, "", filepath.Join(t.TempDir(), "missing.json")); code != 2 {
		t.Error("missing file accepted")
	}
}
