// Command pscfuzz runs randomized configuration campaigns against the
// transformed register: each trial draws a system size, delay bounds, ε,
// the c knob, clock and delay adversaries, and a workload, runs the
// clock-model system, and checks linearizability. Violations are reported
// with a shrunk minimal counterexample — if this tool ever prints one,
// Theorem 4.7/6.5 (or this library) has a bug.
//
// Usage:
//
//	pscfuzz -trials 200 -seed 1
//	pscfuzz -trials 50 -mutate    # sanity: fuzz the broken L variant, expect violations
//	pscfuzz -trials 50 -shards 4  # differential: sharded vs sequential execution
//	pscfuzz -trials 50 -checkshards 4  # differential: sharded vs sequential verification
//	pscfuzz -trials 50 -shards 4 -edgespread  # per-edge d1 spreads (adaptive-horizon planner)
//	pscfuzz -trials 50 -tiers     # tier differential: S passes both checkers, L passes SC, lin rejects ≥ 1 L run
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/workload"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pscfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	trials := fs.Int("trials", 100, "number of randomized trials")
	seed := fs.Int64("seed", 1, "campaign seed")
	mutate := fs.Bool("mutate", false, "fuzz the broken variant (plain L in the clock model); violations are then expected")
	shards := fs.Int("shards", 0, "run each trial again under sharded conservative-parallel execution with this many shards and require an identical history (<2: off)")
	checkShards := fs.Int("checkshards", 0, "replay each trial's history through the sharded checker with this many workers and require a verdict byte-identical to the sequential Online oracle (<2: off)")
	edgeSpread := fs.Bool("edgespread", false, "draw an independent delay interval per directed edge (within the trial's global [d1,d2]), exercising the per-edge d1 lookahead planner of sharded execution")
	tiersFuzz := fs.Bool("tiers", false, "tier differential: additionally check every S history for sequential consistency, run each trial's L twin under skewed clocks (always sequentially consistent, sometimes not linearizable), and require the linearizability checker to reject at least one L run")
	verbose := fs.Bool("v", false, "print each trial's configuration")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	violations := 0
	linRejectsL := 0
	for trial := 0; trial < *trials; trial++ {
		cfgSeed := *seed*1_000_000_007 + int64(trial)
		desc, ops, err := oneTrial(cfgSeed, *mutate, 0, *edgeSpread)
		if err != nil {
			fmt.Fprintf(stderr, "pscfuzz: trial %d (%s): %v\n", trial, desc, err)
			return 2
		}
		if *verbose {
			fmt.Fprintf(stdout, "trial %d: %s (%d ops)\n", trial, desc, len(ops))
		}
		res := linearize.CheckLinearizable(ops, register.Initial.String())
		if *shards > 1 {
			if msg := diffSharded(cfgSeed, *mutate, *shards, *edgeSpread, ops, res); msg != "" {
				fmt.Fprintf(stdout, "DIVERGENCE in trial %d: %s\n  %s\n", trial, desc, msg)
				fmt.Fprintf(stdout, "replay: pscfuzz -trials 1 -seed %d -shards %d\n", cfgSeed, *shards)
				return 2
			}
		}
		if *checkShards > 1 {
			if msg := diffCheckSharded(ops, *checkShards, res); msg != "" {
				fmt.Fprintf(stdout, "CHECKER DIVERGENCE in trial %d: %s\n  %s\n", trial, desc, msg)
				fmt.Fprintf(stdout, "replay: pscfuzz -trials 1 -seed %d -checkshards %d\n", cfgSeed, *checkShards)
				return 2
			}
		}
		if *tiersFuzz {
			rejected, msg := tierTrial(cfgSeed, ops, stdout)
			if msg != "" {
				fmt.Fprintf(stdout, "TIER VIOLATION in trial %d: %s\n  %s\n", trial, desc, msg)
				fmt.Fprintf(stdout, "replay: pscfuzz -trials 1 -seed %d -tiers\n", cfgSeed)
				return 1
			}
			if rejected {
				linRejectsL++
			}
		}
		if res.OK {
			continue
		}
		violations++
		fmt.Fprintf(stdout, "VIOLATION in trial %d: %s\n  %s\n", trial, desc, res.Reason)
		small := linearize.Shrink(ops, linearize.Options{Initial: register.Initial.String()})
		fmt.Fprintf(stdout, "  minimal counterexample (%d ops):\n", len(small))
		for _, o := range small {
			fmt.Fprintf(stdout, "    %v\n", o)
		}
		if !*mutate {
			fmt.Fprintf(stdout, "replay: pscfuzz -trials 1 -seed %d\n", cfgSeed)
			return 1
		}
	}
	if *mutate {
		fmt.Fprintf(stdout, "%d/%d mutated trials violated linearizability (expected > 0)\n", violations, *trials)
		if violations == 0 {
			fmt.Fprintln(stdout, "WARNING: the broken variant never failed — the fuzzer may be too tame")
			return 1
		}
		return 0
	}
	if *tiersFuzz {
		fmt.Fprintf(stdout, "%d tier trials: every S history passed both checkers, every L history passed SC, linearizability rejected %d/%d L runs\n",
			*trials, linRejectsL, *trials)
		if linRejectsL == 0 {
			fmt.Fprintln(stdout, "WARNING: the linearizability checker never rejected an L run — the Attiya-Welch boundary did not materialize; the tier differential is vacuous")
			return 1
		}
	}
	switch {
	case *shards > 1 && *checkShards > 1:
		fmt.Fprintf(stdout, "%d trials, 0 violations, %d-sharded histories and %d-sharded checker verdicts identical\n", *trials, *shards, *checkShards)
	case *shards > 1:
		fmt.Fprintf(stdout, "%d trials, 0 violations, sequential and %d-sharded histories identical\n", *trials, *shards)
	case *checkShards > 1:
		fmt.Fprintf(stdout, "%d trials, 0 violations, sequential and %d-sharded checker verdicts identical\n", *trials, *checkShards)
	default:
		fmt.Fprintf(stdout, "%d trials, 0 violations\n", *trials)
	}
	return 0
}

// tierTrial is the -tiers differential for one trial: the S-tier history
// (already checked for linearizability by the caller) must also be
// sequentially consistent — linearizability implies SC, so an SC rejection
// here is a checker bug, not an algorithm bug — and the trial's L twin,
// rerun under forced clock skew, must be sequentially consistent (Lemma
// 6.1's guarantee) while its linearizability verdict is free to go either
// way. It returns whether the linearizability checker rejected the L run
// (the caller requires at least one rejection over the campaign, proving
// the boundary between the tiers is observable, not vacuous) and a
// non-empty failure message on any directional violation.
func tierTrial(seed int64, sOps []linearize.Op, stdout io.Writer) (linRejected bool, msg string) {
	initial := register.Initial.String()
	if sc := linearize.CheckSequentiallyConsistent(sOps, initial); !sc.OK {
		printSeqShrink(stdout, sOps, initial)
		return false, fmt.Sprintf("S-tier history rejected by the SC checker: %s", sc.Reason)
	}
	descL, opsL, err := oneTrial(seed, true, 0, false)
	if err != nil {
		return false, fmt.Sprintf("L twin (%s) failed to run: %v", descL, err)
	}
	if sc := linearize.CheckSequentiallyConsistent(opsL, initial); !sc.OK {
		printSeqShrink(stdout, opsL, initial)
		return false, fmt.Sprintf("L-tier history (%s) rejected by the SC checker, contradicting Lemma 6.1: %s", descL, sc.Reason)
	}
	return !linearize.CheckLinearizable(opsL, initial).OK, ""
}

// printSeqShrink prints a minimal sub-history still rejected by the SC
// checker.
func printSeqShrink(stdout io.Writer, ops []linearize.Op, initial string) {
	small := linearize.ShrinkSeq(ops, initial)
	fmt.Fprintf(stdout, "  minimal SC counterexample (%d ops):\n", len(small))
	for _, o := range small {
		fmt.Fprintf(stdout, "    %v\n", o)
	}
}

// diffCheckSharded replays the trial's history through the sequential
// Online and the sharded checker with an identical command stream —
// Begin/Add in history order, a safe Advance watermark (the minimum
// invocation still ahead) every few operations to exercise the flush
// broadcast — and requires the sharded Result to be byte-identical to the
// sequential one, which in turn must equal the batch checker's. Returns
// "" when all three agree.
func diffCheckSharded(ops []linearize.Op, checkShards int, batch linearize.Result) string {
	suffixMinInv := make([]simtime.Time, len(ops)+1)
	suffixMinInv[len(ops)] = simtime.Never
	for i := len(ops) - 1; i >= 0; i-- {
		suffixMinInv[i] = suffixMinInv[i+1]
		if ops[i].Inv < suffixMinInv[i] {
			suffixMinInv[i] = ops[i].Inv
		}
	}
	opt := linearize.Options{Initial: register.Initial.String()}
	seq := linearize.NewOnline(opt)
	sh := linearize.NewSharded(linearize.ShardedOptions{Check: opt, Shards: checkShards})
	for i, op := range ops {
		seq.Begin(op.Node, op.Inv)
		sh.Begin("", op.Node, op.Inv)
		seq.Add(op)
		sh.Add("", op)
		if i%4 == 3 {
			seq.Advance(suffixMinInv[i+1])
			sh.Advance(suffixMinInv[i+1])
		}
	}
	seqRes, shRes := seq.Finish(), sh.Finish()
	if shRes != seqRes {
		return fmt.Sprintf("sharded checker %+v != sequential online %+v", shRes, seqRes)
	}
	if seqRes != batch {
		return fmt.Sprintf("online checker %+v != batch %+v", seqRes, batch)
	}
	return ""
}

// diffSharded reruns the trial under sharded execution and compares the
// resulting operation history and verdict against the sequential run.
// The conservative-parallel executor promises determinism — identical
// traces, not merely equivalent ones — so any diff is a bug in the
// d1-lookahead machinery. Returns "" when the runs agree.
func diffSharded(seed int64, mutate bool, shards int, edgeSpread bool, seqOps []linearize.Op, seqRes linearize.Result) string {
	_, ops, err := oneTrial(seed, mutate, shards, edgeSpread)
	if err != nil {
		return fmt.Sprintf("sharded run failed: %v", err)
	}
	if len(ops) != len(seqOps) {
		return fmt.Sprintf("sequential run has %d ops, %d-sharded run has %d", len(seqOps), shards, len(ops))
	}
	for i := range ops {
		if ops[i] != seqOps[i] {
			return fmt.Sprintf("histories diverge at op %d: sequential %v, %d-sharded %v", i, seqOps[i], shards, ops[i])
		}
	}
	if res := linearize.CheckLinearizable(ops, register.Initial.String()); res.OK != seqRes.OK {
		return fmt.Sprintf("verdicts diverge: sequential OK=%v, %d-sharded OK=%v (%s)", seqRes.OK, shards, res.OK, res.Reason)
	}
	return ""
}

// oneTrial draws and runs one configuration; shards > 1 selects the
// conservative-parallel executor (negative and 0..1 run sequentially).
// edgeSpread replaces the uniform delay bounds with an independent
// interval per directed edge, each nested inside the global [d1, d2] so
// the register's D2 wait budget stays an upper bound on every delivery.
func oneTrial(seed int64, mutate bool, shards int, edgeSpread bool) (string, []linearize.Op, error) {
	r := rand.New(rand.NewSource(seed))
	n := 2 + r.Intn(4)
	d1 := simtime.Duration(r.Int63n(int64(2 * ms)))
	d2 := d1 + 200*us + simtime.Duration(r.Int63n(int64(3*ms)))
	eps := simtime.Duration(r.Int63n(int64(ms))) + 10*us
	bounds := simtime.NewInterval(d1, d2)
	d2p := d2 + 2*eps
	cKnob := simtime.Duration(r.Int63n(int64(d2p - 2*eps + 1)))

	clockNames := []string{"perfect", "spread", "drift", "sawtooth", "resync"}
	cname := clockNames[r.Intn(len(clockNames))]
	var cf clock.Factory
	switch cname {
	case "perfect":
		cf = clock.PerfectFactory()
	case "spread":
		cf = clock.SpreadFactory(eps)
	case "drift":
		cf = clock.DriftFactory(eps, seed)
	case "sawtooth":
		cf = clock.SawtoothFactory(eps, 8*eps+ms)
	case "resync":
		cf = func(node int) clock.Model {
			return clock.Resync(eps, -400+int64(node)*200, 10*ms)
		}
	}
	delayNames := []string{"min", "max", "uniform", "spread", "bimodal"}
	dname := delayNames[r.Intn(len(delayNames))]
	var df func() channel.DelayPolicy
	switch dname {
	case "min":
		df = channel.MinDelay
	case "max":
		df = channel.MaxDelay
	case "uniform":
		df = channel.UniformDelay
	case "spread":
		df = channel.SpreadDelay
	case "bimodal":
		df = func() channel.DelayPolicy { return channel.BimodalDelay(0.3) }
	}

	p := register.Params{C: cKnob, Delta: 5 * us, D2: d2p, Epsilon: eps}
	factory := register.Factory(register.NewS, p)
	algName := "S"
	if mutate {
		// The broken variant: no 2ε wait, designed for exact time.
		p = register.Params{C: 0, Delta: 5 * us, D2: d2p, Epsilon: 0}
		factory = register.Factory(register.NewL, p)
		algName = "L(mutated)"
		if cname == "perfect" {
			cf = clock.SpreadFactory(eps) // perfect clocks can't break L
			cname = "spread"
		}
	}
	edgeDesc := ""
	var edgeBounds func(from, to int) simtime.Interval
	if edgeSpread {
		// An independent interval per directed edge, drawn from a seed
		// derived only from (campaign seed, from, to) so the sequential and
		// sharded runs of the same trial see identical per-edge bounds. The
		// lower bound stays strictly positive (sharding needs a nonzero
		// cross-shard lookahead) and the upper stays within the global d2.
		minLo := 20 * us
		if d1 > minLo {
			minLo = d1
		}
		base := seed * 7_919
		edgeBounds = func(from, to int) simtime.Interval {
			er := rand.New(rand.NewSource(base + int64(from)*1_000 + int64(to)))
			lo := minLo + simtime.Duration(er.Int63n(int64(d2-minLo)+1))
			hi := lo + simtime.Duration(er.Int63n(int64(d2-lo)+1))
			return simtime.NewInterval(lo, hi)
		}
		edgeDesc = " edges=spread"
	}
	desc := fmt.Sprintf("alg=%s n=%d d=[%v,%v]%s ε=%v c=%v clocks=%s delays=%s seed=%d",
		algName, n, d1, d2, edgeDesc, eps, cKnob, cname, dname, seed)

	if shards < 2 {
		shards = -1 // pin sequential even if a process-global default is set
	}
	cfg := core.Config{N: n, Bounds: bounds, EdgeBounds: edgeBounds, Seed: seed, Clocks: cf, NewDelay: df, FIFO: r.Intn(2) == 0, Shards: shards}
	net := core.BuildClocked(cfg, factory)
	clients := workload.Attach(net, workload.Config{
		Ops:        8 + r.Intn(10),
		Think:      simtime.NewInterval(0, simtime.Duration(r.Int63n(int64(3*ms)))),
		WriteRatio: 0.2 + 0.6*r.Float64(),
		Seed:       seed * 31,
		Stagger:    simtime.Duration(r.Int63n(int64(ms))),
	})
	if _, err := net.Sys.RunQuiet(simtime.Time(120 * simtime.Second)); err != nil {
		return desc, nil, err
	}
	if shards > 1 && edgeSpread && !net.Sys.Sharded() {
		// Every per-edge lower bound is strictly positive under edgeSpread,
		// so a fallback means the differential would be vacuous.
		return desc, nil, fmt.Errorf("sharding fell back (%s); the -edgespread differential did not run", net.Sys.ShardFallbackReason())
	}
	for _, c := range clients {
		if c.Done == 0 {
			return desc, nil, fmt.Errorf("client %s made no progress", c.Name())
		}
	}
	ops, err := register.History(net.Sys.Trace().Visible())
	return desc, ops, err
}
