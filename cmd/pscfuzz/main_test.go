package main

import (
	"bytes"
	"strings"
	"testing"
)

func runFuzz(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestCleanCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	code, out := runFuzz(t, "-trials", "12", "-seed", "5")
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "0 violations") {
		t.Errorf("out = %q", out)
	}
}

func TestMutatedCampaignFindsViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	code, out := runFuzz(t, "-trials", "15", "-seed", "2", "-mutate")
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "VIOLATION") || !strings.Contains(out, "minimal counterexample") {
		t.Errorf("no violations found by mutated campaign:\n%s", out)
	}
}

func TestVerboseFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	code, out := runFuzz(t, "-trials", "2", "-v")
	if code != 0 || !strings.Contains(out, "trial 0:") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _ := runFuzz(t, "-bogus"); code != 2 {
		t.Error("bad flag accepted")
	}
}

// TestShardedDifferential runs the campaign with the sharded-vs-sequential
// differential check on: the conservative-parallel executor must replay
// every drawn configuration to a byte-identical history.
func TestShardedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations twice per trial")
	}
	code, out := runFuzz(t, "-trials", "10", "-seed", "3", "-shards", "4")
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "4-sharded histories identical") {
		t.Errorf("out = %q", out)
	}
}
