// Command pscfleet runs the multi-process fleet: it spawns one pscnode
// OS process per node over real TCP, drives client load against them,
// injects an orchestrated chaos schedule (crash+restart, partitions,
// delay spikes past d2, clock steps past ε) where every fault carries an
// expected outcome, and verifies the merged event stream online with the
// same Monitor → sharded-checker stack the single-process harness uses.
//
// The run fails (exit 1) if any fault's observed outcome contradicts its
// expectation, if the checker reports violations not explained by
// injected message/process loss, or if the recorder dropped events.
// With -json the report merges into BENCH_results.json as `live_fleet`,
// which pscbench -compare gates.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"time"

	"psclock/internal/fleet"
	"psclock/internal/live"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pscfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes     = fs.Int("nodes", 3, "fleet size (one OS process per node)")
		registers = fs.Int("registers", 2, "data registers per node")
		tiers     = fs.String("tiers", "", "per-register consistency tiers (e.g. lin,seq)")
		duration  = fs.Duration("duration", 12*time.Second, "load duration")
		clients   = fs.Int("clients", 0, "client goroutines (0 = nodes)")
		rate      = fs.Float64("rate", 200, "per-client ops/s cap (0 = unpaced)")
		writeFr   = fs.Float64("write", 0.5, "write fraction")
		seed      = fs.Int64("seed", 1, "rng seed (load and generated chaos)")

		chaos  = fs.String("chaos", "default", `chaos schedule: "default", "gen:<k>", "none", or a DSL script ("kind@start[+dur]:target[-peer][+amount][!expected]; ...")`)
		epsF   = fs.Duration("eps", 2*time.Millisecond, "clock precision ε")
		d1F    = fs.Duration("d1", 0, "min message delay d1")
		d2F    = fs.Duration("d2", 10*time.Millisecond, "max message delay d2")
		deltaF = fs.Duration("delta", time.Millisecond, "broadcast spacing δ")
		cF     = fs.Duration("c", 0, "read/write cost split c")
		ellF   = fs.Duration("ell", 5*time.Millisecond, "timer lateness budget ℓ")
		slackF = fs.Duration("slack", 6*time.Millisecond, "checker widen slack beyond ε")

		detPeriod  = fs.Duration("detperiod", 150*time.Millisecond, "heartbeat period π")
		detTimeout = fs.Duration("dettimeout", 0, "heartbeat timeout τ (0 = SafeTimeoutClock + slack)")

		checkShards = fs.Int("checkshards", 2, "checker worker shards")
		jsonPath    = fs.String("json", "", "merge report into this BENCH_results.json")
		section     = fs.String("section", "live_fleet", "JSON section name")
		nodeBin     = fs.String("nodebin", "", "pscnode binary (default: sibling of this binary, else go build)")
		verbose     = fs.Bool("v", false, "verbose plane/daemon logging")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sim := func(d time.Duration) simtime.Duration {
		s, err := simtime.FromWall(d)
		if err != nil {
			fmt.Fprintf(stderr, "pscfleet: bad duration %v: %v\n", d, err)
			os.Exit(2)
		}
		return s
	}
	eps, d2 := sim(*epsF), sim(*d2F)

	var script fleet.Script
	switch {
	case *chaos == "none":
	case *chaos == "default":
		script = fleet.DefaultScript(*nodes, eps, d2)
	case len(*chaos) > 4 && (*chaos)[:4] == "gen:":
		var k int
		if _, err := fmt.Sscanf(*chaos, "gen:%d", &k); err != nil || k <= 0 {
			fmt.Fprintf(stderr, "pscfleet: bad -chaos %q\n", *chaos)
			return 2
		}
		script = fleet.GenScript(*seed, *nodes, k, *duration, eps, d2)
	default:
		var err error
		script, err = fleet.ParseScript(*chaos, *nodes)
		if err != nil {
			fmt.Fprintf(stderr, "pscfleet: %v\n", err)
			return 2
		}
	}

	bin, cleanup, err := findNodeBin(*nodeBin, stderr)
	if cleanup != nil {
		defer cleanup()
	}
	if err != nil {
		fmt.Fprintf(stderr, "pscfleet: locate pscnode: %v\n", err)
		return 2
	}

	plane, err := fleet.NewPlane(fleet.PlaneConfig{
		N:           *nodes,
		Registers:   *registers,
		Tiers:       *tiers,
		Eps:         eps,
		D1:          sim(*d1F),
		D2:          d2,
		Delta:       sim(*deltaF),
		C:           sim(*cF),
		Ell:         sim(*ellF),
		Slack:       sim(*slackF),
		DetPeriod:   sim(*detPeriod),
		DetTimeout:  sim(*detTimeout),
		Seed:        *seed,
		NodeBin:     bin,
		CheckShards: *checkShards,
		Verbose:     *verbose,
		Logw:        stderr,
	})
	if err != nil {
		fmt.Fprintf(stderr, "pscfleet: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "pscfleet: %d nodes × %d registers, %v load, chaos: %s\n",
		*nodes, *registers, *duration, scriptLabel(script))
	if err := plane.Start(); err != nil {
		fmt.Fprintf(stderr, "pscfleet: start: %v\n", err)
		plane.Close()
		return 2
	}
	fmt.Fprintf(stdout, "pscfleet: all %d node processes ready\n", *nodes)

	// SIGINT/SIGTERM end the run early but cleanly: load stops, the
	// in-flight fault heals, the fleet drains, and the report still emits.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(stderr, "pscfleet: interrupted; draining")
		close(stop)
	}()

	nClients := *clients
	if nClients <= 0 {
		nClients = *nodes
	}
	loadCfg := live.LoadConfig{
		Clients:    nClients,
		Duration:   *duration,
		Rate:       *rate,
		WriteRatio: *writeFr,
		Registers:  *registers,
		Seed:       *seed,
		Stop:       stop,
	}
	if *tiers != "" {
		tt, terr := register.ParseTiers(*tiers, *registers)
		if terr != nil {
			fmt.Fprintf(stderr, "pscfleet: %v\n", terr)
			plane.Close()
			return 2
		}
		loadCfg.Tiers = tt
	}
	resolve := func(client int) (string, ta.NodeID) {
		node := client % *nodes
		return plane.ClientAddr(node), ta.NodeID(node)
	}

	loadStart := time.Now()
	var (
		wg       sync.WaitGroup
		res      live.LoadResult
		outcomes []fleet.ChaosOutcome
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res = live.RunLoadDynamic(resolve, loadCfg)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		outcomes = plane.RunScript(script, loadStart, stop)
	}()
	wg.Wait()
	wall := time.Since(loadStart)

	verdict := plane.Shutdown()
	stats := plane.Stats()

	rep := buildReport(reportInputs{
		nodes: *nodes, registers: *registers, tiersSpec: *tiers,
		clients: nClients, seed: *seed, wall: wall,
		eps: eps, d1: sim(*d1F), d2: d2,
		detPeriod: sim(*detPeriod), checkShards: *checkShards,
		script: script, outcomes: outcomes,
		res: res, stats: stats, verdict: verdict,
		crashes: plane.Crashes(),
	})

	printReport(stdout, rep, verdict)
	if *jsonPath != "" {
		if err := live.MergeSectionIntoBenchFile(*jsonPath, *section, rep); err != nil {
			fmt.Fprintf(stderr, "pscfleet: write %s: %v\n", *jsonPath, err)
			return 2
		}
		fmt.Fprintf(stdout, "pscfleet: merged %q into %s\n", *section, *jsonPath)
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

type reportInputs struct {
	nodes, registers int
	tiersSpec        string
	clients          int
	seed             int64
	wall             time.Duration
	eps, d1, d2      simtime.Duration
	detPeriod        simtime.Duration
	checkShards      int
	script           fleet.Script
	outcomes         []fleet.ChaosOutcome
	res              live.LoadResult
	stats            fleet.FleetStats
	verdict          fleet.FleetVerdict
	crashes          int
}

func buildReport(in reportInputs) *fleet.Report {
	us := func(d simtime.Duration) float64 { return float64(d) / float64(simtime.Microsecond) }
	epsHat := simtime.Duration(0)
	for _, e := range in.stats.EpsByNode {
		if e > epsHat {
			epsHat = e
		}
	}
	mismatches := 0
	lossy := false
	for _, o := range in.outcomes {
		if !o.Match {
			mismatches++
		}
		if o.Kind == string(fleet.FaultCrash) || o.Kind == string(fleet.FaultPartition) {
			lossy = true
		}
	}
	// A crash loses in-flight invocations with the process, and a
	// partition drops update frames on the floor — both outside the model
	// the registers' guarantees assume (Definition 2.3 delivers every
	// message within [d1, d2]), so checker violations in a run with those
	// faults are explained. Everything else must check clean.
	explained := 0
	if lossy {
		explained = in.verdict.Violations
	}

	rep := &fleet.Report{
		Nodes:      in.nodes,
		Registers:  in.registers,
		Tiers:      in.tiersSpec,
		Clients:    in.clients,
		Clock:      "perfect+step",
		Seed:       in.seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),

		DurationMS: float64(in.wall) / float64(time.Millisecond),
		Ops:        in.res.Ops,
		Reads:      in.res.Reads,
		Writes:     in.res.Writes,
		OpsPerSec:  float64(in.res.Ops) / in.wall.Seconds(),

		ReadP50US:  us(in.res.ReadLat.P50),
		ReadP99US:  us(in.res.ReadLat.P99),
		WriteP50US: us(in.res.WriteLat.P50),
		WriteP99US: us(in.res.WriteLat.P99),

		EpsConfigUS:   us(in.eps),
		EpsMeasuredUS: us(epsHat),
		D1ConfigUS:    us(in.d1),
		D2ConfigUS:    us(in.d2),
		DetPeriodUS:   us(in.detPeriod),

		Messages:        in.stats.Messages,
		Held:            in.stats.Held,
		DelayViolations: in.stats.DelayViolations,
		FramesDropped:   in.stats.Dropped,
		Reconnects:      in.stats.Reconnects,

		ChaosScript:     in.script.String(),
		Chaos:           in.outcomes,
		ChaosMismatches: mismatches,

		Crashes:  in.crashes,
		Restarts: in.stats.Restarts,
		Suspects: in.stats.Suspects,
		Restores: in.stats.Restores,

		Violations:            in.verdict.Violations,
		ExplainedViolations:   explained,
		UnexplainedViolations: in.verdict.Violations - explained,

		CheckStates:   in.verdict.CheckStates,
		CheckShards:   in.checkShards,
		MergedEvents:  in.verdict.Emitted,
		MergeClamped:  in.verdict.Clamped,
		RecorderDrops: in.stats.RecorderDrops,
	}
	rep.Pass = rep.UnexplainedViolations == 0 &&
		rep.ChaosMismatches == 0 &&
		rep.RecorderDrops == 0 &&
		in.res.Errors == 0
	return rep
}

func printReport(w io.Writer, rep *fleet.Report, v fleet.FleetVerdict) {
	fmt.Fprintf(w, "pscfleet: %d ops (%.0f ops/s), read p50 %.0fµs p99 %.0fµs, write p50 %.0fµs p99 %.0fµs\n",
		rep.Ops, rep.OpsPerSec, rep.ReadP50US, rep.ReadP99US, rep.WriteP50US, rep.WriteP99US)
	fmt.Fprintf(w, "pscfleet: ε̂=%.0fµs (ε=%.0fµs), %d messages, %d delay violations, %d frames dropped, %d reconnects\n",
		rep.EpsMeasuredUS, rep.EpsConfigUS, rep.Messages, rep.DelayViolations, rep.FramesDropped, rep.Reconnects)
	fmt.Fprintf(w, "pscfleet: %d crashes / %d restarts, %d suspects / %d restores, %d merged events (%d clamped)\n",
		rep.Crashes, rep.Restarts, rep.Suspects, rep.Restores, rep.MergedEvents, rep.MergeClamped)
	if len(rep.Chaos) > 0 {
		fmt.Fprintf(w, "pscfleet: chaos outcomes (%d mismatches):\n%s", rep.ChaosMismatches, fleet.Summary(rep.Chaos))
	}
	for _, m := range v.Messages {
		fmt.Fprintf(w, "pscfleet: VIOLATION: %s\n", m)
	}
	fmt.Fprintf(w, "pscfleet: violations=%d (explained=%d, unexplained=%d), recorder drops=%d\n",
		rep.Violations, rep.ExplainedViolations, rep.UnexplainedViolations, rep.RecorderDrops)
	if rep.Pass {
		fmt.Fprintln(w, "pscfleet: PASS")
	} else {
		fmt.Fprintln(w, "pscfleet: FAIL")
	}
}

func scriptLabel(s fleet.Script) string {
	if len(s) == 0 {
		return "none"
	}
	return s.String()
}

// findNodeBin resolves the pscnode binary: the explicit flag, a sibling
// of the running executable (the Makefile installs both into bin/), or a
// temp-dir `go build` as a development fallback (requires running from
// inside the module).
func findNodeBin(flagVal string, stderr io.Writer) (string, func(), error) {
	if flagVal != "" {
		return flagVal, nil, nil
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "pscnode")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() && st.Mode()&0o111 != 0 {
			return cand, nil, nil
		}
	}
	dir, err := os.MkdirTemp("", "pscfleet-node")
	if err != nil {
		return "", nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	bin := filepath.Join(dir, "pscnode")
	cmd := exec.Command("go", "build", "-o", bin, "psclock/cmd/pscnode")
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		return "", cleanup, fmt.Errorf("go build pscnode: %w", err)
	}
	return bin, cleanup, nil
}
