package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestDefaultsRun(t *testing.T) {
	if code := run([]string{"-ops", "5"}); code != 0 {
		t.Errorf("code = %d", code)
	}
}

func TestAllModelsAndAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("several simulations")
	}
	for _, model := range []string{"timed", "clock", "mmt"} {
		for _, alg := range []string{"L", "S", "baseline"} {
			if model != "timed" && alg == "L" {
				continue // L is only guaranteed in the timed model
			}
			args := []string{"-model", model, "-alg", alg, "-ops", "5", "-n", "2"}
			if code := run(args); code != 0 {
				t.Errorf("%s/%s: code = %d", model, alg, code)
			}
		}
	}
}

func TestAdversaryFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("several simulations")
	}
	for _, clocks := range []string{"perfect", "spread", "drift", "sawtooth"} {
		if code := run([]string{"-clocks", clocks, "-ops", "3", "-n", "2"}); code != 0 {
			t.Errorf("clocks=%s: code = %d", clocks, code)
		}
	}
	for _, delays := range []string{"min", "max", "uniform", "spread"} {
		if code := run([]string{"-delays", delays, "-ops", "3", "-n", "2"}); code != 0 {
			t.Errorf("delays=%s: code = %d", delays, code)
		}
	}
	for _, steps := range []string{"lazy", "eager", "uniform"} {
		if code := run([]string{"-model", "mmt", "-steps", steps, "-ops", "3", "-n", "2"}); code != 0 {
			t.Errorf("steps=%s: code = %d", steps, code)
		}
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-model", "bogus"},
		{"-alg", "bogus"},
		{"-clocks", "bogus"},
		{"-delays", "bogus"},
		{"-steps", "bogus", "-model", "mmt"},
		{"-eps", "nonsense"},
	}
	for _, args := range cases {
		if code := run(args); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestTraceAndFIFOFlags(t *testing.T) {
	if code := run([]string{"-ops", "2", "-n", "2", "-trace", "-fifo", "-nobuffer"}); code != 0 {
		t.Errorf("code = %d", code)
	}
}

func TestJSONExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/h.json"
	if code := run([]string{"-ops", "3", "-n", "2", "-json", path}); code != 0 {
		t.Fatalf("code = %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Initial string `json:"initial"`
		Ops     []struct {
			Kind string `json:"kind"`
		} `json:"ops"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Initial != "v0" || len(h.Ops) != 6 {
		t.Errorf("initial=%q ops=%d", h.Initial, len(h.Ops))
	}
}
