// Command pscsim runs one register system configuration — algorithm ×
// model × adversary — under a closed-loop workload, verifies the history,
// and reports latencies. It is the interactive entry point to the library;
// the experiment harness (pscbench) sweeps the same machinery.
//
// Example:
//
//	pscsim -model clock -alg S -n 3 -eps 500us -d1 1ms -d2 3ms \
//	       -c 700us -clocks sawtooth -delays spread -ops 50 -trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

type options struct {
	model    string
	alg      string
	n        int
	eps      simtime.Duration
	d1, d2   simtime.Duration
	c        simtime.Duration
	delta    simtime.Duration
	ell      simtime.Duration
	clocks   string
	delays   string
	steps    string
	ops      int
	writes   float64
	seed     int64
	trace    bool
	timeline bool
	jsonOut  string
	traceOut string
	noBuf    bool
	fifo     bool
}

func parseDur(fs *flag.FlagSet, name, def, help string) *simtime.Duration {
	d := new(simtime.Duration)
	fs.Func(name, help+" (default "+def+")", func(s string) error {
		v, err := simtime.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = v
		return nil
	})
	v, err := simtime.ParseDuration(def)
	if err != nil {
		panic(err)
	}
	*d = v
	return d
}

func run(args []string) int {
	fs := flag.NewFlagSet("pscsim", flag.ContinueOnError)
	o := options{}
	fs.StringVar(&o.model, "model", "clock", "system model: timed | clock | mmt")
	fs.StringVar(&o.alg, "alg", "S", "algorithm: L | S | baseline")
	fs.IntVar(&o.n, "n", 3, "number of nodes")
	eps := parseDur(fs, "eps", "500us", "clock accuracy ε")
	d1 := parseDur(fs, "d1", "1ms", "minimum link delay d1")
	d2 := parseDur(fs, "d2", "3ms", "maximum link delay d2")
	c := parseDur(fs, "c", "500us", "read/write tradeoff knob c")
	delta := parseDur(fs, "delta", "10us", "the δ wait of §6.1")
	ell := parseDur(fs, "ell", "50us", "MMT step bound ℓ")
	fs.StringVar(&o.clocks, "clocks", "drift", "clock models: perfect | spread | drift | sawtooth")
	fs.StringVar(&o.delays, "delays", "uniform", "delay policy: min | max | uniform | spread")
	fs.StringVar(&o.steps, "steps", "lazy", "MMT step policy: lazy | eager | uniform")
	fs.IntVar(&o.ops, "ops", 30, "operations per client")
	fs.Float64Var(&o.writes, "writes", 0.4, "write ratio")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.BoolVar(&o.trace, "trace", false, "print the visible trace")
	fs.BoolVar(&o.timeline, "timeline", false, "print an ASCII per-node timeline")
	fs.StringVar(&o.jsonOut, "json", "", "write the operation history as JSON to this file (\"-\" for stdout)")
	fs.StringVar(&o.traceOut, "tracejson", "", "write the full trace as JSON lines to this file (for psctrace)")
	fs.BoolVar(&o.noBuf, "nobuffer", false, "disable the receive buffer (§7.2 ablation)")
	fs.BoolVar(&o.fifo, "fifo", false, "FIFO links (no reordering)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	o.eps, o.d1, o.d2, o.c, o.delta, o.ell = *eps, *d1, *d2, *c, *delta, *ell

	if err := simulate(o); err != nil {
		fmt.Fprintln(os.Stderr, "pscsim:", err)
		return 1
	}
	return 0
}

func simulate(o options) error {
	bounds := simtime.NewInterval(o.d1, o.d2)

	var cf clock.Factory
	switch o.clocks {
	case "perfect":
		cf = clock.PerfectFactory()
	case "spread":
		cf = clock.SpreadFactory(o.eps)
	case "drift":
		cf = clock.DriftFactory(o.eps, o.seed)
	case "sawtooth":
		cf = clock.SawtoothFactory(o.eps, 8*o.eps+simtime.Millisecond)
	default:
		return fmt.Errorf("unknown clock model %q", o.clocks)
	}

	var df func() channel.DelayPolicy
	switch o.delays {
	case "min":
		df = channel.MinDelay
	case "max":
		df = channel.MaxDelay
	case "uniform":
		df = channel.UniformDelay
	case "spread":
		df = channel.SpreadDelay
	default:
		return fmt.Errorf("unknown delay policy %q", o.delays)
	}

	var sf func() core.StepPolicy
	switch o.steps {
	case "lazy":
		sf = core.LazySteps
	case "eager":
		sf = core.EagerSteps
	case "uniform":
		sf = core.UniformSteps
	default:
		return fmt.Errorf("unknown step policy %q", o.steps)
	}

	// d'2 the algorithm designs against, per Theorem 4.7 / 5.2.
	d2p := o.d2
	if o.model != "timed" {
		d2p += 2 * o.eps
	}
	if o.model == "mmt" {
		d2p += 24 * o.ell
	}
	p := register.Params{C: o.c, Delta: o.delta, D2: d2p, Epsilon: o.eps}
	var factory core.AlgorithmFactory
	var wantRead, wantWrite simtime.Duration
	switch o.alg {
	case "L":
		factory = register.Factory(register.NewL, p)
		wantRead, wantWrite = o.c+o.delta, d2p-o.c
	case "S":
		if err := p.Validate(); err != nil {
			return err
		}
		factory = register.Factory(register.NewS, p)
		wantRead, wantWrite = 2*o.eps+o.c+o.delta, d2p-o.c
	case "baseline":
		factory = register.BaselineFactory(2*o.eps, o.d2)
		wantRead, wantWrite = 8*o.eps, o.d2+6*o.eps
	default:
		return fmt.Errorf("unknown algorithm %q", o.alg)
	}

	cfg := core.Config{
		N:                 o.n,
		Bounds:            bounds,
		Seed:              o.seed,
		Clocks:            cf,
		NewDelay:          df,
		NewStep:           sf,
		FIFO:              o.fifo,
		DisableRecvBuffer: o.noBuf,
	}
	var net *core.Net
	switch o.model {
	case "timed":
		net = core.BuildTimed(cfg, factory)
	case "clock":
		net = core.BuildClocked(cfg, factory)
	case "mmt":
		cfg.Ell = o.ell
		net = core.BuildMMT(cfg, factory)
	default:
		return fmt.Errorf("unknown model %q", o.model)
	}

	clients := workload.Attach(net, workload.Config{
		Ops:        o.ops,
		Think:      simtime.NewInterval(0, 2*simtime.Millisecond),
		WriteRatio: o.writes,
		Seed:       o.seed + 1,
		Stagger:    300 * simtime.Microsecond,
	})
	done := func() bool {
		for _, c := range clients {
			if c.Done != o.ops {
				return false
			}
		}
		return true
	}
	for net.Sys.Now() < simtime.Time(120*simtime.Second) && !done() {
		if err := net.Sys.Run(net.Sys.Now().Add(50 * simtime.Millisecond)); err != nil {
			return err
		}
	}
	if _, err := net.Sys.RunQuiet(net.Sys.Now().Add(100 * simtime.Millisecond)); err != nil {
		return err
	}
	if !done() {
		return fmt.Errorf("clients did not finish within the simulation horizon")
	}

	vis := net.Sys.Trace().Visible()
	if o.trace {
		fmt.Print(vis)
	}
	if o.timeline {
		fmt.Print(stats.Timeline(vis, 100))
	}
	ops, err := register.History(vis)
	if err != nil {
		return err
	}
	if o.jsonOut != "" {
		if err := writeHistoryJSON(o.jsonOut, ops); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := net.Sys.Trace().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	reads, writes := register.Latencies(ops)
	fmt.Printf("model=%s alg=%s n=%d ε=%v d=[%v,%v] c=%v ops=%d\n",
		o.model, o.alg, o.n, o.eps, o.d1, o.d2, o.c, len(ops))
	fmt.Printf("reads : %v (paper: %v)\n", stats.Summarize(reads), wantRead)
	fmt.Printf("writes: %v (paper: %v)\n", stats.Summarize(writes), wantWrite)

	r := linearize.CheckLinearizable(ops, register.Initial.String())
	if r.OK {
		fmt.Printf("linearizable: yes (%d states searched)\n", r.States)
	} else {
		fmt.Printf("linearizable: NO — %s\n", r.Reason)
		small := linearize.Shrink(ops, linearize.Options{Initial: register.Initial.String()})
		if len(small) < len(ops) {
			fmt.Printf("minimal violating sub-history (%d ops):\n", len(small))
			for _, o := range small {
				fmt.Printf("  %v\n", o)
			}
		}
		return fmt.Errorf("history is not linearizable")
	}
	return nil
}

// writeHistoryJSON emits the history in psclin's input format.
func writeHistoryJSON(path string, ops []linearize.Op) error {
	type jsonOp struct {
		Node  int    `json:"node"`
		Kind  string `json:"kind"`
		Value string `json:"value"`
		Inv   int64  `json:"inv"`
		Res   *int64 `json:"res,omitempty"`
	}
	out := struct {
		Initial string   `json:"initial"`
		Ops     []jsonOp `json:"ops"`
	}{Initial: register.Initial.String()}
	for _, o := range ops {
		jo := jsonOp{Node: int(o.Node), Value: o.Value, Inv: int64(o.Inv)}
		if o.Kind == linearize.Read {
			jo.Kind = "read"
		} else {
			jo.Kind = "write"
		}
		if !o.Pending() {
			res := int64(o.Res)
			jo.Res = &res
		}
		out.Ops = append(out.Ops, jo)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
