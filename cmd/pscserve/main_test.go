package main

import (
	"strings"
	"testing"
)

// TestRunSmoke is the in-process version of the CI smoke job: a short
// serve-and-load cycle over real TCP with jittered clocks must pass the
// online check and exit zero.
func TestRunSmoke(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-duration", "400ms", "-rate", "120", "-nodes", "3",
		"-clock", "jitter", "-slack", "3ms", "-seed", "7",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PASS: online linearizability held") {
		t.Fatalf("no PASS line in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 client errors") {
		t.Fatalf("client errors in output:\n%s", out.String())
	}
}

// TestRunChanTransport covers the in-process transport path end to end.
func TestRunChanTransport(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-duration", "300ms", "-rate", "120", "-transport", "chan",
		"-clock", "offset", "-slack", "3ms",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestRunBadFlags checks usage errors exit 2 without starting a runtime.
func TestRunBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-clock", "atomic"}, &out, &errb); code != 2 {
		t.Fatalf("unknown clock: exit %d, want 2", code)
	}
	if code := run([]string{"-transport", "carrier-pigeon"}, &out, &errb); code != 2 {
		t.Fatalf("unknown transport: exit %d, want 2", code)
	}
	if code := run([]string{"-eps", "-1ms"}, &out, &errb); code != 2 {
		t.Fatalf("negative eps: exit %d, want 2", code)
	}
}
