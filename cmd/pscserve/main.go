// Command pscserve exposes the transformed register S^c over TCP on a
// live wall-clock runtime and drives it with a load generator,
// monitoring every operation with the online linearizability checker as
// traffic flows. It is the paper's pipeline run against real time
// instead of the simulator: the clock adversary is a configured model
// (the runtime measures the realized offset bound ε̂), message delays
// are real loopback latencies recorded against the designed [d1, d2],
// and the verdict gates the exit status.
//
// Algorithm S pays a fixed latency per operation (reads 2ε+δ+c, writes
// d2+2ε−c), so throughput comes from concurrency, not speed: -registers
// hosts R independent register instances per node sharing its clock and
// transport connections, and -pipeline K lets each client keep K
// operations in flight across zipf-selected registers. Each (node,
// register) port still admits one operation at a time — the §6.1
// alternation condition — and each register's history is checked for
// linearizability independently (the monitor's key fan-out).
//
// Usage:
//
//	pscserve -nodes 3 -clients 3 -duration 2s -clock jitter
//	pscserve -transport chan -rate 300 -json   # update BENCH_results.json
//	pscserve -pipeline 64 -registers 24 -rate 0 -checkshards 4   # throughput
//
// The gating check relaxes windows by ε plus a scheduling-slack budget
// (-slack): algorithm S already pays for clock uncertainty, so the slack
// only covers real timer-service lateness, the live counterpart of the
// MMT boundmap's ℓ. A "strict" zero-widening check runs alongside for
// reporting; its failures do not gate, matching Theorem 6.5's direction
// that exactness is not achievable, only ε-closeness.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"syscall"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/live"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
	"psclock/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pscserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.Int("nodes", 3, "number of register nodes")
	clients := fs.Int("clients", 0, "concurrent clients (0 = one per node)")
	duration := fs.Duration("duration", 2*time.Second, "load duration")
	rate := fs.Float64("rate", 200, "per-client operation rate cap, ops/s (0 = unpaced)")
	writeRatio := fs.Float64("write", 0.1, "fraction of operations that are writes")
	pipeline := fs.Int("pipeline", 0, "per-client in-flight operation bound (<2: closed loop, one op at a time)")
	registers := fs.Int("registers", 1, "independent register instances per node")
	tiersFlag := fs.String("tiers", "", "per-register consistency tiers: a colon list (lin:seq:...; short lists repeat the last entry) or mix:F (fraction of seq registers, spread evenly); empty = all lin, the untiered stack")
	thetaWall := fs.Duration("theta", 0, "staleness bound Θ the seq tier's online sequential-consistency check enforces (0 = c+δ+2ε+ℓ+slack, algorithm L's end-to-end staleness plus scheduling slack)")
	zipfS := fs.Float64("zipf", 1.1, "zipf exponent for register selection (<=1: uniform)")
	zipfV := fs.Float64("zipfv", 0, "zipf offset v (0 = registers/2, flattening the head below the per-key throughput ceiling)")
	minOps := fs.Int("minops", 0, "fail the run below this many completed operations (throughput floor for CI)")
	epsWall := fs.Duration("eps", 200*time.Microsecond, "clock offset bound ε")
	slackWall := fs.Duration("slack", time.Millisecond, "scheduling slack added to ε in the gating check's window relaxation")
	ellWall := fs.Duration("ell", 5*time.Millisecond, "timer-service lateness budget ℓ (report-only)")
	d1Wall := fs.Duration("d1", 0, "designed minimum message delay (enforced)")
	d2Wall := fs.Duration("d2", 5*time.Millisecond, "designed maximum message delay (measured)")
	deltaWall := fs.Duration("delta", 100*time.Microsecond, "update propagation margin δ")
	cWall := fs.Duration("c", 0, "read/write cost split knob c")
	clockName := fs.String("clock", "jitter", "clock adversary: perfect, offset (±ε), jitter (drifting within ε)")
	transport := fs.String("transport", "tcp", "inter-node transport: tcp or chan")
	seed := fs.Int64("seed", 1, "load generator and jitter seed")
	ringN := fs.Int("ring", 64, "post-mortem event tail retained for violation reports")
	checkShards := fs.Int("checkshards", 0, "fan the online checks out across this many worker goroutines (<2: inline on the event consumer)")
	strictMode := fs.String("strict", "auto", "run the informational zero-widening check: on, off, or auto (on for closed-loop runs, off under pipelined load, where its CPU competes with the system under test)")
	approxWall := fs.Duration("approx", 0, "ε-approximate band for the gating check (0 = exact): orderings that differ only within the band are committed greedily, not searched; an OK verdict still names a concrete witness order")
	gcPercent := fs.Int("gogc", 0, "set the GC target percentage for the run (0 = inherit GOGC): on a single core the collector's concurrent mark competes with the node loops, and its ~10ms bursts are the dominant source of frames measured past d2")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	traceFile := fs.String("trace", "", "write a runtime execution trace to this file")
	jsonOut := fs.Bool("json", false, "merge the report into a section of BENCH_results.json")
	jsonSection := fs.String("jsonsection", "live", "BENCH_results.json section -json writes (pipelined headline: live; closed-loop baseline: live_closed)")
	verbose := fs.Bool("v", false, "verbose: print configuration and per-check verdicts")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *clients == 0 {
		*clients = *nodes
	}
	if *gcPercent > 0 {
		debug.SetGCPercent(*gcPercent)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "pscserve: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "pscserve: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "pscserve: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(stderr, "pscserve: %v\n", err)
			return 2
		}
		defer rtrace.Stop()
	}

	conv := func(name string, w time.Duration) (simtime.Duration, bool) {
		d, err := simtime.FromWall(w)
		if err != nil {
			fmt.Fprintf(stderr, "pscserve: -%s: %v\n", name, err)
			return 0, false
		}
		return d, true
	}
	eps, ok := conv("eps", *epsWall)
	if !ok {
		return 2
	}
	slack, ok := conv("slack", *slackWall)
	if !ok {
		return 2
	}
	ell, ok := conv("ell", *ellWall)
	if !ok {
		return 2
	}
	d1, ok := conv("d1", *d1Wall)
	if !ok {
		return 2
	}
	d2, ok := conv("d2", *d2Wall)
	if !ok {
		return 2
	}
	delta, ok := conv("delta", *deltaWall)
	if !ok {
		return 2
	}
	cKnob, ok := conv("c", *cWall)
	if !ok {
		return 2
	}
	approxEps, ok := conv("approx", *approxWall)
	if !ok {
		return 2
	}
	theta, ok := conv("theta", *thetaWall)
	if !ok {
		return 2
	}

	var cf clock.Factory
	switch *clockName {
	case "perfect":
		cf = clock.PerfectFactory()
	case "offset":
		cf = clock.SpreadFactory(eps)
	case "jitter":
		cf = clock.DriftFactory(eps, *seed)
	default:
		fmt.Fprintf(stderr, "pscserve: unknown -clock %q (want perfect, offset, jitter)\n", *clockName)
		return 2
	}

	var tr live.Transport
	switch *transport {
	case "tcp":
		t, err := live.NewTCPTransport(*nodes)
		if err != nil {
			fmt.Fprintf(stderr, "pscserve: %v\n", err)
			return 2
		}
		tr = t
	case "chan":
		tr = nil // runtime default
	default:
		fmt.Fprintf(stderr, "pscserve: unknown -transport %q (want tcp, chan)\n", *transport)
		return 2
	}

	p := register.Params{C: cKnob, Delta: delta, D2: d2 + 2*eps, Epsilon: eps}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(stderr, "pscserve: %v\n", err)
		return 2
	}

	tiers, err := register.ParseTiers(*tiersFlag, *registers)
	if err != nil {
		fmt.Fprintf(stderr, "pscserve: %v\n", err)
		return 2
	}
	tiered := *tiersFlag != ""
	if theta == 0 {
		// Algorithm L's end-to-end staleness: a value stops being readable
		// once a newer update has been applied everywhere, which lags the
		// newer write's response by at most c+δ (the read path) plus the
		// clock offset 2ε and the timer-lateness and scheduling budgets.
		theta = cKnob + delta + 2*eps + ell + slack
	}
	// tierOf maps a checker routing key ("r<idx>") back to its register's
	// tier, so the per-key fan-out constructs the right automaton.
	tierOf := func(key string) register.Tier {
		if !tiered || len(key) < 2 {
			return register.TierLin
		}
		idx, err := strconv.Atoi(key[1:])
		if err != nil || idx < 0 || idx >= len(tiers) {
			return register.TierLin
		}
		return tiers[idx]
	}

	mon := register.NewMonitor()
	// With -checkshards, the per-key frontier automata run on a worker pool
	// and the event consumer only routes operations — same verdicts, less
	// work on the recorder's critical path. In a tiered run, each key's
	// automaton is the checker its tier requires: the exact online
	// linearizability engine for lin keys, the Θ-bounded online
	// sequential-consistency engine for seq keys.
	linOpt := linearize.Options{
		Initial:      register.Initial.String(),
		Widen:        eps + slack,
		AssumeUnique: true,
		// Fail fast: a genuinely failing stage proves "no order exists" by
		// exhausting the subset lattice, and an offline-sized budget means
		// seconds of burn on a core the node loops need — each second of
		// which delays more frames past d2 and manufactures more
		// violations. A small budget turns that into a quick sticky fail.
		MaxStates: 1 << 18,
		ApproxEps: approxEps,
		// The checker shares the core(s) with the system it is judging;
		// yielding inside long drains keeps a hard linearization stage
		// from stalling node loops into d2 overruns that the checker
		// would then (correctly) flag — a self-inflicted violation.
		Yield: runtime.Gosched,
	}
	newTiered := func(lin linearize.Options, seq linearize.SeqOptions) func(string) linearize.Automaton {
		return func(key string) linearize.Automaton {
			if tierOf(key) == register.TierSeq {
				return linearize.NewSeqOnline(seq)
			}
			return linearize.NewOnline(lin)
		}
	}
	addCheck := func(name string, opt linearize.Options, seqOpt linearize.SeqOptions) *linearize.Sharded {
		so := linearize.ShardedOptions{Check: opt, Shards: *checkShards}
		if tiered {
			so.New = newTiered(opt, seqOpt)
		}
		c := linearize.NewSharded(so)
		mon.AddChecker(name, c)
		return c
	}
	liveCheck := addCheck("live", linOpt, linearize.SeqOptions{
		Initial:  register.Initial.String(),
		MaxStale: theta,
		Yield:    runtime.Gosched,
	})
	runStrict := false
	switch *strictMode {
	case "on":
		runStrict = true
	case "off":
	case "auto":
		runStrict = *pipeline < 2
	default:
		fmt.Fprintf(stderr, "pscserve: unknown -strict %q (want on, off, auto)\n", *strictMode)
		return 2
	}
	if runStrict {
		// The strict twin widens nothing on the lin tier and, on the seq
		// tier, checks pure sequential consistency (Θ = 0, no mid-stream
		// settling) — informational only, like the lin strict check.
		addCheck("strict", linearize.Options{
			Initial:      register.Initial.String(),
			AssumeUnique: true,
		}, linearize.SeqOptions{Initial: register.Initial.String()})
	}
	if *registers > 1 || tiered {
		// Each register's ports are node IDs r·N … r·N+N−1; all of a
		// register's operations form one history, checked independently
		// against its own tier's specification.
		n := *nodes
		mon.SetKeyFunc(func(port ta.NodeID) string {
			return "r" + strconv.Itoa(int(port)/n)
		})
	}
	ring := trace.NewRing(*ringN)

	rt, err := live.New(live.Options{
		N:         *nodes,
		Registers: *registers,
		Bounds:    simtime.NewInterval(d1, d2),
		Ell:       ell,
		Clocks:    cf,
		Transport: tr,
	}, register.Factory(register.NewS, p))
	if err != nil {
		fmt.Fprintf(stderr, "pscserve: %v\n", err)
		return 2
	}
	if tiered {
		// Per-register tiers: lin registers run algorithm S, seq registers
		// algorithm L, all sharing each node's clock and transport.
		rt.SetRegisterFactory(func(reg int) core.AlgorithmFactory {
			return tiers[reg].Factory(p)
		})
	}
	rt.AddSink(mon)
	rt.AddSink(ring)

	srv, err := live.NewServer(rt)
	if err != nil {
		fmt.Fprintf(stderr, "pscserve: %v\n", err)
		return 2
	}
	if tiered {
		srv.SetTiers(tiers)
	}
	if err := rt.Start(); err != nil {
		fmt.Fprintf(stderr, "pscserve: %v\n", err)
		return 2
	}
	srv.Start()

	if *verbose {
		fmt.Fprintf(stdout, "pscserve: n=%d clients=%d registers=%d pipeline=%d clock=%s transport=%s d=[%v,%v] ε=%v δ=%v c=%v d'2=%v\n",
			*nodes, *clients, *registers, *pipeline, *clockName, tname(tr), d1, d2, eps, delta, cKnob, p.D2)
		for i, a := range srv.Addrs() {
			fmt.Fprintf(stdout, "pscserve: node %d at %s\n", i, a)
		}
	}

	// SIGINT/SIGTERM end the load early instead of killing the process:
	// clients stop issuing and drain their in-flight tails, and the run
	// proceeds to its normal verdict, report, and -json merge — a
	// truncated-but-clean measurement rather than a torn-down one.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		select {
		case s := <-sigs:
			fmt.Fprintf(stderr, "pscserve: %v: draining load and reporting\n", s)
			close(stop)
		case <-stop:
		}
	}()

	start := time.Now()
	loadCfg := live.LoadConfig{
		Clients:    *clients,
		Duration:   *duration,
		Rate:       *rate,
		WriteRatio: *writeRatio,
		Pipeline:   *pipeline,
		Registers:  *registers,
		ZipfS:      *zipfS,
		ZipfV:      *zipfV,
		Seed:       *seed,
		Stop:       stop,
	}
	if tiered {
		loadCfg.Tiers = tiers
	}
	res := live.RunLoad(srv.Addrs(), loadCfg)
	wall := time.Since(start)
	srv.Close()
	m := rt.Stop()

	violations := 0
	if err := mon.Err(); err != nil {
		fmt.Fprintf(stdout, "VIOLATION (stream contract): %v\n", err)
		violations++
	}
	liveRes := mon.Verdict("live")
	if mon.Err() == nil && !liveRes.OK {
		fmt.Fprintf(stdout, "VIOLATION (live, widen ε+slack=%v): %s\n", eps+slack, liveRes.Reason)
		violations++
		tail := ring.Tail()
		fmt.Fprintf(stdout, "last %d of %d events:\n", len(tail), ring.Total())
		for _, e := range tail {
			fmt.Fprintf(stdout, "  %v\n", e)
		}
	}
	if runStrict {
		strictRes := mon.Verdict("strict")
		if *verbose || !strictRes.OK {
			mark := "OK"
			if !strictRes.OK {
				mark = "violated (informational): " + strictRes.Reason
			}
			fmt.Fprintf(stdout, "strict (widen 0): %s\n", mark)
		}
	}

	// Per-tier slices of the verdict: each register's key result rolls up
	// into its tier's violation count and checker work, so both tiers are
	// independently accountable — 0 violations on each is the bar.
	var tierRep [2]*live.TierReport
	if tiered {
		for t := range tierRep {
			tierRep[t] = &live.TierReport{
				Ops:        res.Tier[t].Ops,
				Reads:      res.Tier[t].Reads,
				Writes:     res.Tier[t].Writes,
				ReadP50US:  us(res.Tier[t].ReadLat.P50),
				ReadP99US:  us(res.Tier[t].ReadLat.P99),
				WriteP50US: us(res.Tier[t].WriteLat.P50),
				WriteP99US: us(res.Tier[t].WriteLat.P99),
			}
		}
		for i, tr := range tiers {
			rep := tierRep[tr]
			rep.Registers++
			if kr, ok := liveCheck.KeyResult("r" + strconv.Itoa(i)); ok {
				rep.CheckStates += kr.States
				if !kr.OK {
					rep.Violations++
				}
			}
		}
	}

	report := &live.Report{
		Nodes:      *nodes,
		Clients:    *clients,
		Registers:  *registers,
		Pipeline:   *pipeline,
		Clock:      *clockName,
		Transport:  tname(tr),
		Seed:       *seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),

		DurationMS: float64(wall.Microseconds()) / 1e3,
		Ops:        res.Ops,
		Reads:      res.Reads,
		Writes:     res.Writes,
		OpsPerSec:  float64(res.Ops) / wall.Seconds(),

		ReadP50US:  us(res.ReadLat.P50),
		ReadP99US:  us(res.ReadLat.P99),
		WriteP50US: us(res.WriteLat.P50),
		WriteP99US: us(res.WriteLat.P99),

		PipelineDepthMean: res.Depth.Mean(),
		PerRegOps:         res.PerReg,

		EpsConfigUS:   us(eps),
		EpsMeasuredUS: us(m.Eps),
		EllConfigUS:   us(ell),
		TimerLateUS:   us(m.TimerLate),
		D1ConfigUS:    us(d1),
		D2ConfigUS:    us(d2),
		DelayMinUS:    us(m.DelayMin),
		DelayMaxUS:    us(m.DelayMax),

		Messages:        m.Messages,
		Held:            m.Held,
		DelayViolations: m.DelayViolations,
		Reconnects:      m.Reconnects,

		Violations:    violations,
		CheckStates:   liveRes.States,
		CheckShards:   max(*checkShards, 0),
		RecorderDrops: m.RecorderDrops,
		Pass:          violations == 0 && res.Errors == 0 && m.RecorderDrops == 0,
	}
	if tiered {
		report.Tiers = *tiersFlag
		report.TierLin = tierRep[register.TierLin]
		report.TierSeq = tierRep[register.TierSeq]
		report.ReadDiscountUS = us(res.Tier[register.TierLin].ReadLat.P50) - us(res.Tier[register.TierSeq].ReadLat.P50)
	}

	fmt.Fprintf(stdout, "%d ops (%d reads, %d writes) in %v: %.0f ops/s, %d client errors\n",
		res.Ops, res.Reads, res.Writes, wall.Round(time.Millisecond), report.OpsPerSec, res.Errors)
	fmt.Fprintf(stdout, "read p50/p99 %v/%v  write p50/p99 %v/%v\n",
		res.ReadLat.P50, res.ReadLat.P99, res.WriteLat.P50, res.WriteLat.P99)
	if tiered {
		lin, seq := res.Tier[register.TierLin], res.Tier[register.TierSeq]
		fmt.Fprintf(stdout, "tiers (%s): lin %d regs, %d ops, read p50 %v; seq %d regs, %d ops, read p50 %v; discount %v (2ε=%v, Θ=%v)\n",
			*tiersFlag, tierRep[register.TierLin].Registers, lin.Ops, lin.ReadLat.P50,
			tierRep[register.TierSeq].Registers, seq.Ops, seq.ReadLat.P50,
			lin.ReadLat.P50-seq.ReadLat.P50, 2*eps, theta)
		fmt.Fprintf(stdout, "tier verdicts: lin %d violations (%d states), seq %d violations (%d states)\n",
			tierRep[register.TierLin].Violations, tierRep[register.TierLin].CheckStates,
			tierRep[register.TierSeq].Violations, tierRep[register.TierSeq].CheckStates)
	}
	if *pipeline > 1 {
		fmt.Fprintf(stdout, "pipeline depth mean %.1f of %d; recorder drops %d\n",
			res.Depth.Mean(), *pipeline, m.RecorderDrops)
	}
	if *verbose && len(res.PerReg) > 0 {
		lo, hi := res.PerReg[0], res.PerReg[0]
		for _, k := range res.PerReg {
			lo, hi = min(lo, k), max(hi, k)
		}
		fmt.Fprintf(stdout, "per-register ops over %d registers: min %d, max %d\n", len(res.PerReg), lo, hi)
	}
	fmt.Fprintf(stdout, "measured ε̂=%v (configured %v)  timer-late=%v (budget %v)  delay=[%v,%v] of [%v,%v], %d past d2\n",
		m.Eps, eps, m.TimerLate, ell, m.DelayMin, m.DelayMax, d1, d2, m.DelayViolations)
	if m.TimerLate > ell {
		fmt.Fprintf(stdout, "note: timer lateness exceeded the ℓ budget (report-only)\n")
	}
	if report.Pass {
		fmt.Fprintf(stdout, "PASS: online linearizability held over %d live operations\n", res.Ops)
	}

	if *jsonOut {
		if err := live.MergeSectionIntoBenchFile("BENCH_results.json", *jsonSection, report); err != nil {
			fmt.Fprintf(stderr, "pscserve: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s section of BENCH_results.json\n", *jsonSection)
	}

	if !report.Pass {
		if res.Errors > 0 {
			fmt.Fprintf(stdout, "FAIL: %d client errors\n", res.Errors)
		}
		if m.RecorderDrops > 0 {
			fmt.Fprintf(stdout, "FAIL: %d recorder drops\n", m.RecorderDrops)
		}
		return 1
	}
	if *minOps > 0 && res.Ops < *minOps {
		fmt.Fprintf(stdout, "FAIL: %d ops below the -minops floor %d\n", res.Ops, *minOps)
		return 1
	}
	return 0
}

// tname names the transport for reports; nil means the runtime default.
func tname(tr live.Transport) string {
	if tr == nil {
		return "chan"
	}
	return tr.Name()
}

// us renders a duration in microseconds for the JSON report.
func us(d simtime.Duration) float64 {
	return float64(d) / float64(simtime.Microsecond)
}
