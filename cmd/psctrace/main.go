// Command psctrace inspects recorded execution traces (as written by
// pscsim -tracejson): per-node timelines, event summaries, message-delay
// distributions, and the §2.3 trace relations between two recordings.
//
// Usage:
//
//	psctrace -timeline trace.jsonl
//	psctrace -summary trace.jsonl
//	psctrace -delays trace.jsonl
//	psctrace -mineps other.jsonl trace.jsonl   # smallest ε with =_{ε,κ}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
	"psclock/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psctrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	timeline := fs.Bool("timeline", false, "render a per-node ASCII timeline")
	summary := fs.Bool("summary", false, "print per-action and per-node event counts")
	delays := fs.Bool("delays", false, "print message delay statistics")
	width := fs.Int("width", 100, "timeline width")
	mineps := fs.String("mineps", "", "other trace: print the smallest ε with this =_{ε,κ} that")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: psctrace [flags] <trace.jsonl | ->")
		return 2
	}
	tr, err := load(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "psctrace:", err)
		return 2
	}
	if !*timeline && !*summary && !*delays && *mineps == "" {
		*summary = true
	}

	if *summary {
		printSummary(stdout, tr)
	}
	if *timeline {
		fmt.Fprint(stdout, stats.Timeline(tr, *width))
	}
	if *delays {
		printDelays(stdout, tr)
	}
	if *mineps != "" {
		f, err := os.Open(*mineps)
		if err != nil {
			fmt.Fprintln(stderr, "psctrace:", err)
			return 2
		}
		defer f.Close()
		other, err := ta.ReadTraceJSON(f)
		if err != nil {
			fmt.Fprintln(stderr, "psctrace:", err)
			return 2
		}
		eps, err := trace.MinEps(tr.Visible(), other.Visible(), trace.ByNode)
		if err != nil {
			fmt.Fprintf(stdout, "traces are not =_ε related for any ε: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "smallest ε with trace =_{ε,κ} other: %v\n", eps)
	}
	return 0
}

func load(path string, stdin io.Reader) (ta.Trace, error) {
	if path == "-" {
		return ta.ReadTraceJSON(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ta.ReadTraceJSON(f)
}

func printSummary(w io.Writer, tr ta.Trace) {
	byName := map[string]int{}
	byNode := map[ta.NodeID]int{}
	for _, e := range tr {
		byName[e.Action.Name]++
		if e.Action.Node != ta.NoNode {
			byNode[e.Action.Node]++
		}
	}
	fmt.Fprintf(w, "events: %d total, span %v\n", len(tr), simtime.Duration(tr.LTime()))
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	tb := stats.NewTable("action", "count")
	for _, n := range names {
		tb.AddRow(n, fmt.Sprint(byName[n]))
	}
	fmt.Fprint(w, tb.String())
	nodes := tr.Nodes()
	tb2 := stats.NewTable("node", "events")
	for _, n := range nodes {
		tb2.AddRow(n.String(), fmt.Sprint(byNode[n]))
	}
	fmt.Fprint(w, tb2.String())
}

func printDelays(w io.Writer, tr ta.Trace) {
	pairs := [][2]string{
		{ta.NameSendMsg, ta.NameRecvMsg},
		{ta.NameESendMsg, ta.NameERecvMsg},
	}
	any := false
	for _, p := range pairs {
		ds, err := tr.MessageDelays(p[0], p[1])
		if err != nil || len(ds) == 0 {
			continue
		}
		any = true
		fmt.Fprintf(w, "%s → %s: %v\n", p[0], p[1], stats.Summarize(ds))
	}
	if !any {
		fmt.Fprintln(w, "no complete message pairs in trace (messages may be hidden or unmatched)")
	}
}
