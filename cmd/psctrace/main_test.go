package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psclock/internal/ta"
)

func writeTrace(t *testing.T, tr ta.Trace) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func sample() ta.Trace {
	return ta.Trace{
		{Action: ta.Action{Name: "READ", Node: 0, Peer: ta.NoNode, Kind: ta.KindInput}, At: 0, Seq: 0},
		{Action: ta.Action{Name: ta.NameSendMsg, Node: 0, Peer: 1, Kind: ta.KindInternal, Payload: "m"}, At: 5, Seq: 1},
		{Action: ta.Action{Name: ta.NameRecvMsg, Node: 1, Peer: 0, Kind: ta.KindInternal, Payload: "m"}, At: 25, Seq: 2},
		{Action: ta.Action{Name: "RETURN", Node: 0, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: "v"}, At: 30, Seq: 3},
	}
}

func runTool(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestSummaryDefault(t *testing.T) {
	path := writeTrace(t, sample())
	code, out, _ := runTool(t, "", path)
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "events: 4 total") || !strings.Contains(out, "RETURN") {
		t.Errorf("out = %q", out)
	}
}

func TestTimelineAndDelays(t *testing.T) {
	path := writeTrace(t, sample())
	code, out, _ := runTool(t, "", "-timeline", "-delays", "-width", "40", path)
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "legend:") {
		t.Errorf("no timeline: %q", out)
	}
	if !strings.Contains(out, "SENDMSG → RECVMSG") {
		t.Errorf("no delays: %q", out)
	}
}

func TestDelaysNoMessages(t *testing.T) {
	path := writeTrace(t, ta.Trace{
		{Action: ta.Action{Name: "READ", Node: 0, Peer: ta.NoNode, Kind: ta.KindInput}, At: 0},
	})
	_, out, _ := runTool(t, "", "-delays", path)
	if !strings.Contains(out, "no complete message pairs") {
		t.Errorf("out = %q", out)
	}
}

func TestMinEpsSelf(t *testing.T) {
	path := writeTrace(t, sample())
	code, out, _ := runTool(t, "", "-mineps", path, path)
	if code != 0 || !strings.Contains(out, "smallest ε") || !strings.Contains(out, "0s") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestMinEpsUnrelated(t *testing.T) {
	path := writeTrace(t, sample())
	other := writeTrace(t, ta.Trace{
		{Action: ta.Action{Name: "DIFFERENT", Node: 0, Peer: ta.NoNode, Kind: ta.KindOutput}, At: 0},
	})
	code, out, _ := runTool(t, "", "-mineps", other, path)
	if code != 1 || !strings.Contains(out, "not =_ε related") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestStdin(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runTool(t, buf.String(), "-")
	if code != 0 || !strings.Contains(out, "events: 4 total") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runTool(t, ""); code != 2 {
		t.Error("missing arg accepted")
	}
	if code, _, _ := runTool(t, "junk", "-"); code != 2 {
		t.Error("bad stdin accepted")
	}
	if code, _, _ := runTool(t, "", filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Error("missing file accepted")
	}
	path := writeTrace(t, sample())
	if code, _, _ := runTool(t, "", "-mineps", filepath.Join(t.TempDir(), "missing"), path); code != 2 {
		t.Error("missing mineps file accepted")
	}
}
