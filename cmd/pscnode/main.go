// Command pscnode is one fleet node: an OS process hosting a node's
// register instances and heartbeat detector on the live runtime, meshed
// to its peers over TCP, remote-controlled by the pscfleet plane that
// spawned it. It is not meant to be launched by hand — the plane passes
// the epoch, incarnation, and model parameters on the command line and
// speaks the control protocol over the -plane connection.
//
// SIGINT/SIGTERM trigger the same graceful drain a Shutdown command
// does: the client surface closes, the runtime stops, the recorder's
// tail ships to the plane, and the process says Bye before exiting —
// so an operator's ^C is distinguishable from a chaos SIGKILL.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psclock/internal/fleet"
	"psclock/internal/simtime"
)

func main() {
	var (
		node        = flag.Int("node", -1, "this node's ID")
		n           = flag.Int("n", 0, "fleet size")
		registers   = flag.Int("registers", 1, "data registers per node")
		incarnation = flag.Int("incarnation", 0, "restart incarnation (0 = original)")
		plane       = flag.String("plane", "", "control-plane address")
		epoch       = flag.Int64("epoch", 0, "fleet epoch (unix nanoseconds)")
		seed        = flag.Int64("seed", 1, "rng seed")
		tiers       = flag.String("tiers", "", "per-register consistency tiers")

		eps        = flag.Duration("eps", 2*time.Millisecond, "clock precision ε")
		d1         = flag.Duration("d1", 0, "min message delay d1")
		d2         = flag.Duration("d2", 10*time.Millisecond, "max message delay d2")
		delta      = flag.Duration("delta", time.Millisecond, "broadcast spacing δ")
		c          = flag.Duration("c", 0, "read/write cost split c")
		ell        = flag.Duration("ell", 5*time.Millisecond, "timer lateness budget ℓ")
		detPeriod  = flag.Duration("detperiod", 150*time.Millisecond, "heartbeat period π")
		detTimeout = flag.Duration("dettimeout", 0, "heartbeat timeout τ (0 = safe default)")
		beat       = flag.Duration("beat", 100*time.Millisecond, "plane beat period")
		verbose    = flag.Bool("v", false, "log to stderr")
	)
	flag.Parse()

	if *node < 0 || *n < 2 || *plane == "" || *epoch == 0 {
		fmt.Fprintln(os.Stderr, "pscnode: -node, -n, -plane, and -epoch are required (launched by pscfleet)")
		os.Exit(2)
	}
	sim := func(d time.Duration) simtime.Duration {
		s, err := simtime.FromWall(d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pscnode: bad duration %v: %v\n", d, err)
			os.Exit(2)
		}
		return s
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	err := fleet.RunDaemon(fleet.DaemonConfig{
		Node:          *node,
		N:             *n,
		Registers:     *registers,
		Incarnation:   *incarnation,
		PlaneAddr:     *plane,
		EpochUnixNano: *epoch,
		Seed:          *seed,
		Tiers:         *tiers,
		Eps:           sim(*eps),
		D1:            sim(*d1),
		D2:            sim(*d2),
		Delta:         sim(*delta),
		C:             sim(*c),
		Ell:           sim(*ell),
		DetPeriod:     sim(*detPeriod),
		DetTimeout:    sim(*detTimeout),
		BeatPeriod:    *beat,
		Interrupt:     sigs,
		Verbose:       *verbose,
		Stderr:        os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pscnode[%d]: %v\n", *node, err)
		os.Exit(1)
	}
}
