// Command pscbench regenerates the experiment tables and figure series of
// EXPERIMENTS.md: one experiment per quantitative claim of the paper.
//
// Usage:
//
//	pscbench                    # run all experiments
//	pscbench -list              # list experiments
//	pscbench -run E3,E4         # run a subset
//	pscbench -parallel 4        # cap the row-level worker pool at 4
//	pscbench -json              # also write BENCH_results.json
//	pscbench -compare old.json  # diff wall/ops-per-sec vs a previous report
//	pscbench -dense             # dense differential-oracle executors (no coalescing)
//	pscbench -shards 4          # sharded conservative-parallel executors
//	pscbench -stream            # long-horizon streaming pipeline measurement
//	pscbench -streamops 1000000 # operation count for -stream
//	pscbench -checkshards 4     # sharded parallel verification (experiments + -stream)
//	pscbench -approx            # also measure the ε-approximate checker in -stream
//	pscbench -shardsweep        # GOMAXPROCS × shards scaling curve of the sharded executor
//	pscbench -cpuprofile cpu.pb # write a CPU profile of the run
//	pscbench -memprofile mem.pb # write a heap profile at exit
//
// Experiments run one after another; parallelism lives inside each
// experiment, which fans its seeded rows over a bounded worker pool
// (default width GOMAXPROCS, capped with -parallel). Keeping the
// experiments themselves sequential leaves E10's wall-clock throughput
// figures uncontended.
//
// The exit status is nonzero if any experiment's assertions fail, or if
// -compare detects a regression beyond its tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"psclock/internal/core"
	"psclock/internal/experiments"
	"psclock/internal/fleet"
	"psclock/internal/live"
)

// benchFile is what -json writes.
const benchFile = "BENCH_results.json"

// jsonResult is one experiment's machine-readable outcome.
type jsonResult struct {
	ID       string             `json:"id"`
	Title    string             `json:"title"`
	Pass     bool               `json:"pass"`
	WallMS   float64            `json:"wall_ms"`
	Failures []string           `json:"failures,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// jsonReport is the top-level shape of BENCH_results.json. Besides the
// results it records the effective execution settings, so -compare can
// flag a diff between reports produced under different configurations
// before anyone reads meaning into its deltas.
type jsonReport struct {
	Parallelism int         `json:"parallelism"`
	Shards      int         `json:"shards"`
	CheckShards int         `json:"check_shards,omitempty"`
	Dense       bool        `json:"dense"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	TotalWallMS float64     `json:"total_wall_ms"`
	Stream      *jsonStream `json:"stream,omitempty"`
	// Live is the pscserve wall-clock section (the pipelined headline
	// run); LiveClosed is its closed-loop one-op-in-flight latency
	// baseline; LiveTiered is the mixed-consistency run with per-tier
	// latency splits. pscbench never produces any of them, but carries
	// existing ones forward when rewriting the file so the two tools
	// co-own BENCH_results.json.
	Live       *live.Report `json:"live,omitempty"`
	LiveClosed *live.Report `json:"live_closed,omitempty"`
	LiveTiered *live.Report `json:"live_tiered,omitempty"`
	// LiveFleet is the pscfleet multi-process chaos section: node daemons
	// as real OS processes under orchestrated fault injection, with every
	// fault classified against its expected outcome.
	LiveFleet *fleet.Report `json:"live_fleet,omitempty"`
	// ShardScaling is the -shardsweep section: the sharded executor's
	// GOMAXPROCS × shards scaling curve (see shardsweep.go).
	ShardScaling *jsonShardScaling `json:"shard_scaling,omitempty"`
	Experiments  []jsonResult      `json:"experiments"`
}

// jsonStream records the -stream measurement: the long-horizon workload
// verified through the streaming pipeline with retention off, plus a
// retained-pipeline baseline at a memory-feasible operation count. The
// projected fields scale the baseline's peak heap linearly to the
// streaming run's operation count — retention's live heap grows linearly
// with the run, which is the comparison the streaming pipeline exists to
// win.
type jsonStream struct {
	Ops int `json:"ops"`
	// GOMAXPROCS is recorded per section: a section measured under a
	// different parallelism than the baseline's is an apples-to-oranges
	// throughput comparison even when the top-level settings match.
	GOMAXPROCS    int     `json:"gomaxprocs,omitempty"`
	Pass          bool    `json:"pass"`
	WallMS        float64 `json:"wall_ms"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	PeakHeapBytes float64 `json:"peak_heap_bytes"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	States        int     `json:"states"`

	RetainedOps           int     `json:"retained_ops"`
	RetainedPeakHeapBytes float64 `json:"retained_peak_heap_bytes"`
	RetainedAllocsPerOp   float64 `json:"retained_allocs_per_op"`
	// ProjectedRetainedHeapBytes = retained peak heap scaled to Ops.
	ProjectedRetainedHeapBytes float64 `json:"projected_retained_heap_bytes"`
	// HeapRatio = projected retained heap over streaming peak heap.
	HeapRatio float64 `json:"heap_ratio"`

	// The checker-throughput sub-sections (-checkshards / -approx): a
	// multi-register command stream captured once, replayed through each
	// checker variant so the ops/s ratios are checker speedups, not
	// executor artifacts. CheckSeq is the sequential inline baseline,
	// CheckSharded the worker-pool fan-out, CheckApprox the ε-approximate
	// mode (on the same shard count as CheckSharded).
	CheckSeq     *jsonStreamCheck `json:"check_seq,omitempty"`
	CheckSharded *jsonStreamCheck `json:"check_sharded,omitempty"`
	CheckApprox  *jsonStreamCheck `json:"check_approx,omitempty"`
}

// jsonStreamCheck is one replayed checker-variant measurement.
type jsonStreamCheck struct {
	Shards        int     `json:"shards"`
	ApproxEpsUS   float64 `json:"approx_eps_us,omitempty"`
	Registers     int     `json:"registers"`
	Ops           int     `json:"ops"`
	WallMS        float64 `json:"wall_ms"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	PeakHeapBytes float64 `json:"peak_heap_bytes"`
	States        int     `json:"states"`
	Pruned        int     `json:"pruned,omitempty"`
	Verdict       string  `json:"verdict"`
	// SpeedupVsSeq is OpsPerSec over CheckSeq's; 0 for CheckSeq itself.
	SpeedupVsSeq float64 `json:"speedup_vs_seq,omitempty"`
	Pass         bool    `json:"pass"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pscbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	only := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	parallel := fs.Int("parallel", 0, "row-level worker pool width per experiment (<1: GOMAXPROCS)")
	emitJSON := fs.Bool("json", false, "write per-experiment wall time, metrics, and pass/fail to "+benchFile)
	comparePath := fs.String("compare", "", "previous BENCH_results.json to diff against; regressions beyond -tolerance exit nonzero")
	tolerance := fs.Float64("tolerance", 0.20, "relative regression tolerance for -compare (0.20 = 20%)")
	dense := fs.Bool("dense", false, "run every executor on the dense differential-oracle path (no tick/step coalescing)")
	shards := fs.Int("shards", 0, "shard count for conservative-parallel execution (<2: sequential); also the default for experiments that build their own systems")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file after the experiment runs")
	stream := fs.Bool("stream", false, "after the experiments, run the long-horizon streaming pipeline measurement and record peak heap and allocs/op")
	streamOps := fs.Int("streamops", 1_000_000, "operation count for the -stream measurement")
	checkShards := fs.Int("checkshards", 0, "sharded-verification worker count (<2: sequential); experiments gain a sharded verdict-parity twin per checker, -stream gains checker-throughput sub-sections")
	approx := fs.Bool("approx", false, "with -stream, also measure the ε-approximate checker variant")
	shardSweep := fs.Bool("shardsweep", false, "after the experiments, measure the sharded executor's GOMAXPROCS × shards scaling curve")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *dense {
		defer core.SetDenseExecutors(core.SetDenseExecutors(true))
	}
	if *shards > 1 {
		defer core.SetDefaultShards(core.SetDefaultShards(*shards))
	}
	if *checkShards > 1 {
		defer experiments.SetCheckShards(experiments.SetCheckShards(*checkShards))
	}

	// Load the baseline up front: -json overwrites BENCH_results.json, and
	// comparing against one's own freshly written report would always pass.
	var baseline jsonReport
	if *comparePath != "" {
		var err error
		if baseline, err = loadReport(*comparePath); err != nil {
			fmt.Fprintf(os.Stderr, "pscbench: -compare: %v\n", err)
			return 2
		}
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	prev := experiments.SetParallelism(*parallel)
	defer experiments.SetParallelism(prev)

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "pscbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pscbench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pscbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	report := jsonReport{
		Parallelism: experiments.Parallelism(),
		Shards:      core.DefaultShards(),
		CheckShards: experiments.CheckShards(),
		Dense:       *dense,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	start := time.Now()
	failed := 0
	for _, e := range selected {
		t0 := time.Now()
		r := e.Run()
		wall := time.Since(t0)
		fmt.Println(r)
		if !r.Pass() {
			failed++
		}
		report.Experiments = append(report.Experiments, jsonResult{
			ID:       r.ID,
			Title:    r.Title,
			Pass:     r.Pass(),
			WallMS:   float64(wall.Microseconds()) / 1000,
			Failures: r.Failures,
			Metrics:  r.Metrics,
		})
	}
	if *stream {
		js, err := runStream(*streamOps, *checkShards, *approx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pscbench: -stream: %v\n", err)
			return 1
		}
		report.Stream = js
		if !js.Pass {
			failed++
		}
		for _, sub := range []*jsonStreamCheck{js.CheckSeq, js.CheckSharded, js.CheckApprox} {
			if sub != nil && !sub.Pass {
				failed++
			}
		}
	}
	if *shardSweep {
		report.ShardScaling = runShardSweep()
		if !report.ShardScaling.Pass {
			failed++
		}
	}
	report.TotalWallMS = float64(time.Since(start).Microseconds()) / 1000

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pscbench: -memprofile: %v\n", err)
			return 2
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pscbench: -memprofile: %v\n", err)
			return 2
		}
		f.Close()
	}

	if *emitJSON {
		// Preserve the live section pscserve wrote, if any: -json rewrites
		// the whole file, but the live runtime's results are not ours to
		// drop.
		if prev, err := loadReport(benchFile); err == nil {
			report.Live = prev.Live
			report.LiveClosed = prev.LiveClosed
			report.LiveTiered = prev.LiveTiered
			report.LiveFleet = prev.LiveFleet
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pscbench: %v\n", err)
			return 2
		}
		if err := os.WriteFile(benchFile, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pscbench: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "pscbench: wrote %s (%d experiments, %.0f ms total)\n",
			benchFile, len(report.Experiments), report.TotalWallMS)
	}

	if *comparePath != "" {
		regressions := compareReports(baseline, report, *tolerance)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "pscbench: regression: %s\n", r)
		}
		if len(regressions) > 0 {
			return 1
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pscbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
