// Command pscbench regenerates the experiment tables and figure series of
// EXPERIMENTS.md: one experiment per quantitative claim of the paper.
//
// Usage:
//
//	pscbench            # run all experiments
//	pscbench -list      # list experiments
//	pscbench -run E3,E4 # run a subset
//
// The exit status is nonzero if any experiment's assertions fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"psclock/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pscbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	only := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	parallel := fs.Bool("parallel", false, "run experiments concurrently (output printed in order; E10's wall-clock figures will reflect contention)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "pscbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	results := make([]experiments.Result, len(selected))
	if *parallel {
		var wg sync.WaitGroup
		for i, e := range selected {
			wg.Add(1)
			go func(i int, e experiments.Experiment) {
				defer wg.Done()
				results[i] = e.Run()
			}(i, e)
		}
		wg.Wait()
	} else {
		for i, e := range selected {
			results[i] = e.Run()
			fmt.Println(results[i])
		}
	}
	failed := 0
	for i, r := range results {
		if *parallel {
			fmt.Println(r)
		}
		_ = i
		if !r.Pass() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pscbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
