package main

import (
	"fmt"

	"psclock/internal/experiments"
)

// retainedBaselineCap bounds the retained-pipeline baseline run: retention
// at the full -streamops scale is exactly the memory profile the
// streaming pipeline exists to avoid, so the baseline runs at a feasible
// size and its peak heap is projected linearly to the streaming scale.
const retainedBaselineCap = 20_000

// runStream executes the -stream measurement: the long-horizon workload
// through the streaming pipeline (retention off, online checker, O(window)
// memory), then the retained baseline, and prints the comparison.
func runStream(ops int) (*jsonStream, error) {
	fmt.Printf("=== stream: long-horizon streaming pipeline (%d ops) ===\n", ops)
	sr, err := experiments.StreamRun(ops, false)
	if err != nil {
		return nil, err
	}
	baseOps := ops
	if baseOps > retainedBaselineCap {
		baseOps = retainedBaselineCap
	}
	rr, err := experiments.StreamRun(baseOps, true)
	if err != nil {
		return nil, err
	}
	js := &jsonStream{
		Ops:           sr.Ops,
		Pass:          sr.OK,
		WallMS:        sr.WallMS,
		OpsPerSec:     sr.OpsPerSec,
		PeakHeapBytes: float64(sr.PeakHeapBytes),
		AllocsPerOp:   sr.AllocsPerOp,
		States:        sr.States,

		RetainedOps:           rr.Ops,
		RetainedPeakHeapBytes: float64(rr.PeakHeapBytes),
		RetainedAllocsPerOp:   rr.AllocsPerOp,
	}
	if rr.Ops > 0 {
		js.ProjectedRetainedHeapBytes = float64(rr.PeakHeapBytes) * float64(sr.Ops) / float64(rr.Ops)
	}
	if sr.PeakHeapBytes > 0 {
		js.HeapRatio = js.ProjectedRetainedHeapBytes / float64(sr.PeakHeapBytes)
	}
	fmt.Printf("streaming: %d ops in %.0f ms (%.0f ops/s), peak heap %.1f KiB, %.1f allocs/op, linearizable=%v (states %d)\n",
		sr.Ops, sr.WallMS, sr.OpsPerSec, float64(sr.PeakHeapBytes)/(1<<10), sr.AllocsPerOp, sr.OK, sr.States)
	fmt.Printf("retained baseline: %d ops, peak heap %.1f MiB, %.1f allocs/op — projected to %d ops: %.1f MiB (ratio %.1fx)\n",
		rr.Ops, float64(rr.PeakHeapBytes)/(1<<20), rr.AllocsPerOp, sr.Ops, js.ProjectedRetainedHeapBytes/(1<<20), js.HeapRatio)
	if !sr.OK {
		fmt.Printf("RESULT: FAIL (%s)\n", sr.Reason)
	} else {
		fmt.Println("RESULT: PASS")
	}
	return js, nil
}
