package main

import (
	"fmt"
	"runtime"

	"psclock/internal/experiments"
	"psclock/internal/simtime"
)

// retainedBaselineCap bounds the retained-pipeline baseline run: retention
// at the full -streamops scale is exactly the memory profile the
// streaming pipeline exists to avoid, so the baseline runs at a feasible
// size and its peak heap is projected linearly to the streaming scale.
const retainedBaselineCap = 20_000

// approxEps is the pruning band of the -approx checker variant: orderings
// distinguishable only within this uncertainty of a settling deadline are
// skipped. Set to the workload's upper message-delay bound d₂ (3ms) —
// the scale at which operation windows overlap — so the band absorbs the
// window-scale interleavings the exact search spends its states on, while
// value dependencies (reads of the still-current value) are still placed
// exactly. Smaller bands prune less and cost more; at this one the
// workload's verdict stays definitely-linearizable at ~an order of
// magnitude fewer search states.
const approxEps = 3 * simtime.Millisecond

// checkGateMinOps is the operation floor below which the sub-section
// speed gates stay off: CI smokes at a few thousand ops measure startup,
// not throughput.
const checkGateMinOps = 200_000

// runStream executes the -stream measurement: the long-horizon workload
// through the streaming pipeline (retention off, online checker, O(window)
// memory), then the retained baseline, and prints the comparison. With
// checkShards ≥ 2 (or approx), it also measures checker-only throughput:
// capture a multi-register run's checker command stream once, replay it
// through the sequential, sharded, and ε-approximate variants, and gate
// verdict equality always, speedups only where they are meaningful
// (GOMAXPROCS ≥ 4 and at least checkGateMinOps operations).
func runStream(ops, checkShards int, approx bool) (*jsonStream, error) {
	fmt.Printf("=== stream: long-horizon streaming pipeline (%d ops) ===\n", ops)
	sr, err := experiments.StreamRun(ops, false)
	if err != nil {
		return nil, err
	}
	baseOps := ops
	if baseOps > retainedBaselineCap {
		baseOps = retainedBaselineCap
	}
	rr, err := experiments.StreamRun(baseOps, true)
	if err != nil {
		return nil, err
	}
	js := &jsonStream{
		Ops:           sr.Ops,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Pass:          sr.OK,
		WallMS:        sr.WallMS,
		OpsPerSec:     sr.OpsPerSec,
		PeakHeapBytes: float64(sr.PeakHeapBytes),
		AllocsPerOp:   sr.AllocsPerOp,
		States:        sr.States,

		RetainedOps:           rr.Ops,
		RetainedPeakHeapBytes: float64(rr.PeakHeapBytes),
		RetainedAllocsPerOp:   rr.AllocsPerOp,
	}
	if rr.Ops > 0 {
		js.ProjectedRetainedHeapBytes = float64(rr.PeakHeapBytes) * float64(sr.Ops) / float64(rr.Ops)
	}
	if sr.PeakHeapBytes > 0 {
		js.HeapRatio = js.ProjectedRetainedHeapBytes / float64(sr.PeakHeapBytes)
	}
	fmt.Printf("streaming: %d ops in %.0f ms (%.0f ops/s), peak heap %.1f KiB, %.1f allocs/op, linearizable=%v (states %d)\n",
		sr.Ops, sr.WallMS, sr.OpsPerSec, float64(sr.PeakHeapBytes)/(1<<10), sr.AllocsPerOp, sr.OK, sr.States)
	fmt.Printf("retained baseline: %d ops, peak heap %.1f MiB, %.1f allocs/op — projected to %d ops: %.1f MiB (ratio %.1fx)\n",
		rr.Ops, float64(rr.PeakHeapBytes)/(1<<20), rr.AllocsPerOp, sr.Ops, js.ProjectedRetainedHeapBytes/(1<<20), js.HeapRatio)
	if !sr.OK {
		fmt.Printf("RESULT: FAIL (%s)\n", sr.Reason)
	} else {
		fmt.Println("RESULT: PASS")
	}
	if checkShards >= 2 || approx {
		if err := runCheckVariants(js, ops, checkShards, approx); err != nil {
			return nil, err
		}
	}
	return js, nil
}

// runCheckVariants captures the checker command stream and fills the
// check_seq / check_sharded / check_approx sub-sections.
func runCheckVariants(js *jsonStream, ops, checkShards int, approx bool) error {
	registers := checkShards
	if registers < 2 {
		registers = 4
	}
	fmt.Printf("=== stream: checker throughput (%d ops, %d registers, %d shards) ===\n", ops, registers, checkShards)
	cmds, err := experiments.CaptureVerifyCmds(ops, registers)
	if err != nil {
		return err
	}
	gateSpeed := runtime.GOMAXPROCS(0) >= 4 && ops >= checkGateMinOps
	if !gateSpeed {
		fmt.Printf("(speed gates off: GOMAXPROCS=%d, ops=%d — need >=4 and >=%d; verdict equality still gated)\n",
			runtime.GOMAXPROCS(0), ops, checkGateMinOps)
	}
	seq := experiments.VerifyThroughput(cmds, 0, 0)
	js.CheckSeq = toStreamCheck(seq, registers, 0)
	js.CheckSeq.Pass = seq.OK
	printCheck("seq", js.CheckSeq, seq.Reason)
	if checkShards >= 2 {
		sh := experiments.VerifyThroughput(cmds, checkShards, 0)
		js.CheckSharded = toStreamCheck(sh, registers, seq.OpsPerSec)
		js.CheckSharded.Pass = sh.OK == seq.OK && sh.Reason == seq.Reason &&
			sh.States == seq.States && sh.Pruned == seq.Pruned
		if !js.CheckSharded.Pass {
			fmt.Printf("FAIL: sharded verdict {%v %q states=%d} != sequential {%v %q states=%d}\n",
				sh.OK, sh.Reason, sh.States, seq.OK, seq.Reason, seq.States)
		}
		if gateSpeed && js.CheckSharded.SpeedupVsSeq < 4 {
			js.CheckSharded.Pass = false
			fmt.Printf("FAIL: sharded speedup %.2fx < 4x sequential\n", js.CheckSharded.SpeedupVsSeq)
		}
		printCheck("sharded", js.CheckSharded, sh.Reason)
	}
	if approx {
		ashards := checkShards
		if ashards < 2 {
			ashards = 0
		}
		ap := experiments.VerifyThroughput(cmds, ashards, approxEps)
		js.CheckApprox = toStreamCheck(ap, registers, seq.OpsPerSec)
		// Soundness: on a stream the exact checker accepts, the approximate
		// one must answer linearizable or ε-uncertain, never a definite no;
		// on a stream the exact checker rejects, it must not claim a
		// witness (an approximate OK names a concrete order, so it can
		// never contradict an exhaustive failure).
		if seq.OK {
			js.CheckApprox.Pass = ap.OK || ap.Pruned > 0
		} else {
			js.CheckApprox.Pass = !ap.OK
		}
		if !js.CheckApprox.Pass {
			fmt.Printf("FAIL: approximate verdict %s contradicts exact %s\n", ap.Verdict, seq.Verdict)
		}
		if gateSpeed && js.CheckSharded != nil && js.CheckApprox.OpsPerSec <= js.CheckSharded.OpsPerSec {
			js.CheckApprox.Pass = false
			fmt.Printf("FAIL: approximate %.0f ops/s not faster than exact-sharded %.0f ops/s\n",
				js.CheckApprox.OpsPerSec, js.CheckSharded.OpsPerSec)
		}
		printCheck("approx", js.CheckApprox, ap.Reason)
	}
	return nil
}

// toStreamCheck converts a VerifyReport into its JSON form.
func toStreamCheck(r experiments.VerifyReport, registers int, seqOpsPerSec float64) *jsonStreamCheck {
	c := &jsonStreamCheck{
		Shards:        r.Shards,
		ApproxEpsUS:   float64(r.ApproxEps) / float64(simtime.Microsecond),
		Registers:     registers,
		Ops:           r.Ops,
		WallMS:        r.WallMS,
		OpsPerSec:     r.OpsPerSec,
		PeakHeapBytes: float64(r.PeakHeapBytes),
		States:        r.States,
		Pruned:        r.Pruned,
		Verdict:       r.Verdict,
	}
	if seqOpsPerSec > 0 {
		c.SpeedupVsSeq = r.OpsPerSec / seqOpsPerSec
	}
	return c
}

// printCheck renders one checker-variant row.
func printCheck(name string, c *jsonStreamCheck, reason string) {
	speed := ""
	if c.SpeedupVsSeq > 0 {
		speed = fmt.Sprintf(", %.2fx vs seq", c.SpeedupVsSeq)
	}
	pruned := ""
	if c.Pruned > 0 {
		pruned = fmt.Sprintf(", pruned %d", c.Pruned)
	}
	fmt.Printf("check %-8s %d ops in %.0f ms (%.0f ops/s%s), peak heap %.1f KiB, verdict %s (states %d%s): %s\n",
		name+":", c.Ops, c.WallMS, c.OpsPerSec, speed, c.PeakHeapBytes/(1<<10), c.Verdict, c.States, pruned, passMark(c.Pass))
	if !c.Pass && reason != "" {
		fmt.Printf("  reason: %s\n", reason)
	}
}

// passMark renders a sub-section gate outcome.
func passMark(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
