package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// minCompareWallMS is the floor below which wall-time deltas are noise:
// a 3ms experiment doubling to 6ms is scheduler jitter, not a regression.
// Throughput (ops/s) metrics are rates over a time-boxed measurement and
// are compared regardless of magnitude.
const minCompareWallMS = 25.0

// loadReport reads a previous BENCH_results.json.
func loadReport(path string) (jsonReport, error) {
	var rep jsonReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// warnSettingsMismatch prints a warning for every execution setting that
// differs between the two reports: a throughput delta between a sequential
// and a sharded run, or a coalesced and a dense run, measures the
// configuration change, not a regression. Warnings do not fail the
// comparison — cross-configuration diffs are sometimes exactly the point —
// they just make the apples-to-oranges explicit.
func warnSettingsMismatch(old, cur jsonReport) {
	diff := func(name string, o, n any) {
		if o != n {
			fmt.Fprintf(os.Stderr, "pscbench: warning: settings differ: %s was %v, now %v — deltas below reflect the configuration change\n", name, o, n)
		}
	}
	diff("parallelism", old.Parallelism, cur.Parallelism)
	diff("shards", old.Shards, cur.Shards)
	diff("dense", old.Dense, cur.Dense)
	diff("gomaxprocs", old.GOMAXPROCS, cur.GOMAXPROCS)
}

// compareReports prints per-experiment wall-time and ops/sec deltas of cur
// against old and returns the regressions: wall time grown by more than
// tol (on experiments big enough to measure), or any ops/sec metric
// dropped by more than tol.
func compareReports(old, cur jsonReport, tol float64) []string {
	warnSettingsMismatch(old, cur)
	byID := make(map[string]jsonResult, len(old.Experiments))
	for _, e := range old.Experiments {
		byID[e.ID] = e
	}
	var regressions []string
	fmt.Printf("%-5s %-28s %10s %10s %8s\n", "exp", "measure", "old", "new", "delta")
	for _, e := range cur.Experiments {
		prev, ok := byID[e.ID]
		if !ok {
			fmt.Printf("%-5s %-28s %10s %10.1f %8s\n", e.ID, "wall ms", "-", e.WallMS, "new")
			continue
		}
		mark := ""
		if prev.WallMS >= minCompareWallMS && e.WallMS > prev.WallMS*(1+tol) {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: wall %.1fms -> %.1fms (+%.0f%%, tolerance %.0f%%)",
					e.ID, prev.WallMS, e.WallMS, pct(prev.WallMS, e.WallMS), tol*100))
		}
		fmt.Printf("%-5s %-28s %10.1f %10.1f %+7.0f%%%s\n", e.ID, "wall ms", prev.WallMS, e.WallMS, pct(prev.WallMS, e.WallMS), mark)
		// Union of old and new ops/sec keys: a tracked throughput metric
		// disappearing from the report is itself a gate failure, not a
		// silent pass.
		keySet := make(map[string]bool, len(e.Metrics)+len(prev.Metrics))
		for k := range e.Metrics {
			if strings.HasPrefix(k, "ops_per_sec") {
				keySet[k] = true
			}
		}
		for k := range prev.Metrics {
			if strings.HasPrefix(k, "ops_per_sec") {
				keySet[k] = true
			}
		}
		keys := make([]string, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			o, ok := prev.Metrics[k]
			if !ok || o <= 0 {
				continue
			}
			n, ok := e.Metrics[k]
			if !ok {
				regressions = append(regressions, fmt.Sprintf("%s %s: metric missing from new report (was %.0f ops/s)", e.ID, k, o))
				fmt.Printf("%-5s %-28s %10.0f %10s %8s  REGRESSION\n", e.ID, k, o, "-", "gone")
				continue
			}
			mark := ""
			if n < o*(1-tol) {
				mark = "  REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s %s: %.0f -> %.0f ops/s (%.0f%%, tolerance %.0f%%)",
						e.ID, k, o, n, pct(o, n), tol*100))
			}
			fmt.Printf("%-5s %-28s %10.0f %10.0f %+7.0f%%%s\n", e.ID, k, o, n, pct(o, n), mark)
		}
	}
	fmt.Printf("total wall: %.0f ms -> %.0f ms (%+.0f%%)\n", old.TotalWallMS, cur.TotalWallMS, pct(old.TotalWallMS, cur.TotalWallMS))
	return regressions
}

func pct(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}
