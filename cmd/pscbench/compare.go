package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"psclock/internal/fleet"
	"psclock/internal/live"
)

// minCompareWallMS is the floor below which wall-time deltas are noise:
// a 3ms experiment doubling to 6ms is scheduler jitter, not a regression.
// Throughput (ops/s) metrics are rates over a time-boxed measurement and
// are compared regardless of magnitude.
const minCompareWallMS = 25.0

// loadReport reads a previous BENCH_results.json.
func loadReport(path string) (jsonReport, error) {
	var rep jsonReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// warnSettingsMismatch prints a warning for every execution setting that
// differs between the two reports: a throughput delta between a sequential
// and a sharded run, or a coalesced and a dense run, measures the
// configuration change, not a regression. Warnings do not fail the
// comparison — cross-configuration diffs are sometimes exactly the point —
// they just make the apples-to-oranges explicit.
func warnSettingsMismatch(old, cur jsonReport) {
	diff := func(name string, o, n any) {
		if o != n {
			fmt.Fprintf(os.Stderr, "pscbench: warning: settings differ: %s was %v, now %v — deltas below reflect the configuration change\n", name, o, n)
		}
	}
	diff("parallelism", old.Parallelism, cur.Parallelism)
	diff("shards", old.Shards, cur.Shards)
	diff("dense", old.Dense, cur.Dense)
	diff("gomaxprocs", old.GOMAXPROCS, cur.GOMAXPROCS)
}

// compareReports prints per-experiment wall-time and ops/sec deltas of cur
// against old and returns the regressions: wall time grown by more than
// tol (on experiments big enough to measure), or any ops/sec metric
// dropped by more than tol.
func compareReports(old, cur jsonReport, tol float64) []string {
	warnSettingsMismatch(old, cur)
	byID := make(map[string]jsonResult, len(old.Experiments))
	for _, e := range old.Experiments {
		byID[e.ID] = e
	}
	var regressions []string
	fmt.Printf("%-5s %-28s %10s %10s %8s\n", "exp", "measure", "old", "new", "delta")
	for _, e := range cur.Experiments {
		prev, ok := byID[e.ID]
		if !ok {
			fmt.Printf("%-5s %-28s %10s %10.1f %8s\n", e.ID, "wall ms", "-", e.WallMS, "new")
			continue
		}
		mark := ""
		if prev.WallMS >= minCompareWallMS && e.WallMS > prev.WallMS*(1+tol) {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: wall %.1fms -> %.1fms (+%.0f%%, tolerance %.0f%%)",
					e.ID, prev.WallMS, e.WallMS, pct(prev.WallMS, e.WallMS), tol*100))
		}
		fmt.Printf("%-5s %-28s %10.1f %10.1f %+7.0f%%%s\n", e.ID, "wall ms", prev.WallMS, e.WallMS, pct(prev.WallMS, e.WallMS), mark)
		// Union of old and new gated keys: a tracked metric disappearing
		// from the report is itself a gate failure, not a silent pass.
		// Throughput metrics regress downward; memory metrics (peak heap,
		// allocs/op) regress upward.
		keySet := make(map[string]bool, len(e.Metrics)+len(prev.Metrics))
		for k := range e.Metrics {
			if gatedMetric(k) {
				keySet[k] = true
			}
		}
		for k := range prev.Metrics {
			if gatedMetric(k) {
				keySet[k] = true
			}
		}
		keys := make([]string, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			o, ok := prev.Metrics[k]
			if !ok || o <= 0 {
				continue
			}
			n, ok := e.Metrics[k]
			if !ok {
				regressions = append(regressions, fmt.Sprintf("%s %s: metric missing from new report (was %.0f)", e.ID, k, o))
				fmt.Printf("%-5s %-28s %10.0f %10s %8s  REGRESSION\n", e.ID, k, o, "-", "gone")
				continue
			}
			mark := ""
			if regressed(k, o, n, tol) {
				mark = "  REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s %s: %.0f -> %.0f (%+.0f%%, tolerance %.0f%%)",
						e.ID, k, o, n, pct(o, n), tol*100))
			}
			fmt.Printf("%-5s %-28s %10.0f %10.0f %+7.0f%%%s\n", e.ID, k, o, n, pct(o, n), mark)
		}
	}
	regressions = append(regressions, compareStream(old, cur, tol)...)
	regressions = append(regressions, compareLive(old, cur, tol)...)
	regressions = append(regressions, compareFleet(old.LiveFleet, cur.LiveFleet, tol)...)
	regressions = append(regressions, compareShardScaling(old, cur)...)
	fmt.Printf("total wall: %.0f ms -> %.0f ms (%+.0f%%)\n", old.TotalWallMS, cur.TotalWallMS, pct(old.TotalWallMS, cur.TotalWallMS))
	return regressions
}

// memoryMetric reports whether a metric gates upward: more bytes or more
// allocations per operation is the regression. (Derived ratios like
// heap_ratio_retained_over_stream are informational and ungated.)
func memoryMetric(k string) bool {
	return strings.HasPrefix(k, "peak_heap") || strings.HasPrefix(k, "allocs_per_op")
}

// gatedMetric reports whether the comparison gates this metric at all.
func gatedMetric(k string) bool {
	return strings.HasPrefix(k, "ops_per_sec") || memoryMetric(k)
}

// Memory readings carry GC-timing noise that relative tolerance alone
// cannot absorb when the absolute numbers are small (a streaming run's
// whole live window is tens of KiB): a memory regression must clear the
// relative tolerance AND an absolute floor. A real leak — say the online
// checker's window failing to GC — blows through both immediately.
const (
	memSlackBytes  = 256 * 1024
	memSlackAllocs = 2.0
)

// regressed applies the metric's direction: throughput must not drop,
// memory must not grow, each beyond tol (plus the absolute memory floor).
func regressed(k string, old, cur, tol float64) bool {
	if memoryMetric(k) {
		slack := memSlackAllocs
		if strings.HasPrefix(k, "peak_heap") {
			slack = memSlackBytes
		}
		return cur > old*(1+tol) && cur-old > slack
	}
	return cur < old*(1-tol)
}

// compareStream diffs the -stream sections of two reports: streaming peak
// heap or allocs/op growing beyond tol is a regression — the memory
// profile is the whole point of the streaming pipeline. A baseline
// section the candidate run dropped is a regression (a silently vanished
// section is indistinguishable from a gate that stopped running); a
// section only the candidate has is merely new coverage.
func compareStream(old, cur jsonReport, tol float64) []string {
	if old.Stream == nil || cur.Stream == nil {
		if old.Stream != nil {
			return []string{"stream: baseline has a -stream section but the new report omits it (run with -stream to compare)"}
		}
		if cur.Stream != nil {
			fmt.Fprintln(os.Stderr, "pscbench: note: -stream section is new in this report; no baseline to compare")
		}
		return nil
	}
	o, n := old.Stream, cur.Stream
	warnSectionProcs("stream", o.GOMAXPROCS, n.GOMAXPROCS)
	if o.Ops != n.Ops {
		fmt.Fprintf(os.Stderr, "pscbench: warning: -stream sections measure different op counts (%d vs %d); streaming memory deltas not compared\n", o.Ops, n.Ops)
		return nil
	}
	var regressions []string
	row := func(name string, ov, nv float64, gate bool) {
		mark := ""
		if gate && ov > 0 && regressed(name, ov, nv, tol) {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("stream %s: %.0f -> %.0f (%+.0f%%, tolerance %.0f%%)", name, ov, nv, pct(ov, nv), tol*100))
		}
		fmt.Printf("%-5s %-28s %10.0f %10.0f %+7.0f%%%s\n", "strm", name, ov, nv, pct(ov, nv), mark)
	}
	row("ops_per_sec", o.OpsPerSec, n.OpsPerSec, false)
	row("peak_heap_bytes", o.PeakHeapBytes, n.PeakHeapBytes, true)
	row("allocs_per_op", o.AllocsPerOp, n.AllocsPerOp, true)
	regressions = append(regressions, compareStreamCheck("check_seq", o.CheckSeq, n.CheckSeq, tol)...)
	regressions = append(regressions, compareStreamCheck("check_sharded", o.CheckSharded, n.CheckSharded, tol)...)
	regressions = append(regressions, compareStreamCheck("check_approx", o.CheckApprox, n.CheckApprox, tol)...)
	return regressions
}

// compareStreamCheck diffs one checker-throughput sub-section: ops/s
// gates downward, peak heap upward, and a sub-section that stopped
// passing — or vanished from the candidate while the baseline has it — is
// a regression. Sub-sections from different configurations (shard count,
// ε, register count, op count) only warn: the delta would measure the
// configuration change.
func compareStreamCheck(name string, o, n *jsonStreamCheck, tol float64) []string {
	if o == nil || n == nil {
		if o != nil {
			return []string{fmt.Sprintf("stream %s: baseline has this sub-section but the new report omits it", name)}
		}
		if n != nil {
			fmt.Fprintf(os.Stderr, "pscbench: note: stream %s sub-section is new in this report; no baseline to compare\n", name)
		}
		return nil
	}
	if o.Shards != n.Shards || o.ApproxEpsUS != n.ApproxEpsUS || o.Registers != n.Registers || o.Ops != n.Ops {
		fmt.Fprintf(os.Stderr, "pscbench: warning: stream %s sub-sections ran different configurations (%d shards/ε=%.0fus/%d regs/%d ops vs %d/%.0f/%d/%d); deltas not compared\n",
			name, o.Shards, o.ApproxEpsUS, o.Registers, o.Ops, n.Shards, n.ApproxEpsUS, n.Registers, n.Ops)
		return nil
	}
	var regressions []string
	row := func(metric string, ov, nv float64, gate bool) {
		mark := ""
		if gate && ov > 0 && regressed(metric, ov, nv, tol) {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("stream %s %s: %.0f -> %.0f (%+.0f%%, tolerance %.0f%%)", name, metric, ov, nv, pct(ov, nv), tol*100))
		}
		fmt.Printf("%-5s %-28s %10.0f %10.0f %+7.0f%%%s\n", "strm", name+"."+metric, ov, nv, pct(ov, nv), mark)
	}
	row("ops_per_sec", o.OpsPerSec, n.OpsPerSec, true)
	row("peak_heap_bytes", o.PeakHeapBytes, n.PeakHeapBytes, true)
	if o.Pass && !n.Pass {
		regressions = append(regressions, fmt.Sprintf("stream %s: previously passed its gates, new run did not", name))
	}
	return regressions
}

// compareLive diffs the pscserve live sections: throughput must not drop
// beyond tol, latency percentiles print informationally (wall-clock
// latency on a shared host is too noisy to gate), and a run that stopped
// passing its online check is always a regression. Sections from
// different configurations (topology, clock or transport adversary, or
// load shape) only warn, like mismatched settings: the delta would
// measure the configuration change. A missing candidate section is only
// a note here, unlike the stream sub-sections: pscbench cannot produce
// live results itself (pscserve -json refreshes them), so every compare
// run would otherwise fail.
func compareLive(old, cur jsonReport, tol float64) []string {
	var regressions []string
	regressions = append(regressions, compareLiveSection("live", old.Live, cur.Live, tol)...)
	regressions = append(regressions, compareLiveSection("live_closed", old.LiveClosed, cur.LiveClosed, tol)...)
	regressions = append(regressions, compareLiveSection("live_tiered", old.LiveTiered, cur.LiveTiered, tol)...)
	return regressions
}

// compareLiveSection diffs one pscserve section (the pipelined "live"
// headline or the closed-loop "live_closed" baseline) under compareLive's
// rules.
func compareLiveSection(section string, o, n *live.Report, tol float64) []string {
	if o == nil || n == nil {
		if o != nil {
			fmt.Fprintf(os.Stderr, "pscbench: note: baseline has a %s section; this run has none to compare (pscserve -json refreshes it)\n", section)
		}
		if n != nil {
			fmt.Fprintf(os.Stderr, "pscbench: note: %s section is new in this report; no baseline to compare\n", section)
		}
		return nil
	}
	warnSectionProcs(section, o.GOMAXPROCS, n.GOMAXPROCS)
	if o.Nodes != n.Nodes || o.Clients != n.Clients || o.Clock != n.Clock || o.Transport != n.Transport ||
		o.Registers != n.Registers || o.Pipeline != n.Pipeline || o.Tiers != n.Tiers {
		fmt.Fprintf(os.Stderr, "pscbench: warning: %s sections ran different configurations (%d nodes/%d clients/%dr/%dp/%s/%s/tiers=%q vs %d/%d/%dr/%dp/%s/%s/tiers=%q); deltas not compared\n",
			section, o.Nodes, o.Clients, o.Registers, o.Pipeline, o.Clock, o.Transport, o.Tiers,
			n.Nodes, n.Clients, n.Registers, n.Pipeline, n.Clock, n.Transport, n.Tiers)
		return nil
	}
	var regressions []string
	row := func(name string, ov, nv float64, gate bool) {
		mark := ""
		if gate && ov > 0 && regressed(name, ov, nv, tol) {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s %s: %.0f -> %.0f (%+.0f%%, tolerance %.0f%%)", section, name, ov, nv, pct(ov, nv), tol*100))
		}
		fmt.Printf("%-11s %-28s %10.0f %10.0f %+7.0f%%%s\n", section, name, ov, nv, pct(ov, nv), mark)
	}
	row("ops_per_sec", o.OpsPerSec, n.OpsPerSec, true)
	row("read_p50_us", o.ReadP50US, n.ReadP50US, false)
	row("read_p99_us", o.ReadP99US, n.ReadP99US, false)
	row("write_p50_us", o.WriteP50US, n.WriteP50US, false)
	row("write_p99_us", o.WriteP99US, n.WriteP99US, false)
	if n.Tiers != "" {
		// Tiered runs additionally gate the seq tier's measured read
		// discount: algorithm L's reads must stay at least ε cheaper than
		// algorithm S's (the theoretical gap is 2ε; gating at ε absorbs
		// wall-clock noise). A discount that collapsed means the seq tier
		// stopped delivering the cheaper reads that justify its weaker
		// consistency.
		row("read_discount_us", o.ReadDiscountUS, n.ReadDiscountUS, false)
		if n.ReadDiscountUS < n.EpsConfigUS {
			regressions = append(regressions,
				fmt.Sprintf("%s: seq-tier read discount %.0fus below ε=%.0fus (theoretical gap 2ε=%.0fus)",
					section, n.ReadDiscountUS, n.EpsConfigUS, 2*n.EpsConfigUS))
		}
		for _, tr := range []struct {
			name string
			rep  *live.TierReport
		}{{"tier_lin", n.TierLin}, {"tier_seq", n.TierSeq}} {
			if tr.rep != nil && tr.rep.Violations > 0 {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s reported %d online-check violations", section, tr.name, tr.rep.Violations))
			}
		}
	}
	if o.Pass && !n.Pass {
		regressions = append(regressions, section+": previous run passed its online check, new run did not")
	}
	if o.RecorderDrops == 0 && n.RecorderDrops > 0 {
		regressions = append(regressions, fmt.Sprintf("%s: recorder dropped %d events (baseline dropped none)", section, n.RecorderDrops))
	}
	return regressions
}

// compareFleet diffs the pscfleet multi-process chaos section under the
// same ground rules as compareLive: pscbench cannot produce it (pscfleet
// -json refreshes it), so a missing candidate is a note, not a failure,
// and sections from different fleet configurations or chaos scripts only
// warn — the delta would measure the configuration change, not a
// regression. Within a matched pair the gates are throughput (beyond
// tol), the overall verdict, recorder drops appearing, any unexplained
// checker violation, and any chaos fault whose observed outcome stopped
// matching its scripted expectation — the last two are correctness
// gates, so they fire on the candidate alone, not just on a transition.
func compareFleet(o, n *fleet.Report, tol float64) []string {
	if o == nil || n == nil {
		if o != nil {
			fmt.Fprintf(os.Stderr, "pscbench: note: baseline has a live_fleet section; this run has none to compare (pscfleet -json refreshes it)\n")
		}
		if n != nil {
			fmt.Fprintf(os.Stderr, "pscbench: note: live_fleet section is new in this report; no baseline to compare\n")
		}
		return nil
	}
	warnSectionProcs("live_fleet", o.GOMAXPROCS, n.GOMAXPROCS)
	if o.Nodes != n.Nodes || o.Registers != n.Registers || o.Clients != n.Clients ||
		o.Clock != n.Clock || o.Tiers != n.Tiers || o.Seed != n.Seed || o.ChaosScript != n.ChaosScript {
		fmt.Fprintf(os.Stderr, "pscbench: warning: live_fleet sections ran different configurations (%d nodes/%dr/%dc/%s/seed %d/%q vs %d/%dr/%dc/%s/seed %d/%q); deltas not compared\n",
			o.Nodes, o.Registers, o.Clients, o.Clock, o.Seed, o.ChaosScript,
			n.Nodes, n.Registers, n.Clients, n.Clock, n.Seed, n.ChaosScript)
		return nil
	}
	var regressions []string
	row := func(name string, ov, nv float64, gate bool) {
		mark := ""
		if gate && ov > 0 && regressed(name, ov, nv, tol) {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("live_fleet %s: %.0f -> %.0f (%+.0f%%, tolerance %.0f%%)", name, ov, nv, pct(ov, nv), tol*100))
		}
		fmt.Printf("%-11s %-28s %10.0f %10.0f %+7.0f%%%s\n", "live_fleet", name, ov, nv, pct(ov, nv), mark)
	}
	row("ops_per_sec", o.OpsPerSec, n.OpsPerSec, true)
	row("read_p50_us", o.ReadP50US, n.ReadP50US, false)
	row("read_p99_us", o.ReadP99US, n.ReadP99US, false)
	row("write_p50_us", o.WriteP50US, n.WriteP50US, false)
	row("write_p99_us", o.WriteP99US, n.WriteP99US, false)
	if o.Pass && !n.Pass {
		regressions = append(regressions, "live_fleet: previous run passed its chaos gates, new run did not")
	}
	if o.RecorderDrops == 0 && n.RecorderDrops > 0 {
		regressions = append(regressions, fmt.Sprintf("live_fleet: recorder dropped %d events (baseline dropped none)", n.RecorderDrops))
	}
	if n.UnexplainedViolations > 0 {
		regressions = append(regressions, fmt.Sprintf("live_fleet: %d checker violations not explained by any injected fault", n.UnexplainedViolations))
	}
	if n.ChaosMismatches > 0 {
		for _, c := range n.Chaos {
			if c.Match {
				continue
			}
			regressions = append(regressions,
				fmt.Sprintf("live_fleet: %s@%dms on node %d expected %s, observed %s (%s)",
					c.Kind, c.AtMS, c.Target, c.Expected, c.Observed, c.Evidence))
		}
	}
	return regressions
}

// warnSectionProcs warns when a section's recorded GOMAXPROCS differs
// between reports: per-section throughput deltas would measure the
// parallelism change. Sections written before the field existed record 0
// and are skipped — there is nothing to compare against.
func warnSectionProcs(section string, o, n int) {
	if o != 0 && n != 0 && o != n {
		fmt.Fprintf(os.Stderr, "pscbench: warning: %s sections ran under different GOMAXPROCS (%d vs %d) — throughput deltas reflect the parallelism change\n", section, o, n)
	}
}

// compareShardScaling diffs the -shardsweep sections. The scaling curve's
// absolute ops/s are too host-sensitive to gate; what gates is the shape:
// a cell that beat sequential in the baseline (speedup ≥ 1.0×) falling
// below 1.0× is a regression — the adaptive-horizon executor's contract
// is that wins, once won, stay won. Cells are matched by their full
// configuration (model, n, shards, procs); a baseline section the
// candidate run dropped is a regression, as with the stream section.
func compareShardScaling(old, cur jsonReport) []string {
	if old.ShardScaling == nil || cur.ShardScaling == nil {
		if old.ShardScaling != nil {
			return []string{"shard_scaling: baseline has a -shardsweep section but the new report omits it (run with -shardsweep to compare)"}
		}
		if cur.ShardScaling != nil {
			fmt.Fprintln(os.Stderr, "pscbench: note: shard_scaling section is new in this report; no baseline to compare")
		}
		return nil
	}
	o, n := old.ShardScaling, cur.ShardScaling
	warnSectionProcs("shard_scaling", o.GOMAXPROCS, n.GOMAXPROCS)
	if o.NumCPU != n.NumCPU {
		fmt.Fprintf(os.Stderr, "pscbench: warning: shard_scaling sections measured on different core counts (%d vs %d CPU); speedup deltas reflect the host change\n", o.NumCPU, n.NumCPU)
	}
	type cellKey struct {
		model            string
		n, shards, procs int
	}
	byKey := make(map[cellKey]float64, len(o.Cells))
	for _, c := range o.Cells {
		byKey[cellKey{c.Model, c.N, c.Shards, c.Procs}] = c.SpeedupVsSeq
	}
	var regressions []string
	for _, c := range n.Cells {
		os_, ok := byKey[cellKey{c.Model, c.N, c.Shards, c.Procs}]
		if !ok {
			continue
		}
		mark := ""
		if os_ >= 1.0 && c.SpeedupVsSeq < 1.0 {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("shard_scaling %s n=%d shards=%d procs=%d: speedup %.2fx -> %.2fx (previously beat sequential, now does not)",
					c.Model, c.N, c.Shards, c.Procs, os_, c.SpeedupVsSeq))
		}
		fmt.Printf("%-5s %-28s %9.2fx %9.2fx %+7.0f%%%s\n", "shrd",
			fmt.Sprintf("%s.s%d.p%d speedup", c.Model, c.Shards, c.Procs), os_, c.SpeedupVsSeq, pct(os_, c.SpeedupVsSeq), mark)
	}
	if o.Pass && !n.Pass {
		regressions = append(regressions, "shard_scaling: previously passed its win gate, new run did not")
	}
	return regressions
}

func pct(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}
