package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"psclock/internal/live"
)

func TestList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("code = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := run([]string{"-run", "E99"}); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
}

func TestRunOneExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if code := run([]string{"-run", "E1"}); code != 0 {
		t.Errorf("E1 failed: code = %d", code)
	}
}

func TestParallelSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	if code := run([]string{"-parallel=2", "-run", "E1,E2"}); code != 0 {
		t.Errorf("code = %d", code)
	}
}

// writeReport marshals a fabricated baseline for -compare tests.
func writeReport(t *testing.T, path string, rep jsonReport) {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareMissingBaseline(t *testing.T) {
	if code := run([]string{"-compare", filepath.Join(t.TempDir(), "nope.json"), "-run", "E1"}); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
}

// TestCompareDetectsRegression runs E1 against a fabricated baseline whose
// numbers the real run cannot match: a huge E1 ops/sec metric must trip
// the ops gate, while a tiny sub-threshold wall time must not trip the
// wall gate (it is below the noise floor).
func TestCompareDetectsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	base := filepath.Join(t.TempDir(), "old.json")
	writeReport(t, base, jsonReport{Experiments: []jsonResult{{
		ID: "E1", WallMS: 0.001,
		Metrics: map[string]float64{"ops_per_sec_fabricated": 1e15},
	}}})
	if code := run([]string{"-compare", base, "-run", "E1"}); code != 1 {
		t.Errorf("fabricated ops/sec baseline not flagged: code = %d, want 1", code)
	}
}

// TestCompareCleanPass compares E1 against a baseline it can only improve
// on: zero metrics and a generous wall time.
func TestCompareCleanPass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	base := filepath.Join(t.TempDir(), "old.json")
	writeReport(t, base, jsonReport{Experiments: []jsonResult{{ID: "E1", WallMS: 60_000}}})
	if code := run([]string{"-compare", base, "-run", "E1"}); code != 0 {
		t.Errorf("code = %d, want 0", code)
	}
}

// TestStreamSmoke runs the -stream measurement at a small operation count
// and checks the recorded memory fields land in the JSON report.
func TestStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a streaming workload")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if code := run([]string{"-stream", "-streamops", "3000", "-json", "-run", "E1"}); code != 0 {
		t.Fatalf("code = %d", code)
	}
	buf, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Stream == nil {
		t.Fatal("report has no stream section")
	}
	if !rep.Stream.Pass || rep.Stream.Ops < 3000 || rep.Stream.PeakHeapBytes <= 0 || rep.Stream.AllocsPerOp <= 0 {
		t.Errorf("stream section incomplete: %+v", rep.Stream)
	}
	if rep.Stream.RetainedPeakHeapBytes <= rep.Stream.PeakHeapBytes {
		t.Errorf("retained baseline heap %.0f not above streaming %.0f",
			rep.Stream.RetainedPeakHeapBytes, rep.Stream.PeakHeapBytes)
	}
}

// TestCompareGatesMemoryGrowth fabricates a baseline whose memory numbers
// the real run must exceed: memory metrics gate upward, so impossible
// tiny baselines trip the gate while huge ones pass.
func TestCompareGatesMemoryGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	base := filepath.Join(t.TempDir(), "old.json")
	writeReport(t, base, jsonReport{Experiments: []jsonResult{{
		ID: "E1", WallMS: 60_000,
		Metrics: map[string]float64{"peak_heap_bytes_fabricated": 1}, // any real heap is a >20% growth
	}}})
	// E1 records no peak_heap metrics, so a fabricated baseline key must
	// trip the metric-missing gate rather than pass silently.
	if code := run([]string{"-compare", base, "-run", "E1"}); code != 1 {
		t.Errorf("vanished memory metric not flagged: code = %d, want 1", code)
	}
	writeReport(t, base, jsonReport{
		Stream:      &jsonStream{Ops: 3000, PeakHeapBytes: 1, AllocsPerOp: 0.0001},
		Experiments: []jsonResult{{ID: "E1", WallMS: 60_000}},
	})
	if code := run([]string{"-compare", base, "-stream", "-streamops", "3000", "-run", "E1"}); code != 1 {
		t.Errorf("streaming memory growth not flagged: code = %d, want 1", code)
	}
}

// TestDenseOracleRun smokes the -dense flag: the differential-oracle
// executors must still pass an experiment end to end.
func TestDenseOracleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	if code := run([]string{"-dense", "-run", "E2"}); code != 0 {
		t.Errorf("code = %d, want 0", code)
	}
}

func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if code := run([]string{"-json", "-run", "E1"}); code != 0 {
		t.Fatalf("code = %d", code)
	}
	buf, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "E1" || !rep.Experiments[0].Pass {
		t.Errorf("unexpected report: %+v", rep)
	}
	if rep.Experiments[0].WallMS <= 0 || rep.TotalWallMS <= 0 {
		t.Errorf("missing wall times: %+v", rep)
	}
}

// TestCompareLive exercises the live-section gate directly: a throughput
// drop beyond tolerance and a pass-to-fail flip regress, a configuration
// mismatch only warns, and latency growth is informational.
func TestCompareLive(t *testing.T) {
	mk := func(ops float64, pass bool) jsonReport {
		return jsonReport{Live: &live.Report{
			Nodes: 3, Clients: 3, Clock: "jitter", Transport: "tcp",
			OpsPerSec: ops, ReadP99US: 1000, Pass: pass,
		}}
	}
	if regs := compareLive(mk(1000, true), mk(950, true), 0.2); len(regs) != 0 {
		t.Errorf("5%% throughput drop within tolerance flagged: %v", regs)
	}
	if regs := compareLive(mk(1000, true), mk(500, true), 0.2); len(regs) != 1 {
		t.Errorf("50%% throughput drop: got %v, want one regression", regs)
	}
	if regs := compareLive(mk(1000, true), mk(1000, false), 0.2); len(regs) != 1 {
		t.Errorf("pass->fail flip: got %v, want one regression", regs)
	}
	other := mk(10, true)
	other.Live.Transport = "chan"
	if regs := compareLive(mk(1000, true), other, 0.2); len(regs) != 0 {
		t.Errorf("cross-configuration sections compared: %v", regs)
	}
	if regs := compareLive(jsonReport{}, mk(1000, true), 0.2); len(regs) != 0 {
		t.Errorf("missing baseline section compared: %v", regs)
	}
	// A live baseline with no candidate is a note, never a regression:
	// pscbench cannot produce live results, so every compare run omits it.
	if regs := compareLive(mk(1000, true), jsonReport{}, 0.2); len(regs) != 0 {
		t.Errorf("missing candidate live section gated: %v", regs)
	}
}

// TestCompareStreamOmission pins the vanished-section gates: a baseline
// -stream section (or checker sub-section) the candidate run dropped is a
// regression — a silently missing section is indistinguishable from a
// gate that stopped running — while candidate-only sections are new
// coverage, and mismatched sub-section configurations warn instead of
// diffing.
func TestCompareStreamOmission(t *testing.T) {
	withStream := jsonReport{Stream: &jsonStream{Ops: 1000, OpsPerSec: 50000, Pass: true}}
	if regs := compareStream(withStream, jsonReport{}, 0.2); len(regs) != 1 {
		t.Errorf("dropped -stream section: got %v, want one regression", regs)
	}
	if regs := compareStream(jsonReport{}, withStream, 0.2); len(regs) != 0 {
		t.Errorf("new -stream section gated: %v", regs)
	}
	chk := &jsonStreamCheck{Shards: 4, Registers: 4, Ops: 1000, OpsPerSec: 9000, Verdict: "linearizable", Pass: true}
	if regs := compareStreamCheck("check_sharded", chk, nil, 0.2); len(regs) != 1 {
		t.Errorf("dropped checker sub-section: got %v, want one regression", regs)
	}
	if regs := compareStreamCheck("check_sharded", nil, chk, 0.2); len(regs) != 0 {
		t.Errorf("new checker sub-section gated: %v", regs)
	}
	slower := *chk
	slower.OpsPerSec = 4000
	if regs := compareStreamCheck("check_sharded", chk, &slower, 0.2); len(regs) != 1 {
		t.Errorf("checker throughput drop: got %v, want one regression", regs)
	}
	failing := *chk
	failing.Pass = false
	if regs := compareStreamCheck("check_sharded", chk, &failing, 0.2); len(regs) != 1 {
		t.Errorf("checker pass->fail flip: got %v, want one regression", regs)
	}
	otherCfg := *chk
	otherCfg.Shards = 8
	otherCfg.OpsPerSec = 1
	if regs := compareStreamCheck("check_sharded", chk, &otherCfg, 0.2); len(regs) != 0 {
		t.Errorf("cross-configuration sub-sections compared: %v", regs)
	}
}
