package main

import "testing"

func TestList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("code = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := run([]string{"-run", "E99"}); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
}

func TestRunOneExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if code := run([]string{"-run", "E1"}); code != 0 {
		t.Errorf("E1 failed: code = %d", code)
	}
}

func TestParallelSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	if code := run([]string{"-parallel", "-run", "E1,E2"}); code != 0 {
		t.Errorf("code = %d", code)
	}
}
