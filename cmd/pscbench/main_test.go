package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("code = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := run([]string{"-run", "E99"}); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
}

func TestRunOneExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if code := run([]string{"-run", "E1"}); code != 0 {
		t.Errorf("E1 failed: code = %d", code)
	}
}

func TestParallelSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	if code := run([]string{"-parallel=2", "-run", "E1,E2"}); code != 0 {
		t.Errorf("code = %d", code)
	}
}

func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if code := run([]string{"-json", "-run", "E1"}); code != 0 {
		t.Fatalf("code = %d", code)
	}
	buf, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "E1" || !rep.Experiments[0].Pass {
		t.Errorf("unexpected report: %+v", rep)
	}
	if rep.Experiments[0].WallMS <= 0 || rep.TotalWallMS <= 0 {
		t.Errorf("missing wall times: %+v", rep)
	}
}
