package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"psclock/internal/experiments"
)

// The -shardsweep measurement: the GOMAXPROCS × shards scaling curve of
// the adaptive-horizon sharded executor, recorded as the shard_scaling
// section of BENCH_results.json. Each cell is a time-boxed throughput
// measurement (experiments.ThroughputCell) of one (model, shards, procs)
// configuration; speedups are relative to a sequential baseline measured
// in the same sweep on the same box, so the ratios survive host changes
// that absolute ops/s numbers do not.

const (
	sweepN          = 8
	sweepCellBudget = 150 * time.Millisecond
	sweepTrials     = 3
	// sweepWinProcs is the parallelism at which the executor is required
	// to win: the success bar is "sharded beats sequential on every model
	// at GOMAXPROCS ≥ 4". Boxes with fewer cores than that cannot run the
	// winning configuration, so the gate only applies when NumCPU allows.
	sweepWinProcs = 4
)

// jsonShardScaling is the shard_scaling section: the sweep's shape, the
// per-cell curve, and the win verdict.
type jsonShardScaling struct {
	N int `json:"n"`
	// GOMAXPROCS is the ambient setting the process was launched with;
	// each cell additionally records the setting it ran under.
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	BudgetMS   float64 `json:"budget_ms"`
	// Pass is true when no cell failed to run and — on boxes with at
	// least sweepWinProcs cores — every model has a winning cell
	// (speedup ≥ 1.0×) at procs ≥ sweepWinProcs.
	Pass     bool                      `json:"pass"`
	Failures []string                  `json:"failures,omitempty"`
	Cells    []experiments.ScalingCell `json:"cells"`
}

// runShardSweep measures the scaling curve and prints it as a table.
// The shard counts and proc counts are fixed (2/4/8 shards × 1/2/4 procs)
// so reports from different runs compare cell-for-cell; proc counts above
// the box's core count are skipped — a cell that cannot physically run in
// parallel would measure scheduler churn, not the executor.
func runShardSweep() *jsonShardScaling {
	procs := []int{1}
	for _, p := range []int{2, 4} {
		if p <= runtime.NumCPU() {
			procs = append(procs, p)
		}
	}
	cells, fails := experiments.ShardScaling(sweepN, []int{2, 4, 8}, procs, sweepCellBudget, sweepTrials)
	sec := &jsonShardScaling{
		N:          sweepN,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BudgetMS:   float64(sweepCellBudget.Microseconds()) / 1000,
		Failures:   fails,
		Cells:      cells,
	}

	fmt.Printf("shard scaling (n=%d, %d CPU):\n", sweepN, sec.NumCPU)
	fmt.Printf("  %-6s %7s %6s %12s %12s %9s %4s\n", "model", "shards", "procs", "ops/s", "seq ops/s", "speedup", "win")
	for _, c := range cells {
		win := ""
		if c.Win {
			win = "yes"
		}
		fmt.Printf("  %-6s %7d %6d %12.0f %12.0f %8.2fx %4s\n",
			c.Model, c.Shards, c.Procs, c.OpsPerSec, c.SeqOpsPerSec, c.SpeedupVsSeq, win)
	}
	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "pscbench: -shardsweep: cell failed: %s\n", f)
	}

	sec.Pass = len(fails) == 0
	if runtime.NumCPU() >= sweepWinProcs {
		for _, model := range []string{"timed", "clock", "mmt"} {
			won := false
			for _, c := range cells {
				if c.Model == model && c.Procs >= sweepWinProcs && c.Win {
					won = true
					break
				}
			}
			if !won {
				sec.Pass = false
				fmt.Fprintf(os.Stderr, "pscbench: -shardsweep: %s has no winning cell at procs >= %d\n", model, sweepWinProcs)
			}
		}
	}
	return sec
}
