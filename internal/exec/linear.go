package exec

import (
	"fmt"

	"psclock/internal/simtime"
)

// This file preserves the original O(components)-per-step scheduler,
// verbatim, as a differential oracle. Setting System.linear before the
// first run routes NextDue/fireDue through these implementations and
// dispatch through the full-scan path; seeded executions must produce
// byte-identical traces on either path (see the differential test and the
// golden-trace test in internal/experiments). The linear path always runs
// on the root lane: it predates both coalescing and sharding, and both
// fast paths disable themselves under it. Event recording flows through
// the same dispatch → record → emit chain as the indexed path, so sinks
// (sink.go) observe the identical stream here, and the shared Run/RunQuiet/
// Step drivers advance their low-watermark on this path too.

// fireDueLinear fires every component whose deadline has been reached,
// repeating full index-ordered sweeps until the instant is quiescent.
func (s *System) fireDueLinear() {
	ln := &s.root
	for s.err == nil {
		progressed := false
		for _, c := range s.comps {
			due, ok := c.Due(ln.now)
			if !ok || due.After(ln.now) {
				continue
			}
			acts := c.Fire(ln.now)
			if len(acts) == 0 {
				// The component claimed a reached deadline but performed
				// nothing: its Due must move forward or the system is stuck.
				if due2, ok2 := c.Due(ln.now); ok2 && !due2.After(ln.now) {
					s.fail(fmt.Errorf("%w: %s claims due %v at %v but fires nothing", ErrStuck, c.Name(), due2, ln.now))
					return
				}
				continue
			}
			progressed = true
			buf := ln.borrow(acts)
			for _, a := range buf {
				ln.chainDepth = 0
				s.dispatch(ln, a, c.Name())
			}
			ln.release(buf)
		}
		if !progressed {
			return
		}
	}
}

// nextDueLinear scans every component for the earliest pending deadline.
func (s *System) nextDueLinear() (simtime.Time, bool) {
	next := simtime.Never
	found := false
	for _, c := range s.comps {
		if due, ok := c.Due(s.root.now); ok && due.Before(next) {
			next = due
			found = true
		}
	}
	return next, found
}
