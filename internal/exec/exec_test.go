package exec

import (
	"errors"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// pinger emits a PING output every period, n times.
type pinger struct {
	name   string
	period simtime.Duration
	left   int
	next   simtime.Time
}

func (p *pinger) Name() string                                { return p.name }
func (p *pinger) Init() []ta.Action                           { p.next = simtime.Zero.Add(p.period); return nil }
func (p *pinger) Deliver(simtime.Time, ta.Action) []ta.Action { return nil }

func (p *pinger) Due(simtime.Time) (simtime.Time, bool) {
	if p.left == 0 {
		return 0, false
	}
	return p.next, true
}

func (p *pinger) Fire(now simtime.Time) []ta.Action {
	if p.left == 0 || now.Before(p.next) {
		return nil
	}
	p.left--
	p.next = now.Add(p.period)
	return []ta.Action{{Name: "PING", Node: 0, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: p.left}}
}

// echoer replies PONG immediately upon PING.
type echoer struct{ got int }

func (e *echoer) Name() string      { return "echoer" }
func (e *echoer) Init() []ta.Action { return nil }

func (e *echoer) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	e.got++
	return []ta.Action{{Name: "PONG", Node: 1, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: a.Payload}}
}

func (e *echoer) Due(simtime.Time) (simtime.Time, bool) { return 0, false }
func (e *echoer) Fire(simtime.Time) []ta.Action         { return nil }

func named(name string) func(ta.Action) bool {
	return func(a ta.Action) bool { return a.Name == name }
}

func TestRunFiresPeriodically(t *testing.T) {
	s := New()
	p := &pinger{name: "pinger", period: simtime.Millisecond, left: 3}
	s.Add(p)
	if err := s.Run(simtime.Time(10 * simtime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	tr := s.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace len = %d, want 3:\n%v", len(tr), tr)
	}
	for i, e := range tr {
		want := simtime.Time((i + 1)) * simtime.Time(simtime.Millisecond)
		if e.At != want {
			t.Errorf("event %d at %v, want %v", i, e.At, want)
		}
	}
	if s.Now() != simtime.Time(10*simtime.Millisecond) {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSameInstantChain(t *testing.T) {
	s := New()
	p := &pinger{name: "pinger", period: simtime.Millisecond, left: 2}
	e := &echoer{}
	s.Add(p)
	s.Add(e)
	s.Connect(named("PING"), e)
	if err := s.Run(simtime.Time(5 * simtime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	tr := s.Trace()
	// PING, PONG, PING, PONG — pongs at the same instant as their pings.
	if len(tr) != 4 {
		t.Fatalf("trace len = %d, want 4:\n%v", len(tr), tr)
	}
	if tr[0].Action.Name != "PING" || tr[1].Action.Name != "PONG" {
		t.Errorf("order wrong: %v", tr.Labels())
	}
	if tr[1].At != tr[0].At {
		t.Errorf("PONG at %v, want same instant as PING %v", tr[1].At, tr[0].At)
	}
	if e.got != 2 {
		t.Errorf("echoer got %d pings", e.got)
	}
}

func TestHide(t *testing.T) {
	s := New()
	p := &pinger{name: "pinger", period: simtime.Millisecond, left: 1}
	e := &echoer{}
	s.Add(p)
	s.Add(e)
	s.Connect(named("PING"), e)
	s.Hide(named("PING"))
	if err := s.Run(simtime.Time(2 * simtime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	vis := s.Trace().Visible()
	if len(vis) != 1 || vis[0].Action.Name != "PONG" {
		t.Errorf("visible = %v", vis.Labels())
	}
	// Hiding affects the trace, not routing: echoer still got the ping.
	if e.got != 1 {
		t.Errorf("echoer got %d", e.got)
	}
}

func TestHideCompose(t *testing.T) {
	s := New()
	p := &pinger{name: "pinger", period: simtime.Millisecond, left: 1}
	e := &echoer{}
	s.Add(p)
	s.Add(e)
	s.Connect(named("PING"), e)
	s.Hide(named("PING"))
	s.Hide(named("PONG"))
	if err := s.Run(simtime.Time(2 * simtime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if vis := s.Trace().Visible(); len(vis) != 0 {
		t.Errorf("visible = %v", vis.Labels())
	}
}

func TestWatch(t *testing.T) {
	s := New()
	s.Add(&pinger{name: "pinger", period: simtime.Millisecond, left: 2})
	var seen []string
	s.Watch(func(e ta.Event) { seen = append(seen, e.Action.Name) })
	s.KeepTrace = false
	if err := s.Run(simtime.Time(5 * simtime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Errorf("watched %v", seen)
	}
	if len(s.Trace()) != 0 {
		t.Error("KeepTrace=false still recorded")
	}
}

func TestInject(t *testing.T) {
	s := New()
	e := &echoer{}
	s.Add(e)
	s.Connect(named("PING"), e)
	s.Inject(ta.Action{Name: "PING", Node: 0, Kind: ta.KindInput, Payload: 1})
	tr := s.Trace()
	if len(tr) != 2 || tr[0].Action.Name != "PING" || tr[1].Action.Name != "PONG" {
		t.Errorf("trace = %v", tr.Labels())
	}
	if tr[0].Src != "" || tr[1].Src != "echoer" {
		t.Errorf("sources = %q, %q", tr[0].Src, tr[1].Src)
	}
}

func TestDuplicateName(t *testing.T) {
	s := New()
	s.Add(&pinger{name: "x", period: 1, left: 1})
	s.Add(&pinger{name: "x", period: 1, left: 1})
	if err := s.Run(1); err == nil {
		t.Error("duplicate name accepted")
	}
}

// stuck reports a due deadline but never fires.
type stuck struct{}

func (stuck) Name() string                                { return "stuck" }
func (stuck) Init() []ta.Action                           { return nil }
func (stuck) Deliver(simtime.Time, ta.Action) []ta.Action { return nil }
func (stuck) Due(simtime.Time) (simtime.Time, bool)       { return 5, true }
func (stuck) Fire(simtime.Time) []ta.Action               { return nil }

func TestStuckDetected(t *testing.T) {
	s := New()
	s.Add(stuck{})
	err := s.Run(10)
	if !errors.Is(err, ErrStuck) {
		t.Errorf("err = %v, want ErrStuck", err)
	}
}

// looper replies to its own action forever at the same instant.
type looper struct{}

func (looper) Name() string      { return "looper" }
func (looper) Init() []ta.Action { return []ta.Action{{Name: "LOOP", Kind: ta.KindOutput}} }
func (looper) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	return []ta.Action{{Name: "LOOP", Kind: ta.KindOutput}}
}
func (looper) Due(simtime.Time) (simtime.Time, bool) { return 0, false }
func (looper) Fire(simtime.Time) []ta.Action         { return nil }

func TestZeroDelayCycleDetected(t *testing.T) {
	s := New()
	l := looper{}
	s.Add(l)
	s.Connect(named("LOOP"), l)
	err := s.Run(1)
	if !errors.Is(err, ErrChain) {
		t.Errorf("err = %v, want ErrChain", err)
	}
}

func TestRunQuiet(t *testing.T) {
	s := New()
	s.Add(&pinger{name: "p", period: simtime.Millisecond, left: 2})
	quiet, err := s.RunQuiet(simtime.Time(simtime.Second))
	if err != nil || !quiet {
		t.Errorf("quiet=%v err=%v", quiet, err)
	}
	if len(s.Trace()) != 2 {
		t.Errorf("trace len = %d", len(s.Trace()))
	}

	s2 := New()
	s2.Add(&pinger{name: "p", period: simtime.Millisecond, left: 1000})
	quiet, err = s2.RunQuiet(simtime.Time(3 * simtime.Millisecond))
	if err != nil || quiet {
		t.Errorf("quiet=%v err=%v, want not quiet", quiet, err)
	}
}

func TestStepAdvances(t *testing.T) {
	s := New()
	s.Add(&pinger{name: "p", period: simtime.Millisecond, left: 2})
	if !s.Step() {
		t.Fatal("first Step returned false")
	}
	if s.Now() != simtime.Time(simtime.Millisecond) {
		t.Errorf("Now = %v", s.Now())
	}
	if !s.Step() {
		t.Fatal("second Step returned false")
	}
	if s.Step() {
		t.Error("third Step should report exhaustion")
	}
}

func TestTraceWellFormed(t *testing.T) {
	s := New()
	p := &pinger{name: "pinger", period: simtime.Millisecond, left: 5}
	e := &echoer{}
	s.Add(p)
	s.Add(e)
	s.Connect(named("PING"), e)
	if err := s.Run(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Trace().CheckWellFormed(); err != nil {
		t.Error(err)
	}
}

func TestReplace(t *testing.T) {
	s := New()
	p := &pinger{name: "x", period: simtime.Millisecond, left: 5}
	e := &echoer{}
	s.Add(p)
	s.Add(e)
	s.Connect(named("PING"), e)
	// Replace the echoer with a fresh one before running; the subscription
	// must be redirected.
	e2 := &echoer{}
	// echoer has a fixed name, so Replace matches.
	s.Replace("echoer", e2)
	if err := s.Run(simtime.Time(10 * simtime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if e.got != 0 || e2.got != 5 {
		t.Errorf("old got %d, new got %d", e.got, e2.got)
	}
}

func TestReplaceValidation(t *testing.T) {
	s := New()
	s.Add(&pinger{name: "x", period: 1, left: 1})
	s.Replace("missing", &pinger{name: "missing", period: 1, left: 1})
	if s.Err() == nil {
		t.Error("replace of missing component accepted")
	}
	s2 := New()
	s2.Add(&pinger{name: "x", period: 1, left: 1})
	s2.Replace("x", &pinger{name: "y", period: 1, left: 1})
	if s2.Err() == nil {
		t.Error("replace with mismatched name accepted")
	}
}
