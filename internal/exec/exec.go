// Package exec provides the discrete-event executor that composes
// executable timed automata (Definition 2.2) and produces recorded
// executions.
//
// The executor realizes admissible executions of the composed automaton:
// between events it performs time-passage steps (the ν action) that respect
// every component's Due deadline — the operational form of the ν
// preconditions in Figures 1–3 — and at each reached deadline it performs
// the enabled locally controlled actions, routing each output action to the
// components that have it as an input (composition communicates on shared
// actions, §2.1).
package exec

import (
	"errors"
	"fmt"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// maxChain bounds the number of same-instant action dispatches between two
// time-passage steps, to detect zero-delay cycles in miswired systems.
const maxChain = 1 << 14

// ErrStuck reports a component that claims a due deadline but fires nothing.
var ErrStuck = errors.New("exec: component due but fired no action")

// ErrChain reports a runaway zero-delay dispatch chain.
var ErrChain = errors.New("exec: same-instant dispatch chain exceeded limit")

type subscription struct {
	match func(ta.Action) bool
	dst   ta.Automaton
}

// System is a composition of automata under execution. The zero value is
// not usable; construct with New.
type System struct {
	comps   []ta.Automaton
	index   map[string]int
	subs    []subscription
	hidden  func(ta.Action) bool
	watches []func(ta.Event)

	now    simtime.Time
	seq    int
	inited bool
	err    error

	// KeepTrace controls whether events are recorded. Disable for
	// throughput benchmarks; watchers still run.
	KeepTrace bool
	trace     ta.Trace

	chainDepth int
}

// New returns an empty system at time zero.
func New() *System {
	return &System{index: make(map[string]int), KeepTrace: true}
}

// Add registers a component. Component names must be unique; Add returns
// the component for call chaining convenience.
func (s *System) Add(a ta.Automaton) ta.Automaton {
	if _, dup := s.index[a.Name()]; dup {
		s.fail(fmt.Errorf("exec: duplicate component name %q", a.Name()))
		return a
	}
	s.index[a.Name()] = len(s.comps)
	s.comps = append(s.comps, a)
	return a
}

// Replace swaps the component registered under name (which the
// replacement must keep) with a, redirecting any subscriptions that
// targeted the old component. It is intended for installing fault wrappers
// before a system runs.
func (s *System) Replace(name string, a ta.Automaton) {
	idx, ok := s.index[name]
	if !ok {
		s.fail(fmt.Errorf("exec: Replace: no component named %q", name))
		return
	}
	if a.Name() != name {
		s.fail(fmt.Errorf("exec: Replace: replacement is named %q, want %q", a.Name(), name))
		return
	}
	old := s.comps[idx]
	s.comps[idx] = a
	for i := range s.subs {
		if s.subs[i].dst == old {
			s.subs[i].dst = a
		}
	}
}

// Connect routes every dispatched action matching match to dst as an input.
// A single action may have several subscribers (broadcast actions), matching
// the composition rule that an output is an input of every automaton whose
// signature contains it.
func (s *System) Connect(match func(ta.Action) bool, dst ta.Automaton) {
	s.subs = append(s.subs, subscription{match: match, dst: dst})
}

// Hide reclassifies matching actions as internal in the recorded trace,
// realizing the hiding operator of §2.1. It does not affect routing.
func (s *System) Hide(match func(ta.Action) bool) {
	prev := s.hidden
	s.hidden = func(a ta.Action) bool {
		if prev != nil && prev(a) {
			return true
		}
		return match(a)
	}
}

// Watch registers an observer invoked for every dispatched event, hidden or
// not, in dispatch order.
func (s *System) Watch(fn func(ta.Event)) {
	s.watches = append(s.watches, fn)
}

// Now returns the current simulated time.
func (s *System) Now() simtime.Time { return s.now }

// Err returns the first execution error, if any.
func (s *System) Err() error { return s.err }

// Trace returns the recorded execution trace (all actions, with hidden ones
// reclassified as internal). The caller must not modify it.
func (s *System) Trace() ta.Trace { return s.trace }

func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// record logs the event and notifies watchers.
func (s *System) record(a ta.Action, src string) {
	if s.hidden != nil && a.Kind != ta.KindInternal && s.hidden(a) {
		a.Kind = ta.KindInternal
	}
	e := ta.Event{Action: a, At: s.now, Src: src, Seq: s.seq}
	s.seq++
	if s.KeepTrace {
		s.trace = append(s.trace, e)
	}
	for _, w := range s.watches {
		w(e)
	}
}

// dispatch records the action and delivers it to all subscribers,
// recursively dispatching any same-instant reactions.
func (s *System) dispatch(a ta.Action, src string) {
	if s.err != nil {
		return
	}
	s.chainDepth++
	if s.chainDepth > maxChain {
		s.fail(fmt.Errorf("%w (last action %v at %v)", ErrChain, a, s.now))
		return
	}
	s.record(a, src)
	for _, sub := range s.subs {
		if !sub.match(a) {
			continue
		}
		for _, out := range sub.dst.Deliver(s.now, a) {
			s.dispatch(out, sub.dst.Name())
		}
	}
}

// Inject delivers an environment-controlled input action at the current
// time, e.g. an operation invocation driven directly by a test.
func (s *System) Inject(a ta.Action) {
	s.init()
	s.chainDepth = 0
	s.dispatch(a, "")
	s.fireDue()
}

func (s *System) init() {
	if s.inited {
		return
	}
	s.inited = true
	for _, c := range s.comps {
		for _, a := range c.Init() {
			s.chainDepth = 0
			s.dispatch(a, c.Name())
		}
	}
	s.fireDue()
}

// fireDue fires every component whose deadline has been reached, repeating
// until the instant is quiescent.
func (s *System) fireDue() {
	for s.err == nil {
		progressed := false
		for _, c := range s.comps {
			due, ok := c.Due(s.now)
			if !ok || due.After(s.now) {
				continue
			}
			acts := c.Fire(s.now)
			if len(acts) == 0 {
				// The component claimed a reached deadline but performed
				// nothing: its Due must move forward or the system is stuck.
				if due2, ok2 := c.Due(s.now); ok2 && !due2.After(s.now) {
					s.fail(fmt.Errorf("%w: %s at %v", ErrStuck, c.Name(), s.now))
					return
				}
				continue
			}
			progressed = true
			for _, a := range acts {
				s.chainDepth = 0
				s.dispatch(a, c.Name())
			}
		}
		if !progressed {
			return
		}
	}
}

// NextDue returns the earliest pending deadline strictly after now, or
// ok=false when no component has one.
func (s *System) NextDue() (simtime.Time, bool) {
	next := simtime.Never
	found := false
	for _, c := range s.comps {
		if due, ok := c.Due(s.now); ok && due.Before(next) {
			next = due
			found = true
		}
	}
	return next, found
}

// Step advances to the next deadline and processes it. It returns false
// when no further deadline exists or an error occurred.
func (s *System) Step() bool {
	s.init()
	if s.err != nil {
		return false
	}
	next, ok := s.NextDue()
	if !ok {
		return false
	}
	if next.After(s.now) {
		s.now = next // the ν time-passage step
	}
	s.fireDue()
	return s.err == nil
}

// Run executes every event with time ≤ until, then advances now to until.
// It returns the first execution error.
func (s *System) Run(until simtime.Time) error {
	s.init()
	for s.err == nil {
		next, ok := s.NextDue()
		if !ok || next.After(until) {
			break
		}
		if next.After(s.now) {
			s.now = next
		}
		s.fireDue()
	}
	if s.err == nil && until.After(s.now) {
		s.now = until
	}
	return s.err
}

// RunQuiet executes until no deadlines remain or the time limit is hit,
// whichever comes first. It reports whether the system went quiescent.
func (s *System) RunQuiet(limit simtime.Time) (bool, error) {
	s.init()
	for s.err == nil {
		next, ok := s.NextDue()
		if !ok {
			return true, nil
		}
		if next.After(limit) {
			return false, nil
		}
		if next.After(s.now) {
			s.now = next
		}
		s.fireDue()
	}
	return false, s.err
}
