// Package exec provides the discrete-event executor that composes
// executable timed automata (Definition 2.2) and produces recorded
// executions.
//
// The executor realizes admissible executions of the composed automaton:
// between events it performs time-passage steps (the ν action) that respect
// every component's Due deadline — the operational form of the ν
// preconditions in Figures 1–3 — and at each reached deadline it performs
// the enabled locally controlled actions, routing each output action to the
// components that have it as an input (composition communicates on shared
// actions, §2.1).
//
// Four fast-path structures keep the hot path sub-linear in both system
// size and simulated time:
//
//   - a deadline heap (sched.go) replaces the per-step linear scan over
//     every component's Due with a lazily invalidated binary min-heap,
//   - a routing table memoizes, per action header (Name, Node, Peer,
//     Kind), which subscriptions match, so dispatch stops re-evaluating
//     every predicate for every action,
//   - an interest-declaration pass (coalesce.go) advances time directly
//     to the next observable event, collapsing runs of unobservable TICK
//     and idle-step deadlines (ta.Coalescable) into arithmetic jumps, and
//   - an optional sharded mode (shard.go) partitions the components into
//     lanes that advance concurrently under adaptive per-lane horizons:
//     each lane publishes a conservative bound on its next observable
//     action (earliest deadline widened by NextInterest, plus incoming
//     per-edge d1 guarantees), cross-shard actions are buffered into
//     mailboxes, and lanes run ahead independently until a horizon binds;
//     barriers deliver the mail and merge events in canonical order.
//
// All preserve the dispatch order of the original linear executor (kept
// in linear.go as a differential reference): deterministic seeds produce
// byte-identical traces on the indexed path and byte-identical observable
// actions on the coalesced and sharded paths (which elide only hidden TICK
// events and empty step firings; see DisableCoalescing for the dense
// oracle and SetShards for the sharded configuration).
package exec

import (
	"errors"
	"fmt"
	"sync/atomic"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// maxChain bounds the number of same-instant action dispatches between two
// time-passage steps, to detect zero-delay cycles in miswired systems.
const maxChain = 1 << 14

// ErrStuck reports a component that claims a due deadline but fires nothing.
var ErrStuck = errors.New("exec: component due but fired no action")

// ErrChain reports a runaway zero-delay dispatch chain.
var ErrChain = errors.New("exec: same-instant dispatch chain exceeded limit")

type subscription struct {
	match func(ta.Action) bool
	dst   ta.Automaton
	// dstIdx is dst's component index, or -1 when dst was never Added (a
	// pure observer outside the composition, which the executor never
	// schedules — matching the linear executor, which only ever polled
	// registered components).
	dstIdx int32
	// header marks match as depending only on the action's Name, Node,
	// Peer, and Kind, making the subscription eligible for the memoized
	// routing table.
	header bool
}

// routeKey is the header of an action: every field a header subscription
// may inspect. Actions sharing a key route identically.
type routeKey struct {
	name       string
	node, peer ta.NodeID
	kind       ta.Kind
}

// lane is one execution context: a clock, a deadline scheduler, and the
// dispatch scratch state. The sequential executor runs entirely on the
// root lane (shard == -1); sharded execution (shard.go) adds one lane per
// shard, each owning a disjoint set of components, and the root lane keeps
// the global clock and handles barrier-time (Init/Inject) dispatch.
//
// Every field is confined to the lane's worker during a sharded round;
// the coordinator only touches lane state between rounds (at barriers).
type lane struct {
	shard int32 // shard id, or -1 for the root lane
	now   simtime.Time

	// err points at the lane's error slot: the System error for the root
	// lane (so config-time and execution errors share one slot, as
	// before), errSlot for shard lanes (merged at barriers).
	err     *error
	errSlot error

	sched     sched
	ffScratch []int32
	hzScratch []int32

	// hCache memoizes laneHorizon between schedule mutations: every state
	// change that can move a deadline or an interest horizon funnels
	// through poll, which clears hValid. Lane-local, so no synchronization.
	hCache simtime.Time
	hValid bool

	// idle marks a lane whose last pass made no progress under window
	// lastW: rerunning it is futile until its window grows (guarantees are
	// monotone, so equality means unchanged) or its schedule mutates (poll
	// clears the flag). Cleared wholesale when the run bound changes.
	idle  bool
	lastW simtime.Time

	chainDepth int
	scratch    [][]ta.Action
	routes     map[routeKey][]int32

	// Sharded-round buffers (unused on the root lane). events holds the
	// lane's recorded events in canonical lane-local order, consumed from
	// evHead by the bounded barrier merge (the settled prefix is emitted,
	// the tail carried over); evCount counts events when nothing records
	// them (the KeepTrace-off, no-watcher fast path); mail holds
	// cross-shard deliveries awaiting the barrier, with mailMin tracking
	// per destination shard the earliest instant any buffered delivery
	// could make its destination act (the sender's published guarantee may
	// not exceed it). round and firing stamp each buffered event with its
	// merge key, and frontier is the high-water bound of the lane's
	// executed region — every local deadline strictly before it has fired
	// (see shard.go).
	events   []laneEvent
	evHead   int
	evCount  int
	mail     []mailEntry
	mailMin  []simtime.Time
	round    int32
	firing   int32
	frontier simtime.Time
}

func (ln *lane) fail(err error) {
	if *ln.err == nil {
		*ln.err = err
	}
}

// System is a composition of automata under execution. The zero value is
// not usable; construct with New.
type System struct {
	comps   []ta.Automaton
	index   map[string]int
	subs    []subscription
	slow    []int32 // indices of predicate-only (non-header) subscriptions
	hidden  func(ta.Action) bool
	watches []func(ta.Event)
	sinks   []Sink

	seq    int
	inited bool
	err    error

	// root is the sequential execution lane; root.now is the global clock.
	root lane

	// linear, when set before the system first runs, restores the original
	// O(components) scan scheduler and O(subscriptions) dispatch. It exists
	// as a differential oracle for tests and benchmarks: both paths must
	// produce byte-identical traces.
	linear bool

	// dense disables tick/step coalescing (coalesce.go): every Coalescable
	// component's deadlines are enumerated one heap event at a time, as
	// they were before coalescing existed. It is the differential oracle
	// for the coalesced fast path: dense and coalesced executions of the
	// same seeded system must agree on every observable action. The linear
	// path is always dense.
	dense bool

	// coal indexes the registered components that implement
	// ta.Coalescable; coalOf maps every component index to its Coalescable
	// view (nil when the component does not implement it), so hot paths
	// skip the repeated type assertion.
	coal   []coalEntry
	coalOf []ta.Coalescable

	// Sharded-mode state; see shard.go. shardCfg is the requested
	// configuration; lanes/compShard/laMat the active partition once
	// initShards accepts it, with laMat the per-lane-pair lookahead matrix
	// and minLA its minimum off-diagonal entry; gmat is the flattened
	// atomic guarantee matrix G[j][k] (no effect from lane j reaches lane
	// k before G[j][k]); subDelay is each subscription's minimum effect
	// delay, used to bound buffered mail; shardReason records why a
	// requested partition was not activated.
	shardCfg    *shardConfig
	lanes       []*lane
	compShard   []int32
	laMat       [][]simtime.Duration
	minLA       simtime.Duration
	gmat        []atomic.Int64
	subDelay    []simtime.Duration
	hScratch    []simtime.Time
	passProg    atomic.Bool
	active      atomic.Int32
	passSpin    bool
	shardOn     bool
	shardReason string

	// KeepTrace controls whether events are recorded. Disable for
	// throughput benchmarks; watchers still run.
	KeepTrace bool
	trace     ta.Trace
}

// New returns an empty system at time zero.
func New() *System {
	s := &System{index: make(map[string]int), KeepTrace: true}
	s.root.shard = -1
	s.root.err = &s.err
	return s
}

// Add registers a component. Component names must be unique; Add returns
// the component for call chaining convenience.
func (s *System) Add(a ta.Automaton) ta.Automaton {
	if _, dup := s.index[a.Name()]; dup {
		s.fail(fmt.Errorf("exec: duplicate component name %q", a.Name()))
		return a
	}
	idx := len(s.comps)
	s.index[a.Name()] = idx
	s.comps = append(s.comps, a)
	if s.inited {
		if s.shardOn {
			// The shard partition and its lookahead were computed from the
			// registration-time component set; growing it mid-run would
			// leave the newcomer without a lane.
			s.fail(fmt.Errorf("exec: Add(%s) after sharded execution started", a.Name()))
			return a
		}
		cc, _ := a.(ta.Coalescable)
		if cc != nil {
			s.coal = append(s.coal, coalEntry{idx: int32(idx), c: cc})
		}
		s.coalOf = append(s.coalOf, cc)
		if !s.linear {
			// Late registration: size the scheduler and pick up the
			// newcomer's deadline immediately.
			s.root.sched.grow(len(s.comps))
			s.poll(&s.root, idx)
		}
	}
	return a
}

// DisableCoalescing forces the dense-tick path: every recurring TICK and
// step deadline is enumerated as its own heap event, exactly as before
// coalescing existed. It is the differential oracle for the coalesced
// fast path (see coalesce.go) and may be toggled at any point; tests and
// `pscbench -dense` use it to prove observable-action equivalence.
func (s *System) DisableCoalescing() { s.dense = true }

// Replace swaps the component registered under name (which the
// replacement must keep) with a, redirecting any subscriptions that
// targeted the old component and refreshing the scheduler's deadline entry
// for the slot (the old component's entry is invalidated; the
// replacement's Due is polled fresh). It is intended for installing fault
// wrappers before a system runs.
func (s *System) Replace(name string, a ta.Automaton) {
	idx, ok := s.index[name]
	if !ok {
		s.fail(fmt.Errorf("exec: Replace: no component named %q", name))
		return
	}
	if a.Name() != name {
		s.fail(fmt.Errorf("exec: Replace: replacement is named %q, want %q", a.Name(), name))
		return
	}
	if s.inited && s.shardOn {
		s.fail(fmt.Errorf("exec: Replace(%s) after sharded execution started", name))
		return
	}
	old := s.comps[idx]
	s.comps[idx] = a
	for i := range s.subs {
		if s.subs[i].dst == old {
			s.subs[i].dst = a
		}
	}
	if s.inited {
		s.rebuildCoal()
		if !s.linear {
			s.poll(&s.root, idx)
		}
	}
}

// Connect routes every dispatched action matching match to dst as an input.
// A single action may have several subscribers (broadcast actions), matching
// the composition rule that an output is an input of every automaton whose
// signature contains it.
//
// Connect is the slow path: match may inspect the payload, so it is
// re-evaluated for every dispatched action. Wiring whose predicate only
// looks at the action header should use ConnectHeader (or ConnectName),
// which dispatch resolves through a memoized routing table.
func (s *System) Connect(match func(ta.Action) bool, dst ta.Automaton) {
	s.addSub(match, dst, false)
}

// ConnectHeader is Connect for predicates that depend only on the action's
// Name, Node, Peer, and Kind — never its Payload. Such subscriptions are
// routed through a table keyed on those four fields, built lazily and
// memoized, so the predicate runs once per distinct action header rather
// than once per dispatched action. The contract is the caller's to keep: a
// payload-inspecting predicate registered here will be consulted with an
// arbitrary representative payload and its verdict reused. Under sharded
// execution (SetShards) predicates are additionally consulted from
// concurrent lanes, so they must not read mutable state.
func (s *System) ConnectHeader(match func(ta.Action) bool, dst ta.Automaton) {
	s.addSub(match, dst, true)
}

// ConnectName routes every action with exactly the given name to dst,
// via the routing table.
func (s *System) ConnectName(name string, dst ta.Automaton) {
	s.ConnectHeader(func(a ta.Action) bool { return a.Name == name }, dst)
}

func (s *System) addSub(match func(ta.Action) bool, dst ta.Automaton, header bool) {
	idx := int32(-1)
	if i, ok := s.index[dst.Name()]; ok && s.comps[i] == dst {
		idx = int32(i)
	}
	s.subs = append(s.subs, subscription{match: match, dst: dst, dstIdx: idx, header: header})
	if !header {
		s.slow = append(s.slow, int32(len(s.subs)-1))
	}
	// Memoized routes are stale once the wiring changes.
	s.root.routes = nil
	for _, ln := range s.lanes {
		ln.routes = nil
	}
}

// Hide reclassifies matching actions as internal in the recorded trace,
// realizing the hiding operator of §2.1. It does not affect routing.
func (s *System) Hide(match func(ta.Action) bool) {
	prev := s.hidden
	s.hidden = func(a ta.Action) bool {
		if prev != nil && prev(a) {
			return true
		}
		return match(a)
	}
}

// Watch registers an observer invoked for every dispatched event, hidden or
// not, in dispatch order. Under sharded execution watchers run at round
// barriers, still in canonical event order.
func (s *System) Watch(fn func(ta.Event)) {
	s.watches = append(s.watches, fn)
}

// Now returns the current simulated time.
func (s *System) Now() simtime.Time { return s.root.now }

// Err returns the first execution error, if any.
func (s *System) Err() error { return s.err }

// Trace returns the recorded execution trace (all actions, with hidden ones
// reclassified as internal). The caller must not modify it.
func (s *System) Trace() ta.Trace { return s.trace }

func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// record logs the event and notifies every consumer (retained trace,
// watchers, sinks) via emit. On shard lanes the event is buffered with its
// canonical merge key instead and emitted at the round barrier (shard.go);
// the root lane records immediately.
//
// Sequence-number semantics, pinned: Seq counts every dispatched event,
// recorded or not. When nothing observes events (observing() false) the
// fast paths only advance the count, so toggling KeepTrace — or attaching
// a sink or watcher — mid-run resumes numbering exactly where a fully
// recorded run would be: the events recorded after a re-enable carry the
// same Seq values they would in an always-on run, and the gap in Seq is
// precisely the number of unobserved events. Both fast paths (the root
// s.seq++ and the shard-lane evCount, folded into s.seq at the barrier
// merge) share the observing() predicate so sinks are respected everywhere.
func (s *System) record(ln *lane, a ta.Action, src string) {
	if ln.shard >= 0 {
		if !s.observing() {
			// Nobody is looking: count the event for sequence-number
			// continuity and skip buffering entirely.
			ln.evCount++
			return
		}
		ln.events = append(ln.events, laneEvent{
			a: a, src: src, at: ln.now, round: ln.round, firing: ln.firing,
		})
		return
	}
	if !s.observing() {
		s.seq++
		return
	}
	if s.hidden != nil && a.Kind != ta.KindInternal && s.hidden(a) {
		a.Kind = ta.KindInternal
	}
	e := ta.Event{Action: a, At: ln.now, Src: src, Seq: s.seq}
	s.seq++
	s.emit(e)
}

// borrow copies acts into a pooled scratch buffer. The executor iterates
// action slices while dispatching recursively, and a nested Deliver or
// Fire may re-enter the component that produced them; copying up front is
// what lets components reuse their returned slices across calls (see the
// ta.Automaton contract).
func (ln *lane) borrow(acts []ta.Action) []ta.Action {
	var buf []ta.Action
	if n := len(ln.scratch); n > 0 {
		buf = ln.scratch[n-1][:0]
		ln.scratch = ln.scratch[:n-1]
	}
	return append(buf, acts...)
}

// release clears and returns a borrowed buffer to the pool. Clearing drops
// payload references so the pool never pins message bodies.
func (ln *lane) release(buf []ta.Action) {
	clear(buf)
	ln.scratch = append(ln.scratch, buf[:0])
}

// routeFor returns the header-subscription hit list for a's routing key,
// computing and memoizing it on first sight. Header predicates depend only
// on the key fields, so one representative action decides the route for
// every action sharing its key. The memo is per-lane so concurrent shard
// lanes never share map state.
func (s *System) routeFor(ln *lane, a ta.Action) []int32 {
	key := routeKey{name: a.Name, node: a.Node, peer: a.Peer, kind: a.Kind}
	if hits, ok := ln.routes[key]; ok {
		return hits
	}
	var hits []int32
	for i := range s.subs {
		if s.subs[i].header && s.subs[i].match(a) {
			hits = append(hits, int32(i))
		}
	}
	if ln.routes == nil {
		ln.routes = make(map[routeKey][]int32)
	}
	ln.routes[key] = hits
	return hits
}

// dispatch records the action and delivers it to all subscribers,
// recursively dispatching any same-instant reactions. Subscribers are
// visited in registration order on both the indexed and linear paths:
// the routing table yields header-subscription indices sorted by
// registration, merged with the predicate-only subscriptions.
func (s *System) dispatch(ln *lane, a ta.Action, src string) {
	if *ln.err != nil {
		return
	}
	ln.chainDepth++
	if ln.chainDepth > maxChain {
		ln.fail(fmt.Errorf("%w (action %s from %s at %v)", ErrChain, a.Name, srcLabel(src), ln.now))
		return
	}
	s.record(ln, a, src)
	if s.linear {
		for i := range s.subs {
			if !s.subs[i].match(a) {
				continue
			}
			s.deliverTo(ln, int32(i), a, src)
		}
		return
	}
	fast := s.routeFor(ln, a)
	if len(s.slow) == 0 {
		for _, i := range fast {
			s.deliverTo(ln, i, a, src)
		}
		return
	}
	fi, si := 0, 0
	for fi < len(fast) || si < len(s.slow) {
		if si >= len(s.slow) || (fi < len(fast) && fast[fi] < s.slow[si]) {
			s.deliverTo(ln, fast[fi], a, src)
			fi++
			continue
		}
		i := s.slow[si]
		si++
		if s.subs[i].match(a) {
			s.deliverTo(ln, i, a, src)
		}
	}
}

// srcLabel names an action source for error text; the empty source is an
// environment injection.
func srcLabel(src string) string {
	if src == "" {
		return "the environment"
	}
	return src
}

// deliverTo hands a to subscription subIdx, dispatches its same-instant
// reactions, and refreshes the subscriber's deadline entry (its Due may
// have changed with its state). On a shard lane, a subscriber owned by a
// different lane is not delivered to: the action is buffered into the
// lane's mailbox and delivered at the round barrier (shard.go).
func (s *System) deliverTo(ln *lane, subIdx int32, a ta.Action, src string) {
	sub := &s.subs[subIdx]
	if ln.shard >= 0 && s.compShard[sub.dstIdx] != ln.shard {
		ln.mail = append(ln.mail, mailEntry{sub: subIdx, a: a, at: ln.now, src: src})
		// The destination cannot act on this delivery before at + the
		// subscription's minimum effect delay; the lane's published
		// guarantee to that shard must not promise past it.
		d := s.compShard[sub.dstIdx]
		if p := ln.now.Add(s.subDelay[subIdx]); p.Before(ln.mailMin[d]) {
			ln.mailMin[d] = p
		}
		return
	}
	outs := sub.dst.Deliver(ln.now, a)
	if len(outs) > 0 {
		buf := ln.borrow(outs)
		for _, out := range buf {
			s.dispatch(ln, out, sub.dst.Name())
		}
		ln.release(buf)
	}
	if !s.linear && sub.dstIdx >= 0 {
		target := ln
		if s.shardOn && ln.shard < 0 {
			// Barrier-time dispatch (Init, Inject) delivers inline but the
			// subscriber's deadline lives in its owning lane's scheduler.
			target = s.lanes[s.compShard[sub.dstIdx]]
		}
		s.poll(target, int(sub.dstIdx))
	}
}

// Inject delivers an environment-controlled input action at the current
// time, e.g. an operation invocation driven directly by a test.
func (s *System) Inject(a ta.Action) {
	s.init()
	s.root.chainDepth = 0
	s.dispatch(&s.root, a, "")
	if s.shardOn {
		s.fireInstant()
		return
	}
	s.fireDue(&s.root)
}

func (s *System) init() {
	if s.inited {
		return
	}
	s.inited = true
	s.root.sched.grow(len(s.comps))
	s.rebuildCoal()
	// Late-resolved destinations: a Connect issued before its target's Add
	// gets its component index here, before any dispatch needs it.
	for i := range s.subs {
		if s.subs[i].dstIdx < 0 {
			if j, ok := s.index[s.subs[i].dst.Name()]; ok && s.comps[j] == s.subs[i].dst {
				s.subs[i].dstIdx = int32(j)
			}
		}
	}
	s.initShards()
	for _, c := range s.comps {
		if acts := c.Init(); len(acts) > 0 {
			buf := s.root.borrow(acts)
			for _, a := range buf {
				s.root.chainDepth = 0
				s.dispatch(&s.root, a, c.Name())
			}
			s.root.release(buf)
		}
	}
	if !s.linear {
		for i := range s.comps {
			s.poll(s.laneOf(i), i)
		}
	}
	if s.shardOn {
		s.fireInstant()
		return
	}
	s.fireDue(&s.root)
}

// laneOf returns the lane owning component i: its shard lane when sharded,
// the root lane otherwise.
func (s *System) laneOf(i int) *lane {
	if s.shardOn {
		return s.lanes[s.compShard[i]]
	}
	return &s.root
}

// fireDue fires every component of the lane whose deadline has been
// reached, repeating until the instant is quiescent.
func (s *System) fireDue(ln *lane) {
	if s.linear {
		s.fireDueLinear()
		return
	}
	s.fireDueIndexed(ln)
}

// NextDue returns the earliest pending deadline strictly after now, or
// ok=false when no component has one.
func (s *System) NextDue() (simtime.Time, bool) {
	if s.linear {
		return s.nextDueLinear()
	}
	if s.shardOn {
		next, found := simtime.Never, false
		for _, ln := range s.lanes {
			if due, ok := s.nextDue(ln); ok && (!found || due.Before(next)) {
				next, found = due, true
			}
		}
		return next, found
	}
	return s.nextDue(&s.root)
}

// nextDue returns the lane's earliest pending deadline.
func (s *System) nextDue(ln *lane) (simtime.Time, bool) {
	next, found := ln.sched.peek()
	// Rare: a late Add or Replace can park an already-due component in the
	// dueNow heap outside a fireDue sweep; the next sweep fires it, but
	// NextDue must still report it so Run/Step know there is work at or
	// before now. Empty in steady state, so this loop normally costs nothing.
	for _, idx := range ln.sched.dueNow {
		if due, ok := s.comps[idx].Due(ln.now); ok && (!found || due.Before(next)) {
			next, found = due, true
		}
	}
	return next, found
}

// Step advances to the next deadline and processes it. It returns false
// when no further deadline exists or an error occurred. On the coalesced
// path the next deadline is the next *observable* one: unobservable tick
// and idle-step deadlines before it are fast-forwarded, not stepped.
func (s *System) Step() bool {
	s.init()
	if s.err != nil {
		return false
	}
	if s.shardOn {
		return s.stepSharded()
	}
	ln := &s.root
	s.coalesce(ln, simtime.Never)
	next, ok := s.nextDueAny(ln)
	if !ok {
		return false
	}
	if next.After(ln.now) {
		ln.now = next // the ν time-passage step
	}
	s.fireDue(ln)
	s.flushSinks(ln.now)
	return s.err == nil
}

// nextDueAny dispatches between the linear and indexed next-deadline scans
// for the sequential paths.
func (s *System) nextDueAny(ln *lane) (simtime.Time, bool) {
	if s.linear {
		return s.nextDueLinear()
	}
	return s.nextDue(ln)
}

// Run executes every event with time ≤ until, then advances now to until.
// It returns the first execution error.
func (s *System) Run(until simtime.Time) error {
	s.init()
	if s.shardOn {
		return s.runSharded(until)
	}
	ln := &s.root
	for s.err == nil {
		// Coalescing is bounded by the run window: at return the skipped
		// components' schedules sit exactly where the dense path would
		// leave them at `until`, so callers may inject actions next.
		s.coalesce(ln, until)
		next, ok := s.nextDueAny(ln)
		if !ok || next.After(until) {
			break
		}
		if next.After(ln.now) {
			ln.now = next
		}
		s.fireDue(ln)
	}
	if s.err == nil && until.After(ln.now) {
		ln.now = until
	}
	// Low-watermark: every event strictly before ln.now has been emitted;
	// a subsequent Inject or Run can still produce events at ln.now itself.
	s.flushSinks(ln.now)
	return s.err
}

// RunQuiet executes until no deadlines remain or the time limit is hit,
// whichever comes first. It reports whether the system went quiescent.
func (s *System) RunQuiet(limit simtime.Time) (bool, error) {
	s.init()
	if s.shardOn {
		return s.runQuietSharded(limit)
	}
	ln := &s.root
	for s.err == nil {
		s.coalesce(ln, limit)
		next, ok := s.nextDueAny(ln)
		if !ok {
			s.flushSinks(ln.now)
			return true, nil
		}
		if next.After(limit) {
			s.flushSinks(ln.now)
			return false, nil
		}
		if next.After(ln.now) {
			ln.now = next
		}
		s.fireDue(ln)
	}
	return false, s.err
}
