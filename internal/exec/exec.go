// Package exec provides the discrete-event executor that composes
// executable timed automata (Definition 2.2) and produces recorded
// executions.
//
// The executor realizes admissible executions of the composed automaton:
// between events it performs time-passage steps (the ν action) that respect
// every component's Due deadline — the operational form of the ν
// preconditions in Figures 1–3 — and at each reached deadline it performs
// the enabled locally controlled actions, routing each output action to the
// components that have it as an input (composition communicates on shared
// actions, §2.1).
//
// Three fast-path structures keep the hot path sub-linear in both system
// size and simulated time:
//
//   - a deadline heap (sched.go) replaces the per-step linear scan over
//     every component's Due with a lazily invalidated binary min-heap,
//   - a routing table memoizes, per action header (Name, Node, Peer,
//     Kind), which subscriptions match, so dispatch stops re-evaluating
//     every predicate for every action, and
//   - an interest-declaration pass (coalesce.go) advances time directly
//     to the next observable event, collapsing runs of unobservable TICK
//     and idle-step deadlines (ta.Coalescable) into arithmetic jumps.
//
// All preserve the dispatch order of the original linear executor (kept
// in linear.go as a differential reference): deterministic seeds produce
// byte-identical traces on the indexed path and byte-identical observable
// actions on the coalesced path (which elides only hidden TICK events and
// empty step firings; see DisableCoalescing for the dense oracle).
package exec

import (
	"errors"
	"fmt"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// maxChain bounds the number of same-instant action dispatches between two
// time-passage steps, to detect zero-delay cycles in miswired systems.
const maxChain = 1 << 14

// ErrStuck reports a component that claims a due deadline but fires nothing.
var ErrStuck = errors.New("exec: component due but fired no action")

// ErrChain reports a runaway zero-delay dispatch chain.
var ErrChain = errors.New("exec: same-instant dispatch chain exceeded limit")

type subscription struct {
	match func(ta.Action) bool
	dst   ta.Automaton
	// dstIdx is dst's component index, or -1 when dst was never Added (a
	// pure observer outside the composition, which the executor never
	// schedules — matching the linear executor, which only ever polled
	// registered components).
	dstIdx int32
	// header marks match as depending only on the action's Name, Node,
	// Peer, and Kind, making the subscription eligible for the memoized
	// routing table.
	header bool
}

// routeKey is the header of an action: every field a header subscription
// may inspect. Actions sharing a key route identically.
type routeKey struct {
	name       string
	node, peer ta.NodeID
	kind       ta.Kind
}

// System is a composition of automata under execution. The zero value is
// not usable; construct with New.
type System struct {
	comps   []ta.Automaton
	index   map[string]int
	subs    []subscription
	slow    []int32 // indices of predicate-only (non-header) subscriptions
	routes  map[routeKey][]int32
	hidden  func(ta.Action) bool
	watches []func(ta.Event)

	now    simtime.Time
	seq    int
	inited bool
	err    error

	sched sched

	// linear, when set before the system first runs, restores the original
	// O(components) scan scheduler and O(subscriptions) dispatch. It exists
	// as a differential oracle for tests and benchmarks: both paths must
	// produce byte-identical traces.
	linear bool

	// dense disables tick/step coalescing (coalesce.go): every Coalescable
	// component's deadlines are enumerated one heap event at a time, as
	// they were before coalescing existed. It is the differential oracle
	// for the coalesced fast path: dense and coalesced executions of the
	// same seeded system must agree on every observable action. The linear
	// path is always dense.
	dense bool

	// coal indexes the registered components that implement
	// ta.Coalescable; ffScratch is the pooled consumed-entry list of a
	// coalescing round.
	coal      []coalEntry
	ffScratch []int32

	// KeepTrace controls whether events are recorded. Disable for
	// throughput benchmarks; watchers still run.
	KeepTrace bool
	trace     ta.Trace

	chainDepth int
	scratch    [][]ta.Action
}

// New returns an empty system at time zero.
func New() *System {
	return &System{index: make(map[string]int), KeepTrace: true}
}

// Add registers a component. Component names must be unique; Add returns
// the component for call chaining convenience.
func (s *System) Add(a ta.Automaton) ta.Automaton {
	if _, dup := s.index[a.Name()]; dup {
		s.fail(fmt.Errorf("exec: duplicate component name %q", a.Name()))
		return a
	}
	idx := len(s.comps)
	s.index[a.Name()] = idx
	s.comps = append(s.comps, a)
	if s.inited {
		if cc, ok := a.(ta.Coalescable); ok {
			s.coal = append(s.coal, coalEntry{idx: int32(idx), c: cc})
		}
		if !s.linear {
			// Late registration: size the scheduler and pick up the
			// newcomer's deadline immediately.
			s.sched.grow(len(s.comps))
			s.poll(idx)
		}
	}
	return a
}

// DisableCoalescing forces the dense-tick path: every recurring TICK and
// step deadline is enumerated as its own heap event, exactly as before
// coalescing existed. It is the differential oracle for the coalesced
// fast path (see coalesce.go) and may be toggled at any point; tests and
// `pscbench -dense` use it to prove observable-action equivalence.
func (s *System) DisableCoalescing() { s.dense = true }

// Replace swaps the component registered under name (which the
// replacement must keep) with a, redirecting any subscriptions that
// targeted the old component and refreshing the scheduler's deadline entry
// for the slot (the old component's entry is invalidated; the
// replacement's Due is polled fresh). It is intended for installing fault
// wrappers before a system runs.
func (s *System) Replace(name string, a ta.Automaton) {
	idx, ok := s.index[name]
	if !ok {
		s.fail(fmt.Errorf("exec: Replace: no component named %q", name))
		return
	}
	if a.Name() != name {
		s.fail(fmt.Errorf("exec: Replace: replacement is named %q, want %q", a.Name(), name))
		return
	}
	old := s.comps[idx]
	s.comps[idx] = a
	for i := range s.subs {
		if s.subs[i].dst == old {
			s.subs[i].dst = a
		}
	}
	if s.inited {
		s.rebuildCoal()
		if !s.linear {
			s.poll(idx)
		}
	}
}

// Connect routes every dispatched action matching match to dst as an input.
// A single action may have several subscribers (broadcast actions), matching
// the composition rule that an output is an input of every automaton whose
// signature contains it.
//
// Connect is the slow path: match may inspect the payload, so it is
// re-evaluated for every dispatched action. Wiring whose predicate only
// looks at the action header should use ConnectHeader (or ConnectName),
// which dispatch resolves through a memoized routing table.
func (s *System) Connect(match func(ta.Action) bool, dst ta.Automaton) {
	s.addSub(match, dst, false)
}

// ConnectHeader is Connect for predicates that depend only on the action's
// Name, Node, Peer, and Kind — never its Payload. Such subscriptions are
// routed through a table keyed on those four fields, built lazily and
// memoized, so the predicate runs once per distinct action header rather
// than once per dispatched action. The contract is the caller's to keep: a
// payload-inspecting predicate registered here will be consulted with an
// arbitrary representative payload and its verdict reused.
func (s *System) ConnectHeader(match func(ta.Action) bool, dst ta.Automaton) {
	s.addSub(match, dst, true)
}

// ConnectName routes every action with exactly the given name to dst,
// via the routing table.
func (s *System) ConnectName(name string, dst ta.Automaton) {
	s.ConnectHeader(func(a ta.Action) bool { return a.Name == name }, dst)
}

func (s *System) addSub(match func(ta.Action) bool, dst ta.Automaton, header bool) {
	idx := int32(-1)
	if i, ok := s.index[dst.Name()]; ok && s.comps[i] == dst {
		idx = int32(i)
	}
	s.subs = append(s.subs, subscription{match: match, dst: dst, dstIdx: idx, header: header})
	if !header {
		s.slow = append(s.slow, int32(len(s.subs)-1))
	}
	s.routes = nil // memoized routes are stale once the wiring changes
}

// Hide reclassifies matching actions as internal in the recorded trace,
// realizing the hiding operator of §2.1. It does not affect routing.
func (s *System) Hide(match func(ta.Action) bool) {
	prev := s.hidden
	s.hidden = func(a ta.Action) bool {
		if prev != nil && prev(a) {
			return true
		}
		return match(a)
	}
}

// Watch registers an observer invoked for every dispatched event, hidden or
// not, in dispatch order.
func (s *System) Watch(fn func(ta.Event)) {
	s.watches = append(s.watches, fn)
}

// Now returns the current simulated time.
func (s *System) Now() simtime.Time { return s.now }

// Err returns the first execution error, if any.
func (s *System) Err() error { return s.err }

// Trace returns the recorded execution trace (all actions, with hidden ones
// reclassified as internal). The caller must not modify it.
func (s *System) Trace() ta.Trace { return s.trace }

func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// record logs the event and notifies watchers.
func (s *System) record(a ta.Action, src string) {
	if !s.KeepTrace && len(s.watches) == 0 {
		// Nobody is looking: skip hidden-classification and event
		// construction entirely. Seq still advances so that toggling
		// KeepTrace mid-run yields consistent numbering.
		s.seq++
		return
	}
	if s.hidden != nil && a.Kind != ta.KindInternal && s.hidden(a) {
		a.Kind = ta.KindInternal
	}
	e := ta.Event{Action: a, At: s.now, Src: src, Seq: s.seq}
	s.seq++
	if s.KeepTrace {
		if s.trace == nil {
			// Traced runs record thousands of events; start with a block
			// big enough to skip the early growth doublings.
			s.trace = make(ta.Trace, 0, 4096)
		}
		s.trace = append(s.trace, e)
	}
	for _, w := range s.watches {
		w(e)
	}
}

// borrow copies acts into a pooled scratch buffer. The executor iterates
// action slices while dispatching recursively, and a nested Deliver or
// Fire may re-enter the component that produced them; copying up front is
// what lets components reuse their returned slices across calls (see the
// ta.Automaton contract).
func (s *System) borrow(acts []ta.Action) []ta.Action {
	var buf []ta.Action
	if n := len(s.scratch); n > 0 {
		buf = s.scratch[n-1][:0]
		s.scratch = s.scratch[:n-1]
	}
	return append(buf, acts...)
}

// release clears and returns a borrowed buffer to the pool. Clearing drops
// payload references so the pool never pins message bodies.
func (s *System) release(buf []ta.Action) {
	clear(buf)
	s.scratch = append(s.scratch, buf[:0])
}

// routeFor returns the header-subscription hit list for a's routing key,
// computing and memoizing it on first sight. Header predicates depend only
// on the key fields, so one representative action decides the route for
// every action sharing its key.
func (s *System) routeFor(a ta.Action) []int32 {
	key := routeKey{name: a.Name, node: a.Node, peer: a.Peer, kind: a.Kind}
	if hits, ok := s.routes[key]; ok {
		return hits
	}
	var hits []int32
	for i := range s.subs {
		if s.subs[i].header && s.subs[i].match(a) {
			hits = append(hits, int32(i))
		}
	}
	if s.routes == nil {
		s.routes = make(map[routeKey][]int32)
	}
	s.routes[key] = hits
	return hits
}

// dispatch records the action and delivers it to all subscribers,
// recursively dispatching any same-instant reactions. Subscribers are
// visited in registration order on both the indexed and linear paths:
// the routing table yields header-subscription indices sorted by
// registration, merged with the predicate-only subscriptions.
func (s *System) dispatch(a ta.Action, src string) {
	if s.err != nil {
		return
	}
	s.chainDepth++
	if s.chainDepth > maxChain {
		s.fail(fmt.Errorf("%w (last action %v at %v)", ErrChain, a, s.now))
		return
	}
	s.record(a, src)
	if s.linear {
		for i := range s.subs {
			if !s.subs[i].match(a) {
				continue
			}
			s.deliverTo(&s.subs[i], a)
		}
		return
	}
	fast := s.routeFor(a)
	if len(s.slow) == 0 {
		for _, i := range fast {
			s.deliverTo(&s.subs[i], a)
		}
		return
	}
	fi, si := 0, 0
	for fi < len(fast) || si < len(s.slow) {
		if si >= len(s.slow) || (fi < len(fast) && fast[fi] < s.slow[si]) {
			s.deliverTo(&s.subs[fast[fi]], a)
			fi++
			continue
		}
		i := s.slow[si]
		si++
		if s.subs[i].match(a) {
			s.deliverTo(&s.subs[i], a)
		}
	}
}

// deliverTo hands a to one subscriber, dispatches its same-instant
// reactions, and refreshes the subscriber's deadline entry (its Due may
// have changed with its state).
func (s *System) deliverTo(sub *subscription, a ta.Action) {
	outs := sub.dst.Deliver(s.now, a)
	if len(outs) > 0 {
		buf := s.borrow(outs)
		for _, out := range buf {
			s.dispatch(out, sub.dst.Name())
		}
		s.release(buf)
	}
	if !s.linear && sub.dstIdx >= 0 {
		s.poll(int(sub.dstIdx))
	}
}

// Inject delivers an environment-controlled input action at the current
// time, e.g. an operation invocation driven directly by a test.
func (s *System) Inject(a ta.Action) {
	s.init()
	s.chainDepth = 0
	s.dispatch(a, "")
	s.fireDue()
}

func (s *System) init() {
	if s.inited {
		return
	}
	s.inited = true
	s.sched.grow(len(s.comps))
	s.rebuildCoal()
	// Late-resolved destinations: a Connect issued before its target's Add
	// gets its component index here, before any dispatch needs it.
	for i := range s.subs {
		if s.subs[i].dstIdx < 0 {
			if j, ok := s.index[s.subs[i].dst.Name()]; ok && s.comps[j] == s.subs[i].dst {
				s.subs[i].dstIdx = int32(j)
			}
		}
	}
	for _, c := range s.comps {
		if acts := c.Init(); len(acts) > 0 {
			buf := s.borrow(acts)
			for _, a := range buf {
				s.chainDepth = 0
				s.dispatch(a, c.Name())
			}
			s.release(buf)
		}
	}
	if !s.linear {
		for i := range s.comps {
			s.poll(i)
		}
	}
	s.fireDue()
}

// fireDue fires every component whose deadline has been reached, repeating
// until the instant is quiescent.
func (s *System) fireDue() {
	if s.linear {
		s.fireDueLinear()
		return
	}
	s.fireDueIndexed()
}

// NextDue returns the earliest pending deadline strictly after now, or
// ok=false when no component has one.
func (s *System) NextDue() (simtime.Time, bool) {
	if s.linear {
		return s.nextDueLinear()
	}
	next, found := s.sched.peek()
	// Rare: a late Add or Replace can park an already-due component in the
	// dueNow heap outside a fireDue sweep; the next sweep fires it, but
	// NextDue must still report it so Run/Step know there is work at or
	// before now. Empty in steady state, so this loop normally costs nothing.
	for _, idx := range s.sched.dueNow {
		if due, ok := s.comps[idx].Due(s.now); ok && (!found || due.Before(next)) {
			next, found = due, true
		}
	}
	return next, found
}

// Step advances to the next deadline and processes it. It returns false
// when no further deadline exists or an error occurred. On the coalesced
// path the next deadline is the next *observable* one: unobservable tick
// and idle-step deadlines before it are fast-forwarded, not stepped.
func (s *System) Step() bool {
	s.init()
	if s.err != nil {
		return false
	}
	s.coalesce(simtime.Never)
	next, ok := s.NextDue()
	if !ok {
		return false
	}
	if next.After(s.now) {
		s.now = next // the ν time-passage step
	}
	s.fireDue()
	return s.err == nil
}

// Run executes every event with time ≤ until, then advances now to until.
// It returns the first execution error.
func (s *System) Run(until simtime.Time) error {
	s.init()
	for s.err == nil {
		// Coalescing is bounded by the run window: at return the skipped
		// components' schedules sit exactly where the dense path would
		// leave them at `until`, so callers may inject actions next.
		s.coalesce(until)
		next, ok := s.NextDue()
		if !ok || next.After(until) {
			break
		}
		if next.After(s.now) {
			s.now = next
		}
		s.fireDue()
	}
	if s.err == nil && until.After(s.now) {
		s.now = until
	}
	return s.err
}

// RunQuiet executes until no deadlines remain or the time limit is hit,
// whichever comes first. It reports whether the system went quiescent.
func (s *System) RunQuiet(limit simtime.Time) (bool, error) {
	s.init()
	for s.err == nil {
		s.coalesce(limit)
		next, ok := s.NextDue()
		if !ok {
			return true, nil
		}
		if next.After(limit) {
			return false, nil
		}
		if next.After(s.now) {
			s.now = next
		}
		s.fireDue()
	}
	return false, s.err
}
