package exec

import (
	"fmt"

	"psclock/internal/simtime"
)

// sched is the indexed deadline scheduler: a binary min-heap of
// (due, componentIndex) entries with generation-counter lazy invalidation,
// plus a small index-ordered heap of the components due at the current
// instant.
//
// Invariant: a component lives in exactly one place. If curOk[i] and
// !inNow[i], the main heap holds one entry for i whose gen field equals
// gen[i] and whose due equals curDue[i] (plus possibly stale entries with
// older gens, discarded on pop). If inNow[i], the component has been moved
// to the dueNow heap for the current instant and the main heap holds no
// live entry for it. If !curOk[i], the component has no pending deadline.
//
// Entries are never removed from the middle of the heap; superseding an
// entry bumps gen[i] and the stale copy is skipped when it surfaces. This
// keeps every update O(log n) with no positional bookkeeping.
type sched struct {
	heap []schedEntry

	// Per-component state, indexed by registration order.
	gen    []uint32
	curDue []simtime.Time
	curOk  []bool
	inNow  []bool

	// dueNow holds the indices of components scheduled to fire at the
	// current instant, ordered by registration index so the sweep in
	// fireDueIndexed visits them exactly as the linear executor's
	// component scan did.
	dueNow []int32
	carry  []int32
}

type schedEntry struct {
	due simtime.Time
	idx int32
	gen uint32
}

func entryLess(a, b schedEntry) bool {
	if a.due != b.due {
		return a.due < b.due
	}
	return a.idx < b.idx
}

// grow sizes the per-component arrays for n components.
func (sc *sched) grow(n int) {
	for len(sc.gen) < n {
		sc.gen = append(sc.gen, 0)
		sc.curDue = append(sc.curDue, 0)
		sc.curOk = append(sc.curOk, false)
		sc.inNow = append(sc.inNow, false)
	}
}

func (sc *sched) push(e schedEntry) {
	sc.heap = append(sc.heap, e)
	i := len(sc.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(sc.heap[i], sc.heap[p]) {
			break
		}
		sc.heap[i], sc.heap[p] = sc.heap[p], sc.heap[i]
		i = p
	}
}

func (sc *sched) pop() schedEntry {
	top := sc.heap[0]
	n := len(sc.heap) - 1
	sc.heap[0] = sc.heap[n]
	sc.heap = sc.heap[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && entryLess(sc.heap[r], sc.heap[l]) {
			m = r
		}
		if !entryLess(sc.heap[m], sc.heap[i]) {
			break
		}
		sc.heap[i], sc.heap[m] = sc.heap[m], sc.heap[i]
		i = m
	}
	return top
}

// stale reports whether e no longer represents its component's deadline.
func (sc *sched) stale(e schedEntry) bool {
	return e.gen != sc.gen[e.idx] || !sc.curOk[e.idx]
}

// peek returns the earliest live deadline, discarding stale entries that
// have surfaced at the top.
func (sc *sched) peek() (simtime.Time, bool) {
	for len(sc.heap) > 0 {
		top := sc.heap[0]
		if sc.stale(top) {
			sc.pop()
			continue
		}
		return top.due, true
	}
	return simtime.Never, false
}

// collectNow moves every component with a live entry due at or before now
// into the dueNow heap, consuming the main-heap entries.
func (sc *sched) collectNow(now simtime.Time) {
	for len(sc.heap) > 0 {
		top := sc.heap[0]
		if sc.stale(top) {
			sc.pop()
			continue
		}
		if top.due.After(now) {
			return
		}
		sc.pop()
		sc.gen[top.idx]++ // consumed: the component now lives in dueNow
		if !sc.inNow[top.idx] {
			sc.pushNow(top.idx)
			sc.inNow[top.idx] = true
		}
	}
}

func (sc *sched) pushNow(idx int32) {
	sc.dueNow = append(sc.dueNow, idx)
	i := len(sc.dueNow) - 1
	for i > 0 {
		p := (i - 1) / 2
		if sc.dueNow[i] >= sc.dueNow[p] {
			break
		}
		sc.dueNow[i], sc.dueNow[p] = sc.dueNow[p], sc.dueNow[i]
		i = p
	}
}

func (sc *sched) popNow() int32 {
	top := sc.dueNow[0]
	n := len(sc.dueNow) - 1
	sc.dueNow[0] = sc.dueNow[n]
	sc.dueNow = sc.dueNow[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && sc.dueNow[r] < sc.dueNow[l] {
			m = r
		}
		if sc.dueNow[m] >= sc.dueNow[i] {
			break
		}
		sc.dueNow[i], sc.dueNow[m] = sc.dueNow[m], sc.dueNow[i]
		i = m
	}
	return top
}

// poll refreshes the lane scheduler's view of component i after anything
// that may have changed its state (Init, Deliver, Fire, Replace, late Add).
// The common case — deadline unchanged — is two loads and a compare.
func (s *System) poll(ln *lane, i int) {
	sc := &ln.sched
	ln.hValid = false
	ln.idle = false
	due, ok := s.comps[i].Due(ln.now)
	if !ok {
		if sc.curOk[i] {
			sc.gen[i]++ // invalidates any live main-heap entry
			sc.curOk[i] = false
		}
		return
	}
	if sc.inNow[i] {
		// Already scheduled for this instant; the sweep re-checks Due at
		// visit time, so only the bookkeeping needs refreshing.
		sc.curOk[i] = true
		sc.curDue[i] = due
		return
	}
	if sc.curOk[i] && sc.curDue[i] == due {
		if !due.After(ln.now) {
			// Deadline reached but the component is still parked in the
			// main heap (its entry predates now reaching due). Promote it
			// so a mid-instant sweep sees it immediately.
			sc.gen[i]++
			sc.pushNow(int32(i))
			sc.inNow[i] = true
		}
		return
	}
	sc.gen[i]++
	sc.curOk[i] = true
	sc.curDue[i] = due
	if !due.After(ln.now) {
		sc.pushNow(int32(i))
		sc.inNow[i] = true
	} else {
		sc.push(schedEntry{due: due, idx: int32(i), gen: sc.gen[i]})
	}
}

// fireDueIndexed is the heap-driven replica of the linear executor's
// fire-until-quiescent sweep. Each round it pops due components in
// registration-index order (matching the linear scan). A component whose
// deadline appears mid-round at an index the cursor has already passed is
// carried to the next round — exactly the set the linear sweep would have
// missed on that pass and caught on its next one. Rounds repeat while any
// component fired actions, as in the linear version.
//
// The lane's round counter and firing index stamp each buffered event
// under sharded execution (shard.go): because same-instant causality is
// confined to a lane, a lane's round/carry decisions reproduce the global
// sequential sweep's, so (time, round, firing index) is a merge key that
// reconstructs the sequential dispatch order across lanes.
func (s *System) fireDueIndexed(ln *lane) {
	sc := &ln.sched
	ln.round = 0
	for *ln.err == nil {
		sc.collectNow(ln.now)
		if len(sc.dueNow) == 0 {
			return
		}
		progressed := false
		cursor := int32(-1)
		carry := sc.carry[:0]
		for len(sc.dueNow) > 0 {
			idx := sc.popNow()
			if idx <= cursor {
				carry = append(carry, idx) // stays inNow; next round's work
				continue
			}
			cursor = idx
			sc.inNow[idx] = false
			c := s.comps[idx]
			due, ok := c.Due(ln.now)
			if !ok {
				if sc.curOk[idx] {
					sc.gen[idx]++
					sc.curOk[idx] = false
				}
				continue
			}
			if due.After(ln.now) {
				sc.gen[idx]++
				sc.curOk[idx] = true
				sc.curDue[idx] = due
				sc.push(schedEntry{due: due, idx: idx, gen: sc.gen[idx]})
				continue
			}
			acts := c.Fire(ln.now)
			if len(acts) == 0 {
				// The component claimed a reached deadline but performed
				// nothing: its Due must move forward or the system is stuck.
				if due2, ok2 := c.Due(ln.now); ok2 && !due2.After(ln.now) {
					ln.fail(fmt.Errorf("%w: %s claims due %v at %v but fires nothing", ErrStuck, c.Name(), due2, ln.now))
					return
				}
				s.poll(ln, int(idx))
				continue
			}
			progressed = true
			ln.firing = idx
			buf := ln.borrow(acts)
			for _, a := range buf {
				ln.chainDepth = 0
				s.dispatch(ln, a, c.Name())
			}
			ln.release(buf)
			s.poll(ln, int(idx))
		}
		sc.carry = carry
		for _, idx := range carry {
			// Re-enter dueNow for the next round; inNow is still set.
			sc.pushNow(idx)
		}
		if !progressed {
			return
		}
		ln.round++
	}
}
