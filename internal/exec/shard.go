package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// This file implements sharded conservative-parallel execution, a
// Chandy–Misra–Bryant-style bounded-lag scheme built on the paper's own
// timing assumption: every message spends at least d1 real time in its
// channel (§2.3). Partition the components into shards so that all
// same-instant causality is shard-local — each node together with its
// clock/tick source and clients, every channel pinned to its receiver's
// shard — and d1 becomes the lookahead of every cross-shard edge: an event
// fired at time u in one shard cannot affect another shard before u + d1.
//
// Execution proceeds in rounds. A round picks the earliest pending
// deadline T across all lanes and opens the window [T, W) with
// W = T + L, L the minimum lookahead over cross-shard edges. Every lane
// then advances independently through the window — its own coalescing
// sweep, deadline heap, and fire-until-quiescent instants — which is safe
// because no other lane's activity inside the window can reach it before
// W. Actions that route to another lane's component are not delivered
// inline; they are buffered into the sending lane's mailbox and delivered
// single-threaded at the round barrier, where their deadlines (≥ u + d1 ≥
// W) land strictly beyond the window just executed. The barrier also
// merges the lanes' buffered events into the trace in the canonical
// (time, fire round, firing component index) order, which reconstructs the
// sequential indexed executor's dispatch order exactly — seeded sharded
// runs are byte-identical to sequential runs on every recorded event for
// systems with no coalescing divergence, and on every observable event in
// general (lane-bounded coalescing may synthesize extra hidden sync TICKs
// at window boundaries; see coalesce.go).
//
// Two dynamic checks guard the conservative assumption at every barrier
// delivery: a cross-shard subscriber must not react at the same instant
// (its Deliver must return no actions — true of channels, which only
// schedule a future arrival), and the deadline it acquires must not fall
// inside the window that just executed. Violations fail the run loudly
// rather than reorder events silently.
//
// Sharding falls back to fully sequential execution — the configuration is
// simply not activated — when it cannot be proven safe: a requested
// lookahead ≤ 0 (some cross-shard edge has no minimum delay), a component
// the assignment does not place, a subscription whose destination is not a
// registered component (the executor cannot pin it to a lane), or the
// linear oracle path. Sharded() reports whether the partition took effect.

// shardConfig is a requested partition, held until init validates it.
type shardConfig struct {
	n         int
	lookahead simtime.Duration
	assign    func(name string) int
}

// laneEvent is one recorded action buffered during a sharded round, with
// the canonical merge key (at, round, firing): lane-local fire rounds and
// firing component indices reproduce the global sequential sweep's because
// same-instant causality never crosses lanes.
type laneEvent struct {
	a      ta.Action
	src    string
	at     simtime.Time
	round  int32
	firing int32
}

// mailEntry is a cross-shard delivery awaiting the round barrier.
type mailEntry struct {
	sub int32
	a   ta.Action
	at  simtime.Time
	src string
}

// SetShards configures conservative-parallel sharded execution: n shards,
// the minimum cross-shard lookahead (the smallest d1 over edges whose
// sender and receiver land in different shards; pass the saturating
// simtime.Duration(simtime.Never) when no edge crosses shards), and an
// assignment from component name to shard id in [0, n). The assignment is
// consulted once, when the system first runs; it must place every
// registered component, keep each component and everything it can react
// with at the same instant in one shard, and pin each channel to its
// receiver's shard. Registration must be complete by then: Add and Replace
// fail once sharded execution has started.
//
// Sharding silently falls back to sequential execution when the
// configuration cannot be proven safe (lookahead ≤ 0, an unplaced
// component, an unregistered subscriber, n ≤ 1, or the linear oracle
// path); Sharded reports whether it took effect. Either way, seeded runs
// produce identical observable traces.
func (s *System) SetShards(n int, lookahead simtime.Duration, assign func(name string) int) {
	if s.inited {
		s.fail(fmt.Errorf("exec: SetShards after the system started"))
		return
	}
	if n <= 1 || assign == nil {
		s.shardCfg = nil
		return
	}
	s.shardCfg = &shardConfig{n: n, lookahead: lookahead, assign: assign}
}

// Sharded reports whether sharded execution is active. It is meaningful
// once the system has started running (the partition is validated on first
// run); before that it is always false.
func (s *System) Sharded() bool { return s.shardOn }

// ShardCount returns the number of active shards, or 0 when execution is
// sequential.
func (s *System) ShardCount() int { return len(s.lanes) }

// ShardFallbackReason explains why a requested SetShards configuration was
// not activated; it is empty when sharding is active or was never
// requested.
func (s *System) ShardFallbackReason() string { return s.shardReason }

// initShards validates the requested partition and builds the lanes. It
// runs inside init, after subscription destinations are resolved and
// before any component acts.
func (s *System) initShards() {
	cfg := s.shardCfg
	if cfg == nil {
		return
	}
	if s.linear {
		s.shardReason = "linear oracle path"
		return
	}
	if cfg.lookahead <= 0 {
		s.shardReason = "a cross-shard edge has zero lookahead"
		return
	}
	for i := range s.subs {
		if s.subs[i].dstIdx < 0 {
			s.shardReason = fmt.Sprintf("subscriber %s is not a registered component", s.subs[i].dst.Name())
			return
		}
	}
	shard := make([]int32, len(s.comps))
	for i, c := range s.comps {
		sh := cfg.assign(c.Name())
		if sh < 0 || sh >= cfg.n {
			s.shardReason = fmt.Sprintf("component %s has no shard assignment", c.Name())
			return
		}
		shard[i] = int32(sh)
	}
	s.compShard = shard
	s.lookahead = cfg.lookahead
	s.lanes = make([]*lane, cfg.n)
	for k := range s.lanes {
		ln := &lane{shard: int32(k), now: s.root.now}
		ln.err = &ln.errSlot
		ln.sched.grow(len(s.comps))
		s.lanes[k] = ln
	}
	s.shardOn = true
}

// runLanes applies fn to every lane, concurrently when the machine has
// cores to spare. Lane work only touches lane-owned state and read-only
// wiring, so the only synchronization needed is the join.
func (s *System) runLanes(fn func(*lane)) {
	workers := runtime.GOMAXPROCS(0)
	if len(s.lanes) < workers {
		workers = len(s.lanes)
	}
	if workers <= 1 {
		for _, ln := range s.lanes {
			fn(ln)
		}
		return
	}
	var next atomic.Int32
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(s.lanes) {
				return
			}
			fn(s.lanes[i])
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for k := 0; k < workers-1; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// laneWindow advances one lane through the round window: coalesce up to
// bound, then fire every deadline strictly before W and at or before
// until, exactly as the sequential Run loop does within its window.
func (s *System) laneWindow(ln *lane, bound, w, until simtime.Time) {
	for *ln.err == nil {
		s.coalesce(ln, bound)
		next, ok := s.nextDue(ln)
		if !ok || next.After(until) || !next.Before(w) {
			return
		}
		if next.After(ln.now) {
			ln.now = next
		}
		s.fireDueIndexed(ln)
	}
}

// eventBefore orders buffered events by the canonical merge key.
func eventBefore(a, b *laneEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.round != b.round {
		return a.round < b.round
	}
	return a.firing < b.firing
}

// mergeEvents drains the lanes' event buffers into the emit chain (trace,
// watchers, sinks) in canonical order, assigning global sequence numbers.
// Each lane's buffer is already sorted by the merge key (lanes process
// instants, rounds, and firings in ascending order), so a k-way head merge
// suffices; keys never tie across lanes because a component fires in
// exactly one.
func (s *System) mergeEvents() {
	counted := 0
	for _, ln := range s.lanes {
		counted += ln.evCount
		ln.evCount = 0
	}
	s.seq += counted
	for {
		var best *lane
		var bestPos int
		for _, ln := range s.lanes {
			if len(ln.events) == 0 {
				continue
			}
			if best == nil || eventBefore(&ln.events[0], &best.events[bestPos]) {
				best, bestPos = ln, 0
			}
		}
		if best == nil {
			break
		}
		le := best.events[0]
		best.events = best.events[1:]
		a := le.a
		if s.hidden != nil && a.Kind != ta.KindInternal && s.hidden(a) {
			a.Kind = ta.KindInternal
		}
		e := ta.Event{Action: a, At: le.at, Src: le.src, Seq: s.seq}
		s.seq++
		s.emit(e)
	}
	for _, ln := range s.lanes {
		// The buffers were consumed by reslicing; reset to the full
		// capacity block and drop payload references.
		ln.events = ln.events[:cap(ln.events)]
		clear(ln.events)
		ln.events = ln.events[:0]
	}
}

// deliverMail performs the buffered cross-shard deliveries at the round
// barrier. Per-edge order is the sending lane's dispatch order (a channel
// has a single sender, so this is its sequential delivery order); order
// across distinct destinations is immaterial because barrier deliveries
// must be reaction-free. The round just fired every deadline strictly
// before window bound w and at or before run bound fired (Run's until,
// Step's instant): a delivery leaving its destination due inside that
// already-swept region means the lookahead promise was broken — events
// after the due are already merged — so it fails the run. A due past
// either bound is fine: the deadline was legitimately left for a later
// round.
func (s *System) deliverMail(w, fired simtime.Time) {
	for _, ln := range s.lanes {
		for i := range ln.mail {
			if s.err != nil {
				break
			}
			m := &ln.mail[i]
			sub := &s.subs[m.sub]
			outs := sub.dst.Deliver(m.at, m.a)
			if len(outs) > 0 {
				s.fail(fmt.Errorf("exec: cross-shard subscriber %s reacted at the same instant to %s from %s at %v; sharded execution requires delayed cross-shard effects",
					sub.dst.Name(), m.a.Name, srcLabel(m.src), m.at))
				break
			}
			dl := s.lanes[s.compShard[sub.dstIdx]]
			s.poll(dl, int(sub.dstIdx))
			if due, ok := sub.dst.Due(dl.now); ok && due.Before(w) && !due.After(fired) {
				s.fail(fmt.Errorf("exec: lookahead violation: %s from %s at %v made %s due at %v, inside the executed window ending %v",
					m.a.Name, srcLabel(m.src), m.at, sub.dst.Name(), due, w))
				break
			}
		}
		clear(ln.mail)
		ln.mail = ln.mail[:0]
	}
}

// collectLaneErrs surfaces the first lane error, in shard order, as the
// system error.
func (s *System) collectLaneErrs() {
	for _, ln := range s.lanes {
		if ln.errSlot != nil {
			s.fail(ln.errSlot)
			ln.errSlot = nil
		}
	}
}

// barrier completes a round: merge the buffered events, deliver the
// cross-shard mail against window bound w and run bound fired, surface
// lane errors, and advance the sinks' low-watermark. The watermark is
// min(w, fired): every deadline strictly before the window bound and at or
// before the run bound has fired and merged, remaining lane deadlines sit
// at or beyond w, and barrier mail may only arm deadlines outside the
// swept region (enforced by deliverMail) — so no future event can precede
// it. This is the per-lane-watermarks-merged-at-the-barrier rule: each
// lane's local clock has individually cleared the window, and the merge
// makes their minimum globally safe.
func (s *System) barrier(w, fired simtime.Time) {
	s.mergeEvents()
	s.deliverMail(w, fired)
	s.collectLaneErrs()
	if s.err == nil {
		bound := w
		if fired.Before(bound) {
			bound = fired
		}
		s.flushSinks(bound)
	}
}

// minLaneDue returns the earliest pending deadline over all lanes.
func (s *System) minLaneDue() (simtime.Time, bool) {
	next, found := simtime.Never, false
	for _, ln := range s.lanes {
		if due, ok := s.nextDue(ln); ok && (!found || due.Before(next)) {
			next, found = due, true
		}
	}
	return next, found
}

// fireInstant processes the current instant on every lane: barrier-time
// dispatch (Init, Inject) may have armed deadlines at the global now, and
// their same-instant cascades are shard-local like any other. Lanes first
// take the time-passage step to the global clock.
func (s *System) fireInstant() {
	now := s.root.now
	w := now.Add(s.lookahead)
	s.runLanes(func(ln *lane) {
		if now.After(ln.now) {
			ln.now = now
		}
		s.fireDueIndexed(ln)
	})
	s.barrier(w, now)
}

// runSharded is Run on the sharded path: bounded-lag rounds until no
// deadline remains at or before until.
func (s *System) runSharded(until simtime.Time) error {
	for s.err == nil {
		t, ok := s.minLaneDue()
		if !ok || t.After(until) {
			break
		}
		w := t.Add(s.lookahead)
		bound := w
		if until.Before(bound) {
			bound = until
		}
		s.runLanes(func(ln *lane) { s.laneWindow(ln, bound, w, until) })
		s.barrier(w, until)
	}
	if s.err == nil {
		if until.After(s.root.now) {
			s.root.now = until
		}
		for _, ln := range s.lanes {
			if s.root.now.After(ln.now) {
				ln.now = s.root.now
			}
		}
		s.flushSinks(s.root.now)
	}
	return s.err
}

// runQuietSharded is RunQuiet on the sharded path. Quiescence is judged on
// raw deadlines: coalescable components re-arm when consumed, so a lane
// with any pending deadline reports it here just as the sequential scan
// would after its coalescing pass.
func (s *System) runQuietSharded(limit simtime.Time) (bool, error) {
	for s.err == nil {
		t, ok := s.minLaneDue()
		if !ok {
			return true, nil
		}
		if t.After(limit) {
			return false, nil
		}
		w := t.Add(s.lookahead)
		bound := w
		if limit.Before(bound) {
			bound = limit
		}
		s.runLanes(func(ln *lane) { s.laneWindow(ln, bound, w, limit) })
		s.barrier(w, limit)
	}
	return false, s.err
}

// anyObservableScheduled reports whether any component with a pending
// deadline could ever perform an observable action — the sharded
// counterpart of the sequential coalescer's Never-horizon test, evaluated
// up front because the window anchor would otherwise creep forever through
// a system with nothing observable left.
func (s *System) anyObservableScheduled() bool {
	for i, c := range s.comps {
		if _, ok := c.Due(s.lanes[s.compShard[i]].now); !ok {
			continue
		}
		cc, isC := c.(ta.Coalescable)
		if !isC || cc.NextInterest() != simtime.Never {
			return true
		}
	}
	return false
}

// stepSharded is Step on the sharded path: advance to the next (observable,
// when coalescing) deadline and process exactly that instant, system-wide.
func (s *System) stepSharded() bool {
	coalescing := !s.dense && len(s.coal) > 0 && s.anyObservableScheduled()
	for s.err == nil {
		t, ok := s.minLaneDue()
		if !ok {
			return false
		}
		if coalescing {
			w := t.Add(s.lookahead)
			s.runLanes(func(ln *lane) { s.coalesce(ln, w) })
			t, ok = s.minLaneDue()
			if !ok {
				return false
			}
			if !t.Before(w) {
				// Every deadline inside the window was unobservable and the
				// schedules jumped past it; re-anchor and sweep again.
				continue
			}
		}
		instant := t
		w := instant.Add(s.lookahead)
		s.runLanes(func(ln *lane) {
			next, ok := s.nextDue(ln)
			if !ok || next != instant {
				return
			}
			if instant.After(ln.now) {
				ln.now = instant
			}
			s.fireDueIndexed(ln)
		})
		s.barrier(w, instant)
		if s.err == nil && instant.After(s.root.now) {
			s.root.now = instant
		}
		return s.err == nil
	}
	return false
}
