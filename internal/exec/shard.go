package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// This file implements sharded conservative-parallel execution: a
// Chandy–Misra–Bryant-style scheme with adaptive per-lane horizons, built
// on the paper's own timing assumption that every message spends at least
// d1 real time in its channel (§2.3). Partition the components into shards
// so that all same-instant causality is shard-local — each node together
// with its clock/tick source and clients, every channel pinned to its
// receiver's shard — and the per-edge d1 becomes the lookahead of each
// cross-shard edge: an event fired at time u in one shard cannot affect
// another shard before u + d1 of the edge it crosses.
//
// # The guarantee matrix
//
// Instead of fixed-width rounds anchored at the global minimum deadline,
// every ordered lane pair (j, k) carries an atomically published guarantee
// G[j][k]: no effect originating in lane j reaches lane k strictly before
// G[j][k]. Lane j keeps its row current as it executes,
//
//	G[j][k] = max(previous, min(H_j + la[j][k], mailMin_j[k]))
//
// where H_j is the lane's horizon — a conservative lower bound on its next
// observable action: the minimum over its pending deadlines, each widened
// to the owning component's NextInterest when the deadline itself is
// unobservable bookkeeping (ta.Coalescable; never widened on the dense
// oracle path), and further capped by the lane's own incoming guarantees
// min_m G[m][j], since mail it has not yet received may arm earlier
// deadlines — la[j][k] is the smallest d1 over cross-shard edges from j to
// k (saturating Never when none exists), and mailMin_j[k] bounds the mail
// already buffered for k but not yet handed over. Guarantees only grow: an
// older, larger promise remains valid because every value ever stored was
// justified by the invariant at store time.
//
// Each lane independently executes every deadline strictly before its
// window bound W_k = min_j G[j][k] (and at or before the run bound),
// republishing its row after each sweep — the null message of classic CMB,
// here a handful of atomic stores. When every core has a lane to itself,
// a lane whose window stopped growing spin-chases its peers' horizons
// (bounded, with an active-lane counter detecting global exhaustion);
// otherwise lanes simply return and the coordinator reruns them while any
// lane makes progress, which on a single core turns each pass into a
// rolling wavefront: later lanes see earlier lanes' fresh horizons within
// the same sweep. This is the round batching the adaptive protocol buys:
// one pass executes as many instants as the horizons allow — many old
// fixed-width rounds' worth when mailboxes are quiet and interest horizons
// are far — before paying for a barrier.
//
// # Barriers
//
// A pass group ends when no lane can advance. The barrier then runs
// single-threaded: it delivers the buffered cross-shard mail, re-relaxes
// the guarantee matrix from the post-delivery schedules (the CMB fixpoint
// H_k = min(local_k, min_j H_j + la[j][k]), iterated to convergence — this
// is what re-raises rows previously capped by now-delivered mail), merges
// the settled prefix of the lanes' event buffers into the trace, and
// advances the sinks' low-watermark. The merge bound is the globally
// earliest pending deadline after delivery: every future event — a local
// fire or a consequence of future mail — happens at or after it, so events
// strictly before it are final. Merging in canonical (time, fire round,
// firing component index) order reconstructs the sequential indexed
// executor's dispatch order exactly — seeded sharded runs are
// byte-identical to sequential runs on every recorded event for systems
// with no coalescing divergence, and on every observable event in general.
//
// Two dynamic checks guard the conservative assumption at every barrier
// delivery: a cross-shard subscriber must not react at the same instant
// (its Deliver must return no actions — true of channels, which only
// schedule a future arrival), and the deadline it acquires must not fall
// inside the destination lane's executed frontier. A component whose
// NextInterest underestimates lies its lane's horizon upward; if the lie
// ever matters, the mail it licensed lands behind a frontier and the run
// fails loudly (exec: lookahead violation) rather than reordering events
// silently — and because every lane fires only its own deadlines in
// ascending time, events already merged remain correctly ordered even
// then.
//
// Sharding falls back to fully sequential execution — the configuration is
// simply not activated — when it cannot be proven safe: a cross-shard pair
// with zero lookahead, a component the assignment does not place, a
// subscription whose destination is not a registered component, or the
// linear oracle path. Sharded() reports whether the partition took effect.

// passSpinLimit bounds the yields a blocked lane spends chasing its peers'
// horizons within one pass before giving up and letting the coordinator
// rerun it; correctness never depends on the spin, only latency does.
const passSpinLimit = 4096

// shardConfig is a requested partition, held until init validates it.
type shardConfig struct {
	n        int
	assign   func(name string) int
	la       [][]simtime.Duration
	minDelay func(name string) simtime.Duration
}

// laneEvent is one recorded action buffered during a sharded pass, with
// the canonical merge key (at, round, firing): lane-local fire rounds and
// firing component indices reproduce the global sequential sweep's because
// same-instant causality never crosses lanes.
type laneEvent struct {
	a      ta.Action
	src    string
	at     simtime.Time
	round  int32
	firing int32
}

// mailEntry is a cross-shard delivery awaiting the barrier.
type mailEntry struct {
	sub int32
	a   ta.Action
	at  simtime.Time
	src string
}

// ShardPlan carries the per-edge timing knowledge the adaptive horizon
// protocol exploits beyond a single global lookahead.
type ShardPlan struct {
	// Lookahead[j][k] must lower-bound the delay of every cross-shard
	// causal path from shard j to shard k: an action dispatched in j at
	// time u may not make any component of k due before u +
	// Lookahead[j][k]. Use the saturating simtime.Duration(simtime.Never)
	// for pairs no action ever crosses; every entry for a pair that does
	// communicate must be strictly positive or the partition is rejected.
	Lookahead [][]simtime.Duration
	// MinDelay returns a lower bound on the named component's effect
	// delay: an input delivered to it at time u arms no deadline before
	// u + MinDelay. Channels return their d1; nil (or a zero return)
	// means no bound is claimed, which is always safe.
	MinDelay func(name string) simtime.Duration
}

// SetShards configures conservative-parallel sharded execution with a
// single uniform lookahead: n shards, the minimum cross-shard lookahead
// (the smallest d1 over edges whose sender and receiver land in different
// shards; pass the saturating simtime.Duration(simtime.Never) when no edge
// crosses shards), and an assignment from component name to shard id in
// [0, n). It is SetShardsPlanned with every lane pair sharing the one
// bound; planners that know per-edge d1 should prefer the planned form,
// which lets distant pairs run further ahead.
func (s *System) SetShards(n int, lookahead simtime.Duration, assign func(name string) int) {
	if n <= 1 || assign == nil {
		s.SetShardsPlanned(n, assign, ShardPlan{})
		return
	}
	la := make([][]simtime.Duration, n)
	for j := range la {
		la[j] = make([]simtime.Duration, n)
		for k := range la[j] {
			if j != k {
				la[j][k] = lookahead
			}
		}
	}
	s.SetShardsPlanned(n, assign, ShardPlan{Lookahead: la})
}

// SetShardsPlanned configures conservative-parallel sharded execution from
// a full per-lane-pair lookahead plan. The assignment is consulted once,
// when the system first runs; it must place every registered component,
// keep each component and everything it can react with at the same instant
// in one shard, and pin each channel to its receiver's shard. Registration
// must be complete by then: Add and Replace fail once sharded execution
// has started.
//
// Sharding silently falls back to sequential execution when the
// configuration cannot be proven safe (a communicating pair with lookahead
// ≤ 0, an unplaced component, an unregistered subscriber, n ≤ 1, a
// malformed plan, or the linear oracle path); Sharded reports whether it
// took effect. Either way, seeded runs produce identical observable
// traces.
func (s *System) SetShardsPlanned(n int, assign func(name string) int, plan ShardPlan) {
	if s.inited {
		s.fail(fmt.Errorf("exec: SetShards after the system started"))
		return
	}
	if n <= 1 || assign == nil {
		s.shardCfg = nil
		return
	}
	s.shardCfg = &shardConfig{n: n, assign: assign, la: plan.Lookahead, minDelay: plan.MinDelay}
}

// Sharded reports whether sharded execution is active. It is meaningful
// once the system has started running (the partition is validated on first
// run); before that it is always false.
func (s *System) Sharded() bool { return s.shardOn }

// ShardCount returns the number of active shards, or 0 when execution is
// sequential.
func (s *System) ShardCount() int { return len(s.lanes) }

// ShardFallbackReason explains why a requested SetShards configuration was
// not activated; it is empty when sharding is active or was never
// requested.
func (s *System) ShardFallbackReason() string { return s.shardReason }

// initShards validates the requested partition and builds the lanes. It
// runs inside init, after subscription destinations are resolved and
// before any component acts.
func (s *System) initShards() {
	cfg := s.shardCfg
	if cfg == nil {
		return
	}
	if s.linear {
		s.shardReason = "linear oracle path"
		return
	}
	n := cfg.n
	if len(cfg.la) != n {
		s.shardReason = "malformed lookahead matrix"
		return
	}
	minLA := simtime.Duration(simtime.Never)
	for j := 0; j < n; j++ {
		if len(cfg.la[j]) != n {
			s.shardReason = "malformed lookahead matrix"
			return
		}
		for k := 0; k < n; k++ {
			if j == k {
				continue
			}
			la := cfg.la[j][k]
			if la <= 0 {
				s.shardReason = "a cross-shard edge has zero lookahead"
				return
			}
			if la < minLA {
				minLA = la
			}
		}
	}
	for i := range s.subs {
		if s.subs[i].dstIdx < 0 {
			s.shardReason = fmt.Sprintf("subscriber %s is not a registered component", s.subs[i].dst.Name())
			return
		}
	}
	shard := make([]int32, len(s.comps))
	for i, c := range s.comps {
		sh := cfg.assign(c.Name())
		if sh < 0 || sh >= n {
			s.shardReason = fmt.Sprintf("component %s has no shard assignment", c.Name())
			return
		}
		shard[i] = int32(sh)
	}
	s.compShard = shard
	s.laMat = cfg.la
	s.minLA = minLA
	s.subDelay = make([]simtime.Duration, len(s.subs))
	if cfg.minDelay != nil {
		for i := range s.subs {
			if d := cfg.minDelay(s.subs[i].dst.Name()); d > 0 {
				s.subDelay[i] = d
			}
		}
	}
	s.gmat = make([]atomic.Int64, n*n)
	s.lanes = make([]*lane, n)
	for k := range s.lanes {
		ln := &lane{shard: int32(k), now: s.root.now}
		ln.err = &ln.errSlot
		ln.sched.grow(len(s.comps))
		ln.mailMin = make([]simtime.Time, n)
		for d := range ln.mailMin {
			ln.mailMin[d] = simtime.Never
		}
		s.lanes[k] = ln
	}
	s.shardOn = true
}

// runLanes applies fn to every lane, concurrently when the machine has
// cores to spare. Lane work only touches lane-owned state, read-only
// wiring, and the atomic guarantee matrix, so the only synchronization
// needed is the join.
func (s *System) runLanes(fn func(*lane)) {
	workers := runtime.GOMAXPROCS(0)
	if len(s.lanes) < workers {
		workers = len(s.lanes)
	}
	if workers <= 1 {
		for _, ln := range s.lanes {
			fn(ln)
		}
		return
	}
	var next atomic.Int32
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(s.lanes) {
				return
			}
			fn(s.lanes[i])
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for k := 0; k < workers-1; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// laneHorizon returns H: a conservative lower bound on the next instant at
// which the lane could commit an observable action, judged from its
// current schedule and assuming no further cross-shard input. Deadlines of
// coalescable components are widened to their NextInterest — an
// unobservable TICK or idle step cannot affect another shard — except on
// the dense oracle path, where those deadlines fire for real at their
// exact dense times. Never means the lane will never act again on its own.
func (s *System) laneHorizon(ln *lane) simtime.Time {
	if ln.hValid {
		return ln.hCache
	}
	sc := &ln.sched
	h := simtime.Never
	// Pruned depth-first walk of the deadline heap: the heap invariant
	// holds on stored dues (stale or not), so once a node's due reaches
	// the best widened bound found so far, its whole subtree — dues only
	// grow downward, and widening never shrinks a bound — cannot improve
	// the horizon. When the earliest deadline is itself observable
	// (NextInterest == due, the common case outside MMT idle phases) this
	// terminates after one or two NextInterest queries instead of one per
	// heap entry.
	if len(sc.heap) > 0 {
		stack := append(ln.hzScratch[:0], 0)
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			e := sc.heap[i]
			if !e.due.Before(h) {
				continue
			}
			if !sc.stale(e) {
				b := e.due
				if !s.dense {
					if cc := s.coalOf[e.idx]; cc != nil {
						if t := cc.NextInterest(); t.After(b) {
							b = t
						}
					}
				}
				if b.Before(h) {
					h = b
				}
			}
			if l := 2*i + 1; l < int32(len(sc.heap)) {
				stack = append(stack, l)
				if r := l + 1; r < int32(len(sc.heap)) {
					stack = append(stack, r)
				}
			}
		}
		ln.hzScratch = stack[:0]
	}
	// Rare: components parked in dueNow outside a fire sweep (late
	// Add/Replace); bound by their raw deadline.
	for _, idx := range sc.dueNow {
		if due, ok := s.comps[idx].Due(ln.now); ok && due.Before(h) {
			h = due
		}
	}
	ln.hCache = h
	ln.hValid = true
	return h
}

// inBound returns the lane's window bound W_k = min over peers j of
// G[j][k]: no effect from any other lane reaches this one strictly before
// it, so every local deadline before it may fire.
func (s *System) inBound(ln *lane) simtime.Time {
	n := len(s.lanes)
	k := int(ln.shard)
	w := simtime.Never
	for j := 0; j < n; j++ {
		if j == k {
			continue
		}
		if g := simtime.Time(s.gmat[j*n+k].Load()); g.Before(w) {
			w = g
		}
	}
	return w
}

// publish refreshes the lane's guarantee row from its current horizon.
// The horizon is capped by the lane's own incoming guarantees (mail it has
// not received yet may arm earlier deadlines — the CMB fixpoint term) and
// each entry by the earliest undelivered mail buffered for that
// destination. Entries only ever grow; the lane is its row's only writer,
// so load-max-store needs no compare-and-swap.
func (s *System) publish(ln *lane) {
	n := len(s.lanes)
	k := int(ln.shard)
	h := s.laneHorizon(ln)
	for j := 0; j < n; j++ {
		if j == k {
			continue
		}
		if g := simtime.Time(s.gmat[j*n+k].Load()); g.Before(h) {
			h = g
		}
	}
	for d := 0; d < n; d++ {
		if d == k {
			continue
		}
		p := h.Add(s.laMat[k][d])
		if m := ln.mailMin[d]; m.Before(p) {
			p = m
		}
		slot := &s.gmat[k*n+d]
		if p.After(simtime.Time(slot.Load())) {
			slot.Store(int64(p))
		}
	}
}

// relaxGuarantees recomputes the guarantee matrix single-threaded from the
// lanes' current schedules, iterating the fixpoint
//
//	H_k = min(laneHorizon_k, min_j (H_j + la[j][k]))
//
// to convergence (Gauss–Seidel; strictly positive lookaheads make it
// converge in at most n sweeps). It runs between passes, when no mail is
// buffered, and is what re-raises rows that ended the previous pass capped
// by since-delivered mail — without it the matrix could reach a stale
// fixpoint where no lane's window clears its next deadline.
func (s *System) relaxGuarantees() {
	n := len(s.lanes)
	h := s.hScratch[:0]
	for _, ln := range s.lanes {
		h = append(h, s.laneHorizon(ln))
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for k := 0; k < n; k++ {
			v := h[k]
			for j := 0; j < n; j++ {
				if j == k {
					continue
				}
				if g := h[j].Add(s.laMat[j][k]); g.Before(v) {
					v = g
				}
			}
			if v != h[k] {
				h[k] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			if j == k {
				continue
			}
			p := h[j].Add(s.laMat[j][k])
			slot := &s.gmat[j*n+k]
			if p.After(simtime.Time(slot.Load())) {
				slot.Store(int64(p))
			}
		}
	}
	s.hScratch = h
}

// laneSweep advances one lane through its current window: coalesce up to
// min(w, until), then fire every deadline strictly before w and at or
// before until, exactly as the sequential Run loop does within a window.
// It reports whether anything fired and raises the lane's executed
// frontier to min(w, until+1): every local deadline strictly before the
// frontier has fired, so a later mail delivery arming a deadline behind it
// is a broken lookahead promise.
func (s *System) laneSweep(ln *lane, w, until simtime.Time) bool {
	bound := w
	if until.Before(bound) {
		bound = until
	}
	fired := false
	for *ln.err == nil {
		s.coalesce(ln, bound)
		next, ok := s.nextDue(ln)
		if !ok || next.After(until) || !next.Before(w) {
			break
		}
		if next.After(ln.now) {
			ln.now = next
		}
		s.fireDueIndexed(ln)
		fired = true
	}
	f := w
	if u := until.Add(1); u.Before(f) {
		f = u
	}
	if f.After(ln.frontier) {
		ln.frontier = f
	}
	return fired
}

// lanePass runs one lane until neither its own schedule nor its peers'
// published horizons let it continue. With a core per lane (passSpin) a
// blocked lane busy-chases its peers' guarantees, re-sweeping each time
// its window grows and parking in the active-lane counter so the pass ends
// when every lane is simultaneously out of work; otherwise it returns at
// the first bind and the coordinator reruns the lanes while any makes
// progress. Either way it reports whether it fired anything.
func (s *System) lanePass(ln *lane, until simtime.Time) bool {
	progressed := false
	working := true
	defer func() {
		if working {
			s.active.Add(-1)
		}
	}()
	spins := 0
	for *ln.err == nil {
		w := s.inBound(ln)
		if s.laneSweep(ln, w, until) {
			progressed = true
			spins = 0
		}
		s.publish(ln)
		if next, ok := s.nextDue(ln); (!ok || next.After(until)) && w.After(until) {
			// Nothing left at or before the run bound, and no peer can
			// mail anything below it either: done until the barrier.
			ln.idle = true
			ln.lastW = w
			return progressed
		}
		if !s.passSpin {
			ln.idle = !progressed
			ln.lastW = w
			return progressed
		}
		if working {
			working = false
			s.active.Add(-1)
		}
		for {
			if s.active.Load() == 0 || spins >= passSpinLimit {
				return progressed
			}
			spins++
			runtime.Gosched()
			if s.inBound(ln).After(w) {
				working = true
				s.active.Add(1)
				break
			}
		}
	}
	return progressed
}

// runPasses executes pass groups until no lane can advance without a
// barrier: relax the guarantee matrix from the current schedules, then
// rerun the lanes while any of them fires something. On a single worker
// this loop is the horizon chase — each rerun lets every lane see the
// horizons its predecessors published within the same group.
func (s *System) runPasses(until simtime.Time) {
	s.relaxGuarantees()
	for s.err == nil {
		// Spin-chasing peers' horizons only pays when every lane can hold a
		// physical core; on an oversubscribed box the yields just burn the
		// timeslice of the lane being waited on.
		s.passSpin = runtime.GOMAXPROCS(0) >= len(s.lanes) && runtime.NumCPU() >= len(s.lanes)
		s.active.Store(int32(len(s.lanes)))
		s.passProg.Store(false)
		s.runLanes(func(ln *lane) {
			if ln.idle && s.inBound(ln) == ln.lastW {
				s.active.Add(-1)
				return
			}
			if s.lanePass(ln, until) {
				s.passProg.Store(true)
			}
		})
		if !s.passProg.Load() {
			return
		}
	}
}

// eventBefore orders buffered events by the canonical merge key.
func eventBefore(a, b *laneEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.round != b.round {
		return a.round < b.round
	}
	return a.firing < b.firing
}

// mergeEvents drains the settled prefix — events strictly before bound —
// of the lanes' buffers into the emit chain (trace, watchers, sinks) in
// canonical order, assigning global sequence numbers. Each lane's buffer
// is already sorted by the merge key (lanes process instants, rounds, and
// firings in ascending order), so a k-way head merge suffices; keys never
// tie across lanes because a component fires in exactly one. The unsettled
// tail stays buffered for the next barrier.
func (s *System) mergeEvents(bound simtime.Time) {
	counted := 0
	for _, ln := range s.lanes {
		counted += ln.evCount
		ln.evCount = 0
	}
	s.seq += counted
	for {
		var best *lane
		for _, ln := range s.lanes {
			if ln.evHead >= len(ln.events) {
				continue
			}
			e := &ln.events[ln.evHead]
			if !e.at.Before(bound) {
				continue
			}
			if best == nil || eventBefore(e, &best.events[best.evHead]) {
				best = ln
			}
		}
		if best == nil {
			break
		}
		le := best.events[best.evHead]
		best.evHead++
		a := le.a
		if s.hidden != nil && a.Kind != ta.KindInternal && s.hidden(a) {
			a.Kind = ta.KindInternal
		}
		e := ta.Event{Action: a, At: le.at, Src: le.src, Seq: s.seq}
		s.seq++
		s.emit(e)
	}
	for _, ln := range s.lanes {
		if ln.evHead == 0 {
			continue
		}
		// Compact the surviving tail to the front so the buffer's capacity
		// is reused and consumed payload references are dropped.
		rem := copy(ln.events, ln.events[ln.evHead:])
		clear(ln.events[rem:])
		ln.events = ln.events[:rem]
		ln.evHead = 0
	}
}

// deliverMail performs the buffered cross-shard deliveries at the barrier.
// Per-edge order is the sending lane's dispatch order (a channel has a
// single sender, so this is its sequential delivery order); order across
// distinct destinations is immaterial because barrier deliveries must be
// reaction-free. A delivery leaving its destination due strictly inside
// the destination lane's executed frontier means the lookahead promise was
// broken — the lane already swept past that instant — so it fails the run.
// A due at or past the frontier is fine: the deadline was legitimately
// left for a later pass (including deadlines past a mid-window run bound,
// which cap the frontier at until+1).
func (s *System) deliverMail() {
	for _, ln := range s.lanes {
		for i := range ln.mail {
			if s.err != nil {
				break
			}
			m := &ln.mail[i]
			sub := &s.subs[m.sub]
			outs := sub.dst.Deliver(m.at, m.a)
			if len(outs) > 0 {
				s.fail(fmt.Errorf("exec: cross-shard subscriber %s reacted at the same instant to %s from %s at %v; sharded execution requires delayed cross-shard effects",
					sub.dst.Name(), m.a.Name, srcLabel(m.src), m.at))
				break
			}
			dl := s.lanes[s.compShard[sub.dstIdx]]
			s.poll(dl, int(sub.dstIdx))
			// poll just refreshed the scheduler's cached deadline; reading it
			// back avoids a second (potentially expensive) Due query.
			sc := &dl.sched
			if due := sc.curDue[sub.dstIdx]; sc.curOk[sub.dstIdx] && due.Before(dl.frontier) {
				s.fail(fmt.Errorf("exec: lookahead violation: %s from %s at %v made %s due at %v, inside the executed window ending %v",
					m.a.Name, srcLabel(m.src), m.at, sub.dst.Name(), due, dl.frontier))
				break
			}
		}
		clear(ln.mail)
		ln.mail = ln.mail[:0]
		for k := range ln.mailMin {
			ln.mailMin[k] = simtime.Never
		}
	}
}

// collectLaneErrs surfaces the first lane error, in shard order, as the
// system error.
func (s *System) collectLaneErrs() {
	for _, ln := range s.lanes {
		if ln.errSlot != nil {
			s.fail(ln.errSlot)
			ln.errSlot = nil
		}
	}
}

// adaptiveBarrier completes a pass group: deliver the cross-shard mail
// (against each destination lane's executed frontier), surface lane
// errors, merge the settled event prefix, and advance the sinks'
// low-watermark. The settle bound is the globally earliest pending
// deadline after delivery: every future event — a local fire or a
// consequence of future mail (whose dues the guarantee matrix bounds below
// by exactly this computation) — happens at or after it, and it is
// monotone across barriers because fires and the deadlines they arm never
// precede the minimum that admitted them. The sink watermark is the settle
// bound capped at the run bound, matching the sequential executor's
// end-of-run flush.
func (s *System) adaptiveBarrier(until simtime.Time) {
	s.deliverMail()
	s.collectLaneErrs()
	bound := simtime.Never
	if t, ok := s.minLaneDue(); ok {
		bound = t
	}
	s.mergeEvents(bound)
	if s.err == nil {
		if until.Before(bound) {
			bound = until
		}
		s.flushSinks(bound)
	}
}

// minLaneDue returns the earliest pending deadline over all lanes.
func (s *System) minLaneDue() (simtime.Time, bool) {
	next, found := simtime.Never, false
	for _, ln := range s.lanes {
		if due, ok := s.nextDue(ln); ok && (!found || due.Before(next)) {
			next, found = due, true
		}
	}
	return next, found
}

// fireInstant processes the current instant on every lane: barrier-time
// dispatch (Init, Inject) may have armed deadlines at the global now, and
// their same-instant cascades are shard-local like any other. Lanes first
// take the time-passage step to the global clock.
func (s *System) fireInstant() {
	now := s.root.now
	s.runLanes(func(ln *lane) {
		if now.After(ln.now) {
			ln.now = now
		}
		s.fireDueIndexed(ln)
		if f := now.Add(1); f.After(ln.frontier) {
			ln.frontier = f
		}
	})
	s.adaptiveBarrier(now)
}

// runSharded is Run on the sharded path: adaptive pass groups until no
// deadline remains at or before until.
func (s *System) runSharded(until simtime.Time) error {
	// The idle latches were judged against the previous call's run bound;
	// a larger bound can turn "done until the barrier" back into work.
	for _, ln := range s.lanes {
		ln.idle = false
	}
	for s.err == nil {
		t, ok := s.minLaneDue()
		if !ok || t.After(until) {
			break
		}
		s.runPasses(until)
		s.adaptiveBarrier(until)
	}
	if s.err == nil {
		if until.After(s.root.now) {
			s.root.now = until
		}
		for _, ln := range s.lanes {
			if s.root.now.After(ln.now) {
				ln.now = s.root.now
			}
		}
		s.flushSinks(s.root.now)
	}
	return s.err
}

// runQuietSharded is RunQuiet on the sharded path. Quiescence is judged on
// raw deadlines: coalescable components re-arm when consumed, so a lane
// with any pending deadline reports it here just as the sequential scan
// would after its coalescing pass.
func (s *System) runQuietSharded(limit simtime.Time) (bool, error) {
	for _, ln := range s.lanes {
		ln.idle = false
	}
	for s.err == nil {
		t, ok := s.minLaneDue()
		if !ok {
			return true, nil
		}
		if t.After(limit) {
			return false, nil
		}
		s.runPasses(limit)
		s.adaptiveBarrier(limit)
	}
	return false, s.err
}

// anyObservableScheduled reports whether any component with a pending
// deadline could ever perform an observable action — the sharded
// counterpart of the sequential coalescer's Never-horizon test, evaluated
// up front because the window anchor would otherwise creep forever through
// a system with nothing observable left.
func (s *System) anyObservableScheduled() bool {
	for i, c := range s.comps {
		if _, ok := c.Due(s.lanes[s.compShard[i]].now); !ok {
			continue
		}
		cc, isC := c.(ta.Coalescable)
		if !isC || cc.NextInterest() != simtime.Never {
			return true
		}
	}
	return false
}

// stepSharded is Step on the sharded path: advance to the next (observable,
// when coalescing) deadline and process exactly that instant, system-wide.
// Step stays deliberately conservative — windows anchored at the minimum
// lookahead, one instant per call — because its contract is "exactly the
// next instant", not throughput.
func (s *System) stepSharded() bool {
	coalescing := !s.dense && len(s.coal) > 0 && s.anyObservableScheduled()
	for s.err == nil {
		t, ok := s.minLaneDue()
		if !ok {
			return false
		}
		if coalescing {
			w := t.Add(s.minLA)
			s.runLanes(func(ln *lane) { s.coalesce(ln, w) })
			t, ok = s.minLaneDue()
			if !ok {
				return false
			}
			if !t.Before(w) {
				// Every deadline inside the window was unobservable and the
				// schedules jumped past it; re-anchor and sweep again.
				continue
			}
		}
		instant := t
		s.runLanes(func(ln *lane) {
			next, ok := s.nextDue(ln)
			if !ok || next != instant {
				return
			}
			if instant.After(ln.now) {
				ln.now = instant
			}
			s.fireDueIndexed(ln)
			if f := instant.Add(1); f.After(ln.frontier) {
				ln.frontier = f
			}
		})
		s.adaptiveBarrier(instant)
		if s.err == nil && instant.After(s.root.now) {
			s.root.now = instant
		}
		return s.err == nil
	}
	return false
}
