package exec

import (
	"fmt"
	"strings"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// relay re-emits every delivered action under a new name at the same
// instant, exercising same-instant dispatch chains.
type relay struct {
	name string
	out  string
	got  int
}

func (r *relay) Name() string      { return r.name }
func (r *relay) Init() []ta.Action { return nil }
func (r *relay) Deliver(_ simtime.Time, a ta.Action) []ta.Action {
	r.got++
	return []ta.Action{{Name: r.out, Node: a.Node, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: a.Payload}}
}
func (r *relay) Due(simtime.Time) (simtime.Time, bool) { return 0, false }
func (r *relay) Fire(simtime.Time) []ta.Action         { return nil }

// backoff schedules a timer a growing distance after each delivery; its
// deadline therefore changes under the scheduler's feet on every Deliver,
// exercising entry invalidation and re-push.
type backoff struct {
	name string
	next simtime.Time
	gap  simtime.Duration
	n    int
}

func (b *backoff) Name() string      { return b.name }
func (b *backoff) Init() []ta.Action { return nil }
func (b *backoff) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	b.gap += 37 * simtime.Microsecond
	b.next = now.Add(b.gap)
	return nil
}
func (b *backoff) Due(simtime.Time) (simtime.Time, bool) {
	if b.next == simtime.Zero {
		return 0, false
	}
	return b.next, true
}
func (b *backoff) Fire(now simtime.Time) []ta.Action {
	if now.Before(b.next) {
		return nil
	}
	b.next = simtime.Zero
	b.n++
	return []ta.Action{{Name: "TOCK", Node: ta.NoNode, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: b.n}}
}

// sink counts deliveries and emits nothing.
type sink struct {
	name string
	got  int
}

func (k *sink) Name() string                                { return k.name }
func (k *sink) Init() []ta.Action                           { return nil }
func (k *sink) Deliver(simtime.Time, ta.Action) []ta.Action { k.got++; return nil }
func (k *sink) Due(simtime.Time) (simtime.Time, bool)       { return 0, false }
func (k *sink) Fire(simtime.Time) []ta.Action               { return nil }

// buildDiff assembles a system with coinciding deadlines, same-instant
// chains, deadline churn, and both routing paths (header subscriptions and
// a predicate that inspects the payload, which stays on the slow path).
func buildDiff(linear bool) (*System, *sink) {
	s := New()
	s.linear = linear
	for i := 0; i < 8; i++ {
		p := &pinger{
			name:   fmt.Sprintf("p%d", i),
			period: simtime.Duration(100+25*(i%4)) * simtime.Microsecond,
			left:   40 + 3*i,
		}
		s.Add(p)
	}
	for i := 0; i < 8; i++ {
		r := &relay{name: fmt.Sprintf("r%d", i), out: "HOP"}
		s.Add(r)
		node := ta.NodeID(i % 4)
		s.ConnectHeader(func(a ta.Action) bool { return a.Name == "PING" && a.Node == node }, r)
	}
	b := &backoff{name: "backoff"}
	s.Add(b)
	s.ConnectName("HOP", b)
	all := &sink{name: "all"}
	s.Add(all)
	// Payload predicate: not a pure header match, must take the slow path.
	s.Connect(func(a ta.Action) bool {
		n, ok := a.Payload.(int)
		return ok && n%2 == 0
	}, all)
	s.Hide(named("HOP"))
	return s, all
}

// render flattens a trace into one comparable string.
func render(tr ta.Trace) string {
	var sb strings.Builder
	for _, e := range tr {
		fmt.Fprintf(&sb, "%s|%d|%d|%s\n", e.Action.Label(), e.At, e.Seq, e.Src)
	}
	return sb.String()
}

// TestIndexedMatchesLinear runs the identical system through the indexed
// scheduler/routing fast path and through the original linear sweep (kept
// as a differential oracle behind the linear flag) and requires
// byte-identical traces, including mid-run Replace and late Add.
func TestIndexedMatchesLinear(t *testing.T) {
	mid := simtime.Time(3 * simtime.Millisecond)
	end := simtime.Time(40 * simtime.Millisecond)
	runOne := func(linear bool) (string, int) {
		s, all := buildDiff(linear)
		if err := s.Run(mid); err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		// Mid-run structural churn: swap a relay and add a late pinger;
		// both must land in the scheduler/routing index identically.
		s.Replace("r3", &relay{name: "r3", out: "HOP"})
		s.Add(&pinger{name: "late", period: 150 * simtime.Microsecond, left: 30})
		if err := s.Run(end); err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		return render(s.Trace()), all.got
	}
	fastTr, fastGot := runOne(false)
	slowTr, slowGot := runOne(true)
	if fastGot == 0 {
		t.Fatal("slow-path sink never fired; predicate routing untested")
	}
	if fastGot != slowGot {
		t.Fatalf("sink deliveries differ: indexed %d, linear %d", fastGot, slowGot)
	}
	if fastTr != slowTr {
		t.Fatalf("traces differ:\nindexed:\n%s\nlinear:\n%s", head(fastTr), head(slowTr))
	}
}

// head trims a rendered trace for failure output.
func head(s string) string {
	lines := strings.SplitN(s, "\n", 41)
	if len(lines) > 40 {
		return strings.Join(lines[:40], "\n") + "\n..."
	}
	return s
}

// BenchmarkSchedulerStep measures the deadline scan: many components, few
// due at any instant — the regime where the linear NextDue sweep is
// quadratic in aggregate and the heap is logarithmic.
func BenchmarkSchedulerStep(b *testing.B) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"indexed", false}, {"linear", true}} {
		for _, n := range []int{16, 128, 1024} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				b.ReportAllocs()
				steps := 0
				for i := 0; i < b.N; i++ {
					s := New()
					s.linear = mode.linear
					s.KeepTrace = false
					for j := 0; j < n; j++ {
						s.Add(&pinger{
							name:   fmt.Sprintf("p%d", j),
							period: simtime.Duration(1000+j) * simtime.Microsecond,
							left:   8,
						})
					}
					for s.Step() {
						steps++
					}
					if err := s.Err(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
			})
		}
	}
}

// BenchmarkDispatchRouting measures action fan-out: one producer, many
// subscribers of which few match — the regime where evaluating every
// predicate per action loses to the memoized header index.
func BenchmarkDispatchRouting(b *testing.B) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"indexed", false}, {"linear", true}} {
		for _, n := range []int{16, 128, 1024} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				s := New()
				s.linear = mode.linear
				s.KeepTrace = false
				sinks := make([]*sink, n)
				for j := 0; j < n; j++ {
					sinks[j] = &sink{name: fmt.Sprintf("s%d", j)}
					s.Add(sinks[j])
					node := ta.NodeID(j)
					s.ConnectHeader(func(a ta.Action) bool { return a.Name == "MSG" && a.Node == node }, sinks[j])
				}
				s.Inject(ta.Action{Name: "MSG", Node: 0, Peer: ta.NoNode, Kind: ta.KindInput})
				if err := s.Err(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Inject(ta.Action{Name: "MSG", Node: ta.NodeID(i % n), Peer: ta.NoNode, Kind: ta.KindInput})
				}
				if err := s.Err(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
