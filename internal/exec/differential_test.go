package exec

import (
	"fmt"
	"strings"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// relay re-emits every delivered action under a new name at the same
// instant, exercising same-instant dispatch chains.
type relay struct {
	name string
	out  string
	got  int
}

func (r *relay) Name() string      { return r.name }
func (r *relay) Init() []ta.Action { return nil }
func (r *relay) Deliver(_ simtime.Time, a ta.Action) []ta.Action {
	r.got++
	return []ta.Action{{Name: r.out, Node: a.Node, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: a.Payload}}
}
func (r *relay) Due(simtime.Time) (simtime.Time, bool) { return 0, false }
func (r *relay) Fire(simtime.Time) []ta.Action         { return nil }

// backoff schedules a timer a growing distance after each delivery; its
// deadline therefore changes under the scheduler's feet on every Deliver,
// exercising entry invalidation and re-push.
type backoff struct {
	name string
	next simtime.Time
	gap  simtime.Duration
	n    int
}

func (b *backoff) Name() string      { return b.name }
func (b *backoff) Init() []ta.Action { return nil }
func (b *backoff) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	b.gap += 37 * simtime.Microsecond
	b.next = now.Add(b.gap)
	return nil
}
func (b *backoff) Due(simtime.Time) (simtime.Time, bool) {
	if b.next == simtime.Zero {
		return 0, false
	}
	return b.next, true
}
func (b *backoff) Fire(now simtime.Time) []ta.Action {
	if now.Before(b.next) {
		return nil
	}
	b.next = simtime.Zero
	b.n++
	return []ta.Action{{Name: "TOCK", Node: ta.NoNode, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: b.n}}
}

// sink counts deliveries and emits nothing.
type sink struct {
	name string
	got  int
}

func (k *sink) Name() string                                { return k.name }
func (k *sink) Init() []ta.Action                           { return nil }
func (k *sink) Deliver(simtime.Time, ta.Action) []ta.Action { k.got++; return nil }
func (k *sink) Due(simtime.Time) (simtime.Time, bool)       { return 0, false }
func (k *sink) Fire(simtime.Time) []ta.Action               { return nil }

// buildDiff assembles a system with coinciding deadlines, same-instant
// chains, deadline churn, and both routing paths (header subscriptions and
// a predicate that inspects the payload, which stays on the slow path).
func buildDiff(linear bool) (*System, *sink) {
	s := New()
	s.linear = linear
	for i := 0; i < 8; i++ {
		p := &pinger{
			name:   fmt.Sprintf("p%d", i),
			period: simtime.Duration(100+25*(i%4)) * simtime.Microsecond,
			left:   40 + 3*i,
		}
		s.Add(p)
	}
	for i := 0; i < 8; i++ {
		r := &relay{name: fmt.Sprintf("r%d", i), out: "HOP"}
		s.Add(r)
		node := ta.NodeID(i % 4)
		s.ConnectHeader(func(a ta.Action) bool { return a.Name == "PING" && a.Node == node }, r)
	}
	b := &backoff{name: "backoff"}
	s.Add(b)
	s.ConnectName("HOP", b)
	all := &sink{name: "all"}
	s.Add(all)
	// Payload predicate: not a pure header match, must take the slow path.
	s.Connect(func(a ta.Action) bool {
		n, ok := a.Payload.(int)
		return ok && n%2 == 0
	}, all)
	s.Hide(named("HOP"))
	return s, all
}

// render flattens a trace into one comparable string.
func render(tr ta.Trace) string {
	var sb strings.Builder
	for _, e := range tr {
		fmt.Fprintf(&sb, "%s|%d|%d|%s\n", e.Action.Label(), e.At, e.Seq, e.Src)
	}
	return sb.String()
}

// TestIndexedMatchesLinear runs the identical system through the indexed
// scheduler/routing fast path and through the original linear sweep (kept
// as a differential oracle behind the linear flag) and requires
// byte-identical traces, including mid-run Replace and late Add.
func TestIndexedMatchesLinear(t *testing.T) {
	mid := simtime.Time(3 * simtime.Millisecond)
	end := simtime.Time(40 * simtime.Millisecond)
	runOne := func(linear bool) (string, int) {
		s, all := buildDiff(linear)
		if err := s.Run(mid); err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		// Mid-run structural churn: swap a relay and add a late pinger;
		// both must land in the scheduler/routing index identically.
		s.Replace("r3", &relay{name: "r3", out: "HOP"})
		s.Add(&pinger{name: "late", period: 150 * simtime.Microsecond, left: 30})
		if err := s.Run(end); err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		return render(s.Trace()), all.got
	}
	fastTr, fastGot := runOne(false)
	slowTr, slowGot := runOne(true)
	if fastGot == 0 {
		t.Fatal("slow-path sink never fired; predicate routing untested")
	}
	if fastGot != slowGot {
		t.Fatalf("sink deliveries differ: indexed %d, linear %d", fastGot, slowGot)
	}
	if fastTr != slowTr {
		t.Fatalf("traces differ:\nindexed:\n%s\nlinear:\n%s", head(fastTr), head(slowTr))
	}
}

// fticker is a synthetic tick source mirroring core.TickSource over a
// perfect (identity) clock: it emits FTICK(payload=now) every period and,
// when coalescable demand wiring is present, declares interest only in the
// tick crossing the demanded threshold.
type fticker struct {
	name    string
	node    ta.NodeID
	period  simtime.Duration
	next    simtime.Time
	demand  func() (simtime.Time, bool)
	skipped int
	buf     [1]ta.Action
}

func (f *fticker) Name() string { return f.name }
func (f *fticker) Init() []ta.Action {
	f.next = simtime.Zero.Add(f.period)
	f.buf[0] = ta.Action{Name: "FTICK", Node: f.node, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: simtime.Zero}
	return f.buf[:]
}
func (f *fticker) Deliver(simtime.Time, ta.Action) []ta.Action { return nil }
func (f *fticker) Due(simtime.Time) (simtime.Time, bool)       { return f.next, true }
func (f *fticker) Fire(now simtime.Time) []ta.Action {
	if now.Before(f.next) {
		return nil
	}
	f.next = now.Add(f.period)
	f.buf[0] = ta.Action{Name: "FTICK", Node: f.node, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: now}
	return f.buf[:]
}
func (f *fticker) NextInterest() simtime.Time {
	c, ok := f.demand()
	if !ok {
		return simtime.Never
	}
	if !c.After(f.next) {
		return f.next
	}
	k := (int64(c.Sub(f.next)) + int64(f.period) - 1) / int64(f.period)
	return f.next.Add(simtime.Duration(k) * f.period)
}
func (f *fticker) FastForward(to simtime.Time) {
	if !f.next.Before(to) {
		return
	}
	k := int64(to.Sub(f.next)) / int64(f.period)
	f.next = f.next.Add(simtime.Duration(k) * f.period)
	f.skipped += int(k)
}

// fwaiter mirrors the MMT node's tick-driven threshold pattern: it takes a
// step every gap, and a step with clock ≥ threshold emits WAKE and raises
// the threshold; all other steps are idle. A POKE input answers ACK with
// the current clock value, probing tick-skip freshness at injections.
type fwaiter struct {
	name             string
	node             ta.NodeID
	clock, threshold simtime.Time
	delta            simtime.Duration
	gap              simtime.Duration
	nextStep         simtime.Time
	rounds           int
	fired            int
	skipped          int
	buf              [1]ta.Action
}

func (w *fwaiter) Name() string { return w.name }
func (w *fwaiter) Init() []ta.Action {
	w.nextStep = simtime.Zero.Add(w.gap)
	return nil
}
func (w *fwaiter) Deliver(_ simtime.Time, a ta.Action) []ta.Action {
	switch a.Name {
	case "FTICK":
		if c := a.Payload.(simtime.Time); c.After(w.clock) {
			w.clock = c
		}
		return nil
	case "POKE":
		w.buf[0] = ta.Action{Name: "ACK", Node: w.node, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: w.clock}
		return w.buf[:]
	}
	return nil
}
func (w *fwaiter) Due(simtime.Time) (simtime.Time, bool) { return w.nextStep, true }
func (w *fwaiter) Fire(now simtime.Time) []ta.Action {
	if now.Before(w.nextStep) {
		return nil
	}
	w.nextStep = now.Add(w.gap)
	if w.rounds == 0 || w.threshold.After(w.clock) {
		return nil
	}
	w.rounds--
	w.threshold = w.threshold.Add(w.delta)
	w.fired++
	w.buf[0] = ta.Action{Name: "WAKE", Node: w.node, Peer: ta.NoNode, Kind: ta.KindOutput, Payload: w.fired}
	return w.buf[:]
}
func (w *fwaiter) demandFn() (simtime.Time, bool) {
	if w.rounds > 0 && w.threshold.After(w.clock) {
		return w.threshold, true
	}
	return 0, false
}
func (w *fwaiter) NextInterest() simtime.Time {
	if w.rounds > 0 && !w.threshold.After(w.clock) {
		return w.nextStep
	}
	return simtime.Never
}
func (w *fwaiter) FastForward(to simtime.Time) {
	if !w.nextStep.Before(to) {
		return
	}
	k := (int64(to.Sub(w.nextStep)) + int64(w.gap) - 1) / int64(w.gap)
	w.nextStep = w.nextStep.Add(simtime.Duration(k) * simtime.Duration(w.gap))
	w.skipped += int(k)
}

// buildCoal assembles tick-source/waiter pairs (dense tick storms with
// sparse observable WAKEs), a non-coalescable backoff component reacting
// to every WAKE (blocking the skip horizon mid-sweep), and hidden ticks.
func buildCoal(linear, dense bool) (*System, []*fticker, []*fwaiter, *backoff) {
	s := New()
	s.linear = linear
	s.dense = dense
	var ticks []*fticker
	var waits []*fwaiter
	for i := 0; i < 3; i++ {
		w := &fwaiter{
			name:      fmt.Sprintf("w%d", i),
			node:      ta.NodeID(i),
			threshold: simtime.Time((400 + 130*i) * int(simtime.Microsecond)),
			delta:     simtime.Duration(500+77*i) * simtime.Microsecond,
			gap:       simtime.Duration(3+2*i) * simtime.Microsecond,
			rounds:    12 + i,
		}
		f := &fticker{
			name:   fmt.Sprintf("t%d", i),
			node:   ta.NodeID(i),
			period: simtime.Duration(5+3*i) * simtime.Microsecond,
			demand: w.demandFn,
		}
		s.Add(w)
		s.Add(f)
		node := ta.NodeID(i)
		s.ConnectHeader(func(a ta.Action) bool {
			return (a.Name == "FTICK" || a.Name == "POKE") && a.Node == node
		}, w)
		ticks = append(ticks, f)
		waits = append(waits, w)
	}
	b := &backoff{name: "backoff"}
	s.Add(b)
	s.ConnectName("WAKE", b)
	s.Hide(named("FTICK"))
	return s, ticks, waits, b
}

// renderVisible flattens the observable trace without sequence numbers:
// coalesced runs elide hidden ticks and idle steps, which consume Seq in
// dense runs, so equivalence is label/kind/time/source on visible events.
func renderVisible(tr ta.Trace) string {
	var sb strings.Builder
	for _, e := range tr.Visible() {
		fmt.Fprintf(&sb, "%s|%d|%d|%s\n", e.Action.Label(), e.Action.Kind, e.At, e.Src)
	}
	return sb.String()
}

// TestCoalescedMatchesDense drives the synthetic tick/threshold system
// through the linear oracle, the indexed dense path, and the coalesced
// fast path: observable traces must agree event for event, a mid-run
// injection must observe identical tick-derived state (the sync-tick
// guarantee at a Run bound), and the coalesced run must actually skip.
func TestCoalescedMatchesDense(t *testing.T) {
	mid := simtime.Time(4 * simtime.Millisecond)
	end := simtime.Time(30 * simtime.Millisecond)
	type result struct {
		visible string
		wakes   int
		skips   int
	}
	runOne := func(linear, dense bool) result {
		s, ticks, waits, b := buildCoal(linear, dense)
		if err := s.Run(mid); err != nil {
			t.Fatalf("linear=%v dense=%v: %v", linear, dense, err)
		}
		// The injected POKE answers with the waiter's current tick-derived
		// clock: the coalesced path must have planted the same last tick
		// before the run bound as the dense schedule delivered.
		s.Inject(ta.Action{Name: "POKE", Node: 1, Peer: ta.NoNode, Kind: ta.KindInput})
		if err := s.Run(end); err != nil {
			t.Fatalf("linear=%v dense=%v: %v", linear, dense, err)
		}
		skips := 0
		for _, f := range ticks {
			skips += f.skipped
		}
		wakes := 0
		for _, w := range waits {
			skips += w.skipped
			wakes += w.fired
		}
		if b.n == 0 {
			t.Fatalf("linear=%v dense=%v: backoff never fired; blocking path untested", linear, dense)
		}
		return result{visible: renderVisible(s.Trace()), wakes: wakes, skips: skips}
	}
	coal := runOne(false, false)
	dense := runOne(false, true)
	lin := runOne(true, false)
	if coal.wakes == 0 {
		t.Fatal("no WAKE events; thresholds never crossed")
	}
	if dense.skips != 0 || lin.skips != 0 {
		t.Fatalf("oracle paths skipped events: dense=%d linear=%d", dense.skips, lin.skips)
	}
	if coal.skips == 0 {
		t.Fatal("coalesced path skipped nothing; fast path untested")
	}
	if dense.visible != lin.visible {
		t.Fatalf("dense and linear visible traces differ:\n%s\nvs\n%s", head(dense.visible), head(lin.visible))
	}
	if coal.visible != dense.visible {
		t.Fatalf("coalesced visible trace differs from dense:\ncoalesced:\n%s\ndense:\n%s", head(coal.visible), head(dense.visible))
	}
}

// head trims a rendered trace for failure output.
func head(s string) string {
	lines := strings.SplitN(s, "\n", 41)
	if len(lines) > 40 {
		return strings.Join(lines[:40], "\n") + "\n..."
	}
	return s
}

// BenchmarkSchedulerStep measures the deadline scan: many components, few
// due at any instant — the regime where the linear NextDue sweep is
// quadratic in aggregate and the heap is logarithmic.
func BenchmarkSchedulerStep(b *testing.B) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"indexed", false}, {"linear", true}} {
		for _, n := range []int{16, 128, 1024} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				b.ReportAllocs()
				steps := 0
				for i := 0; i < b.N; i++ {
					s := New()
					s.linear = mode.linear
					s.KeepTrace = false
					for j := 0; j < n; j++ {
						s.Add(&pinger{
							name:   fmt.Sprintf("p%d", j),
							period: simtime.Duration(1000+j) * simtime.Microsecond,
							left:   8,
						})
					}
					for s.Step() {
						steps++
					}
					if err := s.Err(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
			})
		}
	}
}

// BenchmarkDispatchRouting measures action fan-out: one producer, many
// subscribers of which few match — the regime where evaluating every
// predicate per action loses to the memoized header index.
func BenchmarkDispatchRouting(b *testing.B) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"indexed", false}, {"linear", true}} {
		for _, n := range []int{16, 128, 1024} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				s := New()
				s.linear = mode.linear
				s.KeepTrace = false
				sinks := make([]*sink, n)
				for j := 0; j < n; j++ {
					sinks[j] = &sink{name: fmt.Sprintf("s%d", j)}
					s.Add(sinks[j])
					node := ta.NodeID(j)
					s.ConnectHeader(func(a ta.Action) bool { return a.Name == "MSG" && a.Node == node }, sinks[j])
				}
				s.Inject(ta.Action{Name: "MSG", Node: 0, Peer: ta.NoNode, Kind: ta.KindInput})
				if err := s.Err(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Inject(ta.Action{Name: "MSG", Node: ta.NodeID(i % n), Peer: ta.NoNode, Kind: ta.KindInput})
				}
				if err := s.Err(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
