package exec_test

// Differential tests for sharded conservative-parallel execution: every
// test runs the same seeded register system through the sequential indexed
// executor (the oracle) and the sharded executor and requires identical
// traces — byte-identical full traces wherever coalescing introduces no
// divergence (the timed and clock models, and the MMT model on the dense
// path), and identical observable traces plus emission stamps where it
// does (the MMT model with coalescing, whose window-bounded sweeps may
// synthesize extra hidden sync TICKs). They live in package exec_test
// because core imports exec. Run with -race: the lane workers are the only
// concurrency in the executor and these tests are their coverage.

import (
	"fmt"
	"runtime"
	"testing"

	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/workload"
)

// buildSharded builds a register net for the model, forcing sequential
// execution when shards < 2, and asserts after the run that the sharded
// path actually engaged (or did not).
func buildShardedNet(t *testing.T, model string, cfg core.Config, p register.Params) *core.Net {
	t.Helper()
	f := register.Factory(register.NewS, p)
	switch model {
	case "timed":
		return core.BuildTimed(cfg, f)
	case "clock":
		return core.BuildClocked(cfg, f)
	case "mmt":
		return core.BuildMMT(cfg, f)
	}
	t.Fatalf("unknown model %q", model)
	return nil
}

func checkShardState(t *testing.T, net *core.Net, wantSharded bool) {
	t.Helper()
	if net.Sys.Sharded() != wantSharded {
		t.Fatalf("Sharded() = %v, want %v (fallback reason: %q)",
			net.Sys.Sharded(), wantSharded, net.Sys.ShardFallbackReason())
	}
}

// TestShardedFullTraceIdentical: models with no coalescing divergence must
// produce byte-identical full traces — labels, kinds, times, sequence
// numbers, and sources — under sharded execution. The timed and clock
// models qualify outright (their edges' deadlines are all observable, so
// the coalescer never consumes anything); the MMT model qualifies on the
// dense path.
func TestShardedFullTraceIdentical(t *testing.T) {
	for _, model := range []string{"timed", "clock", "mmt"} {
		for _, seed := range []int64{1, 2} {
			model, seed := model, seed
			t.Run(fmt.Sprintf("%s/seed%d", model, seed), func(t *testing.T) {
				t.Parallel()
				runOne := func(shards int) string {
					cfg, p := extConfig(seed, 200*extUS, core.LazySteps)
					cfg.Shards = shards
					net := buildShardedNet(t, model, cfg, p)
					if model == "mmt" {
						net.Sys.DisableCoalescing()
					}
					clients := workload.AttachScripted(net, extScripts(cfg.N, 6))
					if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					checkShardState(t, net, shards > 1)
					for _, c := range clients {
						if c.Err != nil {
							t.Fatalf("shards=%d: %v", shards, c.Err)
						}
						if c.Done != 6 {
							t.Fatalf("shards=%d: %s finished %d/6", shards, c.Name(), c.Done)
						}
					}
					return renderFull(net.Sys.Trace())
				}
				sharded, seq := runOne(3), runOne(-1)
				if sharded != seq {
					t.Errorf("full traces diverge under sharding:\nsharded:\n%s\nsequential:\n%s", trim(sharded), trim(seq))
				}
			})
		}
	}
}

// TestMMTShardedCoalescedObservableIdentical: the MMT model with
// coalescing enabled must keep identical observable traces and identical
// per-node emission stamps under sharding, while still actually skipping
// ticks and steps (the sharded path must not quietly fall back to dense
// sweeps inside its windows).
func TestMMTShardedCoalescedObservableIdentical(t *testing.T) {
	policies := []struct {
		name string
		mk   func() core.StepPolicy
	}{
		{"lazy", core.LazySteps},
		{"uniform", core.UniformSteps},
	}
	for _, seed := range []int64{1, 2} {
		for _, pol := range policies {
			seed, pol := seed, pol
			t.Run(fmt.Sprintf("seed%d/%s", seed, pol.name), func(t *testing.T) {
				t.Parallel()
				type result struct {
					observable, stamps string
					skippedTicks       int64
				}
				runOne := func(shards int) result {
					cfg, p := extConfig(seed, 200*extUS, pol.mk)
					cfg.Shards = shards
					net := core.BuildMMT(cfg, register.Factory(register.NewS, p))
					clients := workload.AttachScripted(net, extScripts(cfg.N, 6))
					if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					checkShardState(t, net, shards > 1)
					for _, c := range clients {
						if c.Err != nil {
							t.Fatalf("shards=%d: %v", shards, c.Err)
						}
						if c.Done != 6 {
							t.Fatalf("shards=%d: %s finished %d/6", shards, c.Name(), c.Done)
						}
					}
					var r result
					r.observable = renderObservable(net.Sys.Trace())
					r.stamps = renderStamps(net.MMT)
					for _, ts := range net.Ticks {
						r.skippedTicks += ts.SkippedTicks()
					}
					return r
				}
				sharded, seq := runOne(3), runOne(-1)
				if sharded.skippedTicks == 0 {
					t.Error("sharded coalesced run skipped no ticks; fast path untested")
				}
				if sharded.observable != seq.observable {
					t.Errorf("observable traces diverge:\nsharded:\n%s\nsequential:\n%s", trim(sharded.observable), trim(seq.observable))
				}
				if sharded.stamps != seq.stamps {
					t.Errorf("emission stamps diverge:\nsharded:\n%s\nsequential:\n%s", trim(sharded.stamps), trim(seq.stamps))
				}
			})
		}
	}
}

// TestShardedStepIdentical drives the clock model one Step at a time on
// both paths: each Step must process the same observable instant, and the
// step-by-step trace must match the sequential one byte for byte.
func TestShardedStepIdentical(t *testing.T) {
	t.Parallel()
	runOne := func(shards int) (string, int) {
		cfg, p := extConfig(3, 100*extUS, core.LazySteps)
		cfg.Shards = shards
		net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
		workload.AttachScripted(net, extScripts(cfg.N, 4))
		steps := 0
		for net.Sys.Step() && steps < 200_000 {
			steps++
		}
		if err := net.Sys.Err(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		checkShardState(t, net, shards > 1)
		return renderFull(net.Sys.Trace()), steps
	}
	shTrace, shSteps := runOne(3)
	seqTrace, seqSteps := runOne(-1)
	if shTrace != seqTrace {
		t.Errorf("step traces diverge:\nsharded:\n%s\nsequential:\n%s", trim(shTrace), trim(seqTrace))
	}
	if shSteps != seqSteps {
		t.Errorf("step counts diverge: sharded %d, sequential %d", shSteps, seqSteps)
	}
}

// TestShardedRunQuietIdentical: RunQuiet must reach the same quiescence
// verdict and the same trace on both paths. The timed model quiesces once
// the scripted operations drain (nothing ticks forever).
func TestShardedRunQuietIdentical(t *testing.T) {
	t.Parallel()
	runOne := func(shards int) (string, bool) {
		cfg, p := extConfig(4, 100*extUS, core.LazySteps)
		cfg.Shards = shards
		net := core.BuildTimed(cfg, register.Factory(register.NewS, p))
		workload.AttachScripted(net, extScripts(cfg.N, 4))
		quiet, err := net.Sys.RunQuiet(simtime.Time(500 * extMS))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		checkShardState(t, net, shards > 1)
		return renderFull(net.Sys.Trace()), quiet
	}
	shTrace, shQuiet := runOne(3)
	seqTrace, seqQuiet := runOne(-1)
	if shQuiet != seqQuiet {
		t.Errorf("quiescence verdicts diverge: sharded %v, sequential %v", shQuiet, seqQuiet)
	}
	if shTrace != seqTrace {
		t.Errorf("RunQuiet traces diverge:\nsharded:\n%s\nsequential:\n%s", trim(shTrace), trim(seqTrace))
	}
}

// TestShardedSlicedRunIdentical drives Run in short slices whose bounds
// land mid-window, the way the experiment harnesses advance simulated
// time. A round truncated by the run bound legitimately leaves deadlines
// in (until, window-end) unfired; the barrier's lookahead check must not
// mistake them for violations (regression: E2 under -shards failed on a
// cross-shard message due past the slice bound).
func TestShardedSlicedRunIdentical(t *testing.T) {
	t.Parallel()
	for _, model := range []string{"timed", "clock", "mmt"} {
		model := model
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			runOne := func(shards int) string {
				cfg, p := extConfig(7, 200*extUS, core.LazySteps)
				cfg.Shards = shards
				net := buildShardedNet(t, model, cfg, p)
				workload.AttachScripted(net, extScripts(cfg.N, 5))
				// Slice width deliberately not a divisor of the 1ms
				// lookahead so bounds fall inside windows.
				for net.Sys.Now() < simtime.Time(90*extMS) {
					if err := net.Sys.Run(net.Sys.Now().Add(700 * extUS)); err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
				}
				checkShardState(t, net, shards > 1)
				return renderObservable(net.Sys.Trace())
			}
			if got, want := runOne(3), runOne(-1); got != want {
				t.Errorf("sliced-run observable traces diverge:\nsharded:\n%s\nsequential:\n%s", trim(got), trim(want))
			}
		})
	}
}

// TestShardedZeroLookaheadFallback: a system whose cross-shard edges have
// no minimum delay cannot be sharded safely; the executor must fall back
// to sequential execution — with a reason — and still produce the oracle
// trace.
func TestShardedZeroLookaheadFallback(t *testing.T) {
	t.Parallel()
	runOne := func(shards int) string {
		cfg, p := extConfig(5, 100*extUS, core.LazySteps)
		cfg.Bounds = simtime.NewInterval(0, 3*extMS)
		cfg.Shards = shards
		net := core.BuildTimed(cfg, register.Factory(register.NewS, p))
		workload.AttachScripted(net, extScripts(cfg.N, 4))
		if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		// The request must NOT take effect: zero lookahead means no safe
		// window exists.
		checkShardState(t, net, false)
		if shards > 1 && net.Sys.ShardFallbackReason() == "" {
			t.Error("fallback engaged without a reason")
		}
		return renderFull(net.Sys.Trace())
	}
	if got, want := runOne(3), runOne(-1); got != want {
		t.Errorf("fallback trace diverges from sequential:\nfallback:\n%s\nsequential:\n%s", trim(got), trim(want))
	}
}

// TestShardedParallelWorkers forces GOMAXPROCS above the shard count so
// runLanes takes the goroutine path even on a single-core machine, then
// re-checks observable equivalence. Combined with -race this is the data
// race coverage for the lane workers. Not parallel: it adjusts a
// process-global runtime setting.
func TestShardedParallelWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	runOne := func(shards int) string {
		cfg, p := extConfig(6, 200*extUS, core.LazySteps)
		cfg.Shards = shards
		net := core.BuildMMT(cfg, register.Factory(register.NewS, p))
		clients := workload.AttachScripted(net, extScripts(cfg.N, 6))
		if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		checkShardState(t, net, shards > 1)
		for _, c := range clients {
			if c.Err != nil {
				t.Fatalf("shards=%d: %v", shards, c.Err)
			}
		}
		return renderObservable(net.Sys.Trace())
	}
	if got, want := runOne(3), runOne(-1); got != want {
		t.Errorf("observable traces diverge with parallel lane workers:\nsharded:\n%s\nsequential:\n%s", trim(got), trim(want))
	}
}
