package exec_test

// Coverage for the lookahead-violation error path under adaptive horizons:
// a component that lies through NextInterest — advertising that it will
// never act while actually firing an observable action — inflates its
// lane's published horizon, lets the peer lane sweep past the instant the
// lie hid, and must trip the `exec: lookahead violation` diagnostic at the
// barrier, naming the offending action and its source, with the committed
// trace still a clean prefix of the sequential oracle's rather than a
// reordered or partially merged one.

import (
	"strings"
	"testing"

	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

const (
	liarPokeAt  = simtime.Time(1 * extMS)
	victimReact = 100 * extUS
)

// liarTA fires an observable POKE at liarPokeAt. With lie set, its
// NextInterest claims it will never act — breaking the ta.Coalescable
// contract ("must never be later than the true earliest observable
// action") in exactly the way a buggy component would. FastForward is a
// no-op so the deadline itself stays armed and the fire still happens.
type liarTA struct {
	lie   bool
	fired bool
}

func (l *liarTA) Name() string                                { return "liar" }
func (l *liarTA) Init() []ta.Action                           { return nil }
func (l *liarTA) Deliver(simtime.Time, ta.Action) []ta.Action { return nil }

func (l *liarTA) Due(simtime.Time) (simtime.Time, bool) {
	if l.fired {
		return 0, false
	}
	return liarPokeAt, true
}

func (l *liarTA) Fire(now simtime.Time) []ta.Action {
	if l.fired || now.Before(liarPokeAt) {
		return nil
	}
	l.fired = true
	return []ta.Action{{Name: "POKE", Node: 0, Peer: ta.NoNode, Kind: ta.KindOutput}}
}

func (l *liarTA) NextInterest() simtime.Time {
	if l.lie {
		return simtime.Never
	}
	if l.fired {
		return simtime.Never
	}
	return liarPokeAt
}

func (l *liarTA) FastForward(simtime.Time) {}

// victimTA arms a deadline victimReact after each delivery (reaction-free
// at the instant itself, as cross-shard subscribers must be) and fires an
// observable WOKE when it expires.
type victimTA struct {
	due   simtime.Time
	armed bool
}

func (v *victimTA) Name() string      { return "victim" }
func (v *victimTA) Init() []ta.Action { return nil }

func (v *victimTA) Deliver(now simtime.Time, _ ta.Action) []ta.Action {
	v.due, v.armed = now.Add(victimReact), true
	return nil
}

func (v *victimTA) Due(simtime.Time) (simtime.Time, bool) { return v.due, v.armed }

func (v *victimTA) Fire(now simtime.Time) []ta.Action {
	if !v.armed || now.Before(v.due) {
		return nil
	}
	v.armed = false
	return []ta.Action{{Name: "WOKE", Node: 1, Peer: ta.NoNode, Kind: ta.KindOutput}}
}

// buildLiarSystem wires liar -> victim across two shards. The plan is
// honest either way: Lookahead[0][1] = 50µs lower-bounds the actual
// dispatch-to-due delay (victimReact = 100µs), so with a truthful
// NextInterest the partition is safe and traces match the oracle; only
// the component's own advertisement lies.
func buildLiarSystem(lie bool, shards int) *exec.System {
	s := exec.New()
	l := &liarTA{lie: lie}
	v := &victimTA{}
	s.Add(l)
	s.Add(v)
	s.Connect(func(a ta.Action) bool { return a.Name == "POKE" }, v)
	if shards > 1 {
		never := simtime.Duration(simtime.Never)
		s.SetShardsPlanned(2, func(name string) int {
			if name == "liar" {
				return 0
			}
			return 1
		}, exec.ShardPlan{Lookahead: [][]simtime.Duration{
			{0, 50 * extUS},
			{never, 0},
		}})
	}
	return s
}

func TestShardedLyingNextInterestTripsViolation(t *testing.T) {
	t.Parallel()
	until := simtime.Time(5 * extMS)

	// Control: with a truthful NextInterest the same plan shards cleanly
	// and reproduces the sequential trace. This pins the blame for the
	// failing variant on the lie, not the plan.
	seqTrace := func() string {
		s := buildLiarSystem(false, -1)
		if err := s.Run(until); err != nil {
			t.Fatalf("sequential: %v", err)
		}
		return renderFull(s.Trace())
	}()
	honest := buildLiarSystem(false, 2)
	if err := honest.Run(until); err != nil {
		t.Fatalf("honest sharded run: %v", err)
	}
	if !honest.Sharded() {
		t.Fatalf("honest plan fell back: %q", honest.ShardFallbackReason())
	}
	if got := renderFull(honest.Trace()); got != seqTrace {
		t.Errorf("honest sharded trace diverges:\nsharded:\n%s\nsequential:\n%s", trim(got), trim(seqTrace))
	}

	liar := buildLiarSystem(true, 2)
	err := liar.Run(until)
	if err == nil {
		t.Fatal("lying NextInterest: Run succeeded, want exec: lookahead violation")
	}
	msg := err.Error()
	if !strings.Contains(msg, "exec: lookahead violation") {
		t.Fatalf("error %q does not carry the lookahead-violation diagnostic", msg)
	}
	// The diagnostic must name the offending action, its source component,
	// and the component whose deadline landed inside the executed window.
	for _, want := range []string{"POKE", "liar", "victim"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q does not name %q", msg, want)
		}
	}
	// The committed trace must not be corrupted: whatever settled before
	// the failure is a prefix of the sequential oracle's trace.
	if got := renderFull(liar.Trace()); !strings.HasPrefix(seqTrace, got) {
		t.Errorf("post-violation trace is not a prefix of the sequential trace:\ngot:\n%s\nsequential:\n%s", trim(got), trim(seqTrace))
	}
}
