package exec_test

// External differential tests for the coalescing fast path: the synthetic
// in-package matrix (differential_test.go) exercises the executor
// mechanics, while these drive the real clock- and MMT-model register
// systems from internal/core through dense and coalesced execution. They
// live in package exec_test because core imports exec.

import (
	"fmt"
	"strings"
	"testing"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

const (
	extUS = simtime.Microsecond
	extMS = simtime.Millisecond
)

// extConfig is the shared register-system shape: small enough that the
// dense oracle stays cheap, tick-dense enough (period = ℓ) that the
// coalesced path has real work to skip.
func extConfig(seed int64, ell simtime.Duration, step func() core.StepPolicy) (core.Config, register.Params) {
	bounds := simtime.NewInterval(1*extMS, 3*extMS)
	eps := 200 * extUS
	cfg := core.Config{
		N:        3,
		Bounds:   bounds,
		Seed:     seed,
		Clocks:   clock.DriftFactory(eps, seed*7+11),
		NewDelay: channel.UniformDelay,
		Ell:      ell,
		NewStep:  step,
	}
	p := register.Params{
		C:       500 * extUS,
		Delta:   10 * extUS,
		D2:      bounds.Hi + 2*eps + 24*ell,
		Epsilon: eps,
	}
	return cfg, p
}

func extScripts(n, ops int) [][]workload.ScriptOp {
	scripts := make([][]workload.ScriptOp, n)
	for i := range scripts {
		scripts[i] = workload.MakeScript(ops, simtime.Time(i)*simtime.Time(extMS), 10*extMS, 0.4, 550+int64(i))
	}
	return scripts
}

// renderFull includes sequence numbers: used where dense and coalesced
// executions must be byte-identical event for event.
func renderFull(tr ta.Trace) string {
	var sb strings.Builder
	for _, e := range tr {
		fmt.Fprintf(&sb, "%s|%d|%d|%d|%s\n", e.Action.Label(), e.Action.Kind, e.At, e.Seq, e.Src)
	}
	return sb.String()
}

// renderObservable drops hidden events and sequence numbers: skipped ticks
// and idle steps consume Seq on the dense path, so coalesced equivalence
// is label/kind/time/source on the visible trace.
func renderObservable(tr ta.Trace) string {
	var sb strings.Builder
	for _, e := range tr.Visible() {
		fmt.Fprintf(&sb, "%s|%d|%d|%s\n", e.Action.Label(), e.Action.Kind, e.At, e.Src)
	}
	return sb.String()
}

func renderStamps(nodes []*core.MMTNode) string {
	var sb strings.Builder
	for _, n := range nodes {
		for _, st := range n.Stamps() {
			fmt.Fprintf(&sb, "%s|%s|%d|%d|%d\n", n.Name(), st.Action.Label(), st.SimClock, st.Real, st.Queued)
		}
	}
	return sb.String()
}

func trim(s string) string {
	lines := strings.SplitN(s, "\n", 31)
	if len(lines) > 30 {
		return strings.Join(lines[:30], "\n") + "\n..."
	}
	return s
}

// TestClockModelCoalescedIdentical runs the clock-model register system
// dense and coalesced: every clock-node deadline is observable composite
// work (NextInterest == Due), so the full traces — sequence numbers
// included — must be byte-identical. This is the guard that coalescing
// cannot perturb the golden clock-model traces.
func TestClockModelCoalescedIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runOne := func(dense bool) string {
				cfg, p := extConfig(seed, 100*extUS, core.LazySteps)
				net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
				if dense {
					net.Sys.DisableCoalescing()
				}
				clients := workload.AttachScripted(net, extScripts(cfg.N, 6))
				if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
					t.Fatalf("dense=%v: %v", dense, err)
				}
				for _, c := range clients {
					if c.Err != nil {
						t.Fatalf("dense=%v: %v", dense, c.Err)
					}
					if c.Done != 6 {
						t.Fatalf("dense=%v: %s finished %d/6", dense, c.Name(), c.Done)
					}
				}
				return renderFull(net.Sys.Trace())
			}
			coal, dense := runOne(false), runOne(true)
			if coal != dense {
				t.Errorf("clock-model traces diverge under coalescing:\ncoalesced:\n%s\ndense:\n%s", trim(coal), trim(dense))
			}
		})
	}
}

// TestMMTModelCoalescedObservableIdentical runs the MMT register system
// dense and coalesced across seeds and step policies (including the
// randomized one, whose fast-forward must replay its seeded draws) and
// requires identical observable traces and identical per-node emission
// stamps — while the coalesced run must actually have skipped ticks and
// steps.
func TestMMTModelCoalescedObservableIdentical(t *testing.T) {
	policies := []struct {
		name string
		mk   func() core.StepPolicy
	}{
		{"lazy", core.LazySteps},
		{"eager", core.EagerSteps},
		{"uniform", core.UniformSteps},
	}
	for _, seed := range []int64{1, 2} {
		for _, pol := range policies {
			seed, pol := seed, pol
			t.Run(fmt.Sprintf("seed%d/%s", seed, pol.name), func(t *testing.T) {
				t.Parallel()
				type result struct {
					observable, stamps string
					skippedTicks       int64
					skippedSteps       int64
				}
				runOne := func(dense bool) result {
					cfg, p := extConfig(seed, 200*extUS, pol.mk)
					net := core.BuildMMT(cfg, register.Factory(register.NewS, p))
					if dense {
						net.Sys.DisableCoalescing()
					}
					clients := workload.AttachScripted(net, extScripts(cfg.N, 6))
					if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
						t.Fatalf("dense=%v: %v", dense, err)
					}
					for _, c := range clients {
						if c.Err != nil {
							t.Fatalf("dense=%v: %v", dense, c.Err)
						}
						if c.Done != 6 {
							t.Fatalf("dense=%v: %s finished %d/6", dense, c.Name(), c.Done)
						}
					}
					var r result
					r.observable = renderObservable(net.Sys.Trace())
					r.stamps = renderStamps(net.MMT)
					for _, ts := range net.Ticks {
						r.skippedTicks += ts.SkippedTicks()
					}
					for _, n := range net.MMT {
						r.skippedSteps += n.SkippedSteps()
					}
					return r
				}
				coal, dense := runOne(false), runOne(true)
				if dense.skippedTicks != 0 || dense.skippedSteps != 0 {
					t.Fatalf("dense oracle skipped events: ticks=%d steps=%d", dense.skippedTicks, dense.skippedSteps)
				}
				if coal.skippedTicks == 0 {
					t.Error("coalesced run skipped no ticks; fast path untested")
				}
				if coal.skippedSteps == 0 {
					t.Error("coalesced run skipped no steps; fast path untested")
				}
				if coal.observable != dense.observable {
					t.Errorf("observable traces diverge:\ncoalesced:\n%s\ndense:\n%s", trim(coal.observable), trim(dense.observable))
				}
				if coal.stamps != dense.stamps {
					t.Errorf("emission stamps diverge:\ncoalesced:\n%s\ndense:\n%s", trim(coal.stamps), trim(dense.stamps))
				}
			})
		}
	}
}
