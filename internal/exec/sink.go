package exec

import (
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Sink consumes the executor's recorded event stream. It is the streaming
// counterpart of the retained trace: where Trace() hands the caller the
// whole history after the fact, a sink observes each event as it is
// committed and may discard it immediately, so run length is no longer
// bounded by memory.
//
// Ordering guarantees (the contract every executor path upholds):
//
//   - Observe is called once per recorded event, in canonical dispatch
//     order — the exact order the retained trace would hold. On the
//     sequential paths (indexed and linear) that is dispatch order; under
//     sharded execution events are buffered per lane and observed at round
//     barriers, merged in the canonical (time, fire round, firing
//     component) order, which reconstructs the sequential order (see
//     shard.go).
//   - Event times are non-decreasing across the stream, and Seq values are
//     strictly increasing and contiguous with the retained trace's
//     numbering (including runs during which recording was off; see
//     KeepTrace).
//   - Flush(bound) promises that every event with At < bound has already
//     been observed and that no future Observe will carry At < bound:
//     bound is a low-watermark. Sinks may garbage-collect any state that
//     only concerns times before bound. Flush is invoked at the end of
//     every Run/RunQuiet/Step and, under sharded execution, at every round
//     barrier, so a run driven in slices yields a steadily advancing
//     watermark.
//   - Observe and Flush are always invoked from the coordinating
//     goroutine, never concurrently, even under sharded execution.
//
// Sinks observe events with hiding already applied (hidden actions arrive
// reclassified as KindInternal), exactly as watchers and the retained
// trace do.
type Sink interface {
	Observe(ta.Event)
	Flush(bound simtime.Time)
}

// AddSink appends sink to the ordered sink chain: sinks observe every
// event after the retained trace is appended and registered watchers ran,
// in registration order. Sinks keep observing while KeepTrace is false —
// disabling retention disables only retention.
func (s *System) AddSink(sink Sink) {
	s.sinks = append(s.sinks, sink)
}

// observing reports whether anything consumes recorded events: the
// retained trace, a watcher, or a sink. When false, record takes the
// counting fast path that only advances sequence numbers.
func (s *System) observing() bool {
	return s.KeepTrace || len(s.watches) > 0 || len(s.sinks) > 0
}

// emit commits one fully-formed event: retained trace (when KeepTrace),
// watchers, then sinks, all in canonical event order. Both the sequential
// record path and the sharded barrier merge funnel through here, so every
// consumer sees one stream.
func (s *System) emit(e ta.Event) {
	if s.KeepTrace {
		if s.trace == nil {
			// Traced runs record thousands of events; start with a block
			// big enough to skip the early growth doublings.
			s.trace = make(ta.Trace, 0, 4096)
		}
		s.trace = append(s.trace, e)
	}
	for _, w := range s.watches {
		w(e)
	}
	for _, k := range s.sinks {
		k.Observe(e)
	}
}

// flushSinks advances every sink's low-watermark to bound.
func (s *System) flushSinks(bound simtime.Time) {
	for _, k := range s.sinks {
		k.Flush(bound)
	}
}
