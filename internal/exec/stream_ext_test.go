package exec_test

// Differential tests for the event-sink pipeline: a streaming consumer
// attached with AddSink must observe, cell for cell across the executor
// matrix, byte-for-byte the stream the retained trace would hold — with
// retention off, so the run never materializes the history it is being
// compared against. The comparison is by trace.Hash, whose line format is
// the goldens' renderFull format.

import (
	"fmt"
	"testing"

	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/trace"
	"psclock/internal/workload"
)

// TestStreamingHashMatrix: every executor×model cell that guarantees
// byte-identical full traces (timed and clock on both paths, MMT dense)
// must hash identically through a streaming sink with KeepTrace off. The
// sharded cells additionally prove the per-lane buffers and round-barrier
// merge feed sinks in canonical order.
func TestStreamingHashMatrix(t *testing.T) {
	for _, model := range []string{"timed", "clock", "mmt"} {
		for _, shards := range []int{-1, 3} {
			model, shards := model, shards
			t.Run(fmt.Sprintf("%s/shards%d", model, shards), func(t *testing.T) {
				t.Parallel()
				runOne := func(streaming bool) (uint64, int) {
					cfg, p := extConfig(2, 200*extUS, core.LazySteps)
					cfg.Shards = shards
					net := buildShardedNet(t, model, cfg, p)
					if model == "mmt" {
						net.Sys.DisableCoalescing()
					}
					var h *trace.Hash
					if streaming {
						net.Sys.KeepTrace = false
						h = trace.NewHash()
						net.Sys.AddSink(h)
					}
					clients := workload.AttachScripted(net, extScripts(cfg.N, 6))
					if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
						t.Fatalf("streaming=%v: %v", streaming, err)
					}
					checkShardState(t, net, shards > 1)
					for _, c := range clients {
						if c.Err != nil {
							t.Fatalf("streaming=%v: %v", streaming, c.Err)
						}
						if c.Done != 6 {
							t.Fatalf("streaming=%v: %s finished %d/6", streaming, c.Name(), c.Done)
						}
					}
					if streaming {
						if len(net.Sys.Trace()) != 0 {
							t.Fatalf("streaming run retained %d events despite KeepTrace=false", len(net.Sys.Trace()))
						}
						return h.Sum64(), h.N
					}
					return trace.HashTrace(net.Sys.Trace()), len(net.Sys.Trace())
				}
				gotHash, gotN := runOne(true)
				wantHash, wantN := runOne(false)
				if gotN != wantN {
					t.Errorf("streaming sink observed %d events, retained trace holds %d", gotN, wantN)
				}
				if gotHash != wantHash {
					t.Errorf("streaming hash %#x != retained hash %#x (sink stream diverges from trace)", gotHash, wantHash)
				}
			})
		}
	}
}

// TestKeepTraceToggleMidRun pins the toggle semantics: sequence numbers
// count every recorded event whether or not anything observes it, so
// switching retention off for a window and back on resumes numbering
// exactly where an always-on run would be — the retained events of the
// toggled run are a byte-identical subsequence of the full run — and an
// attached sink keeps observing the complete stream through the window
// where retention was off.
func TestKeepTraceToggleMidRun(t *testing.T) {
	t.Parallel()
	full := func() (map[int]string, uint64) {
		cfg, p := extConfig(5, 200*extUS, core.LazySteps)
		net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
		workload.AttachScripted(net, extScripts(cfg.N, 6))
		if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
			t.Fatal(err)
		}
		bySeq := make(map[int]string, len(net.Sys.Trace()))
		for _, e := range net.Sys.Trace() {
			bySeq[e.Seq] = fmt.Sprintf("%s|%d|%d|%s", e.Action.Label(), e.Action.Kind, e.At, e.Src)
		}
		return bySeq, trace.HashTrace(net.Sys.Trace())
	}
	fullBySeq, fullHash := full()

	cfg, p := extConfig(5, 200*extUS, core.LazySteps)
	net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
	h := trace.NewHash()
	net.Sys.AddSink(h)
	workload.AttachScripted(net, extScripts(cfg.N, 6))
	if err := net.Sys.Run(simtime.Time(20 * extMS)); err != nil {
		t.Fatal(err)
	}
	net.Sys.KeepTrace = false
	if err := net.Sys.Run(simtime.Time(30 * extMS)); err != nil {
		t.Fatal(err)
	}
	net.Sys.KeepTrace = true
	if err := net.Sys.Run(simtime.Time(90 * extMS)); err != nil {
		t.Fatal(err)
	}
	toggled := net.Sys.Trace()
	if len(toggled) >= len(fullBySeq) {
		t.Fatalf("toggle window dropped nothing: %d events retained of %d", len(toggled), len(fullBySeq))
	}
	resumed := false
	for i, e := range toggled {
		want, ok := fullBySeq[e.Seq]
		if !ok {
			t.Fatalf("event %d: Seq %d does not exist in the always-on run", i, e.Seq)
		}
		got := fmt.Sprintf("%s|%d|%d|%s", e.Action.Label(), e.Action.Kind, e.At, e.Src)
		if got != want {
			t.Fatalf("event %d (Seq %d): %q != always-on %q", i, e.Seq, got, want)
		}
		if i > 0 && e.Seq > toggled[i-1].Seq+1 {
			resumed = true // the gap left by the retention-off window
		}
	}
	if !resumed {
		t.Error("no sequence gap found; the toggle window recorded nothing hidden")
	}
	if h.N != len(fullBySeq) {
		t.Errorf("sink observed %d events through the toggle, always-on run has %d", h.N, len(fullBySeq))
	}
	if h.Sum64() != fullHash {
		t.Errorf("sink hash %#x != always-on hash %#x (sink missed events while KeepTrace was off)", h.Sum64(), fullHash)
	}
}
