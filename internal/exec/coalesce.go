package exec

import (
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// This file implements quiescence-aware tick coalescing: the executor
// advances simulated time directly to the next observable event, skipping
// the TICK deliveries and idle MMT step opportunities in between.
//
// The MMT model's clock subsystem emits a TICK every period and every node
// claims a step opportunity every ≤ ℓ, so an idle register system still
// generates thousands of heap events per simulated millisecond — PR 1's
// bench showed ~15k dispatched events per completed register operation,
// nearly all of them ticks and empty steps. The paper licenses skipping
// them: §5.2's clock is visible only through discrete TICK events and
// "specific clock values can be missed", so an execution in which the
// executor synthesizes only the ticks some component could react to is
// admissible and — because clocks are monotone (axiom C3) and mmtclock is
// a running maximum — produces byte-identical observable behavior. See
// ta.Coalescable for the per-component contract.
//
// Mechanics, per time-passage step: pop main-heap entries in due order,
// narrowing a skip horizon as they surface. The horizon starts at the
// caller's run bound (so state at Run(until)'s return matches the dense
// path exactly, even if the caller injects actions afterward) and is
// lowered by
//
//   - an entry owned by a non-coalescable component (a real event — it
//     fires), or one whose NextInterest equals its deadline: the sweep
//     stops there, and
//   - the NextInterest of each consumed component: a tick source that
//     must deliver the TICK crossing a demanded clock threshold caps the
//     horizon at that tick, so the synthesized TICK always fires at its
//     exact dense-schedule time.
//
// Consumed entries all lie strictly before the final horizon (pop order
// is ascending by due), so each consumed component FastForwards to the
// horizon and is re-polled: a tick source keeps its newest tick at or
// before the horizon — the sync TICK that refreshes mmtclock before the
// next observable event — and an idle MMT node jumps its step schedule
// in one arithmetic move (fixed-gap policies) or by replaying its seeded
// gap draws (random policies).
//
// Components whose deadlines are all observable are never consumed, and
// the sweep never looks past the first blocking entry, so a system with
// nothing to skip (the clock model: every deadline is composite work)
// pays one heap peek per time-passage step. The consumed-entry scratch
// list is pooled on the System, and FastForward itself is arithmetic for
// fixed-gap step policies, so a coalescing round allocates nothing.

// coalEntry caches the Coalescable assertion for one component.
type coalEntry struct {
	idx int32
	c   ta.Coalescable
}

// rebuildCoal recomputes the coalescable-component index after Add,
// Replace, or init. Its only scheduling role is the len(s.coal) == 0
// fast-out in coalesce; the sweep re-asserts per popped entry.
func (s *System) rebuildCoal() {
	s.coal = s.coal[:0]
	s.coalOf = s.coalOf[:0]
	for i, c := range s.comps {
		cc, _ := c.(ta.Coalescable)
		if cc != nil {
			s.coal = append(s.coal, coalEntry{idx: int32(i), c: cc})
		}
		s.coalOf = append(s.coalOf, cc)
	}
}

// coalesce fast-forwards the lane's coalescable components past their
// unobservable deadlines up to the next observable event, bounded by bound
// (the current Run/RunQuiet window, the sharded round window, or
// simtime.Never for Step). On the dense and linear oracle paths it does
// nothing.
//
// Under sharded execution the bound is additionally capped at the round
// window W: mail from other shards lands at the barrier with deadlines at
// or after W, so no deadline the sweep skips inside the window can be
// invalidated by a delivery the lane has not seen yet. Fast-forwarding in
// window-sized increments reaches the same state as one direct jump:
// FastForward targets are monotone and each call consumes exactly the
// seeded draws of the deadlines it skips.
func (s *System) coalesce(ln *lane, bound simtime.Time) {
	if s.dense || s.linear || *ln.err != nil || len(s.coal) == 0 {
		return
	}
	horizon := bound
	sc := &ln.sched
	ff := ln.ffScratch[:0]
	for len(sc.heap) > 0 {
		top := sc.heap[0]
		if sc.stale(top) {
			sc.pop()
			continue
		}
		if !top.due.Before(horizon) {
			break
		}
		cc, ok := s.comps[top.idx].(ta.Coalescable)
		if !ok {
			// A non-coalescable deadline is an observable event; it bounds
			// the skip. Entries consumed so far are due before it (pop
			// order), so fast-forwarding them to the lowered horizon stays
			// correct.
			horizon = top.due
			break
		}
		t := cc.NextInterest()
		if !t.After(top.due) {
			// The component's next deadline is itself observable.
			horizon = top.due
			break
		}
		if t.Before(horizon) {
			// Skippable now, but observable later (a tick source holding a
			// demanded threshold crossing): the horizon may not pass it.
			horizon = t
		}
		sc.pop()
		sc.gen[top.idx]++ // consumed; poll re-pushes after the fast-forward
		sc.curOk[top.idx] = false
		ff = append(ff, top.idx)
	}
	if horizon == simtime.Never {
		// Every remaining deadline was consumed and nothing observable is
		// ever scheduled: there is no event to fast-forward to. Restore the
		// consumed entries (state is untouched, so poll re-pushes each
		// component at its unchanged deadline) and let the caller's sweep
		// proceed densely.
		for _, idx := range ff {
			s.poll(ln, int(idx))
		}
		ln.ffScratch = ff[:0]
		return
	}
	for _, idx := range ff {
		s.comps[idx].(ta.Coalescable).FastForward(horizon)
		s.poll(ln, int(idx))
	}
	ln.ffScratch = ff[:0]
}
