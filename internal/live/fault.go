package live

import (
	"sync"
	"sync/atomic"
	"time"
)

// FaultTransport wraps another Transport with chaos-controller hooks: it
// can cut the links between this node and a chosen peer (a network
// partition, enacted as symmetric frame drop at this end) and add a fixed
// outbound delay on top of whatever the wrapped transport delivers (a
// delay spike past d2). Both faults are plane-commanded at each affected
// daemon, so a partition between i and j is enforced at both ends even
// though each FaultTransport only sees its own node's traffic.
//
// Drops are counted: a partition is expected to be *flagged* — dropped
// register updates are message loss, which is outside the paper's model
// (Definition 2.3 delivers every message within [d1, d2]) — so the
// evidence that frames were actually cut is part of the fault's outcome.
type FaultTransport struct {
	inner Transport
	self  int

	mu       sync.Mutex
	dropTo   map[int]bool
	dropFrom map[int]bool
	delay    time.Duration

	dropped atomic.Int64

	deliver func(Frame)
	done    chan struct{}
	wg      sync.WaitGroup
}

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner for node self.
func NewFaultTransport(self int, inner Transport) *FaultTransport {
	return &FaultTransport{
		inner:    inner,
		self:     self,
		dropTo:   make(map[int]bool),
		dropFrom: make(map[int]bool),
		done:     make(chan struct{}),
	}
}

// SetPartition cuts (on=true) or heals (on=false) both directions of the
// link between this node and peer.
func (t *FaultTransport) SetPartition(peer int, on bool) {
	t.mu.Lock()
	if on {
		t.dropTo[peer] = true
		t.dropFrom[peer] = true
	} else {
		delete(t.dropTo, peer)
		delete(t.dropFrom, peer)
	}
	t.mu.Unlock()
}

// SetDelay adds d of extra latency to every outbound inter-node frame
// (zero heals). The runtime's per-frame delay measurement sees the sum of
// this and the real network, so a spike past d2 lands in DelayViolations.
func (t *FaultTransport) SetDelay(d time.Duration) {
	t.mu.Lock()
	t.delay = d
	t.mu.Unlock()
}

// Dropped returns the number of frames cut by partitions at this end.
func (t *FaultTransport) Dropped() int64 { return t.dropped.Load() }

// Start implements Transport, interposing the inbound drop filter.
func (t *FaultTransport) Start(deliver func(Frame)) error {
	t.deliver = deliver
	return t.inner.Start(func(f Frame) {
		t.mu.Lock()
		drop := t.dropFrom[int(f.From)]
		t.mu.Unlock()
		if drop {
			t.dropped.Add(1)
			return
		}
		deliver(f)
	})
}

// Send implements Transport, applying the outbound drop filter and delay.
func (t *FaultTransport) Send(f Frame) error {
	t.mu.Lock()
	drop := t.dropTo[int(f.To)]
	delay := t.delay
	t.mu.Unlock()
	if drop && int(f.To) != t.self {
		t.dropped.Add(1)
		return nil
	}
	if delay > 0 && int(f.To) != t.self {
		t.wg.Add(1)
		time.AfterFunc(delay, func() {
			defer t.wg.Done()
			select {
			case <-t.done:
				return
			default:
			}
			// Re-check the partition at fire time: a cut raced the timer.
			t.mu.Lock()
			drop := t.dropTo[int(f.To)]
			t.mu.Unlock()
			if drop {
				t.dropped.Add(1)
				return
			}
			_ = t.inner.Send(f)
		})
		return nil
	}
	return t.inner.Send(f)
}

// Close implements Transport.
func (t *FaultTransport) Close() error {
	close(t.done)
	err := t.inner.Close()
	t.wg.Wait()
	return err
}

// Name implements Transport.
func (t *FaultTransport) Name() string { return t.inner.Name() + "+fault" }

// Reconnects forwards the wrapped transport's reconnect count, if it
// keeps one, so Runtime.Stop's optional-interface probe sees through the
// wrapper.
func (t *FaultTransport) Reconnects() int64 {
	if r, ok := t.inner.(interface{ Reconnects() int64 }); ok {
		return r.Reconnects()
	}
	return 0
}
