//go:build race

package live

// raceScale stretches the live tests' scheduling-slack budget and client
// think time under the race detector, whose instrumentation slows every
// goroutine several-fold: the real-time windows the checker sees widen
// accordingly, and the overlap bound must be re-established at the
// slower pace.
const raceScale = 4
