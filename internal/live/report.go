package live

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the machine-readable outcome of a pscserve run: the `live`
// section of BENCH_results.json. It records what was configured, what was
// measured (ε, timer lateness, delay bounds — the live counterparts of the
// simulator's assumptions), the load generator's throughput and latency
// percentiles, and the online linearizability verdict that gates the run.
type Report struct {
	Nodes     int    `json:"nodes"`
	Clients   int    `json:"clients"`
	Clock     string `json:"clock"`
	Transport string `json:"transport"`
	Seed      int64  `json:"seed"`
	// GOMAXPROCS is recorded per section: the live runtime's throughput
	// depends on the parallelism it ran under, independently of whatever
	// setting later pscbench runs record at the top level.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`

	DurationMS float64 `json:"duration_ms"`
	Ops        int     `json:"ops"`
	Reads      int     `json:"reads"`
	Writes     int     `json:"writes"`
	OpsPerSec  float64 `json:"ops_per_sec"`

	ReadP50US  float64 `json:"read_p50_us"`
	ReadP99US  float64 `json:"read_p99_us"`
	WriteP50US float64 `json:"write_p50_us"`
	WriteP99US float64 `json:"write_p99_us"`

	EpsConfigUS   float64 `json:"eps_config_us"`
	EpsMeasuredUS float64 `json:"eps_measured_us"`
	EllConfigUS   float64 `json:"ell_config_us"`
	TimerLateUS   float64 `json:"timer_late_us"`
	D1ConfigUS    float64 `json:"d1_config_us"`
	D2ConfigUS    float64 `json:"d2_config_us"`
	DelayMinUS    float64 `json:"delay_min_us"`
	DelayMaxUS    float64 `json:"delay_max_us"`

	Messages        int `json:"messages"`
	Held            int `json:"held"`
	DelayViolations int `json:"delay_violations"`

	// Violations counts online linearizability check failures (sticky: 0
	// or 1 per check); CheckStates is the online checker's search size.
	// CheckShards is the sharded-verification worker count the run used
	// (0: checkers ran inline on the event consumer).
	Violations  int  `json:"violations"`
	CheckStates int  `json:"check_states"`
	CheckShards int  `json:"check_shards,omitempty"`
	Pass        bool `json:"pass"`
}

// MergeIntoBenchFile writes r as the "live" section of the JSON report at
// path, preserving every other section (pscbench owns the rest of the
// file). A missing or empty file yields a report with only the live
// section.
func MergeIntoBenchFile(path string, r *Report) error {
	doc := map[string]any{}
	if buf, err := os.ReadFile(path); err == nil && len(buf) > 0 {
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("live: %s: %w", path, err)
		}
	}
	doc["live"] = r
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
