package live

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the machine-readable outcome of a pscserve run: the `live`
// section of BENCH_results.json. It records what was configured, what was
// measured (ε, timer lateness, delay bounds — the live counterparts of the
// simulator's assumptions), the load generator's throughput and latency
// percentiles, and the online linearizability verdict that gates the run.
type Report struct {
	Nodes   int `json:"nodes"`
	Clients int `json:"clients"`
	// Registers is the independent register instances served; Pipeline is
	// the per-client in-flight bound (0/1: closed loop). Both shape the
	// throughput a run can reach, so compare treats them as config.
	Registers int    `json:"registers,omitempty"`
	Pipeline  int    `json:"pipeline,omitempty"`
	Clock     string `json:"clock"`
	Transport string `json:"transport"`
	Seed      int64  `json:"seed"`
	// GOMAXPROCS is recorded per section: the live runtime's throughput
	// depends on the parallelism it ran under, independently of whatever
	// setting later pscbench runs record at the top level.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`

	DurationMS float64 `json:"duration_ms"`
	Ops        int     `json:"ops"`
	Reads      int     `json:"reads"`
	Writes     int     `json:"writes"`
	OpsPerSec  float64 `json:"ops_per_sec"`

	ReadP50US  float64 `json:"read_p50_us"`
	ReadP99US  float64 `json:"read_p99_us"`
	WriteP50US float64 `json:"write_p50_us"`
	WriteP99US float64 `json:"write_p99_us"`

	// Tiers is the per-register tier configuration string ("" for an
	// untiered run); TierLin and TierSeq split the run per consistency
	// tier, and ReadDiscountUS is the seq tier's measured read saving —
	// lin read p50 − seq read p50, the 2ε the lin tier pays for
	// linearizability (Lemmas 6.1/6.2). Compare gates it against ε.
	Tiers          string      `json:"tiers,omitempty"`
	TierLin        *TierReport `json:"tier_lin,omitempty"`
	TierSeq        *TierReport `json:"tier_seq,omitempty"`
	ReadDiscountUS float64     `json:"read_discount_us,omitempty"`

	// PipelineDepthMean is the mean in-flight occupancy pipelined clients
	// sampled at issue time (Little's-law cross-check against ops/s ×
	// latency); PerRegOps counts completed operations per register.
	PipelineDepthMean float64 `json:"pipeline_depth_mean,omitempty"`
	PerRegOps         []int   `json:"per_reg_ops,omitempty"`

	EpsConfigUS   float64 `json:"eps_config_us"`
	EpsMeasuredUS float64 `json:"eps_measured_us"`
	EllConfigUS   float64 `json:"ell_config_us"`
	TimerLateUS   float64 `json:"timer_late_us"`
	D1ConfigUS    float64 `json:"d1_config_us"`
	D2ConfigUS    float64 `json:"d2_config_us"`
	DelayMinUS    float64 `json:"delay_min_us"`
	DelayMaxUS    float64 `json:"delay_max_us"`

	Messages        int `json:"messages"`
	Held            int `json:"held"`
	DelayViolations int `json:"delay_violations"`

	// Violations counts online linearizability check failures (sticky: 0
	// or 1 per check); CheckStates is the online checker's search size.
	// CheckShards is the sharded-verification worker count the run used
	// (0: checkers ran inline on the event consumer).
	Violations  int `json:"violations"`
	CheckStates int `json:"check_states"`
	CheckShards int `json:"check_shards,omitempty"`
	// RecorderDrops counts events the recorder discarded after shutdown;
	// a clean run asserts zero (Pass requires it).
	RecorderDrops int `json:"recorder_drops"`
	// Reconnects counts transport link re-dials over the run: healed
	// failures, reported rather than fatal (a loopback run has zero).
	Reconnects int  `json:"reconnects,omitempty"`
	Pass       bool `json:"pass"`
}

// TierReport is one consistency tier's slice of a mixed-tier run: its
// registers, its share of the load with per-tier latency percentiles, and
// its own online verification verdict (each tier is checked against its
// own specification — linearizability for lin, sequential consistency for
// seq — by the per-key checker fan-out).
type TierReport struct {
	Registers int `json:"registers"`
	Ops       int `json:"ops"`
	Reads     int `json:"reads"`
	Writes    int `json:"writes"`

	ReadP50US  float64 `json:"read_p50_us"`
	ReadP99US  float64 `json:"read_p99_us"`
	WriteP50US float64 `json:"write_p50_us"`
	WriteP99US float64 `json:"write_p99_us"`

	Violations  int `json:"violations"`
	CheckStates int `json:"check_states"`
}

// MergeIntoBenchFile writes r as the "live" section of the JSON report at
// path, preserving every other section (pscbench owns the rest of the
// file). A missing or empty file yields a report with only the live
// section.
func MergeIntoBenchFile(path string, r *Report) error {
	return MergeSectionIntoBenchFile(path, "live", r)
}

// MergeSectionIntoBenchFile writes r as the named section of the JSON
// report at path, preserving every other section. pscserve uses "live"
// for its pipelined headline run and "live_closed" for the closed-loop
// latency baseline; pscfleet merges its own report type as "live_fleet",
// which is why r is any JSON-marshalable value rather than *Report.
func MergeSectionIntoBenchFile(path, section string, r any) error {
	doc := map[string]any{}
	if buf, err := os.ReadFile(path); err == nil && len(buf) > 0 {
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("live: %s: %w", path, err)
		}
	}
	doc[section] = r
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
