package live

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MeshTransport is the fleet's inter-daemon transport: one node per OS
// process, each process listening on its own TCP address, with peer
// addresses supplied — and re-supplied after a crashed peer is replaced —
// by the control plane. It differs from TCPTransport (all nodes in one
// process, addresses fixed at construction) in three ways that the fleet
// runtime needs:
//
//   - Lazy, retried dials: a peer may not be up yet when the first frame
//     for it is queued, or may be down for hundreds of milliseconds while
//     the plane restarts it. The writer retries with bounded exponential
//     backoff instead of failing the run.
//   - Re-wiring: SetPeer replaces a peer's address mid-run and tears down
//     the stale connection; the writer redials the new address with the
//     same frames-in-flight queue.
//   - Reconnect accounting: every successful dial after the first is
//     counted, so the live report records how often links healed instead
//     of treating a broken write as fatal.
//
// Frames to self never touch the network (§6.1's broadcast includes the
// sender).
type MeshTransport struct {
	self int
	n    int
	ln   net.Listener

	peers []*meshPeer

	deliver func(Frame)
	selfCh  chan Frame

	reconnects atomic.Int64
	done       chan struct{}
	wg         sync.WaitGroup
	closeOnce  sync.Once
}

type meshPeer struct {
	to int
	ch chan Frame

	mu   sync.Mutex
	addr string
	conn net.Conn // current writer conn, closed by SetPeer to force redial
	gen  int      // bumped by SetPeer so the writer notices address swaps
}

const (
	meshQueueDepth = 8192
	meshBackoffMin = 10 * time.Millisecond
	meshBackoffMax = 640 * time.Millisecond
	meshIdlePoll   = 20 * time.Millisecond
	meshFlushDelay = 200 * time.Microsecond
	meshSelfDepth  = 8192
)

var _ Transport = (*MeshTransport)(nil)

// NewMeshTransport listens on a fresh loopback-or-any port for node self
// of an n-node fleet. Peer addresses start empty; the plane supplies them
// via SetPeer before (and during) the run.
func NewMeshTransport(self, n int, listenAddr string) (*MeshTransport, error) {
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("mesh listen: %w", err)
	}
	t := &MeshTransport{
		self:   self,
		n:      n,
		ln:     ln,
		peers:  make([]*meshPeer, n),
		selfCh: make(chan Frame, meshSelfDepth),
		done:   make(chan struct{}),
	}
	for j := 0; j < n; j++ {
		if j == self {
			continue
		}
		t.peers[j] = &meshPeer{to: j, ch: make(chan Frame, meshQueueDepth)}
	}
	return t, nil
}

// Addr returns the address the transport accepts peer connections on.
func (t *MeshTransport) Addr() string { return t.ln.Addr().String() }

// SetPeer installs (or replaces) peer j's dial address. Replacing an
// address closes the current connection so the writer redials; queued
// frames carry over to the new connection.
func (t *MeshTransport) SetPeer(j int, addr string) {
	if j < 0 || j >= t.n || j == t.self {
		return
	}
	p := t.peers[j]
	p.mu.Lock()
	changed := p.addr != addr
	p.addr = addr
	if changed {
		p.gen++
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
	}
	p.mu.Unlock()
}

// Reconnects returns the number of successful re-dials (dials after each
// peer's first) across all links.
func (t *MeshTransport) Reconnects() int64 { return t.reconnects.Load() }

// Start implements Transport: begins accepting inbound peer connections
// and launches one writer per outbound link plus the self-delivery loop.
func (t *MeshTransport) Start(deliver func(Frame)) error {
	t.deliver = deliver

	t.wg.Add(1)
	go t.acceptLoop()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			select {
			case f := <-t.selfCh:
				t.deliver(f)
			case <-t.done:
				return
			}
		}
	}()

	for j := 0; j < t.n; j++ {
		if j == t.self {
			continue
		}
		p := t.peers[j]
		t.wg.Add(1)
		go t.writeLoop(p)
	}
	return nil
}

// Send implements Transport. Frames to unknown-yet peers queue; a full
// queue drops the frame (the link is partitioned or the peer is long
// dead — backpressure here would wedge the node loop).
func (t *MeshTransport) Send(f Frame) error {
	if int(f.To) == t.self {
		select {
		case t.selfCh <- f:
		case <-t.done:
		}
		return nil
	}
	if int(f.To) < 0 || int(f.To) >= t.n {
		return fmt.Errorf("mesh send: no peer %d", f.To)
	}
	select {
	case t.peers[f.To].ch <- f:
	default:
		// Queue full: the peer has been unreachable for a long time.
		// Dropping keeps the sender live; the checker sees the loss.
	}
	return nil
}

// Close implements Transport.
func (t *MeshTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.ln.Close()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			if p.conn != nil {
				p.conn.Close()
			}
			p.mu.Unlock()
		}
	})
	t.wg.Wait()
	return nil
}

// Name implements Transport.
func (t *MeshTransport) Name() string { return "mesh-tcp" }

func (t *MeshTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				// Transient accept error; keep serving.
				time.Sleep(meshIdlePoll)
				continue
			}
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *MeshTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(bufio.NewReaderSize(conn, 64<<10))
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		if int(f.To) != t.self {
			continue
		}
		select {
		case <-t.done:
			return
		default:
		}
		t.deliver(f)
	}
}

// dial connects to p's current address, waiting while no address is
// known and backing off on failure. Returns nil when the transport is
// closing. first reports whether this peer has ever connected, for
// reconnect accounting.
func (t *MeshTransport) dial(p *meshPeer, first *bool) (net.Conn, int) {
	backoff := meshBackoffMin
	for {
		select {
		case <-t.done:
			return nil, 0
		default:
		}
		p.mu.Lock()
		addr := p.addr
		gen := p.gen
		p.mu.Unlock()
		if addr == "" {
			select {
			case <-t.done:
				return nil, 0
			case <-time.After(meshIdlePoll):
			}
			continue
		}
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			select {
			case <-t.done:
				return nil, 0
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > meshBackoffMax {
				backoff = meshBackoffMax
			}
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		p.mu.Lock()
		// The address may have changed while dialing; only install the
		// conn if it still matches this generation.
		if p.gen != gen {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.conn = conn
		p.mu.Unlock()
		if *first {
			*first = false
		} else {
			t.reconnects.Add(1)
		}
		return conn, gen
	}
}

func (t *MeshTransport) writeLoop(p *meshPeer) {
	defer t.wg.Done()
	first := true
	var pending []Frame
	for {
		conn, gen := t.dial(p, &first)
		if conn == nil {
			return
		}
		bw := bufio.NewWriterSize(conn, 64<<10)
		enc := gob.NewEncoder(bw)

		// Write until the connection breaks or the address changes.
	connLoop:
		for {
			var f Frame
			if len(pending) > 0 {
				f = pending[0]
				pending = pending[1:]
			} else {
				select {
				case f = <-p.ch:
				case <-t.done:
					bw.Flush()
					conn.Close()
					return
				}
			}
			if err := enc.Encode(f); err != nil {
				// The frame may be half-written; redelivery of a clock-
				// tagged update is harmless (R_ji,ε dedups by hold), but a
				// truncated stream means the decoder at the far end
				// resets, so requeue this frame for the next conn.
				pending = append([]Frame{f}, pending...)
				break connLoop
			}
			// Batch whatever else is queued before flushing.
		drain:
			for i := 0; i < 256; i++ {
				select {
				case nf := <-p.ch:
					if err := enc.Encode(nf); err != nil {
						pending = append([]Frame{nf}, pending...)
						break connLoop
					}
				default:
					break drain
				}
			}
			if err := bw.Flush(); err != nil {
				break connLoop
			}
			p.mu.Lock()
			stale := p.gen != gen
			p.mu.Unlock()
			if stale {
				break connLoop
			}
			if meshFlushDelay > 0 && len(p.ch) == 0 {
				select {
				case <-time.After(meshFlushDelay):
				case <-t.done:
					conn.Close()
					return
				}
			}
		}
		conn.Close()
		select {
		case <-t.done:
			return
		default:
		}
	}
}
