package live

import (
	"fmt"
	"sync"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Frame is one message on the wire between live nodes. SentClock is the
// sender's clock reading at the SENDMSG action — the tag the send buffer
// S_ij,ε attaches (§4.2.1), which the receiver's hold queue compares
// against its own clock (the receive buffer R_ji,ε). SentReal is the
// sender's real elapsed time at the send, used only for delay measurement:
// within one process all nodes share the runtime's monotonic epoch, so
// receive-side real time minus SentReal is the true link delay. Chan is
// the logical register channel: many register instances multiplex one
// physical link per node pair, and the [d1, d2] delay measurement and the
// receive buffer's clock-tag hold apply per logical channel.
type Frame struct {
	From, To  ta.NodeID
	Chan      int
	SentClock simtime.Time
	SentReal  simtime.Time
	Body      any
}

// Transport moves frames between nodes. Start installs the delivery
// callback and begins accepting; Send may be called concurrently from
// every node goroutine after Start; Close stops delivery and releases
// resources. The delivery callback must be safe for concurrent use and
// must not block indefinitely (the runtime's per-node inboxes are deep,
// and closed-loop workloads bound the frames in flight).
type Transport interface {
	Start(deliver func(Frame)) error
	Send(f Frame) error
	Close() error
	// Name describes the transport for reports.
	Name() string
}

// ChanTransport is the in-process transport: a buffered channel drained by
// a dispatcher goroutine. It is the fastest honest transport available to
// a single process — frames still cross a scheduler boundary, so delays
// are small but real, never zero by fiat.
type ChanTransport struct {
	mu     sync.Mutex
	ch     chan Frame
	done   chan struct{}
	closed bool
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport returns an in-process transport with the given send
// buffer depth (≤ 0 selects a default deep enough for closed-loop
// workloads on complete graphs).
func NewChanTransport(buffer int) *ChanTransport {
	if buffer <= 0 {
		buffer = 4096
	}
	return &ChanTransport{ch: make(chan Frame, buffer), done: make(chan struct{})}
}

// Start implements Transport.
func (t *ChanTransport) Start(deliver func(Frame)) error {
	go func() {
		defer close(t.done)
		for f := range t.ch {
			deliver(f)
		}
	}()
	return nil
}

// Send implements Transport.
func (t *ChanTransport) Send(f Frame) error {
	// The closed check and the channel send stay under one lock so Close
	// cannot close the channel between them (a send on a closed channel
	// panics; an error return is the contract).
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("live: send on closed transport")
	}
	t.ch <- f
	return nil
}

// Close implements Transport: no more sends are accepted, queued frames
// are drained, and the dispatcher exits.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.ch)
	t.mu.Unlock()
	<-t.done
	return nil
}

// Name implements Transport.
func (t *ChanTransport) Name() string { return "chan" }
