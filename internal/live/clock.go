// Package live is the second execution backend: a wall-clock runtime that
// hosts the same core.Algorithm programs the discrete-event simulator runs
// (the transformed register S^c of §6, the heartbeat failure detector of
// §1), on real goroutine-per-node timers and a real transport.
//
// The paper's claim is that an algorithm written against the §3 model runs
// unchanged once wrapped by the §4 clock transformation; the simulator
// checks that claim against modeled clocks and modeled links. This package
// checks it against the only clocks and links that exist outside a model:
// Go's monotonic clock perturbed by a clock.Model (so the ε band is still
// guaranteed, but now the runtime *measures* the offset it actually served
// rather than assuming it), and in-process channels or loopback TCP whose
// delays are measured per message. The runtime's event stream is bridged
// onto the exec.Sink contract, so register.Monitor/linearize.Online verify
// linearizability of live traffic online, exactly as they do for simulated
// traffic — one algorithm, one checker, two worlds.
package live

import (
	"sync"
	"time"

	"psclock/internal/clock"
	"psclock/internal/simtime"
)

// Clock is one node's wall-clock time source. Readings are simulated-time
// nanoseconds since the runtime's epoch, satisfying the clock predicate
// C_ε of Definition 2.5 with respect to real elapsed time; OffsetBound
// reports the largest |reading − real| the node actually observed, which
// is the measured ε the monitoring bridge relaxes its windows by.
//
// Implementations must be safe for concurrent use: the node's own loop
// reads its clock, and the runtime reads every clock at shutdown to
// collect the measured bounds.
type Clock interface {
	// Now returns the node's current clock reading.
	Now() simtime.Time
	// WaitUntil returns the wall-clock wait until the clock reaches
	// target, zero if it already has.
	WaitUntil(target simtime.Time) time.Duration
	// Epsilon returns the configured accuracy band ε the clock guarantees.
	Epsilon() simtime.Duration
	// OffsetBound returns the largest |reading − real elapsed| observed so
	// far: the measured ε.
	OffsetBound() simtime.Duration
	// Name describes the clock for reports.
	Name() string
}

// ModelClock adapts a deterministic clock.Model to a live Clock: readings
// evaluate the model at real elapsed time since the epoch, so the perfect,
// fixed-offset (Constant/Spread), and jittered-drift models of
// internal/clock become live clocks with the same ±ε guarantee. Every
// read updates the measured offset bound.
type ModelClock struct {
	mu    sync.Mutex
	epoch time.Time
	m     clock.Model
	bound simtime.Duration
}

var _ Clock = (*ModelClock)(nil)

// NewModelClock returns a live clock over m with readings anchored at
// epoch (the runtime's start instant, simulated Zero).
func NewModelClock(m clock.Model, epoch time.Time) *ModelClock {
	return &ModelClock{epoch: epoch, m: m}
}

// elapsed returns real time since the epoch as a simulated instant,
// clamped at Zero (monotonic readings before Start are a caller bug, but
// a negative instant must never reach the model).
func (c *ModelClock) elapsed() simtime.Time {
	t, err := simtime.TimeFromWall(time.Since(c.epoch))
	if err != nil {
		return simtime.Zero
	}
	return t
}

// Now implements Clock.
func (c *ModelClock) Now() simtime.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	real := c.elapsed()
	r := c.m.At(real)
	if off := r.Sub(real).Abs(); off > c.bound {
		c.bound = off
	}
	return r
}

// WaitUntil implements Clock via the model's inverse: the earliest real
// time at which the clock reaches target.
func (c *ModelClock) WaitUntil(target simtime.Time) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	real := c.elapsed()
	u := c.m.EarliestAt(target)
	if u <= real {
		return 0
	}
	w, err := simtime.ToWall(u.Sub(real))
	if err != nil {
		// A Forever-wide wait means the model never reaches target; the
		// node loop treats it as "no deadline" by sleeping its maximum.
		return time.Hour
	}
	return w
}

// Epsilon implements Clock.
func (c *ModelClock) Epsilon() simtime.Duration { return c.m.Epsilon() }

// OffsetBound implements Clock.
func (c *ModelClock) OffsetBound() simtime.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bound
}

// Name implements Clock.
func (c *ModelClock) Name() string { return c.m.Name() }

// StepClock wraps a Clock with an externally settable offset: the chaos
// controller's clock adversary. A fault injector calls SetOffset to step
// the node's time source past (or within) the configured ε while the node
// program keeps running, and OffsetBound folds the largest applied |step|
// into the measured ε̂ — so a step past ε is observable in the run's
// evidence exactly the way a real clock excursion would be, without
// touching the clock.Model underneath.
type StepClock struct {
	inner Clock

	mu     sync.Mutex
	off    simtime.Duration
	maxAbs simtime.Duration
}

var _ Clock = (*StepClock)(nil)

// NewStepClock wraps inner with a zero offset.
func NewStepClock(inner Clock) *StepClock { return &StepClock{inner: inner} }

// SetOffset replaces the applied step (absolute, not cumulative); zero
// heals the clock. Safe for concurrent use with readers.
func (c *StepClock) SetOffset(d simtime.Duration) {
	c.mu.Lock()
	c.off = d
	if a := d.Abs(); a > c.maxAbs {
		c.maxAbs = a
	}
	c.mu.Unlock()
}

// Offset returns the currently applied step.
func (c *StepClock) Offset() simtime.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.off
}

// Now implements Clock: the inner reading shifted by the applied step.
// A backward step can make consecutive readings non-monotone; the node
// loop's high-water clamp absorbs that, as it does for any clock.
func (c *StepClock) Now() simtime.Time {
	c.mu.Lock()
	off := c.off
	c.mu.Unlock()
	return c.inner.Now().Add(off)
}

// WaitUntil implements Clock: the stepped clock reaches target when the
// inner clock reaches target − off.
func (c *StepClock) WaitUntil(target simtime.Time) time.Duration {
	c.mu.Lock()
	off := c.off
	c.mu.Unlock()
	return c.inner.WaitUntil(target.Add(-off))
}

// Epsilon implements Clock: the band the inner clock still guarantees.
// The step is deliberately outside any guarantee — that is the fault.
func (c *StepClock) Epsilon() simtime.Duration { return c.inner.Epsilon() }

// OffsetBound implements Clock: the inner clock's measured bound plus the
// largest step ever applied — an upper bound on |reading − real|, so a
// step past ε surfaces as measured ε̂ > ε.
func (c *StepClock) OffsetBound() simtime.Duration {
	c.mu.Lock()
	maxAbs := c.maxAbs
	c.mu.Unlock()
	return c.inner.OffsetBound() + maxAbs
}

// Name implements Clock.
func (c *StepClock) Name() string { return c.inner.Name() + "+step" }
