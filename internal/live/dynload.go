package live

import (
	"bufio"
	"math/rand"
	"net"
	"sync"
	"time"

	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

// RunLoadDynamic drives closed-loop clients against endpoints that move:
// resolve maps a client to its current server address ("" while the
// node is down or repairing) and the node ID to stamp written values
// with. Clients re-resolve and re-dial whenever the connection breaks or
// the address changes — a fleet run's nodes crash, restart at fresh
// ports, and only republish once serviceable, and the load generator is
// expected to follow them rather than die with them.
//
// Mid-flight operations severed by a crash are neither counted nor
// recorded: their invocations reached the server's recorder and complete
// as pending operations in the checker, while the client just moves on.
// Disconnections during chaos are expected, so they are retried, not
// counted as Errors; Errors stays reserved for failures with nowhere to
// retry (the run ending with a client never having connected).
func RunLoadDynamic(resolve func(client int) (addr string, node ta.NodeID), cfg LoadConfig) LoadResult {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Registers <= 0 {
		cfg.Registers = 1
	}
	rec := &loadRecorders{
		read:  stats.NewReservoir(4096, cfg.Seed*7+1),
		write: stats.NewReservoir(4096, cfg.Seed*7+2),
	}
	if cfg.Tiers != nil {
		for t := range rec.tierRead {
			rec.tierRead[t] = stats.NewReservoir(4096, cfg.Seed*7+3+int64(t))
			rec.tierWrite[t] = stats.NewReservoir(4096, cfg.Seed*7+5+int64(t))
		}
	}
	var agg LoadResult
	agg.PerReg = make([]int, cfg.Registers)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := runDynClient(c, resolve, cfg, deadline, rec)
			rec.mu.Lock()
			agg.Ops += res.Ops
			agg.Reads += res.Reads
			agg.Writes += res.Writes
			agg.Errors += res.Errors
			for t := range res.Tier {
				agg.Tier[t].Ops += res.Tier[t].Ops
				agg.Tier[t].Reads += res.Tier[t].Reads
				agg.Tier[t].Writes += res.Tier[t].Writes
			}
			for r, k := range res.PerReg {
				agg.PerReg[r] += k
			}
			rec.mu.Unlock()
		}()
	}
	wg.Wait()
	rec.mu.Lock()
	agg.ReadLat = rec.read.Summary()
	agg.WriteLat = rec.write.Summary()
	if cfg.Tiers != nil {
		for t := range rec.tierRead {
			agg.Tier[t].ReadLat = rec.tierRead[t].Summary()
			agg.Tier[t].WriteLat = rec.tierWrite[t].Summary()
		}
	}
	rec.mu.Unlock()
	if cfg.Registers == 1 {
		agg.PerReg = nil
	}
	return agg
}

// runDynClient is one address-following closed-loop client.
func runDynClient(id int, resolve func(int) (string, ta.NodeID), cfg LoadConfig, deadline time.Time, rec *loadRecorders) LoadResult {
	var res LoadResult
	res.PerReg = make([]int, cfg.Registers)
	rng := rand.New(rand.NewSource(cfg.Seed*611953 + int64(id)))
	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(time.Second) / cfg.Rate)
	}

	var (
		conn     net.Conn
		br       *bufio.Reader
		connAddr string
		nodeID   ta.NodeID
		sbuf     []byte
		everUp   bool
		wseq     int
	)
	drop := func() {
		if conn != nil {
			conn.Close()
			conn = nil
		}
	}
	defer drop()

	for time.Now().Before(deadline) && !cfg.stopRequested() {
		addr, node := resolve(id)
		if addr == "" {
			// Node down or repairing: hold position until it republishes.
			drop()
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if conn == nil || addr != connAddr {
			drop()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			conn, br, connAddr, nodeID = c, bufio.NewReaderSize(c, 4096), addr, node
			everUp = true
		}

		opStart := time.Now()
		reg := 0
		if cfg.Registers > 1 {
			reg = rng.Intn(cfg.Registers)
		}
		tier := cfg.tierOf(reg)
		req := wireReq{Reg: reg, Op: register.ActRead, Tier: tier}
		if rng.Float64() < cfg.WriteRatio {
			req = wireReq{Reg: reg, Op: register.ActWrite, Val: register.Value{Writer: nodeID, Seq: id*1_000_000 + wseq}, Tier: tier}
			wseq++
		}
		sbuf = appendWireReq(sbuf[:0], req)
		if _, err := conn.Write(sbuf); err != nil {
			drop()
			continue
		}
		if _, err := readWireResp(br); err != nil {
			// Crash mid-op: the invocation (if it landed) finishes as a
			// pending op in the checker; re-resolve and carry on.
			drop()
			continue
		}
		lat, lerr := simtime.FromWall(time.Since(opStart))
		res.Ops++
		res.PerReg[reg]++
		isWrite := req.Op == register.ActWrite
		res.Tier[tier].Ops++
		if isWrite {
			res.Writes++
			res.Tier[tier].Writes++
		} else {
			res.Reads++
			res.Tier[tier].Reads++
		}
		if lerr == nil {
			rec.record(isWrite, tier, lat)
		}
		if pace > 0 {
			if rest := pace - time.Since(opStart); rest > 0 {
				time.Sleep(rest)
			}
		}
	}
	if !everUp {
		res.Errors++
	}
	return res
}
