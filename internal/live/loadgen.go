package live

import (
	"encoding/gob"
	"math/rand"
	"net"
	"sync"
	"time"

	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

// LoadConfig describes the closed-loop client population pscserve runs
// against the live register.
type LoadConfig struct {
	// Clients is the number of concurrent clients; client i drives node
	// i mod nodes.
	Clients int
	// Duration bounds the run in wall time.
	Duration time.Duration
	// Rate caps each client at this many operations per second (0 = as
	// fast as the closed loop allows). The cap is a pacing floor between
	// invocations, so the loop stays closed: no client ever has more than
	// one operation outstanding.
	Rate float64
	// WriteRatio is the probability an operation is a WRITE.
	WriteRatio float64
	// Seed derives per-client rngs; written values are unique per
	// execution (writer = client's node, per-client sequence), satisfying
	// the §3 uniqueness assumption.
	Seed int64
}

// LoadResult aggregates the load generator's view of a run.
type LoadResult struct {
	Ops, Reads, Writes int
	// ReadLat and WriteLat summarize client-observed latencies from a
	// seeded reservoir sample (percentiles over the full run in bounded
	// memory).
	ReadLat, WriteLat stats.Summary
	// Errors counts client-side failures (dial, encode, decode); a clean
	// run has zero.
	Errors int
}

// RunLoad drives the register server at addrs with closed-loop clients
// until the duration elapses, then waits for outstanding operations to
// complete. Each client owns one TCP connection.
func RunLoad(addrs []string, cfg LoadConfig) LoadResult {
	if cfg.Clients <= 0 {
		cfg.Clients = len(addrs)
	}
	var (
		mu       sync.Mutex
		agg      LoadResult
		readRes  = stats.NewReservoir(4096, cfg.Seed*7+1)
		writeRes = stats.NewReservoir(4096, cfg.Seed*7+2)
	)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := runClient(c, addrs[c%len(addrs)], ta.NodeID(c%len(addrs)), cfg, deadline, readRes, writeRes, &mu)
			mu.Lock()
			agg.Ops += res.Ops
			agg.Reads += res.Reads
			agg.Writes += res.Writes
			agg.Errors += res.Errors
			mu.Unlock()
		}()
	}
	wg.Wait()
	mu.Lock()
	agg.ReadLat = readRes.Summary()
	agg.WriteLat = writeRes.Summary()
	mu.Unlock()
	return agg
}

// runClient is one closed-loop client: invoke, wait for the response,
// pace, repeat until the deadline.
func runClient(id int, addr string, nodeID ta.NodeID, cfg LoadConfig, deadline time.Time, readRes, writeRes *stats.Reservoir, mu *sync.Mutex) LoadResult {
	var res LoadResult
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		res.Errors++
		return res
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	rng := rand.New(rand.NewSource(cfg.Seed*611953 + int64(id)))
	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(time.Second) / cfg.Rate)
	}
	wseq := 0
	for time.Now().Before(deadline) {
		opStart := time.Now()
		req := wireReq{Op: register.ActRead}
		if rng.Float64() < cfg.WriteRatio {
			req = wireReq{Op: register.ActWrite, Val: register.Value{Writer: nodeID, Seq: id*1_000_000 + wseq}}
			wseq++
		}
		if err := enc.Encode(req); err != nil {
			res.Errors++
			return res
		}
		var resp wireResp
		if err := dec.Decode(&resp); err != nil {
			res.Errors++
			return res
		}
		lat, lerr := simtime.FromWall(time.Since(opStart))
		res.Ops++
		mu.Lock()
		if req.Op == register.ActRead {
			res.Reads++
			if lerr == nil {
				readRes.Add(lat)
			}
		} else {
			res.Writes++
			if lerr == nil {
				writeRes.Add(lat)
			}
		}
		mu.Unlock()
		if pace > 0 {
			if rest := pace - time.Since(opStart); rest > 0 {
				time.Sleep(rest)
			}
		}
	}
	return res
}
