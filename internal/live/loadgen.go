package live

import (
	"bufio"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

// LoadConfig describes the client population pscserve runs against the
// live registers: closed-loop single-op-in-flight clients (Pipeline ≤ 1,
// the original generator) or open-loop pipelined clients that keep up to
// Pipeline operations in flight across zipf-distributed registers.
type LoadConfig struct {
	// Clients is the number of concurrent clients; client i drives node
	// i mod nodes.
	Clients int
	// Duration bounds the run in wall time.
	Duration time.Duration
	// Rate caps each client at this many operations per second (0 = as
	// fast as the loop allows). Closed-loop clients pace between
	// invocations, so no client ever has more than one operation
	// outstanding. Pipelined clients pace on an absolute open-loop
	// schedule: an op is issued at its scheduled instant whether or not
	// earlier ops have completed, up to the Pipeline bound.
	Rate float64
	// WriteRatio is the probability an operation is a WRITE.
	WriteRatio float64
	// Pipeline is the per-client bound on operations in flight. ≤ 1
	// selects the closed-loop client; K > 1 selects the pipelined client,
	// whose throughput scales as in-flight ops / per-op latency instead
	// of 1 / per-op latency.
	Pipeline int
	// Registers is the number of register instances the server hosts
	// (defaults to 1). Pipelined clients spread operations across them.
	Registers int
	// ZipfS and ZipfV shape the zipfian register-selection distribution
	// (P(k) ∝ 1/(v+k)^s). S ≤ 1 selects uniform; V defaults to
	// Registers/2, which flattens the head so the hottest register stays
	// under its per-key alternation throughput ceiling (≈ nodes /
	// per-op latency).
	ZipfS, ZipfV float64
	// Seed derives per-client rngs; written values are unique per
	// execution (writer = client's node, per-client sequence), satisfying
	// the §3 uniqueness assumption.
	Seed int64
	// Tiers is the per-register consistency tier map the server was
	// configured with (nil = all lin): clients stamp each read with its
	// register's tier byte, and latencies are additionally recorded into
	// per-tier reservoirs so the report can price the seq tier's read
	// discount against the lin tier on the same run.
	Tiers []register.Tier
	// Stop, when non-nil and closed, ends the run before Duration: clients
	// stop issuing, drain their in-flight tails, and return normal results.
	// This is how SIGINT/SIGTERM turns into a clean early report instead
	// of a torn-down one.
	Stop <-chan struct{}
}

// stopRequested reports whether the early-stop channel has closed.
func (cfg *LoadConfig) stopRequested() bool {
	if cfg.Stop == nil {
		return false
	}
	select {
	case <-cfg.Stop:
		return true
	default:
		return false
	}
}

// tierOf returns the register's configured tier.
func (cfg *LoadConfig) tierOf(reg int) register.Tier {
	if cfg.Tiers == nil {
		return register.TierLin
	}
	return cfg.Tiers[reg]
}

// TierLoad is one consistency tier's slice of a LoadResult.
type TierLoad struct {
	Ops, Reads, Writes int
	// ReadLat and WriteLat summarize this tier's client-observed latencies
	// from seeded reservoirs, alongside the aggregate ones.
	ReadLat, WriteLat stats.Summary
}

// LoadResult aggregates the load generator's view of a run.
type LoadResult struct {
	Ops, Reads, Writes int
	// ReadLat and WriteLat summarize client-observed latencies from a
	// seeded reservoir sample (percentiles over the full run in bounded
	// memory).
	ReadLat, WriteLat stats.Summary
	// Tier splits the run by consistency tier (indexed by register.Tier)
	// when cfg.Tiers was set; both entries are zero otherwise.
	Tier [2]TierLoad
	// PerReg counts completed operations per register instance (nil for
	// single-register runs).
	PerReg []int
	// Depth samples the pipelined clients' in-flight occupancy at each
	// issue instant; Depth.Mean() is the effective pipeline depth, the
	// concurrency term in ops/s ≈ depth × clients / latency.
	Depth stats.IntStream
	// Errors counts client-side failures (dial, encode, decode); a clean
	// run has zero.
	Errors int
}

// RunLoad drives the register server at addrs until the duration elapses,
// then waits for outstanding operations to complete. Each client owns one
// TCP connection; all its in-flight requests multiplex that connection
// tagged with correlation IDs.
func RunLoad(addrs []string, cfg LoadConfig) LoadResult {
	if cfg.Clients <= 0 {
		cfg.Clients = len(addrs)
	}
	if cfg.Registers <= 0 {
		cfg.Registers = 1
	}
	rec := &loadRecorders{
		read:  stats.NewReservoir(4096, cfg.Seed*7+1),
		write: stats.NewReservoir(4096, cfg.Seed*7+2),
	}
	if cfg.Tiers != nil {
		for t := range rec.tierRead {
			rec.tierRead[t] = stats.NewReservoir(4096, cfg.Seed*7+3+int64(t))
			rec.tierWrite[t] = stats.NewReservoir(4096, cfg.Seed*7+5+int64(t))
		}
	}
	var agg LoadResult
	agg.PerReg = make([]int, cfg.Registers)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			var res LoadResult
			if cfg.Pipeline > 1 {
				res = runPipelined(c, addrs[c%len(addrs)], ta.NodeID(c%len(addrs)), cfg, deadline, rec)
			} else {
				res = runClient(c, addrs[c%len(addrs)], ta.NodeID(c%len(addrs)), cfg, deadline, rec)
			}
			rec.mu.Lock()
			agg.Ops += res.Ops
			agg.Reads += res.Reads
			agg.Writes += res.Writes
			agg.Errors += res.Errors
			for t := range res.Tier {
				agg.Tier[t].Ops += res.Tier[t].Ops
				agg.Tier[t].Reads += res.Tier[t].Reads
				agg.Tier[t].Writes += res.Tier[t].Writes
			}
			for r, k := range res.PerReg {
				agg.PerReg[r] += k
			}
			agg.Depth.Merge(res.Depth)
			rec.mu.Unlock()
		}()
	}
	wg.Wait()
	rec.mu.Lock()
	agg.ReadLat = rec.read.Summary()
	agg.WriteLat = rec.write.Summary()
	if cfg.Tiers != nil {
		for t := range rec.tierRead {
			agg.Tier[t].ReadLat = rec.tierRead[t].Summary()
			agg.Tier[t].WriteLat = rec.tierWrite[t].Summary()
		}
	}
	rec.mu.Unlock()
	if cfg.Registers == 1 {
		agg.PerReg = nil
	}
	return agg
}

// loadRecorders is the clients' shared latency-recording state: the
// aggregate reservoirs, the per-tier reservoirs (allocated only when the
// run is tiered), and the mutex serializing them.
type loadRecorders struct {
	mu        sync.Mutex
	read      *stats.Reservoir
	write     *stats.Reservoir
	tierRead  [2]*stats.Reservoir
	tierWrite [2]*stats.Reservoir
}

// record files one completed operation's latency under the lock.
func (rec *loadRecorders) record(write bool, tier register.Tier, lat simtime.Duration) {
	rec.mu.Lock()
	if write {
		rec.write.Add(lat)
		if rec.tierWrite[tier] != nil {
			rec.tierWrite[tier].Add(lat)
		}
	} else {
		rec.read.Add(lat)
		if rec.tierRead[tier] != nil {
			rec.tierRead[tier].Add(lat)
		}
	}
	rec.mu.Unlock()
}

// runClient is one closed-loop client: invoke, wait for the response,
// pace, repeat until the deadline. Multi-register configurations spread
// operations uniformly across the instances (one at a time — the loop is
// closed), so tiered latency comparisons sample every register.
func runClient(id int, addr string, nodeID ta.NodeID, cfg LoadConfig, deadline time.Time, rec *loadRecorders) LoadResult {
	var res LoadResult
	res.PerReg = make([]int, cfg.Registers)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		res.Errors++
		return res
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 4096)
	var sbuf []byte
	rng := rand.New(rand.NewSource(cfg.Seed*611953 + int64(id)))
	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(time.Second) / cfg.Rate)
	}
	wseq := 0
	for time.Now().Before(deadline) && !cfg.stopRequested() {
		opStart := time.Now()
		reg := 0
		if cfg.Registers > 1 {
			reg = rng.Intn(cfg.Registers)
		}
		tier := cfg.tierOf(reg)
		req := wireReq{Reg: reg, Op: register.ActRead, Tier: tier}
		if rng.Float64() < cfg.WriteRatio {
			req = wireReq{Reg: reg, Op: register.ActWrite, Val: register.Value{Writer: nodeID, Seq: id*1_000_000 + wseq}}
			wseq++
		}
		sbuf = appendWireReq(sbuf[:0], req)
		if _, err := conn.Write(sbuf); err != nil {
			res.Errors++
			return res
		}
		if _, err := readWireResp(br); err != nil {
			res.Errors++
			return res
		}
		lat, lerr := simtime.FromWall(time.Since(opStart))
		res.Ops++
		res.PerReg[reg]++
		isWrite := req.Op == register.ActWrite
		res.Tier[tier].Ops++
		if isWrite {
			res.Writes++
			res.Tier[tier].Writes++
		} else {
			res.Reads++
			res.Tier[tier].Reads++
		}
		if lerr == nil {
			rec.record(isWrite, tier, lat)
		}
		if pace > 0 {
			if rest := pace - time.Since(opStart); rest > 0 {
				time.Sleep(rest)
			}
		}
	}
	return res
}

// pendingOp is one issued-but-unanswered pipelined request.
type pendingOp struct {
	start time.Time
	write bool
	reg   int
	tier  register.Tier
}

// runPipelined is one open-loop pipelined client: a sender that issues
// requests on an absolute schedule (or as fast as the pipeline bound
// allows) across zipf-selected registers, and a receiver that matches
// responses by correlation ID. Throughput comes from overlap: with K ops
// in flight at mean latency L the client completes ≈ K/L ops per second,
// while each individual port still sees at most one outstanding op (the
// server's alternation discipline).
func runPipelined(id int, addr string, nodeID ta.NodeID, cfg LoadConfig, deadline time.Time, rec *loadRecorders) LoadResult {
	var res LoadResult
	res.PerReg = make([]int, cfg.Registers)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		res.Errors++
		return res
	}
	defer conn.Close()

	var (
		pmu     sync.Mutex
		pending = make(map[uint64]pendingOp, cfg.Pipeline)
		sent    atomic.Int64
		done    = make(chan struct{}) // sender finished; sent is final
		rdead   = make(chan struct{}) // receiver exited (error path)
		recvErr atomic.Int64
		sem     = make(chan struct{}, cfg.Pipeline)
	)

	// Receiver: match responses to pending ops, record latencies.
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		defer close(rdead)
		br := bufio.NewReaderSize(conn, 16<<10)
		received := int64(0)
		for {
			resp, err := readWireResp(br)
			if err != nil {
				// The sender unblocks this decode with an expired read
				// deadline once the drain is complete; any other failure
				// is a real error.
				select {
				case <-done:
					if received >= sent.Load() {
						return
					}
				default:
				}
				recvErr.Add(1)
				return
			}
			received++
			pmu.Lock()
			op, ok := pending[resp.ID]
			if ok {
				delete(pending, resp.ID)
			}
			pmu.Unlock()
			// Every response answers one sent request; free its slot.
			select {
			case <-sem:
			default:
			}
			if !ok {
				continue
			}
			lat, lerr := simtime.FromWall(time.Since(op.start))
			res.Ops++
			res.PerReg[op.reg]++
			res.Tier[op.tier].Ops++
			if op.write {
				res.Writes++
				res.Tier[op.tier].Writes++
			} else {
				res.Reads++
				res.Tier[op.tier].Reads++
			}
			if lerr == nil {
				rec.record(op.write, op.tier, lat)
			}
			select {
			case <-done:
				if received >= sent.Load() {
					return
				}
			default:
			}
		}
	}()

	// Sender: issue on schedule up to the pipeline bound. Requests buffer
	// in bw and flush only when the sender is about to block (pipeline
	// full, pacing sleep, or shutdown), so a burst of issues costs one
	// write syscall; the flush-before-block ordering makes the buffer
	// deadlock-free — nothing ever waits on a request still sitting in it.
	bw := bufio.NewWriterSize(conn, 16<<10)
	var sbuf []byte
	rng := rand.New(rand.NewSource(cfg.Seed*611953 + int64(id)))
	var zipf *rand.Zipf
	if cfg.Registers > 1 && cfg.ZipfS > 1 {
		v := cfg.ZipfV
		if v < 1 {
			v = float64(cfg.Registers) / 2
			if v < 1 {
				v = 1
			}
		}
		zipf = rand.NewZipf(rng, cfg.ZipfS, v, uint64(cfg.Registers-1))
	}
	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(time.Second) / cfg.Rate)
	}
	next := time.Now()
	wseq := 0
	var reqID uint64
	for time.Now().Before(deadline) && !cfg.stopRequested() {
		// Bound the pipeline; bail out if the receiver died (nothing will
		// ever free a slot again).
		select {
		case sem <- struct{}{}:
		default:
			if err := bw.Flush(); err != nil {
				res.Errors++
				close(done)
				conn.SetReadDeadline(time.Now())
				rwg.Wait()
				return res
			}
			select {
			case sem <- struct{}{}:
			case <-rdead:
				close(done)
				rwg.Wait()
				res.Errors += int(recvErr.Load())
				return res
			}
		}
		if pace > 0 {
			if rest := time.Until(next); rest > 0 {
				if err := bw.Flush(); err != nil {
					res.Errors++
					break
				}
				time.Sleep(rest)
			}
			next = next.Add(pace)
		}
		reg := 0
		if cfg.Registers > 1 {
			if zipf != nil {
				reg = int(zipf.Uint64())
			} else {
				reg = rng.Intn(cfg.Registers)
			}
		}
		reqID++
		tier := cfg.tierOf(reg)
		req := wireReq{ID: reqID, Reg: reg, Op: register.ActRead, Tier: tier}
		isWrite := rng.Float64() < cfg.WriteRatio
		if isWrite {
			req.Op = register.ActWrite
			req.Val = register.Value{Writer: nodeID, Seq: id*1_000_000 + wseq}
			wseq++
		}
		pmu.Lock()
		res.Depth.Add(len(pending))
		pending[reqID] = pendingOp{start: time.Now(), write: isWrite, reg: reg, tier: tier}
		pmu.Unlock()
		sbuf = appendWireReq(sbuf[:0], req)
		if _, err := bw.Write(sbuf); err != nil {
			pmu.Lock()
			delete(pending, reqID)
			pmu.Unlock()
			res.Errors++
			break
		}
		sent.Add(1)
	}
	if err := bw.Flush(); err != nil {
		res.Errors++
	}
	close(done)
	// Drain: wait for the in-flight tail to complete (bounded so a lost
	// response cannot hang the client), then expire the read deadline so
	// an idle receiver's blocked Decode returns.
	drainUntil := time.Now().Add(10 * time.Second)
	for time.Now().Before(drainUntil) {
		pmu.Lock()
		n := len(pending)
		pmu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-rdead:
			n = 0
		case <-time.After(time.Millisecond):
		}
		if n == 0 {
			break
		}
	}
	conn.SetReadDeadline(time.Now())
	rwg.Wait()
	res.Errors += int(recvErr.Load())
	return res
}
