package live

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

// ellBudget is the timer-service lateness budget ℓ the runtime reports
// against (report-only; the measured maximum shows whether it held).
const ellBudget = 5 * ms

// widenSlack is the real-scheduling slack the online check budgets beyond
// ε. Algorithm S already pays for clock uncertainty (reads cost 2ε+c+δ),
// so the check's Widen only needs ε plus the slop live execution adds:
// late timer wakeups shifting update application and samples. Kept small
// on purpose — the checker's frontier is exponential in window overlap,
// so widening must stay below the op spacing.
const widenSlack = 800 * us

// checkWiden is the window relaxation the gating check grants: ε plus the
// scheduling slack, stretched under the race detector.
func checkWiden(eps simtime.Duration) simtime.Duration {
	return eps + widenSlack*raceScale
}

// think sleeps a client between operations; see driveRegister.
func think(rng *rand.Rand) {
	time.Sleep(time.Duration(800+rng.Intn(1000)) * time.Microsecond * raceScale)
}

// liveParams are the register parameters the live tests run: designed
// link bounds [0, d2] widened to d'2 = d2 + 2ε per Theorem 4.7.
func liveParams(eps, d2 simtime.Duration) (register.Params, simtime.Interval) {
	bounds := simtime.NewInterval(0, d2)
	return register.Params{C: 0, Delta: 100 * us, D2: d2 + 2*eps, Epsilon: eps}, bounds
}

// driveRegister runs the transformed register S^c on a live runtime under
// closed-loop clients (one per node, alternation by construction) and
// returns the monitor and measured bounds. totalOps is split across nodes.
func driveRegister(t *testing.T, tr Transport, cf clock.Factory, nodes, totalOps int, eps, d2 simtime.Duration) (*register.Monitor, Measured) {
	t.Helper()
	p, bounds := liveParams(eps, d2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	mon := register.NewMonitor()
	mon.AddCheck("live", linearize.Options{
		Initial:      register.Initial.String(),
		Widen:        checkWiden(eps),
		AssumeUnique: true,
		MaxStates:    32 << 20,
	})
	rt, err := New(Options{
		N:         nodes,
		Bounds:    bounds,
		Ell:       ellBudget,
		Clocks:    cf,
		Transport: tr,
	}, register.Factory(register.NewS, p))
	if err != nil {
		t.Fatal(err)
	}
	rt.AddSink(mon)

	resp := make([]chan struct{}, nodes)
	for i := range resp {
		resp[i] = make(chan struct{}, 1)
	}
	rt.OnOutput(func(n ta.NodeID, _ int, name string, _ any) {
		if name == register.ActReturn || name == register.ActAck {
			select {
			case resp[n] <- struct{}{}:
			default:
			}
		}
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	perClient := totalOps / nodes
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(41 + int64(i)))
			for k := 0; k < perClient; k++ {
				var payload any
				op := register.ActRead
				if rng.Float64() < 0.10 {
					op = register.ActWrite
					payload = register.Value{Writer: ta.NodeID(i), Seq: k}
				}
				if err := rt.Invoke(ta.NodeID(i), op, payload); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				select {
				case <-resp[i]:
				case <-time.After(10 * time.Second):
					t.Errorf("client %d: no response to op %d", i, k)
					return
				}
				// Think time keeps op spacing above the check's Widen so the
				// frontier's window overlap — and with it the state count —
				// stays bounded; the loop remains closed.
				think(rng)
			}
		}()
	}
	wg.Wait()
	m := rt.Stop()
	return mon, m
}

func opsFor(t *testing.T, full int) int {
	if testing.Short() {
		return full / 8
	}
	return full
}

// TestLiveRegisterPerfectClock is half of the headline acceptance run: a
// loopback execution of ≥ 10^4 operations with zero online
// linearizability violations under perfect clocks.
func TestLiveRegisterPerfectClock(t *testing.T) {
	total := opsFor(t, 10_000)
	mon, m := driveRegister(t, nil, clock.PerfectFactory(), 4, total, 200*us, 2*ms)
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	res := mon.Verdict("live")
	if !res.OK {
		t.Fatalf("online linearizability violated: %s", res.Reason)
	}
	t.Logf("ops=%d states=%d measured ε=%v timer-late=%v delay=[%v,%v]",
		mon.Reads.N+mon.Writes.N, res.States, m.Eps, m.TimerLate, m.DelayMin, m.DelayMax)
	if got := mon.Reads.N + mon.Writes.N; got < total-8 {
		t.Fatalf("completed %d ops, want ≥ %d", got, total-8)
	}
	if m.Eps != 0 {
		t.Fatalf("perfect clocks measured ε = %v, want 0", m.Eps)
	}
	if m.Messages == 0 || m.DelayMax == 0 {
		t.Fatalf("no delays measured: %+v", m)
	}
}

// TestLiveRegisterFixedOffsetClock is the other half: the same run under
// the maximal fixed-skew adversary (even nodes +ε, odd nodes −ε).
func TestLiveRegisterFixedOffsetClock(t *testing.T) {
	eps := 200 * us
	total := opsFor(t, 10_000)
	mon, m := driveRegister(t, nil, clock.SpreadFactory(eps), 4, total, eps, 2*ms)
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if res := mon.Verdict("live"); !res.OK {
		t.Fatalf("online linearizability violated: %s", res.Reason)
	}
	if m.Eps > eps {
		t.Fatalf("measured ε = %v exceeds configured %v", m.Eps, eps)
	}
	// Skewed clocks must actually exercise the receive buffer: a fast
	// sender's tag runs ahead of a slow receiver's clock.
	if m.Held == 0 {
		t.Fatal("fixed-offset run never held a delivery; R_ji,ε untested")
	}
}

// TestLiveRegisterJitterClock checks the drift adversary: violation-free
// whenever the measured offset stays within the configured ε (which the
// model construction guarantees, and the run verifies).
func TestLiveRegisterJitterClock(t *testing.T) {
	eps := 200 * us
	mon, m := driveRegister(t, nil, clock.DriftFactory(eps, 11), 4, opsFor(t, 3_000), eps, 2*ms)
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if m.Eps > eps {
		t.Fatalf("measured ε = %v exceeds configured %v", m.Eps, eps)
	}
	if res := mon.Verdict("live"); !res.OK {
		t.Fatalf("measured offset %v ≤ ε %v yet linearizability violated: %s", m.Eps, eps, res.Reason)
	}
}

// TestLiveRegisterTCP runs the register over the length-prefixed TCP
// transport: same algorithm, same checks, real sockets.
func TestLiveRegisterTCP(t *testing.T) {
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	eps := 200 * us
	mon, m := driveRegister(t, tr, clock.DriftFactory(eps, 3), 3, opsFor(t, 1_200), eps, 10*ms)
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if res := mon.Verdict("live"); !res.OK {
		t.Fatalf("online linearizability violated over TCP: %s", res.Reason)
	}
	if m.Messages == 0 {
		t.Fatal("no messages crossed the TCP transport")
	}
}

// TestSameProgramBothWorlds is the no-fork criterion: one
// register.Factory value runs under the simulator (core.BuildClocked +
// exec) and under the live runtime, and both executions linearize.
func TestSameProgramBothWorlds(t *testing.T) {
	eps := 200 * us
	p, bounds := liveParams(eps, 2*ms)
	factory := register.Factory(register.NewS, p)

	// Simulated world.
	net := core.BuildClocked(core.Config{N: 3, Bounds: bounds, Seed: 7, Clocks: clock.DriftFactory(eps, 7)}, factory)
	clients := workload.Attach(net, workload.Config{Ops: 12, Think: simtime.NewInterval(0, ms), WriteRatio: 0.3, Seed: 9})
	if _, err := net.Sys.RunQuiet(simtime.Time(60 * simtime.Second)); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if c.Done != 12 {
			t.Fatalf("sim client %s finished %d/12 ops", c.Name(), c.Done)
		}
	}
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	if res := linearize.CheckLinearizable(ops, register.Initial.String()); !res.OK {
		t.Fatalf("simulated run not linearizable: %s", res.Reason)
	}

	// Live world — the same factory value, no algorithm-code fork.
	mon, _ := driveRegister(t, nil, clock.DriftFactory(eps, 7), 3, 120, eps, 2*ms)
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if res := mon.Verdict("live"); !res.OK {
		t.Fatalf("live run not linearizable: %s", res.Reason)
	}
}

// eventSink captures the observable stream for assertions. The recorder
// serializes Observe; the mutex covers the test goroutine's reads.
type eventSink struct {
	mu     sync.Mutex
	events []ta.Event
}

func (s *eventSink) Observe(e ta.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *eventSink) Flush(simtime.Time) {}

func (s *eventSink) named(name string) []ta.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ta.Event
	for _, e := range s.events {
		if e.Action.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// TestLiveDetector runs the §1/E15 heartbeat failure detector live: node 0
// sends three heartbeats and goes silent; with the clock-model-safe
// timeout (plus a real-scheduling margin) the peers suspect node 0 and
// nobody else, and never restore it.
func TestLiveDetector(t *testing.T) {
	eps := 200 * us
	period := 20 * ms
	bounds := simtime.NewInterval(0, 5*ms)
	timeout := detector.SafeTimeoutClock(period, bounds, eps) + 2*ellBudget
	factory := func(id ta.NodeID, n int) core.Algorithm {
		p := detector.Params{Period: period, Timeout: timeout}
		if id == 0 {
			p.Heartbeats = 3
		}
		return detector.New(p)
	}
	sink := &eventSink{}
	rt, err := New(Options{N: 3, Bounds: bounds, Ell: ellBudget, Clocks: clock.DriftFactory(eps, 5)}, factory)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddSink(sink)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Node 0 beats at 0, π, 2π then stops; peers time out one period plus
	// timeout later. Poll rather than sleep a worst case.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(sink.named(detector.ActSuspect)) >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := rt.Stop()
	suspects := sink.named(detector.ActSuspect)
	if len(suspects) < 2 {
		t.Fatalf("got %d suspicions, want 2 (both peers suspect node 0)", len(suspects))
	}
	by := map[ta.NodeID]bool{}
	for _, e := range suspects {
		if of := e.Action.Payload.(ta.NodeID); of != 0 {
			t.Fatalf("node %v falsely suspected live node %v", e.Action.Node, of)
		}
		by[e.Action.Node] = true
	}
	if !by[1] || !by[2] {
		t.Fatalf("suspicions came from %v, want both n1 and n2", by)
	}
	if restores := sink.named(detector.ActRestore); len(restores) != 0 {
		t.Fatalf("dead node restored: %v", restores)
	}
	if m.Eps > eps {
		t.Fatalf("measured ε = %v exceeds configured %v", m.Eps, eps)
	}
}

// TestServerLoadGen exercises the full pscserve path in-process: TCP
// client ingress, closed-loop load generation, online monitoring.
func TestServerLoadGen(t *testing.T) {
	eps := 200 * us
	p, bounds := liveParams(eps, 2*ms)
	mon := register.NewMonitor()
	mon.AddCheck("live", linearize.Options{
		Initial:      register.Initial.String(),
		Widen:        checkWiden(eps),
		AssumeUnique: true,
	})
	rt, err := New(Options{N: 3, Bounds: bounds, Ell: ellBudget, Clocks: clock.SpreadFactory(eps)}, register.Factory(register.NewS, p))
	if err != nil {
		t.Fatal(err)
	}
	rt.AddSink(mon)
	srv, err := NewServer(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	res := RunLoad(srv.Addrs(), LoadConfig{
		Clients:    3,
		Duration:   400 * time.Millisecond,
		Rate:       250 / float64(raceScale), // paced: keeps op spacing above the check's Widen
		WriteRatio: 0.15,
		Seed:       1,
	})
	srv.Close()
	rt.Stop()
	if res.Errors != 0 {
		t.Fatalf("load generator saw %d errors", res.Errors)
	}
	if res.Ops == 0 {
		t.Fatal("load generator completed no operations")
	}
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if v := mon.Verdict("live"); !v.OK {
		t.Fatalf("online linearizability violated under served load: %s", v.Reason)
	}
	if got := mon.Reads.N + mon.Writes.N; got != res.Ops {
		t.Fatalf("monitor completed %d ops, load generator %d", got, res.Ops)
	}
}
