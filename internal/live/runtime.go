package live

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Options configures a live runtime.
type Options struct {
	// N is the number of nodes; the graph is the complete directed graph
	// including self-loops, matching the simulator's default (the register
	// algorithms broadcast to themselves).
	N int
	// Bounds is the designed link delay interval [d1, d2]. The transport
	// is loopback, so d2 is a budget, not a guarantee: deliveries are held
	// until d1 (enforcement of the lower bound) and counted as violations
	// past d2 (the upper bound can only be measured). Zero means [0, ∞).
	Bounds simtime.Interval
	// Ell is the timer-service budget ℓ: the runtime services timers with
	// real goroutine wakeups, so a deadline may be observed up to
	// scheduling latency late — the live analogue of the MMT boundmap
	// [0, ℓ]. The measured maximum lateness is reported so monitoring can
	// check the budget held. Zero means "don't care" (report-only).
	Ell simtime.Duration
	// Clocks supplies each node's clock model; defaults to perfect clocks.
	// The runtime wraps each model in a ModelClock anchored at its epoch.
	Clocks clock.Factory
	// Transport moves frames; defaults to an in-process ChanTransport.
	Transport Transport
	// InboxDepth is each node's queue depth (≤ 0 selects the default).
	InboxDepth int
}

// Measured is what the runtime observed over a run: the quantities the
// simulator gets to assume and the live world has to measure.
type Measured struct {
	// Eps is the largest |clock − real| any node's clock served: the
	// measured ε bound.
	Eps simtime.Duration
	// TimerLate is the largest timer service lateness observed: the
	// measured ℓ.
	TimerLate simtime.Duration
	// DelayMin and DelayMax bound the observed per-message delays: the
	// effective [d1, d2] of the live links.
	DelayMin, DelayMax simtime.Duration
	// DelayViolations counts messages delivered later than Bounds.Hi.
	DelayViolations int
	// Messages counts frames sent; Held counts deliveries the receive
	// buffer R_ji,ε postponed because the tag was ahead of the local clock.
	Messages, Held int
}

// Runtime hosts N copies of a core.Algorithm on wall-clock time: one
// goroutine per node owning the algorithm instance, its clock, and its
// timer queue (the same core.TimerQueue the simulator's engine drains, so
// timers fire in the same (deadline, registration) order in both worlds).
// Messages are tagged with the sender's clock and held at the receiver
// until its clock reaches the tag — the send/receive buffers S_ij,ε and
// R_ji,ε of Figure 2, realized on real time.
type Runtime struct {
	opts    Options
	factory core.AlgorithmFactory

	sinks    []exec.Sink
	onOutput func(node ta.NodeID, name string, payload any)

	epoch     time.Time
	rec       *recorder
	nodes     []*node
	transport Transport
	stop      chan struct{}
	wg        sync.WaitGroup

	mu       sync.Mutex
	started  bool
	stopped  bool
	measured Measured

	msgs       atomic.Int64
	held       atomic.Int64
	delayMin   atomic.Int64
	delayMax   atomic.Int64
	delayViols atomic.Int64
	timerLate  atomic.Int64
}

// New validates the options and returns an unstarted runtime.
func New(opts Options, f core.AlgorithmFactory) (*Runtime, error) {
	if opts.N < 1 {
		return nil, fmt.Errorf("live: need at least one node, got %d", opts.N)
	}
	if opts.Clocks == nil {
		opts.Clocks = clock.PerfectFactory()
	}
	if opts.Transport == nil {
		opts.Transport = NewChanTransport(0)
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = 4096
	}
	if opts.Bounds == (simtime.Interval{}) {
		opts.Bounds = simtime.Interval{Lo: 0, Hi: simtime.Forever}
	}
	rt := &Runtime{
		opts:      opts,
		factory:   f,
		transport: opts.Transport,
		stop:      make(chan struct{}),
	}
	rt.delayMin.Store(math.MaxInt64)
	return rt, nil
}

// AddSink registers an exec.Sink over the runtime's observable event
// stream (environment invocations and responses, with the message
// interface hidden — the same projection the simulator's sinks see).
// Must be called before Start.
func (rt *Runtime) AddSink(s exec.Sink) { rt.sinks = append(rt.sinks, s) }

// OnOutput registers a callback invoked after each environment response is
// recorded, from the emitting node's goroutine. The callback must not
// block and must not synchronously re-enter Invoke for the same node (hand
// the response to another goroutine; see Server and LoadGen). Must be
// called before Start.
func (rt *Runtime) OnOutput(fn func(node ta.NodeID, name string, payload any)) {
	rt.onOutput = fn
}

// Start anchors the epoch, builds the per-node clocks and algorithm
// instances, and launches the node loops.
func (rt *Runtime) Start() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return fmt.Errorf("live: runtime already started")
	}
	rt.started = true
	rt.epoch = time.Now()
	rt.rec = newRecorder(rt.epoch, rt.sinks)
	rt.nodes = make([]*node, rt.opts.N)
	for i := 0; i < rt.opts.N; i++ {
		rt.nodes[i] = &node{
			id:    ta.NodeID(i),
			rt:    rt,
			alg:   rt.factory(ta.NodeID(i), rt.opts.N),
			clk:   NewModelClock(rt.opts.Clocks(i), rt.epoch),
			inbox: make(chan nodeMsg, rt.opts.InboxDepth),
		}
	}
	if err := rt.transport.Start(rt.deliverFrame); err != nil {
		return fmt.Errorf("live: transport start: %w", err)
	}
	for _, n := range rt.nodes {
		rt.wg.Add(1)
		go n.loop()
	}
	return nil
}

// Invoke injects an environment invocation at the given node, recording it
// at ingress — the instant the external observer of the §6.1 conditions
// sees it. Safe for concurrent use.
func (rt *Runtime) Invoke(nodeID ta.NodeID, name string, payload any) error {
	if int(nodeID) < 0 || int(nodeID) >= len(rt.nodes) {
		return fmt.Errorf("live: invoke at unknown node %v", nodeID)
	}
	select {
	case <-rt.stop:
		return fmt.Errorf("live: runtime stopped")
	default:
	}
	rt.rec.record(ta.Action{
		Name: name, Node: nodeID, Peer: ta.NoNode,
		Kind: ta.KindInput, Payload: payload,
	}, "env")
	select {
	case rt.nodes[nodeID].inbox <- nodeMsg{invName: name, invPayload: payload, inv: true}:
		return nil
	case <-rt.stop:
		return fmt.Errorf("live: runtime stopped")
	}
}

// Clock returns node i's live clock (for tests and reports).
func (rt *Runtime) Clock(i int) Clock { return rt.nodes[i].clk }

// Stop shuts the runtime down — node loops, then transport, then a final
// sink flush — and returns the measured bounds. Idempotent.
func (rt *Runtime) Stop() Measured {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.started || rt.stopped {
		return rt.measured
	}
	rt.stopped = true
	close(rt.stop)
	rt.wg.Wait()
	rt.transport.Close()
	rt.rec.flush()

	m := Measured{
		TimerLate:       simtime.Duration(rt.timerLate.Load()),
		DelayMax:        simtime.Duration(rt.delayMax.Load()),
		DelayViolations: int(rt.delayViols.Load()),
		Messages:        int(rt.msgs.Load()),
		Held:            int(rt.held.Load()),
	}
	if lo := rt.delayMin.Load(); lo != math.MaxInt64 {
		m.DelayMin = simtime.Duration(lo)
	}
	for _, n := range rt.nodes {
		if b := n.clk.OffsetBound(); b > m.Eps {
			m.Eps = b
		}
	}
	rt.measured = m
	return m
}

// elapsed returns real time since the epoch as a simulated instant.
func (rt *Runtime) elapsed() simtime.Time {
	t, err := simtime.TimeFromWall(time.Since(rt.epoch))
	if err != nil {
		return simtime.Zero
	}
	return t
}

// deliverFrame is the transport's delivery callback: enforce the designed
// lower delay bound d1 (loopback is faster than any designed network), then
// measure and enqueue. Safe for concurrent use.
func (rt *Runtime) deliverFrame(f Frame) {
	if lo := rt.opts.Bounds.Lo; lo > 0 {
		if raw := rt.elapsed().Sub(f.SentReal); raw < lo {
			if wait, err := simtime.ToWall(lo - raw); err == nil && wait > 0 {
				time.AfterFunc(wait, func() { rt.enqueueFrame(f) })
				return
			}
		}
	}
	rt.enqueueFrame(f)
}

// enqueueFrame records the delay the receiver actually experiences and
// hands the frame to the destination's loop.
func (rt *Runtime) enqueueFrame(f Frame) {
	if int(f.To) < 0 || int(f.To) >= len(rt.nodes) {
		return
	}
	d := rt.elapsed().Sub(f.SentReal)
	atomicMin(&rt.delayMin, int64(d))
	atomicMax(&rt.delayMax, int64(d))
	if hi := rt.opts.Bounds.Hi; hi != simtime.Forever && d > hi {
		rt.delayViols.Add(1)
	}
	select {
	case rt.nodes[f.To].inbox <- nodeMsg{frame: f}:
	case <-rt.stop:
		// Shutdown: the receiver's loop has exited; the frame is dropped,
		// which only a stopping run produces.
	}
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// nodeMsg is one inbox entry: a network frame or an environment invocation.
type nodeMsg struct {
	frame      Frame
	inv        bool
	invName    string
	invPayload any
}

// heldFrame is the timer key the receive buffer R_ji,ε uses to postpone a
// delivery until the local clock reaches the sender's tag. It is node-
// internal: the loop intercepts it before OnTimer, so algorithm keys and
// hold keys share the queue without colliding.
type heldFrame struct{ f Frame }

// node is one live node: algorithm, clock, timer queue, inbox, and the
// core.Context the algorithm sees during callbacks. All fields are owned
// by the node's goroutine after Start.
type node struct {
	id    ta.NodeID
	rt    *Runtime
	alg   core.Algorithm
	clk   Clock
	inbox chan nodeMsg

	timers core.TimerQueue

	// last keeps the algorithm's observed time monotone, exactly like the
	// simulator engine's high-water mark: a timer serviced late still
	// observes its scheduled deadline, but never earlier than a previously
	// observed instant.
	last simtime.Time
	now  simtime.Time
}

var _ core.Context = (*node)(nil)

func (n *node) loop() {
	defer n.rt.wg.Done()
	n.callback(n.clk.Now(), func() { n.alg.Start(n) })
	for {
		n.fireDue()
		var timerC <-chan time.Time
		var tm *time.Timer
		if at, ok := n.timers.Next(); ok {
			wait := n.clk.WaitUntil(at)
			if wait <= 0 {
				// Became due between fireDue and here; fire it.
				continue
			}
			tm = time.NewTimer(wait)
			timerC = tm.C
		}
		select {
		case m := <-n.inbox:
			n.handle(m)
		case <-timerC:
			// fireDue at the top of the loop services it.
		case <-n.rt.stop:
			if tm != nil {
				tm.Stop()
			}
			return
		}
		if tm != nil {
			tm.Stop()
		}
	}
}

// fireDue services, in (deadline, registration) order, every queue entry
// whose deadline the local clock has reached. Callbacks observe Time()
// equal to their scheduled deadline clamped monotone — the same semantics
// as the simulator engine's advance (and Definition 5.1's catch-up): the
// action happened at its scheduled clock value even when the goroutine
// woke late, and the tags on any messages it sends must say so.
func (n *node) fireDue() {
	for {
		at, ok := n.timers.Next()
		if !ok {
			return
		}
		nowClk := n.clk.Now()
		if at.After(nowClk) {
			return
		}
		entry := n.timers.Pop()
		if late := nowClk.Sub(entry.At); late > 0 {
			atomicMax(&n.rt.timerLate, int64(late))
		}
		if hf, ok := entry.Key.(heldFrame); ok {
			n.callback(entry.At, func() { n.alg.OnMessage(n, hf.f.From, hf.f.Body) })
			continue
		}
		n.callback(entry.At, func() { n.alg.OnTimer(n, entry.Key) })
	}
}

func (n *node) handle(m nodeMsg) {
	if m.inv {
		n.callback(n.clk.Now(), func() { n.alg.OnInput(n, m.invName, m.invPayload) })
		return
	}
	f := m.frame
	c := n.clk.Now()
	if f.SentClock.After(c) {
		// Receive buffer R_ji,ε: the tag is ahead of the local clock; hold
		// the delivery until the clock reaches it.
		n.timers.Push(f.SentClock, heldFrame{f: f})
		n.rt.held.Add(1)
		return
	}
	n.callback(c, func() { n.alg.OnMessage(n, f.From, f.Body) })
}

// callback runs fn with the context's clock set to t clamped monotone.
func (n *node) callback(t simtime.Time, fn func()) {
	if t.Before(n.last) {
		t = n.last
	}
	n.last = t
	n.now = t
	fn()
}

// core.Context implementation — valid only during callbacks, like the
// simulator engine's.

func (n *node) Time() simtime.Time { return n.now }
func (n *node) ID() ta.NodeID      { return n.id }
func (n *node) N() int             { return n.rt.opts.N }

func (n *node) Neighbors() []ta.NodeID {
	out := make([]ta.NodeID, n.rt.opts.N)
	for i := range out {
		out[i] = ta.NodeID(i)
	}
	return out
}

func (n *node) Send(to ta.NodeID, body any) {
	if int(to) < 0 || int(to) >= n.rt.opts.N {
		panic(fmt.Sprintf("live: node %v sent to %v with no edge e_{%v,%v} (§3.1 signature restriction)", n.id, to, n.id, to))
	}
	f := Frame{
		From:      n.id,
		To:        to,
		SentClock: n.now,
		SentReal:  n.rt.elapsed(),
		Body:      body,
	}
	n.rt.msgs.Add(1)
	// Send errors surface only at shutdown (closed transport) or under
	// overload (full outbound queue); either way the message is lost,
	// matching a crashed link — the monitor will say so if it matters.
	_ = n.rt.transport.Send(f)
}

func (n *node) Broadcast(body any) {
	for j := 0; j < n.rt.opts.N; j++ {
		n.Send(ta.NodeID(j), body)
	}
}

func (n *node) Output(name string, payload any) {
	n.rt.rec.record(ta.Action{
		Name: name, Node: n.id, Peer: ta.NoNode,
		Kind: ta.KindOutput, Payload: payload,
	}, fmt.Sprintf("live(%v)", n.id))
	if n.rt.onOutput != nil {
		n.rt.onOutput(n.id, name, payload)
	}
}

func (n *node) SetTimer(at simtime.Time, key any) {
	n.timers.Push(at, key)
}
