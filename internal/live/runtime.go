package live

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Options configures a live runtime.
type Options struct {
	// N is the number of nodes; the graph is the complete directed graph
	// including self-loops, matching the simulator's default (the register
	// algorithms broadcast to themselves).
	N int
	// Registers is the number of independent algorithm instances each node
	// hosts (≤ 0 selects 1). Every instance is the unmodified node program;
	// instance r on node i is the runtime's port r·N + i, and all R
	// instances on a node share its clock, its goroutine, and its
	// transport connections — the first step toward the keyed-store
	// roadmap item, where each key is an independent S^c register. Frames
	// carry the instance index as a logical channel (Frame.Chan), so the
	// paper's per-link tagging and holding applies per logical channel
	// over the shared physical link.
	Registers int
	// Bounds is the designed link delay interval [d1, d2]. The transport
	// is loopback, so d2 is a budget, not a guarantee: deliveries are held
	// until d1 (enforcement of the lower bound) and counted as violations
	// past d2 (the upper bound can only be measured). Zero means [0, ∞).
	Bounds simtime.Interval
	// Ell is the timer-service budget ℓ: the runtime services timers with
	// real goroutine wakeups, so a deadline may be observed up to
	// scheduling latency late — the live analogue of the MMT boundmap
	// [0, ℓ]. The measured maximum lateness is reported so monitoring can
	// check the budget held. Zero means "don't care" (report-only).
	Ell simtime.Duration
	// Clocks supplies each node's clock model; defaults to perfect clocks.
	// The runtime wraps each model in a ModelClock anchored at its epoch.
	Clocks clock.Factory
	// Transport moves frames; defaults to an in-process ChanTransport.
	Transport Transport
	// InboxDepth is each node's queue depth (≤ 0 selects the default).
	InboxDepth int

	// Local lists the node IDs this process hosts; nil hosts all N (the
	// single-process runtimes of pscserve). A fleet daemon hosts exactly
	// one: frames for remote nodes cross its Transport (a MeshTransport),
	// and inbound frames for nodes it does not host are dropped.
	Local []int
	// Epoch anchors simulated Zero. Zero-valued means "now at Start" (the
	// single-process default); a fleet passes one shared instant to every
	// daemon so all processes stamp events on a single timeline.
	Epoch time.Time
	// PortBase offsets every port identifier. A restarted daemon runs its
	// new incarnation in a fresh port namespace (incarnation·N·R), so the
	// §6.1 one-op-per-port alternation the Monitor enforces is never
	// violated by an invocation whose response died with the old process —
	// the old port's op simply stays open until Monitor.Finish submits it
	// as pending.
	PortBase int
	// WrapClock, when non-nil, wraps each node's ModelClock before use —
	// the chaos controller's hook for interposing a StepClock.
	WrapClock func(node int, c Clock) Clock
}

// Measured is what the runtime observed over a run: the quantities the
// simulator gets to assume and the live world has to measure.
type Measured struct {
	// Eps is the largest |clock − real| any node's clock served: the
	// measured ε bound.
	Eps simtime.Duration
	// TimerLate is the largest timer service lateness observed: the
	// measured ℓ.
	TimerLate simtime.Duration
	// DelayMin and DelayMax bound the observed per-message delays: the
	// effective [d1, d2] of the live links.
	DelayMin, DelayMax simtime.Duration
	// DelayViolations counts messages delivered later than Bounds.Hi.
	DelayViolations int
	// Messages counts frames sent; Held counts deliveries the receive
	// buffer R_ji,ε postponed because the tag was ahead of the local clock.
	Messages, Held int
	// RecorderDrops counts events recorded after shutdown flushed the
	// recorder. A clean run — server closed before Stop — has zero.
	RecorderDrops int
	// Reconnects counts transport link re-dials after dial/write failures
	// (zero on transports that never reconnect).
	Reconnects int
}

// Runtime hosts N×R copies of a core.Algorithm on wall-clock time: one
// goroutine per node owning that node's R algorithm instances, its clock,
// and its timer queue (the same core.TimerQueue the simulator's engine
// drains, so timers fire in the same (deadline, registration) order in
// both worlds). Messages are tagged with the sender's clock and held at
// the receiver until its clock reaches the tag — the send/receive buffers
// S_ij,ε and R_ji,ε of Figure 2, realized on real time, per logical
// channel.
type Runtime struct {
	opts       Options
	factory    core.AlgorithmFactory
	regFactory func(reg int) core.AlgorithmFactory

	sinks    []exec.Sink
	onOutput func(node ta.NodeID, reg int, name string, payload any)

	epoch     time.Time
	rec       *recorder
	nodes     []*node
	transport Transport
	stop      chan struct{}
	wg        sync.WaitGroup

	mu       sync.Mutex
	started  bool
	stopped  bool
	measured Measured

	msgs       atomic.Int64
	held       atomic.Int64
	delayMin   atomic.Int64
	delayMax   atomic.Int64
	delayViols atomic.Int64
	timerLate  atomic.Int64
}

// New validates the options and returns an unstarted runtime.
func New(opts Options, f core.AlgorithmFactory) (*Runtime, error) {
	if opts.N < 1 {
		return nil, fmt.Errorf("live: need at least one node, got %d", opts.N)
	}
	if opts.Registers <= 0 {
		opts.Registers = 1
	}
	if opts.Clocks == nil {
		opts.Clocks = clock.PerfectFactory()
	}
	if opts.Transport == nil {
		opts.Transport = NewChanTransport(0)
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = 4096
	}
	if opts.Bounds == (simtime.Interval{}) {
		opts.Bounds = simtime.Interval{Lo: 0, Hi: simtime.Forever}
	}
	rt := &Runtime{
		opts:      opts,
		factory:   f,
		transport: opts.Transport,
		stop:      make(chan struct{}),
		rec:       newRecorder(),
	}
	rt.delayMin.Store(math.MaxInt64)
	return rt, nil
}

// Registers returns the number of algorithm instances per node.
func (rt *Runtime) Registers() int { return rt.opts.Registers }

// Port maps (register instance, node) to the runtime's port identifier:
// the NodeID under which that instance's invocations and responses appear
// in the recorded stream. With one register it is the node ID itself, so
// single-register traces are unchanged.
func (rt *Runtime) Port(nodeID ta.NodeID, reg int) ta.NodeID {
	return ta.NodeID(rt.opts.PortBase+reg*rt.opts.N) + nodeID
}

// hostsNode reports whether this runtime hosts node i (always true in
// single-process mode).
func (rt *Runtime) hostsNode(i int) bool {
	if i < 0 || i >= rt.opts.N {
		return false
	}
	if rt.opts.Local == nil {
		return true
	}
	for _, l := range rt.opts.Local {
		if l == i {
			return true
		}
	}
	return false
}

// AddSink registers an exec.Sink over the runtime's observable event
// stream (environment invocations and responses, with the message
// interface hidden — the same projection the simulator's sinks see).
// Must be called before Start.
func (rt *Runtime) AddSink(s exec.Sink) { rt.sinks = append(rt.sinks, s) }

// OnOutput registers a callback invoked after each environment response is
// recorded, from the emitting node's goroutine, with the register instance
// that produced it. The callback must not block and must not synchronously
// re-enter Invoke for the same node (hand the response to another
// goroutine; see Server and LoadGen). Must be called before Start.
func (rt *Runtime) OnOutput(fn func(node ta.NodeID, reg int, name string, payload any)) {
	rt.onOutput = fn
}

// producer registers a dedicated recorder ring for a single-goroutine
// event source (a server port worker). Must be called before Start.
func (rt *Runtime) producer() *producer { return rt.rec.producer(portRingDepth) }

// SetRegisterFactory installs a per-register-instance algorithm factory,
// overriding the uniform one for instances it covers: register instance
// reg on every node is built by fn(reg) when that returns non-nil. This is
// the tiered keyed store's hook — one node hosts a mix of S-keys and
// L-keys (lin and seq tiers), all sharing its clock, goroutine, and
// transport. Must be called before Start.
func (rt *Runtime) SetRegisterFactory(fn func(reg int) core.AlgorithmFactory) {
	rt.regFactory = fn
}

// Start anchors the epoch, builds the per-node clocks and algorithm
// instances, and launches the node loops.
func (rt *Runtime) Start() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return fmt.Errorf("live: runtime already started")
	}
	rt.started = true
	rt.epoch = rt.opts.Epoch
	if rt.epoch.IsZero() {
		rt.epoch = time.Now()
	}
	n, r := rt.opts.N, rt.opts.Registers
	rt.nodes = make([]*node, n)
	for i := 0; i < n; i++ {
		if !rt.hostsNode(i) {
			continue
		}
		var clk Clock = NewModelClock(rt.opts.Clocks(i), rt.epoch)
		if rt.opts.WrapClock != nil {
			clk = rt.opts.WrapClock(i, clk)
		}
		nd := &node{
			id:    ta.NodeID(i),
			rt:    rt,
			algs:  make([]core.Algorithm, r),
			srcs:  make([]string, r),
			clk:   clk,
			inbox: make(chan nodeMsg, rt.opts.InboxDepth),
			prod:  rt.rec.producer(nodeRingDepth),
		}
		for reg := 0; reg < r; reg++ {
			f := rt.factory
			if rt.regFactory != nil {
				if rf := rt.regFactory(reg); rf != nil {
					f = rf
				}
			}
			nd.algs[reg] = f(ta.NodeID(i), n)
			nd.srcs[reg] = fmt.Sprintf("live(%v)", rt.Port(ta.NodeID(i), reg))
		}
		rt.nodes[i] = nd
	}
	rt.rec.start(rt.epoch, rt.sinks)
	if err := rt.transport.Start(rt.deliverFrame); err != nil {
		return fmt.Errorf("live: transport start: %w", err)
	}
	for _, nd := range rt.nodes {
		if nd == nil {
			continue
		}
		rt.wg.Add(1)
		go nd.loop()
	}
	return nil
}

// Invoke injects an environment invocation at register instance 0 of the
// given node, recording it at ingress — the instant the external observer
// of the §6.1 conditions sees it. Safe for concurrent use.
func (rt *Runtime) Invoke(nodeID ta.NodeID, name string, payload any) error {
	return rt.invoke(nil, nodeID, 0, name, payload)
}

// InvokeReg is Invoke aimed at a specific register instance.
func (rt *Runtime) InvokeReg(nodeID ta.NodeID, reg int, name string, payload any) error {
	return rt.invoke(nil, nodeID, reg, name, payload)
}

// invoke records the invocation (through p's dedicated ring when p is
// non-nil and the caller is its single goroutine; through the recorder's
// shared locked path otherwise) and enqueues it at the destination node.
func (rt *Runtime) invoke(p *producer, nodeID ta.NodeID, reg int, name string, payload any) error {
	if int(nodeID) < 0 || int(nodeID) >= len(rt.nodes) || rt.nodes[nodeID] == nil {
		return fmt.Errorf("live: invoke at unknown node %v", nodeID)
	}
	if reg < 0 || reg >= rt.opts.Registers {
		return fmt.Errorf("live: invoke at unknown register %d", reg)
	}
	select {
	case <-rt.stop:
		return fmt.Errorf("live: runtime stopped")
	default:
	}
	a := ta.Action{
		Name: name, Node: rt.Port(nodeID, reg), Peer: ta.NoNode,
		Kind: ta.KindInput, Payload: payload,
	}
	if p != nil {
		p.record(a, "env")
	} else {
		rt.rec.record(a, "env")
	}
	select {
	case rt.nodes[nodeID].inbox <- nodeMsg{invName: name, invPayload: payload, inv: true, reg: reg}:
		return nil
	case <-rt.stop:
		return fmt.Errorf("live: runtime stopped")
	}
}

// Clock returns node i's live clock (for tests and reports), nil for
// nodes this runtime does not host.
func (rt *Runtime) Clock(i int) Clock {
	if i < 0 || i >= len(rt.nodes) || rt.nodes[i] == nil {
		return nil
	}
	return rt.nodes[i].clk
}

// Snapshot returns the measured bounds so far without stopping the
// runtime — the daemon's heartbeat payload. The epsilon and reconnect
// probes are the same ones Stop runs; everything else reads atomics.
func (rt *Runtime) Snapshot() Measured {
	rt.mu.Lock()
	if !rt.started || rt.stopped {
		m := rt.measured
		rt.mu.Unlock()
		return m
	}
	rt.mu.Unlock()
	m := Measured{
		TimerLate:       simtime.Duration(rt.timerLate.Load()),
		DelayMax:        simtime.Duration(rt.delayMax.Load()),
		DelayViolations: int(rt.delayViols.Load()),
		Messages:        int(rt.msgs.Load()),
		Held:            int(rt.held.Load()),
		RecorderDrops:   int(rt.rec.drops.Load()),
	}
	if lo := rt.delayMin.Load(); lo != math.MaxInt64 {
		m.DelayMin = simtime.Duration(lo)
	}
	for _, n := range rt.nodes {
		if n == nil {
			continue
		}
		if b := n.clk.OffsetBound(); b > m.Eps {
			m.Eps = b
		}
	}
	if r, ok := rt.transport.(interface{ Reconnects() int64 }); ok {
		m.Reconnects = int(r.Reconnects())
	}
	return m
}

// Stop shuts the runtime down — node loops, then transport, then a final
// sink flush — and returns the measured bounds. Callers that installed
// event producers (Server) must close them first so the recorder's final
// drain sees a quiescent stream. Idempotent.
func (rt *Runtime) Stop() Measured {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.started || rt.stopped {
		return rt.measured
	}
	rt.stopped = true
	close(rt.stop)
	rt.wg.Wait()
	rt.transport.Close()
	rt.rec.flush()

	m := Measured{
		TimerLate:       simtime.Duration(rt.timerLate.Load()),
		DelayMax:        simtime.Duration(rt.delayMax.Load()),
		DelayViolations: int(rt.delayViols.Load()),
		Messages:        int(rt.msgs.Load()),
		Held:            int(rt.held.Load()),
		RecorderDrops:   int(rt.rec.drops.Load()),
	}
	if lo := rt.delayMin.Load(); lo != math.MaxInt64 {
		m.DelayMin = simtime.Duration(lo)
	}
	for _, n := range rt.nodes {
		if n == nil {
			continue
		}
		if b := n.clk.OffsetBound(); b > m.Eps {
			m.Eps = b
		}
	}
	if r, ok := rt.transport.(interface{ Reconnects() int64 }); ok {
		m.Reconnects = int(r.Reconnects())
	}
	rt.measured = m
	return m
}

// elapsed returns real time since the epoch as a simulated instant.
func (rt *Runtime) elapsed() simtime.Time {
	t, err := simtime.TimeFromWall(time.Since(rt.epoch))
	if err != nil {
		return simtime.Zero
	}
	return t
}

// deliverFrame is the transport's delivery callback: enforce the designed
// lower delay bound d1 (loopback is faster than any designed network), then
// measure and enqueue. Safe for concurrent use.
func (rt *Runtime) deliverFrame(f Frame) {
	if lo := rt.opts.Bounds.Lo; lo > 0 {
		if raw := rt.elapsed().Sub(f.SentReal); raw < lo {
			if wait, err := simtime.ToWall(lo - raw); err == nil && wait > 0 {
				time.AfterFunc(wait, func() { rt.enqueueFrame(f) })
				return
			}
		}
	}
	rt.enqueueFrame(f)
}

// enqueueFrame records the delay the receiver actually experiences and
// hands the frame to the destination's loop.
func (rt *Runtime) enqueueFrame(f Frame) {
	if int(f.To) < 0 || int(f.To) >= len(rt.nodes) || rt.nodes[f.To] == nil {
		return
	}
	d := rt.elapsed().Sub(f.SentReal)
	atomicMin(&rt.delayMin, int64(d))
	atomicMax(&rt.delayMax, int64(d))
	if hi := rt.opts.Bounds.Hi; hi != simtime.Forever && d > hi {
		rt.delayViols.Add(1)
	}
	select {
	case rt.nodes[f.To].inbox <- nodeMsg{frame: f}:
	case <-rt.stop:
		// Shutdown: the receiver's loop has exited; the frame is dropped,
		// which only a stopping run produces.
	}
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// nodeMsg is one inbox entry: a network frame or an environment invocation.
type nodeMsg struct {
	frame      Frame
	inv        bool
	reg        int
	invName    string
	invPayload any
}

// heldFrame is the timer key the receive buffer R_ji,ε uses to postpone a
// delivery until the local clock reaches the sender's tag. It is node-
// internal: the loop intercepts it before OnTimer, so algorithm keys and
// hold keys share the queue without colliding.
type heldFrame struct{ f Frame }

// regKey namespaces an algorithm's timer key by its register instance so
// the R instances share one queue without key collisions; the loop
// unwraps it before OnTimer, so programs see their own keys.
type regKey struct {
	reg int
	key any
}

// node is one live node: R algorithm instances, clock, timer queue, inbox,
// and the core.Context the instances see during callbacks. All fields are
// owned by the node's goroutine after Start.
type node struct {
	id    ta.NodeID
	rt    *Runtime
	algs  []core.Algorithm
	srcs  []string // per-register recorder source labels
	clk   Clock
	inbox chan nodeMsg
	prod  *producer

	timers core.TimerQueue

	// last keeps the algorithms' observed time monotone, exactly like the
	// simulator engine's high-water mark: a timer serviced late still
	// observes its scheduled deadline, but never earlier than a previously
	// observed instant. The clamp is per node, not per instance — all R
	// instances read the one physical clock.
	last   simtime.Time
	now    simtime.Time
	curReg int // register instance the current callback belongs to
}

var _ core.Context = (*node)(nil)

// inboxBatch bounds how many inbox entries the loop drains per wakeup
// before re-checking timers: large enough to amortize the select, small
// enough that a flood cannot starve due timers.
const inboxBatch = 64

func (n *node) loop() {
	defer n.rt.wg.Done()
	for reg := range n.algs {
		r := reg
		n.callback(r, n.clk.Now(), func() { n.algs[r].Start(n) })
	}
	// One reusable timer for the whole loop (Go 1.22 semantics: Stop and
	// drain before every Reset, since an expired-but-unread timer leaves
	// its tick buffered).
	tm := time.NewTimer(time.Hour)
	if !tm.Stop() {
		<-tm.C
	}
	armed := false
	for {
		n.fireDue()
		if armed {
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			armed = false
		}
		var timerC <-chan time.Time
		if at, ok := n.timers.Next(); ok {
			wait := n.clk.WaitUntil(at)
			if wait <= 0 {
				// Became due between fireDue and here; fire it.
				continue
			}
			tm.Reset(wait)
			armed = true
			timerC = tm.C
		}
		select {
		case m := <-n.inbox:
			n.handle(m)
			// Batch-drain whatever else is queued: under pipelined load
			// the inbox is rarely empty, and handling a run of messages
			// per wakeup keeps the scheduler off the per-message path.
			for i := 1; i < inboxBatch; i++ {
				select {
				case m := <-n.inbox:
					n.handle(m)
				default:
					i = inboxBatch
				}
			}
		case <-timerC:
			armed = false
			// fireDue at the top of the loop services it.
		case <-n.rt.stop:
			return
		}
	}
}

// fireDue services, in (deadline, registration) order, every queue entry
// whose deadline the local clock has reached. Callbacks observe Time()
// equal to their scheduled deadline clamped monotone — the same semantics
// as the simulator engine's advance (and Definition 5.1's catch-up): the
// action happened at its scheduled clock value even when the goroutine
// woke late, and the tags on any messages it sends must say so.
func (n *node) fireDue() {
	for {
		at, ok := n.timers.Next()
		if !ok {
			return
		}
		nowClk := n.clk.Now()
		if at.After(nowClk) {
			return
		}
		entry := n.timers.Pop()
		if late := nowClk.Sub(entry.At); late > 0 {
			atomicMax(&n.rt.timerLate, int64(late))
		}
		switch k := entry.Key.(type) {
		case heldFrame:
			n.callback(k.f.Chan, entry.At, func() { n.algs[k.f.Chan].OnMessage(n, k.f.From, k.f.Body) })
		case regKey:
			n.callback(k.reg, entry.At, func() { n.algs[k.reg].OnTimer(n, k.key) })
		default:
			// Single-register fast path registers bare keys.
			n.callback(0, entry.At, func() { n.algs[0].OnTimer(n, entry.Key) })
		}
	}
}

func (n *node) handle(m nodeMsg) {
	if m.inv {
		n.callback(m.reg, n.clk.Now(), func() { n.algs[m.reg].OnInput(n, m.invName, m.invPayload) })
		return
	}
	f := m.frame
	c := n.clk.Now()
	if f.SentClock.After(c) {
		// Receive buffer R_ji,ε: the tag is ahead of the local clock; hold
		// the delivery until the clock reaches it.
		n.timers.Push(f.SentClock, heldFrame{f: f})
		n.rt.held.Add(1)
		return
	}
	n.callback(f.Chan, c, func() { n.algs[f.Chan].OnMessage(n, f.From, f.Body) })
}

// callback runs fn as register instance reg with the context's clock set
// to t clamped monotone.
func (n *node) callback(reg int, t simtime.Time, fn func()) {
	if t.Before(n.last) {
		t = n.last
	}
	n.last = t
	n.now = t
	n.curReg = reg
	fn()
}

// core.Context implementation — valid only during callbacks, like the
// simulator engine's.

func (n *node) Time() simtime.Time { return n.now }
func (n *node) ID() ta.NodeID      { return n.id }
func (n *node) N() int             { return n.rt.opts.N }

func (n *node) Neighbors() []ta.NodeID {
	out := make([]ta.NodeID, n.rt.opts.N)
	for i := range out {
		out[i] = ta.NodeID(i)
	}
	return out
}

func (n *node) Send(to ta.NodeID, body any) {
	if int(to) < 0 || int(to) >= n.rt.opts.N {
		panic(fmt.Sprintf("live: node %v sent to %v with no edge e_{%v,%v} (§3.1 signature restriction)", n.id, to, n.id, to))
	}
	f := Frame{
		From:      n.id,
		To:        to,
		Chan:      n.curReg,
		SentClock: n.now,
		SentReal:  n.rt.elapsed(),
		Body:      body,
	}
	n.rt.msgs.Add(1)
	// Send errors surface only at shutdown (closed transport) or under
	// overload (full outbound queue); either way the message is lost,
	// matching a crashed link — the monitor will say so if it matters.
	_ = n.rt.transport.Send(f)
}

func (n *node) Broadcast(body any) {
	for j := 0; j < n.rt.opts.N; j++ {
		n.Send(ta.NodeID(j), body)
	}
}

func (n *node) Output(name string, payload any) {
	reg := n.curReg
	n.prod.record(ta.Action{
		Name: name, Node: n.rt.Port(n.id, reg), Peer: ta.NoNode,
		Kind: ta.KindOutput, Payload: payload,
	}, n.srcs[reg])
	if n.rt.onOutput != nil {
		n.rt.onOutput(n.id, reg, name, payload)
	}
}

func (n *node) SetTimer(at simtime.Time, key any) {
	if n.curReg == 0 {
		// Bare key: the dominant single-register path stays allocation-
		// identical to the pre-multiplexing runtime.
		n.timers.Push(at, key)
		return
	}
	n.timers.Push(at, regKey{reg: n.curReg, key: key})
}
