package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"psclock/internal/register"
	"psclock/internal/ta"
)

// wireReq is one client request to the register server. ID is a
// client-chosen correlation tag echoed on the response, which is what
// lets a connection pipeline many requests; Reg selects the register
// instance.
type wireReq struct {
	ID  uint64
	Reg int
	// Op is register.ActRead or register.ActWrite.
	Op  string
	Val register.Value // the written value; ignored for reads
	// Tier is the consistency tier the read selects on the wire: the op
	// byte is 'r' for a lin-tier read, 's' for a seq-tier read. The server
	// validates it against the register's configured tier — a read naming
	// the wrong tier would be charged one price and verified at another,
	// so a mismatch tears the connection down. Writes cost the same on
	// both tiers and carry no tier byte.
	Tier register.Tier
}

// wireResp is the server's answer: RETURN with the read value, or ACK,
// tagged with the request's correlation ID.
type wireResp struct {
	ID  uint64
	Op  string
	Val register.Value
}

// The client-server wire format is hand-rolled varints rather than gob:
// at pipelined rates the codec runs a hundred thousand times a second on
// a host the system under test shares, and gob's per-message reflection
// was a measurable slice of the core. Requests are (uvarint id,
// uvarint reg, op byte, value for writes), responses (uvarint id,
// op byte, value for returns); values are signed varints since the
// initial value's writer is ta.NoNode = −1. Every field is
// self-delimiting, so messages need no length prefix.

func appendWireReq(dst []byte, r wireReq) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = binary.AppendUvarint(dst, uint64(r.Reg))
	switch {
	case r.Op == register.ActWrite:
		dst = append(dst, 'w')
		dst = binary.AppendVarint(dst, int64(r.Val.Writer))
		dst = binary.AppendVarint(dst, int64(r.Val.Seq))
	case r.Tier == register.TierSeq:
		dst = append(dst, 's')
	default:
		dst = append(dst, 'r')
	}
	return dst
}

func readWireReq(br *bufio.Reader) (wireReq, error) {
	var r wireReq
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return r, err
	}
	reg, err := binary.ReadUvarint(br)
	if err != nil {
		return r, err
	}
	op, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	r.ID, r.Reg = id, int(reg)
	switch op {
	case 'r':
		r.Op = register.ActRead
	case 's':
		r.Op = register.ActRead
		r.Tier = register.TierSeq
	case 'w':
		r.Op = register.ActWrite
		w, err := binary.ReadVarint(br)
		if err != nil {
			return r, err
		}
		seq, err := binary.ReadVarint(br)
		if err != nil {
			return r, err
		}
		r.Val = register.Value{Writer: ta.NodeID(w), Seq: int(seq)}
	default:
		return r, fmt.Errorf("live: bad request op %q", op)
	}
	return r, nil
}

func appendWireResp(dst []byte, r wireResp) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	if r.Op == register.ActReturn {
		dst = append(dst, 'R')
		dst = binary.AppendVarint(dst, int64(r.Val.Writer))
		dst = binary.AppendVarint(dst, int64(r.Val.Seq))
	} else {
		dst = append(dst, 'A')
	}
	return dst
}

func readWireResp(br *bufio.Reader) (wireResp, error) {
	var r wireResp
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return r, err
	}
	op, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	r.ID = id
	switch op {
	case 'R':
		r.Op = register.ActReturn
		w, err := binary.ReadVarint(br)
		if err != nil {
			return r, err
		}
		seq, err := binary.ReadVarint(br)
		if err != nil {
			return r, err
		}
		r.Val = register.Value{Writer: ta.NodeID(w), Seq: int(seq)}
	case 'A':
		r.Op = register.ActAck
	default:
		return r, fmt.Errorf("live: bad response op %q", op)
	}
	return r, nil
}

// Server exposes the live registers over TCP: one listener per node, a
// varint-framed stream of wireReq/wireResp per connection, any number of
// register instances behind each node. Each (node, register) port has a worker
// goroutine that admits one operation at a time — the alternation
// condition of §6.1, enforced per port, which the monitor checks and the
// online checker's windows rely on. A connection may pipeline requests
// across ports freely: requests to different ports proceed concurrently,
// requests to one port queue on its worker, and responses return on the
// connection tagged with the request's ID in completion order.
//
// Each port worker owns a dedicated recorder ring (registered before the
// runtime starts), so the invocation-side recording path is lock-free
// end to end.
type Server struct {
	rt    *Runtime
	lns   []net.Listener
	addrs []string
	ports []*svcPort
	tiers []register.Tier // per-register tiers; nil means all lin

	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	conns  map[*svcConn]struct{}
	closed bool
}

// svcPort is one (node, register) service port: a queue of admitted
// requests, the single worker draining it, and the response slot the
// runtime's output dispatch fills.
type svcPort struct {
	node ta.NodeID
	reg  int
	reqs chan portReq
	resp chan wireResp
	prod *producer
}

// portReq is one admitted request plus the connection to answer on.
type portReq struct {
	id      uint64
	op      string
	payload any
	conn    *svcConn
}

// svcConn is one client connection's shared state: the response writer
// queue and the teardown signal both the reader and writer observe.
type svcConn struct {
	writeCh chan wireResp
	done    chan struct{}
	once    sync.Once
	conn    net.Conn
}

func (c *svcConn) close() {
	c.once.Do(func() {
		close(c.done)
		c.conn.Close()
	})
}

// portQueueDepth bounds the requests admitted but not yet invoked at one
// port; a client pipelining deeper than this into a single port blocks in
// its connection reader — TCP backpressure, not an error.
const portQueueDepth = 256

// NewServer opens one loopback listener per node and registers the
// response dispatch on rt. Must be called before rt.Start (it installs
// the runtime's OnOutput hook and the per-port recorder rings).
func NewServer(rt *Runtime) (*Server, error) {
	n, r := rt.opts.N, rt.opts.Registers
	s := &Server{
		rt:    rt,
		lns:   make([]net.Listener, n),
		addrs: make([]string, n),
		ports: make([]*svcPort, n*r),
		conns: make(map[*svcConn]struct{}),
		done:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		if !rt.hostsNode(i) {
			continue // a fleet daemon serves clients only for its own node
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("live: server listen for node %d: %w", i, err)
		}
		s.lns[i] = ln
		s.addrs[i] = ln.Addr().String()
	}
	for reg := 0; reg < r; reg++ {
		for i := 0; i < n; i++ {
			if !rt.hostsNode(i) {
				continue
			}
			s.ports[reg*n+i] = &svcPort{
				node: ta.NodeID(i),
				reg:  reg,
				reqs: make(chan portReq, portQueueDepth),
				resp: make(chan wireResp, 1),
				prod: rt.producer(),
			}
		}
	}
	rt.OnOutput(s.dispatch)
	return s, nil
}

// SetTiers installs the per-register consistency tiers the wire protocol
// validates reads against: a read must name its register's tier ('r' for
// lin, 's' for seq) or the connection is closed. nil (the default) means
// every register is lin-tier, the stack's historical behavior. Must be
// called before Start; len(tiers) must equal the runtime's register count.
func (s *Server) SetTiers(tiers []register.Tier) {
	s.tiers = tiers
}

// Addrs returns the per-node client-facing addresses.
func (s *Server) Addrs() []string {
	out := make([]string, len(s.addrs))
	copy(out, s.addrs)
	return out
}

// dispatch routes register responses to the waiting port worker. It runs
// on the emitting node's goroutine and must not block: the response slot
// has capacity one and the port worker guarantees one outstanding
// operation, so the buffered send always succeeds.
func (s *Server) dispatch(nodeID ta.NodeID, reg int, name string, payload any) {
	if name != register.ActReturn && name != register.ActAck {
		return
	}
	r := wireResp{Op: name}
	if v, ok := payload.(register.Value); ok {
		r.Val = v
	}
	p := s.ports[reg*s.rt.opts.N+int(nodeID)]
	if p == nil {
		return // response at a node this process doesn't serve clients for
	}
	select {
	case p.resp <- r:
		// With no waiter (a direct Invoke bypassed the server) the value
		// parks in the one-slot buffer; the port worker discards it before
		// its next invocation.
	default:
		// Slot already holds a parked bypass response; drop.
	}
}

// Start begins accepting client connections and launches the port
// workers. Call after rt.Start.
func (s *Server) Start() {
	for _, p := range s.ports {
		if p == nil {
			continue
		}
		p := p
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.portLoop(p)
		}()
	}
	for i, ln := range s.lns {
		if ln == nil {
			continue
		}
		i, ln := i, ln
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					s.serve(ta.NodeID(i), conn)
				}()
			}
		}()
	}
}

// portLoop is a port's worker: admit one request, invoke it (recording
// through the port's dedicated ring), wait for the register's response,
// answer the issuing connection. One request in flight per port, always.
func (s *Server) portLoop(p *svcPort) {
	for {
		var req portReq
		select {
		case req = <-p.reqs:
		case <-s.done:
			return
		}
		// Discard a response parked by a direct Invoke that bypassed the
		// server (e.g. a fleet daemon's amnesia-repair write): its output
		// landed in the one-slot buffer with no waiter, and answering the
		// next client request with it would shift every later response one
		// operation back. Nothing can park here for the request we are
		// about to invoke — outputs only follow invocations.
		select {
		case <-p.resp:
		default:
		}
		if err := s.rt.invoke(p.prod, p.node, p.reg, req.op, req.payload); err != nil {
			// Runtime shut down beneath us; the connection gets no answer,
			// which only teardown produces.
			return
		}
		var resp wireResp
		select {
		case resp = <-p.resp:
		case <-s.done:
			return
		}
		resp.ID = req.id
		select {
		case req.conn.writeCh <- resp:
		case <-req.conn.done:
			// Client left; the operation still completed and was recorded.
		case <-s.done:
			return
		}
	}
}

// serve handles one client connection against one node: a reader that
// validates and routes requests to port queues, and a writer that
// serializes responses back. Either side's failure tears both down.
func (s *Server) serve(nodeID ta.NodeID, conn net.Conn) {
	c := &svcConn{
		writeCh: make(chan wireResp, portQueueDepth),
		done:    make(chan struct{}),
		conn:    conn,
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		c.close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer c.close()
		// Responses coalesce: encode everything already queued into one
		// buffer and write it in a single syscall once the queue
		// momentarily drains, so a deeply pipelined connection costs one
		// write per burst rather than one per response.
		buf := make([]byte, 0, 16<<10)
		for {
			var resp wireResp
			select {
			case resp = <-c.writeCh:
			case <-c.done:
				return
			case <-s.done:
				return
			}
			buf = appendWireResp(buf[:0], resp)
		drain:
			for {
				select {
				case resp = <-c.writeCh:
					buf = appendWireResp(buf, resp)
				default:
					break drain
				}
			}
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
	}()
	br := bufio.NewReaderSize(conn, 16<<10)
	nReg := s.rt.opts.Registers
	for {
		req, err := readWireReq(br)
		if err != nil {
			return
		}
		if req.Reg < 0 || req.Reg >= nReg {
			return
		}
		if req.Op == register.ActRead {
			want := register.TierLin
			if s.tiers != nil {
				want = s.tiers[req.Reg]
			}
			if req.Tier != want {
				return // tier mismatch: wrong price, wrong checker
			}
		}
		var payload any
		if req.Op == register.ActWrite {
			payload = req.Val
		}
		select {
		case s.ports[req.Reg*s.rt.opts.N+int(nodeID)].reqs <- portReq{id: req.ID, op: req.Op, payload: payload, conn: c}:
		case <-s.done:
			return
		}
	}
}

// Close stops accepting and unblocks every port worker and connection.
// Call before rt.Stop so the server's recorder producers are quiescent
// when the runtime flushes the recorder.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.done)
	for c := range s.conns {
		c.close()
	}
	s.mu.Unlock()
	for _, ln := range s.lns {
		if ln != nil {
			ln.Close()
		}
	}
	s.wg.Wait()
}
