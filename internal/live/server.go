package live

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"psclock/internal/register"
	"psclock/internal/ta"
)

// wireReq is one client request to the register server.
type wireReq struct {
	// Op is register.ActRead or register.ActWrite.
	Op  string
	Val register.Value // the written value; ignored for reads
}

// wireResp is the server's answer: RETURN with the read value, or ACK.
type wireResp struct {
	Op  string
	Val register.Value
}

// Server exposes the live register over TCP: one listener per node, a gob
// stream of wireReq/wireResp per connection. A per-node token serializes
// requests so every node sees at most one outstanding operation — the
// alternation condition of §6.1, which the monitor checks and the online
// checker's windows rely on. Multiple connections to one node are
// accepted; their requests queue on the token.
type Server struct {
	rt    *Runtime
	lns   []net.Listener
	addrs []string
	resp  []chan wireResp
	token []chan struct{}

	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewServer opens one loopback listener per node and registers the
// response dispatch on rt. Must be called before rt.Start (it installs
// the runtime's OnOutput hook).
func NewServer(rt *Runtime) (*Server, error) {
	n := rt.opts.N
	s := &Server{
		rt:    rt,
		lns:   make([]net.Listener, n),
		addrs: make([]string, n),
		resp:  make([]chan wireResp, n),
		token: make([]chan struct{}, n),
		done:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("live: server listen for node %d: %w", i, err)
		}
		s.lns[i] = ln
		s.addrs[i] = ln.Addr().String()
		s.resp[i] = make(chan wireResp, 1)
		s.token[i] = make(chan struct{}, 1)
		s.token[i] <- struct{}{}
	}
	rt.OnOutput(s.dispatch)
	return s, nil
}

// Addrs returns the per-node client-facing addresses.
func (s *Server) Addrs() []string {
	out := make([]string, len(s.addrs))
	copy(out, s.addrs)
	return out
}

// dispatch routes register responses to the waiting connection handler.
// It runs on the emitting node's goroutine and must not block: the
// response channel has capacity one and the node's token guarantees one
// outstanding operation, so the buffered send always succeeds.
func (s *Server) dispatch(nodeID ta.NodeID, name string, payload any) {
	if name != register.ActReturn && name != register.ActAck {
		return
	}
	r := wireResp{Op: name}
	if v, ok := payload.(register.Value); ok {
		r.Val = v
	}
	select {
	case s.resp[nodeID] <- r:
	default:
		// No waiter (a direct Invoke bypassed the server); drop.
	}
}

// Start begins accepting client connections. Call after rt.Start.
func (s *Server) Start() {
	for i, ln := range s.lns {
		i, ln := i, ln
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					defer conn.Close()
					s.serve(ta.NodeID(i), conn)
				}()
			}
		}()
	}
}

// serve handles one client connection against one node.
func (s *Server) serve(nodeID ta.NodeID, conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireReq
		if err := dec.Decode(&req); err != nil {
			return
		}
		if req.Op != register.ActRead && req.Op != register.ActWrite {
			return
		}
		select {
		case <-s.token[nodeID]:
		case <-s.done:
			return
		}
		var payload any
		if req.Op == register.ActWrite {
			payload = req.Val
		}
		if err := s.rt.Invoke(nodeID, req.Op, payload); err != nil {
			s.token[nodeID] <- struct{}{}
			return
		}
		var resp wireResp
		select {
		case resp = <-s.resp[nodeID]:
		case <-s.done:
			s.token[nodeID] <- struct{}{}
			return
		}
		s.token[nodeID] <- struct{}{}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Close stops accepting and unblocks every in-flight handler. Call before
// rt.Stop so handlers are not left waiting on responses that will never
// be recorded.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	for _, ln := range s.lns {
		if ln != nil {
			ln.Close()
		}
	}
	s.wg.Wait()
}
