package live

import (
	"sync"
	"time"

	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// recorder serializes the runtime's observable events into the exec.Sink
// contract. The simulator gets the contract's ordering for free from its
// single dispatch loop; here events originate on n node goroutines plus
// the ingress path, so the recorder's mutex is the serialization point:
// the real-time stamp is taken under the lock and the event enqueued
// before it is released, which makes At non-decreasing and Seq strictly
// increasing across the stream by construction. A single consumer
// goroutine drains the queue and calls Observe/Flush, satisfying the
// "never concurrent" clause while keeping sink work — the online
// checker's frontier search can be bursty — off the node goroutines'
// critical path. The queue applies backpressure only when monitoring
// falls an entire buffer behind.
//
// Stamps are real elapsed time at the recorder, not node clock readings:
// linearizability is a real-time property, and the external observer the
// §6.1 conditions speak of sees invocations and responses when they cross
// the runtime's boundary. Clock imprecision and timer service latency
// shift those crossings by at most ε + ℓ, which is exactly the window
// relaxation (linearize.Options.Widen) the monitoring configuration
// grants.
type recorder struct {
	mu     sync.Mutex
	epoch  time.Time
	seq    int
	last   simtime.Time
	closed bool

	ch   chan ta.Event
	done chan struct{}

	// sinks are touched only by the consumer goroutine after newRecorder
	// returns: register.Monitor and linearize.Online are single-goroutine
	// objects.
	sinks []exec.Sink
}

// flushEvery is how many events pass between low-watermark flushes: often
// enough to keep the online checkers' windows bounded, rarely enough to
// stay off the hot path.
const flushEvery = 128

// recorderDepth is the event queue size: large enough to absorb checker
// bursts without stalling nodes, small enough to bound memory.
const recorderDepth = 1 << 16

func newRecorder(epoch time.Time, sinks []exec.Sink) *recorder {
	r := &recorder{
		epoch: epoch,
		sinks: sinks,
		ch:    make(chan ta.Event, recorderDepth),
		done:  make(chan struct{}),
	}
	go r.run()
	return r
}

// record stamps the action with the current real time and enqueues it for
// the sinks. The stamp is clamped monotone against the previous one:
// time.Since is monotonic, so the clamp is a no-op in practice, but the
// sink contract is a hard promise, not a property of the host clock.
func (r *recorder) record(a ta.Action, src string) ta.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	at, err := simtime.TimeFromWall(time.Since(r.epoch))
	if err != nil {
		at = r.last
	}
	if at < r.last {
		at = r.last
	}
	r.last = at
	e := ta.Event{Action: a, At: at, Src: src, Seq: r.seq}
	r.seq++
	if !r.closed {
		// Enqueued under the lock so queue order equals stamp order. The
		// send blocks only when the consumer is recorderDepth events
		// behind.
		r.ch <- e
	}
	return e
}

// run is the consumer goroutine: it alone touches the sinks.
func (r *recorder) run() {
	defer close(r.done)
	var last simtime.Time
	sinceFlush := 0
	for e := range r.ch {
		for _, s := range r.sinks {
			s.Observe(e)
		}
		last = e.At
		sinceFlush++
		if sinceFlush >= flushEvery {
			sinceFlush = 0
			for _, s := range r.sinks {
				s.Flush(last)
			}
		}
	}
	// Final watermark: the channel is closed under the recorder lock, so
	// no event with an earlier stamp can follow.
	for _, s := range r.sinks {
		s.Flush(last)
	}
}

// flush stops the consumer and waits for it to drain every recorded event
// and advance the sinks' low-watermark. Events recorded afterwards are
// stamped but not observed. Called once at shutdown.
func (r *recorder) flush() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.ch)
	}
	r.mu.Unlock()
	<-r.done
}
