package live

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// recorder serializes the runtime's observable events into the exec.Sink
// contract. The simulator gets the contract's ordering for free from its
// single dispatch loop; here events originate on many goroutines — node
// loops emitting responses, server port workers emitting invocations —
// and at 10^4+ ops/s a single mutex-guarded queue would serialize every
// producer through one cache line. Instead each registered producer owns
// a lock-free SPSC ring (power-of-two, free-running head/tail counters,
// the linearize.Sharded hand-off idiom) and a single consumer goroutine
// merges the rings into one stream in canonical stamp order.
//
// The merge is made sound by a per-ring stamp floor: before reading the
// clock for an event's stamp, the producer publishes a "busy" flag
// carrying its previous stamp; the actual stamp replaces the floor before
// the push and the flag clears after it. The consumer computes a safe
// bound as min(consumer's own clock reading, every busy ring's floor) and
// emits only events stamped at or before the bound: an idle-at-read ring
// can only produce future stamps at or after the consumer's reading
// (sequentially-consistent atomics order the producer's later clock read
// after the consumer's), and a busy ring's in-flight stamp is at least
// its floor. Within the bound, events merge by (stamp, kind, ring,
// arrival), which keeps each ring FIFO and places an invocation before a
// response on the (never observed in practice) equal-stamp tie. At is
// therefore non-decreasing and Seq strictly increasing across the merged
// stream, exactly the Sink contract, and the bound doubles as the
// low-watermark Flush hands the online checkers.
//
// Overflow policy: a full ring parks its producer until the consumer
// drains — backpressure, never silent loss (the documented policy; see
// TestRecorderBackpressure). The only discarded events are ones recorded
// after flush() has been called, which the shutdown sequence rules out
// for well-behaved callers; each is counted in drops so a report can
// assert drops == 0.
//
// Stamps are real elapsed time at the recorder, not node clock readings:
// linearizability is a real-time property, and the external observer of
// the §6.1 conditions sees invocations and responses when they cross the
// runtime's boundary. Clock imprecision and timer service latency shift
// those crossings by at most ε + ℓ, which is exactly the window
// relaxation (linearize.Options.Widen) the monitoring configuration
// grants.
type recorder struct {
	epoch time.Time
	sinks []exec.Sink

	mu      sync.Mutex // guards ring registration before start
	rings   []*eventRing
	started bool

	// fallbackMu serializes Runtime.Invoke-style callers that have no
	// dedicated producer: the stamp is taken and the event pushed under
	// the lock, the pre-sharding recorder's sequential discipline.
	fallbackMu sync.Mutex
	fallback   *producer

	closed atomic.Bool
	drops  atomic.Int64

	wake chan struct{}
	done chan struct{}

	seq int // consumer-owned
}

// flushEvery is roughly how many events pass between low-watermark
// flushes: often enough to keep the online checkers' windows bounded,
// rarely enough to stay off the hot path.
const flushEvery = 128

// Ring depths are the backpressure margin before a producer parks behind
// a stalled consumer, and they are sized for the checker, not the
// producers: on a single-core host a verification burst can stall the
// consumer for tens of milliseconds, and a parked node loop misses timer
// deadlines — turning checker lag into measured delay violations. Node
// loops carry the full output event rate, so their rings cover roughly a
// second of it; port workers each carry one port's invocation rate
// (total/(nodes·registers)), so theirs are shallow — the rings are live,
// pointer-bearing heap that every GC cycle rescans, and hundreds of
// deep rings would dominate mark time.
const (
	nodeRingDepth     = 1 << 13
	portRingDepth     = 1 << 8
	fallbackRingDepth = 1 << 10
)

func newRecorder() *recorder {
	r := &recorder{
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	r.fallback = r.producer(fallbackRingDepth)
	return r
}

// producer registers a new producer ring. All producers must be
// registered before start (NewServer runs before Runtime.Start, which is
// what the "install hooks before Start" contract already requires).
func (r *recorder) producer(depth int) *producer {
	rg := newEventRing(depth)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic("live: recorder producer registered after start")
	}
	r.rings = append(r.rings, rg)
	return &producer{rec: r, ring: rg}
}

// start anchors the epoch, freezes the producer set, and launches the
// merge consumer.
func (r *recorder) start(epoch time.Time, sinks []exec.Sink) {
	r.mu.Lock()
	r.epoch = epoch
	r.sinks = sinks
	r.started = true
	r.mu.Unlock()
	go r.run()
}

// record stamps and enqueues an event through the shared fallback
// producer; safe for concurrent use from any goroutine. Dedicated
// producers (node loops, server port workers) bypass this lock entirely.
func (r *recorder) record(a ta.Action, src string) {
	r.fallbackMu.Lock()
	r.fallback.record(a, src)
	r.fallbackMu.Unlock()
}

// signal wakes the consumer if it is parked.
func (r *recorder) signal() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// flush stops the consumer and waits for it to drain every recorded event
// and advance the sinks' low-watermark. Producers must have quiesced
// (node loops joined, server closed) before the call; events recorded
// afterwards are counted as drops and discarded. Called once at shutdown.
func (r *recorder) flush() {
	if r.closed.Swap(true) {
		<-r.done
		return
	}
	r.signal()
	<-r.done
}

// producer is one registered event source: a single goroutine stamping
// and pushing events onto its own ring. The per-producer monotone clamp
// plus the merge bound give the global stream its ordering.
type producer struct {
	rec  *recorder
	ring *eventRing
	last simtime.Time
}

// record stamps a with real elapsed time and enqueues it. Single
// goroutine per producer; see recorder for the floor protocol.
func (p *producer) record(a ta.Action, src string) {
	r := p.rec
	if r.closed.Load() {
		r.drops.Add(1)
		return
	}
	rg := p.ring
	// Announce "busy" with the previous stamp as the floor BEFORE reading
	// the clock: the consumer either sees the flag (and bounds the merge
	// at the floor) or read its own clock before ours (making its bound
	// safe for the stamp we are about to take).
	rg.state.Store(int64(p.last)<<1 | 1)
	at, err := simtime.TimeFromWall(time.Since(r.epoch))
	if err != nil || at < p.last {
		at = p.last
	}
	p.last = at
	rg.state.Store(int64(at)<<1 | 1)
	rg.push(recEvent{a: a, src: src, at: at})
	rg.state.Store(int64(at) << 1)
	r.signal()
}

// recEvent is one ring entry; Seq is assigned by the consumer at emit.
type recEvent struct {
	a   ta.Action
	at  simtime.Time
	src string
}

// mergeEvent is a consumer-side batch entry; ring and idx make the sort
// stable per ring and deterministic across rings on (never observed)
// stamp ties.
type mergeEvent struct {
	ev   recEvent
	ring int
	idx  int
}

// run is the merge consumer: it alone touches the sinks.
func (r *recorder) run() {
	defer close(r.done)
	var batch []mergeEvent
	var lastAt simtime.Time
	var lastFlushed simtime.Time
	sinceFlush := 0
	// idleFlushQuantum paces watermark-only flushes on a quiet stream: a
	// fleet daemon forwards Flush bounds to the control plane as its merge
	// watermark, and without idle flushes a node that stops producing
	// (quiesced load, partitioned link) would stall the plane's k-way
	// merge behind its last event.
	const idleFlushQuantum = simtime.Millisecond
	for {
		// Consumer clock first, then the per-ring states: any producer
		// observed idle after this reading can only stamp at or after it.
		bound := simtime.Time(1<<63 - 1)
		if now, err := simtime.TimeFromWall(time.Since(r.epoch)); err == nil {
			bound = now
		}
		final := r.closed.Load()
		if final {
			// Producers have quiesced: everything still ringed is the
			// tail of the stream; merge it all.
			bound = simtime.Time(1<<63 - 1)
		}
		// The bound must be final before ANY ring is drained: a busy ring's
		// floor constrains what is safe to emit from every other ring, not
		// just the ones scanned after it.
		if !final {
			for _, rg := range r.rings {
				if st := rg.state.Load(); st&1 == 1 {
					if floor := simtime.Time(st >> 1); floor < bound {
						bound = floor
					}
				}
			}
		}
		batch = batch[:0]
		for ri, rg := range r.rings {
			for i := 0; ; i++ {
				ev, ok := rg.peek()
				if !ok || ev.at > bound {
					break
				}
				rg.pop()
				batch = append(batch, mergeEvent{ev: ev, ring: ri, idx: i})
			}
		}
		if len(batch) > 0 {
			sort.Slice(batch, func(i, j int) bool {
				a, b := &batch[i], &batch[j]
				if a.ev.at != b.ev.at {
					return a.ev.at < b.ev.at
				}
				if ka, kb := kindRank(a.ev.a.Kind), kindRank(b.ev.a.Kind); ka != kb {
					return ka < kb
				}
				if a.ring != b.ring {
					return a.ring < b.ring
				}
				return a.idx < b.idx
			})
			for i := range batch {
				e := ta.Event{Action: batch[i].ev.a, At: batch[i].ev.at, Src: batch[i].ev.src, Seq: r.seq}
				r.seq++
				lastAt = e.At
				for _, s := range r.sinks {
					s.Observe(e)
				}
			}
			sinceFlush += len(batch)
			if sinceFlush >= flushEvery && !final {
				sinceFlush = 0
				// bound is a true low-watermark: every emitted event was
				// ≤ bound and every future stamp is ≥ bound.
				for _, s := range r.sinks {
					s.Flush(bound)
				}
				if bound > lastFlushed {
					lastFlushed = bound
				}
			}
			if !final {
				continue
			}
		}
		if final {
			// Final watermark: the stream has ended; no event with an
			// earlier stamp can follow.
			for _, s := range r.sinks {
				s.Flush(lastAt)
			}
			return
		}
		if r.pending() {
			// Heads exist but are stamped past the bound (pushed after
			// our clock read) or a producer is mid-record; the next pass
			// reads a later clock. Yield rather than spin.
			time.Sleep(20 * time.Microsecond)
			continue
		}
		// Idle flush: the stream is quiet but time has passed, so advance
		// the sinks' watermark anyway. bound can sit BELOW lastFlushed
		// here (a busy producer's old floor), so the monotone guard is
		// essential — a watermark must never retreat.
		if bound > lastFlushed && bound.Sub(lastFlushed) >= idleFlushQuantum {
			for _, s := range r.sinks {
				s.Flush(bound)
			}
			lastFlushed = bound
		}
		select {
		case <-r.wake:
		case <-time.After(5 * time.Millisecond):
			// Periodic re-check so a missed wake can only stall the
			// merge briefly, never forever.
		}
	}
}

// pending reports whether any ring holds an unconsumed event.
func (r *recorder) pending() bool {
	for _, rg := range r.rings {
		if _, ok := rg.peek(); ok {
			return true
		}
	}
	return false
}

// kindRank orders equal-stamp events so an operation's invocation can
// never be observed after its response: inputs, then everything else,
// then outputs. Stamps are nanosecond monotonic readings separated by at
// least a scheduler hand-off, so ties are theoretical — the rank exists
// to make the theoretical case harmless.
func kindRank(k ta.Kind) int {
	switch k {
	case ta.KindInput:
		return 0
	case ta.KindOutput:
		return 2
	default:
		return 1
	}
}

// eventRing is a bounded single-producer single-consumer queue of
// recorded events: a power-of-two ring indexed by free-running atomic
// head/tail counters (two atomic loads and a store per side on the
// uncontended fast path, as in linearize's spscRing). When the ring runs
// full the producer parks on the condition variable and the consumer
// broadcasts after popping — backpressure, never loss. state carries the
// producer's stamp floor for the merge bound: (stamp << 1) | busy.
type eventRing struct {
	buf  []recEvent
	mask uint64

	head  atomic.Uint64 // next slot to pop (consumer-owned)
	tail  atomic.Uint64 // next slot to push (producer-owned)
	state atomic.Int64  // (last-or-current stamp << 1) | mid-record flag

	mu       sync.Mutex
	cond     *sync.Cond
	prodPark atomic.Bool // producer is parked (full ring)
}

func newEventRing(capacity int) *eventRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	rg := &eventRing{buf: make([]recEvent, n), mask: uint64(n - 1)}
	rg.cond = sync.NewCond(&rg.mu)
	return rg
}

// push appends e, parking while the ring is full. Producer-side only.
func (rg *eventRing) push(e recEvent) {
	for {
		t := rg.tail.Load()
		if t-rg.head.Load() < uint64(len(rg.buf)) {
			rg.buf[t&rg.mask] = e
			rg.tail.Store(t + 1)
			return
		}
		rg.mu.Lock()
		rg.prodPark.Store(true)
		for rg.tail.Load()-rg.head.Load() == uint64(len(rg.buf)) {
			rg.cond.Wait()
		}
		rg.prodPark.Store(false)
		rg.mu.Unlock()
	}
}

// peek returns the oldest event without consuming it. Consumer-side only.
func (rg *eventRing) peek() (recEvent, bool) {
	h := rg.head.Load()
	if rg.tail.Load() == h {
		return recEvent{}, false
	}
	return rg.buf[h&rg.mask], true
}

// pop consumes the oldest event (after a successful peek) and unparks a
// full-ring producer. Consumer-side only.
func (rg *eventRing) pop() {
	rg.head.Store(rg.head.Load() + 1)
	if rg.prodPark.Load() {
		rg.mu.Lock()
		rg.cond.Broadcast()
		rg.mu.Unlock()
	}
}
