package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// captureSink records the merged stream as the consumer emits it,
// interleaved with the Flush watermarks. The recorder's flush() waits for
// the consumer goroutine to exit (the done channel), so tests may read
// the fields without locking once flush has returned.
type captureSink struct {
	events []ta.Event
	// flushAfter[i] holds the watermarks issued after i events had been
	// observed — the position lets tests check the low-watermark contract
	// against what followed.
	flushAfter map[int][]simtime.Time
}

func newCaptureSink() *captureSink {
	return &captureSink{flushAfter: map[int][]simtime.Time{}}
}

func (c *captureSink) Observe(e ta.Event) { c.events = append(c.events, e) }
func (c *captureSink) Flush(bound simtime.Time) {
	c.flushAfter[len(c.events)] = append(c.flushAfter[len(c.events)], bound)
}

func testAction(p, i int) ta.Action {
	return ta.Action{Name: "EV", Node: ta.NodeID(p), Kind: ta.KindInternal, Payload: fmt.Sprintf("p%d.%d", p, i)}
}

// gatedSink blocks every Observe until released, stalling the merge
// consumer mid-emit the way a long verification burst does in a live run.
type gatedSink struct {
	captureSink
	release chan struct{}
}

func (g *gatedSink) Observe(e ta.Event) {
	<-g.release
	g.captureSink.Observe(e)
}

// TestRecorderBackpressure pins the overflow policy the recorder
// documents: a full producer ring parks the producer until the consumer
// drains — backpressure, never silent loss. The consumer is stalled
// inside a gated sink while a producer pushes far past its ring
// capacity; the producer must stop making progress (parked in push, not
// discarding), and once the sink is released every event must arrive in
// order with zero drops. Events recorded after flush are the one
// sanctioned discard, and each must be counted.
func TestRecorderBackpressure(t *testing.T) {
	rec := newRecorder()
	const depth = 4
	const total = 64
	p := rec.producer(depth)
	sink := &gatedSink{release: make(chan struct{})}
	sink.flushAfter = map[int][]simtime.Time{}
	rec.start(time.Now(), []exec.Sink{sink})

	recorded := make(chan int, total)
	go func() {
		for i := 0; i < total; i++ {
			p.record(testAction(0, i), "test")
			recorded <- i
		}
		close(recorded)
	}()

	// With the consumer stuck in Observe it drains the ring at most once
	// before stalling, so the producer can complete only a handful of
	// records (one drained batch plus one ring fill) before push parks
	// it. If all 64 sail through a depth-4 ring behind a blocked sink,
	// events were dropped or buffered without bound — either way the
	// policy is broken.
	seen := 0
wait:
	for {
		select {
		case _, ok := <-recorded:
			if !ok {
				t.Fatalf("producer pushed all %d events through a depth-%d ring behind a blocked sink", total, depth)
			}
			seen++
		case <-time.After(200 * time.Millisecond):
			break wait // no progress for 200ms: producer is parked
		}
	}
	if seen >= total {
		t.Fatalf("producer completed %d records behind a blocked sink, want a parked producer", seen)
	}
	if got := rec.drops.Load(); got != 0 {
		t.Fatalf("drops = %d while producer should be parked, want 0", got)
	}

	close(sink.release)
	for range recorded {
	}
	rec.flush()

	if got := rec.drops.Load(); got != 0 {
		t.Fatalf("drops = %d, want 0 (policy is backpressure, not loss)", got)
	}
	if len(sink.events) != total {
		t.Fatalf("sink observed %d events, want %d", len(sink.events), total)
	}
	for i, e := range sink.events {
		if want := fmt.Sprintf("p0.%d", i); e.Action.Payload != want {
			t.Fatalf("event %d out of order: payload %v, want %s", i, e.Action.Payload, want)
		}
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}

	// After flush the recorder is closed: further records are discarded
	// but never silently — the drop counter owns them.
	p.record(testAction(0, total), "test")
	if got := rec.drops.Load(); got != 1 {
		t.Fatalf("post-flush record: drops = %d, want 1", got)
	}
	if len(sink.events) != total {
		t.Fatalf("post-flush record leaked into the sink")
	}
}

// TestRecorderConcurrentProducersStampOrder is the sharded recorder's
// equivalence property, run meaningfully under -race (tier-2 and CI):
// N producers recording concurrently must yield exactly the stream a
// sequential single-ring recorder would have produced for the same
// stamped events — every event delivered exactly once, the merged At
// non-decreasing with Seq dense, each producer's events in FIFO order,
// and every Flush watermark a true low-watermark for what follows.
func TestRecorderConcurrentProducersStampOrder(t *testing.T) {
	const producers = 8
	const perProducer = 500
	rec := newRecorder()
	ps := make([]*producer, producers)
	for i := range ps {
		// Small rings so the test exercises park/unpark under contention,
		// not just the uncontended fast path.
		ps[i] = rec.producer(32)
	}
	sink := newCaptureSink()
	rec.start(time.Now(), []exec.Sink{sink})

	var wg sync.WaitGroup
	for pi, p := range ps {
		wg.Add(1)
		go func(pi int, p *producer) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				p.record(testAction(pi, i), "test")
			}
		}(pi, p)
	}
	wg.Wait()
	rec.flush()

	if got := rec.drops.Load(); got != 0 {
		t.Fatalf("drops = %d, want 0", got)
	}
	if len(sink.events) != producers*perProducer {
		t.Fatalf("sink observed %d events, want %d", len(sink.events), producers*perProducer)
	}
	next := make([]int, producers)
	var lastAt simtime.Time
	for i, e := range sink.events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d, want dense sequence", i, e.Seq)
		}
		if e.At < lastAt {
			t.Fatalf("event %d stamped %v after %v: merge is not stamp-ordered", i, e.At, lastAt)
		}
		lastAt = e.At
		pi := int(e.Action.Node)
		if want := fmt.Sprintf("p%d.%d", pi, next[pi]); e.Action.Payload != want {
			t.Fatalf("producer %d out of FIFO order at merged index %d: payload %v, want %s", pi, i, e.Action.Payload, want)
		}
		next[pi]++
	}
	for pi, n := range next {
		if n != perProducer {
			t.Fatalf("producer %d delivered %d of %d events", pi, n, perProducer)
		}
	}
	// Low-watermark contract: every event observed after a Flush(bound)
	// must be stamped at or after that bound.
	for pos, bounds := range sink.flushAfter {
		for _, b := range bounds {
			for _, e := range sink.events[pos:] {
				if e.At < b {
					t.Fatalf("event stamped %v observed after watermark %v", e.At, b)
				}
			}
		}
	}
}
