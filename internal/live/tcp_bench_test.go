package live

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"testing"

	"psclock/internal/register"
	"psclock/internal/simtime"
)

// Frame-codec micro-benchmarks. The TCP transport keeps one persistent
// gob stream per connection: the type descriptors for Frame and its
// registered body types cross the wire once per stream and their codecs
// compile once. The per-frame variant below is the pattern the transport
// abandoned — a fresh encoder/decoder pair per frame recompiles and
// retransmits the descriptors every time, and at pipelined rates that
// recompilation dominated whole-process CPU profiles. The benchmarks pin
// both the allocs/op of the steady-state path and the gap to the naive
// pattern, so a regression back to per-frame codec construction is
// visible in numbers, not just in profiles.

// benchFrame is a representative inter-node frame: an UPDATE-style body
// (register.Value is one of the register package's gob-registered wire
// types) with clock tag and delay-measurement stamps populated.
func benchFrame() Frame {
	return Frame{
		From:      1,
		To:        2,
		Chan:      7,
		SentClock: simtime.Time(12345678),
		SentReal:  simtime.Time(12345000),
		Body:      register.Value{Writer: 1, Seq: 42},
	}
}

// BenchmarkFrameCodecStream measures the transport's actual hot path:
// encode one frame onto a persistent stream, decode it from the paired
// persistent decoder. Descriptor compilation amortizes to zero; the
// steady state is a handful of small allocations per frame (gob's
// interface-value decode).
func BenchmarkFrameCodecStream(b *testing.B) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	f := benchFrame()
	// Prime the stream so descriptor transmission is outside the loop,
	// as it is outside the steady state on a live connection.
	if err := enc.Encode(f); err != nil {
		b.Fatal(err)
	}
	var out Frame
	if err := dec.Decode(&out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(f); err != nil {
			b.Fatal(err)
		}
		if err := dec.Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameCodecPerFrame measures the abandoned pattern: a fresh
// encoder/decoder per frame, paying descriptor compilation and
// transmission every time. Kept as the contrast baseline for the
// persistent-stream numbers above.
func BenchmarkFrameCodecPerFrame(b *testing.B) {
	f := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(f); err != nil {
			b.Fatal(err)
		}
		var out Frame
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireCodec measures the client↔server varint request/response
// codec round trip (appendWireReq → readWireReq, appendWireResp →
// readWireResp). The append side reuses the caller's scratch and the
// read side a persistent bufio.Reader, so the steady state allocates
// nothing.
func BenchmarkWireCodec(b *testing.B) {
	req := wireReq{ID: 99, Reg: 7, Op: register.ActWrite, Val: register.Value{Writer: 1, Seq: 42}}
	resp := wireResp{ID: 99, Op: register.ActReturn, Val: register.Value{Writer: 1, Seq: 42}}
	var buf bytes.Buffer
	br := bufio.NewReader(&buf)
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scratch = appendWireReq(scratch[:0], req)
		scratch = appendWireResp(scratch, resp)
		buf.Write(scratch)
		if _, err := readWireReq(br); err != nil {
			b.Fatal(err)
		}
		if _, err := readWireResp(br); err != nil {
			b.Fatal(err)
		}
	}
}
