package live

import (
	"testing"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// TestLiveDetectorClockStep drives the heartbeat detector through a
// StepClock fault — the fleet chaos controller's clock adversary — on a
// live runtime. A step held within ε stays inside SafeTimeoutClock's 4ε
// margin: no suspicions. A step far past ε breaks the detector's
// accuracy at the faulty node: its watch timers were armed in pre-step
// clock coordinates, so after the jump their effective timeout shrinks by
// the step — below the peers' beat cadence — and it falsely suspects live
// peers, restoring them when their (punctual) beats arrive. Peers may
// also transiently suspect the stepped node (its beats carry stamps from
// the future, which the receive discipline holds until the local clock
// catches up), so the only invariant on the other side is that every
// suspicion involves the faulty node. The step folds into measured ε̂ —
// the evidence the fleet's chaos classifier flags.
func TestLiveDetectorClockStep(t *testing.T) {
	eps := 200 * us
	period := 20 * ms
	bounds := simtime.NewInterval(0, 5*ms)
	timeout := detector.SafeTimeoutClock(period, bounds, eps) + 2*ellBudget
	step := 30 * ms // ≫ ε, < τ: beats survive, stamps break accuracy

	var faulty *StepClock
	sink := &eventSink{}
	rt, err := New(Options{
		N:      3,
		Bounds: bounds,
		Ell:    ellBudget,
		Clocks: clock.PerfectFactory(),
		WrapClock: func(node int, c Clock) Clock {
			s := NewStepClock(c)
			if node == 0 {
				faulty = s
			}
			return s
		},
	}, func(id ta.NodeID, n int) core.Algorithm {
		return detector.New(detector.Params{Period: period, Timeout: timeout})
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.AddSink(sink)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}

	// In-band twin: ε/2 forward, hold, heal. The 4ε margin absorbs it.
	time.Sleep(100 * time.Millisecond * raceScale)
	faulty.SetOffset(eps / 2)
	time.Sleep(100 * time.Millisecond * raceScale)
	faulty.SetOffset(0)
	time.Sleep(100 * time.Millisecond * raceScale)
	if sus := sink.named(detector.ActSuspect); len(sus) != 0 {
		t.Fatalf("ε/2 step caused suspicions: %v", sus)
	}

	// Past-ε step, held across several beat periods, then healed.
	faulty.SetOffset(step)
	waitFor := func(name string, by ta.NodeID, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			for _, e := range sink.named(name) {
				if e.Action.Node == by {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("no %s within deadline", what)
	}
	waitFor(detector.ActSuspect, 0, "false suspicion by the stepped node")
	waitFor(detector.ActRestore, 0, "restore by the stepped node")
	faulty.SetOffset(0)
	time.Sleep(100 * time.Millisecond * raceScale)

	m := rt.Stop()
	for _, e := range sink.named(detector.ActSuspect) {
		if e.Action.Node != 0 && e.Action.Payload.(ta.NodeID) != 0 {
			t.Errorf("suspicion %v→%v involves neither side of the clock fault",
				e.Action.Node, e.Action.Payload)
		}
	}
	// The step is evidence: OffsetBound folds the high-water |offset| into
	// measured ε̂, which is how the fleet's chaos classifier flags it.
	if m.Eps < simtime.Duration(step) {
		t.Errorf("measured ε̂ = %v does not include the %v step", m.Eps, step)
	}
}
