package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"psclock/internal/ta"
)

// TCPTransport carries frames over loopback TCP: one listener per node,
// lazily dialed full-mesh connections, and a length-prefixed gob wire
// format (4-byte big-endian frame length, then the gob-encoded Frame).
// Each frame is encoded with a fresh gob stream so frames are
// self-contained on the wire; message bodies cross as interface values,
// which is why the algorithm packages register their body types
// (register/wire.go, detector/wire.go).
//
// Sends never block on the socket: each peer connection has a writer
// goroutine fed by a buffered queue, so a node's callback returns
// immediately and TCP backpressure cannot deadlock the node loops.
type TCPTransport struct {
	addrs []string
	lns   []net.Listener

	mu      sync.Mutex
	peers   map[ta.NodeID]*tcpPeer
	deliver func(Frame)
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

type tcpPeer struct {
	ch chan Frame
}

// tcpQueueDepth bounds each peer connection's outbound queue. Closed-loop
// workloads keep at most a few frames per link in flight; the depth only
// matters as a safety margin before Send starts reporting overload.
const tcpQueueDepth = 4096

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport opens n loopback listeners on ephemeral ports, one per
// node, and returns the transport. Addrs exposes the listen addresses.
func NewTCPTransport(n int) (*TCPTransport, error) {
	t := &TCPTransport{
		addrs: make([]string, n),
		lns:   make([]net.Listener, n),
		peers: make(map[ta.NodeID]*tcpPeer, n),
		done:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("live: listen for node %d: %w", i, err)
		}
		t.lns[i] = ln
		t.addrs[i] = ln.Addr().String()
	}
	return t, nil
}

// Addrs returns the per-node listen addresses.
func (t *TCPTransport) Addrs() []string {
	out := make([]string, len(t.addrs))
	copy(out, t.addrs)
	return out
}

// Start implements Transport: begin accepting inbound connections and
// decoding frames to the delivery callback.
func (t *TCPTransport) Start(deliver func(Frame)) error {
	t.mu.Lock()
	t.deliver = deliver
	t.mu.Unlock()
	for _, ln := range t.lns {
		ln := ln
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed
				}
				t.wg.Add(1)
				go func() {
					defer t.wg.Done()
					defer conn.Close()
					t.readLoop(conn, deliver)
				}()
			}
		}()
	}
	return nil
}

// readLoop decodes length-prefixed frames off one connection until EOF or
// shutdown.
func (t *TCPTransport) readLoop(conn net.Conn, deliver func(Frame)) {
	var hdr [4]byte
	buf := make([]byte, 0, 512)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > 1<<24 {
			return // corrupt length; frames are small
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		var f Frame
		if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&f); err != nil {
			return
		}
		select {
		case <-t.done:
			return
		default:
		}
		deliver(f)
	}
}

// Send implements Transport: enqueue the frame on the destination's writer.
func (t *TCPTransport) Send(f Frame) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("live: send on closed transport")
	}
	p, ok := t.peers[f.To]
	if !ok {
		if int(f.To) < 0 || int(f.To) >= len(t.addrs) {
			t.mu.Unlock()
			return fmt.Errorf("live: send to unknown node %v", f.To)
		}
		p = &tcpPeer{ch: make(chan Frame, tcpQueueDepth)}
		t.peers[f.To] = p
		addr := t.addrs[f.To]
		t.wg.Add(1)
		go t.writeLoop(p, addr)
	}
	t.mu.Unlock()
	select {
	case p.ch <- f:
		return nil
	case <-t.done:
		return fmt.Errorf("live: send on closing transport")
	default:
		return fmt.Errorf("live: outbound queue to node %v full", f.To)
	}
}

// writeLoop dials the peer and encodes queued frames until shutdown.
func (t *TCPTransport) writeLoop(p *tcpPeer, addr string) {
	defer t.wg.Done()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		// Drain so senders keep making progress; every frame is lost,
		// which shutdown and only shutdown should produce.
		for {
			select {
			case <-p.ch:
			case <-t.done:
				return
			}
		}
	}
	defer conn.Close()
	var buf bytes.Buffer
	var hdr [4]byte
	for {
		select {
		case f := <-p.ch:
			buf.Reset()
			if err := gob.NewEncoder(&buf).Encode(f); err != nil {
				continue
			}
			binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
			if _, err := conn.Write(hdr[:]); err != nil {
				return
			}
			if _, err := conn.Write(buf.Bytes()); err != nil {
				return
			}
		case <-t.done:
			return
		}
	}
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	for _, ln := range t.lns {
		if ln != nil {
			ln.Close()
		}
	}
	t.wg.Wait()
	return nil
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }
