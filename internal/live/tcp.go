package live

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPTransport carries frames over loopback TCP: one listener per node,
// one eagerly dialed connection per ordered node pair, and a single
// persistent gob stream per connection. Message bodies cross as
// interface values, which is why the algorithm packages register their
// body types (register/wire.go, detector/wire.go). The stream is
// long-lived on purpose: gob sends a type descriptor once per stream and
// compiles its codecs once, where a fresh codec per frame recompiles and
// retransmits them every time — at pipelined rates that recompilation
// dominated CPU profiles of the whole process.
//
// All logical register channels between a node pair multiplex the pair's
// single connection — Frame.Chan distinguishes them — so R register
// instances cost the same number of sockets as one.
//
// Connections are dialed up front in Start, not lazily at first send:
// dial plus handshake takes hundreds of microseconds on loopback, and a
// lazy dial charges that setup to the first message's [d1, d2] delay
// measurement (the seed run's two delay_violations were exactly this).
//
// Sends never block on the socket: each pair connection has a writer
// goroutine fed by a buffered queue. The writer coalesces every queued
// frame into its buffered stream per wakeup — writev-style batching — so
// under pipelined load the per-frame syscall cost amortizes away; an
// optional flush delay widens the coalescing window further at a latency
// cost.
type TCPTransport struct {
	n     int
	addrs []string
	lns   []net.Listener

	// peers is indexed from·n + to: one writer per ordered node pair.
	peers []*tcpPeer

	flushDelay time.Duration

	reconnects atomic.Int64

	mu      sync.Mutex
	started bool
	closed  atomic.Bool

	done chan struct{}
	wg   sync.WaitGroup
}

type tcpPeer struct {
	to int
	ch chan Frame
}

// tcpQueueDepth bounds each pair connection's outbound queue. Closed-loop
// workloads keep at most a few frames per link in flight; pipelined
// workloads keep roughly one frame per in-flight operation, so the depth
// is sized to the deepest pipelines pscserve drives before Send starts
// reporting overload.
const tcpQueueDepth = 8192

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport opens n loopback listeners on ephemeral ports, one per
// node, and returns the transport. Addrs exposes the listen addresses.
func NewTCPTransport(n int) (*TCPTransport, error) {
	t := &TCPTransport{
		n:     n,
		addrs: make([]string, n),
		lns:   make([]net.Listener, n),
		peers: make([]*tcpPeer, n*n),
		done:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("live: listen for node %d: %w", i, err)
		}
		t.lns[i] = ln
		t.addrs[i] = ln.Addr().String()
	}
	return t, nil
}

// Addrs returns the per-node listen addresses.
func (t *TCPTransport) Addrs() []string {
	out := make([]string, len(t.addrs))
	copy(out, t.addrs)
	return out
}

// SetFlushDelay widens the writer coalescing window: after picking up a
// frame, the writer waits up to d for more before flushing the batch.
// Zero (the default) flushes as soon as the queue drains — batching is
// then purely opportunistic and adds no latency. Must be called before
// Start.
func (t *TCPTransport) SetFlushDelay(d time.Duration) { t.flushDelay = d }

// Start implements Transport: dial every pair connection, then begin
// accepting inbound connections and decoding frames to the delivery
// callback.
func (t *TCPTransport) Start(deliver func(Frame)) error {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return fmt.Errorf("live: transport already started")
	}
	t.started = true
	t.mu.Unlock()
	for _, ln := range t.lns {
		ln := ln
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed
				}
				t.wg.Add(1)
				go func() {
					defer t.wg.Done()
					defer conn.Close()
					t.readLoop(conn, deliver)
				}()
			}
		}()
	}
	// Eager full-mesh dial: connection setup happens here, before any
	// frame exists to be charged for it.
	for from := 0; from < t.n; from++ {
		for to := 0; to < t.n; to++ {
			conn, err := net.Dial("tcp", t.addrs[to])
			if err != nil {
				t.Close()
				return fmt.Errorf("live: dial %d→%d: %w", from, to, err)
			}
			p := &tcpPeer{to: to, ch: make(chan Frame, tcpQueueDepth)}
			t.peers[from*t.n+to] = p
			t.wg.Add(1)
			go t.writeLoop(p, conn)
		}
	}
	return nil
}

// readLoop decodes one connection's gob stream until EOF or shutdown.
func (t *TCPTransport) readLoop(conn net.Conn, deliver func(Frame)) {
	dec := gob.NewDecoder(bufio.NewReaderSize(conn, 32<<10))
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		if t.closed.Load() {
			return
		}
		deliver(f)
	}
}

// Send implements Transport: enqueue the frame on its pair's writer.
func (t *TCPTransport) Send(f Frame) error {
	if t.closed.Load() {
		return fmt.Errorf("live: send on closed transport")
	}
	if int(f.From) < 0 || int(f.From) >= t.n || int(f.To) < 0 || int(f.To) >= t.n {
		return fmt.Errorf("live: send on unknown pair %v→%v", f.From, f.To)
	}
	p := t.peers[int(f.From)*t.n+int(f.To)]
	if p == nil {
		return fmt.Errorf("live: send before transport start")
	}
	select {
	case p.ch <- f:
		return nil
	case <-t.done:
		return fmt.Errorf("live: send on closing transport")
	default:
		return fmt.Errorf("live: outbound queue %v→%v full", f.From, f.To)
	}
}

// writeLoop coalesces queued frames into batched writes on one pair
// connection's persistent gob stream until shutdown.
func (t *TCPTransport) writeLoop(p *tcpPeer, conn net.Conn) {
	defer t.wg.Done()
	// conn is reassigned on reconnect; close whichever is current on exit.
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	bw := bufio.NewWriterSize(conn, 32<<10)
	enc := gob.NewEncoder(bw)
	var flushTimer *time.Timer
	if t.flushDelay > 0 {
		flushTimer = time.NewTimer(time.Hour)
		if !flushTimer.Stop() {
			<-flushTimer.C
		}
		defer flushTimer.Stop()
	}
	for {
		// Block for the batch's first frame.
		var f Frame
		select {
		case f = <-p.ch:
		case <-t.done:
			return
		}
		err := enc.Encode(f)
		// Opportunistic drain: everything already queued joins the batch
		// (bufio flushes itself if a batch outgrows its buffer).
		err = t.drainInto(enc, p, err)
		if flushTimer != nil && err == nil {
			// Flush-deadline window: linger briefly for frames that are
			// about to arrive, then drain once more.
			flushTimer.Reset(t.flushDelay)
			select {
			case f2 := <-p.ch:
				err = t.drainInto(enc, p, enc.Encode(f2))
			case <-flushTimer.C:
			case <-t.done:
				// Flush what we have before exiting.
			}
			if !flushTimer.Stop() {
				select {
				case <-flushTimer.C:
				default:
				}
			}
		}
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			// Connection gone. The erroring frame is lost (possibly
			// half-written, so it cannot safely be replayed on a stream the
			// far decoder will restart), but the link is not: redial with
			// bounded exponential backoff and resume with a fresh gob
			// stream. A lost register update is indistinguishable from a
			// message the model never delivered on time — the online
			// checker, not the transport, judges whether the run survived.
			conn.Close()
			conn = t.redial(p)
			if conn == nil {
				return // shutting down
			}
			t.reconnects.Add(1)
			bw = bufio.NewWriterSize(conn, 32<<10)
			enc = gob.NewEncoder(bw)
		}
	}
}

// redial reconnects one pair's writer with bounded exponential backoff
// (10ms doubling to 640ms), returning nil when the transport closes
// first.
func (t *TCPTransport) redial(p *tcpPeer) net.Conn {
	backoff := 10 * time.Millisecond
	const maxBackoff = 640 * time.Millisecond
	for {
		select {
		case <-t.done:
			return nil
		default:
		}
		conn, err := net.DialTimeout("tcp", t.addrs[p.to], time.Second)
		if err == nil {
			return conn
		}
		select {
		case <-t.done:
			return nil
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Reconnects returns the number of successful writer re-dials after
// dial/write failures — counted in the live report rather than failing
// the run.
func (t *TCPTransport) Reconnects() int64 { return t.reconnects.Load() }

// drainInto encodes every immediately available queued frame onto the
// stream; a sticky error short-circuits.
func (t *TCPTransport) drainInto(enc *gob.Encoder, p *tcpPeer, err error) error {
	for err == nil {
		select {
		case f := <-p.ch:
			err = enc.Encode(f)
		default:
			return nil
		}
	}
	return err
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		return nil
	}
	t.closed.Store(true)
	close(t.done)
	t.mu.Unlock()
	for _, ln := range t.lns {
		if ln != nil {
			ln.Close()
		}
	}
	t.wg.Wait()
	return nil
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }
