// Package stats provides the small summary-statistics and table-rendering
// helpers the benchmark harness uses to print the experiment tables and
// figure series of EXPERIMENTS.md.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"psclock/internal/simtime"
)

// Summary describes a sample of durations.
type Summary struct {
	N              int
	Min, Max, Mean simtime.Duration
	P50, P95, P99  simtime.Duration
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(ds []simtime.Duration) Summary {
	if len(ds) == 0 {
		return Summary{}
	}
	sorted := make([]simtime.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, d := range sorted {
		sum += int64(d)
	}
	pct := func(p float64) simtime.Duration {
		idx := int(p*float64(len(sorted)-1) + 0.5)
		return sorted[idx]
	}
	return Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: simtime.Duration(sum / int64(len(sorted))),
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v mean=%v p99=%v max=%v", s.N, s.Min, s.Mean, s.P99, s.Max)
}

// Stream is an O(1)-memory incremental aggregator of durations — the
// streaming counterpart of Summarize for pipelines that cannot retain the
// sample. It tracks count, extrema, and mean exactly; order statistics
// need the sample and are deliberately absent.
type Stream struct {
	N        int
	Min, Max simtime.Duration
	sum      int64
}

// Add folds one duration into the aggregate.
func (s *Stream) Add(d simtime.Duration) {
	if s.N == 0 || d < s.Min {
		s.Min = d
	}
	if s.N == 0 || d > s.Max {
		s.Max = d
	}
	s.N++
	s.sum += int64(d)
}

// Mean returns the running mean, or 0 for an empty aggregate.
func (s *Stream) Mean() simtime.Duration {
	if s.N == 0 {
		return 0
	}
	return simtime.Duration(s.sum / int64(s.N))
}

// Summary converts the aggregate to a Summary; percentile fields are left
// zero (unavailable without the retained sample).
func (s *Stream) Summary() Summary {
	if s.N == 0 {
		return Summary{}
	}
	return Summary{N: s.N, Min: s.Min, Max: s.Max, Mean: s.Mean()}
}

// MaxDuration returns the largest element, or 0 for an empty sample.
func MaxDuration(ds []simtime.Duration) simtime.Duration {
	var m simtime.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// Table renders aligned fixed-width text tables.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are kept.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	cell := func(r []string, i int) string {
		if i < len(r) {
			return r[i]
		}
		return ""
	}
	all := append([][]string{t.headers}, t.rows...)
	for _, r := range all {
		for i := 0; i < ncols; i++ {
			if w := len([]rune(cell(r, i))); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			c := cell(r, i)
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, ncols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
