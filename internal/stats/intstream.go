package stats

// IntStream accumulates integer samples in O(1) memory: count, sum, and
// max. It is the depth-gauge counterpart of Stream — the live load
// generator samples its pipeline occupancy through one per client, and
// the report derives the mean in-flight depth (Little's law cross-check:
// ops/s × mean latency ≈ mean depth).
type IntStream struct {
	N   int
	Sum int64
	Max int
}

// Add records one sample.
func (s *IntStream) Add(v int) {
	s.N++
	s.Sum += int64(v)
	if v > s.Max {
		s.Max = v
	}
}

// Merge folds o into s.
func (s *IntStream) Merge(o IntStream) {
	s.N += o.N
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the average sample, or 0 with no samples.
func (s *IntStream) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}
