package stats

import (
	"strings"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.String() != "n=0" {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]simtime.Duration{5})
	if s.N != 1 || s.Min != 5 || s.Max != 5 || s.Mean != 5 || s.P50 != 5 || s.P99 != 5 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	ds := make([]simtime.Duration, 0, 100)
	for i := 100; i >= 1; i-- { // reversed input: must not matter
		ds = append(ds, simtime.Duration(i))
	}
	s := Summarize(ds)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 50 { // (5050/100) truncated
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 51 || s.P99 != 99 {
		t.Errorf("p50=%v p99=%v", s.P50, s.P99)
	}
	// Input not mutated.
	if ds[0] != 100 {
		t.Error("input mutated")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]simtime.Duration{simtime.Millisecond, 2 * simtime.Millisecond})
	str := s.String()
	if !strings.Contains(str, "n=2") || !strings.Contains(str, "min=1ms") {
		t.Errorf("String = %q", str)
	}
}

func TestMaxDuration(t *testing.T) {
	if MaxDuration(nil) != 0 {
		t.Error("empty max != 0")
	}
	if MaxDuration([]simtime.Duration{3, 9, 1}) != 9 {
		t.Error("max wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("x", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns aligned: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "value")
	if lines[2][idx:idx+1] != "1" && lines[3][idx:idx+2] != "22" {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("1", "extra")
	tb.AddRow()
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("extra cell dropped:\n%s", out)
	}
}

func mkTimelineTrace() ta.Trace {
	return ta.Trace{
		{Action: ta.Action{Name: "READ", Node: 0, Peer: ta.NoNode, Kind: ta.KindInput}, At: 0},
		{Action: ta.Action{Name: "RETURN", Node: 0, Peer: ta.NoNode, Kind: ta.KindOutput}, At: 50},
		{Action: ta.Action{Name: "WRITE", Node: 1, Peer: ta.NoNode, Kind: ta.KindInput}, At: 25},
		{Action: ta.Action{Name: "ACK", Node: 1, Peer: ta.NoNode, Kind: ta.KindOutput}, At: 100},
		{Action: ta.Action{Name: "HIDDEN", Node: 1, Peer: ta.NoNode, Kind: ta.KindInternal}, At: 60},
	}
}

func TestTimelineBasics(t *testing.T) {
	out := Timeline(mkTimelineTrace(), 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 2 lanes + legend
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "n0") || !strings.HasPrefix(lines[2], "n1") {
		t.Errorf("lanes:\n%s", out)
	}
	if !strings.Contains(lines[1], "R") {
		t.Errorf("n0 lane missing markers: %q", lines[1])
	}
	if !strings.Contains(lines[2], "W") || !strings.Contains(lines[2], "A") {
		t.Errorf("n1 lane missing markers: %q", lines[2])
	}
	if strings.Contains(out, "H") && strings.Contains(lines[2], "H") {
		t.Error("internal action rendered")
	}
	if !strings.Contains(lines[3], "legend:") || !strings.Contains(lines[3], "R=READ/RETURN") {
		t.Errorf("legend = %q", lines[3])
	}
}

func TestTimelineEmpty(t *testing.T) {
	if out := Timeline(nil, 40); !strings.Contains(out, "empty") {
		t.Errorf("out = %q", out)
	}
}

func TestTimelineCollision(t *testing.T) {
	tr := ta.Trace{
		{Action: ta.Action{Name: "READ", Node: 0, Peer: ta.NoNode, Kind: ta.KindInput}, At: 10},
		{Action: ta.Action{Name: "WRITE", Node: 0, Peer: ta.NoNode, Kind: ta.KindInput}, At: 10},
		{Action: ta.Action{Name: "ACK", Node: 0, Peer: ta.NoNode, Kind: ta.KindOutput}, At: 1000},
	}
	out := Timeline(tr, 30)
	if !strings.Contains(out, "*") {
		t.Errorf("collision not marked:\n%s", out)
	}
}

func TestTimelineNarrowWidthClamped(t *testing.T) {
	out := Timeline(mkTimelineTrace(), 1)
	if len(out) == 0 {
		t.Error("empty output")
	}
}

func TestChartBasics(t *testing.T) {
	out := Chart("latency vs c", "c (µs)", "latency (µs)", []Series{
		{Name: "ours", Marker: 'o', Points: []Point{{0, 10}, {100, 20}, {200, 30}}},
		{Name: "base", Marker: 'b', Points: []Point{{0, 25}, {100, 25}, {200, 25}}},
	}, 40, 8)
	if !strings.Contains(out, "latency vs c") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "o=ours") || !strings.Contains(out, "b=base") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "b") {
		t.Error("missing markers")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("too few lines:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("t", "x", "y", nil, 40, 8)
	if !strings.Contains(out, "no data") {
		t.Errorf("out = %q", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point: ranges are artificially widened, no panic.
	out := Chart("t", "x", "y", []Series{{Name: "s", Marker: '*', Points: []Point{{5, 5}}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("marker missing:\n%s", out)
	}
}

func TestChartCollision(t *testing.T) {
	out := Chart("t", "x", "y", []Series{
		{Name: "a", Marker: 'a', Points: []Point{{1, 1}}},
		{Name: "b", Marker: 'b', Points: []Point{{1, 1}}},
	}, 20, 5)
	if !strings.Contains(out, "#") {
		t.Errorf("collision marker missing:\n%s", out)
	}
}

func TestChartClampedDimensions(t *testing.T) {
	out := Chart("t", "x", "y", []Series{{Name: "s", Marker: '*', Points: []Point{{0, 0}, {1, 1}}}}, 1, 1)
	if len(out) == 0 {
		t.Error("empty output")
	}
}
