package stats

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is one labeled line of a figure.
type Series struct {
	Name   string
	Marker rune
	Points []Point
}

// Chart renders an ASCII scatter of the series over shared axes: the
// "figure" renderer of the experiment harness. Width and height count the
// plot area; axes and labels are added around it.
func Chart(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			n++
		}
	}
	if n == 0 {
		return title + ": (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int((y - minY) / (maxY - minY) * float64(height-1))
		return clampInt(height-1-r, 0, height-1)
	}
	for _, s := range series {
		for _, p := range s.Points {
			r, c := row(p.Y), col(p.X)
			if grid[r][c] != ' ' && grid[r][c] != s.Marker {
				grid[r][c] = '#'
			} else {
				grid[r][c] = s.Marker
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yHi := fmt.Sprintf("%.3g", maxY)
	yLo := fmt.Sprintf("%.3g", minY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yHi)
		}
		if i == height-1 {
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	xLo := fmt.Sprintf("%.3g", minX)
	xHi := fmt.Sprintf("%.3g", maxX)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s   (x: %s, y: %s)\n",
		strings.Repeat(" ", pad), xLo, strings.Repeat(" ", gap), xHi, xlabel, ylabel)
	legend := make([]string, 0, len(series))
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", pad), strings.Join(legend, "  "))
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
