package stats

import (
	"testing"

	"psclock/internal/simtime"
)

func TestReservoirBelowCapacityIsExact(t *testing.T) {
	r := NewReservoir(16, 1)
	for i := 1; i <= 10; i++ {
		r.Add(simtime.Duration(i) * simtime.Millisecond)
	}
	s := r.Summary()
	if s.N != 10 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Min != simtime.Millisecond || s.Max != 10*simtime.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Summarize uses nearest-rank rounding: index int(0.5*9 + 0.5) = 5.
	if s.P50 != 6*simtime.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
}

func TestReservoirBoundedAndDeterministic(t *testing.T) {
	const k, n = 64, 10_000
	a, b := NewReservoir(k, 7), NewReservoir(k, 7)
	for i := 0; i < n; i++ {
		d := simtime.Duration(i) * simtime.Microsecond
		a.Add(d)
		b.Add(d)
	}
	if a.N() != n {
		t.Fatalf("N = %d", a.N())
	}
	if len(a.sample) != k {
		t.Fatalf("sample grew to %d, want %d", len(a.sample), k)
	}
	sa, sb := a.Summary(), b.Summary()
	if sa != sb {
		t.Fatalf("same seed, different summaries: %v vs %v", sa, sb)
	}
	if sa.N != n {
		t.Fatalf("summary N = %d, want total %d", sa.N, n)
	}
	// A uniform sample of 0..10ms should have a median within a few ms of
	// the true one; this is a sanity bound, not a statistical test.
	mid := 5 * simtime.Millisecond
	if sa.P50 < mid/2 || sa.P50 > mid*3/2 {
		t.Fatalf("p50 = %v implausible for uniform 0..10ms", sa.P50)
	}
}

func TestReservoirDegenerateK(t *testing.T) {
	r := NewReservoir(0, 1)
	r.Add(simtime.Millisecond)
	r.Add(2 * simtime.Millisecond)
	if r.N() != 2 {
		t.Fatalf("N = %d", r.N())
	}
	if len(r.sample) != 1 {
		t.Fatalf("k<1 not clamped: %d", len(r.sample))
	}
}
