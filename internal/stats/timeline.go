package stats

import (
	"fmt"
	"sort"
	"strings"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Timeline renders a per-node ASCII lane chart of a trace: one lane per
// node, time flowing left to right, each visible action marked by the
// first rune of its name (collisions at one cell render '*'). It is the
// quick-look tool behind pscsim's -timeline flag.
func Timeline(tr ta.Trace, width int) string {
	if width < 20 {
		width = 20
	}
	vis := tr.Visible()
	if len(vis) == 0 {
		return "(empty trace)\n"
	}
	nodes := vis.Nodes()
	span := vis.LTime()
	if span == 0 {
		span = 1
	}
	col := func(at simtime.Time) int {
		c := int(int64(at) * int64(width-1) / int64(span))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "0s%s%v\n", strings.Repeat(" ", max(1, width-len("0s")-len(span.String()))), simtime.Duration(span))
	legend := make(map[rune]map[string]bool)
	for _, n := range nodes {
		lane := make([]rune, width)
		for i := range lane {
			lane[i] = '-'
		}
		for _, e := range vis.AtNode(n) {
			c := col(e.At)
			marker := firstRune(e.Action.Name)
			if lane[c] != '-' && lane[c] != marker {
				marker = '*'
			}
			lane[c] = marker
			if marker != '*' {
				if legend[marker] == nil {
					legend[marker] = make(map[string]bool)
				}
				legend[marker][e.Action.Name] = true
			}
		}
		fmt.Fprintf(&b, "%-4s %s\n", n.String(), string(lane))
	}
	// Legend, sorted by marker.
	marks := make([]rune, 0, len(legend))
	for m := range legend {
		marks = append(marks, m)
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
	if len(marks) > 0 {
		b.WriteString("legend: ")
		parts := make([]string, 0, len(marks)+1)
		for _, m := range marks {
			names := make([]string, 0, len(legend[m]))
			for n := range legend[m] {
				names = append(names, n)
			}
			sort.Strings(names)
			parts = append(parts, fmt.Sprintf("%c=%s", m, strings.Join(names, "/")))
		}
		parts = append(parts, "*=overlap")
		b.WriteString(strings.Join(parts, "  "))
		b.WriteByte('\n')
	}
	return b.String()
}

func firstRune(s string) rune {
	for _, r := range s {
		return r
	}
	return '?'
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
