package stats

import (
	"math/rand"

	"psclock/internal/simtime"
)

// Reservoir is a seeded uniform reservoir sampler (Vitter's Algorithm R)
// over durations: order statistics for unboundedly long runs in O(k)
// memory. The live load generator uses it for latency percentiles — a
// multi-hour pscserve run must not retain one duration per operation.
// Not safe for concurrent use; callers serialize.
type Reservoir struct {
	sample []simtime.Duration
	k      int
	n      int
	rng    *rand.Rand
}

// NewReservoir returns a reservoir keeping a uniform sample of size k
// (k ≥ 1), seeded deterministically.
func NewReservoir(k int, seed int64) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{sample: make([]simtime.Duration, 0, k), k: k, rng: rand.New(rand.NewSource(seed))}
}

// Add folds one duration into the sample.
func (r *Reservoir) Add(d simtime.Duration) {
	r.n++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, d)
		return
	}
	if j := r.rng.Intn(r.n); j < r.k {
		r.sample[j] = d
	}
}

// N returns how many durations have been observed overall.
func (r *Reservoir) N() int { return r.n }

// Summary summarizes the sample; N reports the total observation count,
// and the order statistics are estimates once N exceeds the sample size.
func (r *Reservoir) Summary() Summary {
	s := Summarize(r.sample)
	s.N = r.n
	return s
}
