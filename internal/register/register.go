// Package register implements the paper's application (§6): linearizable
// read-write register algorithms.
//
//   - Algorithm L (§6.1, after Mavronicolas [10], generalizing
//     Attiya-Welch): designed in the timed-automaton model. A read waits
//     c+δ and returns the local copy; a write broadcasts UPDATE(v, t) and
//     acks after d'2−c; every node applies an update at exactly real time
//     t+δ, where t = sendTime+d'2, breaking same-instant ties by largest
//     writer index. Solves linearizability P with read cost c+δ and write
//     cost d'2−c (Lemma 6.1).
//
//   - Algorithm S (§6.2, Figure 3): L plus an extra 2ε wait at the start
//     of each read. Solves ε-superlinearizability Q (every operation
//     linearizes ≥ 2ε after invocation) with read cost 2ε+c+δ (Lemma 6.2).
//     Because Q_ε ⊆ P (Lemma 6.4), running S through the clock-model
//     transformation yields plain linearizability in the clock model with
//     read cost 2ε+δ+c and write cost d2+2ε−c (Theorem 6.5).
//
//   - Baseline: a reconstruction of the clock-model algorithm of [10]
//     (see baseline.go) with read cost 4u and write cost d2+3u for
//     u = 2ε, the comparison target of §6.3.
//
// All three implement core.Algorithm; L and S are written purely against
// Context.Time() and are therefore ε-time independent by construction.
package register

import (
	"fmt"

	"psclock/internal/core"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Environment action names of the register problem (§6.1).
const (
	ActRead   = "READ"
	ActWrite  = "WRITE"
	ActReturn = "RETURN"
	ActAck    = "ACK"
)

// Value is a register value. Written values are unique per execution
// (writer identity plus a per-writer sequence number), satisfying the §3
// uniqueness assumption.
type Value struct {
	Writer ta.NodeID
	Seq    int
}

// Initial is v_0, the register's initial value.
var Initial = Value{Writer: ta.NoNode, Seq: 0}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v == Initial {
		return "v0"
	}
	return fmt.Sprintf("%v.%d", v.Writer, v.Seq)
}

// updateMsg is the UPDATE(v, t) message: t is the sending time plus d'2,
// so the receiver applies the value at exactly t+δ (Figure 3).
type updateMsg struct {
	V Value
	T simtime.Time
}

// String implements fmt.Stringer (message labels must be stable).
func (m updateMsg) String() string { return fmt.Sprintf("upd(%v,%v)", m.V, m.T) }

// Params are the constants of algorithms L and S.
type Params struct {
	// C is the read/write tradeoff knob c ∈ [0, d'2−2ε] (§6.1).
	C simtime.Duration
	// Delta is δ, the arbitrarily small extra wait that adapts [10]'s
	// "inputs before outputs" model assumption to timed automata (§6.1).
	Delta simtime.Duration
	// D2 is d'2, the maximum message delay of the network the algorithm is
	// designed against. When the algorithm is run through the clock-model
	// transformation, this is the widened bound d2+2ε of Theorem 4.7.
	D2 simtime.Duration
	// Epsilon is ε, used by algorithm S for its extra 2ε read wait.
	Epsilon simtime.Duration
}

// Validate reports whether the parameters satisfy the §6.1 constraints.
func (p Params) Validate() error {
	if p.C < 0 || p.Delta <= 0 || p.D2 <= 0 || p.Epsilon < 0 {
		return fmt.Errorf("register: invalid params %+v (need C ≥ 0, Delta > 0, D2 > 0, Epsilon ≥ 0)", p)
	}
	if p.C > p.D2-2*p.Epsilon {
		return fmt.Errorf("register: c = %v exceeds d'2 − 2ε = %v", p.C, p.D2-2*p.Epsilon)
	}
	return nil
}

// timer keys
type (
	readTimer   struct{}
	ackTimer    struct{}
	updateTimer struct{ at simtime.Time }
)

type updateRec struct {
	proc ta.NodeID
	v    Value
}

// LS is the shared machinery of algorithms L and S; the only difference is
// the extra wait a read performs before sampling the local copy (0 for L,
// 2ε for S).
type LS struct {
	p         Params
	extraRead simtime.Duration

	value   Value
	updates map[simtime.Time]updateRec
	due     []simtime.Time // scratch for applyDueUpdates, reused across calls
}

var _ core.Algorithm = (*LS)(nil)

// NewL returns algorithm L with the given parameters.
func NewL(p Params) *LS {
	return &LS{p: p, extraRead: 0, value: Initial, updates: make(map[simtime.Time]updateRec)}
}

// NewS returns algorithm S: L with the 2ε superlinearizability wait.
func NewS(p Params) *LS {
	return &LS{p: p, extraRead: 2 * p.Epsilon, value: Initial, updates: make(map[simtime.Time]updateRec)}
}

// Factory adapts a constructor to core.AlgorithmFactory.
func Factory(newAlg func(Params) *LS, p Params) core.AlgorithmFactory {
	return func(ta.NodeID, int) core.Algorithm { return newAlg(p) }
}

// Start implements core.Algorithm.
func (r *LS) Start(core.Context) {}

// OnInput implements core.Algorithm.
func (r *LS) OnInput(ctx core.Context, name string, payload any) {
	switch name {
	case ActRead:
		// Figure 3: read := (active, now + c + 2ε + δ) — respond then.
		ctx.SetTimer(ctx.Time().Add(r.extraRead+r.p.C+r.p.Delta), readTimer{})
	case ActWrite:
		// Figure 3: broadcast UPDATE with t = now + d'2 immediately
		// (the SENDMSG precondition send-time = now forces it), ack at
		// now + d'2 − c. The environment supplies v (WRITE_i(v)); the
		// workloads keep written values unique (§3).
		v, ok := payload.(Value)
		if !ok {
			panic(fmt.Sprintf("register: WRITE payload %T is not a Value", payload))
		}
		ctx.Broadcast(updateMsg{V: v, T: ctx.Time().Add(r.p.D2)})
		ctx.SetTimer(ctx.Time().Add(r.p.D2-r.p.C), ackTimer{})
	default:
		panic(fmt.Sprintf("register: unknown input %q", name))
	}
}

// OnMessage implements core.Algorithm: the RECVMSG effect of Figure 3 —
// record the update keyed by its application time t+δ, keeping only the
// largest sender index per instant — and schedule its application.
func (r *LS) OnMessage(ctx core.Context, from ta.NodeID, body any) {
	m, ok := body.(updateMsg)
	if !ok {
		panic(fmt.Sprintf("register: unexpected message %T", body))
	}
	at := m.T.Add(r.p.Delta)
	if prev, exists := r.updates[at]; exists {
		if prev.proc < from {
			r.updates[at] = updateRec{proc: from, v: m.V}
		}
		return
	}
	r.updates[at] = updateRec{proc: from, v: m.V}
	ctx.SetTimer(at, updateTimer{at: at})
}

// OnTimer implements core.Algorithm.
func (r *LS) OnTimer(ctx core.Context, key any) {
	switch k := key.(type) {
	case updateTimer:
		r.applyDue(ctx.Time())
	case readTimer:
		// Figure 3's RETURN precondition forbids responding while an
		// update is scheduled for this very instant; applying everything
		// due first realizes the same ordering.
		r.applyDue(ctx.Time())
		ctx.Output(ActReturn, r.value)
	case ackTimer:
		ctx.Output(ActAck, nil)
	default:
		panic(fmt.Sprintf("register: unknown timer %T %v", k, k))
	}
}

// applyDue applies, in time order, every recorded update whose application
// time has arrived (the UPDATE internal action of Figure 3).
func (r *LS) applyDue(now simtime.Time) {
	r.value = applyDueUpdates(r.updates, r.value, now, &r.due)
}

// applyDueUpdates applies, in time order, every update with application
// time ≤ now, removing them from the map and returning the resulting value.
// scratch is the caller's reusable collection buffer: applyDue runs on
// every read and write, and allocating the due slice per call was the
// single largest allocation site in the executor-throughput profile.
func applyDueUpdates(updates map[simtime.Time]updateRec, value Value, now simtime.Time, scratch *[]simtime.Time) Value {
	if len(updates) == 0 {
		return value
	}
	due := (*scratch)[:0]
	for at := range updates {
		if !at.After(now) {
			due = append(due, at)
		}
	}
	*scratch = due
	if len(due) == 0 {
		return value
	}
	// Insertion sort: the due list rarely exceeds a handful of entries, and
	// sort.Slice allocates its comparison closure and reflection swapper on
	// every call — which made this the top allocation site in the executor
	// throughput profile.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j] < due[j-1]; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for _, at := range due {
		value = updates[at].v
		delete(updates, at)
	}
	return value
}

// Costs returns the paper's analytical read and write time complexities
// for these parameters: Lemma 6.1 for L (extra = 0), Lemma 6.2 for S
// (extra = 2ε).
func (r *LS) Costs() (read, write simtime.Duration) {
	return r.extraRead + r.p.C + r.p.Delta, r.p.D2 - r.p.C
}
