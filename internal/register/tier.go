package register

import (
	"fmt"
	"strconv"
	"strings"

	"psclock/internal/core"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Tier selects which consistency guarantee a key buys, and therefore which
// of the two §6 algorithms serves it. The trade is priced in clock terms:
// the lin tier runs algorithm S, paying the extra 2ε read wait that makes
// the key linearizable (Theorem 6.5); the seq tier runs algorithm L, which
// skips that wait — read cost c+δ instead of 2ε+c+δ — and guarantees only
// sequential consistency (the Attiya-Welch boundary experiment E14 probes).
// Writes cost d'2−c on both tiers. One node hosts any mix of tiers: the
// per-key algorithm instances share the node's clock, transport, and timer
// machinery, differing only in the read wait.
type Tier int

const (
	// TierLin is the linearizable tier: algorithm S (§6.2).
	TierLin Tier = iota
	// TierSeq is the sequentially consistent tier: algorithm L (§6.1).
	TierSeq
)

// String implements fmt.Stringer with the names the -tiers flag accepts.
func (t Tier) String() string {
	switch t {
	case TierLin:
		return "lin"
	case TierSeq:
		return "seq"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// ParseTier parses "lin" or "seq".
func ParseTier(s string) (Tier, error) {
	switch s {
	case "lin":
		return TierLin, nil
	case "seq":
		return TierSeq, nil
	}
	return 0, fmt.Errorf("register: unknown tier %q (want lin or seq)", s)
}

// New constructs the tier's algorithm instance with per-key parameters.
func (t Tier) New(p Params) *LS {
	if t == TierSeq {
		return NewL(p)
	}
	return NewS(p)
}

// Factory adapts the tier to core.AlgorithmFactory, mirroring Factory.
func (t Tier) Factory(p Params) core.AlgorithmFactory {
	return func(ta.NodeID, int) core.Algorithm { return t.New(p) }
}

// KeySpec is one key's tier and parameters. Per-key Params let keys on the
// same node be designed against different ε or c; they still share the
// node's physical clock and transport.
type KeySpec struct {
	Tier   Tier
	Params Params
}

// Costs returns the key's analytical read and write time complexities
// (Lemma 6.1 for seq, Lemma 6.2 for lin).
func (k KeySpec) Costs() (read, write simtime.Duration) {
	return k.Tier.New(k.Params).Costs()
}

// ParseTiers parses a per-register tier configuration: either an explicit
// colon-separated list ("lin:seq:lin"; a short list repeats its last
// element to cover all registers) or "mix:F" with F ∈ [0,1] the fraction
// of seq-tier registers, spread deterministically and evenly across the
// index space (register i is seq iff ⌊(i+1)·F⌋ > ⌊i·F⌋). An empty string
// means all-lin, the stack's historical default.
func ParseTiers(spec string, registers int) ([]Tier, error) {
	if registers <= 0 {
		return nil, fmt.Errorf("register: tiers need registers > 0, got %d", registers)
	}
	tiers := make([]Tier, registers)
	if spec == "" {
		return tiers, nil
	}
	if frac, ok := strings.CutPrefix(spec, "mix:"); ok {
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil || f < 0 || f > 1 {
			return nil, fmt.Errorf("register: bad tier mix %q (want mix:F with F in [0,1])", spec)
		}
		for i := range tiers {
			if int(float64(i+1)*f) > int(float64(i)*f) {
				tiers[i] = TierSeq
			}
		}
		return tiers, nil
	}
	parts := strings.Split(spec, ":")
	last := TierLin
	for i := range tiers {
		if i < len(parts) {
			t, err := ParseTier(parts[i])
			if err != nil {
				return nil, err
			}
			last = t
		}
		tiers[i] = last
	}
	if len(parts) > registers {
		return nil, fmt.Errorf("register: %d tiers listed for %d registers", len(parts), registers)
	}
	return tiers, nil
}
