package register

import (
	"fmt"

	"psclock/internal/core"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Baseline is a reconstruction of the clock-model linearizable register
// algorithm of Mavronicolas [10], the comparison target of §6.3.
//
// [10] is a PhD thesis that the paper cites only through its model ("clocks
// within a constant u of each other, proceeding at the real-time rate") and
// its complexity: read 4u, write d2+3u, achieved "with some complicated
// time-slicing". This reconstruction follows that description: writes are
// applied at *slot boundaries* — local clock times that are multiples of
// the slot width u — and are engineered to the published complexity
// envelope:
//
//   - WRITE(v) at local clock t broadcasts UPDATE(v, T) with
//     T = ceil_u(t + d2 + u): by then every node has received the message
//     (clock skew between nodes is at most u), and T lies on a slot
//     boundary. The writer acks at local clock T + u, when every node's
//     clock has surely passed T, so the update is applied everywhere.
//     Worst-case write cost: (t+d2+u rounded up by < u) + u − t < d2 + 3u.
//   - READ at local clock t waits until t + 4u and returns the local copy:
//     long enough that any update a previously-completed operation
//     witnessed (at most u of real-time application spread, plus u of
//     clock disagreement) has been applied locally.
//
// In the paper's clock model (|clock − now| ≤ ε), [10]'s precision u
// equals 2ε (§6.3). The reconstruction's costs match [10]'s bounds, so the
// §6.3 comparison — combined cost d2+7u versus the transformed algorithm
// S's d2+2u, with the read-cost crossover at c ≈ 3u−δ — is preserved; see
// DESIGN.md for the substitution note.
type Baseline struct {
	u  simtime.Duration // [10]'s clock precision, = 2ε in our model
	d2 simtime.Duration // physical link delay upper bound

	value   Value
	updates map[simtime.Time]updateRec
	due     []simtime.Time // scratch for applyDueUpdates, reused across calls
}

var _ core.Algorithm = (*Baseline)(nil)

// NewBaseline returns the baseline for clock precision u = 2ε and link
// delay bound d2.
func NewBaseline(u, d2 simtime.Duration) *Baseline {
	if u < 0 || d2 <= 0 {
		panic(fmt.Sprintf("register: invalid baseline params u=%v d2=%v", u, d2))
	}
	return &Baseline{u: u, d2: d2, value: Initial, updates: make(map[simtime.Time]updateRec)}
}

// BaselineFactory adapts NewBaseline to core.AlgorithmFactory.
func BaselineFactory(u, d2 simtime.Duration) core.AlgorithmFactory {
	return func(ta.NodeID, int) core.Algorithm { return NewBaseline(u, d2) }
}

// ceilSlot rounds t up to the next slot boundary (multiple of u).
func (b *Baseline) ceilSlot(t simtime.Time) simtime.Time {
	if b.u <= 0 {
		return t
	}
	rem := int64(t) % int64(b.u)
	if rem == 0 {
		return t
	}
	return t.Add(b.u - simtime.Duration(rem))
}

// Start implements core.Algorithm.
func (b *Baseline) Start(core.Context) {}

// OnInput implements core.Algorithm.
func (b *Baseline) OnInput(ctx core.Context, name string, payload any) {
	switch name {
	case ActRead:
		ctx.SetTimer(ctx.Time().Add(4*b.u), readTimer{})
	case ActWrite:
		v, ok := payload.(Value)
		if !ok {
			panic(fmt.Sprintf("register: WRITE payload %T is not a Value", payload))
		}
		apply := b.ceilSlot(ctx.Time().Add(b.d2 + b.u))
		ctx.Broadcast(updateMsg{V: v, T: apply})
		ctx.SetTimer(apply.Add(b.u), ackTimer{})
	default:
		panic(fmt.Sprintf("register: unknown input %q", name))
	}
}

// OnMessage implements core.Algorithm: record the update for its slot,
// keeping the largest writer index per slot, and schedule its application.
func (b *Baseline) OnMessage(ctx core.Context, from ta.NodeID, body any) {
	m, ok := body.(updateMsg)
	if !ok {
		panic(fmt.Sprintf("register: unexpected message %T", body))
	}
	if prev, exists := b.updates[m.T]; exists {
		if prev.proc < from {
			b.updates[m.T] = updateRec{proc: from, v: m.V}
		}
		return
	}
	b.updates[m.T] = updateRec{proc: from, v: m.V}
	ctx.SetTimer(m.T, updateTimer{at: m.T})
}

// OnTimer implements core.Algorithm.
func (b *Baseline) OnTimer(ctx core.Context, key any) {
	switch key.(type) {
	case updateTimer:
		b.applyDue(ctx.Time())
	case readTimer:
		b.applyDue(ctx.Time())
		ctx.Output(ActReturn, b.value)
	case ackTimer:
		ctx.Output(ActAck, nil)
	default:
		panic(fmt.Sprintf("register: unknown timer %T", key))
	}
}

func (b *Baseline) applyDue(now simtime.Time) {
	b.value = applyDueUpdates(b.updates, b.value, now, &b.due)
}

// Costs returns the baseline's analytical worst-case read and write time
// complexities from [10]: 4u and d2+3u.
func (b *Baseline) Costs() (read, write simtime.Duration) {
	return 4 * b.u, b.d2 + 3*b.u
}
