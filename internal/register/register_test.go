package register_test

import (
	"fmt"
	"testing"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

// runWorkload drives the net with one closed-loop client per node until all
// ops complete, returning the extracted history.
func runWorkload(t *testing.T, net *core.Net, w workload.Config, horizon simtime.Time) []linearize.Op {
	t.Helper()
	clients := workload.Attach(net, w)
	quiet, err := net.Sys.RunQuiet(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !quiet {
		// MMT systems never go quiescent (steps recur); just check clients.
		if err := net.Sys.Err(); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		if c.Done != w.Ops {
			t.Fatalf("%s completed %d/%d ops", c.Name(), c.Done, w.Ops)
		}
	}
	if err := net.Sys.Trace().CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func stdParams(eps simtime.Duration, bounds simtime.Interval, c simtime.Duration) register.Params {
	return register.Params{
		C:       c,
		Delta:   10 * us,
		D2:      bounds.Hi + 2*eps, // d'2 of Theorem 4.7
		Epsilon: eps,
	}
}

func TestParamsValidate(t *testing.T) {
	good := register.Params{C: ms, Delta: us, D2: 5 * ms, Epsilon: ms}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []register.Params{
		{C: -1, Delta: us, D2: 5 * ms},
		{C: 0, Delta: 0, D2: 5 * ms},
		{C: 0, Delta: us, D2: 0},
		{C: 4 * ms, Delta: us, D2: 5 * ms, Epsilon: ms}, // c > d'2−2ε
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestValueString(t *testing.T) {
	if register.Initial.String() != "v0" {
		t.Errorf("register.Initial = %q", register.Initial)
	}
	v := register.Value{Writer: 2, Seq: 5}
	if v.String() != "n2.5" {
		t.Errorf("register.Value = %q", v)
	}
}

// --- Lemma 6.1: algorithm L in the timed model ---

func TestAlgLTimedModelExactCosts(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi, Epsilon: 0}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 11}
	net := core.BuildTimed(cfg, register.Factory(register.NewL, p))
	ops := runWorkload(t, net, workload.Config{
		Ops:        40,
		Think:      simtime.NewInterval(0, 2*ms),
		WriteRatio: 0.4,
		Seed:       1,
		Stagger:    300 * us,
	}, simtime.Time(5*simtime.Second))

	if r := linearize.CheckLinearizable(ops, register.Initial.String()); !r.OK {
		t.Fatalf("L not linearizable in D_T: %s", r.Reason)
	}
	wantRead, wantWrite := p.C+p.Delta, p.D2-p.C
	reads, writes := register.Latencies(ops)
	for _, d := range reads {
		if d != wantRead {
			t.Fatalf("read latency %v, want exactly %v (Lemma 6.1)", d, wantRead)
		}
	}
	for _, d := range writes {
		if d != wantWrite {
			t.Fatalf("write latency %v, want exactly %v (Lemma 6.1)", d, wantWrite)
		}
	}
	if len(reads) == 0 || len(writes) == 0 {
		t.Fatal("workload produced no reads or no writes")
	}
}

// --- Lemma 6.2: algorithm S solves ε-superlinearizability in D_T ---

func TestAlgSTimedModelSuper(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 400 * us
	p := stdParams(eps, bounds, 600*us)
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 5}
	net := core.BuildTimed(cfg, register.Factory(register.NewS, p))
	ops := runWorkload(t, net, workload.Config{
		Ops:        30,
		Think:      simtime.NewInterval(0, 2*ms),
		WriteRatio: 0.4,
		Seed:       2,
		Stagger:    500 * us,
	}, simtime.Time(5*simtime.Second))

	if r := linearize.CheckSuperLinearizable(ops, register.Initial.String(), eps); !r.OK {
		t.Fatalf("S not ε-superlinearizable in D_T: %s", r.Reason)
	}
	wantRead, wantWrite := 2*eps+p.C+p.Delta, p.D2-p.C
	reads, writes := register.Latencies(ops)
	for _, d := range reads {
		if d != wantRead {
			t.Fatalf("read latency %v, want exactly %v (Lemma 6.2)", d, wantRead)
		}
	}
	for _, d := range writes {
		if d != wantWrite {
			t.Fatalf("write latency %v, want exactly %v", d, wantWrite)
		}
	}
}

// --- Theorem 6.5: transformed S solves plain linearizability in D_C ---

func TestAlgSClockModelLinearizable(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 500 * us
	clockFactories := map[string]clock.Factory{
		"perfect":  clock.PerfectFactory(),
		"spread":   clock.SpreadFactory(eps),
		"drift":    clock.DriftFactory(eps, 77),
		"sawtooth": clock.SawtoothFactory(eps, 6*ms),
	}
	delays := map[string]func() channel.DelayPolicy{
		"min":     channel.MinDelay,
		"max":     channel.MaxDelay,
		"uniform": channel.UniformDelay,
		"spread":  channel.SpreadDelay,
	}
	for cname, cf := range clockFactories {
		for dname, df := range delays {
			t.Run(cname+"/"+dname, func(t *testing.T) {
				p := stdParams(eps, bounds, 700*us)
				cfg := core.Config{N: 3, Bounds: bounds, Seed: 13, Clocks: cf, NewDelay: df}
				net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
				ops := runWorkload(t, net, workload.Config{
					Ops:        25,
					Think:      simtime.NewInterval(0, 2*ms),
					WriteRatio: 0.4,
					Seed:       3,
					Stagger:    400 * us,
				}, simtime.Time(5*simtime.Second))

				if r := linearize.CheckLinearizable(ops, register.Initial.String()); !r.OK {
					t.Fatalf("S^c not linearizable under %s/%s: %s", cname, dname, r.Reason)
				}
				// Theorem 6.5 costs are in clock time; real-time latencies
				// can deviate by at most 2ε (each endpoint by ε).
				wantRead, wantWrite := 2*eps+p.Delta+p.C, bounds.Hi+2*eps-p.C
				reads, writes := register.Latencies(ops)
				for _, d := range reads {
					if (d - wantRead).Abs() > 2*eps {
						t.Fatalf("read latency %v, want %v ± 2ε", d, wantRead)
					}
				}
				for _, d := range writes {
					if (d - wantWrite).Abs() > 2*eps {
						t.Fatalf("write latency %v, want %v ± 2ε", d, wantWrite)
					}
				}
			})
		}
	}
}

// --- The 2ε read wait is necessary: plain L violates linearizability in
// --- the clock model under adversarial clocks (the §6.2 motivation).

func TestAlgLClockModelViolates(t *testing.T) {
	bounds := simtime.NewInterval(200*us, 400*us)
	eps := 1 * ms // large skew relative to read duration
	p := register.Params{C: 0, Delta: 5 * us, D2: bounds.Hi + 2*eps, Epsilon: 0}
	violated := false
	for seed := int64(0); seed < 10 && !violated; seed++ {
		cfg := core.Config{
			N:      3,
			Bounds: bounds,
			Seed:   seed,
			Clocks: clock.SpreadFactory(eps),
		}
		net := core.BuildClocked(cfg, register.Factory(register.NewL, p))
		ops := runWorkload(t, net, workload.Config{
			Ops:        60,
			Think:      simtime.NewInterval(0, 700*us),
			WriteRatio: 0.3,
			Seed:       seed * 91,
			Stagger:    100 * us,
		}, simtime.Time(10*simtime.Second))
		if r := linearize.CheckLinearizable(ops, register.Initial.String()); !r.OK {
			violated = true
		}
	}
	if !violated {
		t.Fatal("algorithm L stayed linearizable in the clock model across all seeds; the 2ε wait appears unnecessary, contradicting §6.2")
	}
}

// --- The baseline reconstruction: linearizable, with [10]'s costs ---

func TestBaselineClockModel(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 500 * us
	u := 2 * eps
	for cname, cf := range map[string]clock.Factory{
		"perfect": clock.PerfectFactory(),
		"spread":  clock.SpreadFactory(eps),
		"drift":   clock.DriftFactory(eps, 5),
	} {
		t.Run(cname, func(t *testing.T) {
			cfg := core.Config{N: 3, Bounds: bounds, Seed: 17, Clocks: cf}
			net := core.BuildClocked(cfg, register.BaselineFactory(u, bounds.Hi))
			ops := runWorkload(t, net, workload.Config{
				Ops:        25,
				Think:      simtime.NewInterval(0, 2*ms),
				WriteRatio: 0.4,
				Seed:       4,
				Stagger:    300 * us,
			}, simtime.Time(5*simtime.Second))
			if r := linearize.CheckLinearizable(ops, register.Initial.String()); !r.OK {
				t.Fatalf("baseline not linearizable under %s clocks: %s", cname, r.Reason)
			}
			reads, writes := register.Latencies(ops)
			for _, d := range reads {
				if (d - 4*u).Abs() > 2*eps {
					t.Fatalf("baseline read %v, want 4u = %v ± 2ε", d, 4*u)
				}
			}
			for _, d := range writes {
				lo, hi := bounds.Hi+u, bounds.Hi+3*u+2*eps
				if d < lo-2*eps || d > hi {
					t.Fatalf("baseline write %v outside [%v, %v]", d, lo-2*eps, hi)
				}
			}
		})
	}
}

// --- Theorem 5.2 end to end: S through both simulations in D_M ---

func TestAlgSMMTModel(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 300 * us
	ell := 50 * us
	// d'2 for the algorithm per Theorem 5.2: d2 + 2ε + kℓ; the register
	// emits at most ~n+1 outputs per op, so a generous kℓ headroom of
	// 20ℓ covers it.
	kell := 20 * ell
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps + kell, Epsilon: eps}
	cfg := core.Config{
		N:      3,
		Bounds: bounds,
		Seed:   23,
		Clocks: clock.DriftFactory(eps, 9),
		Ell:    ell,
	}
	net := core.BuildMMT(cfg, register.Factory(register.NewS, p))
	ops := runWorkload(t, net, workload.Config{
		Ops:        20,
		Think:      simtime.NewInterval(0, 2*ms),
		WriteRatio: 0.4,
		Seed:       6,
		Stagger:    400 * us,
	}, simtime.Time(3*simtime.Second))

	if r := linearize.CheckLinearizable(ops, register.Initial.String()); !r.OK {
		t.Fatalf("S not linearizable in D_M: %s", r.Reason)
	}
	// Output shifts: every emitted response left the node within the
	// kℓ+2ε+3ℓ bound of Theorem 5.1 relative to its simulated clock time.
	bound := kell + 2*eps + 3*ell
	for _, n := range net.MMT {
		for _, st := range n.Stamps() {
			shift := st.Real.Sub(simtime.Time(st.SimClock)) // real − clock
			// |clock − real| ≤ ε contributes ε; queueing and steps the rest.
			if shift > simtime.Duration(bound) {
				t.Errorf("output %v shifted %v > bound %v", st.Action, shift, bound)
			}
		}
	}
}

// --- Alternation violations are rejected by register.History ---

func TestHistoryAlternationEnforced(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 0, Delta: 10 * us, D2: bounds.Hi, Epsilon: 0}
	cfg := core.Config{N: 1, Bounds: bounds, Seed: 1}
	net := core.BuildTimed(cfg, register.Factory(register.NewL, p))
	net.Invoke(0, register.ActRead, nil)
	net.Invoke(0, register.ActRead, nil) // second invocation while first outstanding
	_ = net.Sys.Run(simtime.Time(10 * ms))
	_, err := register.History(net.Sys.Trace().Visible())
	if err == nil {
		t.Fatal("alternation violation not detected")
	}
}

func TestHistoryPendingOps(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 0, Delta: 10 * us, D2: bounds.Hi, Epsilon: 0}
	cfg := core.Config{N: 1, Bounds: bounds, Seed: 1}
	net := core.BuildTimed(cfg, register.Factory(register.NewL, p))
	net.Invoke(0, register.ActWrite, register.Value{Writer: 0, Seq: 0})
	// Stop before the ack arrives.
	_ = net.Sys.Run(simtime.Time(100 * us))
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || !ops[0].Pending() {
		t.Fatalf("ops = %v, want one pending write", ops)
	}
}

// --- Cost helpers ---

func TestCosts(t *testing.T) {
	p := register.Params{C: 2 * ms, Delta: 10 * us, D2: 10 * ms, Epsilon: ms}
	rL, wL := register.NewL(p).Costs()
	if rL != p.C+p.Delta || wL != p.D2-p.C {
		t.Errorf("L costs = %v, %v", rL, wL)
	}
	rS, wS := register.NewS(p).Costs()
	if rS != 2*p.Epsilon+p.C+p.Delta || wS != p.D2-p.C {
		t.Errorf("S costs = %v, %v", rS, wS)
	}
	rB, wB := register.NewBaseline(2*ms, 10*ms).Costs()
	if rB != 8*ms || wB != 16*ms {
		t.Errorf("baseline costs = %v, %v", rB, wB)
	}
}

// Determinism across the full register stack.
func TestRegisterDeterminism(t *testing.T) {
	run := func() string {
		bounds := simtime.NewInterval(1*ms, 3*ms)
		eps := 300 * us
		p := stdParams(eps, bounds, 500*us)
		cfg := core.Config{N: 3, Bounds: bounds, Seed: 99, Clocks: clock.DriftFactory(eps, 3)}
		net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
		workload.Attach(net, workload.Config{Ops: 15, Think: simtime.NewInterval(0, ms), WriteRatio: 0.5, Seed: 8})
		if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(net.Sys.Trace().Visible().Labels())
	}
	if run() != run() {
		t.Error("non-deterministic execution")
	}
}

// TestAuditedSystems wraps every component of register systems in the
// ta.Audit contract checker and runs the full workload in each model: the
// executable face of the §2.1 axioms, checked on the real composition.
func TestAuditedSystems(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 300 * us
	ell := 50 * us
	for _, model := range []string{"timed", "clock", "mmt"} {
		model := model
		t.Run(model, func(t *testing.T) {
			d2p := bounds.Hi
			if model != "timed" {
				d2p += 2 * eps
			}
			if model == "mmt" {
				d2p += 24 * ell
			}
			p := register.Params{C: 300 * us, Delta: 10 * us, D2: d2p, Epsilon: eps}
			cfg := core.Config{N: 3, Bounds: bounds, Seed: 77, Clocks: clock.DriftFactory(eps, 5), Ell: ell}
			var net *core.Net
			switch model {
			case "timed":
				net = core.BuildTimed(cfg, register.Factory(register.NewS, p))
			case "clock":
				net = core.BuildClocked(cfg, register.Factory(register.NewS, p))
			case "mmt":
				net = core.BuildMMT(cfg, register.Factory(register.NewS, p))
			}
			var audits []*ta.Auditor
			wrap := func(a ta.Automaton) {
				au := ta.Audit(a)
				net.Sys.Replace(a.Name(), au)
				audits = append(audits, au)
			}
			for _, n := range net.Timed {
				wrap(n)
			}
			for _, n := range net.Clocked {
				wrap(n)
			}
			for _, n := range net.MMT {
				wrap(n)
			}
			for _, tk := range net.Ticks {
				wrap(tk)
			}
			for _, e := range net.Edges {
				wrap(e)
			}
			clients := workload.Attach(net, workload.Config{
				Ops: 15, Think: simtime.NewInterval(0, 2*ms), WriteRatio: 0.4, Seed: 3, Stagger: 300 * us,
			})
			for net.Sys.Now() < simtime.Time(20*simtime.Second) {
				done := true
				for _, c := range clients {
					if c.Done != 15 {
						done = false
					}
				}
				if done {
					break
				}
				if err := net.Sys.Run(net.Sys.Now().Add(20 * ms)); err != nil {
					t.Fatal(err)
				}
			}
			for _, au := range audits {
				if err := au.Err(); err != nil {
					t.Errorf("%v\nall: %v", err, au.Violations)
				}
			}
			ops, err := register.History(net.Sys.Trace().Visible())
			if err != nil {
				t.Fatal(err)
			}
			if r := linearize.CheckLinearizable(ops, register.Initial.String()); !r.OK {
				t.Fatalf("audited %s run not linearizable: %s", model, r.Reason)
			}
		})
	}
}
