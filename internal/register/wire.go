package register

import "encoding/gob"

// The live runtime's TCP transport gob-encodes message bodies as interface
// values, which requires the concrete types to be registered. updateMsg is
// unexported but its fields are exported, which is all gob needs; the
// registered name keys on the package path, so it stays stable.
func init() {
	gob.Register(updateMsg{})
	gob.Register(Value{})
}
