package register

import (
	"fmt"
	"sort"

	"psclock/internal/exec"
	"psclock/internal/linearize"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

// Monitor is the streaming counterpart of History + Check: an exec.Sink
// that pairs invocations with responses as events arrive and feeds each
// completed operation to a set of online linearizability checkers, so a
// run can be verified without retaining its trace. It enforces the same
// alternation condition History does (with identical error messages,
// indexed by event sequence number), aggregates per-kind latencies into
// O(1)-memory streams, and forwards the executor's low-watermark to the
// checkers so their windows stay bounded.
//
// Usage: construct, register checkers with AddCheck, attach with
// System.AddSink before the run, and after the run call Err, then
// Verdict for each registered check. Verdicts are byte-identical to
// running the batch entry points over the retained trace's History,
// because the monitor submits operations in exactly the order History
// lists them: response order for completed operations, node order for
// the operations still open when the run ends.
type Monitor struct {
	checks []monCheck
	keyOf  func(ta.NodeID) string
	open   map[ta.NodeID]monOpen
	err    error

	// Reads and Writes aggregate completed-operation latencies by kind.
	Reads, Writes stats.Stream

	finished bool
	results  map[string]linearize.Result
}

type monCheck struct {
	name string
	c    linearize.Checker
}

type monOpen struct {
	op  linearize.Op
	set bool
}

var _ exec.Sink = (*Monitor)(nil)

// NewMonitor returns an empty monitor. Register checkers with AddCheck
// before attaching it to an executor.
func NewMonitor() *Monitor {
	return &Monitor{
		open:    make(map[ta.NodeID]monOpen),
		results: make(map[string]linearize.Result),
	}
}

// AddCheck registers a named online checker over the monitored operation
// stream. Must be called before any event is observed, so the checker
// sees the stream from its start. The checker runs inline on the
// observing goroutine; AddShardedCheck moves it to a worker pool.
func (m *Monitor) AddCheck(name string, opt linearize.Options) {
	m.AddChecker(name, linearize.NewSharded(linearize.ShardedOptions{Check: opt}))
}

// AddShardedCheck registers a named checker fanned out across shards
// worker goroutines (below 2: inline, equivalent to AddCheck). The
// verdict is deterministic and equal to the inline checker's; only the
// observing goroutine's share of the work changes.
func (m *Monitor) AddShardedCheck(name string, opt linearize.Options, shards int) {
	m.AddChecker(name, linearize.NewSharded(linearize.ShardedOptions{Check: opt, Shards: shards}))
}

// AddChecker registers an arbitrary keyed checker (e.g. a Recorder
// capturing the command stream). Must be called before any event is
// observed. The monitor always drives Finish on every registered
// checker, so sharded checkers' workers are reliably terminated.
func (m *Monitor) AddChecker(name string, c linearize.Checker) {
	m.checks = append(m.checks, monCheck{name: name, c: c})
}

// SetKeyFunc sets the register-routing key function: the key under which
// a node's operations are checked. All nodes sharing a key form one
// register history, checked for linearizability independently of every
// other key — the multi-register fan-out. Unset (or nil) means a single
// anonymous register, the single-register monitor semantics.
func (m *Monitor) SetKeyFunc(fn func(ta.NodeID) string) { m.keyOf = fn }

// key resolves a node's routing key.
func (m *Monitor) key(n ta.NodeID) string {
	if m.keyOf == nil {
		return ""
	}
	return m.keyOf(n)
}

// Observe implements exec.Sink, mirroring History's alternation state
// machine one event at a time. After a contract violation the monitor
// stops consuming: Err reports the first violation, and verdicts are
// meaningless, exactly as History returning an error preempts checking.
func (m *Monitor) Observe(e ta.Event) {
	if m.err != nil {
		return
	}
	a := e.Action
	switch a.Name {
	case ActRead, ActWrite:
		if a.Kind == ta.KindInternal {
			return
		}
		cur := m.open[a.Node]
		if cur.set {
			m.err = fmt.Errorf("register: event %d: %v invoked at %v while %v is outstanding (alternation condition)",
				e.Seq, a.Name, a.Node, cur.op.Kind)
			return
		}
		op := linearize.Op{Node: a.Node, Inv: e.At, Res: simtime.Never}
		if a.Name == ActRead {
			op.Kind = linearize.Read
		} else {
			op.Kind = linearize.Write
			v, ok := a.Payload.(Value)
			if !ok {
				m.err = fmt.Errorf("register: event %d: WRITE payload %T is not a Value", e.Seq, a.Payload)
				return
			}
			op.Value = v.String()
		}
		m.open[a.Node] = monOpen{op: op, set: true}
		key := m.key(a.Node)
		for _, c := range m.checks {
			c.c.Begin(key, a.Node, e.At)
		}
	case ActReturn, ActAck:
		if a.Kind == ta.KindInternal {
			return
		}
		cur := m.open[a.Node]
		if !cur.set {
			m.err = fmt.Errorf("register: event %d: response %v at %v with no outstanding operation", e.Seq, a.Name, a.Node)
			return
		}
		if a.Name == ActReturn {
			if cur.op.Kind != linearize.Read {
				m.err = fmt.Errorf("register: event %d: RETURN at %v answers a write", e.Seq, a.Node)
				return
			}
			v, ok := a.Payload.(Value)
			if !ok {
				m.err = fmt.Errorf("register: event %d: RETURN payload %T is not a Value", e.Seq, a.Payload)
				return
			}
			cur.op.Value = v.String()
		} else if cur.op.Kind != linearize.Write {
			m.err = fmt.Errorf("register: event %d: ACK at %v answers a read", e.Seq, a.Node)
			return
		}
		cur.op.Res = e.At
		d := cur.op.Res.Sub(cur.op.Inv)
		if cur.op.Kind == linearize.Read {
			m.Reads.Add(d)
		} else {
			m.Writes.Add(d)
		}
		key := m.key(a.Node)
		for _, c := range m.checks {
			c.c.Add(key, cur.op)
		}
		m.open[a.Node] = monOpen{}
	}
}

// Flush implements exec.Sink: the executor's low-watermark becomes the
// checkers' Advance bound, letting them settle and discard every
// operation whose widened window lies entirely before it.
func (m *Monitor) Flush(bound simtime.Time) {
	if m.err != nil {
		return
	}
	for _, c := range m.checks {
		c.c.Advance(bound)
	}
}

// Err returns the first contract violation observed, or nil. Like a
// History error, a non-nil Err preempts the verdicts.
func (m *Monitor) Err() error { return m.err }

// Finish submits the operations still open at the end of the run as
// pending (in node order, matching no particular trace order — pending
// operations carry Res = Never, so their relative submission order is
// immaterial to the verdict) and finalizes every checker. Idempotent;
// Verdict calls it implicitly.
func (m *Monitor) Finish() {
	if m.finished {
		return
	}
	m.finished = true
	var nodes []ta.NodeID
	for n, cur := range m.open {
		if cur.set {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		op := m.open[n].op
		key := m.key(n)
		for _, c := range m.checks {
			c.c.Add(key, op)
		}
		m.open[n] = monOpen{}
	}
	for _, c := range m.checks {
		m.results[c.name] = c.c.Finish()
	}
}

// Verdict returns the named checker's final result, finalizing the
// monitor on first use. Panics on an unregistered name.
func (m *Monitor) Verdict(name string) linearize.Result {
	m.Finish()
	r, ok := m.results[name]
	if !ok {
		panic(fmt.Sprintf("register: Verdict(%q): no such check", name))
	}
	return r
}
