package register

import (
	"strconv"
	"testing"

	"psclock/internal/simtime"
)

func TestParseTiers(t *testing.T) {
	cases := []struct {
		spec string
		n    int
		want string // "l"/"s" per register, "" for error
	}{
		{"", 4, "llll"},
		{"lin", 3, "lll"},
		{"seq", 3, "sss"},
		{"lin:seq:lin", 3, "lsl"},
		{"lin:seq", 4, "lsss"}, // short list repeats its last element
		{"mix:0", 4, "llll"},
		{"mix:1", 4, "ssss"},
		{"mix:0.5", 4, "lsls"},
		{"mix:0.25", 8, "lllsllls"}, // 2 of 8, evenly spread
		{"bogus", 2, ""},
		{"mix:1.5", 2, ""},
		{"lin:lin:lin", 2, ""}, // more tiers than registers
	}
	for _, c := range cases {
		tiers, err := ParseTiers(c.spec, c.n)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseTiers(%q, %d): want error, got %v", c.spec, c.n, tiers)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTiers(%q, %d): %v", c.spec, c.n, err)
			continue
		}
		got := ""
		for _, tr := range tiers {
			if tr == TierSeq {
				got += "s"
			} else {
				got += "l"
			}
		}
		if got != c.want {
			t.Errorf("ParseTiers(%q, %d) = %s, want %s", c.spec, c.n, got, c.want)
		}
	}
}

// mix:F yields ⌊F·R⌋ or ⌈F·R⌉ seq registers for any F, spread so every
// prefix holds roughly its share.
func TestParseTiersMixCount(t *testing.T) {
	for _, f := range []string{"0.1", "0.3", "0.5", "0.7", "0.9"} {
		tiers, err := ParseTiers("mix:"+f, 64)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, tr := range tiers {
			if tr == TierSeq {
				n++
			}
		}
		frac, err := strconv.ParseFloat(f, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := int(frac * 64)
		if n != want && n != want+1 {
			t.Errorf("mix:%s over 64 registers: %d seq, want %d or %d", f, n, want, want+1)
		}
	}
}

// The tier read discount is exactly the 2ε wait algorithm S pays for
// linearizability: same write cost, seq reads 2ε cheaper (Lemmas 6.1, 6.2).
func TestTierCosts(t *testing.T) {
	p := Params{C: 2 * simtime.Millisecond, Delta: simtime.Millisecond,
		D2: 10 * simtime.Millisecond, Epsilon: simtime.Millisecond}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	linR, linW := KeySpec{Tier: TierLin, Params: p}.Costs()
	seqR, seqW := KeySpec{Tier: TierSeq, Params: p}.Costs()
	if linW != seqW {
		t.Errorf("write costs differ across tiers: lin %v, seq %v", linW, seqW)
	}
	if d := linR - seqR; d != 2*p.Epsilon {
		t.Errorf("read discount = %v, want 2ε = %v", d, 2*p.Epsilon)
	}
}

func TestParseTierRoundTrip(t *testing.T) {
	for _, tr := range []Tier{TierLin, TierSeq} {
		got, err := ParseTier(tr.String())
		if err != nil || got != tr {
			t.Errorf("ParseTier(%q) = %v, %v", tr.String(), got, err)
		}
	}
	if _, err := ParseTier("strong"); err == nil {
		t.Error("ParseTier accepted an unknown tier")
	}
}
