package register

import (
	"testing"

	"psclock/internal/simtime"
)

func TestCeilSlot(t *testing.T) {
	ms := simtime.Millisecond
	b := NewBaseline(ms, 10*ms)
	cases := []struct{ in, want simtime.Time }{
		{0, 0},
		{1, simtime.Time(ms)},
		{simtime.Time(ms), simtime.Time(ms)},
		{simtime.Time(ms) + 1, simtime.Time(2 * ms)},
	}
	for _, c := range cases {
		if got := b.ceilSlot(c.in); got != c.want {
			t.Errorf("ceilSlot(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	z := NewBaseline(0, 10*ms)
	if z.ceilSlot(12345) != 12345 {
		t.Error("u=0 slotting should be identity")
	}
}
