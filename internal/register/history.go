package register

import (
	"fmt"

	"psclock/internal/linearize"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// History extracts the register operation history from a trace's visible
// environment actions, pairing each READ with its RETURN and each WRITE
// with its ACK per node. It enforces the alternation condition of §6.1
// (invoke/response alternate at each node); a trace in which the
// environment violates alternation is outside the problem's domain and is
// reported as an error. Operations still open at the end of the trace are
// returned as pending (Res = simtime.Never).
func History(tr ta.Trace) ([]linearize.Op, error) {
	type open struct {
		op  linearize.Op
		set bool
	}
	pending := make(map[ta.NodeID]open)
	var ops []linearize.Op
	for i, e := range tr {
		a := e.Action
		switch a.Name {
		case ActRead, ActWrite:
			if a.Kind == ta.KindInternal {
				continue
			}
			cur := pending[a.Node]
			if cur.set {
				return nil, fmt.Errorf("register: event %d: %v invoked at %v while %v is outstanding (alternation condition)",
					i, a.Name, a.Node, cur.op.Kind)
			}
			op := linearize.Op{Node: a.Node, Inv: e.At, Res: simtime.Never}
			if a.Name == ActRead {
				op.Kind = linearize.Read
			} else {
				op.Kind = linearize.Write
				v, ok := a.Payload.(Value)
				if !ok {
					return nil, fmt.Errorf("register: event %d: WRITE payload %T is not a Value", i, a.Payload)
				}
				op.Value = v.String()
			}
			pending[a.Node] = open{op: op, set: true}
		case ActReturn, ActAck:
			if a.Kind == ta.KindInternal {
				continue
			}
			cur := pending[a.Node]
			if !cur.set {
				return nil, fmt.Errorf("register: event %d: response %v at %v with no outstanding operation", i, a.Name, a.Node)
			}
			if a.Name == ActReturn {
				if cur.op.Kind != linearize.Read {
					return nil, fmt.Errorf("register: event %d: RETURN at %v answers a write", i, a.Node)
				}
				v, ok := a.Payload.(Value)
				if !ok {
					return nil, fmt.Errorf("register: event %d: RETURN payload %T is not a Value", i, a.Payload)
				}
				cur.op.Value = v.String()
			} else if cur.op.Kind != linearize.Write {
				return nil, fmt.Errorf("register: event %d: ACK at %v answers a read", i, a.Node)
			}
			cur.op.Res = e.At
			ops = append(ops, cur.op)
			pending[a.Node] = open{}
		}
	}
	for _, cur := range pending {
		if cur.set {
			ops = append(ops, cur.op)
		}
	}
	return ops, nil
}

// Latencies returns the observed response times of all completed
// operations, split by kind.
func Latencies(ops []linearize.Op) (reads, writes []simtime.Duration) {
	for _, o := range ops {
		if o.Pending() {
			continue
		}
		d := o.Res.Sub(o.Inv)
		if o.Kind == linearize.Read {
			reads = append(reads, d)
		} else {
			writes = append(writes, d)
		}
	}
	return reads, writes
}
