package register_test

import (
	"fmt"
	"math/rand"
	"testing"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/workload"
)

// TestRandomizedGrid runs the transformed register through dozens of
// randomly drawn configurations — system size, delay bounds, ε, the c
// knob, clock adversary, delay adversary — and requires linearizability
// every time. This is the library's fuzz net: any regression in the
// transformation, the buffers, the clock inversion, or the executor shows
// up here as a seed to replay.
func TestRandomizedGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is several seconds; skipped with -short")
	}
	const trials = 36
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(trial) * 7717))
			n := 2 + r.Intn(4)
			d1 := simtime.Duration(r.Int63n(int64(2 * ms)))
			d2 := d1 + 200*us + simtime.Duration(r.Int63n(int64(3*ms)))
			eps := simtime.Duration(r.Int63n(int64(ms))) + 10*us
			bounds := simtime.NewInterval(d1, d2)
			d2p := d2 + 2*eps
			cKnob := simtime.Duration(r.Int63n(int64(d2p - 2*eps + 1)))
			p := register.Params{C: cKnob, Delta: 5 * us, D2: d2p, Epsilon: eps}
			if err := p.Validate(); err != nil {
				t.Fatalf("drew invalid params: %v", err)
			}

			var cf clock.Factory
			switch r.Intn(4) {
			case 0:
				cf = clock.PerfectFactory()
			case 1:
				cf = clock.SpreadFactory(eps)
			case 2:
				cf = clock.DriftFactory(eps, int64(trial))
			default:
				cf = clock.SawtoothFactory(eps, 8*eps+ms)
			}
			var df func() channel.DelayPolicy
			switch r.Intn(4) {
			case 0:
				df = channel.MinDelay
			case 1:
				df = channel.MaxDelay
			case 2:
				df = channel.SpreadDelay
			default:
				df = channel.UniformDelay
			}

			cfg := core.Config{
				N: n, Bounds: bounds, Seed: int64(trial),
				Clocks: cf, NewDelay: df, FIFO: r.Intn(2) == 0,
			}
			net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
			clients := workload.Attach(net, workload.Config{
				Ops:        12,
				Think:      simtime.NewInterval(0, simtime.Duration(r.Int63n(int64(3*ms)))),
				WriteRatio: 0.2 + 0.6*r.Float64(),
				Seed:       int64(trial) * 13,
				Stagger:    simtime.Duration(r.Int63n(int64(ms))),
			})
			if _, err := net.Sys.RunQuiet(simtime.Time(60 * simtime.Second)); err != nil {
				t.Fatal(err)
			}
			for _, c := range clients {
				if c.Done != 12 {
					t.Fatalf("%s: %d/12 (n=%d d=[%v,%v] ε=%v c=%v)", c.Name(), c.Done, n, d1, d2, eps, cKnob)
				}
			}
			tr := net.Sys.Trace()
			if err := tr.CheckWellFormed(); err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckUniqueMessages(); err != nil {
				t.Fatal(err)
			}
			ops, err := register.History(tr.Visible())
			if err != nil {
				t.Fatal(err)
			}
			if res := linearize.CheckLinearizable(ops, register.Initial.String()); !res.OK {
				t.Fatalf("not linearizable (n=%d d=[%v,%v] ε=%v c=%v): %s",
					n, d1, d2, eps, cKnob, res.Reason)
			}
			// The paper's stronger statement holds too: every clock-model
			// execution of S is in Q_ε.
			if res := linearize.Check(ops, linearize.Options{
				Initial:     register.Initial.String(),
				MinAfterInv: 2 * eps,
				Widen:       eps,
			}); !res.OK {
				t.Fatalf("not in Q_ε (n=%d d=[%v,%v] ε=%v c=%v): %s",
					n, d1, d2, eps, cKnob, res.Reason)
			}
			// And every node action's clock stamp is within ε of real time
			// (Theorem 4.6's core fact).
			for _, node := range net.Clocked {
				for _, s := range node.Stamps() {
					if s.Skew().Abs() > eps {
						t.Fatalf("stamp skew %v > ε at %v", s.Skew(), s.Action)
					}
				}
			}
		})
	}
}

// TestScaleSixteenNodes runs the transformed register at n=16 (240 edges,
// 16 clients): a scaling smoke test for the executor and the checker.
func TestScaleSixteenNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("n=16 run; skipped with -short")
	}
	eps := 300 * us
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 400 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
	cfg := core.Config{N: 16, Bounds: bounds, Seed: 99, Clocks: clock.DriftFactory(eps, 4)}
	net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
	clients := workload.Attach(net, workload.Config{
		Ops: 8, Think: simtime.NewInterval(0, 3*ms), WriteRatio: 0.3, Seed: 6, Stagger: 200 * us,
	})
	if _, err := net.Sys.RunQuiet(simtime.Time(60 * simtime.Second)); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if c.Done != 8 {
			t.Fatalf("%s: %d/8", c.Name(), c.Done)
		}
	}
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 128 {
		t.Fatalf("ops = %d", len(ops))
	}
	if res := linearize.CheckLinearizable(ops, register.Initial.String()); !res.OK {
		t.Fatalf("n=16 not linearizable: %s", res.Reason)
	}
}
