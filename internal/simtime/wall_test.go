package simtime

import (
	"math"
	"testing"
	"time"
)

func TestToWall(t *testing.T) {
	cases := []struct {
		name string
		d    Duration
		want time.Duration
		ok   bool
	}{
		{"zero", 0, 0, true},
		{"one ns", Nanosecond, time.Nanosecond, true},
		{"millis", 3 * Millisecond, 3 * time.Millisecond, true},
		{"large", 290 * 365 * 24 * 3600 * Second, 0, true}, // ~290 years still representable
		{"negative", -Millisecond, 0, false},
		{"min int64", Duration(math.MinInt64), 0, false},
		{"forever", Forever, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ToWall(c.d)
			if (err == nil) != c.ok {
				t.Fatalf("ToWall(%v) error = %v, want ok=%v", c.d, err, c.ok)
			}
			if err == nil && c.want != 0 && got != c.want {
				t.Fatalf("ToWall(%v) = %v, want %v", c.d, got, c.want)
			}
		})
	}
}

func TestFromWall(t *testing.T) {
	cases := []struct {
		name string
		d    time.Duration
		want Duration
		ok   bool
	}{
		{"zero", 0, 0, true},
		{"micro", time.Microsecond, Microsecond, true},
		{"second", time.Second, Second, true},
		{"negative", -time.Second, 0, false},
		{"max collides with Forever", time.Duration(math.MaxInt64), 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := FromWall(c.d)
			if (err == nil) != c.ok {
				t.Fatalf("FromWall(%v) error = %v, want ok=%v", c.d, err, c.ok)
			}
			if err == nil && got != c.want {
				t.Fatalf("FromWall(%v) = %v, want %v", c.d, got, c.want)
			}
		})
	}
}

func TestTimeFromWall(t *testing.T) {
	cases := []struct {
		name    string
		elapsed time.Duration
		want    Time
		ok      bool
	}{
		{"epoch", 0, Zero, true},
		{"later", 42 * time.Millisecond, Time(42 * Millisecond), true},
		{"negative", -time.Nanosecond, 0, false},
		{"max collides with Never", time.Duration(math.MaxInt64), 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := TimeFromWall(c.elapsed)
			if (err == nil) != c.ok {
				t.Fatalf("TimeFromWall(%v) error = %v, want ok=%v", c.elapsed, err, c.ok)
			}
			if err == nil && got != c.want {
				t.Fatalf("TimeFromWall(%v) = %v, want %v", c.elapsed, got, c.want)
			}
		})
	}
}

func TestWallUntil(t *testing.T) {
	cases := []struct {
		name        string
		target, now Time
		want        time.Duration
		ok          bool
	}{
		{"future", Time(5 * Millisecond), Time(2 * Millisecond), 3 * time.Millisecond, true},
		{"now", Time(Millisecond), Time(Millisecond), 0, true},
		{"past clamps to zero", Time(Millisecond), Time(9 * Millisecond), 0, true},
		{"never", Never, Zero, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := WallUntil(c.target, c.now)
			if (err == nil) != c.ok {
				t.Fatalf("WallUntil(%v, %v) error = %v, want ok=%v", c.target, c.now, err, c.ok)
			}
			if err == nil && got != c.want {
				t.Fatalf("WallUntil(%v, %v) = %v, want %v", c.target, c.now, got, c.want)
			}
		})
	}
}
