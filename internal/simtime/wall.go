package simtime

import (
	"fmt"
	"time"
)

// Wall-clock conversions for the live runtime (internal/live): simulated
// instants there are nanoseconds since the runtime's epoch, so the numeric
// conversion to time.Duration is the identity — but the sentinels (Never,
// Forever) and negative spans must never cross the boundary silently. A
// Never that leaks into time.NewTimer is a ~292-year sleep; a negative
// wall reading converted to a Time violates axiom S1. Every helper
// therefore guards explicitly and returns an error instead of a wrong
// number.

// ToWall converts a simulated duration to a wall-clock duration. It
// rejects negative durations (there is no such thing as waiting a
// negative span) and the Forever sentinel (which is not a span at all).
func ToWall(d Duration) (time.Duration, error) {
	if d == Forever {
		return 0, fmt.Errorf("simtime: Forever has no wall-clock equivalent")
	}
	if d < 0 {
		return 0, fmt.Errorf("simtime: negative duration %v has no wall-clock equivalent", d)
	}
	return time.Duration(d), nil
}

// FromWall converts a wall-clock duration to a simulated duration. It
// rejects negative spans and values that would collide with the Forever
// sentinel (time.Duration's maximum is the same bit pattern).
func FromWall(d time.Duration) (Duration, error) {
	if d < 0 {
		return 0, fmt.Errorf("simtime: negative wall duration %v", d)
	}
	if Duration(d) == Forever {
		return 0, fmt.Errorf("simtime: wall duration %v collides with the Forever sentinel", d)
	}
	return Duration(d), nil
}

// TimeFromWall converts wall-clock time elapsed since an epoch to a
// simulated instant. It rejects negative elapsed time (the epoch is the
// simulated Zero; axiom S1 forbids instants before it) and values that
// would collide with the Never sentinel.
func TimeFromWall(elapsed time.Duration) (Time, error) {
	if elapsed < 0 {
		return 0, fmt.Errorf("simtime: negative elapsed wall time %v", elapsed)
	}
	if Time(elapsed) == Never {
		return 0, fmt.Errorf("simtime: elapsed wall time %v collides with the Never sentinel", elapsed)
	}
	return Time(elapsed), nil
}

// WallUntil returns the wall-clock wait from now until target, clamping
// to zero when the target has already passed. It rejects a Never target:
// "no pending deadline" must be handled by the caller, not slept on.
func WallUntil(target, now Time) (time.Duration, error) {
	if target == Never {
		return 0, fmt.Errorf("simtime: cannot wait until Never")
	}
	if target <= now {
		return 0, nil
	}
	return time.Duration(target - now), nil
}
