// Package simtime provides the discrete notion of time used throughout the
// simulation: a 64-bit count of nanoseconds since the start of an execution.
//
// The paper's models take time from the non-negative reals; footnote 2 of
// §2.1 notes that the trajectory axioms may equally be interpreted over the
// rationals. A nanosecond grid is a sub-case of that and makes every bound
// in the paper exactly checkable, with no floating-point drift.
package simtime

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is an instant, measured in nanoseconds since the start of the
// execution (the paper's "now" component, axiom S1: executions start at 0).
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Zero is the start of every execution.
const Zero Time = 0

// Never is a sentinel instant later than any reachable time. Components
// report Never when they have no pending deadline.
const Never Time = Time(1<<63 - 1)

// Forever is a sentinel duration longer than any reachable span.
const Forever Duration = Duration(1<<63 - 1)

// Add returns the instant d after t, saturating at Never.
func (t Time) Add(d Duration) Time {
	if t == Never || d == Forever {
		return Never
	}
	s := t + Time(d)
	if d >= 0 && s < t { // overflow
		return Never
	}
	return s
}

// Sub returns the span from u to t (t − u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Min returns the earlier of t and u.
func (t Time) Min(u Time) Time {
	if t < u {
		return t
	}
	return u
}

// Max returns the later of t and u.
func (t Time) Max(u Time) Time {
	if t > u {
		return t
	}
	return u
}

// String renders the instant using the same unit scaling as Duration.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return Duration(t).String()
}

// Abs returns the magnitude of d.
func (d Duration) Abs() Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Min returns the smaller of d and e.
func (d Duration) Min(e Duration) Duration {
	if d < e {
		return d
	}
	return e
}

// Max returns the larger of d and e.
func (d Duration) Max(e Duration) Duration {
	if d > e {
		return d
	}
	return e
}

// Scale returns d*num/den, rounding toward negative infinity. It panics if
// den <= 0. Intermediate math is done in big words so that spans of up to
// ~290 simulated years scaled by small rationals do not overflow.
func (d Duration) Scale(num, den int64) Duration {
	if den <= 0 {
		panic("simtime: Scale requires den > 0")
	}
	// Fast path: non-negative operands with no overflow risk need a single
	// multiply-divide (truncation equals floor). This is the clock models'
	// steady state — every real→clock conversion scales a small in-segment
	// offset by a near-1 rational — and Scale was the hottest leaf in the
	// executor-throughput profile before this path existed.
	if num >= 0 && d >= 0 && (num == 0 || int64(d) <= (1<<62)/num) {
		return Duration(int64(d) * num / den)
	}
	q, r := int64(d)/den, int64(d)%den
	out := q*num + r*num/den
	rr := r * num % den
	if rr != 0 && (out < 0) != (rr < 0) && rr < 0 {
		out--
	}
	return Duration(out)
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis returns the duration as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// String renders the duration with an adaptive unit, e.g. "1.5ms", "250µs".
func (d Duration) String() string {
	if d == Forever {
		return "forever"
	}
	neg := d < 0
	v := d
	if neg {
		v = -v
	}
	var s string
	switch {
	case v == 0:
		return "0s"
	case v < Microsecond:
		s = strconv.FormatInt(int64(v), 10) + "ns"
	case v < Millisecond:
		s = trimZeros(float64(v)/1e3) + "µs"
	case v < Second:
		s = trimZeros(float64(v)/1e6) + "ms"
	default:
		s = trimZeros(float64(v)/1e9) + "s"
	}
	if neg {
		s = "-" + s
	}
	return s
}

func trimZeros(f float64) string {
	s := strconv.FormatFloat(f, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// ParseDuration parses strings of the form "12ns", "3us", "3µs", "1.5ms",
// "2s". It exists so command-line tools don't need the real time package's
// wall-clock semantics.
func ParseDuration(s string) (Duration, error) {
	orig := s
	var unit Duration
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, s = Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "µs"):
		unit, s = Microsecond, strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "us"):
		unit, s = Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		unit, s = Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		unit, s = Second, strings.TrimSuffix(s, "s")
	default:
		return 0, fmt.Errorf("simtime: missing unit in duration %q", orig)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("simtime: bad duration %q: %w", orig, err)
	}
	return Duration(f * float64(unit)), nil
}

// Interval is a closed duration range [Lo, Hi], used for message-delay
// bounds [d1, d2] and boundmap intervals [l, u].
type Interval struct {
	Lo, Hi Duration
}

// NewInterval returns the interval [lo, hi]. It panics if lo > hi or lo < 0,
// which would be an invalid delay or boundmap specification.
func NewInterval(lo, hi Duration) Interval {
	if lo < 0 || lo > hi {
		panic(fmt.Sprintf("simtime: invalid interval [%v, %v]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Contains reports whether d lies in the closed interval.
func (iv Interval) Contains(d Duration) bool { return iv.Lo <= d && d <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() Duration { return iv.Hi - iv.Lo }

// Widen returns the interval [max(Lo−by, 0), Hi+by], the delay
// transformation of Theorem 4.7 (d'1 = max(d1−2ε, 0), d'2 = d2+2ε with
// by = 2ε).
func (iv Interval) Widen(by Duration) Interval {
	lo := iv.Lo - by
	if lo < 0 {
		lo = 0
	}
	return Interval{Lo: lo, Hi: iv.Hi + by}
}

// String renders the interval as "[lo, hi]".
func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v]", iv.Lo, iv.Hi)
}
