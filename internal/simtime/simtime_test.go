package simtime

import (
	"testing"
	"testing/quick"
)

func TestTimeAdd(t *testing.T) {
	cases := []struct {
		t    Time
		d    Duration
		want Time
	}{
		{0, 0, 0},
		{0, Second, Time(Second)},
		{Time(5 * Millisecond), 3 * Millisecond, Time(8 * Millisecond)},
		{Time(5 * Millisecond), -2 * Millisecond, Time(3 * Millisecond)},
		{Never, Second, Never},
		{0, Forever, Never},
		{Never - 1, 10, Never}, // saturating overflow
	}
	for _, c := range cases {
		if got := c.t.Add(c.d); got != c.want {
			t.Errorf("%v.Add(%v) = %v, want %v", c.t, c.d, got, c.want)
		}
	}
}

func TestTimeSub(t *testing.T) {
	if got := Time(10).Sub(3); got != 7 {
		t.Errorf("Sub = %v, want 7", got)
	}
	if got := Time(3).Sub(10); got != -7 {
		t.Errorf("Sub = %v, want -7", got)
	}
}

func TestTimeOrdering(t *testing.T) {
	if !Time(1).Before(2) || Time(2).Before(1) || Time(1).Before(1) {
		t.Error("Before misbehaves")
	}
	if !Time(2).After(1) || Time(1).After(2) || Time(1).After(1) {
		t.Error("After misbehaves")
	}
	if Time(1).Min(2) != 1 || Time(2).Min(1) != 1 {
		t.Error("Min misbehaves")
	}
	if Time(1).Max(2) != 2 || Time(2).Max(1) != 2 {
		t.Error("Max misbehaves")
	}
}

func TestDurationAbsMinMax(t *testing.T) {
	if Duration(-5).Abs() != 5 || Duration(5).Abs() != 5 {
		t.Error("Abs misbehaves")
	}
	if Duration(1).Min(2) != 1 || Duration(2).Min(1) != 1 {
		t.Error("Min misbehaves")
	}
	if Duration(1).Max(2) != 2 || Duration(2).Max(1) != 2 {
		t.Error("Max misbehaves")
	}
}

func TestScaleExact(t *testing.T) {
	cases := []struct {
		d        Duration
		num, den int64
		want     Duration
	}{
		{1000, 1, 1, 1000},
		{1000, 3, 2, 1500},
		{1000, 1, 3, 333},
		{Second, 999, 1000, 999 * Millisecond},
		{0, 7, 3, 0},
	}
	for _, c := range cases {
		if got := c.d.Scale(c.num, c.den); got != c.want {
			t.Errorf("%d.Scale(%d,%d) = %d, want %d", c.d, c.num, c.den, got, c.want)
		}
	}
}

func TestScaleMonotoneProperty(t *testing.T) {
	// Scaling with a positive rate must be monotone non-decreasing in d,
	// which the clock models rely on for invertibility.
	f := func(a, b int32, num8, den8 uint8) bool {
		num := int64(num8%50) + 1
		den := int64(den8%50) + 1
		x, y := Duration(a), Duration(b)
		if x > y {
			x, y = y, x
		}
		return x.Scale(num, den) <= y.Scale(num, den)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalePanicsOnBadDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(1, 0) did not panic")
		}
	}()
	Duration(1).Scale(1, 0)
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{5, "5ns"},
		{1500, "1.5µs"},
		{250 * Microsecond, "250µs"},
		{1500 * Microsecond, "1.5ms"},
		{2 * Second, "2s"},
		{-3 * Millisecond, "-3ms"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(3 * Millisecond).String(); got != "3ms" {
		t.Errorf("String = %q", got)
	}
	if got := Never.String(); got != "never" {
		t.Errorf("String = %q", got)
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
		ok   bool
	}{
		{"12ns", 12, true},
		{"3us", 3 * Microsecond, true},
		{"3µs", 3 * Microsecond, true},
		{"1.5ms", 1500 * Microsecond, true},
		{"2s", 2 * Second, true},
		{"0.001s", Millisecond, true},
		{"nope", 0, false},
		{"5", 0, false},
		{"xms", 0, false},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseDuration(%q) succeeded, want error", c.in)
		}
	}
}

func TestParseDurationRoundTrip(t *testing.T) {
	for _, d := range []Duration{1, 999, Microsecond, 42 * Millisecond, 7 * Second} {
		got, err := ParseDuration(d.String())
		if err != nil {
			t.Fatalf("round trip %v: %v", d, err)
		}
		if got != d {
			t.Errorf("round trip %v = %v", d, got)
		}
	}
}

func TestInterval(t *testing.T) {
	iv := NewInterval(Millisecond, 3*Millisecond)
	if !iv.Contains(Millisecond) || !iv.Contains(3*Millisecond) || !iv.Contains(2*Millisecond) {
		t.Error("Contains endpoints/interior failed")
	}
	if iv.Contains(Millisecond-1) || iv.Contains(3*Millisecond+1) {
		t.Error("Contains outside failed")
	}
	if iv.Width() != 2*Millisecond {
		t.Errorf("Width = %v", iv.Width())
	}
	if got := iv.String(); got != "[1ms, 3ms]" {
		t.Errorf("String = %q", got)
	}
}

func TestIntervalWiden(t *testing.T) {
	// The Theorem 4.7 delay transformation: d'1 = max(d1−2ε, 0), d'2 = d2+2ε.
	iv := NewInterval(Millisecond, 3*Millisecond)
	w := iv.Widen(2 * Millisecond)
	if w.Lo != 0 || w.Hi != 5*Millisecond {
		t.Errorf("Widen = %v", w)
	}
	w2 := iv.Widen(200 * Microsecond)
	if w2.Lo != 800*Microsecond || w2.Hi != 3200*Microsecond {
		t.Errorf("Widen = %v", w2)
	}
}

func TestNewIntervalPanics(t *testing.T) {
	for _, c := range []struct{ lo, hi Duration }{{5, 3}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInterval(%v,%v) did not panic", c.lo, c.hi)
				}
			}()
			NewInterval(c.lo, c.hi)
		}()
	}
}

func TestSecondsMillis(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Errorf("Millis = %v", got)
	}
}
