package experiments

import (
	"fmt"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
	"psclock/internal/trace"
	"psclock/internal/workload"
)

// registerActions is the visible interface of the register problem.
func isRegisterAction(name string) bool {
	switch name {
	case register.ActRead, register.ActWrite, register.ActReturn, register.ActAck:
		return true
	}
	return false
}

// gammaTrace builds the γ_α timed sequence of Definition 4.2 restricted to
// the visible register actions: each action paired with its clock value,
// reordered into non-decreasing clock order (stably).
func gammaTrace(net *core.Net) ta.Trace {
	var g ta.Trace
	seq := 0
	for _, n := range net.Clocked {
		for _, s := range n.Stamps() {
			if !isRegisterAction(s.Action.Name) {
				continue
			}
			g = append(g, ta.Event{Action: s.Action, At: s.Clock, Seq: seq})
			seq++
		}
	}
	return trace.SortByTime(g)
}

// realTrace collects the same actions with their real times, in the same
// per-node order as gammaTrace's input.
func realTrace(net *core.Net) ta.Trace {
	var g ta.Trace
	seq := 0
	for _, n := range net.Clocked {
		for _, s := range n.Stamps() {
			if !isRegisterAction(s.Action.Name) {
				continue
			}
			g = append(g, ta.Event{Action: s.Action, At: s.Real, Seq: seq})
			seq++
		}
	}
	return g
}

// E5Sim1Shift regenerates Table 5 (Theorems 4.6/4.7): in every clock-model
// execution α of the transformed S, (1) every action's clock value is
// within ε of its real time, so t-trace(α) =_ε γ_α; and (2) γ_α is a trace
// of the timed-model system solving Q, so the clock-timed history is
// 2ε-superlinearizable — the constructive content of the simulation proof,
// replayed on recorded data.
func E5Sim1Shift() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	delta := 10 * us
	c := 500 * us
	// Fixed clock-family order (was map iteration, which shuffled rows);
	// factories are built per row since they may carry state.
	clockNames := []string{"spread", "drift", "sawtooth"}
	factoryFor := func(name string, eps simtime.Duration) clock.Factory {
		switch name {
		case "spread":
			return clock.SpreadFactory(eps)
		case "drift":
			return clock.DriftFactory(eps, 47)
		default:
			return clock.SawtoothFactory(eps, 8*ms)
		}
	}
	type e5Spec struct {
		eps   simtime.Duration
		cname string
	}
	var specs []e5Spec
	for _, eps := range []simtime.Duration{100 * us, 500 * us, 1 * ms} {
		for _, cname := range clockNames {
			specs = append(specs, e5Spec{eps, cname})
		}
	}
	rows := parmapSlice(specs, func(sp e5Spec) rowOut {
		var r rowOut
		eps, cname := sp.eps, sp.cname
		p := register.Params{C: c, Delta: delta, D2: bounds.Hi + 2*eps, Epsilon: eps}
		out, err := run(runSpec{
			model:   "clock",
			factory: register.Factory(register.NewS, p),
			n:       3, bounds: bounds, seed: 505 + int64(eps),
			clocks: factoryFor(cname, eps), delays: channel.SpreadDelay,
			ops: 25, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.4,
		})
		if err != nil {
			r.fails = append(r.fails, err.Error())
			return r
		}
		gamma := gammaTrace(out.net)
		real := realTrace(out.net)
		shift, err := trace.MinEps(real, gamma, trace.ByNode)
		if err != nil {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: traces unrelated: %v", eps, cname, err))
			return r
		}
		eqOK := shift <= eps
		gops, herr := register.History(gamma)
		gSuper := false
		if herr == nil {
			gSuper = linearize.CheckSuperLinearizable(gops, register.Initial.String(), eps).OK
		}
		realLin := linCheck(out, 0)
		r.cells = []string{fmtD(eps), cname, fmtD(shift), checkMark(eqOK), checkMark(gSuper), checkMark(realLin)}
		if !eqOK {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: trace shift %v > ε", eps, cname, shift))
		}
		if herr != nil {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: γ_α history: %v", eps, cname, herr))
		} else if !gSuper {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: γ_α not ε-superlinearizable", eps, cname))
		}
		if !realLin {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: real trace not linearizable", eps, cname))
		}
		return r
	})
	tb := stats.NewTable("ε", "clocks", "max |clock−real|", "=_ε holds", "γ_α superlin.", "real trace lin.")
	fails := collectRows(tb, rows)
	return Result{ID: "E5", Title: "Theorem 4.7: simulation-1 real-time preservation", Output: tb.String(), Failures: fails}
}

// clockDelays extracts each delivered message's clock-time delay: the
// receiving clock value minus the sender's tag (Lemma 4.5's quantity).
func clockDelays(net *core.Net) []simtime.Duration {
	sent := make(map[string]simtime.Time)
	var delays []simtime.Duration
	for _, n := range net.Clocked {
		for _, s := range n.Stamps() {
			if s.Action.Name == ta.NameESendMsg {
				tm := s.Action.Payload.(ta.TaggedMsg)
				sent[fmt.Sprintf("%v->%v:%v", s.Action.Node, s.Action.Peer, tm.Body)] = tm.SentClock
			}
		}
	}
	for _, n := range net.Clocked {
		for _, s := range n.Stamps() {
			if s.Action.Name == ta.NameRecvMsg {
				msg := s.Action.Payload.(ta.Msg)
				key := fmt.Sprintf("%v->%v:%v", s.Action.Peer, s.Action.Node, msg.Body)
				if tag, ok := sent[key]; ok {
					delays = append(delays, simtime.Duration(s.Clock-tag))
				}
			}
		}
	}
	return delays
}

// E6ClockDelay regenerates Figure 2 (Lemma 4.5): in the clock model, the
// clock time used by a message lies in [max(0, d1−2ε), d2+2ε].
func E6ClockDelay() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	delayNames := []string{"min", "max", "spread"}
	delayFor := func(name string) func() channel.DelayPolicy {
		switch name {
		case "min":
			return channel.MinDelay
		case "max":
			return channel.MaxDelay
		default:
			return channel.SpreadDelay
		}
	}
	type e6Spec struct {
		eps   simtime.Duration
		dname string
	}
	var specs []e6Spec
	for _, eps := range []simtime.Duration{100 * us, 500 * us, 1 * ms} {
		for _, dname := range delayNames {
			specs = append(specs, e6Spec{eps, dname})
		}
	}
	rows := parmapSlice(specs, func(sp e6Spec) rowOut {
		var r rowOut
		eps, dname := sp.eps, sp.dname
		p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
		out, err := run(runSpec{
			model:   "clock",
			factory: register.Factory(register.NewS, p),
			n:       3, bounds: bounds, seed: 606 + int64(eps),
			clocks: clock.SpreadFactory(eps), delays: delayFor(dname),
			ops: 20, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.5,
		})
		if err != nil {
			r.fails = append(r.fails, err.Error())
			return r
		}
		ds := clockDelays(out.net)
		if len(ds) == 0 {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: no messages measured", eps, dname))
			return r
		}
		sum := stats.Summarize(ds)
		lo := (bounds.Lo - 2*eps).Max(0)
		hi := bounds.Hi + 2*eps
		within := sum.Min >= lo && sum.Max <= hi
		r.cells = []string{fmtD(eps), dname, fmt.Sprint(sum.N), fmtD(sum.Min), fmtD(sum.Max), fmtD(lo), fmtD(hi), checkMark(within)}
		if !within {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: clock delays [%v, %v] outside [%v, %v]",
				eps, dname, sum.Min, sum.Max, lo, hi))
		}
		return r
	})
	tb := stats.NewTable("ε", "delays", "messages", "min clk-delay", "max clk-delay", "lower bound", "upper bound", "within")
	fails := collectRows(tb, rows)
	return Result{ID: "E6", Title: "Lemma 4.5: message clock-time delays (d=[1ms,3ms])", Output: tb.String(), Failures: fails}
}

// E7Buffering regenerates Figure 3 (§7.2): the receive buffer's work as a
// function of d1/2ε — no buffering at all once d1 ≥ 2ε, and hold times
// bounded by 2ε−d1 below that.
func E7Buffering() Result {
	eps := 500 * us
	d2gap := 2 * ms
	type e7Row struct {
		rowOut
		frac, hold *stats.Point
	}
	d1s := []simtime.Duration{0, 250 * us, 500 * us, 750 * us, 1 * ms, 1500 * us, 2 * ms}
	rows := parmapSlice(d1s, func(d1 simtime.Duration) e7Row {
		var r e7Row
		bounds := simtime.NewInterval(d1, d1+d2gap)
		p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
		out, err := run(runSpec{
			model:   "clock",
			factory: register.Factory(register.NewS, p),
			n:       3, bounds: bounds, seed: 707 + int64(d1),
			clocks: clock.SpreadFactory(eps), delays: channel.MinDelay,
			ops: 25, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.5,
		})
		if err != nil {
			r.fails = append(r.fails, err.Error())
			return r
		}
		var buffered, received int
		var heldMax simtime.Duration
		for _, n := range out.net.Clocked {
			b, r, h := n.BufferStats()
			buffered += b
			received += r
			if h > heldMax {
				heldMax = h
			}
		}
		frac := 0.0
		if received > 0 {
			frac = float64(buffered) / float64(received)
		}
		bound := (2*eps - d1).Max(0)
		r.cells = []string{fmtD(d1), fmt.Sprintf("%.2f", float64(d1)/float64(2*eps)),
			fmt.Sprint(received), fmt.Sprint(buffered), fmt.Sprintf("%.2f", frac),
			fmtD(heldMax), fmtD(bound)}
		ratio := float64(d1) / float64(2*eps)
		r.frac = &stats.Point{X: ratio, Y: frac}
		r.hold = &stats.Point{X: ratio, Y: heldMax.Millis()}
		if d1 >= 2*eps && buffered != 0 {
			r.fails = append(r.fails, fmt.Sprintf("d1=%v ≥ 2ε: %d messages buffered (§7.2 says none)", d1, buffered))
		}
		if heldMax > bound {
			r.fails = append(r.fails, fmt.Sprintf("d1=%v: hold %v > bound %v", d1, heldMax, bound))
		}
		if !linCheck(out, 0) {
			r.fails = append(r.fails, fmt.Sprintf("d1=%v: not linearizable", d1))
		}
		return r
	})
	tb := stats.NewTable("d1", "d1/2ε", "received", "buffered", "fraction", "max hold (clk)", "bound 2ε−d1")
	var fails []string
	var figFrac, figHold []stats.Point
	for _, r := range rows {
		if r.cells != nil {
			tb.AddRow(r.cells...)
		}
		fails = append(fails, r.fails...)
		if r.frac != nil {
			figFrac = append(figFrac, *r.frac)
			figHold = append(figHold, *r.hold)
		}
	}
	fig := stats.Chart("Figure 3: receive-buffer work vs d1/2ε", "d1/2ε", "fraction buffered (f), max hold ms (h)",
		[]stats.Series{
			{Name: "fraction buffered", Marker: 'f', Points: figFrac},
			{Name: "max hold (ms)", Marker: 'h', Points: figHold},
		}, 56, 10)
	return Result{ID: "E7", Title: "§7.2: receive-buffer cost (ε=500µs, min-delay adversary, max-skew clocks)", Output: tb.String() + fig, Failures: fails}
}

// measuredK returns the smallest k satisfying the Lemma 4.3 rate
// restriction on the recorded execution: at most k output actions per node
// in any clock interval of length kℓ.
func measuredK(net *core.Net, ell simtime.Duration) int {
	perNode := make(map[ta.NodeID][]simtime.Time)
	for _, n := range net.Clocked {
		for _, s := range n.Stamps() {
			switch s.Action.Name {
			case ta.NameESendMsg, register.ActReturn, register.ActAck:
				perNode[n.ID()] = append(perNode[n.ID()], s.Clock)
			}
		}
	}
	for k := 1; ; k++ {
		window := simtime.Duration(k) * ell
		ok := true
		for _, times := range perNode {
			// times are non-decreasing per node (stamps are recorded in
			// clock order).
			lo := 0
			for hi := range times {
				for times[hi].Sub(times[lo]) > window {
					lo++
				}
				if hi-lo+1 > k {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return k
		}
	}
}

// E8MMTShift regenerates Table 6 and Figure 4 (Theorems 5.1/5.2): running
// the same scripted workload, with identical seeds, through D_C and D_M,
// the MMT system's visible trace is the clock system's with inputs at
// identical times and outputs shifted at most kℓ+2ε+3ℓ into the future —
// i.e. the traces are related by ≤_{δ,K} with δ = the theorem's bound.
func E8MMTShift() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 200 * us
	ells := []simtime.Duration{25 * us, 50 * us, 100 * us, 200 * us}
	rows := parmapSlice(ells, func(ell simtime.Duration) rowOut {
		var r rowOut
		kHeadroom := 24 * ell // generous d'2 headroom; validated against measured k below
		p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps + kHeadroom, Epsilon: eps}
		spacing := 40 * ms // far above worst-case latency: keeps both runs aligned
		scripts := make([][]workload.ScriptOp, 3)
		for i := range scripts {
			scripts[i] = workload.MakeScript(12, simtime.Time(i)*simtime.Time(ms), spacing, 0.4, 808+int64(i))
		}
		runModel := func(model string) (*core.Net, ta.Trace, error) {
			cfg := core.Config{
				N:      3,
				Bounds: bounds,
				Seed:   909,
				Clocks: clock.DriftFactory(eps, 11),
				Ell:    ell,
			}
			var net *core.Net
			if model == "clock" {
				net = core.BuildClocked(cfg, register.Factory(register.NewS, p))
			} else {
				net = core.BuildMMT(cfg, register.Factory(register.NewS, p))
			}
			clients := workload.AttachScripted(net, scripts)
			if err := net.Sys.Run(simtime.Time(700 * ms)); err != nil {
				return nil, nil, err
			}
			for _, c := range clients {
				if c.Err != nil {
					return nil, nil, c.Err
				}
				if c.Done != 12 {
					return nil, nil, fmt.Errorf("%s finished %d/12", c.Name(), c.Done)
				}
			}
			return net, net.Sys.Trace().Visible(), nil
		}
		cNet, cTrace, err := runModel("clock")
		if err != nil {
			r.fails = append(r.fails, fmt.Sprintf("ℓ=%v clock run: %v", ell, err))
			return r
		}
		mNet, mTrace, err := runModel("mmt")
		if err != nil {
			r.fails = append(r.fails, fmt.Sprintf("ℓ=%v mmt run: %v", ell, err))
			return r
		}
		k := measuredK(cNet, ell)
		bound := simtime.Duration(k)*ell + 2*eps + 3*ell
		shift, err := trace.MinDelta(cTrace, mTrace, trace.OutputsByNode)
		if err != nil {
			r.fails = append(r.fails, fmt.Sprintf("ℓ=%v: traces not ≤_δ related: %v", ell, err))
			r.cells = []string{fmtD(ell), fmt.Sprint(k), fmtD(bound), "unrelated", "NO", "-"}
			return r
		}
		if simtime.Duration(k)*ell > kHeadroom {
			r.fails = append(r.fails, fmt.Sprintf("ℓ=%v: measured kℓ=%v exceeds the d'2 headroom %v", ell, simtime.Duration(k)*ell, kHeadroom))
		}
		within := shift <= bound
		var queuedMax simtime.Duration
		for _, n := range mNet.MMT {
			for _, st := range n.Stamps() {
				if st.Queued > queuedMax {
					queuedMax = st.Queued
				}
			}
		}
		r.cells = []string{fmtD(ell), fmt.Sprint(k), fmtD(bound), fmtD(shift), checkMark(within), fmtD(queuedMax)}
		if !within {
			r.fails = append(r.fails, fmt.Sprintf("ℓ=%v: shift %v > bound %v", ell, shift, bound))
		}
		return r
	})
	tb := stats.NewTable("ℓ", "k (measured)", "bound kℓ+2ε+3ℓ", "measured shift δ", "within", "max queued")
	fails := collectRows(tb, rows)
	return Result{ID: "E8", Title: "Theorems 5.1/5.2: output shift of D_M vs D_C (ε=200µs, lazy steps)", Output: tb.String(), Failures: fails}
}
