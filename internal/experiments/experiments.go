// Package experiments regenerates every quantitative claim of the paper as
// a table or figure series (the per-experiment index of DESIGN.md and the
// paper-vs-measured record of EXPERIMENTS.md).
//
// The paper is a theory paper and prints no empirical tables; each
// experiment here measures one of its theorems/lemmas over seeded
// adversarial executions:
//
//	E1  Lemma 6.1     — algorithm L costs in D_T (Table 1)
//	E2  Lemma 6.2     — algorithm S superlinearizability and costs (Table 2)
//	E3  Theorem 6.5   — transformed S in D_C (Table 3)
//	E4  §6.3          — comparison vs the [10] baseline (Table 4, Figure 1)
//	E5  Theorem 4.7   — simulation-1 real-time preservation (Table 5)
//	E6  Lemma 4.5     — message clock-time delays (Figure 2)
//	E7  §7.2          — receive-buffer cost vs d1/2ε (Figure 3)
//	E8  Theorem 5.1/5.2 — simulation-2 output shift (Table 6, Figure 4)
//	E9  §6.2/§7.2     — verification matrix with mutations (Table 7)
//	E10 —             — executor throughput (Figure 5)
//	E11 §6 remark     — other shared-memory objects (Table 8)
//	E12 §1/§7.3       — failures explored (Table 9)
//	E13 §1/§5         — clock granularity: TICK period sweep (Figure 6)
//	E14 ref [2]       — sequential consistency vs linearizability (Table 10)
//	E15 §1 intro      — failure detection timeout margins (Table 11)
//	E16 §4.3          — real-time vs internal specifications (Table 12)
//	E17 §6.1/§6.2     — tiered keyed store live: L-tier read discount (Table 13)
package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/exec"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/workload"
)

// Result is one experiment's rendered output.
type Result struct {
	// ID is the experiment identifier, e.g. "E3".
	ID string
	// Title names the paper claim being reproduced.
	Title string
	// Output is the rendered table or series.
	Output string
	// Failures lists assertion violations; empty means the paper's claim
	// held on every measured row.
	Failures []string
	// Metrics carries machine-readable measurements (e.g. E10's executor
	// events/sec per configuration) for the bench emitter; nil for
	// experiments that only assert.
	Metrics map[string]float64
}

// Pass reports whether every assertion held.
func (r Result) Pass() bool { return len(r.Failures) == 0 }

// String renders the result for the harness.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	b.WriteString(r.Output)
	if r.Pass() {
		b.WriteString("RESULT: PASS\n")
	} else {
		fmt.Fprintf(&b, "RESULT: FAIL (%d violations)\n", len(r.Failures))
		for _, f := range r.Failures {
			b.WriteString("  - " + f + "\n")
		}
	}
	return b.String()
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() Result
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Lemma 6.1: algorithm L in the timed model", E1AlgorithmL},
		{"E2", "Lemma 6.2: algorithm S superlinearizability in the timed model", E2AlgorithmS},
		{"E3", "Theorem 6.5: transformed S in the clock model", E3ClockModel},
		{"E4", "§6.3: comparison against the [10] baseline", E4Comparison},
		{"E5", "Theorem 4.7: simulation-1 real-time preservation", E5Sim1Shift},
		{"E6", "Lemma 4.5: message clock-time delay bounds", E6ClockDelay},
		{"E7", "§7.2: receive-buffer cost vs d1/2ε", E7Buffering},
		{"E8", "Theorems 5.1/5.2: simulation-2 output shift", E8MMTShift},
		{"E9", "verification matrix with mutations", E9Matrix},
		{"E10", "executor throughput by model and size", E10Throughput},
		{"E11", "§6 generalized to other shared-memory objects", E11Objects},
		{"E12", "§7.3 failures explored: crashes and lossy links", E12Failures},
		{"E13", "clock granularity: TICK period sweep in D_M", E13Granularity},
		{"E14", "Attiya-Welch boundary: sequential consistency vs linearizability", E14SeqConsistency},
		{"E15", "failure detection: timeout margins in the clock model", E15Detector},
		{"E16", "real-time vs internal specifications under simulation 1", E16RealTimeSpecs},
		{"E17", "tiered keyed store live: the L-tier read discount vs S on shared nodes", E17TieredLive},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// checkShards is the process-global sharded-verification fan-out: when
// ≥ 2, every experiment that attaches a streaming monitor also attaches a
// sharded twin of each checker, and streamParity requires the sharded
// verdict to equal the batch oracle byte-for-byte — the acceptance
// criterion "verdict equality on every experiment". Zero (the default)
// runs the sequential checkers only.
var checkShards atomic.Int64

// SetCheckShards sets the process-global sharded-verification fan-out and
// returns the previous value. Harness entry points (pscbench
// -checkshards) call it before running experiments.
func SetCheckShards(n int) int { return int(checkShards.Swap(int64(n))) }

// CheckShards returns the process-global sharded-verification fan-out.
func CheckShards() int { return int(checkShards.Load()) }

// shardedName names the sharded twin of a streaming check.
func shardedName(name string) string { return name + "@sharded" }

// Shared workload/runner plumbing.

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

// runSpec describes one measured register execution.
type runSpec struct {
	model   string // "timed" | "clock" | "mmt"
	factory core.AlgorithmFactory
	n       int
	bounds  simtime.Interval
	seed    int64
	clocks  clock.Factory
	delays  func() channel.DelayPolicy
	ell     simtime.Duration
	steps   func() core.StepPolicy

	ops        int
	think      simtime.Interval
	writeRatio float64
	noBuffer   bool

	// stream lists online checkers to attach as a streaming monitor
	// alongside the retained trace; streamParity later cross-checks each
	// verdict against the batch checker over the retained history.
	stream []streamCheck
	// sinks are additional event sinks attached before the run.
	sinks []exec.Sink
	// noRetain turns trace retention off: the run is observed only
	// through the attached sinks and monitor, and runOut.ops is empty.
	noRetain bool
}

// streamCheck names one online-checker configuration of a run's monitor:
// a linearizability checker by default, or — when seq is set — the online
// sequential-consistency checker (opt is then ignored). Parity for seq
// checks is against CheckSequentiallyConsistent, itself a replay of the
// same automaton, so the assertion is feed-order independence: response
// order online versus per-node invocation order in batch.
type streamCheck struct {
	name string
	opt  linearize.Options
	seq  *linearize.SeqOptions
}

// checker builds the streamCheck's sharded checker with the given fan-out
// (below 2: inline on the observing goroutine).
func (sc streamCheck) checker(shards int) *linearize.Sharded {
	so := linearize.ShardedOptions{Check: sc.opt, Shards: shards}
	if sc.seq != nil {
		seq := *sc.seq
		so.New = func(string) linearize.Automaton { return linearize.NewSeqOnline(seq) }
	}
	return linearize.NewSharded(so)
}

// batch replays the streamCheck's specification over a retained history.
func (sc streamCheck) batch(ops []linearize.Op) linearize.Result {
	if sc.seq != nil {
		return linearize.CheckSequentiallyConsistent(ops, sc.seq.Initial)
	}
	return linearize.Check(ops, sc.opt)
}

// runOut is what a run produces.
type runOut struct {
	net    *core.Net
	ops    []linearize.Op
	mon    *register.Monitor
	stream []streamCheck
}

// run executes the spec to completion and extracts the history.
func run(spec runSpec) (runOut, error) {
	cfg := core.Config{
		N:                 spec.n,
		Bounds:            spec.bounds,
		Seed:              spec.seed,
		Clocks:            spec.clocks,
		NewDelay:          spec.delays,
		Ell:               spec.ell,
		NewStep:           spec.steps,
		DisableRecvBuffer: spec.noBuffer,
	}
	var net *core.Net
	switch spec.model {
	case "timed":
		net = core.BuildTimed(cfg, spec.factory)
	case "clock":
		net = core.BuildClocked(cfg, spec.factory)
	case "mmt":
		net = core.BuildMMT(cfg, spec.factory)
	default:
		return runOut{}, fmt.Errorf("experiments: unknown model %q", spec.model)
	}
	var mon *register.Monitor
	if len(spec.stream) > 0 {
		mon = register.NewMonitor()
		for _, sc := range spec.stream {
			mon.AddChecker(sc.name, sc.checker(0))
		}
		if cs := CheckShards(); cs >= 2 {
			for _, sc := range spec.stream {
				mon.AddChecker(shardedName(sc.name), sc.checker(cs))
			}
		}
		net.Sys.AddSink(mon)
	}
	for _, sk := range spec.sinks {
		net.Sys.AddSink(sk)
	}
	if spec.noRetain {
		net.Sys.KeepTrace = false
	}
	clients := workload.Attach(net, workload.Config{
		Ops:        spec.ops,
		Think:      spec.think,
		WriteRatio: spec.writeRatio,
		Seed:       spec.seed + 1,
		Stagger:    300 * us,
	})
	// MMT systems never quiesce (step opportunities recur forever), so run
	// in slices and stop once every client has finished and in-flight work
	// has had time to settle.
	const horizon = 60 * simtime.Second
	allDone := func() bool {
		for _, c := range clients {
			if c.Done != spec.ops {
				return false
			}
		}
		return true
	}
	for net.Sys.Now() < simtime.Time(horizon) && !allDone() {
		if err := net.Sys.Run(net.Sys.Now().Add(20 * ms)); err != nil {
			return runOut{}, err
		}
	}
	if _, err := net.Sys.RunQuiet(net.Sys.Now().Add(50 * ms)); err != nil {
		return runOut{}, err
	}
	for _, c := range clients {
		if c.Done != spec.ops {
			return runOut{}, fmt.Errorf("experiments: %s completed %d/%d ops", c.Name(), c.Done, spec.ops)
		}
	}
	var ops []linearize.Op
	if !spec.noRetain {
		var err error
		if ops, err = register.History(net.Sys.Trace().Visible()); err != nil {
			return runOut{}, err
		}
	}
	return runOut{net: net, ops: ops, mon: mon, stream: spec.stream}, nil
}

// streamParity cross-checks a run's streaming monitor against its
// retained trace: every online verdict must be byte-identical to the
// batch checker replayed over the scraped history, and the monitor's
// O(1)-memory latency aggregates must equal the retained sample's
// count/extrema/mean. Returns failure strings; empty when the spec
// attached no monitor.
func streamParity(out runOut) []string {
	if out.mon == nil {
		return nil
	}
	var fails []string
	if err := out.mon.Err(); err != nil {
		return []string{fmt.Sprintf("streaming monitor: %v", err)}
	}
	for _, sc := range out.stream {
		batch := sc.batch(out.ops)
		if got := out.mon.Verdict(sc.name); got != batch {
			fails = append(fails, fmt.Sprintf("streaming %q verdict %+v != batch %+v", sc.name, got, batch))
		}
		if cs := CheckShards(); cs >= 2 {
			if got := out.mon.Verdict(shardedName(sc.name)); got != batch {
				fails = append(fails, fmt.Sprintf("sharded(%d) %q verdict %+v != batch %+v", cs, sc.name, got, batch))
			}
		}
	}
	reads, writes := register.Latencies(out.ops)
	for _, side := range []struct {
		kind   string
		sample []simtime.Duration
		stream *stats.Stream
	}{{"read", reads, &out.mon.Reads}, {"write", writes, &out.mon.Writes}} {
		want := stats.Summarize(side.sample)
		if side.stream.N != want.N || side.stream.Min != want.Min ||
			side.stream.Max != want.Max || side.stream.Mean() != want.Mean {
			fails = append(fails, fmt.Sprintf("streaming %s latencies n=%d [%v, %v] mean=%v != retained n=%d [%v, %v] mean=%v",
				side.kind, side.stream.N, side.stream.Min, side.stream.Max, side.stream.Mean(),
				want.N, want.Min, want.Max, want.Mean))
		}
	}
	return fails
}

// linearizeCheck decides plain linearizability (widen = 0) or P_ε
// membership (widen = ε) of a run's history.
func linearizeCheck(out runOut, widen simtime.Duration) linearize.Result {
	if widen > 0 {
		return linearize.CheckEps(out.ops, register.Initial.String(), widen)
	}
	return linearize.CheckLinearizable(out.ops, register.Initial.String())
}

// superlinearizeCheck decides ε-superlinearizability of a run's history.
func superlinearizeCheck(out runOut, eps simtime.Duration) linearize.Result {
	return linearize.CheckSuperLinearizable(out.ops, register.Initial.String(), eps)
}

// fmtD renders a duration compactly for tables.
func fmtD(d simtime.Duration) string { return d.String() }

// checkMark renders a boolean verdict.
func checkMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
