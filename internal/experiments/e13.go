package experiments

import (
	"fmt"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/workload"
)

// E13Granularity regenerates Figure 6: the cost of clock granularity. In
// the MMT model the node learns its clock only through TICK(c) events
// (§5.2), so a timer at clock T fires only after (1) a tick reports
// mmtclock ≥ T, (2) a step opportunity arrives, and (3) the output drains
// through the pending queue. Sweeping the tick period at fixed ℓ isolates
// (1): response latency inflates roughly linearly with the tick period,
// the executable face of "the clock may change in discrete jumps, so that
// any particular time value might be missed" (§1).
func E13Granularity() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 200 * us
	ell := 200 * us
	kHeadroom := 24 * ell
	p := register.Params{C: 300 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps + kHeadroom, Epsilon: eps}
	ideal := 2*eps + p.Delta + p.C // clock-time read cost of Theorem 6.5

	tb := stats.NewTable("tick period", "read p50", "read max", "excess over clock-model max", "linearizable")
	var fails []string
	var figP50, figMax []stats.Point

	// The clock-model reference and every tick row fan out together; the
	// bounds checks that compare rows (excess over the reference, the
	// cross-row monotonicity check) live in the sequential reduce below.
	ticks := []simtime.Duration{25 * us, 50 * us, 100 * us, 200 * us}
	type e13Row struct {
		sum  stats.Summary
		lin  bool
		errs []string
		skip bool
	}
	rows := parmap(1+len(ticks), func(i int) e13Row {
		if i == 0 {
			// Clock-model reference (continuous clock knowledge).
			refOut, err := run(runSpec{
				model:   "clock",
				factory: register.Factory(register.NewS, p),
				n:       3, bounds: bounds, seed: 1300,
				clocks: clock.DriftFactory(eps, 13),
				ops:    25, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.3,
			})
			if err != nil {
				return e13Row{errs: []string{err.Error()}, skip: true}
			}
			refReads, _ := register.Latencies(refOut.ops)
			return e13Row{sum: stats.Summarize(refReads), lin: linCheck(refOut, 0)}
		}
		tick := ticks[i-1]
		cfg := core.Config{
			N: 3, Bounds: bounds, Seed: 1300,
			Clocks: clock.DriftFactory(eps, 13),
			Ell:    ell, TickPeriod: tick,
		}
		net := core.BuildMMT(cfg, register.Factory(register.NewS, p))
		clients := workload.Attach(net, workload.Config{
			Ops: 25, Think: simtime.NewInterval(0, 2*ms), WriteRatio: 0.3, Seed: 1301, Stagger: 300 * us,
		})
		done := func() bool {
			for _, c := range clients {
				if c.Done != 25 {
					return false
				}
			}
			return true
		}
		for net.Sys.Now() < simtime.Time(30*simtime.Second) && !done() {
			if err := net.Sys.Run(net.Sys.Now().Add(20 * ms)); err != nil {
				return e13Row{errs: []string{err.Error()}, skip: true}
			}
		}
		if !done() {
			return e13Row{errs: []string{fmt.Sprintf("tick=%v: clients did not finish", tick)}, skip: true}
		}
		ops, err := register.History(net.Sys.Trace().Visible())
		if err != nil {
			return e13Row{errs: []string{err.Error()}, skip: true}
		}
		reads, _ := register.Latencies(ops)
		return e13Row{sum: stats.Summarize(reads), lin: linCheck(runOut{net: net, ops: ops}, 0)}
	})

	if rows[0].skip {
		return Result{ID: "E13", Title: "tick granularity", Failures: rows[0].errs}
	}
	refMax := rows[0].sum.Max
	tb.AddRow("(continuous)", fmtD(rows[0].sum.P50), fmtD(refMax), "0s", checkMark(rows[0].lin))

	prevMax := simtime.Duration(0)
	for i, tick := range ticks {
		r := rows[1+i]
		fails = append(fails, r.errs...)
		if r.skip {
			continue
		}
		sum := r.sum
		excess := sum.Max - refMax
		tb.AddRow(fmtD(tick), fmtD(sum.P50), fmtD(sum.Max), fmtD(excess), checkMark(r.lin))
		figP50 = append(figP50, stats.Point{X: tick.Millis(), Y: sum.P50.Millis()})
		figMax = append(figMax, stats.Point{X: tick.Millis(), Y: sum.Max.Millis()})
		if !r.lin {
			fails = append(fails, fmt.Sprintf("tick=%v: not linearizable", tick))
		}
		// Granularity cost bound: tick staleness ≤ tick period, plus step
		// and queueing ≤ a few ℓ; and it must never beat the ideal.
		if excess > tick+6*ell+2*eps {
			fails = append(fails, fmt.Sprintf("tick=%v: excess %v beyond tick+6ℓ+2ε", tick, excess))
		}
		if sum.Min < ideal-2*eps {
			fails = append(fails, fmt.Sprintf("tick=%v: read %v beat the clock-time ideal", tick, sum.Min))
		}
		if prevMax > 0 && sum.Max+ell < prevMax-4*ell {
			// Coarser ticks should not get dramatically faster.
			fails = append(fails, fmt.Sprintf("tick=%v: latency non-monotone (%v after %v)", tick, sum.Max, prevMax))
		}
		prevMax = sum.Max
	}
	fig := stats.Chart("Figure 6: read latency vs TICK period", "tick period (ms)", "read latency (ms)",
		[]stats.Series{
			{Name: "p50", Marker: 'p', Points: figP50},
			{Name: "max", Marker: 'M', Points: figMax},
		}, 56, 10)
	return Result{
		ID:       "E13",
		Title:    "clock granularity: TICK period sweep in D_M (ℓ=200µs, ε=200µs)",
		Output:   tb.String() + fig,
		Failures: fails,
	}
}
