package experiments

import (
	"testing"
)

// TestVerifyCaptureReplayParity captures a small multi-register stream
// and checks the replay invariants the bench relies on: the sharded
// replay's merged verdict equals the sequential replay's byte-for-byte,
// and the ε-approximate replay is sound (an OK names a real witness; a
// failure after pruning is only ε-uncertain).
func TestVerifyCaptureReplayParity(t *testing.T) {
	cmds, err := CaptureVerifyCmds(600, 2)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if len(cmds) == 0 {
		t.Fatal("capture: empty command stream")
	}
	seq := VerifyThroughput(cmds, 0, 0)
	if !seq.OK {
		t.Fatalf("sequential replay rejected the captured run: %s", seq.Reason)
	}
	if seq.Ops < 600 {
		t.Fatalf("sequential replay saw %d ops, want >= 600", seq.Ops)
	}
	for _, shards := range []int{2, 4} {
		sh := VerifyThroughput(cmds, shards, 0)
		if sh.OK != seq.OK || sh.Reason != seq.Reason || sh.States != seq.States || sh.Pruned != seq.Pruned {
			t.Errorf("sharded(%d) replay {%v %q states=%d pruned=%d} != sequential {%v %q states=%d pruned=%d}",
				shards, sh.OK, sh.Reason, sh.States, sh.Pruned, seq.OK, seq.Reason, seq.States, seq.Pruned)
		}
	}
	approx := VerifyThroughput(cmds, 2, 100*us)
	if approx.OK {
		if !seq.OK {
			t.Errorf("approximate replay accepted a stream the exact checker rejects")
		}
	} else if approx.Pruned == 0 {
		t.Errorf("approximate replay failed without pruning but exact accepts: %s", approx.Reason)
	}
	if approx.Verdict == "" {
		t.Error("approximate replay reported no verdict string")
	}
}
