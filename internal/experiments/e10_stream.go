package experiments

import (
	"fmt"
	"runtime"
	"time"

	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/workload"
)

// StreamReport is one long-horizon pipeline measurement: throughput plus
// the memory profile the streaming refactor exists to improve — peak live
// heap at the run's point of maximum liveness and allocations per
// completed operation.
type StreamReport struct {
	// Ops is the number of operations that completed.
	Ops int
	// WallMS is the measured wall-clock time of the run.
	WallMS float64
	// OpsPerSec is Ops over the wall time.
	OpsPerSec float64
	// PeakHeapBytes is the live-heap growth over the run, read after a
	// forced GC at end of run — the point of maximum liveness for a
	// retained run, and representative steady state for a streaming one.
	PeakHeapBytes uint64
	// AllocsPerOp is total heap allocations divided by Ops.
	AllocsPerOp float64
	// OK/Reason/States echo the linearizability verdict.
	OK     bool
	Reason string
	States int
}

// StreamRun executes a seeded long-horizon register workload (algorithm L
// in the timed model, 3 nodes) and verifies linearizability either
// streaming (retain=false: retention off, a Monitor-driven online checker
// consumes events as they are committed, memory stays O(window)) or
// retained (retain=true: the classic pipeline — keep the whole trace,
// scrape the history, batch-check; memory grows with the run). The two
// modes answer with the same verdict; they differ in the memory column,
// which is the comparison E10 and `pscbench -stream` report.
func StreamRun(totalOps int, retain bool) (StreamReport, error) {
	const n = 3
	perClient := (totalOps + n - 1) / n
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi, Epsilon: 0}
	net := core.BuildTimed(core.Config{N: n, Bounds: bounds, Seed: 4242}, register.Factory(register.NewL, p))
	opt := linearize.Options{Initial: register.Initial.String(), AssumeUnique: true, MaxStates: 1 << 30}
	var mon *register.Monitor
	if retain {
		net.Sys.KeepTrace = true
	} else {
		net.Sys.KeepTrace = false
		mon = register.NewMonitor()
		mon.AddCheck("lin", opt)
		net.Sys.AddSink(mon)
	}
	clients := workload.Attach(net, workload.Config{
		Ops:        perClient,
		Think:      simtime.NewInterval(0, 1*ms),
		WriteRatio: 0.4,
		Seed:       77,
		Stagger:    300 * us,
	})
	allDone := func() bool {
		for _, c := range clients {
			if c.Done != perClient {
				return false
			}
		}
		return true
	}
	// Every operation takes at most think (1ms) + the slower of the two
	// costs (write: d'2−c = 2.5ms), so 5ms per op plus slack bounds the
	// horizon. Driving the run in slices is what advances the sinks'
	// low-watermark: each Run boundary flushes, letting the online
	// checker settle and discard the operations behind it.
	horizon := simtime.Time(simtime.Duration(perClient)*5*ms + simtime.Second)
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for net.Sys.Now() < horizon && !allDone() {
		if err := net.Sys.Run(net.Sys.Now().Add(50 * ms)); err != nil {
			return StreamReport{}, err
		}
	}
	if _, err := net.Sys.RunQuiet(net.Sys.Now().Add(50 * ms)); err != nil {
		return StreamReport{}, err
	}
	wall := time.Since(start)
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	done := 0
	for _, c := range clients {
		done += c.Done
	}
	if !allDone() {
		return StreamReport{}, fmt.Errorf("experiments: stream run completed %d/%d ops within the horizon", done, n*perClient)
	}
	rep := StreamReport{
		Ops:         done,
		WallMS:      float64(wall.Microseconds()) / 1000,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(done),
	}
	if secs := wall.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(done) / secs
	}
	if m1.HeapAlloc > m0.HeapAlloc {
		rep.PeakHeapBytes = m1.HeapAlloc - m0.HeapAlloc
	}
	var res linearize.Result
	if retain {
		ops, err := register.History(net.Sys.Trace().Visible())
		if err != nil {
			return StreamReport{}, err
		}
		res = linearize.Check(ops, opt)
	} else {
		if err := mon.Err(); err != nil {
			return StreamReport{}, err
		}
		res = mon.Verdict("lin")
	}
	rep.OK, rep.Reason, rep.States = res.OK, res.Reason, res.States
	return rep, nil
}

// e10PipelineOps sizes the in-suite streaming-vs-retained comparison. It
// is deliberately modest so the unit suite stays fast; the acceptance
// scale (10⁶ operations) runs under `pscbench -stream -streamops`.
const e10PipelineOps = 10000

// e10Pipelines renders the streaming-vs-retained comparison rows and
// metrics for E10, returning failures on verdict disagreement or on a
// streaming pipeline that fails to undercut retained memory.
func e10Pipelines(metrics map[string]float64) (string, []string) {
	var fails []string
	// Like the throughput cells, the streaming row reports its best of
	// e10Trials runs: interference only subtracts throughput, so max-of-N
	// is the low-noise estimator (and min-of-N for the heap reading).
	sr, serr := StreamRun(e10PipelineOps, false)
	for trial := 1; trial < e10Trials && serr == nil; trial++ {
		var again StreamReport
		if again, serr = StreamRun(e10PipelineOps, false); serr != nil {
			break
		}
		if again.OpsPerSec > sr.OpsPerSec {
			sr.OpsPerSec, sr.WallMS = again.OpsPerSec, again.WallMS
		}
		if again.PeakHeapBytes < sr.PeakHeapBytes {
			sr.PeakHeapBytes = again.PeakHeapBytes
		}
	}
	rr, rerr := StreamRun(e10PipelineOps, true)
	if serr != nil {
		return "", []string{fmt.Sprintf("streaming pipeline: %v", serr)}
	}
	if rerr != nil {
		return "", []string{fmt.Sprintf("retained pipeline: %v", rerr)}
	}
	tb := stats.NewTable("pipeline", "ops", "wall ms", "ops/s", "peak heap (KiB)", "allocs/op", "lin.", "states")
	row := func(name string, r StreamReport) {
		tb.AddRow(name, fmt.Sprint(r.Ops), fmt.Sprintf("%.1f", r.WallMS), fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.0f", float64(r.PeakHeapBytes)/1024), fmt.Sprintf("%.1f", r.AllocsPerOp),
			checkMark(r.OK), fmt.Sprint(r.States))
	}
	row("streaming", sr)
	row("retained", rr)
	metrics["ops_per_sec_stream"] = sr.OpsPerSec
	metrics["peak_heap_bytes_stream"] = float64(sr.PeakHeapBytes)
	metrics["peak_heap_bytes_retained"] = float64(rr.PeakHeapBytes)
	metrics["allocs_per_op_stream"] = sr.AllocsPerOp
	metrics["allocs_per_op_retained"] = rr.AllocsPerOp
	if sr.PeakHeapBytes > 0 {
		metrics["heap_ratio_retained_over_stream"] = float64(rr.PeakHeapBytes) / float64(sr.PeakHeapBytes)
	}
	if !sr.OK {
		fails = append(fails, fmt.Sprintf("streaming pipeline verdict: %s", sr.Reason))
	}
	if !rr.OK {
		fails = append(fails, fmt.Sprintf("retained pipeline verdict: %s", rr.Reason))
	}
	if sr.OK != rr.OK || sr.Reason != rr.Reason || sr.States != rr.States {
		fails = append(fails, fmt.Sprintf("pipeline verdicts disagree: streaming {%v %q %d} vs retained {%v %q %d}",
			sr.OK, sr.Reason, sr.States, rr.OK, rr.Reason, rr.States))
	}
	// Live-heap readings share the process with parallel tests, so the
	// gate is a conservative factor, not the full ratio the long-horizon
	// run exhibits.
	if sr.PeakHeapBytes >= rr.PeakHeapBytes {
		fails = append(fails, fmt.Sprintf("streaming peak heap %d B is not below retained %d B", sr.PeakHeapBytes, rr.PeakHeapBytes))
	}
	return tb.String(), fails
}
