package experiments

import (
	"fmt"
	"runtime"
	"time"

	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

// Checker-throughput measurement (the `pscbench -checkshards/-approx`
// stream sub-sections). A single executor run cannot separate checker
// cost from executor cost, so the bench runs in two phases: capture a
// multi-register execution's checker command stream once (the exact
// Begin/Add/Advance sequence the monitor would issue), then replay the
// identical stream through each checker variant — sequential inline,
// sharded, ε-approximate — timing only the replay. Same inputs by
// construction, so the ops/s ratios are checker speedups.

// VerifyGroupSize is the number of nodes serving each register in the
// capture workload: each group of 3 consecutive nodes runs algorithm L
// over its own register, disconnected from every other group.
const VerifyGroupSize = 3

// verifySamples is the number of mid-replay live-heap samples a
// VerifyThroughput run takes. Each costs a forced GC; a handful is enough
// to catch the checker's window near its widest, and the sampling time is
// excluded from the throughput clock.
const verifySamples = 8

// VerifyKey names the register a node serves in the capture workload.
func VerifyKey(n ta.NodeID) string { return fmt.Sprintf("r%d", int(n)/VerifyGroupSize) }

// verifyOptions is the per-register checker configuration of the verify
// bench, matching StreamRun's streaming checker.
func verifyOptions(approxEps simtime.Duration) linearize.Options {
	return linearize.Options{
		Initial:      register.Initial.String(),
		AssumeUnique: true,
		MaxStates:    1 << 30,
		ApproxEps:    approxEps,
	}
}

// CaptureVerifyCmds runs a multi-register workload (registers disjoint
// groups of VerifyGroupSize nodes, algorithm L in the timed model, one
// closed-loop client per node, ~totalOps operations in total) and returns
// the checker command stream its monitor produced. Node IDs are global,
// so written values stay unique across groups (§3) and every group's
// history starts from register.Initial.
func CaptureVerifyCmds(totalOps, registers int) ([]linearize.Cmd, error) {
	if registers < 1 {
		registers = 1
	}
	n := registers * VerifyGroupSize
	perClient := (totalOps + n - 1) / n
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi, Epsilon: 0}
	net := core.BuildTimed(core.Config{
		N:      n,
		Bounds: bounds,
		Seed:   4242,
		// Groups of VerifyGroupSize consecutive nodes, complete within a
		// group, disconnected across groups: independent registers.
		Topology: func(from, to int) bool { return from/VerifyGroupSize == to/VerifyGroupSize },
	}, register.Factory(register.NewL, p))
	net.Sys.KeepTrace = false
	rec := &linearize.Recorder{}
	mon := register.NewMonitor()
	mon.SetKeyFunc(VerifyKey)
	mon.AddChecker("capture", rec)
	net.Sys.AddSink(mon)
	clients := workload.Attach(net, workload.Config{
		Ops:        perClient,
		Think:      simtime.NewInterval(0, 1*ms),
		WriteRatio: 0.4,
		Seed:       77,
		Stagger:    300 * us,
	})
	allDone := func() bool {
		for _, c := range clients {
			if c.Done != perClient {
				return false
			}
		}
		return true
	}
	horizon := simtime.Time(simtime.Duration(perClient)*5*ms + simtime.Second)
	for net.Sys.Now() < horizon && !allDone() {
		if err := net.Sys.Run(net.Sys.Now().Add(50 * ms)); err != nil {
			return nil, err
		}
	}
	if _, err := net.Sys.RunQuiet(net.Sys.Now().Add(50 * ms)); err != nil {
		return nil, err
	}
	if err := mon.Err(); err != nil {
		return nil, err
	}
	if !allDone() {
		done := 0
		for _, c := range clients {
			done += c.Done
		}
		return nil, fmt.Errorf("experiments: verify capture completed %d/%d ops within the horizon", done, n*perClient)
	}
	mon.Finish()
	return rec.Cmds, nil
}

// VerifyReport is one replayed checker-variant measurement.
type VerifyReport struct {
	// Shards is the worker-pool size replayed (< 2 means sequential
	// inline); ApproxEps is the ε-approximate band (0 means exact).
	Shards    int
	ApproxEps simtime.Duration
	// Ops is the number of completed operations in the replayed stream.
	Ops int
	// WallMS / OpsPerSec time the replay alone.
	WallMS    float64
	OpsPerSec float64
	// PeakHeapBytes is the peak live-heap growth during the replay over a
	// forced-GC baseline (so the captured command buffer cancels out),
	// sampled with forced GCs at a handful of points mid-replay: the
	// checker frees its in-flight windows in Finish, so only a mid-replay
	// reading sees the state the verification actually held live.
	PeakHeapBytes uint64
	// OK/Reason/Verdict/States/Pruned echo the merged checker result;
	// Verdict is the three-valued classification string.
	OK      bool
	Reason  string
	Verdict string
	States  int
	Pruned  int
}

// VerifyThroughput replays a captured command stream through a checker
// variant and measures it. shards < 2 is the sequential baseline; all
// variants on the same stream return comparable (and for exact variants,
// identical) verdicts.
func VerifyThroughput(cmds []linearize.Cmd, shards int, approxEps simtime.Duration) VerifyReport {
	ops := 0
	for i := range cmds {
		if cmds[i].Kind == linearize.CmdAdd {
			ops++
		}
	}
	c := linearize.NewSharded(linearize.ShardedOptions{Check: verifyOptions(approxEps), Shards: shards})
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	// Sample live heap at verifySamples points during the replay (each a
	// forced GC plus a stats read, so garbage is excluded and the reading
	// is live state). The time spent sampling is subtracted from the wall
	// clock: it is measurement cost, not checker cost, and charging it
	// would understate every variant's throughput by the same constant.
	peak := m0.HeapAlloc
	var sampling time.Duration
	sample := func() {
		t0 := time.Now()
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > peak {
			peak = m.HeapAlloc
		}
		sampling += time.Since(t0)
	}
	start := time.Now()
	res := linearize.ReplaySampled(cmds, c, len(cmds)/verifySamples+1, sample)
	wall := time.Since(start) - sampling
	if wall < 0 {
		wall = 0
	}
	rep := VerifyReport{
		Shards:    shards,
		ApproxEps: approxEps,
		Ops:       ops,
		WallMS:    float64(wall.Microseconds()) / 1000,
		OK:        res.OK,
		Reason:    res.Reason,
		Verdict:   res.Verdict().String(),
		States:    res.States,
		Pruned:    res.Pruned,
	}
	if secs := wall.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(ops) / secs
	}
	if peak > m0.HeapAlloc {
		rep.PeakHeapBytes = peak - m0.HeapAlloc
	}
	return rep
}
