package experiments

import (
	"fmt"

	"psclock/internal/clock"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
)

// E14SeqConsistency regenerates Table 10: the Attiya-Welch boundary.
// Algorithm L descends from the sequential-consistency algorithm of the
// paper's reference [2] (Attiya & Welch, "Sequential Consistency versus
// Linearizability"); the paper's §6.2 move — the 2ε read wait of
// algorithm S — is exactly what upgrades it to linearizability in the
// clock model. This experiment runs plain L under maximal clock skew and
// shows that what breaks is precisely linearizability, never sequential
// consistency: the 2ε is the measured price of the stronger condition.
//
// The sequential-consistency verdict comes from the streaming SC checker
// attached as an online monitor; streamParity asserts it byte-identical
// to the batch checker replayed over the retained trace, so each seed
// also witnesses online == batch for the seq tier's gating engine.
func E14SeqConsistency() Result {
	bounds := simtime.NewInterval(200*us, 400*us)
	eps := 1 * ms
	p := register.Params{C: 0, Delta: 5 * us, D2: bounds.Hi + 2*eps, Epsilon: 0}
	tb := stats.NewTable("seed", "ops", "linearizable", "seq. consistent")
	// Seeds fan out; the violation tally is reduced in seed order below.
	type e14Row struct {
		rowOut
		linOK bool
		skip  bool
	}
	rows := parmap(8, func(i int) e14Row {
		seed := int64(i)
		out, err := run(runSpec{
			model:   "clock",
			factory: register.Factory(register.NewL, p),
			n:       3, bounds: bounds, seed: seed,
			clocks: clock.SpreadFactory(eps), delays: nil,
			ops: 50, think: simtime.NewInterval(0, 700*us), writeRatio: 0.3,
			stream: []streamCheck{{name: "sc", seq: &linearize.SeqOptions{Initial: register.Initial.String()}}},
		})
		if err != nil {
			return e14Row{rowOut: rowOut{fails: []string{err.Error()}}, skip: true}
		}
		lin := linearize.CheckLinearizable(out.ops, register.Initial.String())
		sc := out.mon.Verdict("sc")
		r := e14Row{linOK: lin.OK}
		r.fails = append(r.fails, streamParity(out)...)
		r.cells = []string{fmt.Sprint(seed), fmt.Sprint(len(out.ops)), checkMark(lin.OK), checkMark(sc.OK)}
		if !sc.OK {
			r.fails = append(r.fails, fmt.Sprintf("seed %d: sequential consistency violated: %s", seed, sc.Reason))
		}
		return r
	})
	var fails []string
	linViolations := 0
	for _, r := range rows {
		fails = append(fails, r.fails...)
		if r.skip {
			continue
		}
		tb.AddRow(r.cells...)
		if !r.linOK {
			linViolations++
		}
	}
	if linViolations == 0 {
		fails = append(fails, "linearizability never violated: the 2ε wait of algorithm S appears unnecessary, contradicting §6.2")
	}
	note := fmt.Sprintf("linearizability violated on %d/8 seeds; sequential consistency on 0/8.\n"+
		"The 2ε read wait of algorithm S (read cost %v → %v here) buys exactly the upgrade from [2]'s\n"+
		"sequential consistency to Theorem 6.5's linearizability.\n",
		linViolations, p.C+p.Delta, 2*eps+p.C+p.Delta)
	return Result{
		ID:       "E14",
		Title:    "Attiya-Welch boundary: L in D_C is sequentially consistent, not linearizable (ε=1ms, max skew)",
		Output:   tb.String() + note,
		Failures: fails,
	}
}
