package experiments

import (
	"fmt"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
)

// E1AlgorithmL regenerates Table 1 (Lemma 6.1): algorithm L in D_T has
// read cost exactly c+δ and write cost exactly d'2−c, while solving
// linearizability, across the c sweep.
func E1AlgorithmL() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	delta := 10 * us
	cs := []simtime.Duration{0, 500 * us, 1 * ms, 2 * ms, 3 * ms}
	rows := parmapSlice(cs, func(c simtime.Duration) rowOut {
		var r rowOut
		p := register.Params{C: c, Delta: delta, D2: bounds.Hi, Epsilon: 0}
		out, err := run(runSpec{
			model:   "timed",
			factory: register.Factory(register.NewL, p),
			n:       3, bounds: bounds, seed: 101 + int64(c),
			ops: 40, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.4,
			stream: []streamCheck{{name: "lin", opt: linearize.Options{Initial: register.Initial.String()}}},
		})
		if err != nil {
			r.fails = append(r.fails, err.Error())
			return r
		}
		r.fails = append(r.fails, streamParity(out)...)
		reads, writes := register.Latencies(out.ops)
		rs, ws := stats.Summarize(reads), stats.Summarize(writes)
		lin := linCheck(out, 0)
		wantR, wantW := c+delta, bounds.Hi-c
		r.cells = []string{fmtD(c), fmtD(wantR), fmtD(rs.Max), fmtD(wantW), fmtD(ws.Max), checkMark(lin)}
		if rs.Min != wantR || rs.Max != wantR {
			r.fails = append(r.fails, fmt.Sprintf("c=%v: read latency [%v, %v] != %v", c, rs.Min, rs.Max, wantR))
		}
		if ws.Min != wantW || ws.Max != wantW {
			r.fails = append(r.fails, fmt.Sprintf("c=%v: write latency [%v, %v] != %v", c, ws.Min, ws.Max, wantW))
		}
		if !lin {
			r.fails = append(r.fails, fmt.Sprintf("c=%v: not linearizable", c))
		}
		return r
	})
	tb := stats.NewTable("c", "read want", "read meas", "write want", "write meas", "linearizable")
	fails := collectRows(tb, rows)
	return Result{ID: "E1", Title: "Lemma 6.1: algorithm L in D_T (d'2=3ms, δ=10µs)", Output: tb.String(), Failures: fails}
}

// E2AlgorithmS regenerates Table 2 (Lemma 6.2): algorithm S solves
// ε-superlinearizability in D_T with read cost 2ε+c+δ and write cost d'2−c.
func E2AlgorithmS() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	delta := 10 * us
	c := 600 * us
	epss := []simtime.Duration{0, 100 * us, 300 * us, 500 * us, 1 * ms}
	rows := parmapSlice(epss, func(eps simtime.Duration) rowOut {
		var r rowOut
		d2p := bounds.Hi + 2*eps
		p := register.Params{C: c, Delta: delta, D2: d2p, Epsilon: eps}
		out, err := run(runSpec{
			model:   "timed",
			factory: register.Factory(register.NewS, p),
			n:       3, bounds: simtime.NewInterval(bounds.Lo, d2p), seed: 202 + int64(eps),
			ops: 30, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.4,
			stream: []streamCheck{
				{name: "lin", opt: linearize.Options{Initial: register.Initial.String()}},
				{name: "super", opt: linearize.Options{Initial: register.Initial.String(), MinAfterInv: 2 * eps}},
			},
		})
		if err != nil {
			r.fails = append(r.fails, err.Error())
			return r
		}
		r.fails = append(r.fails, streamParity(out)...)
		reads, writes := register.Latencies(out.ops)
		rs, ws := stats.Summarize(reads), stats.Summarize(writes)
		super := superCheck(out, eps)
		lin := linCheck(out, 0)
		wantR, wantW := 2*eps+c+delta, d2p-c
		r.cells = []string{fmtD(eps), fmtD(wantR), fmtD(rs.Max), fmtD(wantW), fmtD(ws.Max),
			checkMark(super), checkMark(lin)}
		if rs.Min != wantR || rs.Max != wantR {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v: read latency [%v, %v] != %v", eps, rs.Min, rs.Max, wantR))
		}
		if ws.Min != wantW || ws.Max != wantW {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v: write latency [%v, %v] != %v", eps, ws.Min, ws.Max, wantW))
		}
		if !super || !lin {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v: superlin=%v lin=%v", eps, super, lin))
		}
		return r
	})
	tb := stats.NewTable("ε", "read want", "read meas", "write want", "write meas", "superlin.", "lin.")
	fails := collectRows(tb, rows)
	return Result{ID: "E2", Title: "Lemma 6.2: algorithm S in D_T (c=600µs, δ=10µs)", Output: tb.String(), Failures: fails}
}

// E3ClockModel regenerates Table 3 (Theorem 6.5): transformed S solves
// plain linearizability in D_C with read cost 2ε+δ+c and write cost
// d2+2ε−c (clock time; real-time measurements may deviate by ≤ 2ε).
func E3ClockModel() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	delta := 10 * us
	c := 700 * us
	// Clock families in a fixed order (the seed's map iteration shuffled
	// rows run to run; deterministic output is a requirement now that rows
	// fan out in parallel). Factories may be stateful, so each row builds
	// its own inside the worker.
	clockNames := []string{"perfect", "spread", "drift", "sawtooth"}
	factoryFor := func(name string, eps simtime.Duration) clock.Factory {
		switch name {
		case "perfect":
			return clock.PerfectFactory()
		case "spread":
			return clock.SpreadFactory(eps)
		case "drift":
			return clock.DriftFactory(eps, 31)
		default:
			return clock.SawtoothFactory(eps, 8*ms)
		}
	}
	type e3Spec struct {
		eps   simtime.Duration
		cname string
	}
	var specs []e3Spec
	for _, eps := range []simtime.Duration{100 * us, 500 * us, 1 * ms} {
		for _, cname := range clockNames {
			specs = append(specs, e3Spec{eps, cname})
		}
	}
	rows := parmapSlice(specs, func(sp e3Spec) rowOut {
		var r rowOut
		eps, cname := sp.eps, sp.cname
		p := register.Params{C: c, Delta: delta, D2: bounds.Hi + 2*eps, Epsilon: eps}
		out, err := run(runSpec{
			model:   "clock",
			factory: register.Factory(register.NewS, p),
			n:       3, bounds: bounds, seed: 303 + int64(eps),
			clocks: factoryFor(cname, eps), delays: channel.UniformDelay,
			ops: 30, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.4,
			stream: []streamCheck{{name: "lin", opt: linearize.Options{Initial: register.Initial.String()}}},
		})
		if err != nil {
			r.fails = append(r.fails, err.Error())
			return r
		}
		r.fails = append(r.fails, streamParity(out)...)
		reads, writes := register.Latencies(out.ops)
		rs, ws := stats.Summarize(reads), stats.Summarize(writes)
		lin := linCheck(out, 0)
		wantR, wantW := 2*eps+delta+c, bounds.Hi+2*eps-c
		r.cells = []string{fmtD(eps), cname, fmtD(wantR), fmtD(rs.Max), fmtD(wantW), fmtD(ws.Max), checkMark(lin)}
		if (rs.Max-wantR).Abs() > 2*eps || (rs.Min-wantR).Abs() > 2*eps {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: read [%v, %v] vs %v ± 2ε", eps, cname, rs.Min, rs.Max, wantR))
		}
		if (ws.Max-wantW).Abs() > 2*eps || (ws.Min-wantW).Abs() > 2*eps {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: write [%v, %v] vs %v ± 2ε", eps, cname, ws.Min, ws.Max, wantW))
		}
		if !lin {
			r.fails = append(r.fails, fmt.Sprintf("ε=%v/%s: not linearizable", eps, cname))
		}
		return r
	})
	tb := stats.NewTable("ε", "clocks", "read want", "read meas (max)", "write want", "write meas (max)", "linearizable")
	fails := collectRows(tb, rows)
	return Result{ID: "E3", Title: "Theorem 6.5: S^c in D_C (d2=3ms, c=700µs)", Output: tb.String(), Failures: fails}
}

// E4Comparison regenerates Table 4 and Figure 1 (§6.3): transformed S
// versus the [10] baseline in u = 2ε terms. The paper's translation: ours
// read c+u, write d2−c+u (combined d2+2u); baseline read 4u, write d2+3u
// (combined d2+7u). The read-cost crossover falls at c ≈ 3u−δ.
func E4Comparison() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	d2 := bounds.Hi
	delta := 10 * us
	type e4Spec struct {
		u, cKnob simtime.Duration
	}
	var specs []e4Spec
	for _, u := range []simtime.Duration{200 * us, 400 * us, 800 * us} {
		for _, cKnob := range []simtime.Duration{0, u, 2 * u, 3 * u, 4 * u} {
			if cKnob > d2 {
				continue
			}
			specs = append(specs, e4Spec{u, cKnob})
		}
	}
	type e4Row struct {
		rowOut
		figOurs, figBase *stats.Point
		crossNote        string
	}
	rows := parmapSlice(specs, func(sp e4Spec) e4Row {
		var r e4Row
		u, cKnob := sp.u, sp.cKnob
		eps := u / 2
		p := register.Params{C: cKnob, Delta: delta, D2: d2 + 2*eps, Epsilon: eps}
		oursOut, err := run(runSpec{
			model:   "clock",
			factory: register.Factory(register.NewS, p),
			n:       3, bounds: bounds, seed: 404 + int64(u+cKnob),
			clocks: clock.SpreadFactory(eps), delays: channel.UniformDelay,
			ops: 25, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.4,
		})
		if err != nil {
			r.fails = append(r.fails, err.Error())
			return r
		}
		baseOut, err := run(runSpec{
			model:   "clock",
			factory: register.BaselineFactory(u, d2),
			n:       3, bounds: bounds, seed: 404 + int64(u+cKnob),
			clocks: clock.SpreadFactory(eps), delays: channel.UniformDelay,
			ops: 25, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.4,
		})
		if err != nil {
			r.fails = append(r.fails, err.Error())
			return r
		}
		oR, oW := maxLat(oursOut)
		bR, bW := maxLat(baseOut)
		oLin, bLin := linCheck(oursOut, 0), linCheck(baseOut, 0)
		r.cells = []string{fmtD(u), fmtD(cKnob), fmtD(oR), fmtD(bR), fmtD(oW), fmtD(bW),
			fmtD(oR + oW), fmtD(bR + bW), checkMark(oLin), checkMark(bLin)}
		if u == 800*us {
			r.figOurs = &stats.Point{X: cKnob.Millis(), Y: oR.Millis()}
			r.figBase = &stats.Point{X: cKnob.Millis(), Y: bR.Millis()}
		}
		if !oLin {
			r.fails = append(r.fails, fmt.Sprintf("u=%v c=%v: ours not linearizable", u, cKnob))
		}
		if !bLin {
			r.fails = append(r.fails, fmt.Sprintf("u=%v c=%v: baseline not linearizable", u, cKnob))
		}
		// The paper's headline: ours wins on combined cost (d2+2u vs
		// d2+7u) whenever u > 0 — allow 2ε of real-time measurement slop
		// on each of the four latencies.
		if u > 0 && oR+oW >= bR+bW+8*eps {
			r.fails = append(r.fails, fmt.Sprintf("u=%v c=%v: combined %v not better than baseline %v", u, cKnob, oR+oW, bR+bW))
		}
		// Crossover: for c < 3u ours reads faster; for c > 3u baseline
		// reads faster (±2ε slop each side).
		if cKnob < 3*u-2*eps-delta && oR >= bR+4*eps {
			r.fails = append(r.fails, fmt.Sprintf("u=%v c=%v: expected ours to read faster (%v vs %v)", u, cKnob, oR, bR))
		}
		if cKnob > 3*u+2*eps && bR >= oR+4*eps {
			r.fails = append(r.fails, fmt.Sprintf("u=%v c=%v: expected baseline to read faster (%v vs %v)", u, cKnob, bR, oR))
		}
		if cKnob == 3*u {
			r.crossNote = fmt.Sprintf("read-cost crossover at c = 3u−δ (paper: ours c+u vs baseline 4u); at u=%v both read ≈ %v\n", u, bR)
		}
		return r
	})
	tb := stats.NewTable("u", "c", "S read", "base read", "S write", "base write", "S combined", "base combined", "S lin.", "base lin.")
	var fails []string
	crossNote := ""
	var figOurs, figBase []stats.Point
	for _, r := range rows {
		if r.cells != nil {
			tb.AddRow(r.cells...)
		}
		fails = append(fails, r.fails...)
		if r.figOurs != nil {
			figOurs = append(figOurs, *r.figOurs)
			figBase = append(figBase, *r.figBase)
		}
		if r.crossNote != "" {
			crossNote = r.crossNote
		}
	}
	return Result{
		ID:    "E4",
		Title: "§6.3 comparison: transformed S vs [10] baseline (u = 2ε, d2 = 3ms)",
		Output: tb.String() + crossNote + stats.Chart(
			"Figure 1: worst-case read latency vs c (u = 800µs)", "c (ms)", "read latency (ms)",
			[]stats.Series{
				{Name: "transformed S (c+u)", Marker: 'o', Points: figOurs},
				{Name: "baseline [10] (4u)", Marker: 'b', Points: figBase},
			}, 56, 10),
		Failures: fails,
	}
}

func maxLat(out runOut) (read, write simtime.Duration) {
	reads, writes := register.Latencies(out.ops)
	return stats.MaxDuration(reads), stats.MaxDuration(writes)
}

func linCheck(out runOut, widen simtime.Duration) bool {
	r := linearizeCheck(out, widen)
	return r.OK
}

func superCheck(out runOut, eps simtime.Duration) bool {
	r := superlinearizeCheck(out, eps)
	return r.OK
}
