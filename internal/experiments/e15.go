package experiments

import (
	"fmt"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

// E15Detector regenerates Table 11: failure detection, the first use of
// time the paper's introduction names. A heartbeat detector designed in
// the timed model with the tight timeout π+(d2−d1) is perfectly accurate
// there; run unchanged in the clock model its accuracy decays as clock
// adversaries stretch observed heartbeat gaps by up to 4ε. Sweeping the
// added margin shows accuracy restored at exactly the 4ε the analysis
// predicts (the §7.1 strengthening, applied to timeouts), and the final
// row prices it: a crashed node is detected within timeout + π + d2 + 2ε.
func E15Detector() Result {
	bounds := simtime.NewInterval(500*us, 1500*us)
	eps := 800 * us
	period := 5 * ms
	beats := 25
	lastBeat := simtime.Time(simtime.Duration(beats) * period)
	base := detector.SafeTimeoutTA(period, bounds)

	tb := stats.NewTable("margin", "timeout", "clocks", "false suspicions", "accurate")
	var fails []string

	countFalse := func(margin simtime.Duration, cf clock.Factory) (int, error) {
		p := detector.Params{Period: period, Timeout: base + margin, Heartbeats: beats}
		cfg := core.Config{N: 3, Bounds: bounds, Seed: 15, Clocks: cf}
		net := core.BuildClocked(cfg, detector.Factory(p))
		if err := net.Sys.Run(simtime.Time(150 * ms)); err != nil {
			return 0, err
		}
		n := 0
		for _, s := range detector.Suspicions(net.Sys.Trace()) {
			if s.At.Before(lastBeat) {
				n++
			}
		}
		return n, nil
	}

	// The margin × clock grid fans out with a canonical clock order (a map
	// iteration here would make the row order nondeterministic). Factories
	// may be stateful, so each row constructs its own.
	clockNames := []string{"spread", "sawtooth"}
	cfFor := func(name string) clock.Factory {
		if name == "spread" {
			return clock.SpreadFactory(eps)
		}
		return clock.SawtoothFactory(eps, 8*ms)
	}
	type e15Spec struct {
		margin simtime.Duration
		cname  string
	}
	var specs []e15Spec
	for _, margin := range []simtime.Duration{0, eps, 2 * eps, 3 * eps, 4 * eps} {
		for _, cname := range clockNames {
			specs = append(specs, e15Spec{margin, cname})
		}
	}
	type e15Row struct {
		rowOut
		misfire bool
	}
	rows := parmapSlice(specs, func(s e15Spec) e15Row {
		n, err := countFalse(s.margin, cfFor(s.cname))
		if err != nil {
			return e15Row{rowOut: rowOut{fails: []string{err.Error()}}}
		}
		r := e15Row{misfire: s.margin < 4*eps && n > 0}
		r.cells = []string{fmtD(s.margin), fmtD(base + s.margin), s.cname, fmt.Sprint(n), checkMark(n == 0)}
		if s.margin >= 4*eps && n > 0 {
			r.fails = append(r.fails, fmt.Sprintf("margin %v (≥4ε): %d false suspicions under %s clocks", s.margin, n, s.cname))
		}
		return r
	})
	sawMisfire := false
	for _, r := range rows {
		fails = append(fails, r.fails...)
		if r.cells != nil {
			tb.AddRow(r.cells...)
		}
		sawMisfire = sawMisfire || r.misfire
	}
	if !sawMisfire {
		fails = append(fails, "no adversary ever caused a false suspicion below the 4ε margin; the margin appears unnecessary")
	}

	// Detection latency of a real crash under the safe timeout.
	p := detector.Params{Period: period, Timeout: detector.SafeTimeoutClock(period, bounds, eps), Heartbeats: 0}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 16, Clocks: clock.DriftFactory(eps, 7)}
	net := core.BuildClocked(cfg, detector.Factory(p))
	crashAt := simtime.Time(40 * ms)
	if _, err := core.CrashNode(net, 2, crashAt); err != nil {
		fails = append(fails, err.Error())
	} else if err := net.Sys.Run(simtime.Time(200 * ms)); err != nil {
		fails = append(fails, err.Error())
	} else {
		var latencies []simtime.Duration
		for _, s := range detector.Suspicions(net.Sys.Trace()) {
			if s.Of != ta.NodeID(2) {
				fails = append(fails, fmt.Sprintf("false suspicion of live node: %+v", s))
				continue
			}
			latencies = append(latencies, s.At.Sub(crashAt))
		}
		bound := period + p.Timeout + bounds.Hi + 2*eps
		sum := stats.Summarize(latencies)
		tb.AddRow("(crash)", fmtD(p.Timeout), "drift", fmt.Sprintf("detected in %v..%v", sum.Min, sum.Max),
			checkMark(len(latencies) == 2 && sum.Max <= bound))
		if len(latencies) != 2 {
			fails = append(fails, fmt.Sprintf("crash detected by %d/2 peers", len(latencies)))
		} else if sum.Max > bound {
			fails = append(fails, fmt.Sprintf("detection latency %v exceeds bound %v", sum.Max, bound))
		}
	}

	return Result{
		ID:       "E15",
		Title:    "failure detection: timeout margin sweep in D_C (π=5ms, d=[0.5ms,1.5ms], ε=800µs)",
		Output:   tb.String(),
		Failures: fails,
	}
}
