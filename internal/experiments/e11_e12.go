package experiments

import (
	"fmt"
	"math/rand"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/object"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

// runObjectSpec drives the generalized object algorithm for one spec in
// one model and returns the history plus max latencies.
func runObjectSpec(model string, spec object.Spec, gen object.OpGen, eps simtime.Duration, seed int64) ([]linearize.GOp, simtime.Duration, simtime.Duration, error) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	ell := 50 * us
	d2p := bounds.Hi
	if model != "timed" {
		d2p += 2 * eps
	}
	if model == "mmt" {
		d2p += 24 * ell
	}
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: d2p, Epsilon: eps}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: seed, Clocks: clock.DriftFactory(eps, seed), Ell: ell}
	factory := object.Factory(object.NewS, func() object.Spec { return spec }, p)
	var net *core.Net
	switch model {
	case "timed":
		cfg.Clocks = clock.PerfectFactory()
		net = core.BuildTimed(cfg, factory)
	case "clock":
		net = core.BuildClocked(cfg, factory)
	case "mmt":
		net = core.BuildMMT(cfg, factory)
	default:
		return nil, 0, 0, fmt.Errorf("unknown model %q", model)
	}
	clients := object.Attach(net, object.ClientConfig{
		Ops: 20, Think: simtime.NewInterval(0, 2*ms), Gen: gen, Seed: seed, Stagger: 300 * us,
	})
	done := func() bool {
		for _, c := range clients {
			if c.Done != 20 {
				return false
			}
		}
		return true
	}
	for net.Sys.Now() < simtime.Time(30*simtime.Second) && !done() {
		if err := net.Sys.Run(net.Sys.Now().Add(20 * ms)); err != nil {
			return nil, 0, 0, err
		}
	}
	if !done() {
		return nil, 0, 0, fmt.Errorf("%s/%s: clients did not finish", model, spec.Name())
	}
	ops, err := object.History(net.Sys.Trace().Visible())
	if err != nil {
		return nil, 0, 0, err
	}
	var qMax, uMax simtime.Duration
	for _, o := range ops {
		if o.Pending() {
			continue
		}
		d := o.Res.Sub(o.Inv)
		if o.Result != "" || o.Op == "get" || o.Op == "read" || o.Op == "size" {
			if d > qMax {
				qMax = d
			}
		} else if d > uMax {
			uMax = d
		}
	}
	return ops, qMax, uMax, nil
}

// E11Objects regenerates Table 8: the §6 result generalized to other
// blind-update/query shared-memory objects ("we generalize our results to
// other shared memory objects in the full paper"), across all three
// models: linearizable everywhere, with the register's cost formulas.
func E11Objects() Result {
	eps := 400 * us
	objs := []struct {
		spec object.Spec
		gen  object.OpGen
	}{
		{object.Counter{}, object.CounterOps(0.5)},
		{object.GSet{}, object.GSetOps(0.5)},
		{object.MaxRegister{}, object.MaxOps(0.5)},
		{object.Register{}, object.RegisterOps(0.4)},
	}
	// Flatten the object × model grid into one row-spec list: every cell is
	// an independent seeded system. OpGens are stateless (the client's own
	// rand is passed in per call), so rows may share them.
	type e11Spec struct {
		spec  object.Spec
		gen   object.OpGen
		model string
	}
	var specs []e11Spec
	for _, o := range objs {
		for _, model := range []string{"timed", "clock", "mmt"} {
			specs = append(specs, e11Spec{o.spec, o.gen, model})
		}
	}
	rows := parmapSlice(specs, func(s e11Spec) rowOut {
		ops, qMax, uMax, err := runObjectSpec(s.model, s.spec, s.gen, eps, 1200)
		if err != nil {
			return rowOut{fails: []string{err.Error()}}
		}
		// Bounds: query 2ε+δ+c, update d'2−c, in clock time; allow the
		// ±2ε real-time envelope plus MMT's emission budget.
		slop := simtime.Duration(0)
		if s.model != "timed" {
			slop = 2 * eps
		}
		if s.model == "mmt" {
			slop += 24*50*us + 5*50*us
		}
		d2p := 3*ms + 2*eps
		if s.model == "timed" {
			d2p = 3 * ms
		}
		if s.model == "mmt" {
			d2p += 24 * 50 * us
		}
		qBound := 2*eps + 10*us + 500*us + slop
		uBound := d2p - 500*us + slop
		r := linearize.CheckObject(ops, s.spec, linearize.Options{Initial: s.spec.Init()})
		out := rowOut{cells: []string{s.spec.Name(), s.model, fmtD(qMax), fmtD(qBound), fmtD(uMax), fmtD(uBound), checkMark(r.OK)}}
		if !r.OK {
			out.fails = append(out.fails, fmt.Sprintf("%s/%s: not linearizable: %s", s.spec.Name(), s.model, r.Reason))
		}
		if qMax > qBound {
			out.fails = append(out.fails, fmt.Sprintf("%s/%s: query %v > bound %v", s.spec.Name(), s.model, qMax, qBound))
		}
		if uMax > uBound {
			out.fails = append(out.fails, fmt.Sprintf("%s/%s: update %v > bound %v", s.spec.Name(), s.model, uMax, uBound))
		}
		return out
	})
	tb := stats.NewTable("object", "model", "query max", "query bound", "update max", "update bound", "linearizable")
	fails := collectRows(tb, rows)
	return Result{ID: "E11", Title: "§6 generalized: blind-update/query objects across all models (ε=400µs)", Output: tb.String(), Failures: fails}
}

// E12Failures regenerates Table 9: the paper's §7.3 deferral of failures,
// explored. Crash-stop failures of non-participating replicas are
// harmless to algorithm S (its acks are timer-driven, never waiting on
// peers); a crashed *client's* operation is left pending and the rest
// stays linearizable; but a lossy link that drops an UPDATE leaves
// replicas divergent and violates linearizability — the reason the
// fault-tolerant extension needs [17]-style machinery.
func E12Failures() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 500 * us
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}

	build := func(seed int64, mutate func(*core.Net) error) (bool, error) {
		cfg := core.Config{N: 3, Bounds: bounds, Seed: seed, Clocks: clock.SpreadFactory(eps)}
		net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
		if mutate != nil {
			if err := mutate(net); err != nil {
				return false, err
			}
		}
		// Clients only at nodes 0 and 1; node 2 is a pure replica.
		var clients []*workload.Client
		for i := 0; i < 2; i++ {
			c := workload.NewClient(ta.NodeID(i), workload.Config{
				Ops: 30, Think: simtime.NewInterval(0, 1500*us), WriteRatio: 0.5, Seed: seed + int64(i), Stagger: 200 * us,
			})
			net.AddClient(c, ta.NodeID(i))
			clients = append(clients, c)
		}
		if _, err := net.Sys.RunQuiet(simtime.Time(30 * simtime.Second)); err != nil {
			return false, err
		}
		for _, c := range clients {
			_ = c // completion not required: crashed clients leave pending ops
		}
		ops, err := register.History(net.Sys.Trace().Visible())
		if err != nil {
			return false, err
		}
		return linearize.CheckLinearizable(ops, register.Initial.String()).OK, nil
	}
	crashAt := func(node ta.NodeID) func(*core.Net) error {
		return func(net *core.Net) error {
			_, err := core.CrashNode(net, node, simtime.Time(40*ms))
			return err
		}
	}

	// Rows fan out over the worker pool; each owns its own seeded system.
	type e12Row struct {
		row, fault       string
		expect, observed bool
		errs             []string
		skip             bool
	}
	mk := func(row, fault string, expect bool, fn func() (bool, error)) func() e12Row {
		return func() e12Row {
			observed, err := fn()
			r := e12Row{row: row, fault: fault, expect: expect, observed: observed}
			if err != nil {
				r.errs = append(r.errs, err.Error())
				r.skip = true
			}
			return r
		}
	}
	tasks := []func() e12Row{
		mk("1", "none (control)", true, func() (bool, error) {
			return build(1, nil)
		}),
		mk("2", "crash-stop of non-invoking replica at 40ms", true, func() (bool, error) {
			return build(2, crashAt(2))
		}),
		mk("3", "crash-stop of invoking node at 40ms", true, func() (bool, error) {
			return build(3, crashAt(1))
		}),
		// Row 4: lossy link 0→1 dropping every 3rd message: dropped UPDATEs
		// leave node 1 permanently divergent. A violation must be observed on
		// some seed. The seed sweep fans out fully and reduces to
		// "any violated" (the sequential version stopped at the first hit;
		// the verdict is identical).
		func() e12Row {
			r := e12Row{row: "4", fault: "lossy link n0→n1 (every 3rd message dropped)", expect: false}
			type verdict struct {
				violated bool
				err      string
			}
			verdicts := parmap(8, func(i int) verdict {
				ok, err := build(10+int64(i), func(net *core.Net) error {
					for _, e := range net.Edges {
						if e.Name() == "cedge(n0->n1)" {
							e.Drop = func(seq int, _ *rand.Rand) bool { return seq%3 == 2 }
						}
					}
					return nil
				})
				if err != nil {
					return verdict{err: err.Error()}
				}
				return verdict{violated: !ok}
			})
			violated := false
			for _, v := range verdicts {
				if v.err != "" {
					r.errs = append(r.errs, v.err)
				} else if v.violated {
					violated = true
				}
			}
			r.observed = !violated
			return r
		},
	}
	rows := parmapSlice(tasks, func(fn func() e12Row) e12Row { return fn() })

	tb := stats.NewTable("row", "fault", "expected", "observed", "ok")
	var fails []string
	for _, r := range rows {
		fails = append(fails, r.errs...)
		if r.skip {
			continue
		}
		exp, obs := "linearizable", "linearizable"
		if !r.expect {
			exp = "violated"
		}
		if !r.observed {
			obs = "violated"
		}
		ok := r.expect == r.observed
		tb.AddRow(r.row, r.fault, exp, obs, checkMark(ok))
		if !ok {
			fails = append(fails, fmt.Sprintf("row %s (%s): expected %s, observed %s", r.row, r.fault, exp, obs))
		}
	}
	return Result{ID: "E12", Title: "§7.3 failures explored: crash-stop tolerated, lossy links not", Output: tb.String(), Failures: fails}
}
