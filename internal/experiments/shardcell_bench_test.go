package experiments

import (
	"testing"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/workload"
)

// benchCell drives one closed-loop register workload for the benchmark
// duration; it is the profiling harness for the sharded executor cells.
func benchCell(b *testing.B, model string, n, shards int) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 200 * us
	p := register.Params{C: 200 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps + 24*100*us, Epsilon: eps}
	ell := simtime.Duration(0)
	if model == "mmt" {
		ell = 100 * us
	}
	cfg := core.Config{N: n, Bounds: bounds, Seed: 1100, Clocks: clock.DriftFactory(eps, 7), Ell: ell, Shards: shards}
	var net *core.Net
	switch model {
	case "timed":
		net = core.BuildTimed(cfg, register.Factory(register.NewS, p))
	case "clock":
		net = core.BuildClocked(cfg, register.Factory(register.NewS, p))
		for _, cn := range net.Clocked {
			cn.RecordStamps = false
		}
	case "mmt":
		net = core.BuildMMT(cfg, register.Factory(register.NewS, p))
		for _, mn := range net.MMT {
			mn.RecordStamps = false
		}
	}
	net.Sys.KeepTrace = false
	clients := workload.Attach(net, workload.Config{
		Ops: 1 << 30, Think: simtime.NewInterval(0, 2*ms), WriteRatio: 0.4, Seed: 12,
	})
	const slice = simtime.Duration(50 * ms)
	horizon := simtime.Time(slice)
	if err := net.Sys.Run(horizon); err != nil {
		b.Fatal(err)
	}
	if shards > 1 && !net.Sys.Sharded() {
		b.Fatalf("sharding fell back: %s", net.Sys.ShardFallbackReason())
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		horizon = horizon.Add(slice)
		if err := net.Sys.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
	wall := time.Since(start).Seconds()
	done := 0
	for _, c := range clients {
		done += c.Done
	}
	if wall > 0 {
		b.ReportMetric(float64(done)/wall, "ops/s")
	}
}

func BenchmarkCellTimedSeq(b *testing.B)    { benchCell(b, "timed", 8, -1) }
func BenchmarkCellTimedShard4(b *testing.B) { benchCell(b, "timed", 8, 4) }
func BenchmarkCellClockSeq(b *testing.B)    { benchCell(b, "clock", 8, -1) }
func BenchmarkCellClockShard4(b *testing.B) { benchCell(b, "clock", 8, 4) }
func BenchmarkCellMMTSeq(b *testing.B)      { benchCell(b, "mmt", 8, -1) }
func BenchmarkCellMMTShard4(b *testing.B)   { benchCell(b, "mmt", 8, 4) }
