package experiments

import (
	"fmt"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/spec"
	"psclock/internal/stats"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

// E16RealTimeSpecs regenerates Table 12: the paper's headline extension
// over Lamport [5] and Neiger-Toueg [13], measured. Those works preserve
// *internal* specifications (P = P_∞) across the move to inaccurate
// clocks; Theorem 4.7 additionally preserves *real-time* specifications,
// but only as P_ε. With Responsive(read ≤ 2ε+c+δ, write ≤ d'2−c) — the
// exact latency contract Lemma 6.2 proves for S in D_T:
//
//	row 1: D_T satisfies the exact bounds (and P is P_ε with ε = 0);
//	row 2: D_C violates the exact bounds (real time ≠ clock time — a
//	       plain-P real-time spec does not survive the transformation);
//	row 3: D_C satisfies their P_ε relaxation (each endpoint moved ≤ ε:
//	       durations within bound + 2ε) — exactly what the theorem grants;
//	row 4: the internal spec (linearizability) needs no relaxation at all,
//	       which is the [5]/[13] special case.
func E16RealTimeSpecs() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 800 * us
	delta := 10 * us
	c := 500 * us
	d2p := bounds.Hi + 2*eps
	p := register.Params{C: c, Delta: delta, D2: d2p, Epsilon: eps}
	responsive := spec.Responsive{ReadBound: 2*eps + c + delta, WriteBound: d2p - c}

	tb := stats.NewTable("row", "model", "specification", "expected", "observed", "ok")
	var fails []string
	addRow := func(row, model, sname string, expectHold, observedHold bool) {
		exp, obs := "holds", "holds"
		if !expectHold {
			exp = "violated"
		}
		if !observedHold {
			obs = "violated"
		}
		ok := expectHold == observedHold
		tb.AddRow(row, model, sname, exp, obs, checkMark(ok))
		if !ok {
			fails = append(fails, fmt.Sprintf("row %s (%s, %s): expected %s, observed %s", row, model, sname, exp, obs))
		}
	}

	build := func(model string) (ta.Trace, error) {
		cfg := core.Config{N: 3, Bounds: bounds, Seed: 1600, Clocks: clock.SawtoothFactory(eps, 8*ms)}
		var net *core.Net
		if model == "timed" {
			net = core.BuildTimed(cfg, register.Factory(register.NewS, p))
		} else {
			net = core.BuildClocked(cfg, register.Factory(register.NewS, p))
		}
		clients := workload.Attach(net, workload.Config{
			Ops: 30, Think: simtime.NewInterval(0, 2*ms), WriteRatio: 0.4, Seed: 1601, Stagger: 300 * us,
		})
		if _, err := net.Sys.RunQuiet(simtime.Time(30 * simtime.Second)); err != nil {
			return nil, err
		}
		for _, cl := range clients {
			if cl.Done != 30 {
				return nil, fmt.Errorf("%s finished %d/30", cl.Name(), cl.Done)
			}
		}
		return net.Sys.Trace().Visible(), nil
	}

	// The two model builds are independent seeded systems; run them side by
	// side and check the (pure) trace predicates sequentially.
	type e16Out struct {
		trace ta.Trace
		err   error
	}
	outs := parmap(2, func(i int) e16Out {
		model := []string{"timed", "clock"}[i]
		tr, err := build(model)
		return e16Out{trace: tr, err: err}
	})
	for _, o := range outs {
		if o.err != nil {
			return Result{ID: "E16", Title: "real-time specifications", Failures: []string{o.err.Error()}}
		}
	}
	timed, clocked := outs[0].trace, outs[1].trace

	ok1, _ := responsive.Holds(timed)
	addRow("1", "D_T", "Responsive (exact Lemma 6.2 bounds)", true, ok1)
	ok2, _ := responsive.Holds(clocked)
	addRow("2", "D_C", "Responsive (same exact bounds, plain P)", false, ok2)
	ok3, _ := responsive.HoldsEps(clocked, eps)
	addRow("3", "D_C", "Responsive_ε (bounds + 2ε, per Thm 4.7)", true, ok3)
	ok4, _ := spec.Linearizable{}.Holds(clocked)
	addRow("4", "D_C", "linearizability (internal spec, [5]/[13] case)", true, ok4)

	note := "Internal specs survive the clock model unchanged; real-time specs survive only as P_ε —\n" +
		"the distinction §4.3 draws against Lamport [5] and Neiger-Toueg [13], observed on traces.\n"
	return Result{
		ID:       "E16",
		Title:    "real-time vs internal specifications under simulation 1 (ε=800µs, sawtooth clocks)",
		Output:   tb.String() + note,
		Failures: fails,
	}
}
