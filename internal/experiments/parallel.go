package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"psclock/internal/stats"
)

// workers is the width of the row-level worker pool. Every experiment's
// seeded adversary ensemble (seeds × parameter rows) is embarrassingly
// parallel: each row builds its own System from its own seed, so rows
// share no state and results are collected in index order regardless of
// completion order — tables and failure lists come out deterministic.
var workers atomic.Int64

func init() { workers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetParallelism sets how many experiment rows may run concurrently.
// n < 1 restores the default (GOMAXPROCS). It returns the previous value.
func SetParallelism(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(workers.Swap(int64(n)))
}

// Parallelism reports the current row-level worker-pool width.
func Parallelism() int { return int(workers.Load()) }

// parmap evaluates fn(0..n-1) on a bounded worker pool and returns the
// results in index order. With one worker (or one row) it degenerates to a
// plain loop. fn must be safe to call concurrently; each call should
// confine itself to its own row's state.
func parmap[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	w := int(workers.Load())
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// parmapSlice is parmap over an explicit row-spec slice.
func parmapSlice[S, T any](specs []S, fn func(s S) T) []T {
	return parmap(len(specs), func(i int) T { return fn(specs[i]) })
}

// rowOut is the common shape of one parallelized experiment row: rendered
// table cells plus any assertion failures. Experiments with extra per-row
// artifacts (chart points, metrics) wrap it in their own struct.
type rowOut struct {
	cells []string
	fails []string
}

// collectRows folds parallelized rows back into the table in index order
// and returns the concatenated failures — the sequential tail of every
// fan-out, keeping rendered output independent of completion order.
func collectRows(tb *stats.Table, rows []rowOut) []string {
	var fails []string
	for _, r := range rows {
		if r.cells != nil {
			tb.AddRow(r.cells...)
		}
		fails = append(fails, r.fails...)
	}
	return fails
}
