package experiments

import (
	"fmt"
	"hash/fnv"
	"testing"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/exec"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/trace"
)

// goldenHashes pins the full recorded trace (labels, kinds, times,
// sequence numbers, and sources) of the E3 register system for three fixed
// seeds. These constants were captured from the original linear-scan
// executor; any scheduler or routing change that alters dispatch order,
// timing, or tie-breaking will change a hash. They are the regression
// guard for executor refactors: determinism here means byte-identical
// traces, not merely equivalent tables.
var goldenHashes = map[int64]uint64{
	1: 0x930d644c06903999,
	2: 0x23e39211523ae177,
	3: 0x090a64c38e889412,
}

// goldenRun executes the E3-style clock-model register system for one seed
// with tracing on and returns the FNV-1a hash of every recorded event.
func goldenRun(seed int64) (uint64, error) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 500 * us
	p := register.Params{C: 700 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
	out, err := run(runSpec{
		model:   "clock",
		factory: register.Factory(register.NewS, p),
		n:       3, bounds: bounds, seed: seed,
		clocks: clock.SpreadFactory(eps), delays: channel.UniformDelay,
		ops: 25, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.4,
	})
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	for _, e := range out.net.Sys.Trace() {
		fmt.Fprintf(h, "%s|%d|%d|%d|%s\n", e.Action.Label(), e.Action.Kind, e.At, e.Seq, e.Src)
	}
	return h.Sum64(), nil
}

// TestGoldenTracesStreaming replays the golden runs with retention off
// and a streaming hash sink attached: the event-sink pipeline must
// observe byte-for-byte the stream the retained trace would hold, so the
// sink's hash must reproduce the very same golden constants.
func TestGoldenTracesStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("full register runs; skipped with -short")
	}
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 500 * us
	p := register.Params{C: 700 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
	for seed, want := range goldenHashes {
		seed, want := seed, want
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			h := trace.NewHash()
			_, err := run(runSpec{
				model:   "clock",
				factory: register.Factory(register.NewS, p),
				n:       3, bounds: bounds, seed: seed,
				clocks: clock.SpreadFactory(eps), delays: channel.UniformDelay,
				ops: 25, think: simtime.NewInterval(0, 2*ms), writeRatio: 0.4,
				sinks: []exec.Sink{h}, noRetain: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := h.Sum64(); got != want {
				t.Errorf("streaming trace hash = %#x, want %#x (sink stream diverges from retained trace)", got, want)
			}
		})
	}
}

// TestGoldenTraces asserts that fixed-seed executions produce byte-for-byte
// the traces recorded when the constants above were captured.
func TestGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("full register runs; skipped with -short")
	}
	for seed, want := range goldenHashes {
		seed, want := seed, want
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			got, err := goldenRun(seed)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("trace hash = %#x, want %#x (scheduler determinism drift)", got, want)
			}
		})
	}
}
