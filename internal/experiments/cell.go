package experiments

import (
	"fmt"
	"runtime"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

// This file holds the time-boxed executor throughput cell shared by E10
// and the pscbench -shardsweep scaling curve: one closed-loop register
// workload on one (model, n, shards) configuration, run for a fixed wall
// budget split into trial windows over the same warm system, reporting the
// fastest window's rates.

// CellSpec describes one throughput measurement.
type CellSpec struct {
	Model  string // "timed", "clock", or "mmt"
	N      int
	Shards int // < 2 forces the sequential executor
	Budget time.Duration
	Trials int
}

// CellResult is one measured cell. Err is non-empty when the run failed,
// sharding silently fell back, or no operation completed in the budget —
// the rates are meaningless then and the caller should count a failure.
type CellResult struct {
	Ops          int
	Events       int
	WallMS       float64
	OpsPerSec    float64
	EventsPerSec float64
	ShardCount   int
	Err          string
}

// ThroughputCell runs one time-boxed throughput measurement: the S
// register algorithm under a closed-loop mixed read/write workload, the
// executor advancing simulated time in slices until the wall budget is
// spent. The budget splits into Trials back-to-back windows over the same
// warm system and the fastest window is reported: interference only ever
// subtracts throughput, so max-of-N is the low-noise estimator of what the
// executor sustains.
func ThroughputCell(spec CellSpec) CellResult {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 200 * us
	p := register.Params{C: 200 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps + 24*100*us, Epsilon: eps}
	ell := simtime.Duration(0)
	if spec.Model == "mmt" {
		ell = 100 * us
	}
	cfg := core.Config{
		N: spec.N, Bounds: bounds, Seed: 1100, Clocks: clock.DriftFactory(eps, 7), Ell: ell,
		Shards: spec.Shards,
	}
	if cfg.Shards == 0 {
		cfg.Shards = -1
	}
	var net *core.Net
	switch spec.Model {
	case "timed":
		net = core.BuildTimed(cfg, register.Factory(register.NewS, p))
	case "clock":
		net = core.BuildClocked(cfg, register.Factory(register.NewS, p))
		for _, cn := range net.Clocked {
			cn.RecordStamps = false
		}
	case "mmt":
		net = core.BuildMMT(cfg, register.Factory(register.NewS, p))
		for _, mn := range net.MMT {
			mn.RecordStamps = false
		}
	default:
		return CellResult{Err: fmt.Sprintf("unknown model %q", spec.Model)}
	}
	net.Sys.KeepTrace = false
	events := 0
	net.Sys.Watch(func(ta.Event) { events++ })
	clients := workload.Attach(net, workload.Config{
		Ops:        1 << 30, // effectively unbounded; the wall budget stops the cell
		Think:      simtime.NewInterval(0, 2*ms),
		WriteRatio: 0.4,
		Seed:       12,
	})
	countDone := func() int {
		done := 0
		for _, c := range clients {
			done += c.Done
		}
		return done
	}
	trials := spec.Trials
	if trials < 1 {
		trials = 1
	}
	// Advance simulated time in slices until the budget is spent: the wall
	// clock is only consulted between slices, so the slice width bounds how
	// far a cell can overshoot.
	const slice = simtime.Duration(50 * ms)
	horizon := simtime.Time(0)
	var res CellResult
	var totalWall time.Duration
	for trial := 0; trial < trials; trial++ {
		done0, events0 := countDone(), events
		start := time.Now()
		for time.Since(start) < spec.Budget/time.Duration(trials) {
			horizon = horizon.Add(slice)
			if err := net.Sys.Run(horizon); err != nil {
				res.Err = err.Error()
				return res
			}
		}
		wall := time.Since(start)
		totalWall += wall
		secs := wall.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		res.Ops = countDone()
		res.Events = events
		if ops := float64(res.Ops-done0) / secs; ops > res.OpsPerSec {
			res.OpsPerSec = ops
			res.EventsPerSec = float64(events-events0) / secs
		}
	}
	res.WallMS = float64(totalWall.Microseconds()) / 1000
	res.ShardCount = net.Sys.ShardCount()
	if spec.Shards > 1 && !net.Sys.Sharded() {
		res.Err = fmt.Sprintf("sharded execution did not engage (%s)", net.Sys.ShardFallbackReason())
	} else if res.Ops == 0 {
		res.Err = fmt.Sprintf("no operation completed within the %v budget", spec.Budget)
	}
	return res
}

// ScalingCell is one point of the GOMAXPROCS × shards scaling curve, as
// recorded in the shard_scaling section of BENCH_results.json.
type ScalingCell struct {
	Model        string  `json:"model"`
	N            int     `json:"n"`
	Shards       int     `json:"shards"`
	Procs        int     `json:"gomaxprocs"`
	Ops          int     `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	SeqOpsPerSec float64 `json:"seq_ops_per_sec"`
	// SpeedupVsSeq is OpsPerSec over the same model's sequential baseline
	// (measured in the same sweep, on the same box, at GOMAXPROCS = 1).
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
	Win          bool    `json:"win"`
}

// ShardScaling measures the sharded executor's scaling curve: for each
// model, a sequential baseline at GOMAXPROCS = 1, then one cell per
// (shards, procs) combination, with speedups relative to the baseline.
// GOMAXPROCS is restored on return. Cells run strictly one after another —
// each times its own wall clock. Cell errors are returned as failure
// strings; their cells are omitted from the curve.
func ShardScaling(n int, shardCounts, procs []int, budget time.Duration, trials int) ([]ScalingCell, []string) {
	var cells []ScalingCell
	var fails []string
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)
	for _, model := range []string{"timed", "clock", "mmt"} {
		runtime.GOMAXPROCS(1)
		seq := ThroughputCell(CellSpec{Model: model, N: n, Shards: -1, Budget: budget, Trials: trials})
		if seq.Err != "" {
			fails = append(fails, fmt.Sprintf("%s n=%d sequential baseline: %s", model, n, seq.Err))
			continue
		}
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			for _, sh := range shardCounts {
				if sh > n {
					continue
				}
				c := ThroughputCell(CellSpec{Model: model, N: n, Shards: sh, Budget: budget, Trials: trials})
				if c.Err != "" {
					fails = append(fails, fmt.Sprintf("%s n=%d shards=%d procs=%d: %s", model, n, sh, p, c.Err))
					continue
				}
				cells = append(cells, ScalingCell{
					Model: model, N: n, Shards: sh, Procs: p,
					Ops: c.Ops, OpsPerSec: c.OpsPerSec, EventsPerSec: c.EventsPerSec,
					SeqOpsPerSec: seq.OpsPerSec,
					SpeedupVsSeq: c.OpsPerSec / seq.OpsPerSec,
					Win:          c.OpsPerSec >= seq.OpsPerSec,
				})
			}
		}
	}
	return cells, fails
}
