package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/live"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

// E17 runs the tiered keyed store live: one set of nodes hosting a lin
// register (algorithm S) and a seq register (algorithm L) side by side,
// sharing clocks and transport, driven by mixed-tier clients over the
// wire protocol. It measures the L tier's read discount against the S
// tier on the same run — the 2ε of Lemmas 6.1/6.2, here as wall-clock
// milliseconds — while each tier is verified online against its own
// specification: exact linearizability for lin, Θ-bounded sequential
// consistency for seq. The discount must clear ε at zero violations on
// both tiers, the live counterpart of E14's simulated boundary.
//
// Unlike E1–E16 this experiment runs on real time (the in-process chan
// transport, perfect clocks, a deliberately generous configured ε), so
// its latencies are measurements, not derivations: ε is chosen large
// enough that the 2ε structure dwarfs scheduling noise, and the
// assertion is the conservative "discount ≥ ε", not the sharp 2ε.
func E17TieredLive() Result {
	const (
		eps   = 10 * ms // configured ε: the S tier's read wait is 2ε = 20ms
		slack = 20 * ms // widening for scheduling noise in the lin gate
		d2    = 10 * ms // designed max delay; loopback stays far under it
	)
	fail := func(f string, a ...any) Result {
		return Result{ID: "E17", Title: e17Title, Failures: []string{fmt.Sprintf(f, a...)}}
	}
	p := register.Params{C: 0, Delta: 100 * us, D2: d2 + 2*eps, Epsilon: eps}
	if err := p.Validate(); err != nil {
		return fail("params: %v", err)
	}
	tiers := []register.Tier{register.TierLin, register.TierSeq}

	mon := register.NewMonitor()
	// Per-key fan-out: register r0 (lin) gets the exact online
	// linearizability engine widened by ε+slack, r1 (seq) the Θ-bounded
	// online sequential-consistency engine — the same wiring pscserve's
	// -tiers mode installs.
	theta := p.C + p.Delta + 2*eps + 3*slack
	check := linearize.NewSharded(linearize.ShardedOptions{
		New: func(key string) linearize.Automaton {
			if key == "r1" {
				return linearize.NewSeqOnline(linearize.SeqOptions{
					Initial: register.Initial.String(), MaxStale: theta, Yield: runtime.Gosched,
				})
			}
			return linearize.NewOnline(linearize.Options{
				Initial: register.Initial.String(), Widen: eps + slack,
				AssumeUnique: true, MaxStates: 1 << 18, Yield: runtime.Gosched,
			})
		},
	})
	mon.AddChecker("tiered", check)
	const nNodes = 2
	mon.SetKeyFunc(func(port ta.NodeID) string { return "r" + strconv.Itoa(int(port)/nNodes) })

	rt, err := live.New(live.Options{
		N:         nNodes,
		Registers: len(tiers),
		Bounds:    simtime.NewInterval(0, d2),
		Ell:       slack,
		Clocks:    clock.PerfectFactory(),
	}, register.Factory(register.NewS, p))
	if err != nil {
		return fail("runtime: %v", err)
	}
	rt.SetRegisterFactory(func(reg int) core.AlgorithmFactory { return tiers[reg].Factory(p) })
	rt.AddSink(mon)
	srv, err := live.NewServer(rt)
	if err != nil {
		return fail("server: %v", err)
	}
	srv.SetTiers(tiers)
	if err := rt.Start(); err != nil {
		return fail("start: %v", err)
	}
	srv.Start()
	res := live.RunLoad(srv.Addrs(), live.LoadConfig{
		Clients:    4,
		Duration:   700 * time.Millisecond,
		Rate:       0, // unpaced closed loop: throughput = 1/latency per client
		WriteRatio: 0.1,
		Registers:  len(tiers),
		Seed:       17,
		Tiers:      tiers,
	})
	srv.Close()
	m := rt.Stop()

	var fails []string
	if err := mon.Err(); err != nil {
		fails = append(fails, fmt.Sprintf("stream contract: %v", err))
	}
	mon.Finish()
	if res.Errors > 0 {
		fails = append(fails, fmt.Sprintf("%d client errors", res.Errors))
	}
	if m.RecorderDrops > 0 {
		fails = append(fails, fmt.Sprintf("%d recorder drops", m.RecorderDrops))
	}

	tb := stats.NewTable("tier", "algorithm", "ops", "reads", "read p50", "write p50", "verified")
	verdicts := make([]linearize.Result, len(tiers))
	for i, tier := range tiers {
		kr, ok := check.KeyResult("r" + strconv.Itoa(i))
		if !ok {
			fails = append(fails, fmt.Sprintf("tier %s: no operations reached its checker", tier))
			continue
		}
		verdicts[i] = kr
		if !kr.OK {
			fails = append(fails, fmt.Sprintf("tier %s online check violated: %s", tier, kr.Reason))
		}
		tl := res.Tier[tier]
		if tl.Reads == 0 {
			fails = append(fails, fmt.Sprintf("tier %s completed no reads: discount unmeasurable", tier))
		}
		alg := "S (lin, Thm 6.5)"
		if tier == register.TierSeq {
			alg = "L (seq, Lemma 6.1)"
		}
		tb.AddRow(tier.String(), alg, fmt.Sprint(tl.Ops), fmt.Sprint(tl.Reads),
			fmtD(tl.ReadLat.P50), fmtD(tl.WriteLat.P50), checkMark(kr.OK))
	}

	lin, seq := res.Tier[register.TierLin], res.Tier[register.TierSeq]
	discount := lin.ReadLat.P50 - seq.ReadLat.P50
	if lin.Reads > 0 && seq.Reads > 0 && discount < eps {
		fails = append(fails, fmt.Sprintf(
			"seq-tier read discount %v below ε=%v (theoretical gap 2ε=%v): the weaker tier is not paying for itself",
			discount, simtime.Duration(eps), simtime.Duration(2*eps)))
	}
	note := fmt.Sprintf("%d live ops over %d nodes (chan transport): seq reads %v cheaper at p50 (2ε=%v, asserted ≥ ε=%v);\n"+
		"write p50 lin %v vs seq %v (both pay d'2−c); tiers verified online with %d/%d violations.\n",
		res.Ops, nNodes, discount, simtime.Duration(2*eps), simtime.Duration(eps),
		lin.WriteLat.P50, seq.WriteLat.P50, boolToInt(!verdicts[0].OK), boolToInt(!verdicts[1].OK))
	return Result{
		ID:       "E17",
		Title:    e17Title,
		Output:   tb.String() + note,
		Failures: fails,
		Metrics: map[string]float64{
			"lin_read_p50_us":  float64(lin.ReadLat.P50) / float64(us),
			"seq_read_p50_us":  float64(seq.ReadLat.P50) / float64(us),
			"read_discount_us": float64(discount) / float64(us),
		},
	}
}

const e17Title = "tiered keyed store live: the L-tier read discount vs S on shared nodes"

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
