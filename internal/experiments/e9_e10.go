package experiments

import (
	"fmt"
	"runtime"
	"time"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

// causalProbe is a minimal algorithm that checks Lamport's condition — a
// message must never arrive at a (clock) time earlier than the (clock)
// time at which it was sent [5] — which is exactly the property the
// receive buffer R_ji,ε exists to restore (§4). Each node periodically
// broadcasts its current time; receivers count violations.
type causalProbe struct {
	interval   simtime.Duration
	rounds     int
	violations *int
}

var _ core.Algorithm = (*causalProbe)(nil)

func (c *causalProbe) Start(ctx core.Context) {
	ctx.SetTimer(ctx.Time().Add(c.interval), 0)
}

func (c *causalProbe) OnInput(core.Context, string, any) {}

func (c *causalProbe) OnMessage(ctx core.Context, from ta.NodeID, body any) {
	sent, ok := body.(simtime.Time)
	if !ok {
		panic(fmt.Sprintf("experiments: causal probe got %T", body))
	}
	if ctx.Time().Before(sent) {
		*c.violations++
	}
}

func (c *causalProbe) OnTimer(ctx core.Context, round any) {
	r := round.(int)
	for j := 0; j < ctx.N(); j++ {
		if ta.NodeID(j) != ctx.ID() {
			ctx.Send(ta.NodeID(j), ctx.Time())
		}
	}
	if r+1 < c.rounds {
		ctx.SetTimer(ctx.Time().Add(c.interval), r+1)
	}
}

// runCausal runs the probe in the clock model and returns the violation
// count.
func runCausal(d1 simtime.Duration, eps simtime.Duration, noBuffer bool) (int, error) {
	violations := 0
	cfg := core.Config{
		N:                 3,
		Bounds:            simtime.NewInterval(d1, d1+2*ms),
		Seed:              33,
		Clocks:            clock.SpreadFactory(eps),
		NewDelay:          channel.MinDelay,
		DisableRecvBuffer: noBuffer,
	}
	net := core.BuildClocked(cfg, func(ta.NodeID, int) core.Algorithm {
		return &causalProbe{interval: 2 * ms, rounds: 25, violations: &violations}
	})
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		return 0, err
	}
	return violations, nil
}

// E9Matrix regenerates Table 7: the verification matrix, including
// mutation rows that must fail — showing both that the system-under-test
// satisfies the paper's claims and that the checkers would catch
// violations.
func E9Matrix() Result {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	eps := 800 * us
	delta := 10 * us
	regRun := func(model string, factory core.AlgorithmFactory, cf clock.Factory, noBuffer bool, ell simtime.Duration) (runOut, error) {
		return run(runSpec{
			model: model, factory: factory,
			n: 3, bounds: bounds, seed: 1001,
			clocks: cf, delays: channel.UniformDelay,
			ell: ell, noBuffer: noBuffer,
			ops: 25, think: simtime.NewInterval(0, 1500*us), writeRatio: 0.4,
		})
	}

	pL := register.Params{C: 200 * us, Delta: delta, D2: bounds.Hi, Epsilon: 0}
	pS := register.Params{C: 200 * us, Delta: delta, D2: bounds.Hi + 2*eps, Epsilon: eps}

	// Each matrix row is an independent seeded system; verdicts fan out
	// over the worker pool and the table is assembled in row order.
	type e9Row struct {
		row, system, property string
		expect, observed      bool
		errs                  []string
		skip                  bool // run failed before a verdict was reached
	}
	mk := func(row, system, property string, expect bool, fn func() (bool, error)) func() e9Row {
		return func() e9Row {
			observed, err := fn()
			r := e9Row{row: row, system: system, property: property, expect: expect, observed: observed}
			if err != nil {
				r.errs = append(r.errs, err.Error())
				r.skip = true
			}
			return r
		}
	}
	tasks := []func() e9Row{
		mk("1", "L in D_T", "linearizable", true, func() (bool, error) {
			out, err := regRun("timed", register.Factory(register.NewL, pL), nil, false, 0)
			if err != nil {
				return false, err
			}
			return linCheck(out, 0), nil
		}),
		mk("2", "S in D_T", "ε-superlinearizable", true, func() (bool, error) {
			out, err := regRun("timed", register.Factory(register.NewS, pS), nil, false, 0)
			if err != nil {
				return false, err
			}
			return superCheck(out, eps), nil
		}),
		mk("3", "S^c in D_C (max-skew clocks)", "linearizable", true, func() (bool, error) {
			out, err := regRun("clock", register.Factory(register.NewS, pS), clock.SpreadFactory(eps), false, 0)
			if err != nil {
				return false, err
			}
			return linCheck(out, 0), nil
		}),
		mk("4", "baseline [10] in D_C", "linearizable", true, func() (bool, error) {
			out, err := regRun("clock", register.BaselineFactory(2*eps, bounds.Hi), clock.SpreadFactory(eps), false, 0)
			if err != nil {
				return false, err
			}
			return linCheck(out, 0), nil
		}),
		mk("5", "S through both simulations in D_M", "linearizable", true, func() (bool, error) {
			out, err := regRun("mmt", register.Factory(register.NewS, register.Params{
				C: 200 * us, Delta: delta, D2: bounds.Hi + 2*eps + 24*50*us, Epsilon: eps,
			}), clock.DriftFactory(eps, 3), false, 50*us)
			if err != nil {
				return false, err
			}
			return linCheck(out, 0), nil
		}),
		// Mutation: L (no 2ε wait) in the clock model must violate
		// linearizability under adversarial clocks for some seed. The seed
		// sweep fans out fully and the verdicts reduce to "any violated".
		func() e9Row {
			r := e9Row{row: "6", system: "mutation: L (no 2ε wait) in D_C", property: "linearizable", expect: false}
			type verdict struct {
				violated bool
				err      string
			}
			verdicts := parmap(8, func(i int) verdict {
				out, err := run(runSpec{
					model:   "clock",
					factory: register.Factory(register.NewL, register.Params{C: 0, Delta: 5 * us, D2: 400*us + 2*ms, Epsilon: 0}),
					n:       3, bounds: simtime.NewInterval(200*us, 400*us), seed: int64(i),
					clocks: clock.SpreadFactory(1 * ms), delays: channel.UniformDelay,
					ops: 60, think: simtime.NewInterval(0, 700*us), writeRatio: 0.3,
				})
				if err != nil {
					return verdict{err: err.Error()}
				}
				return verdict{violated: !linCheck(out, 0)}
			})
			violated := false
			for _, v := range verdicts {
				if v.err != "" {
					r.errs = append(r.errs, v.err)
				} else if v.violated {
					violated = true
				}
			}
			r.observed = !violated
			return r
		},
		// S without the receive buffer stays linearizable: its updates fire
		// at absolute clock times, so early delivery is harmless — the
		// buffer matters for algorithms sensitive to receive-time order.
		mk("7", "S^c in D_C without R buffer", "linearizable", true, func() (bool, error) {
			out, err := regRun("clock", register.Factory(register.NewS, pS), clock.SpreadFactory(eps), true, 0)
			if err != nil {
				return false, err
			}
			return linCheck(out, 0), nil
		}),
		// Lamport's condition probe: buffering restores it when d1 < 2ε.
		mk("8", "probe in D_C, d1<2ε, buffered", "recv clock ≥ send clock", true, func() (bool, error) {
			v, err := runCausal(100*us, eps, false)
			return v == 0, err
		}),
		mk("9", "mutation: probe, d1<2ε, no buffer", "recv clock ≥ send clock", false, func() (bool, error) {
			v, err := runCausal(100*us, eps, true)
			return v == 0, err
		}),
		mk("10", "probe, d1 = 2ε, no buffer (§7.2)", "recv clock ≥ send clock", true, func() (bool, error) {
			v, err := runCausal(2*eps, eps, true)
			return v == 0, err
		}),
	}
	rows := parmapSlice(tasks, func(fn func() e9Row) e9Row { return fn() })

	tb := stats.NewTable("row", "system", "property", "expected", "observed", "ok")
	var fails []string
	for _, r := range rows {
		fails = append(fails, r.errs...)
		if r.skip {
			continue
		}
		exp, obs := "holds", "holds"
		if !r.expect {
			exp = "violated"
		}
		if !r.observed {
			obs = "violated"
		}
		ok := r.expect == r.observed
		tb.AddRow(r.row, r.system, r.property, exp, obs, checkMark(ok))
		if !ok {
			fails = append(fails, fmt.Sprintf("%s (%s): expected %s, observed %s", r.row, r.system, exp, obs))
		}
	}
	return Result{ID: "E9", Title: "verification matrix with mutations", Output: tb.String(), Failures: fails}
}

// e10CellBudget is the wall-clock time box of one (model, n) throughput
// cell. Cells used to run a fixed operation count, which let the slowest
// model dominate the whole suite's runtime; now each cell runs the
// closed-loop workload for this long and reports measured-ops-per-budget.
// The reported metrics (ops/s, events/s) are rates either way, so they
// stay comparable across the change and across budget adjustments.
//
// The budget is split into e10Trials back-to-back windows over the same
// warm system and the fastest window is reported: a single short window
// is at the mercy of GC pauses and scheduler interference, and
// interference only ever subtracts throughput, so max-of-N is the
// low-noise estimator of what the executor sustains.
const e10CellBudget = 30 * time.Millisecond

const e10Trials = 3

// E10Throughput regenerates Figure 5: executor throughput (simulated
// operations and dispatched events per wall-clock second) for each model
// as the system grows. Each cell is time-boxed: clients run open-ended and
// the cell stops after e10CellBudget of wall time, reporting whatever
// operation and event counts the executor sustained in the box.
func E10Throughput() Result {
	tb := stats.NewTable("model", "n", "shards", "ops", "events", "wall ms", "ops/s", "events/s")
	var fails []string
	metrics := make(map[string]float64)
	// cell runs one time-boxed (model, n) measurement. shards < 2 forces
	// the sequential executor — the baseline cells pass -1 so they stay a
	// true sequential baseline even under `pscbench -shards N` — while
	// shards ≥ 2 requires the sharded conservative-parallel path to engage
	// (a silent fallback would quietly report sequential numbers under a
	// sharded label, so it is a cell failure instead). suffix distinguishes
	// the metric keys of sharded cells.
	cell := func(model string, n, shards int, suffix string) {
		r := ThroughputCell(CellSpec{Model: model, N: n, Shards: shards, Budget: e10CellBudget, Trials: e10Trials})
		if r.Err != "" {
			fails = append(fails, fmt.Sprintf("%s n=%d%s: %s", model, n, suffix, r.Err))
			return
		}
		tb.AddRow(model, fmt.Sprint(n), fmt.Sprint(r.ShardCount), fmt.Sprint(r.Ops), fmt.Sprint(r.Events),
			fmt.Sprintf("%.1f", r.WallMS),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.0f", r.EventsPerSec))
		metrics[fmt.Sprintf("ops_per_sec_%s_n%d%s", model, n, suffix)] = r.OpsPerSec
		metrics[fmt.Sprintf("events_per_sec_%s_n%d%s", model, n, suffix)] = r.EventsPerSec
	}
	// Rows stay sequential on purpose: each times its own wall clock, and
	// concurrent rows would steal cycles from each other's measurement.
	for _, n := range []int{2, 4, 8} {
		for _, model := range []string{"timed", "clock", "mmt"} {
			cell(model, n, -1, "")
		}
	}
	// Sharded cells at the largest size: `pscbench -shards N` sets the
	// count; without it the cells still measure the sharded path at its
	// default width so the comparison is always present in the report.
	shards := core.DefaultShards()
	if shards < 2 {
		shards = 4
	}
	for _, model := range []string{"timed", "clock", "mmt"} {
		cell(model, 8, shards, "_sharded")
	}
	// Scaling curve: the adaptive-horizon sharded executor across
	// GOMAXPROCS × shard counts at the largest size, each cell's speedup
	// relative to a sequential baseline measured in the same sweep. Only
	// procs values the machine can actually host run — oversubscribed
	// cells would mislabel timeslicing as scaling.
	var procs []int
	for _, p := range []int{1, 2, 4} {
		if p <= runtime.NumCPU() || p == 1 {
			procs = append(procs, p)
		}
	}
	curve, curveFails := ShardScaling(8, []int{2, 4, 8}, procs, e10CellBudget, e10Trials)
	fails = append(fails, curveFails...)
	ct := stats.NewTable("model", "n", "shards", "procs", "ops/s", "seq ops/s", "speedup", "win")
	for _, c := range curve {
		ct.AddRow(c.Model, fmt.Sprint(c.N), fmt.Sprint(c.Shards), fmt.Sprint(c.Procs),
			fmt.Sprintf("%.0f", c.OpsPerSec), fmt.Sprintf("%.0f", c.SeqOpsPerSec),
			fmt.Sprintf("%.2fx", c.SpeedupVsSeq), checkMark(c.Win))
		metrics[fmt.Sprintf("speedup_%s_n%d_s%d_p%d", c.Model, c.N, c.Shards, c.Procs)] = c.SpeedupVsSeq
	}
	// Pipeline comparison: the same workload checked streaming (online
	// checker over the event-sink pipeline, no retention) and retained
	// (trace + batch check), with memory columns.
	pipeOut, pipeFails := e10Pipelines(metrics)
	fails = append(fails, pipeFails...)
	return Result{ID: "E10", Title: "executor throughput by model and size (time-boxed cells)",
		Output: tb.String() + "\n" + ct.String() + "\n" + pipeOut, Failures: fails, Metrics: metrics}
}
