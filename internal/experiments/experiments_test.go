package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass regenerates every table/figure and asserts the
// paper's claims hold — the same assertions the bench harness makes, kept
// in the unit suite so a plain `go test ./...` exercises the full
// reproduction.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take several seconds; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			r := e.Run()
			if r.ID != e.ID {
				t.Errorf("result ID %q != %q", r.ID, e.ID)
			}
			if !r.Pass() {
				t.Fatalf("%s failed:\n%s", e.ID, r)
			}
			if r.Output == "" {
				t.Error("empty output")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Error("E3 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 found")
	}
}

func TestAllHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if len(seen) != 17 {
		t.Errorf("expected 17 experiments, got %d", len(seen))
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "EX", Title: "t", Output: "body\n"}
	s := r.String()
	if !strings.Contains(s, "EX") || !strings.Contains(s, "PASS") {
		t.Errorf("String = %q", s)
	}
	r.Failures = []string{"boom"}
	s = r.String()
	if !strings.Contains(s, "FAIL") || !strings.Contains(s, "boom") {
		t.Errorf("String = %q", s)
	}
}

func TestMeasuredKWindows(t *testing.T) {
	// measuredK is exercised end-to-end by E8; sanity-check helpers here.
	if got := checkMark(true); got != "yes" {
		t.Errorf("checkMark(true) = %q", got)
	}
	if got := checkMark(false); got != "NO" {
		t.Errorf("checkMark(false) = %q", got)
	}
}

func TestRunRejectsUnknownModel(t *testing.T) {
	_, err := run(runSpec{model: "bogus"})
	if err == nil {
		t.Error("bogus model accepted")
	}
}
