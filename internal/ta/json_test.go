package ta

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	orig := mkTrace()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("len %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		// Labels and times survive the round trip (payloads become their
		// display strings, which label comparison is defined over).
		if got[i].Action.Label() != orig[i].Action.Label() {
			t.Errorf("event %d label %q vs %q", i, got[i].Action.Label(), orig[i].Action.Label())
		}
		if got[i].At != orig[i].At || got[i].Action.Kind != orig[i].Action.Kind {
			t.Errorf("event %d metadata mismatch", i)
		}
	}
}

func TestTraceJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (Trace{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestReadTraceJSONBadInput(t *testing.T) {
	if _, err := ReadTraceJSON(strings.NewReader("not json")); err == nil {
		t.Error("bad input accepted")
	}
}
