package ta

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace serialization: a line-oriented JSON form for dumping recorded
// executions to disk and inspecting them with cmd/psctrace. Payloads are
// serialized as their display strings (labels are what the trace relations
// compare), so a round trip preserves labels and times but not payload
// types — inspection-grade, not resume-grade.

type jsonEvent struct {
	Name    string `json:"name"`
	Node    int    `json:"node"`
	Peer    int    `json:"peer"`
	Kind    int    `json:"kind"`
	Payload string `json:"payload,omitempty"`
	At      int64  `json:"at"`
	Src     string `json:"src,omitempty"`
	Seq     int    `json:"seq"`
}

// WriteJSON writes the trace as one JSON object per line.
func (tr Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range tr {
		je := jsonEvent{
			Name: e.Action.Name,
			Node: int(e.Action.Node),
			Peer: int(e.Action.Peer),
			Kind: int(e.Action.Kind),
			At:   int64(e.At),
			Src:  e.Src,
			Seq:  e.Seq,
		}
		if e.Action.Payload != nil {
			je.Payload = fmt.Sprintf("%v", e.Action.Payload)
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("ta: encoding event %d: %w", e.Seq, err)
		}
	}
	return nil
}

// ReadTraceJSON reads a trace written by WriteJSON. Payloads come back as
// strings.
func ReadTraceJSON(r io.Reader) (Trace, error) {
	dec := json.NewDecoder(r)
	var tr Trace
	for i := 0; ; i++ {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("ta: decoding event %d: %w", i, err)
		}
		a := Action{
			Name: je.Name,
			Node: NodeID(je.Node),
			Peer: NodeID(je.Peer),
			Kind: Kind(je.Kind),
		}
		if je.Payload != "" {
			a.Payload = je.Payload
		}
		tr = append(tr, Event{Action: a, At: Time(je.At), Src: je.Src, Seq: je.Seq})
	}
	return tr, nil
}
