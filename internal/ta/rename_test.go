package ta

import (
	"testing"
)

func TestRenameTranslatesBothWays(t *testing.T) {
	inner := &wellBehaved{due: 10}
	r := Rename(inner, "renamed",
		func(a Action) (Action, bool) {
			if a.Name != "PING2" {
				return a, false
			}
			a.Name = "PING"
			return a, true
		},
		func(a Action) Action {
			a.Name = "E" + a.Name
			return a
		})
	if r.Name() != "renamed" {
		t.Errorf("Name = %q", r.Name())
	}
	// Inbound translation: PING2 reaches the inner as PING; others drop.
	if out := r.Deliver(1, Action{Name: "OTHER", Kind: KindInput}); out != nil {
		t.Error("unrenamed input delivered")
	}
	r.Deliver(1, Action{Name: "PING2", Kind: KindInput})
	// Outbound translation: OUT becomes EOUT.
	if due, ok := r.Due(5); !ok || due != 10 {
		t.Fatalf("due = %v %v", due, ok)
	}
	acts := r.Fire(10)
	if len(acts) != 1 || acts[0].Name != "EOUT" {
		t.Fatalf("acts = %v", acts)
	}
}

func TestRenameIdentityDefaults(t *testing.T) {
	inner := &wellBehaved{due: 3}
	r := Rename(inner, "id", nil, nil)
	r.Deliver(0, Action{Name: "X", Kind: KindInput})
	acts := r.Fire(3)
	if len(acts) != 1 || acts[0].Name != "OUT" {
		t.Fatalf("acts = %v", acts)
	}
	if len(r.Init()) != 0 {
		t.Error("Init not forwarded")
	}
}
