// Package ta defines the executable timed-automaton vocabulary shared by
// every model in the library: actions, node identities, timed traces and
// schedules, the component interface driven by the executor, and checkers
// for the paper's trajectory axioms (S1–S5 of §2.1).
//
// The paper's timed automata are mathematical transition relations; this
// package fixes an operational sub-case sufficient to express every
// automaton the paper writes down (the edge automaton of Figure 1, the
// buffers of Figure 2, the register automaton of Figure 3, and the MMT
// wrapper of Definition 5.1): components react to delivered input actions
// and fire locally controlled actions at self-chosen deadlines, which is
// exactly the precondition/effect + bounded-time-passage (ν/mintime) idiom
// the paper uses.
package ta

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeID identifies a node v_i of the distributed system's graph (V, E).
type NodeID int

// NoNode marks actions with no peer endpoint (non-message actions).
const NoNode NodeID = -1

// String renders the node as "n<i>".
func (id NodeID) String() string {
	if id == NoNode {
		return "n-"
	}
	return "n" + strconv.Itoa(int(id))
}

// Kind classifies an action within the composed system's signature.
// Following the Uber style guide, the enum starts at 1 so the zero value is
// detectably invalid.
type Kind int

// Action kinds.
const (
	// KindInput is an action controlled by the environment (e.g. READ).
	KindInput Kind = iota + 1
	// KindOutput is an action controlled by a component and visible to the
	// environment (e.g. RETURN), unless hidden by the system composition.
	KindOutput
	// KindInternal is controlled by a component and never visible.
	KindInternal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	case KindInternal:
		return "internal"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Standard action names used across the library. The names mirror the
// paper's: SENDMSG/RECVMSG form the node↔network interface of §3.1, the
// E-prefixed forms are the clock-model edge interface of §4.1, TICK is the
// clock report of §5.2.
const (
	NameSendMsg  = "SENDMSG"
	NameRecvMsg  = "RECVMSG"
	NameESendMsg = "ESENDMSG"
	NameERecvMsg = "ERECVMSG"
	NameTick     = "TICK"
)

// Action is a single labeled transition of the composed system. Two actions
// are "the same action" for the purposes of the trace relations of §2.3 iff
// their Labels are equal.
type Action struct {
	// Name is the action's family, e.g. "READ" or SENDMSG.
	Name string
	// Node is the node whose partition class the action belongs to
	// (Definition 2.10 associates actions with nodes). For message actions
	// this is the node performing the send or receive.
	Node NodeID
	// Peer is the other endpoint for message actions, NoNode otherwise.
	Peer NodeID
	// Kind classifies the action in the composed system.
	Kind Kind
	// Payload carries values: the message, the operation value, the clock
	// reading, etc. It must have a stable fmt representation, since labels
	// are compared textually.
	Payload any
}

// Label returns the canonical identity of the action, used for equality in
// the trace relations of §2.3.
func (a Action) Label() string {
	var b strings.Builder
	b.Grow(32)
	b.WriteString(a.Name)
	b.WriteByte('@')
	b.WriteString(a.Node.String())
	if a.Peer != NoNode {
		b.WriteString("->")
		b.WriteString(a.Peer.String())
	}
	if a.Payload != nil {
		fmt.Fprintf(&b, "(%v)", a.Payload)
	}
	return b.String()
}

// String implements fmt.Stringer.
func (a Action) String() string { return a.Label() }

// IsMessage reports whether the action belongs to the node↔network or
// network↔node interface.
func (a Action) IsMessage() bool {
	switch a.Name {
	case NameSendMsg, NameRecvMsg, NameESendMsg, NameERecvMsg:
		return true
	}
	return false
}

// Msg is the payload of SENDMSG/RECVMSG actions: an opaque message body.
// The paper assumes each message sent is unique within an execution (§3);
// workloads guarantee this by construction.
type Msg struct {
	// Body is the algorithm-level message.
	Body any
}

// String implements fmt.Stringer.
func (m Msg) String() string { return fmt.Sprintf("%v", m.Body) }

// TaggedMsg is the payload of ESENDMSG/ERECVMSG actions in the clock model:
// the message together with the sender's clock reading c, as produced by
// the send buffer S_ij,ε (§4.2.1).
type TaggedMsg struct {
	// Body is the algorithm-level message.
	Body any
	// SentClock is the sender's clock value at the SENDMSG action.
	SentClock Time
}

// String implements fmt.Stringer.
func (m TaggedMsg) String() string {
	return fmt.Sprintf("%v#c=%v", m.Body, m.SentClock)
}
