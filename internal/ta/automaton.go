package ta

import (
	"psclock/internal/simtime"
)

// Time and Duration alias the simulation time types so that automaton
// signatures stay compact. They are type aliases, not new types: values
// flow freely between packages.
type (
	Time     = simtime.Time
	Duration = simtime.Duration
)

// Automaton is an executable timed (I/O) automaton, the unit the executor
// composes. The executor drives a component as follows:
//
//   - Init is called once at time zero; returned actions are performed at 0.
//   - Deliver presents an input action at the current time; any returned
//     actions are locally controlled actions performed at the same instant
//     (the zero-delay chains of Figure 2, e.g. the send buffer's ESENDMSG
//     whose precondition "c = clock" forbids time passing first).
//   - Due reports the next instant at which the automaton has a locally
//     controlled action that time may not pass over: the ν precondition.
//     The composed system's time-passage steps advance now to the minimum
//     Due over all components (axioms S3–S5 hold by construction: time
//     advances by positive, arbitrarily divisible amounts).
//   - Fire performs every locally controlled action enabled at now. The
//     executor calls it whenever now reaches the component's Due time and
//     also repolls after same-time deliveries.
//
// Implementations must be deterministic given their construction-time seed;
// all nondeterminism of the paper's models (message delays, clock behavior,
// step times) is resolved by injected, seeded policies.
//
// Slice ownership: the executor copies the slice returned by Init, Deliver,
// or Fire into its own scratch buffer before dispatching any action from
// it, so a component may keep one action buffer and return it (truncated
// and refilled) from every call. Callers other than the executor that
// retain returned actions past the next call into the same component must
// copy them.
type Automaton interface {
	// Name identifies the component, e.g. "edge(n0->n1)".
	Name() string
	// Init performs the component's time-zero activity.
	Init() []Action
	// Deliver handles an input action at time now, returning any locally
	// controlled actions performed at the same instant.
	Deliver(now Time, a Action) []Action
	// Due returns the next deadline, or ok=false when the component places
	// no constraint on time passage.
	Due(now Time) (Time, bool)
	// Fire performs the locally controlled actions enabled at now.
	Fire(now Time) []Action
}

// Coalescable is an optional refinement of Automaton for components whose
// Due deadlines are mostly unobservable bookkeeping: recurring TICK(c)
// emissions and MMT step opportunities that, when taken, change no state
// any other component (or the recorded visible trace) can see. The
// executor uses the interface to advance simulated time directly to the
// next observable event instead of enumerating every intermediate
// deadline.
//
// The skip is semantics-preserving by the paper's own model: in §5.2 a
// node knows its clock only through discrete TICK(c) inputs and "specific
// clock values can be missed", so a TICK that leaves every component's
// enabled-action set unchanged is indistinguishable — the only thing a
// tick does is raise mmtclock, and because clocks are monotone (axiom C3)
// the last tick at or before an instant determines that value alone.
// Likewise an MMT step with an empty pending queue and no composite work
// below mmtclock performs only the internal τ, which the hiding operator
// already erases from the visible trace.
//
// Contract:
//
//   - NextInterest returns the earliest instant at which this component
//     could perform an observable action — one that other components or
//     the visible trace react to — given its current state and no further
//     inputs. simtime.Never means no such instant is scheduled. The value
//     must never be later than the true earliest observable action (being
//     early merely wastes a little work; being late would skip real
//     events), and a component whose very next deadline is observable
//     must return that deadline (the executor stops coalescing there).
//   - FastForward(to) advances the component's internal schedule past all
//     deadlines strictly before `to` without performing them, exactly as
//     if each had fired and been unobservable. It must consume any seeded
//     randomness in the same order the skipped firings would have, so a
//     fast-forwarded execution and a dense one remain byte-identical on
//     every later action. The executor only calls it with `to` at or
//     before every component's NextInterest, and never with
//     simtime.Never.
//
// A component whose deadlines are all observable (a channel reporting its
// next delivery, a clock-model node reporting its next composite
// deadline) implements NextInterest as its Due and FastForward as a no-op;
// the executor then never skips past it.
type Coalescable interface {
	Automaton
	// NextInterest returns the earliest instant an observable action could
	// occur, or simtime.Never.
	NextInterest() Time
	// FastForward advances internal bookkeeping past every unobservable
	// deadline strictly before to.
	FastForward(to Time)
}
