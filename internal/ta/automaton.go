package ta

import (
	"psclock/internal/simtime"
)

// Time and Duration alias the simulation time types so that automaton
// signatures stay compact. They are type aliases, not new types: values
// flow freely between packages.
type (
	Time     = simtime.Time
	Duration = simtime.Duration
)

// Automaton is an executable timed (I/O) automaton, the unit the executor
// composes. The executor drives a component as follows:
//
//   - Init is called once at time zero; returned actions are performed at 0.
//   - Deliver presents an input action at the current time; any returned
//     actions are locally controlled actions performed at the same instant
//     (the zero-delay chains of Figure 2, e.g. the send buffer's ESENDMSG
//     whose precondition "c = clock" forbids time passing first).
//   - Due reports the next instant at which the automaton has a locally
//     controlled action that time may not pass over: the ν precondition.
//     The composed system's time-passage steps advance now to the minimum
//     Due over all components (axioms S3–S5 hold by construction: time
//     advances by positive, arbitrarily divisible amounts).
//   - Fire performs every locally controlled action enabled at now. The
//     executor calls it whenever now reaches the component's Due time and
//     also repolls after same-time deliveries.
//
// Implementations must be deterministic given their construction-time seed;
// all nondeterminism of the paper's models (message delays, clock behavior,
// step times) is resolved by injected, seeded policies.
//
// Slice ownership: the executor copies the slice returned by Init, Deliver,
// or Fire into its own scratch buffer before dispatching any action from
// it, so a component may keep one action buffer and return it (truncated
// and refilled) from every call. Callers other than the executor that
// retain returned actions past the next call into the same component must
// copy them.
type Automaton interface {
	// Name identifies the component, e.g. "edge(n0->n1)".
	Name() string
	// Init performs the component's time-zero activity.
	Init() []Action
	// Deliver handles an input action at time now, returning any locally
	// controlled actions performed at the same instant.
	Deliver(now Time, a Action) []Action
	// Due returns the next deadline, or ok=false when the component places
	// no constraint on time passage.
	Due(now Time) (Time, bool)
	// Fire performs the locally controlled actions enabled at now.
	Fire(now Time) []Action
}
