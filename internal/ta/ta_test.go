package ta

import (
	"strings"
	"testing"

	"psclock/internal/simtime"
)

func TestNodeIDString(t *testing.T) {
	if got := NodeID(3).String(); got != "n3" {
		t.Errorf("String = %q", got)
	}
	if got := NoNode.String(); got != "n-" {
		t.Errorf("NoNode String = %q", got)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInput:    "input",
		KindOutput:   "output",
		KindInternal: "internal",
		Kind(0):      "kind(0)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestActionLabel(t *testing.T) {
	a := Action{Name: "READ", Node: 2, Peer: NoNode, Kind: KindInput}
	if got := a.Label(); got != "READ@n2" {
		t.Errorf("Label = %q", got)
	}
	b := Action{Name: NameSendMsg, Node: 0, Peer: 1, Kind: KindOutput, Payload: Msg{Body: "x"}}
	if got := b.Label(); got != "SENDMSG@n0->n1(x)" {
		t.Errorf("Label = %q", got)
	}
	c := Action{Name: "RETURN", Node: 1, Peer: NoNode, Kind: KindOutput, Payload: 42}
	if got := c.Label(); got != "RETURN@n1(42)" {
		t.Errorf("Label = %q", got)
	}
}

func TestActionLabelDistinguishes(t *testing.T) {
	base := Action{Name: "X", Node: 1, Peer: 2, Payload: "p"}
	variants := []Action{
		{Name: "Y", Node: 1, Peer: 2, Payload: "p"},
		{Name: "X", Node: 3, Peer: 2, Payload: "p"},
		{Name: "X", Node: 1, Peer: 3, Payload: "p"},
		{Name: "X", Node: 1, Peer: 2, Payload: "q"},
	}
	for _, v := range variants {
		if v.Label() == base.Label() {
			t.Errorf("labels collide: %v vs %v", base, v)
		}
	}
}

func TestActionIsMessage(t *testing.T) {
	for _, name := range []string{NameSendMsg, NameRecvMsg, NameESendMsg, NameERecvMsg} {
		if !(Action{Name: name}).IsMessage() {
			t.Errorf("%s not recognized as message", name)
		}
	}
	if (Action{Name: "READ"}).IsMessage() {
		t.Error("READ recognized as message")
	}
}

func TestTaggedMsgString(t *testing.T) {
	m := TaggedMsg{Body: "hello", SentClock: simtime.Time(3 * simtime.Millisecond)}
	if got := m.String(); got != "hello#c=3ms" {
		t.Errorf("String = %q", got)
	}
}

func mkTrace() Trace {
	return Trace{
		{Action: Action{Name: "READ", Node: 0, Peer: NoNode, Kind: KindInput}, At: 0, Seq: 0},
		{Action: Action{Name: NameSendMsg, Node: 0, Peer: 1, Kind: KindInternal, Payload: Msg{"m1"}}, At: 10, Seq: 1},
		{Action: Action{Name: NameRecvMsg, Node: 1, Peer: 0, Kind: KindInternal, Payload: Msg{"m1"}}, At: 25, Seq: 2},
		{Action: Action{Name: "RETURN", Node: 0, Peer: NoNode, Kind: KindOutput, Payload: 7}, At: 30, Seq: 3},
	}
}

func TestTraceFilters(t *testing.T) {
	tr := mkTrace()
	if got := len(tr.Visible()); got != 2 {
		t.Errorf("Visible len = %d, want 2", got)
	}
	if got := len(tr.AtNode(0)); got != 3 {
		t.Errorf("AtNode(0) len = %d, want 3", got)
	}
	if got := len(tr.AtNode(1)); got != 1 {
		t.Errorf("AtNode(1) len = %d, want 1", got)
	}
	if got := len(tr.Named("READ")); got != 1 {
		t.Errorf("Named(READ) len = %d, want 1", got)
	}
}

func TestTraceLabelsNodesLTime(t *testing.T) {
	tr := mkTrace()
	labels := tr.Labels()
	if len(labels) != 4 || labels[0] != "READ@n0" {
		t.Errorf("Labels = %v", labels)
	}
	nodes := tr.Nodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Errorf("Nodes = %v", nodes)
	}
	if tr.LTime() != 30 {
		t.Errorf("LTime = %v", tr.LTime())
	}
	if (Trace{}).LTime() != 0 {
		t.Error("empty LTime != 0")
	}
}

func TestTraceString(t *testing.T) {
	s := mkTrace().String()
	if !strings.Contains(s, "READ@n0") || !strings.Contains(s, "RETURN@n0(7)") {
		t.Errorf("String = %q", s)
	}
}

func TestCheckWellFormed(t *testing.T) {
	if err := mkTrace().CheckWellFormed(); err != nil {
		t.Errorf("well-formed trace rejected: %v", err)
	}
	bad := Trace{
		{Action: Action{Name: "A"}, At: 10},
		{Action: Action{Name: "B"}, At: 5},
	}
	if err := bad.CheckWellFormed(); err == nil {
		t.Error("decreasing times accepted")
	}
	neg := Trace{{Action: Action{Name: "A"}, At: -1}}
	if err := neg.CheckWellFormed(); err == nil {
		t.Error("negative time accepted")
	}
}

func TestCheckUniqueMessages(t *testing.T) {
	if err := mkTrace().CheckUniqueMessages(); err != nil {
		t.Errorf("unique messages rejected: %v", err)
	}
	dup := Trace{
		{Action: Action{Name: NameSendMsg, Node: 0, Peer: 1, Payload: Msg{"m"}}, At: 1},
		{Action: Action{Name: NameSendMsg, Node: 0, Peer: 1, Payload: Msg{"m"}}, At: 2},
	}
	if err := dup.CheckUniqueMessages(); err == nil {
		t.Error("duplicate sends accepted")
	}
}

func TestMessageDelays(t *testing.T) {
	tr := mkTrace()
	delays, err := tr.MessageDelays(NameSendMsg, NameRecvMsg)
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 1 || delays[0] != 15 {
		t.Errorf("delays = %v, want [15]", delays)
	}
}

func TestMessageDelaysUnmatched(t *testing.T) {
	orphan := Trace{
		{Action: Action{Name: NameRecvMsg, Node: 1, Peer: 0, Payload: Msg{"ghost"}}, At: 5},
	}
	if _, err := orphan.MessageDelays(NameSendMsg, NameRecvMsg); err == nil {
		t.Error("unmatched receive accepted")
	}
}
