package ta

import (
	"fmt"

	"psclock/internal/simtime"
)

// Auditor wraps an automaton and checks, at runtime, the operational
// contracts that make a component a legitimate executable timed automaton
// — the testable faces of the §2.1 axioms:
//
//   - monotone interaction times: the executor never calls Deliver or Fire
//     with a time earlier than a previous call's (S2/S3: non-time-passage
//     actions leave now unchanged and ν only increases it);
//   - no firing before the declared deadline: Fire may return actions only
//     when the component's most recent Due permitted it (the ν
//     precondition discipline);
//   - Deliver and Fire must not return input actions (locally controlled
//     actions are outputs or internals).
//
// Wrap any component with Audit in tests; Violations collects every
// breach without disturbing the wrapped behavior.
type Auditor struct {
	inner Automaton

	last    simtime.Time
	lastDue simtime.Time
	dueSet  bool

	// Violations lists contract breaches in occurrence order.
	Violations []string
}

var _ Automaton = (*Auditor)(nil)

// Audit wraps a for contract checking.
func Audit(a Automaton) *Auditor {
	return &Auditor{inner: a}
}

// Name implements Automaton.
func (au *Auditor) Name() string { return au.inner.Name() }

func (au *Auditor) violate(format string, args ...any) {
	au.Violations = append(au.Violations, fmt.Sprintf("%s: ", au.Name())+fmt.Sprintf(format, args...))
}

func (au *Auditor) observe(now simtime.Time, what string) {
	if now.Before(au.last) {
		au.violate("%s at %v after interaction at %v (time went backwards)", what, now, au.last)
	}
	if now.After(au.last) {
		au.last = now
	}
}

func (au *Auditor) checkActs(now simtime.Time, what string, acts []Action) {
	for _, a := range acts {
		if a.Kind == KindInput {
			au.violate("%s at %v returned an input action %v (locally controlled actions only)", what, now, a)
		}
	}
}

// Init implements Automaton.
func (au *Auditor) Init() []Action {
	acts := au.inner.Init()
	au.checkActs(0, "Init", acts)
	return acts
}

// Deliver implements Automaton.
func (au *Auditor) Deliver(now simtime.Time, a Action) []Action {
	au.observe(now, "Deliver")
	acts := au.inner.Deliver(now, a)
	au.checkActs(now, "Deliver", acts)
	return acts
}

// Due implements Automaton.
func (au *Auditor) Due(now simtime.Time) (simtime.Time, bool) {
	due, ok := au.inner.Due(now)
	au.lastDue, au.dueSet = due, ok
	return due, ok
}

// Fire implements Automaton.
func (au *Auditor) Fire(now simtime.Time) []Action {
	au.observe(now, "Fire")
	acts := au.inner.Fire(now)
	if len(acts) > 0 && (!au.dueSet || now.Before(au.lastDue)) {
		au.violate("Fire at %v produced %d actions before declared deadline (due=%v set=%v)",
			now, len(acts), au.lastDue, au.dueSet)
	}
	au.checkActs(now, "Fire", acts)
	return acts
}

// Err returns an error summarizing the violations, or nil.
func (au *Auditor) Err() error {
	if len(au.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("ta: %d contract violations, first: %s", len(au.Violations), au.Violations[0])
}
