package ta

import (
	"strings"
	"testing"

	"psclock/internal/simtime"
)

// wellBehaved fires one OUT at its due time.
type wellBehaved struct {
	due   simtime.Time
	fired bool
}

func (w *wellBehaved) Name() string                                { return "wb" }
func (w *wellBehaved) Init() []Action                              { return nil }
func (w *wellBehaved) Deliver(now simtime.Time, a Action) []Action { return nil }
func (w *wellBehaved) Due(simtime.Time) (simtime.Time, bool) {
	if w.fired {
		return 0, false
	}
	return w.due, true
}
func (w *wellBehaved) Fire(now simtime.Time) []Action {
	if now.Before(w.due) || w.fired {
		return nil
	}
	w.fired = true
	return []Action{{Name: "OUT", Node: 0, Peer: NoNode, Kind: KindOutput}}
}

func TestAuditorCleanRun(t *testing.T) {
	au := Audit(&wellBehaved{due: 10})
	au.Init()
	au.Deliver(5, Action{Name: "IN", Node: 0, Kind: KindInput})
	if due, ok := au.Due(5); !ok || due != 10 {
		t.Fatalf("due = %v %v", due, ok)
	}
	if acts := au.Fire(10); len(acts) != 1 {
		t.Fatalf("acts = %v", acts)
	}
	if err := au.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditorDetectsTimeReversal(t *testing.T) {
	au := Audit(&wellBehaved{due: 10})
	au.Deliver(20, Action{Name: "IN", Kind: KindInput})
	au.Deliver(15, Action{Name: "IN", Kind: KindInput})
	if err := au.Err(); err == nil {
		t.Fatal("time reversal undetected")
	}
	if !strings.Contains(au.Violations[0], "backwards") {
		t.Errorf("violation = %q", au.Violations[0])
	}
}

// eagerFirer fires without ever declaring a deadline.
type eagerFirer struct{ wellBehaved }

func (e *eagerFirer) Due(simtime.Time) (simtime.Time, bool) { return 0, false }
func (e *eagerFirer) Fire(now simtime.Time) []Action {
	return []Action{{Name: "OUT", Kind: KindOutput}}
}

func TestAuditorDetectsFireWithoutDue(t *testing.T) {
	au := Audit(&eagerFirer{})
	au.Due(0)
	au.Fire(5)
	if err := au.Err(); err == nil {
		t.Fatal("undeclared fire undetected")
	}
}

// inputEmitter illegally returns an input action.
type inputEmitter struct{ wellBehaved }

func (ie *inputEmitter) Deliver(now simtime.Time, a Action) []Action {
	return []Action{{Name: "BAD", Kind: KindInput}}
}

func TestAuditorDetectsInputEmission(t *testing.T) {
	au := Audit(&inputEmitter{})
	au.Deliver(1, Action{Name: "IN", Kind: KindInput})
	if err := au.Err(); err == nil {
		t.Fatal("input emission undetected")
	}
}

func TestAuditorPassesThrough(t *testing.T) {
	inner := &wellBehaved{due: 7}
	au := Audit(inner)
	if au.Name() != "wb" {
		t.Error("name not forwarded")
	}
	au.Due(0)
	au.Fire(7)
	if !inner.fired {
		t.Error("inner did not fire")
	}
}
