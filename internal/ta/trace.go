package ta

import (
	"fmt"
	"sort"
	"strings"
)

// Event is one action-time pair (a, t) of a timed sequence (§2.1). Src
// records which component performed the action (empty for environment
// inputs), and Seq is the event's global index in the execution, used for
// stable ordering among simultaneous events.
type Event struct {
	Action Action
	At     Time
	Src    string
	Seq    int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%v %s", e.At, e.Action.Label())
}

// Trace is a timed sequence over actions: the t-sched / t-trace objects of
// §2.1, depending on which actions have been filtered out.
type Trace []Event

// Filter returns the subsequence of events whose action satisfies keep,
// preserving order (the projection operator | of §2.1).
func (tr Trace) Filter(keep func(Action) bool) Trace {
	out := make(Trace, 0, len(tr))
	for _, e := range tr {
		if keep(e.Action) {
			out = append(out, e)
		}
	}
	return out
}

// Visible returns the subsequence of non-internal actions: the timed trace
// of the execution.
func (tr Trace) Visible() Trace {
	return tr.Filter(func(a Action) bool { return a.Kind != KindInternal })
}

// AtNode returns the subsequence of actions partitioned at node id.
func (tr Trace) AtNode(id NodeID) Trace {
	return tr.Filter(func(a Action) bool { return a.Node == id })
}

// Named returns the subsequence of actions with the given name.
func (tr Trace) Named(name string) Trace {
	return tr.Filter(func(a Action) bool { return a.Name == name })
}

// Labels returns the label sequence of the trace.
func (tr Trace) Labels() []string {
	out := make([]string, len(tr))
	for i, e := range tr {
		out[i] = e.Action.Label()
	}
	return out
}

// Nodes returns the sorted set of nodes appearing in the trace.
func (tr Trace) Nodes() []NodeID {
	seen := make(map[NodeID]bool)
	for _, e := range tr {
		if e.Action.Node != NoNode {
			seen[e.Action.Node] = true
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LTime returns α.ltime: the supremum of event times (§2.1), or 0 for an
// empty trace.
func (tr Trace) LTime() Time {
	var max Time
	for _, e := range tr {
		if e.At > max {
			max = e.At
		}
	}
	return max
}

// String renders one event per line.
func (tr Trace) String() string {
	var b strings.Builder
	for _, e := range tr {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CheckWellFormed verifies the basic timed-sequence axioms on a recorded
// trace: times are non-negative (S1: executions start at now = 0) and
// non-decreasing (S2/S3: non-time-passage actions do not change now, and
// time passage only increases it). It returns the first violation found.
func (tr Trace) CheckWellFormed() error {
	var prev Time
	for i, e := range tr {
		if e.At < 0 {
			return fmt.Errorf("ta: event %d (%v) at negative time %v", i, e.Action, e.At)
		}
		if e.At < prev {
			return fmt.Errorf("ta: event %d (%v) at %v precedes previous event at %v (time must be non-decreasing)",
				i, e.Action, e.At, prev)
		}
		prev = e.At
	}
	return nil
}

// CheckUniqueMessages verifies the §3 assumption that every message sent in
// an execution is unique, i.e. no two SENDMSG/ESENDMSG events carry the
// same label.
func (tr Trace) CheckUniqueMessages() error {
	seen := make(map[string]int, len(tr))
	for i, e := range tr {
		if e.Action.Name != NameSendMsg && e.Action.Name != NameESendMsg {
			continue
		}
		l := e.Action.Label()
		if j, dup := seen[l]; dup {
			return fmt.Errorf("ta: duplicate message send %q at events %d and %d", l, j, i)
		}
		seen[l] = i
	}
	return nil
}

// MessageDelays pairs each receive event with its send event (matched by
// message body label) and returns the observed delays. The bool result of
// the callback-free form: unmatched receives are reported as errors.
// Delays are measured on the event times recorded in the trace, so applying
// this to a clock-time-valued trace measures the "clock time used by a
// message" of Lemma 4.5.
func (tr Trace) MessageDelays(sendName, recvName string) ([]Duration, error) {
	type key struct {
		from, to NodeID
		body     string
	}
	sends := make(map[key]Time)
	var delays []Duration
	for _, e := range tr {
		switch e.Action.Name {
		case sendName:
			k := key{e.Action.Node, e.Action.Peer, fmt.Sprintf("%v", e.Action.Payload)}
			sends[k] = e.At
		case recvName:
			// A receive at node i from peer j matches a send at node j to
			// peer i with the same body.
			k := key{e.Action.Peer, e.Action.Node, fmt.Sprintf("%v", e.Action.Payload)}
			st, ok := sends[k]
			if !ok {
				return nil, fmt.Errorf("ta: receive %v has no matching send", e.Action)
			}
			delays = append(delays, e.At.Sub(st))
			delete(sends, k)
		}
	}
	return delays, nil
}
