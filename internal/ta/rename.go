package ta

import "psclock/internal/simtime"

// Renamed applies the renaming operator of §2.1 to an executable
// automaton: inbound actions are translated before delivery, and the
// automaton's locally controlled actions are translated after production.
// The clock-model edge interface (SENDMSG ↦ ESENDMSG, RECVMSG ↦ ERECVMSG,
// §4.1) is an instance of this operator; Renamed makes it available for
// ad-hoc compositions and tests.
type Renamed struct {
	inner Automaton
	name  string
	in    func(Action) (Action, bool)
	out   func(Action) Action
}

var _ Automaton = (*Renamed)(nil)

// Rename wraps inner under a new component name. in translates inbound
// actions (returning ok=false drops the action: it is not in the renamed
// signature); out translates produced actions. Either may be nil for the
// identity.
func Rename(inner Automaton, name string, in func(Action) (Action, bool), out func(Action) Action) *Renamed {
	if in == nil {
		in = func(a Action) (Action, bool) { return a, true }
	}
	if out == nil {
		out = func(a Action) Action { return a }
	}
	return &Renamed{inner: inner, name: name, in: in, out: out}
}

// Name implements Automaton.
func (r *Renamed) Name() string { return r.name }

func (r *Renamed) mapOut(acts []Action) []Action {
	for i := range acts {
		acts[i] = r.out(acts[i])
	}
	return acts
}

// Init implements Automaton.
func (r *Renamed) Init() []Action { return r.mapOut(r.inner.Init()) }

// Deliver implements Automaton.
func (r *Renamed) Deliver(now simtime.Time, a Action) []Action {
	in, ok := r.in(a)
	if !ok {
		return nil
	}
	return r.mapOut(r.inner.Deliver(now, in))
}

// Due implements Automaton.
func (r *Renamed) Due(now simtime.Time) (simtime.Time, bool) { return r.inner.Due(now) }

// Fire implements Automaton.
func (r *Renamed) Fire(now simtime.Time) []Action { return r.mapOut(r.inner.Fire(now)) }
