package fleet

import (
	"sort"
	"strconv"
	"sync"

	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// FanIn merges the per-daemon event streams back into one globally
// stamp-ordered stream for the exec.Sink stack — the cross-process
// analogue of the live recorder's ring merge. Each daemon's stream is
// FIFO and carries a watermark (its recorder's flush bound): every future
// event from that daemon is stamped at or above it. An event is safe to
// emit once its stamp is at or below the minimum watermark over all live
// streams; a dead daemon's watermark is +∞ (it will never produce again),
// and a replacement incarnation re-enters with a floor at its spawn
// instant.
//
// All stamps share one timeline because every process anchors its
// recorder at the plane's epoch and stamps with the host's wall clock.
// Cross-process clock imperfections could still produce an event below
// the merge frontier; such events are clamped forward to the last emitted
// stamp and counted (Clamped) — expected zero on one host.
type FanIn struct {
	mu      sync.Mutex
	streams []faninStream
	sinks   []exec.Sink

	seq         int
	lastEmitted simtime.Time
	lastFlushed simtime.Time
	clamped     int
	emitted     int
	srcs        []string
}

type faninStream struct {
	queue     []wireEvent
	watermark simtime.Time
	dead      bool
}

const faninForever = simtime.Time(1<<63 - 1)

// NewFanIn returns a merge over n daemon streams feeding sinks, which the
// FanIn alone observes from then on (single consumer, like the recorder).
func NewFanIn(n int, sinks []exec.Sink) *FanIn {
	f := &FanIn{streams: make([]faninStream, n), sinks: sinks, srcs: make([]string, n)}
	for i := range f.srcs {
		f.srcs[i] = "fleet(" + strconv.Itoa(i) + ")"
	}
	return f
}

// Push appends a daemon's event batch and advances its watermark, then
// emits whatever became safe.
func (f *FanIn) Push(daemon int, events []wireEvent, watermark simtime.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &f.streams[daemon]
	s.queue = append(s.queue, events...)
	if watermark > s.watermark {
		s.watermark = watermark
	}
	f.emit()
}

// MarkDead freezes a daemon's stream: its queued tail still emits, and
// its watermark stops constraining the merge (nothing more is coming).
func (f *FanIn) MarkDead(daemon int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.streams[daemon].dead = true
	f.streams[daemon].watermark = faninForever
	f.emit()
}

// Reset re-opens a daemon's stream for a replacement incarnation whose
// events are all stamped at or above floor (the plane's elapsed time at
// spawn — the new process cannot have recorded anything earlier).
func (f *FanIn) Reset(daemon int, floor simtime.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.streams[daemon].dead = false
	f.streams[daemon].watermark = floor
}

// Finish declares the run over: every stream's watermark goes to +∞ and
// the remaining tails merge out, followed by a final sink flush. The
// caller then takes its verdicts (Monitor.Finish submits still-open ops —
// crash-orphaned invocations — as pending).
func (f *FanIn) Finish() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.streams {
		f.streams[i].watermark = faninForever
	}
	f.emit()
	for _, s := range f.sinks {
		s.Flush(f.lastEmitted)
	}
}

// Clamped reports how many events arrived below the merge frontier and
// were clamped forward (expected zero).
func (f *FanIn) Clamped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clamped
}

// Emitted reports how many events have been observed by the sinks.
func (f *FanIn) Emitted() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.emitted
}

// emit drains every event stamped at or below the minimum live watermark
// to the sinks in (stamp, kind, stream, FIFO) order. Callers hold f.mu.
func (f *FanIn) emit() {
	bound := faninForever
	for i := range f.streams {
		if w := f.streams[i].watermark; w < bound {
			bound = w
		}
	}
	if bound == 0 {
		return
	}
	type mergeEv struct {
		ev     wireEvent
		stream int
		idx    int
	}
	var batch []mergeEv
	for i := range f.streams {
		s := &f.streams[i]
		n := 0
		for n < len(s.queue) && s.queue[n].At <= bound {
			n++
		}
		for j := 0; j < n; j++ {
			batch = append(batch, mergeEv{ev: s.queue[j], stream: i, idx: j})
		}
		if n > 0 {
			s.queue = append(s.queue[:0:0], s.queue[n:]...)
		}
	}
	if len(batch) == 0 {
		if bound != faninForever && bound > f.lastFlushed {
			for _, s := range f.sinks {
				s.Flush(bound)
			}
			f.lastFlushed = bound
		}
		return
	}
	sort.SliceStable(batch, func(i, j int) bool {
		a, b := &batch[i], &batch[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if ka, kb := faninKindRank(a.ev.Action.Kind), faninKindRank(b.ev.Action.Kind); ka != kb {
			return ka < kb
		}
		if a.stream != b.stream {
			return a.stream < b.stream
		}
		return a.idx < b.idx
	})
	for i := range batch {
		e := ta.Event{
			Action: batch[i].ev.Action,
			At:     batch[i].ev.At,
			Src:    f.srcs[batch[i].stream],
			Seq:    f.seq,
		}
		if e.At < f.lastEmitted {
			e.At = f.lastEmitted
			f.clamped++
		}
		f.lastEmitted = e.At
		f.seq++
		f.emitted++
		for _, s := range f.sinks {
			s.Observe(e)
		}
	}
	if bound != faninForever && bound > f.lastFlushed {
		for _, s := range f.sinks {
			s.Flush(bound)
		}
		f.lastFlushed = bound
	}
}

func faninKindRank(k ta.Kind) int {
	switch k {
	case ta.KindInput:
		return 0
	case ta.KindOutput:
		return 2
	default:
		return 1
	}
}
