package fleet

import (
	"testing"

	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// collectSink records what the merge emits.
type collectSink struct {
	events  []ta.Event
	flushes []simtime.Time
}

func (c *collectSink) Observe(e ta.Event)       { c.events = append(c.events, e) }
func (c *collectSink) Flush(bound simtime.Time) { c.flushes = append(c.flushes, bound) }

func ev(name string, node ta.NodeID, kind ta.Kind, at simtime.Time) wireEvent {
	return wireEvent{Action: ta.Action{Name: name, Node: node, Peer: ta.NoNode, Kind: kind}, At: at}
}

func stamps(events []ta.Event) []simtime.Time {
	out := make([]simtime.Time, len(events))
	for i, e := range events {
		out[i] = e.At
	}
	return out
}

// The merge must hold events above the minimum watermark and release them
// in stamp order once every stream's watermark passes them.
func TestFanInWatermarkHoldsAndReleases(t *testing.T) {
	sink := &collectSink{}
	f := NewFanIn(2, []exec.Sink{sink})

	f.Push(0, []wireEvent{ev("A", 0, ta.KindInput, 10), ev("B", 0, ta.KindOutput, 30)}, 40)
	if len(sink.events) != 0 {
		t.Fatalf("emitted %d events while stream 1's watermark is 0", len(sink.events))
	}

	// Stream 1's watermark reaches 20: only A (stamp 10) is safe.
	f.Push(1, nil, 20)
	if len(sink.events) != 1 || sink.events[0].Action.Name != "A" {
		t.Fatalf("after watermark 20: got %v, want just A", sink.events)
	}

	// Stream 1 contributes an earlier event (15) and advances to 50: the
	// remaining events interleave in stamp order.
	f.Push(1, []wireEvent{ev("C", 1, ta.KindInput, 15)}, 50)
	if len(sink.events) != 3 {
		t.Fatalf("after watermark 50: emitted %d events, want 3", len(sink.events))
	}
	got := stamps(sink.events)
	want := []simtime.Time{10, 15, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emit order %v, want %v", got, want)
		}
	}
	for i, e := range sink.events {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d, want %d", i, e.Seq, i)
		}
	}
	if sink.events[0].Src != "fleet(0)" || sink.events[1].Src != "fleet(1)" {
		t.Errorf("Src reassignment wrong: %q, %q", sink.events[0].Src, sink.events[1].Src)
	}
}

// Equal stamps order Input before Output (an invocation precedes the
// response it enables), then by stream.
func TestFanInEqualStampKindOrder(t *testing.T) {
	sink := &collectSink{}
	f := NewFanIn(2, []exec.Sink{sink})
	f.Push(1, []wireEvent{ev("OUT", 1, ta.KindOutput, 10)}, 20)
	f.Push(0, []wireEvent{ev("IN", 0, ta.KindInput, 10)}, 20)
	if len(sink.events) != 2 {
		t.Fatalf("emitted %d events, want 2", len(sink.events))
	}
	if sink.events[0].Action.Name != "IN" || sink.events[1].Action.Name != "OUT" {
		t.Fatalf("equal-stamp order: got %s, %s; want IN, OUT", sink.events[0].Action.Name, sink.events[1].Action.Name)
	}
}

// A dead stream stops constraining the merge; after Reset with a floor the
// stream constrains again from that floor.
func TestFanInDeadAndReset(t *testing.T) {
	sink := &collectSink{}
	f := NewFanIn(2, []exec.Sink{sink})

	f.Push(0, []wireEvent{ev("A", 0, ta.KindInput, 10)}, 100)
	if len(sink.events) != 0 {
		t.Fatal("stream 1 at watermark 0 should hold everything")
	}
	// Stream 1 dies (crash): its watermark becomes +∞ and A releases.
	f.MarkDead(1)
	if len(sink.events) != 1 {
		t.Fatalf("after MarkDead: emitted %d, want 1", len(sink.events))
	}

	// The replacement re-enters with a floor of 60: stream 0's event at 80
	// must wait again.
	f.Reset(1, 60)
	f.Push(0, []wireEvent{ev("B", 0, ta.KindInput, 80)}, 200)
	if len(sink.events) != 1 {
		t.Fatalf("after Reset(60): emitted %d, want still 1", len(sink.events))
	}
	f.Push(1, []wireEvent{ev("C", 1, ta.KindInput, 70)}, 300)
	if len(sink.events) != 3 {
		t.Fatalf("after replacement catch-up: emitted %d, want 3", len(sink.events))
	}
	if got := stamps(sink.events); got[1] != 70 || got[2] != 80 {
		t.Fatalf("replacement merge order: %v", got)
	}
}

// An event below the merge frontier clamps forward to the last emitted
// stamp and is counted — never emitted out of order.
func TestFanInClampBelowFrontier(t *testing.T) {
	sink := &collectSink{}
	f := NewFanIn(1, []exec.Sink{sink})
	f.Push(0, []wireEvent{ev("A", 0, ta.KindInput, 50)}, 60)
	// A watermark violation: stamped 40 after the stream promised ≥ 60.
	f.Push(0, []wireEvent{ev("B", 0, ta.KindInput, 40)}, 70)
	if f.Clamped() != 1 {
		t.Fatalf("Clamped = %d, want 1", f.Clamped())
	}
	if sink.events[1].At != 50 {
		t.Fatalf("clamped stamp = %d, want 50", int64(sink.events[1].At))
	}
}

// Finish drains every queued tail and flushes the sinks at the final
// frontier.
func TestFanInFinish(t *testing.T) {
	sink := &collectSink{}
	f := NewFanIn(2, []exec.Sink{sink})
	f.Push(0, []wireEvent{ev("A", 0, ta.KindInput, 10)}, 20)
	f.Push(1, []wireEvent{ev("B", 1, ta.KindInput, 90)}, 95)
	f.Finish()
	if f.Emitted() != 2 {
		t.Fatalf("Emitted = %d, want 2", f.Emitted())
	}
	if n := len(sink.flushes); n == 0 || sink.flushes[n-1] != 90 {
		t.Fatalf("final flush bound: %v, want last = 90", sink.flushes)
	}
}
