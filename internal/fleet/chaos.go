package fleet

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"psclock/internal/simtime"
)

// FaultKind names an injectable fault.
type FaultKind string

const (
	// FaultCrash SIGKILLs the target daemon; the plane is expected to
	// detect the death, restart it as a fresh incarnation, and re-wire its
	// peers — tolerated, with the node-level heartbeat detector's
	// SUSPECT/RESTORE pair as corroborating evidence.
	FaultCrash FaultKind = "crash"
	// FaultPartition cuts both directions between Target and Peer for the
	// duration. Message loss is outside the paper's model (Definition 2.3
	// delivers within [d1, d2]), so a partition longer than the detector
	// timeout is expected to be flagged: the live peers SUSPECT each other
	// across the cut and RESTORE after the heal.
	FaultPartition FaultKind = "partition"
	// FaultDelay adds Amount of extra latency to the target's outbound
	// inter-node frames. Past d2 it must surface in delay_violations
	// (flagged); within budget it must not (tolerated).
	FaultDelay FaultKind = "delay"
	// FaultClockStep offsets the target's clock by Amount. Past ε the
	// node's measured ε̂ must exceed the configured band (flagged); within
	// ε the predicate C_ε still holds (tolerated).
	FaultClockStep FaultKind = "clockstep"
)

// Outcome is a fault's classification.
type Outcome string

const (
	// OutcomeTolerated: the fleet absorbed the fault with no observable
	// guarantee broken.
	OutcomeTolerated Outcome = "tolerated"
	// OutcomeFlagged: the fault's evidence surfaced in the run's checks or
	// measurements — loudly broken, never silently absorbed.
	OutcomeFlagged Outcome = "flagged"
	// OutcomeUnresolved: the evidence the fault was supposed to produce
	// (either way) never appeared — e.g. a crashed daemon was not
	// replaced. Always a mismatch.
	OutcomeUnresolved Outcome = "unresolved"
)

// Fault is one scripted injection.
type Fault struct {
	Kind   FaultKind
	Start  time.Duration // offset from load start
	Dur    time.Duration // active window (crash: ignored)
	Target int
	Peer   int              // partition's other end (-1 otherwise)
	Amount simtime.Duration // delay extra / clock step size
	// Expect is the scripted expected outcome; empty means "derive from
	// the parameters" via DefaultExpect.
	Expect Outcome
}

// Script is a chaos schedule; the runner injects faults sequentially in
// Start order (windows are kept non-overlapping so each fault's evidence
// window attributes cleanly).
type Script []Fault

// DefaultExpect derives a fault's expected outcome from the run's
// parameters: a crash is tolerated (the plane remediates), a partition
// longer than the detector timeout is flagged (suspicion of a live node —
// the detector's accuracy property cannot hold across message loss), a
// delay spike is flagged iff the extra alone exceeds d2, and a clock step
// is flagged iff it leaves the ±ε band.
func DefaultExpect(f Fault, eps, d2 simtime.Duration) Outcome {
	switch f.Kind {
	case FaultCrash:
		return OutcomeTolerated
	case FaultPartition:
		return OutcomeFlagged
	case FaultDelay:
		if f.Amount > d2 {
			return OutcomeFlagged
		}
		return OutcomeTolerated
	case FaultClockStep:
		if f.Amount.Abs() > eps {
			return OutcomeFlagged
		}
		return OutcomeTolerated
	}
	return OutcomeUnresolved
}

// String renders a fault in the script DSL.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", f.Kind, f.Start)
	if f.Dur > 0 {
		fmt.Fprintf(&b, "+%s", f.Dur)
	}
	fmt.Fprintf(&b, ":%d", f.Target)
	if f.Kind == FaultPartition {
		fmt.Fprintf(&b, "-%d", f.Peer)
	}
	if f.Amount != 0 {
		if w, err := simtime.ToWall(f.Amount); err == nil {
			fmt.Fprintf(&b, "+%s", w)
		}
	}
	if f.Expect != "" {
		fmt.Fprintf(&b, "!%s", f.Expect)
	}
	return b.String()
}

// String renders the whole script in the DSL.
func (s Script) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}

// ParseScript parses the chaos DSL: semicolon-separated faults of the
// form
//
//	kind@start[+dur]:target[-peer][+amount][!expected]
//
// e.g. "crash@1500ms:1; partition@3s+1200ms:0-2; delay@5s+1s:1+12ms;
// clockstep@7s+800ms:2+3ms". kind ∈ {crash, partition, delay, clockstep};
// start/dur/amount are Go durations; target/peer are node IDs < n;
// expected ∈ {tolerated, flagged} overrides the derived expectation.
func ParseScript(spec string, n int) (Script, error) {
	var out Script
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part, n)
		if err != nil {
			return nil, fmt.Errorf("chaos %q: %w", part, err)
		}
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

func parseFault(s string, n int) (Fault, error) {
	f := Fault{Peer: -1}

	// Optional trailing !expected.
	if i := strings.IndexByte(s, '!'); i >= 0 {
		switch Outcome(s[i+1:]) {
		case OutcomeTolerated:
			f.Expect = OutcomeTolerated
		case OutcomeFlagged:
			f.Expect = OutcomeFlagged
		default:
			return f, fmt.Errorf("unknown expected outcome %q", s[i+1:])
		}
		s = s[:i]
	}

	at := strings.IndexByte(s, '@')
	if at < 0 {
		return f, fmt.Errorf("missing @start")
	}
	f.Kind = FaultKind(s[:at])
	switch f.Kind {
	case FaultCrash, FaultPartition, FaultDelay, FaultClockStep:
	default:
		return f, fmt.Errorf("unknown kind %q", s[:at])
	}
	s = s[at+1:]

	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return f, fmt.Errorf("missing :target")
	}
	timing, targets := s[:colon], s[colon+1:]

	if plus := strings.IndexByte(timing, '+'); plus >= 0 {
		d, err := time.ParseDuration(timing[plus+1:])
		if err != nil {
			return f, fmt.Errorf("bad duration: %w", err)
		}
		f.Dur = d
		timing = timing[:plus]
	}
	start, err := time.ParseDuration(timing)
	if err != nil {
		return f, fmt.Errorf("bad start: %w", err)
	}
	f.Start = start

	// target[-peer][+amount]
	if plus := strings.IndexByte(targets, '+'); plus >= 0 {
		w, err := time.ParseDuration(targets[plus+1:])
		if err != nil {
			return f, fmt.Errorf("bad amount: %w", err)
		}
		amt, err := simtime.FromWall(w)
		if err != nil {
			return f, fmt.Errorf("bad amount: %w", err)
		}
		f.Amount = amt
		targets = targets[:plus]
	}
	if dash := strings.IndexByte(targets, '-'); dash >= 0 {
		p, err := strconv.Atoi(targets[dash+1:])
		if err != nil {
			return f, fmt.Errorf("bad peer: %w", err)
		}
		f.Peer = p
		targets = targets[:dash]
	}
	t, err := strconv.Atoi(targets)
	if err != nil {
		return f, fmt.Errorf("bad target: %w", err)
	}
	f.Target = t

	if f.Target < 0 || f.Target >= n {
		return f, fmt.Errorf("target %d out of range [0,%d)", f.Target, n)
	}
	switch f.Kind {
	case FaultPartition:
		if f.Peer < 0 || f.Peer >= n || f.Peer == f.Target {
			return f, fmt.Errorf("partition needs a distinct peer in [0,%d)", n)
		}
		if f.Dur <= 0 {
			return f, fmt.Errorf("partition needs a +dur window")
		}
	case FaultDelay:
		if f.Amount <= 0 || f.Dur <= 0 {
			return f, fmt.Errorf("delay needs +amount and +dur")
		}
	case FaultClockStep:
		if f.Amount == 0 || f.Dur <= 0 {
			return f, fmt.Errorf("clockstep needs +amount and +dur")
		}
	}
	return f, nil
}

// DefaultScript is the seeded reference schedule for an n-node fleet: all
// four fault kinds, each variant paired where meaningful with its
// in-budget twin, spaced so every fault's evidence window (detector
// timeout, beat cadence, restart delay) settles before the next begins.
// eps and d2 size the past-budget variants (1.5× the bound) and the
// in-budget ones (≤ half the bound).
func DefaultScript(n int, eps, d2 simtime.Duration) Script {
	t2 := func(d simtime.Duration) simtime.Duration { return d + d/2 }
	s := Script{
		{Kind: FaultCrash, Start: 1200 * time.Millisecond, Target: 1 % n, Peer: -1},
		{Kind: FaultPartition, Start: 3500 * time.Millisecond, Dur: 1200 * time.Millisecond, Target: 0, Peer: 2 % n},
		{Kind: FaultDelay, Start: 5500 * time.Millisecond, Dur: 800 * time.Millisecond, Target: 1 % n, Peer: -1, Amount: t2(d2)},
		{Kind: FaultDelay, Start: 6800 * time.Millisecond, Dur: 600 * time.Millisecond, Target: 2 % n, Peer: -1, Amount: d2 / 2},
		{Kind: FaultClockStep, Start: 7900 * time.Millisecond, Dur: 600 * time.Millisecond, Target: 2 % n, Peer: -1, Amount: t2(eps)},
		{Kind: FaultClockStep, Start: 9000 * time.Millisecond, Dur: 500 * time.Millisecond, Target: 0, Peer: -1, Amount: eps / 2},
	}
	return s
}

// GenScript derives a seeded random schedule of k faults over the run
// window, spaced ≥ gap apart with non-overlapping active windows.
func GenScript(seed int64, n, k int, runDur time.Duration, eps, d2 simtime.Duration) Script {
	rng := rand.New(rand.NewSource(seed))
	kinds := []FaultKind{FaultCrash, FaultPartition, FaultDelay, FaultClockStep}
	const gap = 1500 * time.Millisecond
	start := 1 * time.Second
	var out Script
	for i := 0; i < k; i++ {
		if start+gap > runDur {
			break
		}
		kind := kinds[i%len(kinds)] // every kind appears before any repeats
		f := Fault{Kind: kind, Start: start, Target: rng.Intn(n), Peer: -1}
		switch kind {
		case FaultCrash:
			// no window
		case FaultPartition:
			f.Peer = (f.Target + 1 + rng.Intn(n-1)) % n
			f.Dur = 1200 * time.Millisecond
		case FaultDelay:
			f.Dur = 800 * time.Millisecond
			if rng.Intn(2) == 0 {
				f.Amount = d2 + d2/2
			} else {
				f.Amount = d2 / 2
			}
		case FaultClockStep:
			f.Dur = 600 * time.Millisecond
			if rng.Intn(2) == 0 {
				f.Amount = eps + eps/2
			} else {
				f.Amount = eps / 2
			}
		}
		out = append(out, f)
		start += gap
	}
	return out
}
