package fleet

import (
	"testing"
	"time"

	"psclock/internal/simtime"
)

func TestParseScriptRoundTrip(t *testing.T) {
	spec := "crash@1.2s:1; partition@3.5s+1.2s:0-2; delay@5.5s+800ms:1+15ms; clockstep@7.9s+600ms:2+3ms!flagged"
	s, err := ParseScript(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 4 {
		t.Fatalf("parsed %d faults, want 4", len(s))
	}
	if s[0].Kind != FaultCrash || s[0].Target != 1 || s[0].Start != 1200*time.Millisecond {
		t.Errorf("crash parsed as %+v", s[0])
	}
	if s[1].Kind != FaultPartition || s[1].Peer != 2 || s[1].Dur != 1200*time.Millisecond {
		t.Errorf("partition parsed as %+v", s[1])
	}
	if s[2].Amount != 15*simtime.Millisecond {
		t.Errorf("delay amount = %v, want 15ms", s[2].Amount)
	}
	if s[3].Expect != OutcomeFlagged {
		t.Errorf("clockstep expect = %q, want flagged", s[3].Expect)
	}

	// String renders back into the DSL, which parses to the same script.
	s2, err := ParseScript(s.String(), 3)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if len(s2) != len(s) {
		t.Fatalf("round trip lost faults: %d → %d", len(s), len(s2))
	}
	for i := range s {
		if s[i] != s2[i] {
			t.Errorf("fault %d: %+v != %+v", i, s[i], s2[i])
		}
	}
}

func TestParseScriptSortsByStart(t *testing.T) {
	s, err := ParseScript("delay@5s+1s:1+12ms; crash@1s:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Kind != FaultCrash {
		t.Fatalf("script not sorted by start: %v", s)
	}
}

func TestParseScriptRejects(t *testing.T) {
	for _, spec := range []string{
		"crash@1s:9",             // target out of range
		"crash@1s:0!maybe",       // unknown expectation
		"partition@1s+500ms:0-0", // peer == target
		"partition@1s:0-1",       // no window
		"delay@1s+500ms:0",       // no amount
		"clockstep@1s:0+1ms",     // no window
		"reboot@1s:0",            // unknown kind
		"crash:0",                // missing @start
		"crash@1s",               // missing :target
	} {
		if _, err := ParseScript(spec, 3); err == nil {
			t.Errorf("ParseScript(%q) accepted, want error", spec)
		}
	}
}

func TestDefaultExpect(t *testing.T) {
	eps, d2 := 2*simtime.Millisecond, 10*simtime.Millisecond
	cases := []struct {
		f    Fault
		want Outcome
	}{
		{Fault{Kind: FaultCrash}, OutcomeTolerated},
		{Fault{Kind: FaultPartition}, OutcomeFlagged},
		{Fault{Kind: FaultDelay, Amount: 15 * simtime.Millisecond}, OutcomeFlagged},
		{Fault{Kind: FaultDelay, Amount: 5 * simtime.Millisecond}, OutcomeTolerated},
		{Fault{Kind: FaultClockStep, Amount: 3 * simtime.Millisecond}, OutcomeFlagged},
		{Fault{Kind: FaultClockStep, Amount: -3 * simtime.Millisecond}, OutcomeFlagged},
		{Fault{Kind: FaultClockStep, Amount: 1 * simtime.Millisecond}, OutcomeTolerated},
	}
	for _, c := range cases {
		if got := DefaultExpect(c.f, eps, d2); got != c.want {
			t.Errorf("DefaultExpect(%s, %v) = %s, want %s", c.f.Kind, c.f.Amount, got, c.want)
		}
	}
}

func TestDefaultScriptCoversAllKinds(t *testing.T) {
	eps, d2 := 2*simtime.Millisecond, 10*simtime.Millisecond
	s := DefaultScript(3, eps, d2)
	seen := map[FaultKind]bool{}
	for i, f := range s {
		seen[f.Kind] = true
		if i > 0 && f.Start < s[i-1].Start {
			t.Errorf("script out of order at %d", i)
		}
		if i > 0 {
			prevEnd := s[i-1].Start + s[i-1].Dur
			if f.Start < prevEnd {
				t.Errorf("fault %d (%s@%v) overlaps previous window ending %v", i, f.Kind, f.Start, prevEnd)
			}
		}
	}
	for _, k := range []FaultKind{FaultCrash, FaultPartition, FaultDelay, FaultClockStep} {
		if !seen[k] {
			t.Errorf("default script missing kind %s", k)
		}
	}
}

func TestGenScriptSeededAndValid(t *testing.T) {
	eps, d2 := 2*simtime.Millisecond, 10*simtime.Millisecond
	a := GenScript(7, 3, 6, 12*time.Second, eps, d2)
	b := GenScript(7, 3, 6, 12*time.Second, eps, d2)
	if len(a) != 6 {
		t.Fatalf("generated %d faults, want 6", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i, f := range a {
		if f.Target < 0 || f.Target >= 3 {
			t.Errorf("fault %d target %d out of range", i, f.Target)
		}
		if f.Kind == FaultPartition && (f.Peer == f.Target || f.Peer < 0 || f.Peer >= 3) {
			t.Errorf("fault %d bad partition peer %d", i, f.Peer)
		}
		if i > 0 && f.Start <= a[i-1].Start {
			t.Errorf("fault %d not strictly after previous", i)
		}
	}
	// Every kind appears within the first len(kinds) faults.
	seen := map[FaultKind]bool{}
	for _, f := range a[:4] {
		seen[f.Kind] = true
	}
	if len(seen) != 4 {
		t.Errorf("first four generated faults cover %d kinds, want 4", len(seen))
	}
}
