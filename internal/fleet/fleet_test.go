package fleet

import (
	"os"
	osexec "os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"psclock/internal/live"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// buildNodeBin compiles cmd/pscnode once per test binary.
var nodeBinOnce struct {
	sync.Once
	path string
	err  error
}

func buildNodeBin(t *testing.T) string {
	t.Helper()
	nodeBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pscnode")
		if err != nil {
			nodeBinOnce.err = err
			return
		}
		bin := filepath.Join(dir, "pscnode")
		out, err := osexec.Command("go", "build", "-o", bin, "psclock/cmd/pscnode").CombinedOutput()
		if err != nil {
			nodeBinOnce.err = err
			nodeBinOnce.path = string(out)
			return
		}
		nodeBinOnce.path = bin
	})
	if nodeBinOnce.err != nil {
		t.Fatalf("build pscnode: %v\n%s", nodeBinOnce.err, nodeBinOnce.path)
	}
	return nodeBinOnce.path
}

func testPlaneConfig(bin string) PlaneConfig {
	return PlaneConfig{
		N:         3,
		Registers: 1,
		Eps:       2 * simtime.Millisecond,
		D2:        10 * simtime.Millisecond,
		Delta:     simtime.Millisecond,
		Ell:       5 * simtime.Millisecond,
		Slack:     6 * simtime.Millisecond,
		Seed:      1,
		NodeBin:   bin,
		// Faster cadences than production defaults: the test pays for a
		// crash window and a detector round trip in wall time.
		BeatPeriod:   50 * time.Millisecond,
		BeatBudget:   time.Second,
		RestartDelay: 400 * time.Millisecond,
		MaxRestarts:  2,
	}
}

// A three-process fleet comes up, serves client load, survives a SIGKILL
// with an automatic replacement, and shuts down with a merged stream and
// detector evidence of the crash.
func TestFleetCrashReplace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short")
	}
	bin := buildNodeBin(t)
	p, err := NewPlane(testPlaneConfig(bin))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		p.Close()
		t.Fatal(err)
	}
	// Background client load across all nodes while the fault runs.
	stop := make(chan struct{})
	var res live.LoadResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res = live.RunLoadDynamic(func(client int) (string, ta.NodeID) {
			node := client % 3
			return p.ClientAddr(node), ta.NodeID(node)
		}, live.LoadConfig{
			Clients:    3,
			Duration:   time.Hour, // bounded by Stop
			Rate:       50,
			WriteRatio: 0.5,
			Seed:       1,
			Stop:       stop,
		})
	}()

	time.Sleep(300 * time.Millisecond)
	inc, ok := p.Incarnation(1)
	if !ok {
		t.Error("node 1 has no live incarnation before the kill")
	}
	if err := p.Kill(1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if !p.WaitReplaced(1, inc, 15*time.Second) {
		t.Fatal("node 1 was not replaced after SIGKILL")
	}
	// Let the replacement serve for a while so its incarnation's events
	// reach the merged stream.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	stats := p.Stats()
	v := p.Shutdown()

	if p.Crashes() != 1 {
		t.Errorf("Crashes = %d, want 1", p.Crashes())
	}
	if stats.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", stats.Restarts)
	}
	if res.Ops == 0 || res.Errors != 0 {
		t.Errorf("load: ops=%d errors=%d, want ops>0 errors=0", res.Ops, res.Errors)
	}
	if v.Emitted == 0 {
		t.Error("no events reached the merged stream")
	}
	if v.Clamped != 0 {
		t.Errorf("merge clamped %d events; single-host streams should never violate watermarks", v.Clamped)
	}
	// A crash explains checker violations (message loss is outside the
	// delivery model), but the stream contract itself must hold.
	for _, m := range v.Messages {
		if len(m) >= 15 && m[:15] == "stream contract" {
			t.Errorf("stream contract violated: %s", m)
		}
	}
}

// A graceful shutdown with no chaos must produce a clean verdict: no
// violations of any kind and zero crashes.
func TestFleetCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short")
	}
	bin := buildNodeBin(t)
	p, err := NewPlane(testPlaneConfig(bin))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		p.Close()
		t.Fatal(err)
	}
	stop := make(chan struct{})
	time.AfterFunc(1200*time.Millisecond, func() { close(stop) })
	res := live.RunLoadDynamic(func(client int) (string, ta.NodeID) {
		node := client % 3
		return p.ClientAddr(node), ta.NodeID(node)
	}, live.LoadConfig{
		Clients:    3,
		Duration:   time.Hour,
		Rate:       50,
		WriteRatio: 0.5,
		Seed:       2,
		Stop:       stop,
	})
	v := p.Shutdown()
	if len(v.Messages) != 0 {
		t.Errorf("clean run produced violations: %v", v.Messages)
	}
	if p.Crashes() != 0 {
		t.Errorf("Crashes = %d, want 0", p.Crashes())
	}
	if res.Ops == 0 || res.Errors != 0 {
		t.Errorf("load: ops=%d errors=%d, want ops>0 errors=0", res.Ops, res.Errors)
	}
}
