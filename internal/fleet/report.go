package fleet

// Report is the machine-readable outcome of a pscfleet run: the
// `live_fleet` section of BENCH_results.json. It extends the live report
// shape with the fleet's process-level story — crashes commanded and
// restarts performed, detector SUSPECT/RESTORE counts, per-fault chaos
// classifications — and splits checker violations into explained (a
// crash or partition occurred, so in-flight operations and updates were
// lost outside the paper's model) and unexplained (a real regression).
type Report struct {
	Nodes     int    `json:"nodes"`
	Registers int    `json:"registers"`
	Tiers     string `json:"tiers,omitempty"`
	Clients   int    `json:"clients"`
	Clock     string `json:"clock"`
	Seed      int64  `json:"seed"`
	// GOMAXPROCS is the plane's; each daemon is its own process with its
	// own runtime, so this is a lower bound on the fleet's parallelism.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`

	DurationMS float64 `json:"duration_ms"`
	Ops        int     `json:"ops"`
	Reads      int     `json:"reads"`
	Writes     int     `json:"writes"`
	OpsPerSec  float64 `json:"ops_per_sec"`

	ReadP50US  float64 `json:"read_p50_us"`
	ReadP99US  float64 `json:"read_p99_us"`
	WriteP50US float64 `json:"write_p50_us"`
	WriteP99US float64 `json:"write_p99_us"`

	EpsConfigUS   float64 `json:"eps_config_us"`
	EpsMeasuredUS float64 `json:"eps_measured_us"`
	D1ConfigUS    float64 `json:"d1_config_us"`
	D2ConfigUS    float64 `json:"d2_config_us"`
	DetPeriodUS   float64 `json:"det_period_us"`
	DetTimeoutUS  float64 `json:"det_timeout_us"`

	Messages        int `json:"messages"`
	Held            int `json:"held"`
	DelayViolations int `json:"delay_violations"`
	// FramesDropped counts inter-node frames the fault layer discarded
	// (partitions) plus mesh sends that found a full queue.
	FramesDropped int64 `json:"frames_dropped"`
	Reconnects    int   `json:"reconnects,omitempty"`

	// ChaosScript is the expanded schedule the run executed (DSL form, so
	// compare can detect a config change); Chaos is the per-fault record.
	ChaosScript string         `json:"chaos_script"`
	Chaos       []ChaosOutcome `json:"chaos"`
	// ChaosMismatches counts faults whose observed outcome contradicted
	// the expectation — any nonzero fails the run.
	ChaosMismatches int `json:"chaos_mismatches"`

	Crashes  int `json:"crashes"`
	Restarts int `json:"restarts"`
	Suspects int `json:"suspects"`
	Restores int `json:"restores"`

	// Violations is the checker total; ExplainedViolations are those
	// attributable to injected message/process loss (crashes and
	// partitions are outside Definition 2.3's delivery model, so the
	// registers' guarantees legitimately do not hold across them);
	// UnexplainedViolations = Violations − Explained must be zero.
	Violations            int `json:"violations"`
	ExplainedViolations   int `json:"explained_violations"`
	UnexplainedViolations int `json:"unexplained_violations"`

	CheckStates int `json:"check_states"`
	CheckShards int `json:"check_shards,omitempty"`
	// MergedEvents is the fan-in's emitted count; MergeClamped counts
	// events that arrived below the merge frontier and were clamped
	// forward (expected zero on one host).
	MergedEvents int `json:"merged_events"`
	MergeClamped int `json:"merge_clamped"`
	// RecorderDrops sums daemon-side recorder drops; a clean run asserts
	// zero.
	RecorderDrops int  `json:"recorder_drops"`
	Pass          bool `json:"pass"`
}
