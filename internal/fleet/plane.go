package fleet

import (
	"fmt"
	"io"
	"net"
	osexec "os/exec"
	"runtime"
	"strconv"
	"sync"
	"time"

	"psclock/internal/detector"
	"psclock/internal/exec"
	"psclock/internal/linearize"
	"psclock/internal/live"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
	"psclock/internal/trace"
)

// PlaneConfig sizes the fleet and its model parameters.
type PlaneConfig struct {
	N         int
	Registers int    // data registers per node
	Tiers     string // register tier spec ("" = all lin)

	Eps, D1, D2, Delta, C, Ell simtime.Duration
	// Slack widens the online checker beyond ε for scheduling noise and
	// in-band clock steps (the live harness's usual widen allowance).
	Slack simtime.Duration
	// DetPeriod and DetTimeout parameterize the node-level heartbeat
	// detector every daemon hosts as its last register instance; zero
	// derives τ = SafeTimeoutClock(π, [d1,d2], ε) plus a slack for ℓ and
	// in-band faults.
	DetPeriod, DetTimeout simtime.Duration

	Seed        int64
	NodeBin     string // pscnode binary path
	CheckShards int

	// BeatPeriod is the daemon→plane liveness cadence; BeatBudget is the
	// allowed beat lateness. The plane's declare-dead timeout is the
	// detector discipline applied to beats: SafeTimeoutTA(period, [0,
	// budget]) = period + budget.
	BeatPeriod time.Duration
	BeatBudget time.Duration
	// RestartDelay is how long a crashed node stays down before its
	// replacement spawns. Keep it above the detector timeout so a crash
	// deterministically produces SUSPECT evidence at the peers.
	RestartDelay time.Duration
	MaxRestarts  int

	Verbose bool
	Logw    io.Writer
}

// daemonState is the plane's view of one node slot across incarnations.
type daemonState struct {
	node int

	mu         sync.Mutex
	inc        int
	cmd        *osexec.Cmd
	ctl        *ctlConn
	nodeAddr   string
	clientAddr string // published only between Ready and death
	ready      bool
	readyGen   int // bumped every time ready flips true
	helloed    bool
	byeSeen    bool
	lastBeat   time.Time
	beat       msgBeat
	base       live.Measured // folded totals of dead incarnations
	baseDrop   int64
	baseEps    simtime.Duration
	restarts   int
	gone       bool // restart budget exhausted
}

// DetEvent is one SUSPECT/RESTORE observation scraped from the merged
// stream: the chaos classifier's detector evidence.
type DetEvent struct {
	Name     string
	Observer int
	Peer     int
	At       simtime.Time
}

// detLog collects detector events from the FanIn (it rides the sink list
// next to the Monitor, which ignores detector actions by name).
type detLog struct {
	n         int
	portSpace int

	mu     sync.Mutex
	events []DetEvent
}

func (l *detLog) Observe(e ta.Event) {
	if e.Action.Name != detector.ActSuspect && e.Action.Name != detector.ActRestore {
		return
	}
	peer, ok := e.Action.Payload.(ta.NodeID)
	if !ok {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, DetEvent{
		Name:     e.Action.Name,
		Observer: (int(e.Action.Node) % l.portSpace) % l.n,
		Peer:     int(peer),
		At:       e.At,
	})
	l.mu.Unlock()
}

func (l *detLog) Flush(simtime.Time) {}

func (l *detLog) snapshot() []DetEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]DetEvent(nil), l.events...)
}

// FleetStats aggregates live measurements across daemons and
// incarnations — the chaos classifier's measurement evidence.
type FleetStats struct {
	EpsByNode       []simtime.Duration
	DelayViolations int
	Messages, Held  int
	Reconnects      int
	RecorderDrops   int
	Dropped         int64
	TimerLate       simtime.Duration
	Restarts        int
	Suspects        int
	Restores        int
	DetEvents       []DetEvent
}

// Plane is the fleet control plane.
type Plane struct {
	cfg   PlaneConfig
	epoch time.Time
	ln    net.Listener

	mon   *register.Monitor
	check *linearize.Sharded
	fanin *FanIn
	det   *detLog
	ring  *trace.Ring
	trap  *errTrap
	tiers []register.Tier

	daemons []*daemonState

	mu       sync.Mutex
	shutdown bool
	crashes  int

	wg sync.WaitGroup
}

// NewPlane validates the config and builds the plane's checker stack; no
// processes run until Start.
func NewPlane(cfg PlaneConfig) (*Plane, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("fleet: need ≥ 2 nodes, got %d", cfg.N)
	}
	if cfg.Registers <= 0 {
		cfg.Registers = 1
	}
	if cfg.BeatPeriod <= 0 {
		cfg.BeatPeriod = 100 * time.Millisecond
	}
	if cfg.BeatBudget <= 0 {
		cfg.BeatBudget = 1500 * time.Millisecond
	}
	if cfg.RestartDelay <= 0 {
		cfg.RestartDelay = 600 * time.Millisecond
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.DetPeriod <= 0 {
		cfg.DetPeriod = 150 * simtime.Millisecond
	}
	if cfg.DetTimeout <= 0 {
		// The clock-model safe timeout plus working slack: ℓ (timers fire
		// late by scheduling) and the in-band fault sizes, so only a real
		// outage or an out-of-model fault trips the detector.
		cfg.DetTimeout = detector.SafeTimeoutClock(cfg.DetPeriod,
			simtime.NewInterval(cfg.D1, cfg.D2), cfg.Eps) + cfg.Ell + 55*simtime.Millisecond
	}

	tiers := make([]register.Tier, cfg.Registers)
	if cfg.Tiers != "" {
		var err error
		tiers, err = register.ParseTiers(cfg.Tiers, cfg.Registers)
		if err != nil {
			return nil, err
		}
	}

	n, regs := cfg.N, cfg.Registers
	portSpace := n * (regs + 1)

	theta := cfg.C + cfg.Delta + 2*cfg.Eps + cfg.Ell + cfg.Slack
	linOpt := linearize.Options{
		Initial:      register.Initial.String(),
		Widen:        cfg.Eps + cfg.Slack,
		AssumeUnique: true,
		MaxStates:    1 << 18,
		Yield:        runtime.Gosched,
	}
	seqOpt := linearize.SeqOptions{
		Initial:  register.Initial.String(),
		MaxStale: theta,
		Yield:    runtime.Gosched,
	}
	mon := register.NewMonitor()
	so := linearize.ShardedOptions{Check: linOpt, Shards: cfg.CheckShards}
	if cfg.Tiers != "" {
		so.New = func(key string) linearize.Automaton {
			if idx, err := strconv.Atoi(key[1:]); err == nil && idx >= 0 && idx < len(tiers) && tiers[idx] == register.TierSeq {
				return linearize.NewSeqOnline(seqOpt)
			}
			return linearize.NewOnline(linOpt)
		}
	}
	check := linearize.NewSharded(so)
	mon.AddChecker("fleet", check)
	// Ports live in per-incarnation namespaces (k·N·(R+1) + reg·N + node):
	// reducing mod the namespace width folds every incarnation of a
	// register onto one checker key, so a replacement's operations extend
	// the same history its predecessor's belonged to.
	mon.SetKeyFunc(func(port ta.NodeID) string {
		return "r" + strconv.Itoa((int(port)%portSpace)/n)
	})

	det := &detLog{n: n, portSpace: portSpace}
	ring := trace.NewRing(256)
	trap := &errTrap{mon: mon, ring: ring}
	p := &Plane{
		cfg:   cfg,
		mon:   mon,
		check: check,
		det:   det,
		ring:  ring,
		trap:  trap,
		tiers: tiers,
		fanin: NewFanIn(n, []exec.Sink{mon, det, ring, trap}),
	}
	return p, nil
}

// logf writes a verbose plane log line.
func (p *Plane) logf(format string, args ...any) {
	if p.cfg.Verbose && p.cfg.Logw != nil {
		fmt.Fprintf(p.cfg.Logw, "pscfleet: "+format+"\n", args...)
	}
}

// Epoch returns the fleet's shared simulated-Zero instant.
func (p *Plane) Epoch() time.Time { return p.epoch }

// elapsed is wall time since the fleet epoch on the plane's clock.
func (p *Plane) elapsed() simtime.Time {
	t, err := simtime.TimeFromWall(time.Since(p.epoch))
	if err != nil {
		return simtime.Zero
	}
	return t
}

// Start anchors the epoch, spawns the N daemons, wires peers, and waits
// until every node is Ready (serviceable).
func (p *Plane) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	p.ln = ln
	p.epoch = time.Now()

	p.daemons = make([]*daemonState, p.cfg.N)
	for i := range p.daemons {
		p.daemons[i] = &daemonState{node: i}
	}

	p.wg.Add(1)
	go p.acceptLoop()
	p.wg.Add(1)
	go p.beatWatch()

	for i := 0; i < p.cfg.N; i++ {
		if err := p.spawn(p.daemons[i], 0); err != nil {
			p.Close()
			return err
		}
	}
	if err := p.waitAllReady(20 * time.Second); err != nil {
		p.Close()
		return err
	}
	return nil
}

// spawn launches incarnation inc of d's node and arms its exit watcher.
// The peer map is re-broadcast when the daemon's Hello arrives.
func (p *Plane) spawn(d *daemonState, inc int) error {
	cfgArgs := []string{
		"-node", strconv.Itoa(d.node),
		"-n", strconv.Itoa(p.cfg.N),
		"-registers", strconv.Itoa(p.cfg.Registers),
		"-incarnation", strconv.Itoa(inc),
		"-plane", p.ln.Addr().String(),
		"-epoch", strconv.FormatInt(p.epoch.UnixNano(), 10),
		"-seed", strconv.FormatInt(p.cfg.Seed, 10),
		"-eps", us(p.cfg.Eps), "-d1", us(p.cfg.D1), "-d2", us(p.cfg.D2),
		"-delta", us(p.cfg.Delta), "-c", us(p.cfg.C), "-ell", us(p.cfg.Ell),
		"-detperiod", us(p.cfg.DetPeriod), "-dettimeout", us(p.cfg.DetTimeout),
		"-beat", p.cfg.BeatPeriod.String(),
	}
	if p.cfg.Tiers != "" {
		cfgArgs = append(cfgArgs, "-tiers", p.cfg.Tiers)
	}
	if p.cfg.Verbose {
		cfgArgs = append(cfgArgs, "-v")
	}
	cmd := osexec.Command(p.cfg.NodeBin, cfgArgs...)
	if p.cfg.Verbose && p.cfg.Logw != nil {
		cmd.Stderr = p.cfg.Logw
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fleet: spawn node %d: %w", d.node, err)
	}
	d.mu.Lock()
	d.inc = inc
	d.cmd = cmd
	d.helloed = false
	d.byeSeen = false
	d.ready = false
	d.lastBeat = time.Now()
	d.beat = msgBeat{}
	d.mu.Unlock()
	p.logf("node %d incarnation %d spawned (pid %d)", d.node, inc, cmd.Process.Pid)

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		cmd.Wait()
		p.onExit(d, inc)
	}()
	return nil
}

// acceptLoop admits daemon control connections; the first message must be
// a Hello identifying the node and incarnation.
func (p *Plane) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			ctl := newCtlConn(conn)
			e, err := ctl.recv()
			if err != nil || e.Hello == nil {
				ctl.close()
				return
			}
			h := e.Hello
			if h.Node < 0 || h.Node >= p.cfg.N {
				ctl.close()
				return
			}
			d := p.daemons[h.Node]
			d.mu.Lock()
			if h.Incarnation != d.inc {
				d.mu.Unlock()
				ctl.close() // stale incarnation's connection
				return
			}
			d.ctl = ctl
			d.nodeAddr = h.NodeAddr
			d.helloed = true
			d.lastBeat = time.Now()
			pendingClient := h.ClientAddr
			d.mu.Unlock()
			p.logf("node %d incarnation %d hello (mesh %s, clients %s)", h.Node, h.Incarnation, h.NodeAddr, h.ClientAddr)
			p.broadcastPeers()
			p.readLoop(d, ctl, pendingClient)
		}()
	}
}

// readLoop consumes one daemon connection until it breaks.
func (p *Plane) readLoop(d *daemonState, ctl *ctlConn, clientAddr string) {
	for {
		e, err := ctl.recv()
		if err != nil {
			return
		}
		switch {
		case e.Beat != nil:
			d.mu.Lock()
			d.beat = *e.Beat
			d.lastBeat = time.Now()
			d.mu.Unlock()
		case e.Events != nil:
			p.fanin.Push(d.node, e.Events.Events, e.Events.Watermark)
		case e.Ready != nil:
			d.mu.Lock()
			d.ready = true
			d.readyGen++
			d.clientAddr = clientAddr
			d.mu.Unlock()
			p.logf("node %d ready", d.node)
		case e.Bye != nil:
			d.mu.Lock()
			d.byeSeen = true
			p.foldLocked(d, e.Bye.Measured, e.Bye.Dropped)
			d.mu.Unlock()
		}
	}
}

// foldLocked accumulates an incarnation's final measurements into the
// node's running totals. Caller holds d.mu.
func (p *Plane) foldLocked(d *daemonState, m live.Measured, dropped int64) {
	d.base.DelayViolations += m.DelayViolations
	d.base.Messages += m.Messages
	d.base.Held += m.Held
	d.base.RecorderDrops += m.RecorderDrops
	d.base.Reconnects += m.Reconnects
	if m.TimerLate > d.base.TimerLate {
		d.base.TimerLate = m.TimerLate
	}
	if m.Eps > d.baseEps {
		d.baseEps = m.Eps
	}
	d.baseDrop += dropped
	d.beat = msgBeat{}
}

// onExit handles a daemon process exit: graceful (Bye seen, or the plane
// is shutting down) is the end of the story; anything else is a crash to
// remediate — freeze the stream, wait the restart delay, respawn as the
// next incarnation, and re-wire everyone.
func (p *Plane) onExit(d *daemonState, inc int) {
	p.mu.Lock()
	down := p.shutdown
	p.mu.Unlock()

	d.mu.Lock()
	if d.inc != inc {
		d.mu.Unlock() // a newer incarnation owns the slot
		return
	}
	graceful := d.byeSeen
	if !graceful && !down {
		// Crash: fold what the beats reported before death; the ring tail
		// that never shipped dies with the process (its ops stay open and
		// Monitor.Finish will submit them as pending).
		p.foldLocked(d, d.beat.Measured, d.beat.Dropped)
		d.ready = false
		d.clientAddr = ""
	}
	restarts := d.restarts
	d.mu.Unlock()

	if graceful || down {
		return
	}
	p.logf("node %d incarnation %d died", d.node, inc)
	p.fanin.MarkDead(d.node)

	if restarts >= p.cfg.MaxRestarts {
		d.mu.Lock()
		d.gone = true
		d.mu.Unlock()
		p.logf("node %d: restart budget exhausted (%d); leaving down", d.node, restarts)
		return
	}
	d.mu.Lock()
	d.restarts++
	d.mu.Unlock()

	time.Sleep(p.cfg.RestartDelay)
	p.mu.Lock()
	down = p.shutdown
	p.mu.Unlock()
	if down {
		return
	}
	// Floor first, then spawn: the replacement cannot have recorded
	// anything before this instant.
	floor := p.elapsed()
	p.fanin.Reset(d.node, floor)
	if err := p.spawn(d, inc+1); err != nil {
		p.logf("node %d respawn failed: %v", d.node, err)
		p.fanin.MarkDead(d.node)
	}
}

// beatWatch is the liveness backstop: a daemon whose beats stop for
// longer than the detector-discipline timeout (SafeTimeoutTA over the
// beat period and lateness budget) is declared dead and killed, which
// funnels it into the regular onExit remediation. Connection EOF catches
// a SIGKILL faster; this catches a wedged-but-connected process.
func (p *Plane) beatWatch() {
	defer p.wg.Done()
	period, _ := simtime.FromWall(p.cfg.BeatPeriod)
	budget, _ := simtime.FromWall(p.cfg.BeatBudget)
	timeoutSim := detector.SafeTimeoutTA(period, simtime.NewInterval(0, budget))
	timeout, err := simtime.ToWall(timeoutSim)
	if err != nil {
		timeout = p.cfg.BeatPeriod + p.cfg.BeatBudget
	}
	tick := time.NewTicker(p.cfg.BeatPeriod)
	defer tick.Stop()
	for range tick.C {
		p.mu.Lock()
		down := p.shutdown
		p.mu.Unlock()
		if down {
			return
		}
		for _, d := range p.daemons {
			d.mu.Lock()
			stale := d.helloed && !d.byeSeen && !d.gone && time.Since(d.lastBeat) > timeout
			cmd := d.cmd
			d.mu.Unlock()
			if stale && cmd != nil && cmd.Process != nil {
				p.logf("node %d: beats stopped for > %v; killing", d.node, timeout)
				cmd.Process.Kill()
			}
		}
	}
}

// broadcastPeers sends every daemon the current mesh address map.
func (p *Plane) broadcastPeers() {
	addrs := make([]string, p.cfg.N)
	ctls := make([]*ctlConn, 0, p.cfg.N)
	for i, d := range p.daemons {
		d.mu.Lock()
		addrs[i] = d.nodeAddr
		if d.ctl != nil && d.helloed && !d.byeSeen {
			ctls = append(ctls, d.ctl)
		}
		d.mu.Unlock()
	}
	msg := envelope{Peers: &msgPeers{Addrs: addrs}}
	for _, c := range ctls {
		c.send(msg)
	}
}

// waitAllReady blocks until every node is serviceable.
func (p *Plane) waitAllReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, d := range p.daemons {
			d.mu.Lock()
			ok := d.ready
			d.mu.Unlock()
			if !ok {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: nodes not ready within %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ClientAddr returns node's register-client address, or "" while the
// node is down or repairing — the dynamic load generator polls this.
func (p *Plane) ClientAddr(node int) string {
	d := p.daemons[node]
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.ready {
		return ""
	}
	return d.clientAddr
}

// Incarnation returns node's current incarnation and readiness.
func (p *Plane) Incarnation(node int) (int, bool) {
	d := p.daemons[node]
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inc, d.ready
}

// Kill SIGKILLs node's current process — the crash fault.
func (p *Plane) Kill(node int) error {
	d := p.daemons[node]
	d.mu.Lock()
	cmd := d.cmd
	d.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("fleet: node %d has no process", node)
	}
	p.mu.Lock()
	p.crashes++
	p.mu.Unlock()
	return cmd.Process.Kill()
}

// WaitReplaced blocks until node runs an incarnation above minInc and is
// Ready, or the timeout passes.
func (p *Plane) WaitReplaced(node, minInc int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		d := p.daemons[node]
		d.mu.Lock()
		ok := d.inc > minInc && d.ready
		d.mu.Unlock()
		if ok {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// sendFault delivers a fault command to one daemon.
func (p *Plane) sendFault(node int, f msgFault) error {
	d := p.daemons[node]
	d.mu.Lock()
	ctl := d.ctl
	ok := d.helloed && !d.byeSeen
	d.mu.Unlock()
	if ctl == nil || !ok {
		return fmt.Errorf("fleet: node %d not connected", node)
	}
	return ctl.send(envelope{Fault: &f})
}

// SetPartition cuts (or heals) the link between a and b at both ends.
func (p *Plane) SetPartition(a, b int, on bool) error {
	err1 := p.sendFault(a, msgFault{PartitionPeer: b, PartitionOn: on})
	err2 := p.sendFault(b, msgFault{PartitionPeer: a, PartitionOn: on})
	if err1 != nil {
		return err1
	}
	return err2
}

// SetDelay sets node's outbound extra delay (0 heals).
func (p *Plane) SetDelay(node int, d simtime.Duration) error {
	w, err := simtime.ToWall(d)
	if err != nil {
		return err
	}
	return p.sendFault(node, msgFault{PartitionPeer: -1, SetDelay: true, DelayUS: int64(w / time.Microsecond)})
}

// SetClockStep sets node's clock offset (0 heals the step; the measured
// ε̂ keeps the excursion's high-water mark, as a real clock audit would).
func (p *Plane) SetClockStep(node int, d simtime.Duration) error {
	w, err := simtime.ToWall(d)
	if err != nil {
		return err
	}
	return p.sendFault(node, msgFault{PartitionPeer: -1, SetStep: true, StepUS: int64(w / time.Microsecond)})
}

// Stats aggregates the fleet's measurements: per-incarnation beats folded
// with the totals of dead incarnations, plus the detector evidence log.
func (p *Plane) Stats() FleetStats {
	s := FleetStats{EpsByNode: make([]simtime.Duration, p.cfg.N)}
	for i, d := range p.daemons {
		d.mu.Lock()
		m := d.beat.Measured
		s.DelayViolations += d.base.DelayViolations + m.DelayViolations
		s.Messages += d.base.Messages + m.Messages
		s.Held += d.base.Held + m.Held
		s.Reconnects += d.base.Reconnects + m.Reconnects
		s.RecorderDrops += d.base.RecorderDrops + m.RecorderDrops
		s.Dropped += d.baseDrop + d.beat.Dropped
		if tl := maxDur(d.base.TimerLate, m.TimerLate); tl > s.TimerLate {
			s.TimerLate = tl
		}
		s.EpsByNode[i] = maxDur(d.baseEps, m.Eps)
		s.Restarts += d.restarts
		d.mu.Unlock()
	}
	s.DetEvents = p.det.snapshot()
	for _, e := range s.DetEvents {
		if e.Name == detector.ActSuspect {
			s.Suspects++
		} else {
			s.Restores++
		}
	}
	return s
}

func maxDur(a, b simtime.Duration) simtime.Duration {
	if a > b {
		return a
	}
	return b
}

// Crashes returns the number of chaos-commanded kills so far.
func (p *Plane) Crashes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashes
}

// FleetVerdict is the checker outcome over the merged stream.
type FleetVerdict struct {
	Violations  int
	CheckStates int
	Messages    []string
	Clamped     int
	Emitted     int
}

// Shutdown gracefully stops the fleet: every live daemon drains and says
// Bye, the fan-in finishes (still-open crash-orphaned ops submit as
// pending), and the checker verdict comes back.
func (p *Plane) Shutdown() FleetVerdict {
	p.mu.Lock()
	p.shutdown = true
	p.mu.Unlock()

	for _, d := range p.daemons {
		d.mu.Lock()
		ctl := d.ctl
		live := d.helloed && !d.byeSeen && !d.gone
		d.mu.Unlock()
		if live && ctl != nil {
			ctl.send(envelope{Shutdown: &msgShutdown{}})
		}
	}
	// Wait for Byes (bounded), then force whatever remains.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		left := 0
		for _, d := range p.daemons {
			d.mu.Lock()
			if d.helloed && !d.byeSeen && !d.gone {
				left++
			}
			d.mu.Unlock()
		}
		if left == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, d := range p.daemons {
		d.mu.Lock()
		cmd := d.cmd
		bye := d.byeSeen
		d.mu.Unlock()
		if !bye && cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	p.Close()

	p.fanin.Finish()
	v := FleetVerdict{Clamped: p.fanin.Clamped(), Emitted: p.fanin.Emitted()}
	if err := p.mon.Err(); err != nil {
		v.Violations++
		v.Messages = append(v.Messages, fmt.Sprintf("stream contract: %v", err))
		for _, e := range p.trap.tail {
			p.logf("trace: seq=%d at=%d %s src=%s", e.Seq, int64(e.At), e.Action.Label(), e.Src)
		}
	}
	res := p.mon.Verdict("fleet")
	v.CheckStates = res.States
	if p.mon.Err() == nil && !res.OK {
		v.Violations++
		msg := fmt.Sprintf("fleet check: %s", res.Reason)
		if key, ok := p.check.FailedKey(); ok {
			msg += " (key " + key + ")"
		}
		v.Messages = append(v.Messages, msg)
	}
	return v
}

// Close tears down the plane's listener and reaps every watcher.
func (p *Plane) Close() {
	p.mu.Lock()
	p.shutdown = true
	p.mu.Unlock()
	if p.ln != nil {
		p.ln.Close()
	}
	for _, d := range p.daemons {
		d.mu.Lock()
		if d.ctl != nil {
			d.ctl.close()
		}
		d.mu.Unlock()
	}
	p.wg.Wait()
}

// us renders a simtime duration as a microsecond flag value.
func us(d simtime.Duration) string {
	return strconv.FormatInt(int64(d/simtime.Microsecond), 10) + "us"
}

// errTrap snapshots the trace ring at the instant the monitor first
// reports a stream-contract violation (debug aid).
type errTrap struct {
	mon  *register.Monitor
	ring *trace.Ring
	tail ta.Trace
	hit  bool
}

func (t *errTrap) Observe(ta.Event) {
	if !t.hit && t.mon.Err() != nil {
		t.hit = true
		t.tail = t.ring.Tail()
	}
}

func (t *errTrap) Flush(simtime.Time) {}
