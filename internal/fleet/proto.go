// Package fleet is the multi-process runtime: a control plane that
// provisions one OS process per node (cmd/pscnode, hosting the unmodified
// register and detector programs on the live runtime), tracks daemon
// liveness with the heartbeat-detector timeout discipline, restarts
// crashed daemons and re-wires their peers, and injects orchestrated
// faults — crash/restart, network partitions, delay spikes past d2, clock
// steps past ε — each carrying an expected outcome (tolerated vs.
// flagged) that the run's evidence must match.
//
// Every daemon streams its recorded events back to the plane, where a
// k-way watermark merge (FanIn) reassembles one global stream and feeds
// the same register.Monitor → linearize.Sharded stack that checks
// single-process runs: real multi-process traffic is verified online,
// exactly as loopback traffic is.
package fleet

import (
	"bufio"
	"encoding/gob"
	"net"
	"sync"

	"psclock/internal/live"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func init() {
	// Recorded actions cross the control connection with their payloads as
	// interface values: detector SUSPECT/RESTORE carry the peer's NodeID
	// (register.Value is registered by the register package already).
	gob.Register(ta.NodeID(0))
}

// wireEvent is one recorded action in flight from daemon to plane; Src
// and Seq are reassigned plane-side (Seq must be global, and Src encodes
// the daemon slot).
type wireEvent struct {
	Action ta.Action
	At     simtime.Time
}

// envelope is the single message type both directions of a control
// connection exchange; exactly one field is non-nil per message. gob
// encodes nil pointers as absent, so the envelope costs what its one
// member costs.
type envelope struct {
	// daemon → plane
	Hello  *msgHello
	Beat   *msgBeat
	Events *msgEvents
	Ready  *msgReady
	Bye    *msgBye

	// plane → daemon
	Peers    *msgPeers
	Fault    *msgFault
	Shutdown *msgShutdown
}

// msgHello is the daemon's first message: who it is and where it listens.
type msgHello struct {
	Node        int
	Incarnation int
	Pid         int
	// NodeAddr is the mesh (inter-node) listen address; ClientAddr is the
	// register client-protocol address.
	NodeAddr   string
	ClientAddr string
}

// msgBeat is the daemon's periodic liveness proof, carrying its runtime's
// measured bounds so far plus the fault layer's drop count.
type msgBeat struct {
	Measured live.Measured
	Dropped  int64
}

// msgEvents carries a batch of recorded events plus the daemon recorder's
// flush watermark: every event in this and future batches is stamped
// ≥ the previous watermark, and no future event will be stamped below
// Watermark — the plane's merge bound.
type msgEvents struct {
	Events    []wireEvent
	Watermark simtime.Time
}

// msgReady marks the daemon serviceable: initial start settled, or (for a
// restarted incarnation) the amnesia-repair write has propagated. The
// plane publishes the daemon's client address only after Ready.
type msgReady struct{}

// msgBye is the graceful-shutdown farewell with final measurements; its
// absence at process exit is how the plane distinguishes a crash.
type msgBye struct {
	Measured live.Measured
	Dropped  int64
}

// msgPeers re-announces every node's mesh address ("" = down).
type msgPeers struct {
	Addrs []string
}

// msgFault commands the daemon's chaos hooks.
type msgFault struct {
	// PartitionPeer ≥ 0 cuts (On) or heals (!On) the link to that peer,
	// enforced at this end; the plane commands both ends.
	PartitionPeer int
	PartitionOn   bool
	// SetDelay replaces the outbound extra delay with DelayUS µs.
	SetDelay bool
	DelayUS  int64
	// SetStep replaces the node clock's step offset with StepUS µs.
	SetStep bool
	StepUS  int64
}

// msgShutdown asks for a graceful exit: drain, report Bye, terminate.
type msgShutdown struct{}

// ctlConn wraps one control connection with a write lock (reads have a
// single owner per side; writes come from beat tickers, event forwarders,
// and command paths concurrently).
type ctlConn struct {
	conn net.Conn
	bw   *bufio.Writer
	dec  *gob.Decoder

	wmu sync.Mutex
	enc *gob.Encoder
}

func newCtlConn(conn net.Conn) *ctlConn {
	bw := bufio.NewWriterSize(conn, 64<<10)
	return &ctlConn{
		conn: conn,
		bw:   bw,
		dec:  gob.NewDecoder(bufio.NewReaderSize(conn, 64<<10)),
		enc:  gob.NewEncoder(bw),
	}
}

// send encodes and flushes one envelope.
func (c *ctlConn) send(e envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(e); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv decodes the next envelope (single-reader side only).
func (c *ctlConn) recv() (envelope, error) {
	var e envelope
	err := c.dec.Decode(&e)
	return e, err
}

func (c *ctlConn) close() { c.conn.Close() }
