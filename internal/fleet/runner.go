package fleet

import (
	"fmt"
	"strings"
	"time"

	"psclock/internal/detector"
	"psclock/internal/simtime"
)

// ChaosOutcome is one fault's classification: what was injected, what was
// expected, what the run's evidence says happened, and whether they
// match. A mismatch in either direction is a regression — a fault that
// should be absorbed but was flagged, or one that should surface but was
// silently tolerated.
type ChaosOutcome struct {
	Kind     string `json:"kind"`
	Target   int    `json:"target"`
	Peer     int    `json:"peer,omitempty"`
	AtMS     int64  `json:"at_ms"`
	DurMS    int64  `json:"dur_ms,omitempty"`
	AmountUS int64  `json:"amount_us,omitempty"`
	Expected string `json:"expected"`
	Observed string `json:"observed"`
	Match    bool   `json:"match"`
	Evidence string `json:"evidence"`
}

// RunScript injects the script's faults sequentially against the running
// fleet, classifying each from the measurement deltas across its evidence
// window. Faults run in Start order relative to loadStart; each window
// (inject → heal → settle) completes before the next fault fires, so the
// before/after deltas attribute cleanly. A close of stop (may be nil)
// abandons the remaining schedule after healing the in-flight fault;
// only executed faults are reported.
func (p *Plane) RunScript(script Script, loadStart time.Time, stop <-chan struct{}) []ChaosOutcome {
	out := make([]ChaosOutcome, 0, len(script))
	sleep := func(d time.Duration) bool {
		if d <= 0 {
			return true
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-stop:
			return false
		}
	}
	// Detector evidence settles one timeout plus a couple of heartbeat
	// periods after a heal (RESTORE needs fresh heartbeats to land).
	detSettle := 500 * time.Millisecond
	if w, err := simtime.ToWall(p.cfg.DetTimeout + 2*p.cfg.DetPeriod); err == nil {
		detSettle = w + 200*time.Millisecond
	}

	for _, f := range script {
		if !sleep(time.Until(loadStart.Add(f.Start))) {
			return out
		}
		expected := f.Expect
		if expected == "" {
			expected = DefaultExpect(f, p.cfg.Eps, p.cfg.D2)
		}
		o := ChaosOutcome{
			Kind:     string(f.Kind),
			Target:   f.Target,
			Peer:     f.Peer,
			AtMS:     f.Start.Milliseconds(),
			DurMS:    f.Dur.Milliseconds(),
			Expected: string(expected),
		}
		if w, err := simtime.ToWall(f.Amount); err == nil {
			o.AmountUS = w.Microseconds()
		}
		pre := p.Stats()
		p.logf("chaos: inject %s", f)

		switch f.Kind {
		case FaultCrash:
			inc, _ := p.Incarnation(f.Target)
			if err := p.Kill(f.Target); err != nil {
				o.Observed = string(OutcomeUnresolved)
				o.Evidence = "kill failed: " + err.Error()
				break
			}
			replaced := p.WaitReplaced(f.Target, inc, p.cfg.RestartDelay+20*time.Second)
			sleep(detSettle) // let peers RESTORE the replacement
			post := p.Stats()
			sus, res := detDelta(pre, post, f.Target, -1)
			if replaced {
				o.Observed = string(OutcomeTolerated)
			} else {
				o.Observed = string(OutcomeUnresolved)
			}
			o.Evidence = fmt.Sprintf("replaced=%v restarts=%d→%d suspects(target)=%d restores(target)=%d",
				replaced, pre.Restarts, post.Restarts, sus, res)

		case FaultPartition:
			if err := p.SetPartition(f.Target, f.Peer, true); err != nil {
				o.Observed = string(OutcomeUnresolved)
				o.Evidence = "inject failed: " + err.Error()
				break
			}
			ran := sleep(f.Dur)
			p.SetPartition(f.Target, f.Peer, false)
			if !ran || !sleep(detSettle) {
				o.Observed = string(OutcomeUnresolved)
				o.Evidence = "run stopped mid-window"
				out = append(out, o)
				return out
			}
			post := p.Stats()
			sus, res := detDelta(pre, post, f.Target, f.Peer)
			drops := post.Dropped - pre.Dropped
			if sus > 0 {
				o.Observed = string(OutcomeFlagged)
			} else {
				o.Observed = string(OutcomeTolerated)
			}
			o.Evidence = fmt.Sprintf("suspects(pair)=%d restores(pair)=%d frames_dropped=%d", sus, res, drops)

		case FaultDelay:
			if err := p.SetDelay(f.Target, f.Amount); err != nil {
				o.Observed = string(OutcomeUnresolved)
				o.Evidence = "inject failed: " + err.Error()
				break
			}
			ran := sleep(f.Dur)
			p.SetDelay(f.Target, 0)
			if !ran {
				o.Observed = string(OutcomeUnresolved)
				o.Evidence = "run stopped mid-window"
				out = append(out, o)
				return out
			}
			// The last delayed frame lands Amount after the heal; the next
			// beat ships the receiver's violation count shortly after.
			settle := 300 * time.Millisecond
			if w, err := simtime.ToWall(f.Amount); err == nil {
				settle += w
			}
			settle += 2 * p.cfg.BeatPeriod
			sleep(settle)
			post := p.Stats()
			dv := post.DelayViolations - pre.DelayViolations
			// Demand systematic evidence: a past-budget window delays every
			// frame the target sends (hundreds at load), while an isolated
			// scheduling spike can push a frame or two past d2 on its own.
			if dv >= 3 {
				o.Observed = string(OutcomeFlagged)
			} else {
				o.Observed = string(OutcomeTolerated)
			}
			o.Evidence = fmt.Sprintf("delay_violations=%d→%d (budget d2=%v)", pre.DelayViolations, post.DelayViolations, p.cfg.D2)

		case FaultClockStep:
			if err := p.SetClockStep(f.Target, f.Amount); err != nil {
				o.Observed = string(OutcomeUnresolved)
				o.Evidence = "inject failed: " + err.Error()
				break
			}
			ran := sleep(f.Dur)
			p.SetClockStep(f.Target, 0)
			if !ran {
				o.Observed = string(OutcomeUnresolved)
				o.Evidence = "run stopped mid-window"
				out = append(out, o)
				return out
			}
			sleep(300*time.Millisecond + 2*p.cfg.BeatPeriod)
			post := p.Stats()
			before, after := pre.EpsByNode[f.Target], post.EpsByNode[f.Target]
			// The step is flagged when it pushes the node's measured ε̂ past
			// the larger of the configured band and whatever excursion the
			// node had already suffered (ε̂ is a high-water mark).
			band := p.cfg.Eps
			if before > band {
				band = before
			}
			if after > band {
				o.Observed = string(OutcomeFlagged)
			} else {
				o.Observed = string(OutcomeTolerated)
			}
			o.Evidence = fmt.Sprintf("eps_hat=%v→%v (band ε=%v)", before, after, p.cfg.Eps)
		}

		o.Match = o.Observed == o.Expected
		p.logf("chaos: %s → %s (expected %s, match=%v; %s)", f.Kind, o.Observed, o.Expected, o.Match, o.Evidence)
		out = append(out, o)
	}
	return out
}

// detDelta counts SUSPECT/RESTORE events involving target (and, when peer
// ≥ 0, only the target↔peer pair) that arrived between the two snapshots.
func detDelta(pre, post FleetStats, target, peer int) (suspects, restores int) {
	fresh := post.DetEvents[len(pre.DetEvents):]
	for _, e := range fresh {
		var hit bool
		if peer >= 0 {
			hit = (e.Observer == target && e.Peer == peer) || (e.Observer == peer && e.Peer == target)
		} else {
			hit = e.Peer == target
		}
		if !hit {
			continue
		}
		if e.Name == detector.ActSuspect {
			suspects++
		} else {
			restores++
		}
	}
	return
}

// Summary renders outcomes one per line for logs.
func Summary(outcomes []ChaosOutcome) string {
	var b strings.Builder
	for _, o := range outcomes {
		mark := "ok"
		if !o.Match {
			mark = "MISMATCH"
		}
		fmt.Fprintf(&b, "  [%s] %s@%dms target=%d expected=%s observed=%s (%s)\n",
			mark, o.Kind, o.AtMS, o.Target, o.Expected, o.Observed, o.Evidence)
	}
	return b.String()
}
