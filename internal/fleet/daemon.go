package fleet

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/live"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// DaemonConfig is everything one node process needs, passed by the plane
// on the pscnode command line.
type DaemonConfig struct {
	Node        int
	N           int
	Registers   int // data registers; the detector rides as instance Registers
	Incarnation int
	PlaneAddr   string
	// EpochUnixNano is the fleet-wide simulated Zero: every process stamps
	// events as wall time since this instant, so all streams share one
	// timeline.
	EpochUnixNano int64
	Seed          int64
	Tiers         string // register tier spec ("" = all lin)

	Eps, D1, D2, Delta, C, Ell simtime.Duration
	DetPeriod, DetTimeout      simtime.Duration
	BeatPeriod                 time.Duration

	// Interrupt, when non-nil, triggers the same graceful teardown a
	// Shutdown command does (SIGINT/SIGTERM wiring lives in cmd/pscnode).
	Interrupt <-chan os.Signal
	Verbose   bool
	Stderr    interface{ Write([]byte) (int, error) }
}

// forwarder bridges the daemon's recorder onto the control connection: it
// buffers observed events and, at each recorder flush, ships the batch
// with the flush bound as the merge watermark. Observe/Flush run on the
// recorder's single consumer goroutine; the channel hands batches to a
// writer so a slow control link backpressures into the recorder's rings
// rather than losing events.
type forwarder struct {
	buf []wireEvent
	ch  chan msgEvents
	// dead is closed when the writer goroutine exits (control link gone):
	// ship stops blocking so the recorder can still drain and Stop — the
	// batches are lost, but so is the plane that would have read them.
	dead chan struct{}
}

func (f *forwarder) Observe(e ta.Event) {
	f.buf = append(f.buf, wireEvent{Action: e.Action, At: e.At})
}

func (f *forwarder) Flush(bound simtime.Time) {
	m := msgEvents{Watermark: bound}
	if len(f.buf) > 0 {
		m.Events = f.buf
		f.buf = nil
	}
	// A watermark-only message still ships: the plane's merge frontier
	// moves even when this node is idle.
	select {
	case f.ch <- m:
	case <-f.dead:
	}
}

// RunDaemon runs one fleet node to completion: connect to the plane,
// host the node's register instances and heartbeat detector on the live
// runtime over the mesh transport, stream events and beats back, apply
// commanded faults, and tear down gracefully on Shutdown/SIGTERM (Bye) —
// or die abruptly when chaos SIGKILLs the process, which is the point.
func RunDaemon(cfg DaemonConfig) error {
	if cfg.Registers <= 0 {
		cfg.Registers = 1
	}
	if cfg.BeatPeriod <= 0 {
		cfg.BeatPeriod = 100 * time.Millisecond
	}
	if cfg.DetPeriod <= 0 {
		cfg.DetPeriod = 150 * simtime.Millisecond
	}
	if cfg.DetTimeout <= 0 {
		// Same derivation as the plane's: the clock-model safe timeout plus
		// slack for ℓ and in-band faults.
		cfg.DetTimeout = detector.SafeTimeoutClock(cfg.DetPeriod,
			simtime.NewInterval(cfg.D1, cfg.D2), cfg.Eps) + cfg.Ell + 55*simtime.Millisecond
	}
	logf := func(format string, args ...any) {
		if cfg.Verbose && cfg.Stderr != nil {
			fmt.Fprintf(cfg.Stderr, "pscnode[%d.%d]: "+format+"\n",
				append([]any{cfg.Node, cfg.Incarnation}, args...)...)
		}
	}

	p := register.Params{C: cfg.C, Delta: cfg.Delta, D2: cfg.D2 + 2*cfg.Eps, Epsilon: cfg.Eps}
	if err := p.Validate(); err != nil {
		return err
	}
	tiers := make([]register.Tier, cfg.Registers)
	if cfg.Tiers != "" {
		var err error
		tiers, err = register.ParseTiers(cfg.Tiers, cfg.Registers)
		if err != nil {
			return err
		}
	}

	conn, err := net.Dial("tcp", cfg.PlaneAddr)
	if err != nil {
		return fmt.Errorf("dial plane: %w", err)
	}
	ctl := newCtlConn(conn)

	mesh, err := live.NewMeshTransport(cfg.Node, cfg.N, "")
	if err != nil {
		return err
	}
	ft := live.NewFaultTransport(cfg.Node, mesh)
	var step *live.StepClock

	regs := cfg.Registers + 1 // +1: the heartbeat detector instance
	rt, err := live.New(live.Options{
		N:         cfg.N,
		Registers: regs,
		Bounds:    simtime.NewInterval(cfg.D1, cfg.D2),
		Ell:       cfg.Ell,
		Clocks:    clock.PerfectFactory(),
		Transport: ft,
		Local:     []int{cfg.Node},
		Epoch:     time.Unix(0, cfg.EpochUnixNano),
		PortBase:  cfg.Incarnation * cfg.N * regs,
		WrapClock: func(_ int, c live.Clock) live.Clock {
			step = live.NewStepClock(c)
			return step
		},
	}, register.Factory(register.NewS, p))
	if err != nil {
		return err
	}
	rt.SetRegisterFactory(func(reg int) core.AlgorithmFactory {
		if reg == cfg.Registers {
			return detector.Factory(detector.Params{Period: cfg.DetPeriod, Timeout: cfg.DetTimeout})
		}
		return tiers[reg].Factory(p)
	})

	fw := &forwarder{ch: make(chan msgEvents, 256), dead: make(chan struct{})}
	rt.AddSink(fw)

	srv, err := live.NewServer(rt)
	if err != nil {
		return err
	}
	if cfg.Tiers != "" {
		srv.SetTiers(tiers)
	}
	if err := rt.Start(); err != nil {
		return err
	}
	srv.Start()

	hello := msgHello{
		Node:        cfg.Node,
		Incarnation: cfg.Incarnation,
		Pid:         os.Getpid(),
		NodeAddr:    mesh.Addr(),
		ClientAddr:  srv.Addrs()[cfg.Node],
	}
	if err := ctl.send(envelope{Hello: &hello}); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	logf("up: mesh=%s clients=%s", hello.NodeAddr, hello.ClientAddr)

	var (
		wg        sync.WaitGroup
		quiesce   = make(chan struct{}) // stops beat/forward writers
		stopOnce  sync.Once
		teardown  = make(chan struct{}) // reader/signal → main teardown
		beginStop = func() { stopOnce.Do(func() { close(teardown) }) }
	)

	// Forwarder writer: ship event batches as they flush.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(fw.dead)
		for {
			select {
			case ev := <-fw.ch:
				if err := ctl.send(envelope{Events: &ev}); err != nil {
					beginStop()
					return
				}
			case <-quiesce:
				return
			}
		}
	}()

	// Beat ticker: periodic liveness proof with measured bounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(cfg.BeatPeriod)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				b := msgBeat{Measured: rt.Snapshot(), Dropped: ft.Dropped()}
				if err := ctl.send(envelope{Beat: &b}); err != nil {
					beginStop()
					return
				}
			case <-quiesce:
				return
			}
		}
	}()

	// Command reader: peers, faults, shutdown.
	peersSeen := make(chan struct{})
	var peersOnce sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			e, err := ctl.recv()
			if err != nil {
				beginStop() // plane gone
				return
			}
			switch {
			case e.Peers != nil:
				for j, a := range e.Peers.Addrs {
					if j != cfg.Node && a != "" {
						mesh.SetPeer(j, a)
					}
				}
				peersOnce.Do(func() { close(peersSeen) })
			case e.Fault != nil:
				f := e.Fault
				if f.PartitionPeer >= 0 {
					ft.SetPartition(f.PartitionPeer, f.PartitionOn)
					logf("partition peer=%d on=%v", f.PartitionPeer, f.PartitionOn)
				}
				if f.SetDelay {
					ft.SetDelay(time.Duration(f.DelayUS) * time.Microsecond)
					logf("delay=%dus", f.DelayUS)
				}
				if f.SetStep && step != nil {
					step.SetOffset(simtime.Duration(f.StepUS) * simtime.Microsecond)
					logf("clockstep=%dus", f.StepUS)
				}
			case e.Shutdown != nil:
				beginStop()
				return
			}
		}
	}()

	// Readiness: wait for the peer map, then (for a replacement
	// incarnation) repair the amnesia before accepting clients — the
	// restarted register holds Initial, a value overwritten long ago, so a
	// fresh unique write must land and propagate (d'2 plus margin) before
	// any read at this node can be linearized. The plane withholds this
	// node's client address until Ready.
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-peersSeen:
		case <-teardown:
			return
		}
		if cfg.Incarnation > 0 {
			for reg := 0; reg < cfg.Registers; reg++ {
				v := register.Value{
					Writer: ta.NodeID(cfg.Node),
					Seq:    900_000_000 + cfg.Incarnation*1000 + reg,
				}
				if err := rt.InvokeReg(ta.NodeID(cfg.Node), reg, register.ActWrite, v); err != nil {
					return
				}
			}
			wait := 60 * time.Millisecond
			if w, err := simtime.ToWall(3 * (p.D2 + cfg.Delta)); err == nil && w > wait {
				wait = w
			}
			select {
			case <-time.After(wait):
			case <-teardown:
				return
			}
			logf("repair writes propagated")
		}
		if err := ctl.send(envelope{Ready: &msgReady{}}); err != nil {
			beginStop()
		}
	}()

	// Block until something asks us to stop.
	select {
	case <-teardown:
	case sig := <-sigChan(cfg.Interrupt):
		logf("signal %v", sig)
		beginStop()
	}

	// Graceful teardown: close the client surface, stop the runtime (its
	// final recorder flush pushes the tail through the forwarder), drain
	// the last batches onto the wire, and say Bye — the message whose
	// absence marks a crash.
	srv.Close()
	m := rt.Stop()
	// Unblock the command reader (a signal-initiated teardown leaves it
	// parked in recv); writes — the Bye below — are unaffected.
	ctl.conn.SetReadDeadline(time.Now())
	close(quiesce)
	wg.Wait()
drain:
	for {
		select {
		case ev := <-fw.ch:
			if err := ctl.send(envelope{Events: &ev}); err != nil {
				break drain
			}
		default:
			break drain
		}
	}
	bye := msgBye{Measured: m, Dropped: ft.Dropped()}
	err = ctl.send(envelope{Bye: &bye})
	ctl.close()
	logf("bye: ops recorded, eps=%v reconnects=%d", m.Eps, m.Reconnects)
	return err
}

// sigChan adapts a possibly-nil signal channel for select (nil blocks
// forever).
func sigChan(c <-chan os.Signal) <-chan os.Signal {
	if c == nil {
		return make(chan os.Signal)
	}
	return c
}
