package workload

import (
	"fmt"
	"math/rand"

	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// ScriptOp is one pre-scheduled operation of an open-loop client.
type ScriptOp struct {
	// At is the invocation time.
	At simtime.Time
	// Write selects WRITE (true) or READ (false).
	Write bool
}

// MakeScript generates a fixed invocation schedule: ops operations spaced
// exactly `spacing` apart (which must exceed the worst-case operation
// latency so the alternation condition holds), with the given write ratio,
// offset by `start`. Fixed schedules let two runs of different system
// models (e.g. D_C and D_M in experiment E8) receive byte-identical input
// sequences, which the ≤_{δ,K} comparison of Definition 2.9 requires.
func MakeScript(ops int, start simtime.Time, spacing simtime.Duration, writeRatio float64, seed int64) []ScriptOp {
	r := rand.New(rand.NewSource(seed))
	out := make([]ScriptOp, ops)
	at := start
	for i := range out {
		out[i] = ScriptOp{At: at, Write: r.Float64() < writeRatio}
		at = at.Add(spacing)
	}
	return out
}

// ScriptedClient replays a fixed schedule at one node. If an operation
// comes due while the previous one is still outstanding (the schedule's
// spacing was too tight), the run fails rather than silently violating the
// alternation condition.
type ScriptedClient struct {
	name   string
	node   ta.NodeID
	script []ScriptOp
	next   int
	wait   bool
	opInv  simtime.Time
	opRead bool
	wseq   int

	// Done counts completed operations.
	Done int
	// Err records an alternation violation.
	Err error
	// OnComplete, when set, is invoked at every operation completion, as
	// in Config.OnComplete.
	OnComplete func(read bool, inv, res simtime.Time)
}

var _ ta.Automaton = (*ScriptedClient)(nil)

// NewScripted returns a scripted client for the given node.
func NewScripted(node ta.NodeID, script []ScriptOp) *ScriptedClient {
	return &ScriptedClient{
		name:   fmt.Sprintf("script(%v)", node),
		node:   node,
		script: script,
	}
}

// AttachScripted adds one scripted client per node, each replaying its own
// schedule from scripts[i].
func AttachScripted(net *core.Net, scripts [][]ScriptOp) []*ScriptedClient {
	clients := make([]*ScriptedClient, 0, net.N)
	for i := 0; i < net.N; i++ {
		c := NewScripted(ta.NodeID(i), scripts[i])
		net.AddClient(c, ta.NodeID(i))
		clients = append(clients, c)
	}
	return clients
}

// Name implements ta.Automaton.
func (c *ScriptedClient) Name() string { return c.name }

// Init implements ta.Automaton.
func (c *ScriptedClient) Init() []ta.Action { return nil }

// Deliver implements ta.Automaton.
func (c *ScriptedClient) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if a.Node != c.node || (a.Name != register.ActReturn && a.Name != register.ActAck) {
		return nil
	}
	if c.wait {
		c.wait = false
		c.Done++
		if c.OnComplete != nil {
			c.OnComplete(c.opRead, c.opInv, now)
		}
	}
	return nil
}

// Due implements ta.Automaton.
func (c *ScriptedClient) Due(simtime.Time) (simtime.Time, bool) {
	if c.next >= len(c.script) {
		return 0, false
	}
	return c.script[c.next].At, true
}

// Fire implements ta.Automaton.
func (c *ScriptedClient) Fire(now simtime.Time) []ta.Action {
	if c.next >= len(c.script) || now.Before(c.script[c.next].At) {
		return nil
	}
	op := c.script[c.next]
	c.next++
	if c.wait {
		if c.Err == nil {
			c.Err = fmt.Errorf("workload: %s: operation due at %v while previous still outstanding (spacing too tight)", c.name, op.At)
		}
		return nil
	}
	c.wait = true
	c.opInv, c.opRead = now, !op.Write
	if op.Write {
		v := register.Value{Writer: c.node, Seq: c.wseq}
		c.wseq++
		return []ta.Action{{Name: register.ActWrite, Node: c.node, Peer: ta.NoNode, Kind: ta.KindInput, Payload: v}}
	}
	return []ta.Action{{Name: register.ActRead, Node: c.node, Peer: ta.NoNode, Kind: ta.KindInput}}
}
