// Package workload provides the environment of the register systems:
// closed-loop client automata that invoke READ/WRITE operations at their
// node, always waiting for the response before the next invocation — the
// alternation condition of §6.1 — with seeded think times and operation
// mixes. Written values are unique per execution (§3's uniqueness
// assumption): each client writes Value{Writer: node, Seq: k}.
package workload

import (
	"fmt"
	"math/rand"

	"psclock/internal/core"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Config describes a client population: one closed-loop client per node.
type Config struct {
	// Ops is the number of operations each client performs.
	Ops int
	// Think is the range of the gap between a response and the client's
	// next invocation.
	Think simtime.Interval
	// WriteRatio is the probability that an operation is a WRITE.
	WriteRatio float64
	// Seed derives the per-client seeds.
	Seed int64
	// Stagger delays client i's first invocation by i·Stagger, spreading
	// the initial burst.
	Stagger simtime.Duration
	// OnComplete, when set, is invoked at every operation completion with
	// the operation kind and its invocation and response times — the
	// streaming replacement for scraping per-operation latencies out of a
	// retained trace after the run.
	OnComplete func(read bool, inv, res simtime.Time)
}

// Client is a closed-loop client automaton driving one node.
type Client struct {
	name string
	node ta.NodeID
	cfg  Config
	rng  *rand.Rand

	nextAt    simtime.Time
	waiting   bool
	opRead    bool
	opInv     simtime.Time
	remaining int
	wseq      int
	buf       [1]ta.Action // reusable return buffer

	// Done counts completed operations.
	Done int
}

var _ ta.Automaton = (*Client)(nil)

// NewClient returns a client for the given node.
func NewClient(node ta.NodeID, cfg Config) *Client {
	return &Client{
		name:      fmt.Sprintf("client(%v)", node),
		node:      node,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed*611953 + int64(node))),
		remaining: cfg.Ops,
	}
}

// Attach adds one client per node to the net and returns them.
func Attach(net *core.Net, cfg Config) []*Client {
	clients := make([]*Client, 0, net.N)
	for i := 0; i < net.N; i++ {
		c := NewClient(ta.NodeID(i), cfg)
		net.AddClient(c, ta.NodeID(i))
		clients = append(clients, c)
	}
	return clients
}

// Name implements ta.Automaton.
func (c *Client) Name() string { return c.name }

// Init implements ta.Automaton.
func (c *Client) Init() []ta.Action {
	c.nextAt = simtime.Zero.Add(simtime.Duration(c.node) * c.cfg.Stagger)
	return nil
}

// Deliver implements ta.Automaton: a response completes the outstanding
// operation and schedules the next invocation after a think time.
func (c *Client) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if a.Node != c.node || (a.Name != register.ActReturn && a.Name != register.ActAck) {
		return nil
	}
	if !c.waiting {
		return nil
	}
	c.waiting = false
	c.Done++
	if c.cfg.OnComplete != nil {
		c.cfg.OnComplete(c.opRead, c.opInv, now)
	}
	c.nextAt = now.Add(c.think())
	return nil
}

func (c *Client) think() simtime.Duration {
	w := int64(c.cfg.Think.Width())
	if w == 0 {
		return c.cfg.Think.Lo
	}
	return c.cfg.Think.Lo + simtime.Duration(c.rng.Int63n(w+1))
}

// Due implements ta.Automaton.
func (c *Client) Due(simtime.Time) (simtime.Time, bool) {
	if c.waiting || c.remaining == 0 {
		return 0, false
	}
	return c.nextAt, true
}

// Fire implements ta.Automaton: invoke the next operation.
func (c *Client) Fire(now simtime.Time) []ta.Action {
	if c.waiting || c.remaining == 0 || now.Before(c.nextAt) {
		return nil
	}
	c.waiting = true
	c.remaining--
	c.opInv = now
	if c.rng.Float64() < c.cfg.WriteRatio {
		v := register.Value{Writer: c.node, Seq: c.wseq}
		c.wseq++
		c.opRead = false
		c.buf[0] = ta.Action{Name: register.ActWrite, Node: c.node, Peer: ta.NoNode, Kind: ta.KindInput, Payload: v}
	} else {
		c.opRead = true
		c.buf[0] = ta.Action{Name: register.ActRead, Node: c.node, Peer: ta.NoNode, Kind: ta.KindInput}
	}
	return c.buf[:]
}
