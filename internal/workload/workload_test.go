package workload

import (
	"testing"

	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

func buildNet(seed int64) *core.Net {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 200 * us, Delta: 10 * us, D2: bounds.Hi, Epsilon: 0}
	return core.BuildTimed(core.Config{N: 3, Bounds: bounds, Seed: seed},
		register.Factory(register.NewL, p))
}

func TestClientsCompleteAllOps(t *testing.T) {
	net := buildNet(1)
	clients := Attach(net, Config{
		Ops:        20,
		Think:      simtime.NewInterval(100*us, ms),
		WriteRatio: 0.5,
		Seed:       9,
		Stagger:    200 * us,
	})
	if len(clients) != 3 {
		t.Fatalf("clients = %d", len(clients))
	}
	quiet, err := net.Sys.RunQuiet(simtime.Time(10 * simtime.Second))
	if err != nil || !quiet {
		t.Fatalf("quiet=%v err=%v", quiet, err)
	}
	for _, c := range clients {
		if c.Done != 20 {
			t.Errorf("%s done=%d", c.Name(), c.Done)
		}
	}
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 60 {
		t.Errorf("history ops = %d, want 60", len(ops))
	}
	for _, o := range ops {
		if o.Pending() {
			t.Errorf("pending op %v after quiescence", o)
		}
	}
}

func TestClientAlternation(t *testing.T) {
	// The closed loop must never have two outstanding ops at a node: the
	// History extractor would reject that.
	net := buildNet(2)
	Attach(net, Config{Ops: 30, Think: simtime.NewInterval(0, 0), WriteRatio: 0.3, Seed: 4})
	if _, err := net.Sys.RunQuiet(simtime.Time(10 * simtime.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := register.History(net.Sys.Trace().Visible()); err != nil {
		t.Fatalf("alternation violated: %v", err)
	}
}

func TestUniqueWrittenValues(t *testing.T) {
	net := buildNet(3)
	Attach(net, Config{Ops: 25, Think: simtime.NewInterval(0, 500*us), WriteRatio: 1.0, Seed: 5})
	if _, err := net.Sys.RunQuiet(simtime.Time(10 * simtime.Second)); err != nil {
		t.Fatal(err)
	}
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, o := range ops {
		if o.Kind != linearize.Write {
			continue
		}
		if seen[o.Value] {
			t.Fatalf("value %s written twice", o.Value)
		}
		seen[o.Value] = true
	}
	if len(seen) != 75 {
		t.Errorf("distinct written values = %d, want 75", len(seen))
	}
}

func TestWriteRatioExtremes(t *testing.T) {
	for _, ratio := range []float64{0, 1} {
		net := buildNet(4)
		Attach(net, Config{Ops: 10, Think: simtime.NewInterval(0, 100*us), WriteRatio: ratio, Seed: 6})
		if _, err := net.Sys.RunQuiet(simtime.Time(10 * simtime.Second)); err != nil {
			t.Fatal(err)
		}
		ops, err := register.History(net.Sys.Trace().Visible())
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range ops {
			if ratio == 0 && o.Kind == linearize.Write {
				t.Fatal("write with ratio 0")
			}
			if ratio == 1 && o.Kind == linearize.Read {
				t.Fatal("read with ratio 1")
			}
		}
	}
}

func TestClientDeterminism(t *testing.T) {
	run := func() int {
		net := buildNet(7)
		Attach(net, Config{Ops: 15, Think: simtime.NewInterval(0, ms), WriteRatio: 0.5, Seed: 11})
		if _, err := net.Sys.RunQuiet(simtime.Time(10 * simtime.Second)); err != nil {
			t.Fatal(err)
		}
		return len(net.Sys.Trace())
	}
	if run() != run() {
		t.Error("client schedule not deterministic")
	}
}

func TestClientIgnoresForeignResponses(t *testing.T) {
	c := NewClient(0, Config{Ops: 1, Think: simtime.NewInterval(0, 0), Seed: 1})
	c.Init()
	if out := c.Deliver(0, ta.Action{Name: register.ActReturn, Node: 1, Kind: ta.KindOutput}); out != nil {
		t.Error("foreign response handled")
	}
	if c.Done != 0 {
		t.Error("foreign response counted")
	}
	// Unsolicited response at own node while not waiting: ignored.
	c.Deliver(0, ta.Action{Name: register.ActAck, Node: 0, Kind: ta.KindOutput})
	if c.Done != 0 {
		t.Error("unsolicited response counted")
	}
}

func TestClientStagger(t *testing.T) {
	c := NewClient(3, Config{Ops: 1, Stagger: 2 * ms, Think: simtime.NewInterval(0, 0), Seed: 1})
	c.Init()
	due, ok := c.Due(0)
	if !ok || due != simtime.Time(6*ms) {
		t.Errorf("due = %v %v, want 6ms", due, ok)
	}
	// Fire before due is a no-op.
	if out := c.Fire(0); out != nil {
		t.Error("fired early")
	}
	out := c.Fire(due)
	if len(out) != 1 || out[0].Kind != ta.KindInput {
		t.Fatalf("out = %v", out)
	}
	// No more ops.
	if _, ok := c.Due(due); ok {
		t.Error("due while waiting")
	}
}
