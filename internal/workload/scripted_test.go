package workload

import (
	"testing"

	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func TestMakeScript(t *testing.T) {
	s := MakeScript(5, simtime.Time(ms), 10*ms, 0.5, 3)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	for i, op := range s {
		want := simtime.Time(ms).Add(simtime.Duration(i) * 10 * ms)
		if op.At != want {
			t.Errorf("op %d at %v, want %v", i, op.At, want)
		}
	}
	// Deterministic.
	s2 := MakeScript(5, simtime.Time(ms), 10*ms, 0.5, 3)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("script not deterministic")
		}
	}
	// Ratio extremes.
	for _, op := range MakeScript(10, 0, ms, 0, 1) {
		if op.Write {
			t.Fatal("write with ratio 0")
		}
	}
	for _, op := range MakeScript(10, 0, ms, 1, 1) {
		if !op.Write {
			t.Fatal("read with ratio 1")
		}
	}
}

func TestScriptedClientEndToEnd(t *testing.T) {
	net := buildNet(9)
	scripts := make([][]ScriptOp, 3)
	for i := range scripts {
		// Spacing far above worst-case latency (≈3ms).
		scripts[i] = MakeScript(4, simtime.Time(i)*simtime.Time(ms), 20*ms, 0.5, int64(i)+1)
	}
	clients := AttachScripted(net, scripts)
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if c.Done != 4 {
			t.Errorf("%s done = %d", c.Name(), c.Done)
		}
	}
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 12 {
		t.Errorf("ops = %d", len(ops))
	}
	// Fixed schedule: invocations at exactly the scripted times.
	invs := map[ta.NodeID][]simtime.Time{}
	for _, o := range ops {
		invs[o.Node] = append(invs[o.Node], o.Inv)
	}
	for i, script := range scripts {
		for j, op := range script {
			if invs[ta.NodeID(i)][j] != op.At {
				t.Errorf("node %d op %d at %v, want %v", i, j, invs[ta.NodeID(i)][j], op.At)
			}
		}
	}
}

func TestScriptedClientTooTightSpacing(t *testing.T) {
	net := buildNet(10)
	// 10µs spacing is far below the ~3ms operation latency: the client
	// must record the violation rather than break alternation.
	scripts := [][]ScriptOp{
		MakeScript(3, 0, 10*us, 1, 1),
		nil, nil,
	}
	clients := AttachScripted(net, scripts)
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	if clients[0].Err == nil {
		t.Fatal("tight spacing not reported")
	}
	// The history remains alternation-clean.
	if _, err := register.History(net.Sys.Trace().Visible()); err != nil {
		t.Fatalf("alternation broken: %v", err)
	}
}

func TestScriptedClientIgnoresForeign(t *testing.T) {
	c := NewScripted(0, MakeScript(1, 0, ms, 0, 1))
	c.Init()
	if out := c.Deliver(0, ta.Action{Name: register.ActReturn, Node: 1, Kind: ta.KindOutput}); out != nil {
		t.Error("foreign response handled")
	}
	if _, ok := c.Due(0); !ok {
		t.Error("no due for scheduled op")
	}
	if out := c.Fire(0); len(out) != 1 {
		t.Errorf("fire = %v", out)
	}
	if _, ok := c.Due(0); ok {
		t.Error("due after script exhausted")
	}
}
