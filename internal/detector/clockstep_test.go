package detector_test

import (
	"testing"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/simtime"
)

// stepModel is a clock that reads true time until stepAt, then jumps
// forward by step and stays offset — a fault injection that claims the
// band eps while actually violating it. Monotone (forward step), so it is
// a legal clock map; it just breaks the C_ε promise the detector's safe
// timeout was derived from.
type stepModel struct {
	stepAt simtime.Time
	step   simtime.Duration
	eps    simtime.Duration
}

func (m stepModel) At(t simtime.Time) simtime.Time {
	if t.Before(m.stepAt) {
		return t
	}
	return t.Add(m.step)
}

func (m stepModel) EarliestAt(c simtime.Time) simtime.Time {
	// Readings below the step map back directly; readings inside the jump
	// [stepAt, stepAt+step] are first reached exactly at the step instant;
	// later ones lag the reading by the offset.
	if !m.stepAt.Before(c) {
		return c
	}
	if !c.After(m.stepAt.Add(m.step)) {
		return m.stepAt
	}
	return c.Add(-m.step)
}

func (m stepModel) Epsilon() simtime.Duration { return m.eps }
func (m stepModel) Name() string              { return "step" }

// stepFactory gives node 0 the stepping clock and everyone else a perfect
// one.
func stepFactory(stepAt simtime.Time, step, eps simtime.Duration) clock.Factory {
	perfect := clock.PerfectFactory()
	return func(node int) clock.Model {
		if node == 0 {
			return stepModel{stepAt: stepAt, step: step, eps: eps}
		}
		return perfect(node)
	}
}

// A clock step past ε defeats the detector's accuracy in both directions.
// Outbound from the fault: the stepped node's watch timers — armed before
// the jump in pre-step clock coordinates — expire early by the step, so
// it falsely suspects live peers. Inbound: its heartbeats carry clock
// stamps from the future, so the C(A,ε) receive buffers hold them until
// the receivers' clocks catch up, stretching the observed gap past the
// safe timeout — the peers falsely suspect the stepped node. Either way
// every suspicion involves the faulty node and heals once beats flow in
// post-step coordinates.
func TestClockStepPastEpsilonFalseSuspicion(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	eps := 500 * us
	period := 5 * ms
	p := detector.Params{
		Period:  period,
		Timeout: detector.SafeTimeoutClock(period, bounds, eps), // 8ms
	}
	stepAt := simtime.Time(30 * ms)
	step := 6 * ms // 12ε: leaves 2ms of effective timeout against ~5ms gaps
	net := core.BuildClocked(core.Config{
		N: 3, Bounds: bounds, Seed: 3,
		Clocks: stepFactory(stepAt, step, eps),
	}, detector.Factory(p))
	if err := net.Sys.Run(simtime.Time(60 * ms)); err != nil {
		t.Fatal(err)
	}
	sus := detector.Suspicions(net.Sys.Trace())
	if len(sus) == 0 {
		t.Fatal("a 12ε clock step produced no false suspicions")
	}
	byFaulty := 0
	for _, s := range sus {
		if s.By != 0 && s.Of != 0 {
			t.Errorf("suspicion %v→%v involves neither side of the clock fault", s.By, s.Of)
		}
		if s.By == 0 {
			byFaulty++
		}
		if s.At.Before(stepAt) {
			t.Errorf("suspicion at %v, before the step at %v", s.At, stepAt)
		}
	}
	if byFaulty == 0 {
		t.Error("the stepped node's early-firing timers produced no suspicions")
	}
	// Peers keep beating, so every false suspicion must heal.
	restores := net.Sys.Trace().Named(detector.ActRestore)
	if len(restores) != len(sus) {
		t.Errorf("%d suspicions but %d restores; live peers' beats must restore them all", len(sus), len(restores))
	}
}

// The in-band twin: the same step held within ε stays inside the safe
// timeout's 4ε margin — zero suspicions, the tolerated outcome.
func TestClockStepWithinEpsilonTolerated(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	eps := 500 * us
	period := 5 * ms
	p := detector.Params{
		Period:  period,
		Timeout: detector.SafeTimeoutClock(period, bounds, eps),
	}
	net := core.BuildClocked(core.Config{
		N: 3, Bounds: bounds, Seed: 3,
		Clocks: stepFactory(simtime.Time(30*ms), eps/2, eps),
	}, detector.Factory(p))
	if err := net.Sys.Run(simtime.Time(60 * ms)); err != nil {
		t.Fatal(err)
	}
	if sus := detector.Suspicions(net.Sys.Trace()); len(sus) != 0 {
		t.Fatalf("an ε/2 step caused suspicions: %v", sus)
	}
}
