package detector_test

import (
	"math/rand"
	"testing"

	"psclock/internal/channel"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// restores extracts RESTORE events (by, of, at) from a trace.
func restores(tr ta.Trace) []detector.Suspicion {
	var out []detector.Suspicion
	for _, e := range tr {
		if e.Action.Name == detector.ActRestore {
			out = append(out, detector.Suspicion{By: e.Action.Node, Of: e.Action.Payload.(ta.NodeID), At: e.At})
		}
	}
	return out
}

// dropFrom installs a drop predicate on every edge leaving node `from`.
// Edge send ordinals are 0-based; the detector's only traffic is its
// heartbeats, so ordinal k is heartbeat k+1.
func dropFrom(net *core.Net, from ta.NodeID, drop func(seq int) bool) {
	for _, e := range net.Edges {
		if e.From() == from {
			e.Drop = func(seq int, _ *rand.Rand) bool { return drop(seq) }
		}
	}
}

// TestSuspectedAfterLossThenRestored loses a burst of node 0's heartbeats
// long enough to exceed the safe timeout: both peers must suspect node 0
// while the burst lasts and restore it when heartbeats resume — and never
// suspect each other, whose heartbeats flowed throughout.
func TestSuspectedAfterLossThenRestored(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	period := 5 * ms
	p := detector.Params{
		Period:     period,
		Timeout:    detector.SafeTimeoutTA(period, bounds),
		Heartbeats: 12,
	}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 11, NewDelay: channel.MinDelay}
	net := core.BuildTimed(cfg, detector.Factory(p))
	// Beats 4..7 (sent at 15..30ms) vanish: a 25ms silence against a 6ms
	// timeout. Beat 8 at 35ms revives the link. The horizon stops short of
	// 61.5ms, where the bounded heartbeat stream ending (last beat 55ms)
	// would make every watcher fire legitimately.
	dropFrom(net, 0, func(seq int) bool { return seq >= 3 && seq <= 6 })
	if err := net.Sys.Run(simtime.Time(58 * ms)); err != nil {
		t.Fatal(err)
	}
	sus := detector.Suspicions(net.Sys.Trace())
	res := restores(net.Sys.Trace())
	susBy := map[ta.NodeID]int{}
	for _, s := range sus {
		if s.Of != 0 {
			t.Fatalf("node %v suspected healthy node %v at %v", s.By, s.Of, s.At)
		}
		susBy[s.By]++
	}
	if susBy[1] != 1 || susBy[2] != 1 {
		t.Fatalf("suspicions of node 0: %v, want exactly one from each peer", susBy)
	}
	resBy := map[ta.NodeID]int{}
	for _, r := range res {
		if r.Of != 0 {
			t.Fatalf("node %v restored never-suspected node %v", r.By, r.Of)
		}
		resBy[r.By]++
	}
	if resBy[1] != 1 || resBy[2] != 1 {
		t.Fatalf("restores of node 0: %v, want exactly one from each peer", resBy)
	}
	for _, e := range net.Edges {
		if e.From() == 0 && e.To() != 0 && e.Dropped != 4 {
			t.Fatalf("edge %v->%v dropped %d heartbeats, want 4", e.From(), e.To(), e.Dropped)
		}
	}
}

// TestTotalLossNeverRestores cuts node 0's outgoing links permanently
// after two delivered heartbeats: to its peers this is indistinguishable
// from a crash, so suspicion must arrive and never be withdrawn.
func TestTotalLossNeverRestores(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	period := 5 * ms
	p := detector.Params{
		Period:     period,
		Timeout:    detector.SafeTimeoutTA(period, bounds),
		Heartbeats: 12,
	}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 13, NewDelay: channel.MinDelay}
	net := core.BuildTimed(cfg, detector.Factory(p))
	// Horizon short of the end-of-stream timeout (see above).
	dropFrom(net, 0, func(seq int) bool { return seq >= 2 })
	if err := net.Sys.Run(simtime.Time(50 * ms)); err != nil {
		t.Fatal(err)
	}
	susBy := map[ta.NodeID]int{}
	for _, s := range detector.Suspicions(net.Sys.Trace()) {
		if s.Of != 0 {
			t.Fatalf("node %v suspected healthy node %v", s.By, s.Of)
		}
		susBy[s.By]++
	}
	if susBy[1] != 1 || susBy[2] != 1 {
		t.Fatalf("suspicions of node 0: %v, want exactly one from each peer", susBy)
	}
	if res := restores(net.Sys.Trace()); len(res) != 0 {
		t.Fatalf("silent node restored: %v", res)
	}
}

// oneLate is a DelayPolicy delivering every message at d1 except one send
// ordinal, which it delays by `by` less than d2 − d1 extra: the §1
// worst case for a heartbeat watcher, a fast beat re-arming the watch
// followed by the next beat crawling in.
type oneLate struct {
	ordinal int
	short   simtime.Duration // how far below d2 the late delivery stays
	n       int
}

func (p *oneLate) Name() string { return "one-late" }
func (p *oneLate) Delay(_ *rand.Rand, iv simtime.Interval) simtime.Duration {
	d := iv.Lo
	if p.n == p.ordinal {
		d = iv.Hi - p.short
	}
	p.n++
	return d
}

// TestLateHeartbeatWithinSafeTimeout drives the worst-case delay pattern
// — beat k at d1, beat k+1 at (just under) d2 — against the safe timeout
// π + (d2 − d1): the late heartbeat must land inside the watch window,
// so no suspicion fires. This pins the exact boundary SafeTimeoutTA
// claims.
func TestLateHeartbeatWithinSafeTimeout(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	period := 5 * ms
	p := detector.Params{
		Period:     period,
		Timeout:    detector.SafeTimeoutTA(period, bounds),
		Heartbeats: 10,
	}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 17,
		NewDelay: func() channel.DelayPolicy { return &oneLate{ordinal: 4, short: 50 * us} }}
	net := core.BuildTimed(cfg, detector.Factory(p))
	// Last beat at 45ms; stop before the stream's end trips the watchers.
	if err := net.Sys.Run(simtime.Time(48 * ms)); err != nil {
		t.Fatal(err)
	}
	if sus := detector.Suspicions(net.Sys.Trace()); len(sus) != 0 {
		t.Fatalf("late-but-in-bounds heartbeat caused suspicions: %v", sus)
	}
}

// TestLateHeartbeatBeyondTightTimeout shrinks the timeout 100µs below the
// safe bound and replays the same pattern with the late beat at exactly
// d2: the watch must fire just before the heartbeat lands, and the
// arrival must then restore the peer — the false-suspicion/recovery edge
// the safe margin exists to exclude.
func TestLateHeartbeatBeyondTightTimeout(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	period := 5 * ms
	p := detector.Params{
		Period:     period,
		Timeout:    detector.SafeTimeoutTA(period, bounds) - 100*us,
		Heartbeats: 10,
	}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 19,
		NewDelay: func() channel.DelayPolicy { return &oneLate{ordinal: 4, short: 0} }}
	net := core.BuildTimed(cfg, detector.Factory(p))
	if err := net.Sys.Run(simtime.Time(48 * ms)); err != nil {
		t.Fatal(err)
	}
	sus := detector.Suspicions(net.Sys.Trace())
	if len(sus) == 0 {
		t.Fatal("tight timeout survived the worst-case late heartbeat")
	}
	res := restores(net.Sys.Trace())
	if len(res) != len(sus) {
		t.Fatalf("%d suspicions but %d restores; every false suspicion must be withdrawn on arrival", len(sus), len(res))
	}
}
