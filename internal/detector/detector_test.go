package detector_test

import (
	"testing"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

func runDetector(t *testing.T, model string, p detector.Params, cf clock.Factory,
	bounds simtime.Interval, crash ta.NodeID, crashAt simtime.Time, horizon simtime.Time) *core.Net {
	t.Helper()
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 3, Clocks: cf}
	var net *core.Net
	if model == "timed" {
		net = core.BuildTimed(cfg, detector.Factory(p))
	} else {
		net = core.BuildClocked(cfg, detector.Factory(p))
	}
	if crashAt > 0 {
		if _, err := core.CrashNode(net, crash, crashAt); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Sys.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNoFalseSuspicionsTimedModel(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	p := detector.Params{
		Period:     5 * ms,
		Timeout:    detector.SafeTimeoutTA(5*ms, bounds),
		Heartbeats: 20,
	}
	net := runDetector(t, "timed", p, nil, bounds, 0, 0, simtime.Time(80*ms))
	if sus := detector.Suspicions(net.Sys.Trace()); len(sus) != 0 {
		t.Fatalf("false suspicions in the timed model: %v", sus)
	}
}

func TestClockModelNeedsMargin(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	eps := 800 * us
	period := 5 * ms
	// With the timed-model timeout, adversarial sawtooth clocks cause
	// false suspicions (heartbeat gaps stretch by up to 4ε).
	tight := detector.Params{Period: period, Timeout: detector.SafeTimeoutTA(period, bounds), Heartbeats: 25}
	net := runDetector(t, "clock", tight, clock.SawtoothFactory(eps, 8*ms), bounds, 0, 0, simtime.Time(100*ms))
	lastBeat := simtime.Time(simtime.Duration(tight.Heartbeats) * period)
	falseCount := 0
	for _, s := range detector.Suspicions(net.Sys.Trace()) {
		if s.At.Before(lastBeat) {
			falseCount++
		}
	}
	if falseCount == 0 {
		t.Fatal("tight timeout never false-suspected under sawtooth clocks; the 4ε margin appears unnecessary")
	}

	// With the 4ε margin, no false suspicions while beats flow.
	safe := detector.Params{Period: period, Timeout: detector.SafeTimeoutClock(period, bounds, eps), Heartbeats: 25}
	net2 := runDetector(t, "clock", safe, clock.SawtoothFactory(eps, 8*ms), bounds, 0, 0, simtime.Time(100*ms))
	for _, s := range detector.Suspicions(net2.Sys.Trace()) {
		if s.At.Before(lastBeat) {
			t.Fatalf("false suspicion with safe timeout: %+v", s)
		}
	}
}

func TestCrashDetected(t *testing.T) {
	bounds := simtime.NewInterval(500*us, 1500*us)
	eps := 500 * us
	period := 5 * ms
	p := detector.Params{Period: period, Timeout: detector.SafeTimeoutClock(period, bounds, eps), Heartbeats: 0}
	crashAt := simtime.Time(30 * ms)
	net := runDetector(t, "clock", p, clock.DriftFactory(eps, 5), bounds, 2, crashAt, simtime.Time(120*ms))
	byNode := map[ta.NodeID]simtime.Time{}
	for _, s := range detector.Suspicions(net.Sys.Trace()) {
		if s.Of != 2 {
			t.Fatalf("false suspicion of live node: %+v", s)
		}
		if _, ok := byNode[s.By]; !ok {
			byNode[s.By] = s.At
		}
	}
	if len(byNode) != 2 {
		t.Fatalf("crash detected by %d/2 peers", len(byNode))
	}
	// Detection latency ≤ period + timeout + d2 + 2ε of clock slop.
	bound := crashAt.Add(period + p.Timeout + bounds.Hi + 2*eps)
	for by, at := range byNode {
		if at.After(bound) {
			t.Errorf("node %v detected at %v, after bound %v", by, at, bound)
		}
		if at.Before(crashAt) {
			t.Errorf("node %v suspected before the crash", by)
		}
	}
}

func TestRestoreAfterSlowBeat(t *testing.T) {
	// A timeout shorter than the period guarantees suspicion between
	// beats, then RESTORE when the next beat lands.
	bounds := simtime.NewInterval(100*us, 200*us)
	p := detector.Params{Period: 10 * ms, Timeout: 3 * ms, Heartbeats: 5}
	net := runDetector(t, "timed", p, nil, bounds, 0, 0, simtime.Time(60*ms))
	sus := detector.Suspicions(net.Sys.Trace())
	if len(sus) == 0 {
		t.Fatal("no suspicions with timeout < period")
	}
	restores := net.Sys.Trace().Named(detector.ActRestore)
	if len(restores) == 0 {
		t.Fatal("no restores despite continuing heartbeats")
	}
}

func TestSafeTimeoutFormulas(t *testing.T) {
	b := simtime.NewInterval(ms, 3*ms)
	if got := detector.SafeTimeoutTA(5*ms, b); got != 7*ms {
		t.Errorf("TA timeout = %v", got)
	}
	if got := detector.SafeTimeoutClock(5*ms, b, 500*us); got != 9*ms {
		t.Errorf("clock timeout = %v", got)
	}
}

func TestParamsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad params")
		}
	}()
	detector.New(detector.Params{Period: 0, Timeout: ms})
}
