package detector

import "encoding/gob"

// Register the heartbeat body so the live runtime's TCP transport can
// gob-encode it as an interface value (see internal/register/wire.go).
func init() {
	gob.Register(heartbeat{})
}
