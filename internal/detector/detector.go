// Package detector applies the paper's design techniques to the first use
// of time its introduction names: "Time information can be used to ...
// detect process failures."
//
// The algorithm is a heartbeat failure detector written in the §3
// programming model: every node broadcasts HEARTBEAT each period π and
// suspects a peer whose next heartbeat hasn't arrived within a timeout τ,
// emitting SUSPECT (and RESTORE if the peer comes back).
//
// In the timed model, consecutive heartbeats from a live peer arrive at
// most π + (d'2 − d'1) apart, so τ_TA = π + (d'2−d'1) never false-suspects.
// Run unchanged in the clock model, send times wobble by ±ε on the
// sender's clock and arrival times by ±ε on the receiver's, so observed
// gaps stretch to π + (d2−d1) + 4ε: accuracy ("no false suspicions") is
// not closed under the P_ε perturbation, exactly like the TDMA example.
// The §7.1 fix is the same: strengthen the problem — add a 4ε margin to
// the timeout — and the clock model inherits accuracy, at the price of
// 4ε of detection latency. Experiment E15 measures both sides of that
// boundary and the detection-time cost.
package detector

import (
	"fmt"

	"psclock/internal/core"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Output action names.
const (
	// ActSuspect is emitted with the suspected node as payload.
	ActSuspect = "SUSPECT"
	// ActRestore is emitted when a suspected node's heartbeat returns.
	ActRestore = "RESTORE"
)

// Params configures the detector.
type Params struct {
	// Period is the heartbeat period π.
	Period simtime.Duration
	// Timeout is τ: a peer is suspected when its inter-heartbeat gap (as
	// measured on the local time source) exceeds this.
	Timeout simtime.Duration
	// Heartbeats bounds how many heartbeats each node sends (0 = forever);
	// tests and experiments use a bound so systems quiesce.
	Heartbeats int
}

// SafeTimeoutTA returns the smallest timeout that never false-suspects in
// the timed model: π + (d2−d1).
func SafeTimeoutTA(period simtime.Duration, bounds simtime.Interval) simtime.Duration {
	return period + bounds.Width()
}

// SafeTimeoutClock returns the smallest timeout that never false-suspects
// in the clock model: π + (d2−d1) + 4ε (±ε at the sender's send times,
// ±ε at the receiver's measurements).
func SafeTimeoutClock(period simtime.Duration, bounds simtime.Interval, eps simtime.Duration) simtime.Duration {
	return period + bounds.Width() + 4*eps
}

type (
	beatTimer  struct{}
	watchTimer struct {
		peer ta.NodeID
		gen  int
	}
)

// heartbeat is the message body; Seq keeps messages unique (§3).
type heartbeat struct {
	Seq int
}

// String implements fmt.Stringer.
func (h heartbeat) String() string { return fmt.Sprintf("hb(%d)", h.Seq) }

// Detector is the heartbeat failure detector for one node.
type Detector struct {
	p Params

	seq       int
	gen       map[ta.NodeID]int
	suspected map[ta.NodeID]bool
}

var _ core.Algorithm = (*Detector)(nil)

// New returns a detector with the given parameters.
func New(p Params) *Detector {
	if p.Period <= 0 || p.Timeout <= 0 {
		panic(fmt.Sprintf("detector: invalid params %+v", p))
	}
	return &Detector{p: p, gen: make(map[ta.NodeID]int), suspected: make(map[ta.NodeID]bool)}
}

// Factory adapts New to core.AlgorithmFactory.
func Factory(p Params) core.AlgorithmFactory {
	return func(ta.NodeID, int) core.Algorithm { return New(p) }
}

// Start implements core.Algorithm: begin beating and watching every peer.
func (d *Detector) Start(ctx core.Context) {
	d.beat(ctx)
	for j := 0; j < ctx.N(); j++ {
		peer := ta.NodeID(j)
		if peer == ctx.ID() {
			continue
		}
		ctx.SetTimer(ctx.Time().Add(d.p.Timeout), watchTimer{peer: peer, gen: 0})
	}
}

func (d *Detector) beat(ctx core.Context) {
	d.seq++
	for j := 0; j < ctx.N(); j++ {
		if ta.NodeID(j) != ctx.ID() {
			ctx.Send(ta.NodeID(j), heartbeat{Seq: d.seq})
		}
	}
	if d.p.Heartbeats == 0 || d.seq < d.p.Heartbeats {
		ctx.SetTimer(ctx.Time().Add(d.p.Period), beatTimer{})
	}
}

// OnInput implements core.Algorithm (no environment inputs).
func (d *Detector) OnInput(core.Context, string, any) {}

// OnMessage implements core.Algorithm: a heartbeat re-arms the peer's
// watch and clears any suspicion.
func (d *Detector) OnMessage(ctx core.Context, from ta.NodeID, body any) {
	if _, ok := body.(heartbeat); !ok {
		panic(fmt.Sprintf("detector: unexpected message %T", body))
	}
	d.gen[from]++
	if d.suspected[from] {
		d.suspected[from] = false
		ctx.Output(ActRestore, from)
	}
	ctx.SetTimer(ctx.Time().Add(d.p.Timeout), watchTimer{peer: from, gen: d.gen[from]})
}

// OnTimer implements core.Algorithm.
func (d *Detector) OnTimer(ctx core.Context, key any) {
	switch k := key.(type) {
	case beatTimer:
		d.beat(ctx)
	case watchTimer:
		if k.gen != d.gen[k.peer] || d.suspected[k.peer] {
			return // superseded by a later heartbeat
		}
		d.suspected[k.peer] = true
		ctx.Output(ActSuspect, k.peer)
	default:
		panic(fmt.Sprintf("detector: unknown timer %T", key))
	}
}

// Suspicion is one SUSPECT event extracted from a trace.
type Suspicion struct {
	By, Of ta.NodeID
	At     simtime.Time
}

// Suspicions extracts SUSPECT events from a trace.
func Suspicions(tr ta.Trace) []Suspicion {
	var out []Suspicion
	for _, e := range tr {
		if e.Action.Name == ActSuspect {
			out = append(out, Suspicion{By: e.Action.Node, Of: e.Action.Payload.(ta.NodeID), At: e.At})
		}
	}
	return out
}
