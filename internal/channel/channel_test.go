package channel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

const ms = simtime.Millisecond

func bounds() simtime.Interval { return simtime.NewInterval(1*ms, 3*ms) }

func send(body string) ta.Action {
	return ta.Action{Name: ta.NameSendMsg, Node: 0, Peer: 1, Kind: ta.KindOutput, Payload: ta.Msg{Body: body}}
}

func TestDelayPoliciesWithinBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	iv := bounds()
	policies := []DelayPolicy{MinDelay(), MaxDelay(), UniformDelay(), SpreadDelay(), BimodalDelay(0.3)}
	for _, p := range policies {
		for i := 0; i < 200; i++ {
			d := p.Delay(r, iv)
			if !iv.Contains(d) {
				t.Errorf("%s produced %v outside %v", p.Name(), d, iv)
			}
		}
	}
}

func TestDelayPolicyExtremes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	iv := bounds()
	if MinDelay().Delay(r, iv) != iv.Lo {
		t.Error("min != Lo")
	}
	if MaxDelay().Delay(r, iv) != iv.Hi {
		t.Error("max != Hi")
	}
	sp := SpreadDelay()
	a, b := sp.Delay(r, iv), sp.Delay(r, iv)
	if a == b {
		t.Error("spread did not alternate")
	}
	if UniformDelay().Delay(r, simtime.NewInterval(ms, ms)) != ms {
		t.Error("uniform on a point interval")
	}
}

func TestEdgeDeliversWithinBounds(t *testing.T) {
	e := New(0, 1, bounds(), UniformDelay(), 7)
	s := exec.New()
	s.Add(e)
	s.Connect(e.Matches, e)
	for i := 0; i < 50; i++ {
		s.Inject(send(string(rune('a' + i%26))))
		// Send at distinct times so message bodies needn't be unique here.
		if err := s.Run(s.Now().Add(500 * simtime.Microsecond)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	tr := s.Trace()
	delays, err := tr.MessageDelays(ta.NameSendMsg, ta.NameRecvMsg)
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 50 {
		t.Fatalf("delivered %d, want 50", len(delays))
	}
	for _, d := range delays {
		if !bounds().Contains(d) {
			t.Errorf("delay %v outside %v", d, bounds())
		}
	}
	if e.Delivered != 50 || e.InFlight() != 0 {
		t.Errorf("Delivered=%d InFlight=%d", e.Delivered, e.InFlight())
	}
}

func TestEdgeIgnoresForeignActions(t *testing.T) {
	e := New(0, 1, bounds(), MinDelay(), 1)
	if out := e.Deliver(0, ta.Action{Name: ta.NameSendMsg, Node: 1, Peer: 0, Payload: ta.Msg{Body: "x"}}); out != nil {
		t.Error("foreign direction handled")
	}
	if out := e.Deliver(0, ta.Action{Name: "READ", Node: 0}); out != nil {
		t.Error("non-message handled")
	}
	if e.InFlight() != 0 {
		t.Error("message queued")
	}
}

func TestEdgeReordersWithSpread(t *testing.T) {
	e := New(0, 1, bounds(), SpreadDelay(), 1)
	s := exec.New()
	s.Add(e)
	s.Connect(e.Matches, e)
	s.Inject(send("first"))  // spread: Hi = 3ms → arrives at 3ms
	s.Inject(send("second")) // spread: Lo = 1ms → arrives at 1ms
	if _, err := s.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	recvs := s.Trace().Named(ta.NameRecvMsg)
	if len(recvs) != 2 {
		t.Fatalf("recvs = %d", len(recvs))
	}
	if recvs[0].Action.Payload.(ta.Msg).Body != "second" {
		t.Errorf("expected reordering, got %v first", recvs[0].Action.Payload)
	}
}

func TestEdgeFIFO(t *testing.T) {
	e := New(0, 1, bounds(), SpreadDelay(), 1)
	e.FIFO = true
	s := exec.New()
	s.Add(e)
	s.Connect(e.Matches, e)
	s.Inject(send("first"))
	s.Inject(send("second"))
	if _, err := s.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	recvs := s.Trace().Named(ta.NameRecvMsg)
	if len(recvs) != 2 {
		t.Fatalf("recvs = %d", len(recvs))
	}
	if recvs[0].Action.Payload.(ta.Msg).Body != "first" {
		t.Errorf("FIFO violated: %v first", recvs[0].Action.Payload)
	}
	if recvs[0].At != recvs[1].At {
		t.Errorf("FIFO delay clamp: %v then %v, want equal", recvs[0].At, recvs[1].At)
	}
}

func TestClockEdgeInterface(t *testing.T) {
	e := NewClock(2, 3, bounds(), MinDelay(), 1)
	a := ta.Action{Name: ta.NameESendMsg, Node: 2, Peer: 3, Kind: ta.KindOutput,
		Payload: ta.TaggedMsg{Body: "m", SentClock: 5}}
	if !e.Matches(a) {
		t.Fatal("clock edge does not match ESENDMSG")
	}
	e.Deliver(0, a)
	due, ok := e.Due(0)
	if !ok || due != simtime.Time(ms) {
		t.Fatalf("due = %v, %v", due, ok)
	}
	out := e.Fire(due)
	if len(out) != 1 || out[0].Name != ta.NameERecvMsg || out[0].Node != 3 || out[0].Peer != 2 {
		t.Fatalf("out = %v", out)
	}
	tm, ok := out[0].Payload.(ta.TaggedMsg)
	if !ok || tm.SentClock != 5 {
		t.Fatalf("payload = %v", out[0].Payload)
	}
}

// brokenPolicy violates the bounds on purpose.
type brokenPolicy struct{}

func (brokenPolicy) Name() string { return "broken" }
func (brokenPolicy) Delay(*rand.Rand, simtime.Interval) simtime.Duration {
	return 100 * ms
}

func TestEdgeClampsBrokenPolicy(t *testing.T) {
	e := New(0, 1, bounds(), brokenPolicy{}, 1)
	e.Deliver(0, send("x"))
	due, ok := e.Due(0)
	if !ok || due != simtime.Time(3*ms) {
		t.Errorf("broken policy not clamped to d2: due=%v", due)
	}
}

func TestEdgeDeterminism(t *testing.T) {
	run := func() []string {
		e := New(0, 1, bounds(), UniformDelay(), 99)
		s := exec.New()
		s.Add(e)
		s.Connect(e.Matches, e)
		for i := 0; i < 20; i++ {
			s.Inject(send(string(rune('a' + i))))
			if err := s.Run(s.Now().Add(200 * simtime.Microsecond)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.RunQuiet(simtime.Time(simtime.Second)); err != nil {
			t.Fatal(err)
		}
		return s.Trace().Labels()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: whatever the seed, uniform delays stay in bounds and FIFO
// preserves per-link order.
func TestEdgeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		cnt := int(n%20) + 1
		e := New(0, 1, bounds(), UniformDelay(), seed)
		e.FIFO = true
		s := exec.New()
		s.Add(e)
		s.Connect(e.Matches, e)
		for i := 0; i < cnt; i++ {
			s.Inject(ta.Action{Name: ta.NameSendMsg, Node: 0, Peer: 1, Kind: ta.KindOutput,
				Payload: ta.Msg{Body: i}})
		}
		if _, err := s.RunQuiet(simtime.Time(simtime.Second)); err != nil {
			return false
		}
		recvs := s.Trace().Named(ta.NameRecvMsg)
		if len(recvs) != cnt {
			return false
		}
		for i, e := range recvs {
			if e.Action.Payload.(ta.Msg).Body.(int) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEdgeDrop(t *testing.T) {
	e := New(0, 1, bounds(), MinDelay(), 1)
	e.Drop = func(seq int, _ *rand.Rand) bool { return seq%2 == 0 }
	s := exec.New()
	s.Add(e)
	s.Connect(e.Matches, e)
	for i := 0; i < 6; i++ {
		s.Inject(ta.Action{Name: ta.NameSendMsg, Node: 0, Peer: 1, Kind: ta.KindOutput,
			Payload: ta.Msg{Body: i}})
	}
	if _, err := s.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	recvs := s.Trace().Named(ta.NameRecvMsg)
	if len(recvs) != 3 {
		t.Fatalf("delivered %d, want 3", len(recvs))
	}
	if e.Dropped != 3 {
		t.Errorf("Dropped = %d", e.Dropped)
	}
	// Odd ordinals survive.
	for i, r := range recvs {
		if r.Action.Payload.(ta.Msg).Body.(int) != 2*i+1 {
			t.Errorf("recv %d = %v", i, r.Action.Payload)
		}
	}
}
