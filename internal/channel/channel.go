// Package channel implements the edge automata of the paper's network
// substrate: E_{ij,[d1,d2]} (Figure 1) for the timed-automaton model and
// its renamed clock-model variant E^c_{ij,[d1,d2]} (§4.1) carrying
// clock-tagged messages.
//
// The paper's edge delivers each message nondeterministically at any real
// time in [t+d1, t+d2] and may reorder messages. Here that nondeterminism
// is resolved by a seeded DelayPolicy; the boundary adversaries (all-min,
// all-max, and spread, which maximizes reordering) are where the paper's
// bounds are tight.
package channel

import (
	"fmt"
	"math/rand"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// DelayPolicy resolves the per-message delay nondeterminism of the edge
// automaton: Delay must return a value inside iv.
type DelayPolicy interface {
	// Name describes the policy for reports.
	Name() string
	// Delay picks the next message's delay within iv using r.
	Delay(r *rand.Rand, iv simtime.Interval) simtime.Duration
}

type policyFunc struct {
	name string
	fn   func(r *rand.Rand, iv simtime.Interval) simtime.Duration
}

func (p policyFunc) Name() string { return p.name }
func (p policyFunc) Delay(r *rand.Rand, iv simtime.Interval) simtime.Duration {
	return p.fn(r, iv)
}

// MinDelay delivers every message at exactly d1.
func MinDelay() DelayPolicy {
	return policyFunc{name: "min", fn: func(_ *rand.Rand, iv simtime.Interval) simtime.Duration {
		return iv.Lo
	}}
}

// MaxDelay delivers every message at exactly d2.
func MaxDelay() DelayPolicy {
	return policyFunc{name: "max", fn: func(_ *rand.Rand, iv simtime.Interval) simtime.Duration {
		return iv.Hi
	}}
}

// UniformDelay picks delays uniformly in [d1, d2].
func UniformDelay() DelayPolicy {
	return policyFunc{name: "uniform", fn: func(r *rand.Rand, iv simtime.Interval) simtime.Duration {
		w := int64(iv.Width())
		if w == 0 {
			return iv.Lo
		}
		return iv.Lo + simtime.Duration(r.Int63n(w+1))
	}}
}

// SpreadDelay alternates between d1 and d2, the adversary that maximizes
// message reordering on a link.
func SpreadDelay() DelayPolicy {
	flip := false
	return policyFunc{name: "spread", fn: func(_ *rand.Rand, iv simtime.Interval) simtime.Duration {
		flip = !flip
		if flip {
			return iv.Hi
		}
		return iv.Lo
	}}
}

// BimodalDelay picks d1 with probability p and d2 otherwise: a bursty link.
func BimodalDelay(p float64) DelayPolicy {
	return policyFunc{name: fmt.Sprintf("bimodal(%.2f)", p), fn: func(r *rand.Rand, iv simtime.Interval) simtime.Duration {
		if r.Float64() < p {
			return iv.Lo
		}
		return iv.Hi
	}}
}

// pendingMsg is a message in flight.
type pendingMsg struct {
	deliverAt simtime.Time
	seq       int
	payload   any
}

// msgHeap orders in-flight messages by delivery time, then arrival order.
// It is a hand-rolled binary heap rather than container/heap: the standard
// interface moves every element through `any`, boxing one pendingMsg per
// Push and per Pop, and the edge's enqueue/dequeue is the per-message hot
// path of every model.
type msgHeap []pendingMsg

func msgLess(a, b pendingMsg) bool {
	if a.deliverAt != b.deliverAt {
		return a.deliverAt < b.deliverAt
	}
	return a.seq < b.seq
}

func (h *msgHeap) push(m pendingMsg) {
	q := append(*h, m)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *msgHeap) pop() pendingMsg {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = pendingMsg{} // drop the payload reference
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && msgLess(q[r], q[l]) {
			m = r
		}
		if !msgLess(q[m], q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*h = q
	return top
}

// Edge is the executable E_{ij,[d1,d2]} automaton. Its input is the send
// action for the link (SENDMSG in the TA model, ESENDMSG in the clock
// model) and its output the matching receive action. The zero value is not
// usable; construct with New or NewClock.
type Edge struct {
	name     string
	from, to ta.NodeID
	bounds   simtime.Interval
	policy   DelayPolicy
	rng      *rand.Rand
	sendName string
	recvName string
	// FIFO, when set, forbids reordering by never scheduling a delivery
	// before an earlier message's (footnote 4: the results hold for both).
	FIFO bool
	// Drop, when non-nil, is consulted per message (with its send ordinal
	// and the edge's seeded rng); true loses the message. The paper's
	// network is reliable — this is the faulty-channel adversary its §7.3
	// defers, used by experiment E12.
	Drop func(seq int, r *rand.Rand) bool
	// Dropped counts messages lost to Drop.
	Dropped int

	pending  msgHeap
	seq      int
	lastDue  simtime.Time
	nDropped int

	// Delivered counts messages handed to the receiver, for reports.
	Delivered int

	// out is the reusable Fire buffer; the executor copies returned slices
	// before the next call into this edge (see the ta.Automaton contract).
	out []ta.Action
}

var _ ta.Coalescable = (*Edge)(nil)

// New returns the TA-model edge for link from→to with the given delay
// bounds, delay policy, and seed.
func New(from, to ta.NodeID, bounds simtime.Interval, policy DelayPolicy, seed int64) *Edge {
	return &Edge{
		name:     fmt.Sprintf("edge(%v->%v)", from, to),
		from:     from,
		to:       to,
		bounds:   bounds,
		policy:   policy,
		rng:      rand.New(rand.NewSource(seed)),
		sendName: ta.NameSendMsg,
		recvName: ta.NameRecvMsg,
	}
}

// NewClock returns the clock-model edge E^c: identical behavior, but it
// carries (m, c) pairs on the renamed ESENDMSG/ERECVMSG interface (§4.1).
func NewClock(from, to ta.NodeID, bounds simtime.Interval, policy DelayPolicy, seed int64) *Edge {
	e := New(from, to, bounds, policy, seed)
	e.name = fmt.Sprintf("cedge(%v->%v)", from, to)
	e.sendName = ta.NameESendMsg
	e.recvName = ta.NameERecvMsg
	return e
}

// Name implements ta.Automaton.
func (e *Edge) Name() string { return e.name }

// From returns the link's sending endpoint.
func (e *Edge) From() ta.NodeID { return e.from }

// To returns the link's receiving endpoint.
func (e *Edge) To() ta.NodeID { return e.to }

// Init implements ta.Automaton.
func (e *Edge) Init() []ta.Action { return nil }

// Matches reports whether a is this edge's send action.
func (e *Edge) Matches(a ta.Action) bool {
	return a.Name == e.sendName && a.Node == e.from && a.Peer == e.to
}

// Deliver implements ta.Automaton: a send action puts the message in
// flight with a policy-chosen delay.
func (e *Edge) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if !e.Matches(a) {
		return nil
	}
	if e.Drop != nil && e.Drop(e.seq, e.rng) {
		e.seq++
		e.Dropped++
		return nil
	}
	d := e.policy.Delay(e.rng, e.bounds)
	if !e.bounds.Contains(d) {
		// A broken policy must not silently violate the link specification.
		d = e.bounds.Hi
		e.nDropped++
	}
	at := now.Add(d)
	if e.FIFO && at.Before(e.lastDue) {
		at = e.lastDue
	}
	e.lastDue = at
	e.pending.push(pendingMsg{deliverAt: at, seq: e.seq, payload: a.Payload})
	e.seq++
	return nil
}

// Due implements ta.Automaton: the ν precondition of Figure 1 — time may
// not pass beyond the earliest t+d2 … here beyond the already-chosen
// delivery instant.
func (e *Edge) Due(simtime.Time) (simtime.Time, bool) {
	if len(e.pending) == 0 {
		return 0, false
	}
	return e.pending[0].deliverAt, true
}

// Fire implements ta.Automaton: deliver every message whose time has come.
// Same-instant deliveries drain as one batch into the reused out slice.
func (e *Edge) Fire(now simtime.Time) []ta.Action {
	out := e.out[:0]
	for len(e.pending) > 0 && !e.pending[0].deliverAt.After(now) {
		m := e.pending.pop()
		e.Delivered++
		out = append(out, ta.Action{
			Name:    e.recvName,
			Node:    e.to,
			Peer:    e.from,
			Kind:    ta.KindOutput,
			Payload: m.payload,
		})
	}
	e.out = out
	return out
}

// NextInterest implements ta.Coalescable: every delivery is an observable
// event, so the edge's interest is exactly its Due and the executor never
// coalesces past a pending message.
func (e *Edge) NextInterest() simtime.Time {
	if len(e.pending) == 0 {
		return simtime.Never
	}
	return e.pending[0].deliverAt
}

// FastForward implements ta.Coalescable as a no-op: the edge declares
// every deadline observable, so there is never anything to skip.
func (e *Edge) FastForward(simtime.Time) {}

// InFlight returns the number of undelivered messages.
func (e *Edge) InFlight() int { return len(e.pending) }

// Bounds returns the edge's delay interval.
func (e *Edge) Bounds() simtime.Interval { return e.bounds }
