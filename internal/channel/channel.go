// Package channel implements the edge automata of the paper's network
// substrate: E_{ij,[d1,d2]} (Figure 1) for the timed-automaton model and
// its renamed clock-model variant E^c_{ij,[d1,d2]} (§4.1) carrying
// clock-tagged messages.
//
// The paper's edge delivers each message nondeterministically at any real
// time in [t+d1, t+d2] and may reorder messages. Here that nondeterminism
// is resolved by a seeded DelayPolicy; the boundary adversaries (all-min,
// all-max, and spread, which maximizes reordering) are where the paper's
// bounds are tight.
package channel

import (
	"container/heap"
	"fmt"
	"math/rand"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// DelayPolicy resolves the per-message delay nondeterminism of the edge
// automaton: Delay must return a value inside iv.
type DelayPolicy interface {
	// Name describes the policy for reports.
	Name() string
	// Delay picks the next message's delay within iv using r.
	Delay(r *rand.Rand, iv simtime.Interval) simtime.Duration
}

type policyFunc struct {
	name string
	fn   func(r *rand.Rand, iv simtime.Interval) simtime.Duration
}

func (p policyFunc) Name() string { return p.name }
func (p policyFunc) Delay(r *rand.Rand, iv simtime.Interval) simtime.Duration {
	return p.fn(r, iv)
}

// MinDelay delivers every message at exactly d1.
func MinDelay() DelayPolicy {
	return policyFunc{name: "min", fn: func(_ *rand.Rand, iv simtime.Interval) simtime.Duration {
		return iv.Lo
	}}
}

// MaxDelay delivers every message at exactly d2.
func MaxDelay() DelayPolicy {
	return policyFunc{name: "max", fn: func(_ *rand.Rand, iv simtime.Interval) simtime.Duration {
		return iv.Hi
	}}
}

// UniformDelay picks delays uniformly in [d1, d2].
func UniformDelay() DelayPolicy {
	return policyFunc{name: "uniform", fn: func(r *rand.Rand, iv simtime.Interval) simtime.Duration {
		w := int64(iv.Width())
		if w == 0 {
			return iv.Lo
		}
		return iv.Lo + simtime.Duration(r.Int63n(w+1))
	}}
}

// SpreadDelay alternates between d1 and d2, the adversary that maximizes
// message reordering on a link.
func SpreadDelay() DelayPolicy {
	flip := false
	return policyFunc{name: "spread", fn: func(_ *rand.Rand, iv simtime.Interval) simtime.Duration {
		flip = !flip
		if flip {
			return iv.Hi
		}
		return iv.Lo
	}}
}

// BimodalDelay picks d1 with probability p and d2 otherwise: a bursty link.
func BimodalDelay(p float64) DelayPolicy {
	return policyFunc{name: fmt.Sprintf("bimodal(%.2f)", p), fn: func(r *rand.Rand, iv simtime.Interval) simtime.Duration {
		if r.Float64() < p {
			return iv.Lo
		}
		return iv.Hi
	}}
}

// pendingMsg is a message in flight.
type pendingMsg struct {
	deliverAt simtime.Time
	seq       int
	payload   any
}

// msgHeap orders in-flight messages by delivery time, then arrival order.
type msgHeap []pendingMsg

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].deliverAt != h[j].deliverAt {
		return h[i].deliverAt < h[j].deliverAt
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(pendingMsg)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Edge is the executable E_{ij,[d1,d2]} automaton. Its input is the send
// action for the link (SENDMSG in the TA model, ESENDMSG in the clock
// model) and its output the matching receive action. The zero value is not
// usable; construct with New or NewClock.
type Edge struct {
	name     string
	from, to ta.NodeID
	bounds   simtime.Interval
	policy   DelayPolicy
	rng      *rand.Rand
	sendName string
	recvName string
	// FIFO, when set, forbids reordering by never scheduling a delivery
	// before an earlier message's (footnote 4: the results hold for both).
	FIFO bool
	// Drop, when non-nil, is consulted per message (with its send ordinal
	// and the edge's seeded rng); true loses the message. The paper's
	// network is reliable — this is the faulty-channel adversary its §7.3
	// defers, used by experiment E12.
	Drop func(seq int, r *rand.Rand) bool
	// Dropped counts messages lost to Drop.
	Dropped int

	pending  msgHeap
	seq      int
	lastDue  simtime.Time
	nDropped int

	// Delivered counts messages handed to the receiver, for reports.
	Delivered int

	// out is the reusable Fire buffer; the executor copies returned slices
	// before the next call into this edge (see the ta.Automaton contract).
	out []ta.Action
}

var _ ta.Automaton = (*Edge)(nil)

// New returns the TA-model edge for link from→to with the given delay
// bounds, delay policy, and seed.
func New(from, to ta.NodeID, bounds simtime.Interval, policy DelayPolicy, seed int64) *Edge {
	return &Edge{
		name:     fmt.Sprintf("edge(%v->%v)", from, to),
		from:     from,
		to:       to,
		bounds:   bounds,
		policy:   policy,
		rng:      rand.New(rand.NewSource(seed)),
		sendName: ta.NameSendMsg,
		recvName: ta.NameRecvMsg,
	}
}

// NewClock returns the clock-model edge E^c: identical behavior, but it
// carries (m, c) pairs on the renamed ESENDMSG/ERECVMSG interface (§4.1).
func NewClock(from, to ta.NodeID, bounds simtime.Interval, policy DelayPolicy, seed int64) *Edge {
	e := New(from, to, bounds, policy, seed)
	e.name = fmt.Sprintf("cedge(%v->%v)", from, to)
	e.sendName = ta.NameESendMsg
	e.recvName = ta.NameERecvMsg
	return e
}

// Name implements ta.Automaton.
func (e *Edge) Name() string { return e.name }

// Init implements ta.Automaton.
func (e *Edge) Init() []ta.Action { return nil }

// Matches reports whether a is this edge's send action.
func (e *Edge) Matches(a ta.Action) bool {
	return a.Name == e.sendName && a.Node == e.from && a.Peer == e.to
}

// Deliver implements ta.Automaton: a send action puts the message in
// flight with a policy-chosen delay.
func (e *Edge) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if !e.Matches(a) {
		return nil
	}
	if e.Drop != nil && e.Drop(e.seq, e.rng) {
		e.seq++
		e.Dropped++
		return nil
	}
	d := e.policy.Delay(e.rng, e.bounds)
	if !e.bounds.Contains(d) {
		// A broken policy must not silently violate the link specification.
		d = e.bounds.Hi
		e.nDropped++
	}
	at := now.Add(d)
	if e.FIFO && at.Before(e.lastDue) {
		at = e.lastDue
	}
	e.lastDue = at
	heap.Push(&e.pending, pendingMsg{deliverAt: at, seq: e.seq, payload: a.Payload})
	e.seq++
	return nil
}

// Due implements ta.Automaton: the ν precondition of Figure 1 — time may
// not pass beyond the earliest t+d2 … here beyond the already-chosen
// delivery instant.
func (e *Edge) Due(simtime.Time) (simtime.Time, bool) {
	if len(e.pending) == 0 {
		return 0, false
	}
	return e.pending[0].deliverAt, true
}

// Fire implements ta.Automaton: deliver every message whose time has come.
func (e *Edge) Fire(now simtime.Time) []ta.Action {
	out := e.out[:0]
	for len(e.pending) > 0 && !e.pending[0].deliverAt.After(now) {
		m := heap.Pop(&e.pending).(pendingMsg)
		e.Delivered++
		out = append(out, ta.Action{
			Name:    e.recvName,
			Node:    e.to,
			Peer:    e.from,
			Kind:    ta.KindOutput,
			Payload: m.payload,
		})
	}
	e.out = out
	return out
}

// InFlight returns the number of undelivered messages.
func (e *Edge) InFlight() int { return len(e.pending) }

// Bounds returns the edge's delay interval.
func (e *Edge) Bounds() simtime.Interval { return e.bounds }
