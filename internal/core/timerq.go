package core

import "psclock/internal/simtime"

// TimerEntry is one pending SetTimer registration: a deadline plus the
// algorithm's opaque key, ordered by (At, registration).
type TimerEntry struct {
	// At is the deadline the callback was requested for.
	At simtime.Time
	// Key is the opaque value handed back to Algorithm.OnTimer.
	Key any

	seq int
}

// TimerQueue is the (deadline, registration)-ordered store of pending
// SetTimer registrations. It is the runtime-agnostic half of the timer
// contract of Context.SetTimer: both the simulator's engine (this package)
// and the wall-clock runtime (internal/live) drain the same queue, so an
// algorithm's timers fire in the same (at, seq) order in both worlds.
//
// The heap is hand-rolled rather than container/heap because SetTimer and
// timer firing are the per-callback hot path of every node: the
// heap.Interface indirection boxes each entry into an interface value on
// both Push and Pop, which showed up as two heap allocations per timer in
// the executor-throughput profile. The zero TimerQueue is ready to use.
type TimerQueue struct {
	h   []TimerEntry
	seq int
}

func timerLess(a, b TimerEntry) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// Push registers a timer at deadline `at` with the given key. Entries with
// equal deadlines pop in registration order.
func (q *TimerQueue) Push(at simtime.Time, key any) {
	q.h = append(q.h, TimerEntry{At: at, Key: key, seq: q.seq})
	q.seq++
	s := q.h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !timerLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// Len returns the number of pending registrations.
func (q *TimerQueue) Len() int { return len(q.h) }

// Next returns the earliest pending deadline without removing it.
func (q *TimerQueue) Next() (simtime.Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest entry. It panics on an empty queue;
// callers gate on Len or Next.
func (q *TimerQueue) Pop() TimerEntry {
	s := q.h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = TimerEntry{} // drop the key reference
	s = s[:n]
	q.h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && timerLess(s[r], s[l]) {
			m = r
		}
		if !timerLess(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}
