// Package core implements the paper's primary contribution: the
// transformations that take a distributed algorithm written against perfect
// real time (the timed-automaton programming model of §3) and run it,
// unchanged, in progressively more realistic systems:
//
//   - C(A, ε) — the clock-automaton wrapper of Definition 4.1, which feeds
//     the algorithm its node's ε-accurate clock instead of real time,
//     together with the send buffer S_ij,ε and receive buffer R_ji,ε of
//     Figure 2 that tag outgoing messages with the sending clock and hold
//     incoming messages until the local clock reaches the tag. By
//     Theorem 4.7 the resulting system solves P_ε on links [d1, d2]
//     whenever the original solves P on links [max(d1−2ε,0), d2+2ε].
//
//   - M(A^c, ε, ℓ) — the MMT wrapper of Definition 5.1, which adds finite
//     step time: the node acts only at step opportunities at most ℓ apart,
//     learns the clock only through discrete TICK(c) events, simulates the
//     clock automaton by catching up at every step, and drains outputs one
//     per step through a pending queue. By Theorems 5.1/5.2 the resulting
//     system solves (P_ε)^(kℓ+2ε+3ℓ).
//
// Algorithms implement the Algorithm interface once; the builders in
// system.go assemble the full distributed systems D_T, D_C and D_M.
package core

import (
	"fmt"
	"sort"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Context is the runtime interface an algorithm sees during a callback. In
// the timed-automaton model Time is real time; in the clock and MMT models
// it is the node's clock — the algorithm cannot tell the difference, which
// is exactly the ε-time-independence requirement of Definition 2.6.
//
// Context methods are only valid for the duration of the callback.
type Context interface {
	// Time returns the current time as visible to the algorithm.
	Time() simtime.Time
	// ID returns this node's identity.
	ID() ta.NodeID
	// N returns the number of nodes in the system.
	N() int
	// Send transmits body to node `to` over the link (SENDMSG). Sends to
	// the node itself travel over the self-loop edge e_ii like any other.
	// Sending to a node with no edge e_{i,to} panics: the §3.1 signature
	// restriction (all communication uses the edges in E).
	Send(to ta.NodeID, body any)
	// Broadcast sends body to every neighbor (every j with e_{i,j} ∈ E);
	// on the default complete graph that is every node including the
	// sender.
	Broadcast(body any)
	// Neighbors returns the nodes this node has outgoing edges to, in
	// ascending order. The returned slice is the caller's to keep.
	Neighbors() []ta.NodeID
	// Output performs a visible output action (e.g. a RETURN or ACK
	// response to the environment).
	Output(name string, payload any)
	// SetTimer requests an OnTimer(key) callback when Time() reaches at.
	// Callbacks arrive in (at, registration) order; in the clock and MMT
	// models the observed Time() may exceed at (clock jumps and step
	// granularity can pass a value without stopping on it, §1, §5).
	SetTimer(at simtime.Time, key any)
}

// Algorithm is a distributed algorithm written in the simple programming
// model of §3: full access to (what it believes is) the current time, and
// point-to-point messaging. Implementations must be deterministic and must
// interact with the world only through the Context.
type Algorithm interface {
	// Start runs once at time zero.
	Start(ctx Context)
	// OnInput handles an environment invocation at this node.
	OnInput(ctx Context, name string, payload any)
	// OnMessage handles a message delivered from node `from`.
	OnMessage(ctx Context, from ta.NodeID, body any)
	// OnTimer handles a timer previously registered with SetTimer.
	OnTimer(ctx Context, key any)
}

// AlgorithmFactory builds the algorithm instance for each node: the mapping
// A assigning an automaton to every node of the graph (§3.3).
type AlgorithmFactory func(id ta.NodeID, n int) Algorithm

// engine drives one Algorithm synchronously: the enclosing model adapter
// (timed node, clock node, or MMT wrapper) tells it what time it is and
// what arrived, and collects the actions the algorithm performed. The
// engine implements Context during callbacks.
type engine struct {
	id  ta.NodeID
	n   int
	alg Algorithm

	// neighbors restricts the outgoing edges (nil means the complete
	// graph including the self-loop).
	neighbors []ta.NodeID

	timers TimerQueue

	// last is the high-water mark of observed time, keeping the
	// algorithm's view monotone across catch-ups.
	last simtime.Time

	// callback state. out is the per-callback action buffer and acc the
	// per-advance accumulation buffer; both are reused across calls, so a
	// returned slice is valid only until the next call into the engine —
	// every adapter copies it out immediately (see appendActs and the
	// emit/pend methods).
	now simtime.Time
	out []stamped
	acc []stamped
}

var _ Context = (*engine)(nil)

func newEngine(id ta.NodeID, n int, alg Algorithm) *engine {
	return &engine{id: id, n: n, alg: alg}
}

// Context implementation.

func (e *engine) Time() simtime.Time { return e.now }
func (e *engine) ID() ta.NodeID      { return e.id }
func (e *engine) N() int             { return e.n }

func (e *engine) restrict(ns []ta.NodeID) {
	sorted := make([]ta.NodeID, len(ns))
	copy(sorted, ns)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	e.neighbors = sorted
}

func (e *engine) isNeighbor(to ta.NodeID) bool {
	if e.neighbors == nil {
		return to >= 0 && int(to) < e.n
	}
	for _, nb := range e.neighbors {
		if nb == to {
			return true
		}
	}
	return false
}

func (e *engine) Neighbors() []ta.NodeID {
	if e.neighbors != nil {
		out := make([]ta.NodeID, len(e.neighbors))
		copy(out, e.neighbors)
		return out
	}
	out := make([]ta.NodeID, e.n)
	for i := range out {
		out[i] = ta.NodeID(i)
	}
	return out
}

func (e *engine) Send(to ta.NodeID, body any) {
	if !e.isNeighbor(to) {
		panic(fmt.Sprintf("core: node %v sent to %v with no edge e_{%v,%v} (§3.1 signature restriction)", e.id, to, e.id, to))
	}
	e.out = append(e.out, stamped{at: e.now, act: ta.Action{
		Name:    ta.NameSendMsg,
		Node:    e.id,
		Peer:    to,
		Kind:    ta.KindOutput,
		Payload: ta.Msg{Body: body},
	}})
}

func (e *engine) Broadcast(body any) {
	// Iterate the neighbor set directly: Neighbors() copies, and a
	// broadcast per operation made that copy a measurable share of the
	// executor's allocations.
	if e.neighbors != nil {
		for _, j := range e.neighbors {
			e.Send(j, body)
		}
		return
	}
	for j := 0; j < e.n; j++ {
		e.Send(ta.NodeID(j), body)
	}
}

func (e *engine) Output(name string, payload any) {
	e.out = append(e.out, stamped{at: e.now, act: ta.Action{
		Name:    name,
		Node:    e.id,
		Peer:    ta.NoNode,
		Kind:    ta.KindOutput,
		Payload: payload,
	}})
}

func (e *engine) SetTimer(at simtime.Time, key any) {
	e.timers.Push(at, key)
}

// run invokes fn with the context set to time t and returns the actions the
// callback performed. The returned slice is the engine's reusable buffer:
// it is valid only until the next call into the engine.
func (e *engine) run(t simtime.Time, fn func()) []stamped {
	if t.Before(e.last) {
		t = e.last
	}
	e.last = t
	e.now = t
	e.out = e.out[:0]
	fn()
	return e.out
}

// start delivers the Start callback at time t.
func (e *engine) start(t simtime.Time) []stamped {
	return e.run(t, func() { e.alg.Start(e) })
}

// input delivers an environment invocation at time t.
func (e *engine) input(t simtime.Time, name string, payload any) []stamped {
	return e.run(t, func() { e.alg.OnInput(e, name, payload) })
}

// message delivers a network message at time t.
func (e *engine) message(t simtime.Time, from ta.NodeID, body any) []stamped {
	return e.run(t, func() { e.alg.OnMessage(e, from, body) })
}

// nextTimer returns the earliest pending timer deadline.
func (e *engine) nextTimer() (simtime.Time, bool) {
	return e.timers.Next()
}

// advance fires, in (deadline, registration) order, every timer with
// deadline ≤ t. Each callback observes Time() equal to its own deadline
// (clamped monotone): even when the enclosing model reaches the deadline
// late — a steep clock segment stepping over the value, or an MMT catch-up
// replaying a whole fragment — the simulated clock automaton performed the
// action exactly at its scheduled clock value, and the tags on any messages
// it sends must say so (Definition 5.1's frag semantics). A callback may
// register further timers with deadline ≤ t; those fire in the same
// advance. It returns the actions performed, in the engine's reusable
// accumulation buffer — valid only until the next advance.
func (e *engine) advance(t simtime.Time) []stamped {
	e.acc = e.acc[:0]
	for {
		at, ok := e.timers.Next()
		if !ok || at.After(t) {
			break
		}
		entry := e.timers.Pop()
		e.acc = append(e.acc, e.run(entry.At, func() { e.alg.OnTimer(e, entry.Key) })...)
	}
	return e.acc
}
