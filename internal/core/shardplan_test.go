package core

import (
	"fmt"
	"strings"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func TestBalancedBlocksUniformMatchesClassic(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{8, 4}, {5, 2}, {9, 3}, {4, 4}, {7, 5}} {
		w := make([]int, tc.n)
		for i := range w {
			w[i] = 2
		}
		got := balancedBlocks(w, tc.s)
		for i, b := range got {
			if want := i * tc.s / tc.n; b != want {
				t.Errorf("n=%d s=%d: node %d in block %d, classic partition says %d", tc.n, tc.s, i, b, want)
			}
		}
	}
}

func TestBalancedBlocksContiguousNonEmpty(t *testing.T) {
	w := []int{10, 1, 1, 1, 1, 1, 1, 10}
	const s = 4
	got := balancedBlocks(w, s)
	seen := make([]int, s)
	prev := 0
	for i, b := range got {
		if b < prev || b > prev+1 || b >= s {
			t.Fatalf("non-contiguous assignment at node %d: %v", i, got)
		}
		prev = b
		seen[b]++
	}
	for b, c := range seen {
		if c == 0 {
			t.Fatalf("block %d empty: %v", b, got)
		}
	}
	// The heavy endpoints should not share a block with the whole middle:
	// node 0 alone already holds its proportional share.
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("heavy node 0 should occupy block 0 alone: %v", got)
	}
}

// TestShardPlanPerEdgeLookahead builds a heterogeneous-delay system and
// checks that sharding still activates and traces stay identical to the
// sequential build — the per-pair lookahead matrix must be consistent with
// the actual edge delays for this to hold.
func TestShardPlanPerEdgeLookahead(t *testing.T) {
	cfg := Config{
		N:      6,
		Bounds: simtime.NewInterval(1*ms, 4*ms),
		EdgeBounds: func(from, to int) simtime.Interval {
			// Slow links between far-apart nodes, fast links between
			// neighbors: the planner should give distant shard pairs the
			// larger d1.
			gap := from - to
			if gap < 0 {
				gap = -gap
			}
			lo := simtime.Duration(1+gap) * ms
			return simtime.NewInterval(lo, 3*lo)
		},
		Seed: 42,
	}
	run := func(shards int) string {
		c := cfg
		c.Shards = shards
		net := BuildTimed(c, relayFactory(2*ms))
		for i := 0; i < c.N; i++ {
			net.Invoke(ta.NodeID(i), "BCAST", i*10)
			net.Invoke(ta.NodeID(i), "GO", i)
		}
		if err := net.Sys.Run(simtime.Time(200 * ms)); err != nil {
			t.Fatalf("run(shards=%d): %v", shards, err)
		}
		if shards > 1 && !net.Sys.Sharded() {
			t.Fatalf("sharding fell back: %s", net.Sys.ShardFallbackReason())
		}
		var sb strings.Builder
		for _, e := range net.Sys.Trace() {
			fmt.Fprintf(&sb, "%s|%d|%d|%d|%s\n", e.Action.Label(), e.Action.Kind, e.At, e.Seq, e.Src)
		}
		return sb.String()
	}
	seq := run(-1)
	if seq == "" {
		t.Fatal("sequential run produced no events")
	}
	for _, s := range []int{2, 3} {
		if got := run(s); got != seq {
			t.Fatalf("%d-sharded trace differs from sequential", s)
		}
	}
}
