package core

import (
	"testing"

	"psclock/internal/clock"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func TestCrashedAutomatonStopsAtTime(t *testing.T) {
	net := BuildTimed(cfg2(), relayFactory(5*ms))
	w, err := CrashNode(net, 0, simtime.Time(3*ms))
	if err != nil {
		t.Fatal(err)
	}
	net.Invoke(0, "GO", "x") // DONE would fire at 5ms, after the crash
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	if got := net.Sys.Trace().Named("DONE"); len(got) != 0 {
		t.Errorf("crashed node produced DONE: %v", got)
	}
	if !w.Crashed {
		t.Error("wrapper not marked crashed")
	}
}

func TestCrashedAutomatonWorksBeforeCrash(t *testing.T) {
	net := BuildTimed(cfg2(), relayFactory(2*ms))
	if _, err := CrashNode(net, 0, simtime.Time(10*ms)); err != nil {
		t.Fatal(err)
	}
	net.Invoke(0, "GO", "x") // DONE at 2ms, before the crash
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	if got := net.Sys.Trace().Named("DONE"); len(got) != 1 {
		t.Errorf("pre-crash work lost: %v", got)
	}
}

func TestCrashAtZero(t *testing.T) {
	net := BuildTimed(cfg2(), relayFactory(ms))
	if _, err := CrashNode(net, 1, 0); err != nil {
		t.Fatal(err)
	}
	net.Invoke(0, "FWD", "m") // node 1 should never GOT
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	if got := net.Sys.Trace().Named("GOT"); len(got) != 0 {
		t.Errorf("node crashed at 0 still handled input: %v", got)
	}
}

func TestCrashNodeBadID(t *testing.T) {
	net := BuildTimed(cfg2(), relayFactory(ms))
	if _, err := CrashNode(net, 99, 0); err == nil {
		t.Error("bad node id accepted")
	}
}

func TestCrashNodeOnClockedAndMMT(t *testing.T) {
	c := cfg2()
	c.Clocks = clock.DriftFactory(200*us, 3)
	net := BuildClocked(c, relayFactory(5*ms))
	if _, err := CrashNode(net, 0, simtime.Time(ms)); err != nil {
		t.Fatal(err)
	}
	net.Invoke(0, "GO", nil)
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	if got := net.Sys.Trace().Named("DONE"); len(got) != 0 {
		t.Errorf("crashed clock node fired: %v", got)
	}

	m := cfg2()
	m.Ell = 100 * us
	mnet := BuildMMT(m, relayFactory(5*ms))
	if _, err := CrashNode(mnet, 0, simtime.Time(ms)); err != nil {
		t.Fatal(err)
	}
	mnet.Invoke(0, "GO", nil)
	if err := mnet.Sys.Run(simtime.Time(20 * ms)); err != nil {
		t.Fatal(err)
	}
	if got := mnet.Sys.Trace().Named("DONE"); len(got) != 0 {
		t.Errorf("crashed MMT node fired: %v", got)
	}
}

func TestCrashDueWakesAtCrashTime(t *testing.T) {
	// Even with no inner deadline, the wrapper must report the crash time
	// as a deadline so Crashed flips punctually; and after the crash it
	// must report none.
	inner := &relay{wait: simtime.Forever}
	node := NewTimedNode(0, 1, inner)
	w := WithCrash(node, simtime.Time(5*ms))
	w.Init()
	due, ok := w.Due(0)
	if !ok || due != simtime.Time(5*ms) {
		t.Errorf("due = %v, %v; want crash time", due, ok)
	}
	if w.Fire(simtime.Time(5*ms)) != nil {
		t.Error("crashed fire produced actions")
	}
	if _, ok := w.Due(simtime.Time(6 * ms)); ok {
		t.Error("crashed automaton still has deadlines")
	}
	if out := w.Deliver(simtime.Time(6*ms), ta.Action{Name: "GO", Node: 0, Kind: ta.KindInput}); out != nil {
		t.Error("crashed automaton handled input")
	}
}
