package core

import (
	"testing"

	"psclock/internal/clock"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func TestSendBufferTagsWithClock(t *testing.T) {
	sb := NewSendBuffer(0, 1, clock.Fast(ms))
	a := ta.Action{Name: ta.NameSendMsg, Node: 0, Peer: 1, Kind: ta.KindOutput, Payload: ta.Msg{Body: "m"}}
	out := sb.Deliver(simtime.Time(10*ms), a)
	if len(out) != 1 || out[0].Name != ta.NameESendMsg {
		t.Fatalf("out = %v", out)
	}
	tm := out[0].Payload.(ta.TaggedMsg)
	if tm.SentClock != simtime.Time(11*ms) { // fast clock: now + ε
		t.Errorf("tag = %v, want 11ms", tm.SentClock)
	}
	if sb.Deliver(0, ta.Action{Name: "OTHER"}) != nil {
		t.Error("foreign action handled")
	}
	if _, ok := sb.Due(0); ok {
		t.Error("send buffer has deadlines")
	}
}

func TestRecvBufferLiteralSemantics(t *testing.T) {
	rb := NewRecvBuffer(1, 0, clock.Slow(ms), "XRECVMSG")
	in := func(body string, tag simtime.Time) ta.Action {
		return ta.Action{Name: "XRECVMSG", Node: 0, Peer: 1, Kind: ta.KindInput,
			Payload: ta.TaggedMsg{Body: body, SentClock: tag}}
	}
	// At real 10ms the slow clock reads 9ms: a tag of 9.5ms must wait.
	if out := rb.Deliver(simtime.Time(10*ms), in("late", simtime.Time(9500*us))); out != nil {
		t.Fatalf("early release: %v", out)
	}
	if rb.Held() != 1 {
		t.Fatal("not held")
	}
	due, ok := rb.Due(simtime.Time(10 * ms))
	if !ok || due != simtime.Time(10500*us) { // clock reaches 9.5ms at real 10.5ms
		t.Fatalf("due = %v %v", due, ok)
	}
	// A second message with a smaller tag queues behind (head of line).
	if out := rb.Deliver(simtime.Time(10100*us), in("behind", simtime.Time(9*ms))); out != nil {
		t.Fatalf("queue jumped: %v", out)
	}
	out := rb.Fire(due)
	if len(out) != 2 {
		t.Fatalf("released %d, want both (front unblocks successor)", len(out))
	}
	if out[0].Payload.(ta.TaggedMsg).Body != "late" || out[1].Payload.(ta.TaggedMsg).Body != "behind" {
		t.Errorf("order = %v", out)
	}
	if rb.Held() != 0 {
		t.Error("queue not drained")
	}
}
