package core_test

import (
	"testing"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/exec"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

const (
	extMS = simtime.Millisecond
	extUS = simtime.Microsecond
)

// TestLiteralBuffersEquivalent assembles the paper's literal composition —
// nodes with buffering disabled, edges renamed to a raw interface, and the
// standalone R_ji,ε automata of Figure 2 between them — and checks it
// produces exactly the same visible behavior as the folded implementation
// inside ClockNode.
func TestLiteralBuffersEquivalent(t *testing.T) {
	const n = 2
	eps := 500 * extUS
	bounds := simtime.NewInterval(100*extUS, 300*extUS) // d1 < 2ε: buffering active
	p := register.Params{C: 200 * extUS, Delta: 10 * extUS, D2: bounds.Hi + 2*eps, Epsilon: eps}
	w := workload.Config{Ops: 12, Think: simtime.NewInterval(0, extMS), WriteRatio: 0.5, Seed: 4, Stagger: 200 * extUS}

	// Reference: the standard folded build.
	refCfg := core.Config{N: n, Bounds: bounds, Seed: 6, Clocks: clock.SpreadFactory(eps)}
	ref := core.BuildClocked(refCfg, register.Factory(register.NewS, p))
	workload.Attach(ref, w)
	if _, err := ref.Sys.RunQuiet(simtime.Time(10 * simtime.Second)); err != nil {
		t.Fatal(err)
	}
	refBuffered := 0
	for _, node := range ref.Clocked {
		b, _, _ := node.BufferStats()
		refBuffered += b
	}
	if refBuffered == 0 {
		t.Fatal("reference run exercised no buffering; test configuration is too tame")
	}

	// Literal: nodes with internal buffering off, edges renamed to
	// XRECVMSG, standalone R automata in between.
	s := exec.New()
	lit := &core.Net{Sys: s, N: n}
	clocks := clock.SpreadFactory(eps)
	models := make([]clock.Model, n)
	for i := 0; i < n; i++ {
		models[i] = clocks(i)
		node := core.NewClockNode(ta.NodeID(i), n, register.NewS(p), models[i])
		node.DisableBuffering()
		s.Add(node)
		s.Connect(node.Matches, node)
		lit.Clocked = append(lit.Clocked, node)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			e := channel.NewClock(ta.NodeID(i), ta.NodeID(j), bounds, channel.UniformDelay(), int64(6*1_000_003+(i*n+j)*7919+17))
			renamed := ta.Rename(e, e.Name(), nil, func(a ta.Action) ta.Action {
				if a.Name == ta.NameERecvMsg {
					a.Name = "XRECVMSG"
				}
				return a
			})
			s.Add(renamed)
			s.Connect(e.Matches, renamed)

			rb := core.NewRecvBuffer(ta.NodeID(i), ta.NodeID(j), models[j], "XRECVMSG")
			s.Add(rb)
			s.Connect(rb.Matches, rb)
		}
	}
	s.Hide(func(a ta.Action) bool { return a.IsMessage() || a.Name == "XRECVMSG" })
	workload.Attach(lit, w)
	if _, err := s.RunQuiet(simtime.Time(10 * simtime.Second)); err != nil {
		t.Fatal(err)
	}

	refVis := ref.Sys.Trace().Visible()
	litVis := s.Trace().Visible()
	if len(refVis) != len(litVis) {
		t.Fatalf("visible lengths differ: %d vs %d", len(refVis), len(litVis))
	}
	for i := range refVis {
		if refVis[i].String() != litVis[i].String() {
			t.Fatalf("event %d: folded %q vs literal %q", i, refVis[i].String(), litVis[i].String())
		}
	}
}
