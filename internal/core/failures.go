package core

import (
	"fmt"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// The paper explicitly defers failures (§1: "we do not consider failures.
// However, it appears that the results will extend to cases involving
// faulty nodes and also faulty message channels", citing [17]). This file
// provides the fault adversaries the library uses to *explore* that
// deferral empirically (experiment E12): a crash-stop wrapper for any
// automaton, applied at a chosen real time.
//
// Two observations the experiments make concrete:
//
//   - Algorithm S never waits for peer replies (acks are timer-driven), so
//     crash-stop failures of nodes that are not invoking operations leave
//     the remaining nodes' histories linearizable.
//   - A *lossy link* that drops an UPDATE leaves replicas divergent
//     forever, violating linearizability — which is exactly why the
//     fault-tolerant extension needs the machinery of [17] rather than
//     being free.

// CrashedAutomaton wraps an automaton so that it halts (accepts no inputs,
// fires no actions) from a given real time onward: crash-stop failure.
type CrashedAutomaton struct {
	inner ta.Automaton
	at    simtime.Time

	// Crashed reports whether the crash time has been reached.
	Crashed bool
}

var _ ta.Automaton = (*CrashedAutomaton)(nil)

// WithCrash wraps a so it crash-stops at time at.
func WithCrash(a ta.Automaton, at simtime.Time) *CrashedAutomaton {
	return &CrashedAutomaton{inner: a, at: at}
}

// Name implements ta.Automaton.
func (c *CrashedAutomaton) Name() string { return c.inner.Name() }

// Init implements ta.Automaton.
func (c *CrashedAutomaton) Init() []ta.Action {
	if c.at == 0 {
		c.Crashed = true
		return nil
	}
	return c.inner.Init()
}

func (c *CrashedAutomaton) check(now simtime.Time) bool {
	if !c.Crashed && !now.Before(c.at) {
		c.Crashed = true
	}
	return c.Crashed
}

// Deliver implements ta.Automaton: inputs are dropped after the crash.
func (c *CrashedAutomaton) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if c.check(now) {
		return nil
	}
	return c.inner.Deliver(now, a)
}

// Due implements ta.Automaton: a crashed automaton places no constraints
// on time passage; an alive one must additionally wake at its crash time
// so the crash takes effect punctually.
func (c *CrashedAutomaton) Due(now simtime.Time) (simtime.Time, bool) {
	if c.check(now) {
		return 0, false
	}
	due, ok := c.inner.Due(now)
	if !ok || c.at.Before(due) {
		return c.at, true
	}
	return due, true
}

// Fire implements ta.Automaton.
func (c *CrashedAutomaton) Fire(now simtime.Time) []ta.Action {
	if c.check(now) {
		return nil
	}
	return c.inner.Fire(now)
}

// CrashNode replaces node id's automaton in the net with a crash-stop
// wrapper taking effect at the given time. It must be called before the
// system runs. It returns the wrapper for inspection.
func CrashNode(net *Net, id ta.NodeID, at simtime.Time) (*CrashedAutomaton, error) {
	find := func() (ta.Automaton, func(*CrashedAutomaton)) {
		switch {
		case net.Timed != nil:
			n := net.Timed[id]
			return n, func(c *CrashedAutomaton) { net.Sys.Replace(n.Name(), c) }
		case net.Clocked != nil:
			n := net.Clocked[id]
			return n, func(c *CrashedAutomaton) { net.Sys.Replace(n.Name(), c) }
		default:
			n := net.MMT[id]
			return n, func(c *CrashedAutomaton) { net.Sys.Replace(n.Name(), c) }
		}
	}
	if int(id) < 0 || int(id) >= net.N {
		return nil, fmt.Errorf("core: no node %v", id)
	}
	inner, replace := find()
	w := WithCrash(inner, at)
	replace(w)
	return w, nil
}
