package core

import (
	"fmt"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// clockInner is the clock-value-driven composite A^c_{i,ε} of §4.2: the
// wrapped algorithm C(A_i, ε) together with the send buffers S_ij,ε and
// receive buffers R_ji,ε of Figure 2, with the SENDMSG/RECVMSG interface
// between them hidden inside.
//
// The composite is ε-time independent by construction (Definition 2.6): it
// is driven exclusively by clock values, never by real time. Two different
// outer adapters drive it: ClockNode (clock model, §4), which converts
// between real time and clock time using the node's clock.Model, and
// MMTNode (MMT model, §5), which drives it by the last TICK value during
// catch-up.
//
// The send buffer's behavior — tag each outgoing message with the clock
// value at which it was sent, before any clock passage (the "c = clock"
// precondition of Figure 2) — is realized by tagging with the stamped
// emission time. The receive buffer is literal: one FIFO queue per incoming
// edge whose front is deliverable only once the local clock reaches its
// tag.
type clockInner struct {
	id  ta.NodeID
	n   int
	eng *engine

	// queues[j] is R_ji,ε's queue q_ji, in arrival order. Only the front is
	// ever inspected (head-of-line blocking, exactly as in Figure 2).
	queues map[ta.NodeID][]ta.TaggedMsg

	// noBuffer disables the receive buffer (the §7.2 ablation): messages
	// are delivered immediately regardless of their tag. With d1 ≥ 2ε this
	// changes nothing; with d1 < 2ε it breaks the simulation, which
	// experiment E9 demonstrates.
	noBuffer bool

	// buffered / heldMax track how much work the receive buffer actually
	// did, for experiment E7.
	buffered     int
	received     int
	heldClockMax simtime.Duration

	// acc is the reusable output buffer: every public method returns a
	// slice of it, valid only until the next call into the composite. The
	// outer adapters (ClockNode.emit, MMTNode.pend) copy it out
	// immediately.
	acc []stamped
}

func newClockInner(id ta.NodeID, n int, alg Algorithm, noBuffer bool) *clockInner {
	return &clockInner{
		id:       id,
		n:        n,
		eng:      newEngine(id, n, alg),
		queues:   make(map[ta.NodeID][]ta.TaggedMsg, n),
		noBuffer: noBuffer,
	}
}

// process appends the engine's raw outputs to ci.acc, converted into the
// composite's outputs: every SENDMSG is accompanied by the tagged ESENDMSG
// that S_ij,ε forwards to the clock-model edge at the same instant. ss is
// the engine's reusable buffer; the values are copied here before the next
// engine call.
func (ci *clockInner) process(ss []stamped) {
	for _, s := range ss {
		ci.acc = append(ci.acc, s)
		if s.act.Name == ta.NameSendMsg {
			msg, ok := s.act.Payload.(ta.Msg)
			if !ok {
				panic(fmt.Sprintf("core: SENDMSG payload %T is not ta.Msg", s.act.Payload))
			}
			ci.acc = append(ci.acc, stamped{
				at: s.at,
				act: ta.Action{
					Name:    ta.NameESendMsg,
					Node:    s.act.Node,
					Peer:    s.act.Peer,
					Kind:    ta.KindOutput,
					Payload: ta.TaggedMsg{Body: msg.Body, SentClock: s.at},
				},
			})
		}
	}
}

// start runs the algorithm's Start at clock 0.
func (ci *clockInner) start() []stamped {
	ci.acc = ci.acc[:0]
	ci.process(ci.eng.start(0))
	return ci.acc
}

// nextDue returns the earliest clock value at which the composite has work:
// a timer deadline of C(A,ε) or a releasable front of some R_ji queue.
func (ci *clockInner) nextDue() (simtime.Time, bool) {
	due, ok := ci.eng.nextTimer()
	for _, q := range ci.queues {
		if len(q) == 0 {
			continue
		}
		if !ok || q[0].SentClock.Before(due) {
			due, ok = q[0].SentClock, true
		}
	}
	return due, ok
}

// advance brings the composite up to clock value c, interleaving timer
// firings and buffer releases in clock order, each performed at its own
// clock value. This is both the ClockNode steady-state step and the MMT
// catch-up fragment (Definition 5.1's frag).
func (ci *clockInner) advance(c simtime.Time) []stamped {
	ci.acc = ci.acc[:0]
	ci.advanceInto(c)
	return ci.acc
}

// advanceInto is advance appending to ci.acc without resetting it.
func (ci *clockInner) advanceInto(c simtime.Time) {
	for {
		// Earliest buffer release among queue fronts.
		var (
			relFrom ta.NodeID
			relAt   simtime.Time
			relOK   bool
		)
		for j := ta.NodeID(0); int(j) < ci.n; j++ {
			q := ci.queues[j]
			if len(q) == 0 {
				continue
			}
			if !relOK || q[0].SentClock.Before(relAt) {
				relFrom, relAt, relOK = j, q[0].SentClock, true
			}
		}
		timerAt, timerOK := ci.eng.nextTimer()

		switch {
		case relOK && !relAt.After(c) && (!timerOK || !relAt.After(timerAt)):
			// Release the buffered message at its tag's clock value
			// (buffer releases win ties against timers).
			q := ci.queues[relFrom]
			tm := q[0]
			ci.queues[relFrom] = q[1:]
			ci.deliverMsg(relAt, relFrom, tm)
		case timerOK && !timerAt.After(c):
			ci.process(ci.eng.advance(timerAt))
		default:
			return
		}
	}
}

// deliverMsg hands a message to the algorithm at clock value c, appending
// to ci.acc the node-internal RECVMSG action R_ji performs and whatever
// the algorithm does in response.
func (ci *clockInner) deliverMsg(c simtime.Time, from ta.NodeID, tm ta.TaggedMsg) {
	ci.acc = append(ci.acc, stamped{
		at: c,
		act: ta.Action{
			Name:    ta.NameRecvMsg,
			Node:    ci.id,
			Peer:    from,
			Kind:    ta.KindOutput,
			Payload: ta.Msg{Body: tm.Body},
		},
	})
	ci.process(ci.eng.message(c, from, tm.Body))
}

// erecv handles an ERECVMSG from the clock-model edge at clock value c: the
// R_ji,ε effect. The message is delivered immediately if its queue is empty
// and its tag has been reached, and buffered otherwise. The composite is
// caught up to c first, so the algorithm state is current.
func (ci *clockInner) erecv(c simtime.Time, from ta.NodeID, tm ta.TaggedMsg) []stamped {
	ci.acc = ci.acc[:0]
	ci.advanceInto(c)
	ci.received++
	if ci.noBuffer {
		// Ablation: deliver at the current clock even when that is less
		// than the sending clock — the situation the buffer exists to
		// prevent (§4, Lamport's observation).
		ci.deliverMsg(c, from, tm)
		return ci.acc
	}
	if len(ci.queues[from]) == 0 && !tm.SentClock.After(c) {
		ci.deliverMsg(c, from, tm)
		return ci.acc
	}
	ci.buffered++
	if held := simtime.Duration(tm.SentClock - c); held > ci.heldClockMax {
		ci.heldClockMax = held
	}
	ci.queues[from] = append(ci.queues[from], tm)
	return ci.acc
}

// input handles an environment invocation at clock value c, catching up
// first.
func (ci *clockInner) input(c simtime.Time, name string, payload any) []stamped {
	ci.acc = ci.acc[:0]
	ci.advanceInto(c)
	ci.process(ci.eng.input(c, name, payload))
	return ci.acc
}

// Buffered returns how many received messages had to be held, the total
// received, and the maximum clock-time hold.
func (ci *clockInner) bufferStats() (buffered, received int, heldMax simtime.Duration) {
	return ci.buffered, ci.received, ci.heldClockMax
}
