package core

import (
	"fmt"
	"sync/atomic"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// denseExecutors, when set, makes every Build* executor run the dense
// differential-oracle path (exec.System.DisableCoalescing): no TICK/step
// coalescing anywhere. It is process-global so harness entry points like
// `pscbench -dense` can flip the whole experiment suite at once.
var denseExecutors atomic.Bool

// SetDenseExecutors toggles dense (non-coalescing) execution for every
// subsequently built system and returns the previous setting.
func SetDenseExecutors(v bool) bool { return denseExecutors.Swap(v) }

// defaultShards is the process-global shard count applied to every Build*
// whose Config leaves Shards at zero, so harness entry points like
// `pscbench -shards 4` can switch the whole experiment suite to sharded
// conservative-parallel execution at once. Zero or one means sequential.
var defaultShards atomic.Int64

// SetDefaultShards sets the process-global default shard count for
// subsequently built systems and returns the previous setting.
func SetDefaultShards(n int) int { return int(defaultShards.Swap(int64(n))) }

// DefaultShards returns the process-global default shard count.
func DefaultShards() int { return int(defaultShards.Load()) }

func newSystem() *exec.System {
	s := exec.New()
	if denseExecutors.Load() {
		s.DisableCoalescing()
	}
	return s
}

// Config describes a distributed system to build: the graph is the
// complete directed graph on N nodes including self-loops (algorithm L of
// §6 sends updates to every processor including itself), every edge having
// delay bounds Bounds.
type Config struct {
	// N is the number of nodes.
	N int
	// Bounds is the link delay interval [d1, d2] of every edge.
	Bounds simtime.Interval
	// EdgeBounds, when non-nil, overrides Bounds per directed edge, so
	// heterogeneous links (§2.3 allows each channel its own [d1, d2]) can
	// be modelled. The shard planner exploits the spread: each cross-shard
	// lane pair's lookahead is the minimum d1 over the edges that actually
	// cross it, not the global minimum.
	EdgeBounds func(from, to int) simtime.Interval
	// Seed derives all per-component seeds.
	Seed int64
	// NewDelay builds the delay policy for each edge (a fresh instance per
	// edge, since policies may be stateful). Defaults to UniformDelay.
	NewDelay func() channel.DelayPolicy
	// FIFO forbids per-link reordering.
	FIFO bool

	// Clocks supplies the per-node clock models for the clock and MMT
	// models. Defaults to perfect clocks.
	Clocks clock.Factory

	// Ell is the MMT step bound ℓ. Required for BuildMMT.
	Ell simtime.Duration
	// NewStep builds each node's step policy. Defaults to LazySteps.
	NewStep func() StepPolicy
	// TickPeriod is the TICK interval of the clock subsystem C^m; it
	// defaults to Ell and must be positive for BuildMMT.
	TickPeriod simtime.Duration

	// DisableRecvBuffer turns off R_ji,ε on every node (§7.2 ablation).
	DisableRecvBuffer bool

	// Topology selects which directed edges exist (§2.4 defines systems
	// on arbitrary graphs (V, E)). nil means the complete graph including
	// self-loops, which the register algorithms require (their broadcasts
	// include the sender). Algorithms may only Send along existing edges.
	Topology func(from, to int) bool

	// Shards requests conservative-parallel sharded execution
	// (exec.System.SetShardsPlanned): nodes are partitioned into contiguous
	// blocks balanced by interest density, each node's tick source and
	// clients join its shard, and every channel is pinned to its receiver's
	// shard, so each ordered shard pair's lookahead is the minimum d1 over
	// the links that actually cross it. Zero uses the process-global
	// default (SetDefaultShards); negative forces sequential execution
	// regardless of the default; values above N are clamped to N. Seeded
	// runs produce identical observable traces either way.
	Shards int
}

// shardCount resolves the effective shard count: the config's request,
// falling back to the process default, clamped to [1, N].
func (cfg Config) shardCount() int {
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards()
	}
	if n < 2 {
		return 1
	}
	if n > cfg.N {
		n = cfg.N
	}
	return n
}

// edgeBounds resolves the delay interval of edge (i, j).
func (cfg Config) edgeBounds(i, j int) simtime.Interval {
	if cfg.EdgeBounds != nil {
		return cfg.EdgeBounds(i, j)
	}
	return cfg.Bounds
}

func (cfg Config) hasEdge(i, j int) bool {
	if cfg.Topology == nil {
		return true
	}
	return cfg.Topology(i, j)
}

// neighborsOf lists cfg's outgoing edges from node i.
func (cfg Config) neighborsOf(i int) []ta.NodeID {
	out := make([]ta.NodeID, 0, cfg.N)
	for j := 0; j < cfg.N; j++ {
		if cfg.hasEdge(i, j) {
			out = append(out, ta.NodeID(j))
		}
	}
	return out
}

func (cfg Config) withDefaults() Config {
	if cfg.NewDelay == nil {
		cfg.NewDelay = channel.UniformDelay
	}
	if cfg.Clocks == nil {
		cfg.Clocks = clock.PerfectFactory()
	}
	if cfg.NewStep == nil {
		cfg.NewStep = LazySteps
	}
	if cfg.TickPeriod == 0 {
		cfg.TickPeriod = cfg.Ell
	}
	return cfg
}

// Net is a built distributed system: the executor plus handles to its
// components. Exactly one of Timed, Clocked, MMT is populated, matching
// the model the Net was built for.
type Net struct {
	Sys   *exec.System
	N     int
	Edges []*channel.Edge

	Timed   []*TimedNode
	Clocked []*ClockNode
	MMT     []*MMTNode
	Ticks   []*TickSource

	// nodeShard and shardOf record the partition when Config requested
	// sharded execution; both are nil on the sequential path. shardOf is
	// the name→shard map the executor's assignment closure consults at
	// first run, so AddClient can still join a client to its node's shard
	// after building.
	nodeShard []int
	shardOf   map[string]int
}

// balancedBlocks cuts the node line 0..n-1 into s contiguous blocks of
// near-equal total weight, keeping every block non-empty, and returns the
// node→block assignment. With uniform weights it reproduces the classic
// i*s/n partition.
func balancedBlocks(weight []int, s int) []int {
	n := len(weight)
	total := 0
	for _, w := range weight {
		total += w
	}
	out := make([]int, n)
	b, acc := 0, 0
	for i := 0; i < n; i++ {
		out[i] = b
		acc += weight[i]
		// Advance to the next block once this one holds its proportional
		// share of the weight — or when the nodes left are only just enough
		// to keep the remaining blocks non-empty.
		if b < s-1 && (acc*s >= (b+1)*total || n-i-1 == s-b-1) {
			b++
		}
	}
	return out
}

// shardWeights estimates each node's event density for the partition
// balancer: the node automaton itself, its tick source (the dominant heap
// churn in the MMT model, even coalesced), and each of its incoming
// channels contribute scheduler load to whichever shard hosts the node.
func (net *Net) shardWeights() []int {
	weight := make([]int, net.N)
	for i := range weight {
		weight[i] = 1
	}
	for range net.Ticks {
		// Tick sources exist for every node or none; count them uniformly.
		for i := range weight {
			weight[i]++
		}
		break
	}
	for _, e := range net.Edges {
		weight[int(e.To())]++
	}
	return weight
}

// applySharding partitions the built components into cfg.shardCount()
// contiguous node blocks — balanced by interest density (nodes, tick
// sources, and incoming channels all generate scheduler load for their
// shard) — and hands the executor a per-lane-pair lookahead plan: entry
// (j, k) is the minimum d1 over the edges whose sender sits in shard j and
// receiver in shard k, saturating Never for pairs no edge crosses, so
// distant lanes run ahead on their own slack instead of the global
// minimum. Same-instant causality stays shard-local by construction: a
// node reacts instantly only to its own tick source, its own clients, and
// deliveries from its incoming channels — all pinned to its shard — while
// a channel merely schedules a future arrival (≥ its d1 later) when its
// sender's shard writes to it; each channel's d1 is also declared as its
// minimum effect delay, which caps how far a lane must throttle its
// guarantees for mail it has buffered but not yet handed over.
func (net *Net) applySharding(cfg Config) {
	s := cfg.shardCount()
	if s < 2 {
		return
	}
	nodeShard := balancedBlocks(net.shardWeights(), s)
	shard := func(i int) int { return nodeShard[i] }
	m := make(map[string]int, 2*net.N+len(net.Edges))
	for i, n := range net.Timed {
		m[n.Name()] = shard(i)
	}
	for i, n := range net.Clocked {
		m[n.Name()] = shard(i)
	}
	for i, n := range net.MMT {
		m[n.Name()] = shard(i)
	}
	for i, t := range net.Ticks {
		m[t.Name()] = shard(i)
	}
	la := make([][]simtime.Duration, s)
	for j := range la {
		la[j] = make([]simtime.Duration, s)
		for k := range la[j] {
			if j != k {
				la[j][k] = simtime.Duration(simtime.Never)
			}
		}
	}
	edgeD1 := make(map[string]simtime.Duration, len(net.Edges))
	for _, e := range net.Edges {
		recv := shard(int(e.To()))
		m[e.Name()] = recv
		edgeD1[e.Name()] = e.Bounds().Lo
		if from := shard(int(e.From())); from != recv {
			if lo := e.Bounds().Lo; lo < la[from][recv] {
				la[from][recv] = lo
			}
		}
	}
	net.nodeShard = nodeShard
	net.shardOf = m
	net.Sys.SetShardsPlanned(s, func(name string) int {
		if sh, ok := net.shardOf[name]; ok {
			return sh
		}
		return -1
	}, exec.ShardPlan{
		Lookahead: la,
		MinDelay:  func(name string) simtime.Duration { return edgeD1[name] },
	})
}

// Invoke injects an environment invocation at the given node at the
// current time, e.g. net.Invoke(0, "READ", nil).
func (net *Net) Invoke(node ta.NodeID, name string, payload any) {
	net.Sys.Inject(ta.Action{
		Name:    name,
		Node:    node,
		Peer:    ta.NoNode,
		Kind:    ta.KindInput,
		Payload: payload,
	})
}

// AddClient registers a client automaton driving node `node`: the client
// receives that node's environment responses as inputs, and any invocation
// actions it emits are routed to the node.
func (net *Net) AddClient(c ta.Automaton, node ta.NodeID) {
	if net.shardOf != nil {
		// The client exchanges same-instant actions with its node, so it
		// must live in the node's shard.
		net.shardOf[c.Name()] = net.nodeShard[int(node)]
	}
	net.Sys.Add(c)
	net.Sys.ConnectHeader(ResponsesAt(node), c)
}

// ResponsesAt matches environment responses (visible non-message outputs)
// at the given node.
func ResponsesAt(node ta.NodeID) func(ta.Action) bool {
	return func(a ta.Action) bool {
		return a.Node == node && a.Kind == ta.KindOutput && !a.IsMessage() && a.Name != ta.NameTick
	}
}

// Stamps returns the concatenated γ'_α records of all clock-model nodes in
// executor dispatch order is not preserved across nodes; entries are
// per-node ordered. Only valid for a Net built with BuildClocked.
func (net *Net) Stamps() []ClockStamp {
	var out []ClockStamp
	for _, n := range net.Clocked {
		out = append(out, n.Stamps()...)
	}
	return out
}

func hideInterface(s *exec.System) {
	s.Hide(func(a ta.Action) bool { return a.IsMessage() || a.Name == ta.NameTick })
}

func edgeSeed(base int64, i, j, n int) int64 {
	return base*1_000_003 + int64(i*n+j)*7919 + 17
}

// BuildTimed assembles D_T(G, A, E_[d1,d2]) (§3.3): the timed-automaton
// model system in which the algorithm sees real time.
func BuildTimed(cfg Config, f AlgorithmFactory) *Net {
	cfg = cfg.withDefaults()
	s := newSystem()
	net := &Net{Sys: s, N: cfg.N}
	for i := 0; i < cfg.N; i++ {
		node := NewTimedNode(ta.NodeID(i), cfg.N, f(ta.NodeID(i), cfg.N))
		if cfg.Topology != nil {
			node.RestrictNeighbors(cfg.neighborsOf(i))
		}
		s.Add(node)
		s.ConnectHeader(node.Matches, node)
		net.Timed = append(net.Timed, node)
	}
	for i := 0; i < cfg.N; i++ {
		for j := 0; j < cfg.N; j++ {
			if !cfg.hasEdge(i, j) {
				continue
			}
			e := channel.New(ta.NodeID(i), ta.NodeID(j), cfg.edgeBounds(i, j), cfg.NewDelay(), edgeSeed(cfg.Seed, i, j, cfg.N))
			e.FIFO = cfg.FIFO
			s.Add(e)
			s.ConnectHeader(e.Matches, e)
			net.Edges = append(net.Edges, e)
		}
	}
	hideInterface(s)
	net.applySharding(cfg)
	return net
}

// BuildClocked assembles D_C(G, A^c_ε, E^c_[d1,d2]) (§4.1): every node is
// the transformed composite A^c_{i,ε} (C(A_i,ε) plus send/receive buffers)
// attached to its clock, and edges carry clock-tagged messages.
func BuildClocked(cfg Config, f AlgorithmFactory) *Net {
	cfg = cfg.withDefaults()
	s := newSystem()
	net := &Net{Sys: s, N: cfg.N}
	for i := 0; i < cfg.N; i++ {
		node := NewClockNode(ta.NodeID(i), cfg.N, f(ta.NodeID(i), cfg.N), cfg.Clocks(i))
		if cfg.Topology != nil {
			node.RestrictNeighbors(cfg.neighborsOf(i))
		}
		if cfg.DisableRecvBuffer {
			node.DisableBuffering()
		}
		s.Add(node)
		s.ConnectHeader(node.Matches, node)
		net.Clocked = append(net.Clocked, node)
	}
	for i := 0; i < cfg.N; i++ {
		for j := 0; j < cfg.N; j++ {
			if !cfg.hasEdge(i, j) {
				continue
			}
			e := channel.NewClock(ta.NodeID(i), ta.NodeID(j), cfg.edgeBounds(i, j), cfg.NewDelay(), edgeSeed(cfg.Seed, i, j, cfg.N))
			e.FIFO = cfg.FIFO
			s.Add(e)
			s.ConnectHeader(e.Matches, e)
			net.Edges = append(net.Edges, e)
		}
	}
	hideInterface(s)
	net.applySharding(cfg)
	return net
}

// BuildMMT assembles D_M(G, A^m_{ε,ℓ}, E^m_[d1,d2]) (§5.2): every node is
// M(A^c_{i,ε}, ℓ) composed with its TICK source C^m_{i,ε,ℓ}, and edges are
// the clock-model edges.
func BuildMMT(cfg Config, f AlgorithmFactory) *Net {
	cfg = cfg.withDefaults()
	if cfg.Ell <= 0 {
		panic(fmt.Sprintf("core: BuildMMT requires Ell > 0, got %v", cfg.Ell))
	}
	if cfg.TickPeriod > cfg.Ell {
		panic(fmt.Sprintf("core: tick period %v exceeds step bound ℓ = %v", cfg.TickPeriod, cfg.Ell))
	}
	s := newSystem()
	net := &Net{Sys: s, N: cfg.N}
	for i := 0; i < cfg.N; i++ {
		node := NewMMTNode(ta.NodeID(i), cfg.N, f(ta.NodeID(i), cfg.N), cfg.Ell, cfg.NewStep(), cfg.Seed*31+int64(i))
		if cfg.Topology != nil {
			node.RestrictNeighbors(cfg.neighborsOf(i))
		}
		s.Add(node)
		s.ConnectHeader(node.Matches, node)
		net.MMT = append(net.MMT, node)

		// The tick source's TICK(c) outputs reach the node through the
		// node's own subscription above (TICK@node matches node.Matches).
		// The demand wiring runs the other way: the source asks its node
		// which clock threshold it is blocked on, so the coalescing fast
		// path can synthesize exactly the TICK that crosses it.
		ticks := NewTickSource(ta.NodeID(i), cfg.Clocks(i), cfg.TickPeriod)
		ticks.SetDemand(node.ClockDemand)
		s.Add(ticks)
		net.Ticks = append(net.Ticks, ticks)
	}
	for i := 0; i < cfg.N; i++ {
		for j := 0; j < cfg.N; j++ {
			if !cfg.hasEdge(i, j) {
				continue
			}
			e := channel.NewClock(ta.NodeID(i), ta.NodeID(j), cfg.edgeBounds(i, j), cfg.NewDelay(), edgeSeed(cfg.Seed, i, j, cfg.N))
			e.FIFO = cfg.FIFO
			s.Add(e)
			s.ConnectHeader(e.Matches, e)
			net.Edges = append(net.Edges, e)
		}
	}
	hideInterface(s)
	net.applySharding(cfg)
	return net
}
