package core

import (
	"fmt"

	"psclock/internal/clock"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// ClockStamp records one node action with both of its times: the real time
// at which it occurred in the execution and the clock value the node
// associated with it. The sequence of (action, clock) pairs is exactly the
// γ'_α timed sequence of Definition 4.2, from which the simulation proof of
// Theorem 4.6 constructs the corresponding timed-model execution;
// experiment E5 replays that construction on recorded data.
type ClockStamp struct {
	Action ta.Action
	Real   simtime.Time
	Clock  simtime.Time
}

// Skew returns Clock − Real for this action; Theorem 4.6 guarantees
// |Skew| ≤ ε.
func (s ClockStamp) Skew() simtime.Duration { return simtime.Duration(s.Clock - s.Real) }

// ClockNode runs an Algorithm in the clock-automaton distributed system
// model of §4: the node automaton A^c_{i,ε}, i.e. the composition of
// C(A_i, ε) with its send and receive buffers, attached to a clock
// satisfying C_ε. The algorithm's timers are interpreted as clock
// deadlines: a timer at clock value T fires at the earliest real time the
// node's clock reaches T.
type ClockNode struct {
	name  string
	id    ta.NodeID
	inner *clockInner
	clk   clock.Model

	stamps []ClockStamp
	out    []ta.Action // reusable return buffer

	// RecordStamps controls γ'_α collection (on by default; disable for
	// long throughput runs).
	RecordStamps bool
}

var _ ta.Coalescable = (*ClockNode)(nil)

// NewClockNode returns the clock-model node automaton for node id of an
// n-node system running alg against clk.
func NewClockNode(id ta.NodeID, n int, alg Algorithm, clk clock.Model) *ClockNode {
	return &ClockNode{
		name:         fmt.Sprintf("cnode(%v)", id),
		id:           id,
		inner:        newClockInner(id, n, alg, false),
		clk:          clk,
		RecordStamps: true,
	}
}

// DisableBuffering turns off the receive buffer R_ji,ε: the §7.2 ablation.
func (cn *ClockNode) DisableBuffering() { cn.inner.noBuffer = true }

// Name implements ta.Automaton.
func (cn *ClockNode) Name() string { return cn.name }

// ID returns the node's identity.
func (cn *ClockNode) ID() ta.NodeID { return cn.id }

// Clock returns the node's clock model.
func (cn *ClockNode) Clock() clock.Model { return cn.clk }

// RestrictNeighbors limits this node's outgoing edges to ns (§2.4
// topology). Call before the system runs.
func (cn *ClockNode) RestrictNeighbors(ns []ta.NodeID) { cn.inner.eng.restrict(ns) }

// Stamps returns the recorded γ'_α sequence for this node.
func (cn *ClockNode) Stamps() []ClockStamp { return cn.stamps }

// BufferStats reports receive-buffer activity: messages held, messages
// received, and the maximum clock-time hold (experiment E7).
func (cn *ClockNode) BufferStats() (buffered, received int, heldMax simtime.Duration) {
	return cn.inner.bufferStats()
}

// Matches reports whether a is an input of this node: an ERECVMSG from a
// clock-model edge or an environment invocation partitioned here.
func (cn *ClockNode) Matches(a ta.Action) bool {
	if a.Name == ta.NameERecvMsg {
		return a.Node == cn.id
	}
	return a.Node == cn.id && a.Kind == ta.KindInput && !a.IsMessage()
}

// emit converts stamped inner actions to the composed system's actions,
// recording γ'_α entries along the way.
func (cn *ClockNode) emit(now simtime.Time, ss []stamped) []ta.Action {
	if len(ss) == 0 {
		return nil
	}
	out := cn.out[:0]
	for _, s := range ss {
		out = append(out, s.act)
		if cn.RecordStamps {
			cn.stamps = append(cn.stamps, ClockStamp{Action: s.act, Real: now, Clock: s.at})
		}
	}
	cn.out = out
	return out
}

// stampInput records the γ'_α entry for an input action delivered to this
// node (inputs are actions of the node's partition too).
func (cn *ClockNode) stampInput(now simtime.Time, c simtime.Time, a ta.Action) {
	if cn.RecordStamps {
		cn.stamps = append(cn.stamps, ClockStamp{Action: a, Real: now, Clock: c})
	}
}

// Init implements ta.Automaton.
func (cn *ClockNode) Init() []ta.Action {
	return cn.emit(0, cn.inner.start())
}

// Deliver implements ta.Automaton.
func (cn *ClockNode) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if !cn.Matches(a) {
		return nil
	}
	c := cn.clk.At(now)
	if a.Name == ta.NameERecvMsg {
		tm, ok := a.Payload.(ta.TaggedMsg)
		if !ok {
			panic(fmt.Sprintf("core: ERECVMSG payload %T is not ta.TaggedMsg", a.Payload))
		}
		cn.stampInput(now, c, a)
		return cn.emit(now, cn.inner.erecv(c, a.Peer, tm))
	}
	cn.stampInput(now, c, a)
	return cn.emit(now, cn.inner.input(c, a.Name, a.Payload))
}

// Due implements ta.Automaton: the composite's next clock deadline,
// translated to real time through the clock's inverse.
func (cn *ClockNode) Due(simtime.Time) (simtime.Time, bool) {
	c, ok := cn.inner.nextDue()
	if !ok {
		return 0, false
	}
	return cn.clk.EarliestAt(c), true
}

// Fire implements ta.Automaton.
func (cn *ClockNode) Fire(now simtime.Time) []ta.Action {
	return cn.emit(now, cn.inner.advance(cn.clk.At(now)))
}

// NextInterest implements ta.Coalescable. The clock-model node sees its
// clock continuously (no TICK discretization), so every deadline is real
// composite work: its interest is exactly its Due and the executor never
// coalesces past it. Golden clock-model traces are therefore identical
// with and without coalescing.
func (cn *ClockNode) NextInterest() simtime.Time {
	d, ok := cn.Due(0)
	if !ok {
		return simtime.Never
	}
	return d
}

// FastForward implements ta.Coalescable as a no-op: the node declares
// every deadline observable, so there is never anything to skip.
func (cn *ClockNode) FastForward(simtime.Time) {}
