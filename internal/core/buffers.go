package core

import (
	"fmt"

	"psclock/internal/clock"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Standalone, literal transcriptions of the Figure 2 buffer automata.
//
// In the assembled systems (BuildClocked / BuildMMT) the buffers are
// folded into the node composite (clockinner.go) for efficiency; these
// component versions exist to demonstrate the paper's actual composition
// A^c_{i,ε} = C(A_i,ε) × S_ij,ε × R_ji,ε and to differentially test the
// folded implementation against the literal one (see buffers_test.go).

// SendBufferAutomaton is S_ij,ε (Figure 2, left): it receives SENDMSG and
// forwards ESENDMSG tagged with the clock value at which the message was
// sent. The figure's ν precondition ("no (m,c) in q with c < clock+Δc")
// forbids the clock advancing past an unsent tag, which operationally
// means the forward happens at the same instant as the send — so Deliver
// emits synchronously and the queue is always empty between instants.
type SendBufferAutomaton struct {
	name     string
	from, to ta.NodeID
	clk      clock.Model
}

var _ ta.Automaton = (*SendBufferAutomaton)(nil)

// NewSendBuffer returns S_ij,ε for the edge from→to using the sender's
// clock.
func NewSendBuffer(from, to ta.NodeID, clk clock.Model) *SendBufferAutomaton {
	return &SendBufferAutomaton{
		name: fmt.Sprintf("sendbuf(%v->%v)", from, to),
		from: from,
		to:   to,
		clk:  clk,
	}
}

// Name implements ta.Automaton.
func (sb *SendBufferAutomaton) Name() string { return sb.name }

// Init implements ta.Automaton.
func (sb *SendBufferAutomaton) Init() []ta.Action { return nil }

// Matches reports whether a is this buffer's SENDMSG input.
func (sb *SendBufferAutomaton) Matches(a ta.Action) bool {
	return a.Name == ta.NameSendMsg && a.Node == sb.from && a.Peer == sb.to
}

// Deliver implements ta.Automaton: enqu + immediate ESENDMSG (the
// "c = clock" precondition satisfied at the same instant).
func (sb *SendBufferAutomaton) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if !sb.Matches(a) {
		return nil
	}
	msg, ok := a.Payload.(ta.Msg)
	if !ok {
		panic(fmt.Sprintf("core: SENDMSG payload %T is not ta.Msg", a.Payload))
	}
	return []ta.Action{{
		Name:    ta.NameESendMsg,
		Node:    sb.from,
		Peer:    sb.to,
		Kind:    ta.KindOutput,
		Payload: ta.TaggedMsg{Body: msg.Body, SentClock: sb.clk.At(now)},
	}}
}

// Due implements ta.Automaton (the queue drains synchronously).
func (sb *SendBufferAutomaton) Due(simtime.Time) (simtime.Time, bool) { return 0, false }

// Fire implements ta.Automaton.
func (sb *SendBufferAutomaton) Fire(simtime.Time) []ta.Action { return nil }

// RecvBufferAutomaton is R_ji,ε (Figure 2, right): a FIFO queue of (m, c)
// pairs whose front is released as RECVMSG once the local clock reaches
// its tag. Because the standard edges already emit ERECVMSG and the
// standard nodes already consume it, composing this standalone buffer
// requires renaming one side of the interface (ta.Rename); the
// differential test does exactly that.
type RecvBufferAutomaton struct {
	name     string
	from, to ta.NodeID
	clk      clock.Model
	inName   string
	q        []ta.TaggedMsg
}

var _ ta.Automaton = (*RecvBufferAutomaton)(nil)

// NewRecvBuffer returns R_ji,ε for messages from `from` arriving at `to`,
// gated by the receiver's clock. inName is the action name the raw
// network deliveries carry (the renamed edge output).
func NewRecvBuffer(from, to ta.NodeID, clk clock.Model, inName string) *RecvBufferAutomaton {
	return &RecvBufferAutomaton{
		name:   fmt.Sprintf("recvbuf(%v->%v)", from, to),
		from:   from,
		to:     to,
		clk:    clk,
		inName: inName,
	}
}

// Name implements ta.Automaton.
func (rb *RecvBufferAutomaton) Name() string { return rb.name }

// Init implements ta.Automaton.
func (rb *RecvBufferAutomaton) Init() []ta.Action { return nil }

// Matches reports whether a is this buffer's input.
func (rb *RecvBufferAutomaton) Matches(a ta.Action) bool {
	return a.Name == rb.inName && a.Node == rb.to && a.Peer == rb.from
}

// Deliver implements ta.Automaton: enqueue, then release any deliverable
// prefix at this instant.
func (rb *RecvBufferAutomaton) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if !rb.Matches(a) {
		return nil
	}
	tm, ok := a.Payload.(ta.TaggedMsg)
	if !ok {
		panic(fmt.Sprintf("core: %s payload %T is not ta.TaggedMsg", rb.inName, a.Payload))
	}
	rb.q = append(rb.q, tm)
	return rb.release(now)
}

// release emits ERECVMSG for every front whose tag the clock has reached.
func (rb *RecvBufferAutomaton) release(now simtime.Time) []ta.Action {
	c := rb.clk.At(now)
	var out []ta.Action
	for len(rb.q) > 0 && !rb.q[0].SentClock.After(c) {
		tm := rb.q[0]
		rb.q = rb.q[1:]
		out = append(out, ta.Action{
			Name:    ta.NameERecvMsg,
			Node:    rb.to,
			Peer:    rb.from,
			Kind:    ta.KindOutput,
			Payload: tm,
		})
	}
	return out
}

// Due implements ta.Automaton: the earliest real time the front becomes
// deliverable.
func (rb *RecvBufferAutomaton) Due(simtime.Time) (simtime.Time, bool) {
	if len(rb.q) == 0 {
		return 0, false
	}
	return rb.clk.EarliestAt(rb.q[0].SentClock), true
}

// Fire implements ta.Automaton.
func (rb *RecvBufferAutomaton) Fire(now simtime.Time) []ta.Action {
	return rb.release(now)
}

// Held returns the queue length, for tests.
func (rb *RecvBufferAutomaton) Held() int { return len(rb.q) }
