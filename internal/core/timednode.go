package core

import (
	"fmt"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// stamped pairs an action with the algorithm-visible time at which it was
// performed. In the timed model that time equals real time; in the clock
// and MMT models it is a clock value — the raw material of the γ'_α
// sequence of Definition 4.2.
type stamped struct {
	act ta.Action
	at  simtime.Time
}

// appendActs strips the stamps from ss onto buf. Nodes keep one action
// buffer and refill it per call; the executor copies returned slices before
// re-entering the component (see the ta.Automaton contract).
func appendActs(buf []ta.Action, ss []stamped) []ta.Action {
	for _, s := range ss {
		buf = append(buf, s.act)
	}
	return buf
}

// TimedNode runs an Algorithm in the timed-automaton programming model of
// §3: the algorithm sees exact real time and its timers fire at exactly the
// requested instants. This is the model algorithms are designed and proved
// in; the clock and MMT adapters run the same algorithm in harsher worlds.
type TimedNode struct {
	name string
	id   ta.NodeID
	eng  *engine
	out  []ta.Action // reusable return buffer
}

var _ ta.Automaton = (*TimedNode)(nil)

// NewTimedNode returns the node automaton A_i for node id of an n-node
// system running alg.
func NewTimedNode(id ta.NodeID, n int, alg Algorithm) *TimedNode {
	return &TimedNode{
		name: fmt.Sprintf("node(%v)", id),
		id:   id,
		eng:  newEngine(id, n, alg),
	}
}

// Name implements ta.Automaton.
func (tn *TimedNode) Name() string { return tn.name }

// ID returns the node's identity.
func (tn *TimedNode) ID() ta.NodeID { return tn.id }

// RestrictNeighbors limits this node's outgoing edges to ns (the graph
// topology of §2.4; the default is the complete graph with self-loops).
// Call before the system runs.
func (tn *TimedNode) RestrictNeighbors(ns []ta.NodeID) { tn.eng.restrict(ns) }

// Matches reports whether a is an input of this node: a message delivery
// from the network or an environment invocation partitioned at this node.
func (tn *TimedNode) Matches(a ta.Action) bool {
	if a.Name == ta.NameRecvMsg {
		return a.Node == tn.id
	}
	return a.Node == tn.id && a.Kind == ta.KindInput && !a.IsMessage()
}

// Init implements ta.Automaton.
func (tn *TimedNode) Init() []ta.Action {
	tn.out = appendActs(tn.out[:0], tn.eng.start(0))
	return tn.out
}

// Deliver implements ta.Automaton.
func (tn *TimedNode) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if !tn.Matches(a) {
		return nil
	}
	// Fire any timers due at this same instant first, so the algorithm's
	// state is current before the input applies.
	out := tn.eng.advance(now)
	if a.Name == ta.NameRecvMsg {
		msg, ok := a.Payload.(ta.Msg)
		if !ok {
			panic(fmt.Sprintf("core: RECVMSG payload %T is not ta.Msg", a.Payload))
		}
		out = append(out, tn.eng.message(now, a.Peer, msg.Body)...)
	} else {
		out = append(out, tn.eng.input(now, a.Name, a.Payload)...)
	}
	tn.out = appendActs(tn.out[:0], out)
	return tn.out
}

// Due implements ta.Automaton: the earliest pending timer.
func (tn *TimedNode) Due(simtime.Time) (simtime.Time, bool) {
	return tn.eng.nextTimer()
}

// Fire implements ta.Automaton.
func (tn *TimedNode) Fire(now simtime.Time) []ta.Action {
	tn.out = appendActs(tn.out[:0], tn.eng.advance(now))
	return tn.out
}
