package core

import (
	"testing"

	"psclock/internal/clock"
	"psclock/internal/exec"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// collector is an algorithm that records message arrival (body, Time()).
type collector struct {
	got []struct {
		body any
		at   simtime.Time
	}
}

func (c *collector) Start(Context)                {}
func (c *collector) OnInput(Context, string, any) {}
func (c *collector) OnTimer(Context, any)         {}
func (c *collector) OnMessage(ctx Context, from ta.NodeID, body any) {
	c.got = append(c.got, struct {
		body any
		at   simtime.Time
	}{body, ctx.Time()})
}

func TestClockInnerHeadOfLineBlocking(t *testing.T) {
	// Figure 2's R_ji,ε is a queue: only the front is ever inspected. A
	// reordered arrival (large tag first) blocks a later-arriving message
	// with a smaller tag until the front's tag is reached.
	col := &collector{}
	ci := newClockInner(0, 2, col, false)
	ci.start()

	// At clock 1, messages arrive from node 1 tagged 5 then 3.
	ci.erecv(1, 1, ta.TaggedMsg{Body: "tag5", SentClock: 5})
	ci.erecv(1, 1, ta.TaggedMsg{Body: "tag3", SentClock: 3})
	if len(col.got) != 0 {
		t.Fatalf("delivered early: %v", col.got)
	}
	// At clock 3 the front (tag 5) still blocks.
	ci.advance(3)
	if len(col.got) != 0 {
		t.Fatalf("head-of-line violated: %v", col.got)
	}
	due, ok := ci.nextDue()
	if !ok || due != 5 {
		t.Fatalf("due = %v %v, want 5", due, ok)
	}
	// At clock 5 both deliver, front first, both at clock 5 (monotone).
	ci.advance(5)
	if len(col.got) != 2 || col.got[0].body != "tag5" || col.got[1].body != "tag3" {
		t.Fatalf("delivery = %v", col.got)
	}
	if col.got[0].at != 5 || col.got[1].at != 5 {
		t.Errorf("delivery clocks = %v", col.got)
	}
	b, r, held := ci.bufferStats()
	if b != 2 || r != 2 || held != 4 {
		t.Errorf("stats = %d %d %v", b, r, held)
	}
}

func TestClockInnerSeparateQueuesDoNotBlock(t *testing.T) {
	// Queues are per incoming edge: a blocked queue from node 1 must not
	// delay a deliverable message from node 2 (beyond clock order).
	col := &collector{}
	ci := newClockInner(0, 3, col, false)
	ci.start()
	ci.erecv(1, 1, ta.TaggedMsg{Body: "blocked", SentClock: 10})
	ci.erecv(1, 2, ta.TaggedMsg{Body: "ready", SentClock: 1})
	if len(col.got) != 1 || col.got[0].body != "ready" {
		t.Fatalf("cross-queue blocking: %v", col.got)
	}
}

func TestClockInnerNoBufferDeliversEarly(t *testing.T) {
	col := &collector{}
	ci := newClockInner(0, 2, col, true)
	ci.start()
	ci.erecv(1, 1, ta.TaggedMsg{Body: "early", SentClock: 9})
	if len(col.got) != 1 {
		t.Fatalf("noBuffer did not deliver: %v", col.got)
	}
	// Delivered at clock 1 — before the tag, the exact anomaly §4 forbids.
	if col.got[0].at != 1 {
		t.Errorf("delivered at %v", col.got[0].at)
	}
}

// lateTimerAlg sets a timer in the past from a message handler.
type lateTimerAlg struct {
	fired []simtime.Time
}

func (l *lateTimerAlg) Start(Context)                {}
func (l *lateTimerAlg) OnInput(Context, string, any) {}
func (l *lateTimerAlg) OnMessage(ctx Context, _ ta.NodeID, _ any) {
	ctx.SetTimer(ctx.Time().Add(-5), "past")
}
func (l *lateTimerAlg) OnTimer(ctx Context, _ any) {
	l.fired = append(l.fired, ctx.Time())
}

func TestEngineClampsPastTimers(t *testing.T) {
	alg := &lateTimerAlg{}
	eng := newEngine(0, 1, alg)
	eng.start(0)
	eng.message(10, 0, "m")
	out := eng.advance(10)
	if len(out) != 0 && len(alg.fired) != 1 {
		t.Fatalf("fired = %v", alg.fired)
	}
	if len(alg.fired) != 1 || alg.fired[0] != 10 {
		t.Fatalf("past timer fired at %v, want clamped to 10", alg.fired)
	}
}

func TestEngineTimerOrderWithinAdvance(t *testing.T) {
	order := []string{}
	alg := &orderAlg{order: &order}
	eng := newEngine(0, 1, alg)
	eng.start(0)
	// Registered out of order; must fire by (deadline, registration).
	eng.input(0, "SET", nil)
	eng.advance(100)
	want := []string{"t5", "t5b", "t9"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

type orderAlg struct{ order *[]string }

func (o *orderAlg) Start(Context) {}
func (o *orderAlg) OnInput(ctx Context, _ string, _ any) {
	ctx.SetTimer(9, "t9")
	ctx.SetTimer(5, "t5")
	ctx.SetTimer(5, "t5b")
}
func (o *orderAlg) OnMessage(Context, ta.NodeID, any) {}
func (o *orderAlg) OnTimer(ctx Context, key any) {
	*o.order = append(*o.order, key.(string))
}

func TestMMTTimerWaitsForTick(t *testing.T) {
	// An MMT node's timer at clock T must not fire until a TICK raises
	// mmtclock to T — the "missed clock value" phenomenon of §5.
	alg := &relay{wait: 1 * ms}
	mn := NewMMTNode(0, 1, alg, 100*us, LazySteps(), 1)
	mn.Init()
	mn.Deliver(0, ta.Action{Name: "GO", Node: 0, Kind: ta.KindInput})

	// Steps happen, but with mmtclock = 0 the 1ms timer never fires.
	for now := simtime.Time(100 * us); now <= simtime.Time(2*ms); now = now.Add(100 * us) {
		if acts := mn.Fire(now); len(acts) != 0 {
			t.Fatalf("fired %v before any tick", acts)
		}
	}
	// A tick reporting clock 1ms arrives late, at real 2.1ms.
	mn.Deliver(simtime.Time(2100*us), ta.Action{Name: ta.NameTick, Node: 0, Kind: ta.KindInput, Payload: simtime.Time(ms)})
	acts := mn.Fire(simtime.Time(2200 * us))
	if len(acts) != 1 || acts[0].Name != "DONE" {
		t.Fatalf("acts = %v", acts)
	}
	// The emitted stamp remembers the simulated clock time (1ms), not the
	// late real time.
	st := mn.Stamps()
	if len(st) != 1 || st[0].SimClock != simtime.Time(ms) {
		t.Fatalf("stamps = %v", st)
	}
}

func TestMMTTickMonotone(t *testing.T) {
	mn := NewMMTNode(0, 1, &relay{}, 100*us, LazySteps(), 1)
	mn.Init()
	mn.Deliver(10, ta.Action{Name: ta.NameTick, Node: 0, Kind: ta.KindInput, Payload: simtime.Time(50)})
	mn.Deliver(20, ta.Action{Name: ta.NameTick, Node: 0, Kind: ta.KindInput, Payload: simtime.Time(40)})
	if mn.mmtclock != 50 {
		t.Errorf("mmtclock = %v, regressed", mn.mmtclock)
	}
}

func TestTickSourceEmitsClockValues(t *testing.T) {
	clk := fakeClock{}
	ts := NewTickSource(2, clk, 100*us)
	init := ts.Init()
	if len(init) != 1 || init[0].Payload.(simtime.Time) != 7 {
		t.Fatalf("init = %v, want clock(0) = 7", init)
	}
	due, ok := ts.Due(0)
	if !ok || due != simtime.Time(100*us) {
		t.Fatalf("due = %v", due)
	}
	acts := ts.Fire(due)
	if len(acts) != 1 || acts[0].Name != ta.NameTick || acts[0].Node != 2 {
		t.Fatalf("acts = %v", acts)
	}
	if got := acts[0].Payload.(simtime.Time); got != due+7 {
		t.Fatalf("tick value = %v, want clock(now)", got)
	}
}

// fakeClock reports now+7.
type fakeClock struct{}

func (fakeClock) At(t simtime.Time) simtime.Time         { return t + 7 }
func (fakeClock) EarliestAt(c simtime.Time) simtime.Time { return c - 7 }
func (fakeClock) Epsilon() simtime.Duration              { return 7 }
func (fakeClock) Name() string                           { return "fake" }

// spammer emits outputs as fast as it can: one per timer tick.
type spammer struct{ period simtime.Duration }

func (s *spammer) Start(ctx Context)                 { ctx.SetTimer(ctx.Time().Add(s.period), nil) }
func (s *spammer) OnInput(Context, string, any)      {}
func (s *spammer) OnMessage(Context, ta.NodeID, any) {}
func (s *spammer) OnTimer(ctx Context, _ any) {
	ctx.Output("SPAM", ctx.Time())
	ctx.SetTimer(ctx.Time().Add(s.period), nil)
}

// TestMMTPendingGrowsWithoutRateLimit demonstrates why Theorem 5.1 needs
// the Lemma 4.3 rate restriction: a clock-model algorithm that produces
// outputs faster than one per step bound ℓ makes the MMT pending queue —
// and therefore the output shift — grow without bound.
func TestMMTPendingGrowsWithoutRateLimit(t *testing.T) {
	ell := 100 * us
	// The simulated algorithm emits an output every ℓ/4: four times the
	// drain rate of one output per step.
	mn := NewMMTNode(0, 1, &spammer{period: ell / 4}, ell, LazySteps(), 1)
	mn.RecordStamps = false
	s := exec.New()
	s.Add(mn)
	s.Add(NewTickSource(0, clock.Perfect(), ell))
	s.Connect(mn.Matches, mn)
	if err := s.Run(simtime.Time(20 * ms)); err != nil {
		t.Fatal(err)
	}
	early := mn.Pending()
	if err := s.Run(simtime.Time(40 * ms)); err != nil {
		t.Fatal(err)
	}
	late := mn.Pending()
	if late <= early || late < 100 {
		t.Errorf("pending did not grow: %d then %d (rate restriction appears unnecessary, contradicting Lemma 4.3)", early, late)
	}

	// A compliant algorithm (one output per 2ℓ) keeps pending bounded.
	ok := NewMMTNode(0, 1, &spammer{period: 2 * ell}, ell, LazySteps(), 1)
	ok.RecordStamps = false
	s2 := exec.New()
	s2.Add(ok)
	s2.Add(NewTickSource(0, clock.Perfect(), ell))
	s2.Connect(ok.Matches, ok)
	if err := s2.Run(simtime.Time(40 * ms)); err != nil {
		t.Fatal(err)
	}
	if ok.MaxPending > 4 {
		t.Errorf("compliant algorithm's pending reached %d", ok.MaxPending)
	}
}
