package core

import (
	"math/rand"
	"testing"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

// relay is a minimal test algorithm: on "GO" it waits `wait` and outputs
// "DONE"; on "FWD" it sends the payload to the next node; on any message it
// outputs "GOT" immediately.
type relay struct {
	wait simtime.Duration
	got  any
}

func (r *relay) Start(core Context) {}

func (r *relay) OnInput(ctx Context, name string, payload any) {
	switch name {
	case "GO":
		r.got = payload
		ctx.SetTimer(ctx.Time().Add(r.wait), "done")
	case "FWD":
		ctx.Send((ctx.ID()+1)%ta.NodeID(ctx.N()), payload)
	case "BCAST":
		ctx.Broadcast(payload)
	}
}

func (r *relay) OnMessage(ctx Context, from ta.NodeID, body any) {
	ctx.Output("GOT", body)
}

func (r *relay) OnTimer(ctx Context, key any) {
	ctx.Output("DONE", r.got)
}

func relayFactory(wait simtime.Duration) AlgorithmFactory {
	return func(ta.NodeID, int) Algorithm { return &relay{wait: wait} }
}

func cfg2() Config {
	return Config{
		N:      2,
		Bounds: simtime.NewInterval(1*ms, 3*ms),
		Seed:   7,
	}
}

func TestTimedNodeTimerExact(t *testing.T) {
	net := BuildTimed(cfg2(), relayFactory(5*ms))
	net.Invoke(0, "GO", "x")
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	vis := net.Sys.Trace().Visible()
	if len(vis) != 2 {
		t.Fatalf("visible = %v", vis.Labels())
	}
	if vis[1].Action.Name != "DONE" || vis[1].At != simtime.Time(5*ms) {
		t.Errorf("DONE at %v, want 5ms", vis[1].At)
	}
	if vis[1].Action.Payload != "x" {
		t.Errorf("payload = %v", vis[1].Action.Payload)
	}
}

func TestTimedNodeMessaging(t *testing.T) {
	c := cfg2()
	c.NewDelay = channel.MaxDelay
	net := BuildTimed(c, relayFactory(0))
	net.Invoke(0, "FWD", "hello")
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	got := net.Sys.Trace().Named("GOT")
	if len(got) != 1 || got[0].Action.Node != 1 {
		t.Fatalf("GOT events: %v", got)
	}
	if got[0].At != simtime.Time(3*ms) {
		t.Errorf("GOT at %v, want 3ms (max delay)", got[0].At)
	}
	// SENDMSG/RECVMSG are hidden by composition.
	if v := net.Sys.Trace().Visible().Named(ta.NameSendMsg); len(v) != 0 {
		t.Error("SENDMSG visible")
	}
}

func TestBroadcastIncludesSelf(t *testing.T) {
	c := cfg2()
	c.NewDelay = channel.MinDelay
	net := BuildTimed(c, relayFactory(0))
	net.Invoke(0, "BCAST", "m")
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	got := net.Sys.Trace().Named("GOT")
	if len(got) != 2 {
		t.Fatalf("GOT = %d, want 2 (self + peer)", len(got))
	}
	nodes := map[ta.NodeID]bool{}
	for _, e := range got {
		nodes[e.Action.Node] = true
	}
	if !nodes[0] || !nodes[1] {
		t.Errorf("GOT nodes = %v", nodes)
	}
}

func TestClockNodePerfectMatchesTimed(t *testing.T) {
	// With perfect clocks the clock model must reproduce the timed model's
	// visible trace exactly.
	run := func(build func(Config, AlgorithmFactory) *Net) []string {
		c := cfg2()
		c.NewDelay = channel.MaxDelay
		net := build(c, relayFactory(2*ms))
		net.Invoke(0, "GO", 1)
		net.Invoke(1, "FWD", "m")
		if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range net.Sys.Trace().Visible() {
			out = append(out, e.String())
		}
		return out
	}
	a := run(BuildTimed)
	b := run(BuildClocked)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d\n%v\n%v", len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d: timed %q vs clocked %q", i, a[i], b[i])
		}
	}
}

func TestClockNodeTimerFiresAtClockValue(t *testing.T) {
	eps := 200 * us
	c := cfg2()
	c.Clocks = func(int) clock.Model { return clock.Slow(eps) }
	net := BuildClocked(c, relayFactory(5*ms))
	net.Invoke(0, "GO", nil)
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	done := net.Sys.Trace().Named("DONE")
	if len(done) != 1 {
		t.Fatalf("DONE = %v", done)
	}
	// Invocation at real 0 = clock −? (slow clock ramps to −ε): clock(0)=0.
	// Timer set at clock(0)+5ms fires when the slow clock reaches it: real
	// time ≥ 5ms (clock behind real). With clock = now−ε steady state,
	// real = clock target + ε.
	want := simtime.Time(5 * ms).Add(eps)
	if done[0].At != want {
		t.Errorf("DONE at %v, want %v", done[0].At, want)
	}
}

func TestClockNodeStampsRecordGamma(t *testing.T) {
	eps := 500 * us
	c := cfg2()
	c.Clocks = clock.SpreadFactory(eps) // node0 fast, node1 slow
	c.NewDelay = channel.MinDelay
	net := BuildClocked(c, relayFactory(0))
	if err := net.Sys.Run(simtime.Time(20 * ms)); err != nil {
		t.Fatal(err)
	}
	net.Invoke(0, "FWD", "m1")
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	// Every stamp's |clock − real| ≤ ε (Theorem 4.6's core fact).
	for _, n := range net.Clocked {
		for _, s := range n.Stamps() {
			if s.Skew().Abs() > eps {
				t.Errorf("stamp %v skew %v > ε", s.Action, s.Skew())
			}
		}
	}
	// The send was tagged with the fast node's clock.
	var tag simtime.Time
	for _, s := range net.Clocked[0].Stamps() {
		if s.Action.Name == ta.NameESendMsg {
			tag = s.Action.Payload.(ta.TaggedMsg).SentClock
			if tag != s.Clock {
				t.Errorf("tag %v != clock %v at send", tag, s.Clock)
			}
		}
	}
	if tag == 0 {
		t.Fatal("no ESENDMSG stamp recorded")
	}
	// The slow receiver must not deliver before its clock reaches the tag:
	// RECVMSG clock ≥ tag (the R_ji,ε guarantee).
	found := false
	for _, s := range net.Clocked[1].Stamps() {
		if s.Action.Name == ta.NameRecvMsg {
			found = true
			if s.Clock.Before(tag) {
				t.Errorf("RECVMSG at clock %v before tag %v", s.Clock, tag)
			}
		}
	}
	if !found {
		t.Fatal("no RECVMSG stamp recorded")
	}
}

func TestClockNodeBuffersFastToSlow(t *testing.T) {
	// Fast sender, slow receiver, d1 < 2ε: the receive buffer must hold
	// messages.
	eps := 1 * ms
	c := Config{
		N:      2,
		Bounds: simtime.NewInterval(100*us, 300*us), // d1 ≪ 2ε
		Seed:   3,
		Clocks: clock.SpreadFactory(eps),
	}
	c.NewDelay = channel.MinDelay
	net := BuildClocked(c, relayFactory(0))
	if err := net.Sys.Run(simtime.Time(20 * ms)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		net.Invoke(0, "FWD", i)
		if err := net.Sys.Run(net.Sys.Now().Add(2 * ms)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	buffered, received, heldMax := net.Clocked[1].BufferStats()
	if received != 5 {
		t.Fatalf("received = %d", received)
	}
	if buffered == 0 {
		t.Error("no buffering despite d1 < 2ε and maximal skew")
	}
	if heldMax > 2*eps {
		t.Errorf("held %v > 2ε", heldMax)
	}
	if got := net.Sys.Trace().Named("GOT"); len(got) != 5 {
		t.Errorf("GOT = %d", len(got))
	}
}

func TestClockNodeNoBufferWhenD1Large(t *testing.T) {
	eps := 100 * us
	c := Config{
		N:      2,
		Bounds: simtime.NewInterval(1*ms, 2*ms), // d1 ≥ 2ε
		Seed:   3,
		Clocks: clock.SpreadFactory(eps),
	}
	net := BuildClocked(c, relayFactory(0))
	if err := net.Sys.Run(simtime.Time(10 * ms)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		net.Invoke(0, "FWD", i)
		if err := net.Sys.Run(net.Sys.Now().Add(3 * ms)); err != nil {
			t.Fatal(err)
		}
	}
	buffered, _, _ := net.Clocked[1].BufferStats()
	if buffered != 0 {
		t.Errorf("buffered = %d despite d1 ≥ 2ε (§7.2)", buffered)
	}
}

func TestMMTBasics(t *testing.T) {
	ell := 100 * us
	c := cfg2()
	c.Ell = ell
	c.NewStep = LazySteps
	net := BuildMMT(c, relayFactory(2*ms))
	net.Invoke(0, "GO", "p")
	if err := net.Sys.Run(simtime.Time(10 * ms)); err != nil {
		t.Fatal(err)
	}
	done := net.Sys.Trace().Named("DONE")
	if len(done) != 1 {
		t.Fatalf("DONE = %v", done)
	}
	// The timer was due at 2ms; with perfect clocks, tick period = step
	// bound = ℓ, the response may be late by a few ℓ but never early.
	if done[0].At.Before(simtime.Time(2 * ms)) {
		t.Errorf("DONE at %v, before its clock deadline", done[0].At)
	}
	late := done[0].At.Sub(simtime.Time(2 * ms))
	if late > 4*ell {
		t.Errorf("DONE %v late, want ≤ ~3ℓ (tick + step + emit)", late)
	}
	// Emission stamps recorded.
	st := net.MMT[0].Stamps()
	if len(st) != 1 || st[0].Action.Name != "DONE" {
		t.Fatalf("stamps = %v", st)
	}
	if st[0].SimClock != simtime.Time(2*ms) {
		t.Errorf("SimClock = %v, want 2ms", st[0].SimClock)
	}
}

func TestMMTMessaging(t *testing.T) {
	ell := 50 * us
	c := cfg2()
	c.Ell = ell
	c.NewDelay = channel.MaxDelay
	net := BuildMMT(c, relayFactory(0))
	net.Invoke(0, "FWD", "m")
	if err := net.Sys.Run(simtime.Time(20 * ms)); err != nil {
		t.Fatal(err)
	}
	got := net.Sys.Trace().Named("GOT")
	if len(got) != 1 || got[0].Action.Node != 1 {
		t.Fatalf("GOT = %v", got)
	}
	// Send delayed ≤ ℓ by node 0's pending queue, link 3ms, receive
	// processed within a tick+step, response emitted next step.
	min := simtime.Time(3 * ms)
	max := min.Add(5 * ell)
	if got[0].At.Before(min) || got[0].At.After(max) {
		t.Errorf("GOT at %v, want in [%v, %v]", got[0].At, min, max)
	}
}

func TestMMTOnePendingOutputPerStep(t *testing.T) {
	// Broadcast to 4 nodes queues 4 ESENDMSGs; they must drain one per
	// step, ℓ apart under the lazy scheduler.
	ell := 100 * us
	c := Config{N: 4, Bounds: simtime.NewInterval(1*ms, 1*ms), Seed: 1, Ell: ell}
	net := BuildMMT(c, relayFactory(0))
	net.Invoke(0, "BCAST", "m")
	if err := net.Sys.Run(simtime.Time(10 * ms)); err != nil {
		t.Fatal(err)
	}
	var sendTimes []simtime.Time
	for _, e := range net.Sys.Trace() {
		if e.Action.Name == ta.NameESendMsg && e.Action.Node == 0 {
			sendTimes = append(sendTimes, e.At)
		}
	}
	if len(sendTimes) != 4 {
		t.Fatalf("sends = %d", len(sendTimes))
	}
	for i := 1; i < len(sendTimes); i++ {
		if gap := sendTimes[i].Sub(sendTimes[i-1]); gap != ell {
			t.Errorf("send gap %v, want ℓ", gap)
		}
	}
	if net.MMT[0].MaxPending < 4 {
		t.Errorf("MaxPending = %d", net.MMT[0].MaxPending)
	}
}

func TestMMTDeterminism(t *testing.T) {
	run := func() []string {
		c := cfg2()
		c.Ell = 100 * us
		c.NewStep = UniformSteps
		c.Clocks = clock.DriftFactory(300*us, 5)
		net := BuildMMT(c, relayFactory(ms))
		net.Invoke(0, "GO", 1)
		net.Invoke(1, "FWD", "x")
		if err := net.Sys.Run(simtime.Time(20 * ms)); err != nil {
			t.Fatal(err)
		}
		return net.Sys.Trace().Visible().Labels()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestStepPolicies(t *testing.T) {
	ell := 100 * us
	rng := rand.New(rand.NewSource(1))
	for _, p := range []StepPolicy{LazySteps(), EagerSteps(), UniformSteps()} {
		for i := 0; i < 100; i++ {
			g := p.Next(rng, ell)
			if g <= 0 || g > ell {
				t.Errorf("%s: gap %v outside (0, ℓ]", p.Name(), g)
			}
		}
	}
	if LazySteps().Next(nil, ell) != ell {
		t.Error("lazy != ℓ")
	}
	if EagerSteps().Next(nil, ell) != ell/8 {
		t.Error("eager != ℓ/8")
	}
}

// TestUniformStepsNonPositiveEll is the regression guard for the rand.Int63n
// panic: a non-positive ℓ must degenerate to the 1ns minimum gap, not crash.
func TestUniformStepsNonPositiveEll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ell := range []simtime.Duration{0, -1, -100 * us} {
		if g := UniformSteps().Next(rng, ell); g != 1 {
			t.Errorf("UniformSteps.Next(ℓ=%v) = %v, want 1ns", ell, g)
		}
	}
}

// TestFixedStepPolicyGaps pins the FixedStepPolicy contract the coalescing
// fast path relies on: the deterministic policies advertise their constant
// gap, and the randomized one does not.
func TestFixedStepPolicyGaps(t *testing.T) {
	ell := 100 * us
	if g, ok := LazySteps().(FixedStepPolicy).FixedGap(ell); !ok || g != ell {
		t.Errorf("lazy FixedGap = (%v, %v), want (ℓ, true)", g, ok)
	}
	if g, ok := EagerSteps().(FixedStepPolicy).FixedGap(ell); !ok || g != ell/8 {
		t.Errorf("eager FixedGap = (%v, %v), want (ℓ/8, true)", g, ok)
	}
	if _, ok := UniformSteps().(FixedStepPolicy).FixedGap(ell); ok {
		t.Error("uniform FixedGap reported a constant gap; it consumes randomness")
	}
}

func TestBuildMMTValidation(t *testing.T) {
	c := cfg2()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BuildMMT without Ell did not panic")
			}
		}()
		BuildMMT(c, relayFactory(0))
	}()
	c.Ell = 10 * us
	c.TickPeriod = 20 * us
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tick period > ℓ did not panic")
			}
		}()
		BuildMMT(c, relayFactory(0))
	}()
}

func TestResponsesAtMatcher(t *testing.T) {
	m := ResponsesAt(1)
	if !m(ta.Action{Name: "DONE", Node: 1, Kind: ta.KindOutput}) {
		t.Error("response not matched")
	}
	if m(ta.Action{Name: "DONE", Node: 2, Kind: ta.KindOutput}) {
		t.Error("wrong node matched")
	}
	if m(ta.Action{Name: ta.NameSendMsg, Node: 1, Peer: 0, Kind: ta.KindOutput}) {
		t.Error("message matched")
	}
	if m(ta.Action{Name: ta.NameTick, Node: 1, Kind: ta.KindOutput}) {
		t.Error("tick matched")
	}
	if m(ta.Action{Name: "READ", Node: 1, Kind: ta.KindInput}) {
		t.Error("input matched")
	}
}

// badSender tries to send along a nonexistent edge.
type badSender struct{}

func (badSender) Start(ctx Context)                 {}
func (badSender) OnMessage(Context, ta.NodeID, any) {}
func (badSender) OnTimer(Context, any)              {}
func (badSender) OnInput(ctx Context, _ string, _ any) {
	ctx.Send(2, "x") // node 2 is not a neighbor in the ring test
}

func TestTopologyRing(t *testing.T) {
	// Directed ring 0→1→2→0; relay's FWD sends to (id+1) mod n, which is
	// exactly the ring edge.
	c := Config{
		N:      3,
		Bounds: simtime.NewInterval(1*ms, 1*ms),
		Seed:   4,
		Topology: func(from, to int) bool {
			return to == (from+1)%3
		},
	}
	net := BuildTimed(c, relayFactory(0))
	if len(net.Edges) != 3 {
		t.Fatalf("edges = %d, want 3 (ring)", len(net.Edges))
	}
	net.Invoke(0, "FWD", "m")
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	got := net.Sys.Trace().Named("GOT")
	if len(got) != 1 || got[0].Action.Node != 1 {
		t.Fatalf("GOT = %v", got)
	}
}

func TestTopologyNeighborsVisible(t *testing.T) {
	eng := newEngine(1, 4, &relay{})
	ns := eng.Neighbors()
	if len(ns) != 4 {
		t.Fatalf("default neighbors = %v", ns)
	}
	eng.restrict([]ta.NodeID{3, 0})
	ns = eng.Neighbors()
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 3 {
		t.Fatalf("restricted neighbors = %v (want sorted [0 3])", ns)
	}
	// Returned slice is a copy.
	ns[0] = 99
	if eng.Neighbors()[0] != 0 {
		t.Error("Neighbors leaked internal state")
	}
}

func TestTopologySendOutsideEdgePanics(t *testing.T) {
	c := Config{
		N:      3,
		Bounds: simtime.NewInterval(1*ms, 1*ms),
		Seed:   4,
		Topology: func(from, to int) bool {
			return to == (from+1)%3
		},
	}
	net := BuildTimed(c, func(ta.NodeID, int) Algorithm { return badSender{} })
	defer func() {
		if recover() == nil {
			t.Error("send along nonexistent edge did not panic")
		}
	}()
	net.Invoke(0, "POKE", nil)
}

func TestTopologyBroadcastRespectsEdges(t *testing.T) {
	// Star: node 0 has edges to everyone (and itself); leaves only back
	// to 0.
	c := Config{
		N:      4,
		Bounds: simtime.NewInterval(1*ms, 1*ms),
		Seed:   4,
		Topology: func(from, to int) bool {
			return from == 0 || to == 0
		},
	}
	net := BuildTimed(c, relayFactory(0))
	net.Invoke(0, "BCAST", "hub")
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	if got := net.Sys.Trace().Named("GOT"); len(got) != 4 {
		t.Fatalf("hub broadcast reached %d, want 4 (incl. self)", len(got))
	}
	// A leaf broadcasts only to the hub (and not itself: no self-loop).
	net2 := BuildTimed(c, relayFactory(0))
	net2.Invoke(1, "BCAST", "leaf")
	if _, err := net2.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	got := net2.Sys.Trace().Named("GOT")
	if len(got) != 1 || got[0].Action.Node != 0 {
		t.Fatalf("leaf broadcast = %v", got)
	}
}
