package core

import (
	"fmt"
	"math/rand"

	"psclock/internal/clock"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// StepPolicy resolves the MMT model's step-time nondeterminism: every
// locally controlled class has boundmap [0, ℓ] (§5.2), so consecutive step
// opportunities are separated by some duration in (0, ℓ]. Next must return
// a value in that range.
type StepPolicy interface {
	// Name describes the policy for reports.
	Name() string
	// Next picks the gap to the next step opportunity.
	Next(r *rand.Rand, ell simtime.Duration) simtime.Duration
}

// FixedStepPolicy is an optional refinement of StepPolicy for policies
// whose gap is a deterministic function of ℓ and which never consult the
// node's random stream. The coalescing fast path (ta.Coalescable) uses it
// to collapse a run of skipped step opportunities into one arithmetic
// jump; a policy without it is fast-forwarded by replaying Next draw by
// draw, which keeps the seeded stream — and therefore every later gap —
// byte-identical to the dense execution.
type FixedStepPolicy interface {
	StepPolicy
	// FixedGap returns the constant gap for step bound ell and ok=true, or
	// ok=false when the policy is effectively random for this ell.
	FixedGap(ell simtime.Duration) (simtime.Duration, bool)
}

type stepFunc struct {
	name string
	fn   func(r *rand.Rand, ell simtime.Duration) simtime.Duration
	// fixed, when non-nil, marks fn as a deterministic function of ell that
	// consumes no randomness.
	fixed func(ell simtime.Duration) simtime.Duration
}

func (s stepFunc) Name() string { return s.name }
func (s stepFunc) Next(r *rand.Rand, ell simtime.Duration) simtime.Duration {
	return s.fn(r, ell)
}
func (s stepFunc) FixedGap(ell simtime.Duration) (simtime.Duration, bool) {
	if s.fixed == nil {
		return 0, false
	}
	return s.fixed(ell), true
}

// LazySteps always waits the full ℓ: the worst-case adversary against which
// the kℓ+2ε+3ℓ output-shift bound of Theorem 5.1 is tight.
func LazySteps() StepPolicy {
	full := func(ell simtime.Duration) simtime.Duration { return ell }
	return stepFunc{
		name:  "lazy",
		fn:    func(_ *rand.Rand, ell simtime.Duration) simtime.Duration { return full(ell) },
		fixed: full,
	}
}

// EagerSteps steps at ℓ/8 (at least 1ns): a fast processor.
func EagerSteps() StepPolicy {
	eighth := func(ell simtime.Duration) simtime.Duration { return (ell / 8).Max(1) }
	return stepFunc{
		name:  "eager",
		fn:    func(_ *rand.Rand, ell simtime.Duration) simtime.Duration { return eighth(ell) },
		fixed: eighth,
	}
}

// UniformSteps picks each gap uniformly in (0, ℓ]. A non-positive ℓ (which
// would make rand.Int63n panic) degenerates to the minimum 1ns gap, the
// same clamp the node applies to every policy's output.
func UniformSteps() StepPolicy {
	return stepFunc{name: "uniform", fn: func(r *rand.Rand, ell simtime.Duration) simtime.Duration {
		if ell <= 0 {
			return 1
		}
		return simtime.Duration(r.Int63n(int64(ell))) + 1
	}}
}

// EmittedStamp records one output emitted by an MMT node: the clock value
// the simulated clock automaton associated with it (its position in the
// fragment), the real time it was actually emitted, and how long it sat in
// the pending queue.
type EmittedStamp struct {
	Action   ta.Action
	SimClock simtime.Time
	Real     simtime.Time
	Queued   simtime.Duration
}

// MMTNode is the transformed automaton M(A^c_{i,ε}, ℓ) of Definition 5.1.
// It simulates the clock-model node composite A^c_{i,ε} with three
// realistic restrictions:
//
//   - it acts only at step opportunities separated by at most ℓ;
//   - it knows the clock only through TICK(c) inputs (the mmtclock
//     component), so it can miss clock values entirely;
//   - it emits at most one output per step, through the pending queue.
//
// Every step and every input first "catches up" the simulated composite to
// mmtclock (the derived frag of Definition 5.1), collecting the outputs the
// composite would have performed into pending.
type MMTNode struct {
	name  string
	id    ta.NodeID
	inner *clockInner

	mmtclock simtime.Time
	pending  []stamped
	queuedAt []simtime.Time

	ell      simtime.Duration
	policy   StepPolicy
	rng      *rand.Rand
	nextStep simtime.Time

	// fixedGap caches FixedStepPolicy's constant gap (clamped like gap()),
	// or 0 when the policy is random; skippedSteps counts step
	// opportunities elided by FastForward.
	fixedGap     simtime.Duration
	skippedSteps int64

	stamps []EmittedStamp
	out    []ta.Action // reusable return buffer
	// RecordStamps controls emission recording (on by default).
	RecordStamps bool
	// MaxPending tracks the high-water mark of the pending queue; the
	// Lemma 4.3 rate restriction keeps it bounded.
	MaxPending int
}

var _ ta.Coalescable = (*MMTNode)(nil)

// NewMMTNode returns the MMT-model node automaton for node id of an n-node
// system running alg with step bound ell.
func NewMMTNode(id ta.NodeID, n int, alg Algorithm, ell simtime.Duration, policy StepPolicy, seed int64) *MMTNode {
	if ell <= 0 {
		panic(fmt.Sprintf("core: MMT step bound ℓ must be positive, got %v", ell))
	}
	mn := &MMTNode{
		name:         fmt.Sprintf("mnode(%v)", id),
		id:           id,
		inner:        newClockInner(id, n, alg, false),
		ell:          ell,
		policy:       policy,
		rng:          rand.New(rand.NewSource(seed)),
		RecordStamps: true,
	}
	if fp, ok := policy.(FixedStepPolicy); ok {
		if g, fixed := fp.FixedGap(ell); fixed {
			if g < 1 {
				g = 1
			}
			if g > ell {
				g = ell
			}
			mn.fixedGap = g
		}
	}
	return mn
}

// Name implements ta.Automaton.
func (mn *MMTNode) Name() string { return mn.name }

// ID returns the node's identity.
func (mn *MMTNode) ID() ta.NodeID { return mn.id }

// Stamps returns the emission records for this node's outputs.
func (mn *MMTNode) Stamps() []EmittedStamp { return mn.stamps }

// RestrictNeighbors limits this node's outgoing edges to ns (§2.4
// topology). Call before the system runs.
func (mn *MMTNode) RestrictNeighbors(ns []ta.NodeID) { mn.inner.eng.restrict(ns) }

// Pending returns the current length of the pending output queue.
func (mn *MMTNode) Pending() int { return len(mn.pending) }

// Matches reports whether a is an input of this node: a TICK from its
// clock subsystem, an ERECVMSG from a clock-model edge, or an environment
// invocation partitioned here.
func (mn *MMTNode) Matches(a ta.Action) bool {
	if a.Name == ta.NameTick || a.Name == ta.NameERecvMsg {
		return a.Node == mn.id
	}
	return a.Node == mn.id && a.Kind == ta.KindInput && !a.IsMessage()
}

// pend routes inner actions: outputs of the composite (ESENDMSG and
// environment responses) join the pending queue to be emitted one per
// step; the composite's hidden interface actions (SENDMSG, RECVMSG) are
// internal to the simulation and surface immediately for observability.
func (mn *MMTNode) pend(now simtime.Time, ss []stamped) []ta.Action {
	out := mn.out[:0]
	for _, s := range ss {
		switch s.act.Name {
		case ta.NameSendMsg, ta.NameRecvMsg:
			a := s.act
			a.Kind = ta.KindInternal
			out = append(out, a)
		default:
			mn.pending = append(mn.pending, s)
			mn.queuedAt = append(mn.queuedAt, now)
			if len(mn.pending) > mn.MaxPending {
				mn.MaxPending = len(mn.pending)
			}
		}
	}
	mn.out = out
	return out
}

// Init implements ta.Automaton: the first step opportunity is scheduled,
// and the composite starts at clock 0 (mmtclock starts at 0, C1).
func (mn *MMTNode) Init() []ta.Action {
	mn.nextStep = simtime.Zero.Add(mn.gap())
	return mn.pend(0, mn.inner.start())
}

func (mn *MMTNode) gap() simtime.Duration {
	g := mn.policy.Next(mn.rng, mn.ell)
	if g < 1 {
		g = 1
	}
	if g > mn.ell {
		g = mn.ell
	}
	return g
}

// Deliver implements ta.Automaton. Per Definition 5.1, a TICK only updates
// mmtclock; any other input applies to the caught-up state (fragstate) and
// its outputs are added to pending.
func (mn *MMTNode) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if !mn.Matches(a) {
		return nil
	}
	switch a.Name {
	case ta.NameTick:
		c, ok := a.Payload.(simtime.Time)
		if !ok {
			panic(fmt.Sprintf("core: TICK payload %T is not simtime.Time", a.Payload))
		}
		if c.After(mn.mmtclock) {
			mn.mmtclock = c
		}
		return nil
	case ta.NameERecvMsg:
		tm, ok := a.Payload.(ta.TaggedMsg)
		if !ok {
			panic(fmt.Sprintf("core: ERECVMSG payload %T is not ta.TaggedMsg", a.Payload))
		}
		return mn.pend(now, mn.inner.erecv(mn.mmtclock, a.Peer, tm))
	default:
		return mn.pend(now, mn.inner.input(mn.mmtclock, a.Name, a.Payload))
	}
}

// Due implements ta.Automaton: the next step opportunity. The single
// partition class (all outputs plus the internal catch-up action τ) is
// always enabled, so steps recur forever with gaps in (0, ℓ].
func (mn *MMTNode) Due(simtime.Time) (simtime.Time, bool) {
	return mn.nextStep, true
}

// Fire implements ta.Automaton: one MMT step. The simulated composite is
// caught up to mmtclock; then, if pending is nonempty, the head output is
// performed (the rest wait for subsequent steps), and otherwise the step
// was the internal τ.
func (mn *MMTNode) Fire(now simtime.Time) []ta.Action {
	if now.Before(mn.nextStep) {
		return nil
	}
	mn.nextStep = now.Add(mn.gap())
	out := mn.pend(now, mn.inner.advance(mn.mmtclock))
	if len(mn.pending) > 0 {
		head := mn.pending[0]
		qAt := mn.queuedAt[0]
		mn.pending = mn.pending[1:]
		mn.queuedAt = mn.queuedAt[1:]
		if mn.RecordStamps {
			mn.stamps = append(mn.stamps, EmittedStamp{
				Action:   head.act,
				SimClock: head.at,
				Real:     now,
				Queued:   now.Sub(qAt),
			})
		}
		out = append(out, head.act)
		mn.out = out
	}
	return out
}

// SkippedSteps reports how many step opportunities the coalescing fast
// path elided as unobservable.
func (mn *MMTNode) SkippedSteps() int64 { return mn.skippedSteps }

// NextInterest implements ta.Coalescable. A step opportunity is
// observable exactly when taking it would do more than the internal τ:
// the pending queue holds an output to emit, or the simulated composite
// has work at or below mmtclock for the catch-up to perform. Otherwise
// the step changes nothing any component can see, and — absent inputs,
// which re-bound the executor's skip horizon on their own — neither will
// any later step until a TICK raises mmtclock (the tick source declares
// that crossing via ClockDemand), so no step deadline is of interest.
func (mn *MMTNode) NextInterest() simtime.Time {
	if len(mn.pending) > 0 {
		return mn.nextStep
	}
	if c, ok := mn.inner.nextDue(); ok && !c.After(mn.mmtclock) {
		return mn.nextStep
	}
	return simtime.Never
}

// ClockDemand reports the clock threshold this node is waiting for: the
// simulated composite's next deadline when it lies above mmtclock, so
// only a TICK can unblock it. ok=false means no tick payload would change
// what the node does (it is either already unblocked — its own step
// deadline is the interest then — or has no composite work at all).
// The node's tick source uses this to pick the single TICK worth
// synthesizing.
func (mn *MMTNode) ClockDemand() (simtime.Time, bool) {
	if len(mn.pending) > 0 {
		return 0, false
	}
	c, ok := mn.inner.nextDue()
	if !ok || !c.After(mn.mmtclock) {
		return 0, false
	}
	return c, true
}

// FastForward implements ta.Coalescable: advance the step schedule past
// every opportunity strictly before to, exactly as if each idle step had
// fired. Fixed-gap policies jump arithmetically; random policies replay
// their draws so the seeded stream stays byte-identical to the dense
// execution.
func (mn *MMTNode) FastForward(to simtime.Time) {
	if !mn.nextStep.Before(to) {
		return
	}
	if mn.fixedGap > 0 {
		k := (int64(to.Sub(mn.nextStep)) + int64(mn.fixedGap) - 1) / int64(mn.fixedGap)
		mn.nextStep = mn.nextStep.Add(simtime.Duration(k * int64(mn.fixedGap)))
		mn.skippedSteps += k
		return
	}
	for mn.nextStep.Before(to) {
		mn.nextStep = mn.nextStep.Add(mn.gap())
		mn.skippedSteps++
	}
}

// TickSource is the clock subsystem automaton C^m_{i,ε,ℓ} of §5.2: its
// sole output is TICK(c), where c is always within ε of real time. Ticks
// recur with the given period (which must be ≤ ℓ for the node to keep
// making progress against its clock deadlines).
type TickSource struct {
	name   string
	id     ta.NodeID
	clk    clock.Model
	period simtime.Duration
	next   simtime.Time
	buf    [1]ta.Action // reusable return buffer

	// demand, when wired (SetDemand), reports the clock threshold the
	// node is waiting on; skipped counts TICKs the coalescing fast path
	// elided as unobservable.
	demand  func() (simtime.Time, bool)
	skipped int64
}

var _ ta.Coalescable = (*TickSource)(nil)

// NewTickSource returns the TICK emitter for node id driven by clk.
func NewTickSource(id ta.NodeID, clk clock.Model, period simtime.Duration) *TickSource {
	if period <= 0 {
		panic(fmt.Sprintf("core: tick period must be positive, got %v", period))
	}
	return &TickSource{
		name:   fmt.Sprintf("ticks(%v)", id),
		id:     id,
		clk:    clk,
		period: period,
	}
}

// Name implements ta.Automaton.
func (ts *TickSource) Name() string { return ts.name }

// Init implements ta.Automaton: a first TICK at time zero tells the node
// its clock starts at 0.
func (ts *TickSource) Init() []ta.Action {
	ts.next = simtime.Zero.Add(ts.period)
	ts.buf[0] = ts.tick(0)
	return ts.buf[:]
}

// Deliver implements ta.Automaton (no inputs).
func (ts *TickSource) Deliver(simtime.Time, ta.Action) []ta.Action { return nil }

// Due implements ta.Automaton.
func (ts *TickSource) Due(simtime.Time) (simtime.Time, bool) { return ts.next, true }

// Fire implements ta.Automaton.
func (ts *TickSource) Fire(now simtime.Time) []ta.Action {
	if now.Before(ts.next) {
		return nil
	}
	ts.next = now.Add(ts.period)
	ts.buf[0] = ts.tick(now)
	return ts.buf[:]
}

// SetDemand wires the clock-threshold query the source consults when
// declaring interest — in the composed MMT system, the node's
// ClockDemand. An unwired source treats every tick as observable and is
// never coalesced.
func (ts *TickSource) SetDemand(fn func() (simtime.Time, bool)) { ts.demand = fn }

// SkippedTicks reports how many TICK emissions the coalescing fast path
// elided as unobservable.
func (ts *TickSource) SkippedTicks() int64 { return ts.skipped }

// NextInterest implements ta.Coalescable. A TICK matters only when its
// payload crosses the clock threshold the node is waiting on (§5.2:
// "specific clock values can be missed"); every earlier tick merely
// nudges mmtclock below that threshold, which no enabled action can see.
// When the node demands nothing, no future tick is of interest — the
// executor's skip horizon is then set by whatever event does matter, and
// FastForward plants the sync TICK just before it so mmtclock is as
// fresh there as the dense schedule would have left it.
func (ts *TickSource) NextInterest() simtime.Time {
	if ts.demand == nil {
		return ts.next
	}
	c, ok := ts.demand()
	if !ok {
		return simtime.Never
	}
	return ts.nextTickReaching(c)
}

// nextTickReaching returns the first scheduled tick whose payload reaches
// clock value c: ticks fire on the period grid anchored at next, and the
// clock is monotone, so that is the first grid point at or after the
// earliest real time the clock reads c.
func (ts *TickSource) nextTickReaching(c simtime.Time) simtime.Time {
	u := ts.clk.EarliestAt(c)
	if u == simtime.Never {
		return simtime.Never
	}
	if !u.After(ts.next) {
		return ts.next
	}
	k := (int64(u.Sub(ts.next)) + int64(ts.period) - 1) / int64(ts.period)
	return ts.next.Add(simtime.Duration(k) * ts.period)
}

// FastForward implements ta.Coalescable: skip the ticks strictly before
// to, except that the newest grid point at or before to is kept as the
// pending sync TICK. It fires at its exact dense-schedule time with its
// exact dense payload, and because clocks are monotone (axiom C3) and
// mmtclock is a running maximum, that single tick leaves mmtclock at `to`
// byte-identical to delivering the whole skipped run.
func (ts *TickSource) FastForward(to simtime.Time) {
	if !ts.next.Before(to) {
		return
	}
	k := int64(to.Sub(ts.next)) / int64(ts.period)
	ts.next = ts.next.Add(simtime.Duration(k) * ts.period)
	ts.skipped += k
}

func (ts *TickSource) tick(now simtime.Time) ta.Action {
	return ta.Action{
		Name:    ta.NameTick,
		Node:    ts.id,
		Peer:    ta.NoNode,
		Kind:    ta.KindOutput,
		Payload: ts.clk.At(now),
	}
}
