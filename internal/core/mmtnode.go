package core

import (
	"fmt"
	"math/rand"

	"psclock/internal/clock"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// StepPolicy resolves the MMT model's step-time nondeterminism: every
// locally controlled class has boundmap [0, ℓ] (§5.2), so consecutive step
// opportunities are separated by some duration in (0, ℓ]. Next must return
// a value in that range.
type StepPolicy interface {
	// Name describes the policy for reports.
	Name() string
	// Next picks the gap to the next step opportunity.
	Next(r *rand.Rand, ell simtime.Duration) simtime.Duration
}

type stepFunc struct {
	name string
	fn   func(r *rand.Rand, ell simtime.Duration) simtime.Duration
}

func (s stepFunc) Name() string { return s.name }
func (s stepFunc) Next(r *rand.Rand, ell simtime.Duration) simtime.Duration {
	return s.fn(r, ell)
}

// LazySteps always waits the full ℓ: the worst-case adversary against which
// the kℓ+2ε+3ℓ output-shift bound of Theorem 5.1 is tight.
func LazySteps() StepPolicy {
	return stepFunc{name: "lazy", fn: func(_ *rand.Rand, ell simtime.Duration) simtime.Duration {
		return ell
	}}
}

// EagerSteps steps at ℓ/8 (at least 1ns): a fast processor.
func EagerSteps() StepPolicy {
	return stepFunc{name: "eager", fn: func(_ *rand.Rand, ell simtime.Duration) simtime.Duration {
		return (ell / 8).Max(1)
	}}
}

// UniformSteps picks each gap uniformly in (0, ℓ].
func UniformSteps() StepPolicy {
	return stepFunc{name: "uniform", fn: func(r *rand.Rand, ell simtime.Duration) simtime.Duration {
		return simtime.Duration(r.Int63n(int64(ell))) + 1
	}}
}

// EmittedStamp records one output emitted by an MMT node: the clock value
// the simulated clock automaton associated with it (its position in the
// fragment), the real time it was actually emitted, and how long it sat in
// the pending queue.
type EmittedStamp struct {
	Action   ta.Action
	SimClock simtime.Time
	Real     simtime.Time
	Queued   simtime.Duration
}

// MMTNode is the transformed automaton M(A^c_{i,ε}, ℓ) of Definition 5.1.
// It simulates the clock-model node composite A^c_{i,ε} with three
// realistic restrictions:
//
//   - it acts only at step opportunities separated by at most ℓ;
//   - it knows the clock only through TICK(c) inputs (the mmtclock
//     component), so it can miss clock values entirely;
//   - it emits at most one output per step, through the pending queue.
//
// Every step and every input first "catches up" the simulated composite to
// mmtclock (the derived frag of Definition 5.1), collecting the outputs the
// composite would have performed into pending.
type MMTNode struct {
	name  string
	id    ta.NodeID
	inner *clockInner

	mmtclock simtime.Time
	pending  []stamped
	queuedAt []simtime.Time

	ell      simtime.Duration
	policy   StepPolicy
	rng      *rand.Rand
	nextStep simtime.Time

	stamps []EmittedStamp
	out    []ta.Action // reusable return buffer
	// RecordStamps controls emission recording (on by default).
	RecordStamps bool
	// MaxPending tracks the high-water mark of the pending queue; the
	// Lemma 4.3 rate restriction keeps it bounded.
	MaxPending int
}

var _ ta.Automaton = (*MMTNode)(nil)

// NewMMTNode returns the MMT-model node automaton for node id of an n-node
// system running alg with step bound ell.
func NewMMTNode(id ta.NodeID, n int, alg Algorithm, ell simtime.Duration, policy StepPolicy, seed int64) *MMTNode {
	if ell <= 0 {
		panic(fmt.Sprintf("core: MMT step bound ℓ must be positive, got %v", ell))
	}
	return &MMTNode{
		name:         fmt.Sprintf("mnode(%v)", id),
		id:           id,
		inner:        newClockInner(id, n, alg, false),
		ell:          ell,
		policy:       policy,
		rng:          rand.New(rand.NewSource(seed)),
		RecordStamps: true,
	}
}

// Name implements ta.Automaton.
func (mn *MMTNode) Name() string { return mn.name }

// ID returns the node's identity.
func (mn *MMTNode) ID() ta.NodeID { return mn.id }

// Stamps returns the emission records for this node's outputs.
func (mn *MMTNode) Stamps() []EmittedStamp { return mn.stamps }

// RestrictNeighbors limits this node's outgoing edges to ns (§2.4
// topology). Call before the system runs.
func (mn *MMTNode) RestrictNeighbors(ns []ta.NodeID) { mn.inner.eng.restrict(ns) }

// Pending returns the current length of the pending output queue.
func (mn *MMTNode) Pending() int { return len(mn.pending) }

// Matches reports whether a is an input of this node: a TICK from its
// clock subsystem, an ERECVMSG from a clock-model edge, or an environment
// invocation partitioned here.
func (mn *MMTNode) Matches(a ta.Action) bool {
	if a.Name == ta.NameTick || a.Name == ta.NameERecvMsg {
		return a.Node == mn.id
	}
	return a.Node == mn.id && a.Kind == ta.KindInput && !a.IsMessage()
}

// pend routes inner actions: outputs of the composite (ESENDMSG and
// environment responses) join the pending queue to be emitted one per
// step; the composite's hidden interface actions (SENDMSG, RECVMSG) are
// internal to the simulation and surface immediately for observability.
func (mn *MMTNode) pend(now simtime.Time, ss []stamped) []ta.Action {
	out := mn.out[:0]
	for _, s := range ss {
		switch s.act.Name {
		case ta.NameSendMsg, ta.NameRecvMsg:
			a := s.act
			a.Kind = ta.KindInternal
			out = append(out, a)
		default:
			mn.pending = append(mn.pending, s)
			mn.queuedAt = append(mn.queuedAt, now)
			if len(mn.pending) > mn.MaxPending {
				mn.MaxPending = len(mn.pending)
			}
		}
	}
	mn.out = out
	return out
}

// Init implements ta.Automaton: the first step opportunity is scheduled,
// and the composite starts at clock 0 (mmtclock starts at 0, C1).
func (mn *MMTNode) Init() []ta.Action {
	mn.nextStep = simtime.Zero.Add(mn.gap())
	return mn.pend(0, mn.inner.start())
}

func (mn *MMTNode) gap() simtime.Duration {
	g := mn.policy.Next(mn.rng, mn.ell)
	if g < 1 {
		g = 1
	}
	if g > mn.ell {
		g = mn.ell
	}
	return g
}

// Deliver implements ta.Automaton. Per Definition 5.1, a TICK only updates
// mmtclock; any other input applies to the caught-up state (fragstate) and
// its outputs are added to pending.
func (mn *MMTNode) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if !mn.Matches(a) {
		return nil
	}
	switch a.Name {
	case ta.NameTick:
		c, ok := a.Payload.(simtime.Time)
		if !ok {
			panic(fmt.Sprintf("core: TICK payload %T is not simtime.Time", a.Payload))
		}
		if c.After(mn.mmtclock) {
			mn.mmtclock = c
		}
		return nil
	case ta.NameERecvMsg:
		tm, ok := a.Payload.(ta.TaggedMsg)
		if !ok {
			panic(fmt.Sprintf("core: ERECVMSG payload %T is not ta.TaggedMsg", a.Payload))
		}
		return mn.pend(now, mn.inner.erecv(mn.mmtclock, a.Peer, tm))
	default:
		return mn.pend(now, mn.inner.input(mn.mmtclock, a.Name, a.Payload))
	}
}

// Due implements ta.Automaton: the next step opportunity. The single
// partition class (all outputs plus the internal catch-up action τ) is
// always enabled, so steps recur forever with gaps in (0, ℓ].
func (mn *MMTNode) Due(simtime.Time) (simtime.Time, bool) {
	return mn.nextStep, true
}

// Fire implements ta.Automaton: one MMT step. The simulated composite is
// caught up to mmtclock; then, if pending is nonempty, the head output is
// performed (the rest wait for subsequent steps), and otherwise the step
// was the internal τ.
func (mn *MMTNode) Fire(now simtime.Time) []ta.Action {
	if now.Before(mn.nextStep) {
		return nil
	}
	mn.nextStep = now.Add(mn.gap())
	out := mn.pend(now, mn.inner.advance(mn.mmtclock))
	if len(mn.pending) > 0 {
		head := mn.pending[0]
		qAt := mn.queuedAt[0]
		mn.pending = mn.pending[1:]
		mn.queuedAt = mn.queuedAt[1:]
		if mn.RecordStamps {
			mn.stamps = append(mn.stamps, EmittedStamp{
				Action:   head.act,
				SimClock: head.at,
				Real:     now,
				Queued:   now.Sub(qAt),
			})
		}
		out = append(out, head.act)
		mn.out = out
	}
	return out
}

// TickSource is the clock subsystem automaton C^m_{i,ε,ℓ} of §5.2: its
// sole output is TICK(c), where c is always within ε of real time. Ticks
// recur with the given period (which must be ≤ ℓ for the node to keep
// making progress against its clock deadlines).
type TickSource struct {
	name   string
	id     ta.NodeID
	clk    clock.Model
	period simtime.Duration
	next   simtime.Time
	buf    [1]ta.Action // reusable return buffer
}

var _ ta.Automaton = (*TickSource)(nil)

// NewTickSource returns the TICK emitter for node id driven by clk.
func NewTickSource(id ta.NodeID, clk clock.Model, period simtime.Duration) *TickSource {
	if period <= 0 {
		panic(fmt.Sprintf("core: tick period must be positive, got %v", period))
	}
	return &TickSource{
		name:   fmt.Sprintf("ticks(%v)", id),
		id:     id,
		clk:    clk,
		period: period,
	}
}

// Name implements ta.Automaton.
func (ts *TickSource) Name() string { return ts.name }

// Init implements ta.Automaton: a first TICK at time zero tells the node
// its clock starts at 0.
func (ts *TickSource) Init() []ta.Action {
	ts.next = simtime.Zero.Add(ts.period)
	ts.buf[0] = ts.tick(0)
	return ts.buf[:]
}

// Deliver implements ta.Automaton (no inputs).
func (ts *TickSource) Deliver(simtime.Time, ta.Action) []ta.Action { return nil }

// Due implements ta.Automaton.
func (ts *TickSource) Due(simtime.Time) (simtime.Time, bool) { return ts.next, true }

// Fire implements ta.Automaton.
func (ts *TickSource) Fire(now simtime.Time) []ta.Action {
	if now.Before(ts.next) {
		return nil
	}
	ts.next = now.Add(ts.period)
	ts.buf[0] = ts.tick(now)
	return ts.buf[:]
}

func (ts *TickSource) tick(now simtime.Time) ta.Action {
	return ta.Action{
		Name:    ta.NameTick,
		Node:    ts.id,
		Peer:    ta.NoNode,
		Kind:    ta.KindOutput,
		Payload: ts.clk.At(now),
	}
}
