// Package object generalizes the paper's §6 register result to other
// linearizable shared-memory objects, as the paper's closing remark of §6
// promises for its full version.
//
// The generalization covers objects whose operations split into
//
//   - blind updates — mutate the state, return no value (register WRITE,
//     counter ADD, set INSERT, max-register RAISE), and
//   - read-only queries — return a function of the state (register READ,
//     counter GET, set HAS, max-register GET).
//
// For this class, algorithm S generalizes verbatim: an update is broadcast
// as UPDATE(op, t) with t = now+d'2 and applied at every node at exactly
// time t+δ (simultaneous everywhere in the design model), acked after
// d'2−c; a query waits 2ε+c+δ and answers from the local copy. Updates
// scheduled for the same instant are applied in sender order (which, for
// the register, reproduces Figure 3's "largest index j wins" rule).
// Transformed to the clock model, the object is linearizable with query
// cost 2ε+δ+c and update cost d2+2ε−c — Theorem 6.5, objectwise.
//
// A Spec provides the sequential semantics once; the same Spec drives the
// replicas here and the generic linearizability checker
// (linearize.CheckObject).
package object

import (
	"fmt"
	"sort"

	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Environment action names of the generalized object problem.
const (
	ActUpdate = "UPDATE"
	ActQuery  = "QUERY"
	ActReturn = register.ActReturn
	ActAck    = register.ActAck
)

// Spec is a sequential object specification: canonical string states, the
// same encoding the generic checker memoizes on.
type Spec interface {
	linearize.Model
}

// opMsg is the broadcast update: the operation and its application time
// (sender time + d'2, applied at +δ), plus a per-sender sequence number
// keeping messages unique (§3).
type opMsg struct {
	Op  string
	T   simtime.Time
	Seq int
}

// String implements fmt.Stringer.
func (m opMsg) String() string { return fmt.Sprintf("op(%s,%v,%d)", m.Op, m.T, m.Seq) }

type pendingUpdate struct {
	at   simtime.Time
	proc ta.NodeID
	seq  int
	op   string
}

type (
	queryTimer struct{}
	uackTimer  struct{}
	applyTimer struct{ at simtime.Time }
)

// Alg is the generalized algorithm S for one node.
type Alg struct {
	spec  Spec
	p     register.Params
	extra simtime.Duration // 2ε for the S variant, 0 for the L variant

	state        string
	pending      []pendingUpdate
	pendingQuery string
	seq          int
}

var _ core.Algorithm = (*Alg)(nil)

// NewS returns the generalized algorithm S (with the 2ε query wait) for
// the given sequential spec.
func NewS(spec Spec, p register.Params) *Alg {
	return &Alg{spec: spec, p: p, extra: 2 * p.Epsilon, state: spec.Init()}
}

// NewL returns the generalized algorithm L (no extra wait; correct in the
// timed model only).
func NewL(spec Spec, p register.Params) *Alg {
	return &Alg{spec: spec, p: p, extra: 0, state: spec.Init()}
}

// Factory adapts a constructor to core.AlgorithmFactory.
func Factory(newAlg func(Spec, register.Params) *Alg, spec func() Spec, p register.Params) core.AlgorithmFactory {
	return func(ta.NodeID, int) core.Algorithm { return newAlg(spec(), p) }
}

// Start implements core.Algorithm.
func (a *Alg) Start(core.Context) {}

// OnInput implements core.Algorithm.
func (a *Alg) OnInput(ctx core.Context, name string, payload any) {
	switch name {
	case ActQuery:
		q, ok := payload.(string)
		if !ok {
			panic(fmt.Sprintf("object: QUERY payload %T is not a string", payload))
		}
		// Remember which query to answer; with the alternation condition
		// there is at most one outstanding.
		a.pendingQuery = q
		ctx.SetTimer(ctx.Time().Add(a.extra+a.p.C+a.p.Delta), queryTimer{})
	case ActUpdate:
		op, ok := payload.(string)
		if !ok {
			panic(fmt.Sprintf("object: UPDATE payload %T is not a string", payload))
		}
		a.seq++
		ctx.Broadcast(opMsg{Op: op, T: ctx.Time().Add(a.p.D2), Seq: a.seq})
		ctx.SetTimer(ctx.Time().Add(a.p.D2-a.p.C), uackTimer{})
	default:
		panic(fmt.Sprintf("object: unknown input %q", name))
	}
}

// OnMessage implements core.Algorithm: record the update for its
// application instant and schedule it.
func (a *Alg) OnMessage(ctx core.Context, from ta.NodeID, body any) {
	m, ok := body.(opMsg)
	if !ok {
		panic(fmt.Sprintf("object: unexpected message %T", body))
	}
	at := m.T.Add(a.p.Delta)
	a.pending = append(a.pending, pendingUpdate{at: at, proc: from, seq: m.Seq, op: m.Op})
	ctx.SetTimer(at, applyTimer{at: at})
}

// OnTimer implements core.Algorithm.
func (a *Alg) OnTimer(ctx core.Context, key any) {
	switch key.(type) {
	case applyTimer:
		a.applyDue(ctx.Time())
	case queryTimer:
		a.applyDue(ctx.Time())
		_, result := a.spec.Apply(a.state, a.pendingQuery)
		ctx.Output(ActReturn, result)
	case uackTimer:
		ctx.Output(ActAck, nil)
	default:
		panic(fmt.Sprintf("object: unknown timer %T", key))
	}
}

// applyDue applies every pending update with application time ≤ now, in
// (time, proc, seq) order — the deterministic simultaneous-update rule.
func (a *Alg) applyDue(now simtime.Time) {
	if len(a.pending) == 0 {
		return
	}
	var due, rest []pendingUpdate
	for _, u := range a.pending {
		if !u.at.After(now) {
			due = append(due, u)
		} else {
			rest = append(rest, u)
		}
	}
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].at != due[j].at {
			return due[i].at < due[j].at
		}
		if due[i].proc != due[j].proc {
			return due[i].proc < due[j].proc
		}
		return due[i].seq < due[j].seq
	})
	for _, u := range due {
		a.state, _ = a.spec.Apply(a.state, u.op)
	}
	a.pending = rest
}

// History extracts the generic operation history from a trace's visible
// actions, enforcing per-node alternation. Operations still open at the
// end are pending.
func History(tr ta.Trace) ([]linearize.GOp, error) {
	type open struct {
		op  linearize.GOp
		set bool
	}
	pend := make(map[ta.NodeID]open)
	var ops []linearize.GOp
	for i, e := range tr {
		a := e.Action
		if a.Kind == ta.KindInternal {
			continue
		}
		switch a.Name {
		case ActQuery, ActUpdate:
			cur := pend[a.Node]
			if cur.set {
				return nil, fmt.Errorf("object: event %d: %s at %v while an operation is outstanding", i, a.Name, a.Node)
			}
			opStr, ok := a.Payload.(string)
			if !ok {
				return nil, fmt.Errorf("object: event %d: payload %T is not a string", i, a.Payload)
			}
			pend[a.Node] = open{op: linearize.GOp{Node: a.Node, Op: opStr, Inv: e.At, Res: simtime.Never}, set: true}
		case ActReturn, ActAck:
			cur := pend[a.Node]
			if !cur.set {
				return nil, fmt.Errorf("object: event %d: response %s at %v with no outstanding operation", i, a.Name, a.Node)
			}
			if a.Name == ActReturn {
				res, ok := a.Payload.(string)
				if !ok {
					return nil, fmt.Errorf("object: event %d: RETURN payload %T is not a string", i, a.Payload)
				}
				cur.op.Result = res
			}
			cur.op.Res = e.At
			ops = append(ops, cur.op)
			pend[a.Node] = open{}
		}
	}
	for _, cur := range pend {
		if cur.set {
			ops = append(ops, cur.op)
		}
	}
	return ops, nil
}
